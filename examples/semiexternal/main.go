// Semi-external pipeline: the full disk workflow the paper describes for
// graphs whose edges do not fit in memory.
//
//  1. A raw (vertex-ID-ordered) adjacency file arrives on disk.
//  2. The external merge sort rewrites it in ascending-degree order using a
//     deliberately tiny memory budget — the Section 4.1 preprocessing.
//  3. Greedy scans the sorted file once; two-k-swap improves it with a few
//     more scans. Only O(|V|) bytes ever live in memory.
//
// The run prints the I/O ledger (scans, bytes, blocks) at each stage.
// Scans decode through the parallel partitioned executor when -workers > 1;
// the results are bit-identical either way.
//
//	go run ./examples/semiexternal [-n 300000] [-workers 2]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	mis "repro"
)

func main() {
	n := flag.Int("n", 300000, "vertices in the synthetic input")
	workers := flag.Int("workers", 1, "scan parallelism (0 = GOMAXPROCS)")
	flag.Parse()
	if err := run(os.Stdout, *n, *workers); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, n, workers int) error {
	dir, err := os.MkdirTemp("", "mis-semiext")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	raw := filepath.Join(dir, "raw.adj")
	sorted := filepath.Join(dir, "sorted.adj")

	// Stage 0: a raw unsorted graph file "arrives".
	if err := mis.GeneratePowerLawFile(raw, n, 2.0, 7, false /* unsorted */); err != nil {
		return err
	}
	info, err := os.Stat(raw)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "raw file: %s (%d bytes)\n", raw, info.Size())

	// Stage 1: external degree sort with a 1 MiB budget — far smaller than
	// the file, so runs spill and merge exactly as they would at scale.
	const budget = 1 << 20
	fmt.Fprintf(out, "sorting by degree with a %d-byte memory budget...\n", budget)
	if err := mis.SortFileByDegree(raw, sorted, budget); err != nil {
		return err
	}

	f, err := mis.Open(sorted, mis.WithWorkers(workers))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(out, "sorted file: %d vertices, %d edges, degree-sorted=%v, scan workers=%d\n\n",
		f.NumVertices(), f.NumEdges(), f.DegreeSorted(), f.Workers())

	// Stage 2: one-scan greedy.
	greedy, err := f.Greedy()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "greedy:     |IS| = %-8d memory = %-8d physical scans = %d\n",
		greedy.Size, greedy.MemoryBytes, greedy.IO.PhysicalScans)

	// Stage 3: swap refinement, still sequential scans only.
	two, err := f.TwoKSwap(greedy, mis.SwapOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "two-k-swap: |IS| = %-8d memory = %-8d physical scans = %d rounds = %d\n",
		two.Size, two.MemoryBytes, two.IO.PhysicalScans, two.Rounds)

	st := f.Stats()
	fmt.Fprintf(out, "\nI/O ledger: %d physical scans (%d logical passes), %d records, %d bytes read, %d buffered blocks\n",
		st.PhysicalScans, st.Scans, st.RecordsRead, st.BytesRead, st.BlocksRead)

	// Independence and maximality fuse into one physical scan (File.Verify).
	if err := f.Verify(two); err != nil {
		return err
	}
	fmt.Fprintln(out, "verified: independent and maximal")
	return nil
}
