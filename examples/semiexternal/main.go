// Semi-external pipeline: the full disk workflow the paper describes for
// graphs whose edges do not fit in memory.
//
//  1. A raw (vertex-ID-ordered) adjacency file arrives on disk.
//  2. The external merge sort rewrites it in ascending-degree order using a
//     deliberately tiny memory budget — the Section 4.1 preprocessing.
//  3. Greedy scans the sorted file once; two-k-swap improves it with a few
//     more scans. Only O(|V|) bytes ever live in memory.
//
// The run prints the I/O ledger (scans, bytes, blocks) at each stage.
//
//	go run ./examples/semiexternal [-n 300000]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	mis "repro"
)

func main() {
	n := flag.Int("n", 300000, "vertices in the synthetic input")
	flag.Parse()

	dir, err := os.MkdirTemp("", "mis-semiext")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	raw := filepath.Join(dir, "raw.adj")
	sorted := filepath.Join(dir, "sorted.adj")

	// Stage 0: a raw unsorted graph file "arrives".
	if err := mis.GeneratePowerLawFile(raw, *n, 2.0, 7, false /* unsorted */); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(raw)
	fmt.Printf("raw file: %s (%d bytes)\n", raw, info.Size())

	// Stage 1: external degree sort with a 1 MiB budget — far smaller than
	// the file, so runs spill and merge exactly as they would at scale.
	const budget = 1 << 20
	fmt.Printf("sorting by degree with a %d-byte memory budget...\n", budget)
	if err := mis.SortFileByDegree(raw, sorted, budget); err != nil {
		log.Fatal(err)
	}

	f, err := mis.Open(sorted)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fmt.Printf("sorted file: %d vertices, %d edges, degree-sorted=%v\n\n",
		f.NumVertices(), f.NumEdges(), f.DegreeSorted())

	// Stage 2: one-scan greedy.
	greedy, err := f.Greedy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy:     |IS| = %-8d memory = %-8d scans = %d\n",
		greedy.Size, greedy.MemoryBytes, greedy.IO.Scans)

	// Stage 3: swap refinement, still sequential scans only.
	two, err := f.TwoKSwap(greedy, mis.SwapOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-k-swap: |IS| = %-8d memory = %-8d scans = %d rounds = %d\n",
		two.Size, two.MemoryBytes, two.IO.Scans, two.Rounds)

	st := f.Stats()
	fmt.Printf("\nI/O ledger: %d sequential scans, %d records, %d bytes read, %d buffered blocks\n",
		st.Scans, st.RecordsRead, st.BytesRead, st.BlocksRead)

	if err := f.VerifyIndependent(two); err != nil {
		log.Fatal(err)
	}
	if err := f.VerifyMaximal(two); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: independent and maximal")
}
