package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the pipeline on a small graph, and checks that the
// parallel executor leaves the printed results (sizes, scans, the whole I/O
// ledger) untouched.
func TestRun(t *testing.T) {
	var seq bytes.Buffer
	if err := run(&seq, 3000, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(seq.String(), "verified: independent and maximal") {
		t.Fatalf("missing verification line in output:\n%s", seq.String())
	}

	var par bytes.Buffer
	if err := run(&par, 3000, 4); err != nil {
		t.Fatal(err)
	}
	// Everything after the temp-file banner and the workers count must match.
	tail := func(s string) string {
		_, rest, _ := strings.Cut(s, "\n\n")
		return rest
	}
	if tail(seq.String()) != tail(par.String()) {
		t.Fatalf("parallel run diverged:\n--- seq ---\n%s--- par ---\n%s", seq.String(), par.String())
	}
}
