package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the hierarchy construction on a small graph.
func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 2000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hierarchy of ") {
		t.Fatalf("missing summary line in output:\n%s", out.String())
	}
}
