// Independent-set hierarchy: the paper's first motivating application.
// Shortest-path labeling schemes such as IS-Label (Fu et al., cited as
// [11]) build a vertex hierarchy by *repeatedly* extracting an independent
// set and contracting the rest — which is why a fast, memory-lean MIS
// subroutine matters: it runs once per level.
//
// This example builds such a hierarchy over a power-law graph: each level
// takes a two-k-swap independent set of the residual graph, removes it, and
// recurses on what remains until the residual fits trivially. It reports
// the level sizes and how quickly the graph collapses.
//
//	go run ./examples/hierarchy [-n 100000]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	mis "repro"

	"repro/internal/gio"
	"repro/internal/graph"
)

func main() {
	n := flag.Int("n", 100000, "vertices in the synthetic road-network-like graph")
	flag.Parse()
	if err := run(os.Stdout, *n); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, n int) error {
	dir, err := os.MkdirTemp("", "mis-hierarchy")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	base := filepath.Join(dir, "level0.adj")
	if err := mis.GeneratePowerLawFile(base, n, 2.3, 17, true); err != nil {
		return err
	}

	// The hierarchy loop: solve MIS on the current level, then build the
	// next level as the induced subgraph on the non-IS vertices.
	level := 0
	cur := base
	fmt.Fprintf(out, "%5s %12s %12s %12s\n", "level", "|V|", "|E|", "|IS| taken")
	for {
		f, err := mis.Open(cur)
		if err != nil {
			return err
		}
		nv := f.NumVertices()
		ne := f.NumEdges()
		if nv == 0 {
			f.Close()
			break
		}
		greedy, err := f.Greedy()
		if err != nil {
			f.Close()
			return err
		}
		set, err := f.TwoKSwap(greedy, mis.SwapOptions{EarlyStopRounds: 3})
		if err != nil {
			f.Close()
			return err
		}
		if err := f.VerifyIndependent(set); err != nil {
			f.Close()
			return err
		}
		fmt.Fprintf(out, "%5d %12d %12d %12d\n", level, nv, ne, set.Size)

		// Residual: the induced subgraph on vertices outside the set.
		g, err := gio.LoadGraph(cur, nil)
		f.Close()
		if err != nil {
			return err
		}
		var keep []uint32
		for v := 0; v < g.NumVertices(); v++ {
			if !set.InSet[v] {
				keep = append(keep, uint32(v))
			}
		}
		if len(keep) == 0 {
			level++
			break
		}
		sub, _ := g.Subgraph(keep)
		next := filepath.Join(dir, fmt.Sprintf("level%d.adj", level+1))
		if err := writeSorted(next, sub); err != nil {
			return err
		}
		cur = next
		level++
		if level > 64 {
			return fmt.Errorf("hierarchy did not collapse — bug")
		}
	}
	fmt.Fprintf(out, "\nhierarchy of %d levels: an IS-Label index would store one label array per level\n", level)
	return nil
}

func writeSorted(path string, g *graph.Graph) error {
	return gio.WriteGraphSorted(path, g, nil)
}
