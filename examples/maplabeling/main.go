// Map labeling: one of the paper's motivating applications (Strijk et al.).
// Each map feature gets a candidate label rectangle; two labels conflict
// when their rectangles overlap. A maximum independent set of the conflict
// graph is a maximum set of labels that can be drawn without overlap.
//
// This example places candidate labels at random positions, builds the
// intersection graph, and lets the swap algorithms recover more labels than
// plain greedy placement.
//
//	go run ./examples/maplabeling
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	mis "repro"
)

// label is an axis-aligned rectangle on the map.
type label struct {
	x, y, w, h float64
}

func (a label) overlaps(b label) bool {
	return a.x < b.x+b.w && b.x < a.x+a.w && a.y < b.y+b.h && b.y < a.y+a.h
}

func main() {
	if err := run(os.Stdout, 4000); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, nLabels int) error {
	const mapSize = 100.0
	rng := rand.New(rand.NewSource(2015))

	// Candidate labels: random positions, sizes between 1×0.5 and 3×1.5.
	labels := make([]label, nLabels)
	for i := range labels {
		labels[i] = label{
			x: rng.Float64() * mapSize,
			y: rng.Float64() * mapSize,
			w: 1 + 2*rng.Float64(),
			h: 0.5 + rng.Float64(),
		}
	}

	// Conflict graph: an edge for every overlapping pair. A spatial grid
	// keeps this near-linear instead of quadratic.
	b := mis.NewBuilder(nLabels)
	cell := 4.0
	grid := make(map[[2]int][]uint32)
	for i, l := range labels {
		key := [2]int{int(l.x / cell), int(l.y / cell)}
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range grid[[2]int{key[0] + dx, key[1] + dy}] {
					if labels[j].overlaps(l) {
						b.AddEdge(uint32(i), j)
					}
				}
			}
		}
		grid[key] = append(grid[key], uint32(i))
	}

	dir, err := os.MkdirTemp("", "mis-maplabel")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "conflicts.adj")
	if err := b.WriteFile(path, true); err != nil {
		return err
	}

	f, err := mis.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(out, "conflict graph: %d candidate labels, %d overlaps\n",
		f.NumVertices(), f.NumEdges())

	greedy, err := f.Greedy()
	if err != nil {
		return err
	}
	two, err := f.TwoKSwap(greedy, mis.SwapOptions{})
	if err != nil {
		return err
	}
	bound, err := f.UpperBound()
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "greedy placement:     %d labels\n", greedy.Size)
	fmt.Fprintf(out, "after two-k-swap:     %d labels (+%d, %d rounds)\n",
		two.Size, two.Size-greedy.Size, two.Rounds)
	fmt.Fprintf(out, "upper bound:          %d labels → ratio %.3f\n", bound, two.Ratio(bound))

	if err := f.VerifyIndependent(two); err != nil {
		return err
	}
	fmt.Fprintln(out, "verified: no two placed labels overlap")
	return nil
}
