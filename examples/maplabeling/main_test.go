package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the label-placement pipeline on a small instance.
func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 800); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verified: no two placed labels overlap") {
		t.Fatalf("missing verification line in output:\n%s", out.String())
	}
}
