package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the six-algorithm comparison on a small graph.
func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 2000, 2.1); err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"greedy", "one-k-swap", "two-k-swap", "external-maximal"} {
		if !strings.Contains(out.String(), alg) {
			t.Fatalf("algorithm %q missing from output:\n%s", alg, out.String())
		}
	}
	if !strings.Contains(out.String(), "upper bound on the independence number:") {
		t.Fatalf("missing upper bound line:\n%s", out.String())
	}
}
