// Social network analysis: the paper's headline workload. Generate a
// power-law social graph (the P(α, β) model of Section 2.2), then compare
// all six algorithms of the evaluation on it — sizes, memory and scans —
// the way Table 5/6 do for the real Facebook and Twitter graphs.
//
// An independent set in a social graph is a maximum set of mutually
// unconnected users, e.g. for interference-free survey sampling.
//
//	go run ./examples/socialnetwork [-n 200000] [-beta 2.1]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	mis "repro"
)

func main() {
	n := flag.Int("n", 200000, "number of users")
	beta := flag.Float64("beta", 2.1, "power-law exponent")
	flag.Parse()
	if err := run(os.Stdout, *n, *beta); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, n int, beta float64) error {
	dir, err := os.MkdirTemp("", "mis-social")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "social.adj")

	fmt.Fprintf(out, "generating P(α, β=%.1f) social graph with ≈%d users...\n", beta, n)
	if err := mis.GeneratePowerLawFile(path, n, beta, 42, true); err != nil {
		return err
	}
	f, err := mis.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	size, err := f.SizeBytes()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "graph: %d users, %d friendships, avg degree %.2f, %d bytes on disk\n\n",
		f.NumVertices(), f.NumEdges(), f.AvgDegree(), size)

	bound, err := f.UpperBound()
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "%-18s %10s %8s %10s %8s %8s\n", "algorithm", "|IS|", "ratio", "memory", "p.scans", "time")
	// The comparison file is degree-sorted, so running BASELINE over it
	// would silently reproduce GREEDY; BaselineOnSorted opts in knowingly,
	// to keep the Table 5-style comparison complete on one file.
	solver := mis.NewSolver(f, mis.BaselineOnSorted())
	ctx := context.Background()
	for _, alg := range mis.Algorithms() {
		f.ResetStats()
		start := time.Now()
		r, err := solver.Solve(ctx, alg)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		if err := f.VerifyIndependent(r); err != nil {
			return fmt.Errorf("%s: %w", alg, err)
		}
		fmt.Fprintf(out, "%-18s %10d %8.4f %10d %8d %8s\n",
			alg, r.Size, r.Ratio(bound), r.MemoryBytes, r.IO.PhysicalScans,
			elapsed.Round(time.Millisecond))
	}
	fmt.Fprintf(out, "\nupper bound on the independence number: %d\n", bound)
	return nil
}
