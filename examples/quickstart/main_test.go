package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun is the compile-and-run smoke test: the example must finish without
// error and reach its verification line.
func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verified: the result is an independent set and maximal") {
		t.Fatalf("missing verification line in output:\n%s", out.String())
	}
}
