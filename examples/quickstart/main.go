// Quickstart: build a small graph file, run the full pipeline
// (Greedy → One-k-swap → Two-k-swap), and compare against the upper bound.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	mis "repro"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	dir, err := os.MkdirTemp("", "mis-quickstart")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "toy.adj")

	// The paper's Figure 1: a hub v1 connected to v3, v4, v5, and an
	// isolated v2 (0-indexed below). {v1, v2} is maximal; {v2..v5} maximum.
	b := mis.NewBuilder(5)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(0, 4)
	if err := b.WriteFile(path, true /* degree-sorted */); err != nil {
		return err
	}

	f, err := mis.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(out, "graph: %d vertices, %d edges\n", f.NumVertices(), f.NumEdges())

	// The Solver is the context-first API: every call takes a ctx that can
	// carry a deadline or be canceled (Ctrl-C style) mid-scan, and options
	// attach observers — per-scan progress, per-round gain — to long runs.
	ctx := context.Background()
	solver := mis.NewSolver(f)

	greedy, err := solver.Greedy(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "greedy:      size %d, members %v\n", greedy.Size, greedy.Vertices())

	one, err := solver.OneKSwap(ctx, greedy)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "one-k-swap:  size %d after %d rounds\n", one.Size, one.Rounds)

	two, err := solver.TwoKSwap(ctx, greedy)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "two-k-swap:  size %d after %d rounds\n", two.Size, two.Rounds)

	bound, err := solver.UpperBound(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "upper bound: %d  → approximation ratio %.3f\n", bound, two.Ratio(bound))

	// Both checks fuse into a single physical scan.
	if err := solver.Verify(ctx, two); err != nil {
		return err
	}
	fmt.Fprintln(out, "verified: the result is an independent set and maximal")
	return nil
}
