package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the streaming maintainer on a small update stream.
func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 3000, 2000, 500); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "invariant verified: the maintained set is independent") {
		t.Fatalf("missing invariant line in output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "fresh two-k-swap:") {
		t.Fatalf("missing drift comparison in output:\n%s", out.String())
	}
}
