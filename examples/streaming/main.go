// Streaming updates: maintain an independent set while the graph changes —
// the incremental setting the paper's conclusion lists as future work.
//
// A power-law "friendship" graph receives a stream of edge insertions and
// deletions. The maintainer keeps the set independent after every single
// update (insertions inside the set evict an endpoint immediately) and
// restores maximality with a periodic one-scan Repair. At the end the
// effective graph is materialized and re-optimized with two-k-swap to show
// how close lazy maintenance stayed to a fresh solve.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	mis "repro"
)

func main() {
	if err := run(os.Stdout, 100000, 50000, 10000); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, users, updates, repairEvery int) error {
	dir, err := os.MkdirTemp("", "mis-streaming")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "base.adj")
	if err := mis.GeneratePowerLawFile(base, users, 2.1, 11, true); err != nil {
		return err
	}

	f, err := mis.Open(base)
	if err != nil {
		return err
	}
	defer f.Close()
	seed, err := f.Greedy()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "base graph: %d users, %d edges; initial greedy set: %d\n",
		f.NumVertices(), f.NumEdges(), seed.Size)

	m, err := mis.NewMaintainer(f, seed)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(99))
	n := uint32(f.NumVertices())
	for i := 1; i <= updates; i++ {
		u, v := rng.Uint32()%n, rng.Uint32()%n
		if u == v {
			continue
		}
		if rng.Intn(3) == 0 {
			err = m.DeleteEdge(u, v)
		} else {
			err = m.InsertEdge(u, v)
		}
		if err != nil {
			return err
		}
		if i%repairEvery == 0 {
			added, err := m.Repair()
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "after %6d updates: |IS| = %d (evictions so far %d, repair re-added %d, delta %d edges)\n",
				i, m.Size(), m.Evictions(), added, m.DeltaEdges())
		}
	}
	if err := m.Verify(); err != nil {
		return err
	}
	fmt.Fprintln(out, "invariant verified: the maintained set is independent")

	// How far did lazy maintenance drift from a fresh solve?
	mat := filepath.Join(dir, "materialized.adj")
	if err := m.Materialize(mat); err != nil {
		return err
	}
	mf, err := mis.Open(mat)
	if err != nil {
		return err
	}
	defer mf.Close()
	fresh, err := mf.Greedy()
	if err != nil {
		return err
	}
	improved, err := mf.TwoKSwap(fresh, mis.SwapOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "maintained: %d   fresh greedy: %d   fresh two-k-swap: %d (%.2f%% drift)\n",
		m.Size(), fresh.Size, improved.Size,
		100*float64(improved.Size-m.Size())/float64(improved.Size))
	return nil
}
