package mis

import "fmt"

// Result is an independent set together with the run's accounting.
type Result struct {
	// InSet marks membership, indexed by vertex ID.
	InSet []bool
	// Size is the number of vertices in the set.
	Size int
	// Rounds is the number of swap rounds executed (swap algorithms only).
	Rounds int
	// RoundGains lists the net new IS vertices per round (Table 8's
	// early-stop measurements).
	RoundGains []int
	// RoundIO is the I/O each swap round performed, aligned with
	// RoundGains. With cross-round pass fusion a steady-state round shows
	// one physical scan plus carried logical scans. Empty for non-swap
	// algorithms.
	RoundIO []IOStats
	// MemoryBytes is the high-water in-memory footprint of the algorithm's
	// auxiliary structures.
	MemoryBytes uint64
	// SCHighWater is the peak number of vertices held in SC swap-candidate
	// sets (two-k-swap only; Figure 10).
	SCHighWater int
	// Degrees summarizes the degree sequence (max, isolated count, 2·|E|),
	// collected by a read-only logical pass fused into Greedy's marking scan
	// — no extra physical scan. Zero-valued for other algorithms.
	Degrees DegreeStats
	// IO is the I/O performed by this run.
	IO IOStats
}

// DegreeStats summarizes a file's degree sequence as observed by one scan.
type DegreeStats struct {
	// Max is the largest degree.
	Max uint32
	// Isolated counts zero-degree vertices.
	Isolated int
	// Sum is the directed degree sum, i.e. 2·|E|.
	Sum uint64
}

// Vertices returns the members in ascending vertex-ID order.
func (r *Result) Vertices() []uint32 {
	out := make([]uint32, 0, r.Size)
	for v, in := range r.InSet {
		if in {
			out = append(out, uint32(v))
		}
	}
	return out
}

// Contains reports whether v is in the set.
func (r *Result) Contains(v uint32) bool {
	return int(v) < len(r.InSet) && r.InSet[v]
}

// Ratio returns Size divided by the given bound — the approximation ratio
// against an upper bound on the independence number.
func (r *Result) Ratio(upperBound uint64) float64 {
	if upperBound == 0 {
		return 0
	}
	return float64(r.Size) / float64(upperBound)
}

// String summarizes the result.
func (r *Result) String() string {
	return fmt.Sprintf("independent set: size=%d rounds=%d memory=%dB", r.Size, r.Rounds, r.MemoryBytes)
}

// IOStats counts the I/O a run performed: sequential scans, records, bytes
// and buffered blocks. Scans counts logical passes (each algorithm pass
// over the file); PhysicalScans counts actual end-to-end passes over the
// disk — fewer than Scans when the pass scheduler fused logical passes into
// shared physical scans, and the number the paper's I/O cost model prices.
type IOStats struct {
	Scans         int
	PhysicalScans int
	// CarriedScans counts logical scans satisfied from state carried across
	// swap rounds (cross-round pass fusion) — collected while riding an
	// earlier round's physical scan and resolved from memory, each one a
	// physical scan the classic round structure would have paid.
	CarriedScans  int
	RecordsRead   uint64
	BytesRead     uint64
	BytesWritten  uint64
	BlocksRead    uint64
	BlocksWritten uint64
}
