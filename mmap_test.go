package mis_test

import (
	"path/filepath"
	"testing"

	mis "repro"
)

// TestWithMmapEndToEnd runs the full algorithm suite on a WithMmap file and
// checks the results and I/O accounting against the default engine: the
// mmap path is purely an I/O-engine swap, invisible to the algorithms.
func TestWithMmapEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mmap.adj")
	if err := mis.GeneratePowerLawFile(path, 3000, 2.0, 11, true); err != nil {
		t.Fatal(err)
	}

	run := func(opts ...mis.OpenOption) (greedySize int, stats mis.IOStats) {
		f, err := mis.Open(path, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		greedy, err := f.Greedy()
		if err != nil {
			t.Fatal(err)
		}
		improved, err := f.TwoKSwap(greedy, mis.SwapOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Verify(improved); err != nil {
			t.Fatal(err)
		}
		return greedy.Size, f.Stats()
	}

	plainSize, plainStats := run()
	mmapSize, mmapStats := run(mis.WithMmap())
	if mmapSize != plainSize {
		t.Fatalf("greedy size %d with mmap, %d without", mmapSize, plainSize)
	}
	if mmapStats != plainStats {
		t.Fatalf("stats differ:\n mmap    %+v\n default %+v", mmapStats, plainStats)
	}
}

// TestWithMmapParallelWorkers: the mapped engine under the parallel
// executor, end to end through the public API.
func TestWithMmapParallelWorkers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mmap-par.adj")
	if err := mis.GeneratePowerLawFile(path, 4000, 2.0, 13, true); err != nil {
		t.Fatal(err)
	}
	ref, err := mis.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want, err := ref.Greedy()
	if err != nil {
		t.Fatal(err)
	}

	f, err := mis.Open(path, mis.WithMmap(), mis.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != want.Size {
		t.Fatalf("greedy size %d with mmap+workers, %d sequential", got.Size, want.Size)
	}
	if err := f.Verify(got); err != nil {
		t.Fatal(err)
	}
}
