package mis

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
)

// ErrBaselineOnSorted is wrapped by the error Solve returns when AlgBaseline
// is requested on a degree-sorted file without the BaselineOnSorted opt-in.
var ErrBaselineOnSorted = errors.New("mis: baseline requested on a degree-sorted file")

// Solver runs the paper's algorithms over one File with a fixed
// configuration: swap tuning, scan parallelism, and observability hooks.
// Every entry point takes a context.Context and honors cancellation and
// deadlines within one decoded batch of a scan; the returned error then
// wraps ctx.Err() together with the scan position (errors.Is sees through
// it).
//
// A Solver is cheap to construct and safe for concurrent use: each call
// accounts its I/O into a private stat scope that merges into the file's
// lifetime totals, so several solvers — or several calls on one solver —
// may run against the same File from different goroutines. Results are
// bit-identical to the legacy context-free methods for every configuration.
type Solver struct {
	f   *File
	cfg solverConfig
}

type solverConfig struct {
	swap             SwapOptions
	workers          int
	onProgress       func(ScanProgress)
	onRound          func(RoundEvent)
	baselineOnSorted bool
}

// SolverOption configures a Solver.
type SolverOption func(*solverConfig)

// MaxRounds caps swap rounds; 0 (the default) means run until no swap fires.
// See SwapOptions.MaxRounds.
func MaxRounds(n int) SolverOption {
	return func(c *solverConfig) { c.swap.MaxRounds = n }
}

// EarlyStop stops the swap algorithms after a fixed number of rounds — the
// paper observes ≥97% of swap gain lands in the first three. 0 disables.
// See SwapOptions.EarlyStopRounds.
func EarlyStop(n int) SolverOption {
	return func(c *solverConfig) { c.swap.EarlyStopRounds = n }
}

// StallRounds stops the swap algorithms after this many consecutive
// zero-gain rounds; 0 selects the default of 3. See SwapOptions.StallRounds.
func StallRounds(n int) SolverOption {
	return func(c *solverConfig) { c.swap.StallRounds = n }
}

// Workers sets the solver's scan parallelism: the number of goroutines
// decoding file partitions concurrently during scans. Results are
// bit-identical for any value. 0 (the default) uses the file's setting, 1
// forces the sequential engine, ≤ -1 selects GOMAXPROCS. See WithWorkers.
func Workers(n int) SolverOption {
	return func(c *solverConfig) { c.workers = n }
}

// OnProgress attaches a per-scan progress observer: fn is called after every
// decoded batch of every sequential pass, synchronously on the scan
// goroutine — keep it cheap, and make it concurrency-tolerant if the solver
// is shared across goroutines.
func OnProgress(fn func(ScanProgress)) SolverOption {
	return func(c *solverConfig) { c.onProgress = fn }
}

// OnRound attaches a per-round observer to the swap algorithms: fn is called
// after every completed round with its gain and I/O delta, synchronously on
// the algorithm goroutine.
func OnRound(fn func(RoundEvent)) SolverOption {
	return func(c *solverConfig) { c.onRound = fn }
}

// BaselineOnSorted opts in to running AlgBaseline on a degree-sorted file.
// Without it Solve refuses (wrapping ErrBaselineOnSorted), because a
// baseline scan over a degree-sorted file silently reproduces GREEDY and
// inflates baseline numbers.
func BaselineOnSorted() SolverOption {
	return func(c *solverConfig) { c.baselineOnSorted = true }
}

// NewSolver returns a solver over f with the given options.
//
//	s := mis.NewSolver(f, mis.MaxRounds(9), mis.Workers(4),
//		mis.OnRound(func(ev mis.RoundEvent) { log.Printf("round %d: +%d", ev.Round, ev.Gain) }))
//	r, err := s.Solve(ctx, mis.AlgTwoKSwap)
func NewSolver(f *File, opts ...SolverOption) *Solver {
	s := &Solver{f: f}
	for _, o := range opts {
		o(&s.cfg)
	}
	return s
}

// source returns a fresh per-call scan engine: a view of the file that
// accounts into a run-private stat scope (merging into the file totals),
// parallel when the effective worker count exceeds 1.
func (s *Solver) source() core.Source {
	return s.f.runSource(s.cfg.workers)
}

// hooks adapts the solver's observers to the core layer.
func (s *Solver) hooks() core.Hooks {
	var h core.Hooks
	if fn := s.cfg.onProgress; fn != nil {
		h.OnScan = func(p core.ScanProgress) {
			fn(ScanProgress{Records: p.Records, Total: p.Total})
		}
	}
	if fn := s.cfg.onRound; fn != nil {
		h.OnRound = func(ev core.RoundEvent) {
			fn(RoundEvent{Round: ev.Round, Gain: ev.Gain, Size: ev.Size, IO: IOStats(ev.IO)})
		}
	}
	return h
}

// Solve runs the named algorithm. Swap algorithms are seeded with a fresh
// Greedy result; use the dedicated methods to control the seed.
func (s *Solver) Solve(ctx context.Context, alg Algorithm) (*Result, error) {
	switch alg {
	case AlgGreedy:
		return s.Greedy(ctx)
	case AlgBaseline:
		if s.f.DegreeSorted() && !s.cfg.baselineOnSorted {
			return nil, fmt.Errorf("%w: %s is degree-sorted, so the baseline scan would reproduce GREEDY and inflate baseline numbers; run it on the unsorted input, or opt in explicitly with mis.BaselineOnSorted()",
				ErrBaselineOnSorted, s.f.Path())
		}
		return s.Greedy(ctx) // identical scan; the file's order decides
	case AlgOneKSwap:
		seed, err := s.Greedy(ctx)
		if err != nil {
			return nil, err
		}
		return s.OneKSwap(ctx, seed)
	case AlgTwoKSwap:
		seed, err := s.Greedy(ctx)
		if err != nil {
			return nil, err
		}
		return s.TwoKSwap(ctx, seed)
	case AlgDynamicUpdate:
		return s.DynamicUpdate(ctx)
	case AlgExternalMaximal:
		return s.ExternalMaximal(ctx)
	}
	return nil, fmt.Errorf("mis: unknown algorithm %q", alg)
}

// Greedy runs Algorithm 1 (one sequential scan; a maximal independent set).
func (s *Solver) Greedy(ctx context.Context) (*Result, error) {
	r, err := core.GreedyCtx(ctx, s.source(), s.hooks())
	if err != nil {
		return nil, err
	}
	return fromCore(r), nil
}

// OneKSwap runs Algorithm 2 starting from the given independent set.
func (s *Solver) OneKSwap(ctx context.Context, initial *Result) (*Result, error) {
	if initial == nil {
		return nil, nilArg("OneKSwap", "initial set")
	}
	r, err := core.OneKSwapCtx(ctx, s.source(), initial.InSet, s.cfg.swap.internal(), s.hooks())
	if err != nil {
		return nil, err
	}
	return fromCore(r), nil
}

// TwoKSwap runs Algorithms 3–4 starting from the given independent set.
func (s *Solver) TwoKSwap(ctx context.Context, initial *Result) (*Result, error) {
	if initial == nil {
		return nil, nilArg("TwoKSwap", "initial set")
	}
	r, err := core.TwoKSwapCtx(ctx, s.source(), initial.InSet, s.cfg.swap.internal(), s.hooks())
	if err != nil {
		return nil, err
	}
	return fromCore(r), nil
}

// DynamicUpdate runs the classical in-memory greedy. It loads the whole
// graph into memory first — the scalability limitation the paper's
// algorithms remove — so expect it to fail on graphs that do not fit. The
// load runs as a scheduled scan of the solver's engine, so ctx cancels it
// between batches and OnProgress observes it like any other pass.
func (s *Solver) DynamicUpdate(ctx context.Context) (*Result, error) {
	g, err := core.LoadGraphSource(ctx, s.source(), s.hooks())
	if err != nil {
		return nil, err
	}
	return fromCore(core.DynamicUpdate(g)), nil
}

// ExternalMaximal computes a maximal independent set by time-forward
// processing through an external priority queue (the paper's STXXL
// competitor).
func (s *Solver) ExternalMaximal(ctx context.Context) (*Result, error) {
	r, err := core.ExternalMaximalCtx(ctx, s.source(), core.ExternalMaximalOptions{}, s.hooks())
	if err != nil {
		return nil, err
	}
	return fromCore(r), nil
}

// RandomizedMaximal computes a maximal independent set with the randomized
// external rounds of Abello, Buchsbaum and Westbrook. Deterministic per seed
// for any worker count.
func (s *Solver) RandomizedMaximal(ctx context.Context, seed int64) (*Result, error) {
	r, err := core.RandomizedMaximalCtx(ctx, s.source(), seed, s.hooks())
	if err != nil {
		return nil, err
	}
	return fromCore(r), nil
}

// UpperBound runs Algorithm 5: a one-scan upper bound on the independence
// number.
func (s *Solver) UpperBound(ctx context.Context) (uint64, error) {
	return core.UpperBoundCtx(ctx, s.source(), s.hooks())
}

// WeiBound returns Wei's degree-based lower bound on the independence
// number, Σ_v 1/(deg(v)+1), with one sequential scan.
func (s *Solver) WeiBound(ctx context.Context) (float64, error) {
	return core.WeiBoundCtx(ctx, s.source(), s.hooks())
}

// Verify checks independence and maximality together in one fused physical
// scan (see File.Verify). A nil result is rejected with a typed error
// wrapping ErrNilArgument.
func (s *Solver) Verify(ctx context.Context, r *Result) error {
	if r == nil {
		return nilArg("Verify", "result")
	}
	return core.VerifyBothCtx(ctx, s.source(), r.InSet, s.hooks())
}

// VerifyIndependent checks that no edge has both endpoints in the result.
func (s *Solver) VerifyIndependent(ctx context.Context, r *Result) error {
	if r == nil {
		return nilArg("VerifyIndependent", "result")
	}
	return core.VerifyIndependentCtx(ctx, s.source(), r.InSet, s.hooks())
}

// VerifyMaximal checks that every vertex outside the result has a neighbor
// inside it.
func (s *Solver) VerifyMaximal(ctx context.Context, r *Result) error {
	if r == nil {
		return nilArg("VerifyMaximal", "result")
	}
	return core.VerifyMaximalCtx(ctx, s.source(), r.InSet, s.hooks())
}

// VerifyVertexCover checks that every edge of the file has an endpoint in
// cover.
func (s *Solver) VerifyVertexCover(ctx context.Context, cover []bool) error {
	return core.VerifyVertexCoverCtx(ctx, s.source(), cover, s.hooks())
}

// ColorByIS builds a proper coloring by repeatedly extracting a maximal
// independent set (see File.ColorByIS). ctx cancels between batches and
// between color classes.
func (s *Solver) ColorByIS(ctx context.Context, maxColors int) (*Coloring, error) {
	col, err := core.ColorByISCtx(ctx, s.source(), maxColors, s.hooks())
	if err != nil {
		return nil, err
	}
	return &Coloring{
		Colors:     col.Colors,
		NumColors:  col.NumColors,
		ClassSizes: col.ClassSizes,
	}, nil
}

// VerifyColoring checks that the coloring is proper and complete. A nil
// coloring is rejected with a typed error wrapping ErrNilArgument.
func (s *Solver) VerifyColoring(ctx context.Context, col *Coloring) error {
	if col == nil {
		return nilArg("VerifyColoring", "coloring")
	}
	return core.VerifyColoringCtx(ctx, s.source(), &core.Coloring{
		Colors:     col.Colors,
		NumColors:  col.NumColors,
		ClassSizes: col.ClassSizes,
	}, s.hooks())
}
