package mis_test

import (
	"context"
	"errors"
	"testing"

	mis "repro"
)

// TestNilArgumentsReturnTypedErrors pins the daemon-facing contract: every
// public entry point that takes a client-supplied pointer rejects nil with
// an error wrapping mis.ErrNilArgument instead of panicking.
func TestNilArgumentsReturnTypedErrors(t *testing.T) {
	f := openTiny(t)
	defer f.Close()
	ctx := context.Background()
	s := mis.NewSolver(f)

	checks := []struct {
		name string
		call func() error
	}{
		{"Solver.Verify", func() error { return s.Verify(ctx, nil) }},
		{"Solver.VerifyIndependent", func() error { return s.VerifyIndependent(ctx, nil) }},
		{"Solver.VerifyMaximal", func() error { return s.VerifyMaximal(ctx, nil) }},
		{"Solver.VerifyColoring", func() error { return s.VerifyColoring(ctx, nil) }},
		{"Solver.OneKSwap", func() error { _, err := s.OneKSwap(ctx, nil); return err }},
		{"Solver.TwoKSwap", func() error { _, err := s.TwoKSwap(ctx, nil); return err }},
		{"File.Verify", func() error { return f.Verify(nil) }},
		{"File.VerifyCtx", func() error { return f.VerifyCtx(ctx, nil) }},
		{"File.VerifyIndependent", func() error { return f.VerifyIndependent(nil) }},
		{"File.VerifyMaximal", func() error { return f.VerifyMaximal(nil) }},
		{"File.VerifyColoring", func() error { return f.VerifyColoring(nil) }},
		{"File.VerifyColoringCtx", func() error { return f.VerifyColoringCtx(ctx, nil) }},
		{"File.OneKSwap", func() error { _, err := f.OneKSwap(nil, mis.SwapOptions{}); return err }},
		{"File.TwoKSwap", func() error { _, err := f.TwoKSwap(nil, mis.SwapOptions{}); return err }},
	}
	for _, c := range checks {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("%s panicked on nil: %v", c.name, p)
				}
			}()
			err := c.call()
			if err == nil {
				t.Fatalf("%s accepted nil", c.name)
			}
			if !errors.Is(err, mis.ErrNilArgument) {
				t.Fatalf("%s error %v does not wrap ErrNilArgument", c.name, err)
			}
			var na *mis.NilArgumentError
			if !errors.As(err, &na) {
				t.Fatalf("%s error %v is not a *NilArgumentError", c.name, err)
			}
		})
	}
}

func openTiny(t *testing.T) *mis.File {
	t.Helper()
	f, err := mis.Open("testdata/tiny.adj")
	if err != nil {
		t.Fatal(err)
	}
	return f
}
