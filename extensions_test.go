package mis_test

import (
	"path/filepath"
	"testing"

	mis "repro"
)

func plrgFile(t *testing.T, n int, beta float64, seed int64) *mis.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.adj")
	if err := mis.GeneratePowerLawFile(path, n, beta, seed, true); err != nil {
		t.Fatal(err)
	}
	f, err := mis.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestRandomizedMaximalFacade(t *testing.T) {
	f := plrgFile(t, 2000, 2.0, 4)
	r, err := f.RandomizedMaximal(42)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.VerifyIndependent(r); err != nil {
		t.Fatal(err)
	}
	if err := f.VerifyMaximal(r); err != nil {
		t.Fatal(err)
	}
	if r.Rounds == 0 {
		t.Fatal("rounds not reported")
	}
}

func TestWeiBoundFacade(t *testing.T) {
	f := plrgFile(t, 2000, 2.0, 4)
	wb, err := f.WeiBound()
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := f.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if float64(greedy.Size) < wb {
		t.Fatalf("greedy %d below Wei bound %f", greedy.Size, wb)
	}
	bound, err := f.UpperBound()
	if err != nil {
		t.Fatal(err)
	}
	if wb > float64(bound) {
		t.Fatalf("Wei lower bound %f above Algorithm 5 upper bound %d", wb, bound)
	}
}

func TestVertexCoverFacade(t *testing.T) {
	f := plrgFile(t, 1500, 2.2, 5)
	greedy, err := f.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	cover := greedy.VertexCover()
	if err := f.VerifyVertexCover(cover); err != nil {
		t.Fatal(err)
	}
	inCover := 0
	for _, c := range cover {
		if c {
			inCover++
		}
	}
	if inCover+greedy.Size != f.NumVertices() {
		t.Fatal("cover and set must partition the vertices")
	}
}

func TestColoringFacade(t *testing.T) {
	f := plrgFile(t, 1500, 2.0, 6)
	col, err := f.ColorByIS(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.VerifyColoring(col); err != nil {
		t.Fatal(err)
	}
	if col.NumColors < 2 {
		t.Fatalf("power-law graph colored with %d colors", col.NumColors)
	}
	if len(col.ClassSizes) != col.NumColors {
		t.Fatal("class size bookkeeping wrong")
	}
	// Classes shrink (weakly) because each is a maximal IS of the residual.
	for i := 1; i < len(col.ClassSizes); i++ {
		if col.ClassSizes[i] > col.ClassSizes[0] {
			t.Fatalf("class %d larger than the first greedy class", i)
		}
	}
}

func TestMaintainerFacade(t *testing.T) {
	f := plrgFile(t, 1000, 2.0, 7)
	greedy, err := f.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	m, err := mis.NewMaintainer(f, greedy)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != greedy.Size {
		t.Fatal("maintainer did not adopt the seed size")
	}
	// Insert an edge between two members: one must be evicted.
	members := greedy.Vertices()
	if err := m.InsertEdge(members[0], members[1]); err != nil {
		t.Fatal(err)
	}
	if m.Size() != greedy.Size-1 || m.Evictions() != 1 {
		t.Fatalf("eviction bookkeeping wrong: size=%d evictions=%d", m.Size(), m.Evictions())
	}
	if _, err := m.Repair(); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	snap := m.Result()
	if snap.Size != m.Size() {
		t.Fatal("snapshot size mismatch")
	}
	// Materialize and re-open.
	path := filepath.Join(t.TempDir(), "mat.adj")
	if err := m.Materialize(path); err != nil {
		t.Fatal(err)
	}
	mf, err := mis.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	if err := mf.VerifyIndependent(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := mis.NewMaintainer(f, nil); err == nil {
		t.Fatal("nil seed accepted")
	}
}
