package mis

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gio"
	"repro/internal/graph"
)

// MaxExactVertices is the largest graph Exact accepts (the solver packs the
// vertex set into one machine word).
const MaxExactVertices = core.MaxExactVertices

// Exact computes the exact independence number and one maximum independent
// set of a small graph file (≤ 64 vertices) by branch and bound. It exists
// for calibration and testing — the exponential-time exact algorithms the
// paper cites (Robson, Xiao) only ever handle toy instances, which is the
// entire motivation for its scalable approximations.
func Exact(f *File) (*Result, error) {
	if f.NumVertices() > MaxExactVertices {
		return nil, fmt.Errorf("mis: exact solver supports ≤ %d vertices, got %d",
			MaxExactVertices, f.NumVertices())
	}
	var g *graph.Graph
	var err error
	if f.shards != nil {
		g, err = gio.LoadGraphSource(f.runSource(1))
	} else {
		g, err = gio.LoadGraph(f.inner.Path(), f.stats.Scope())
	}
	if err != nil {
		return nil, err
	}
	in, size, err := core.ExactSet(g)
	if err != nil {
		return nil, err
	}
	return &Result{InSet: in, Size: size}, nil
}
