package mis

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/shard"
)

// ShardManifestName is the file name that marks a directory as a sharded
// graph (see OpenSharded). It is exported so tools and tests can build paths
// without importing internal packages.
const ShardManifestName = shard.ManifestName

// ErrSharded is the sentinel wrapped by every "this needs a single mutable
// adjacency file" failure on a sharded graph: maintainers and journals
// rewrite the file in place, which a read-only shard set cannot support.
var ErrSharded = errors.New("mis: graph is sharded")

// IsShardManifest reports whether path names a sharded graph: the manifest
// file itself, or a directory containing one.
func IsShardManifest(path string) bool { return shard.IsManifestPath(path) }

// OpenSharded opens a sharded graph — a MANIFEST.shards plus its shard files,
// typically produced by missplit or misconvert -shards — as a File. path may
// be the manifest file or its directory. The returned File behaves like a
// single-file open of the merged graph: every algorithm, worker count and
// statistic matches, scans stream the shards in manifest order (in parallel
// across shards when workers > 1), and ContentDigest returns a combined
// digest so result caching keys on the shard set's exact contents. Only the
// mutation surface differs: NewMaintainer and journals refuse sharded graphs
// (see ErrSharded).
//
// WithBlockSize and WithWorkers apply as for Open; WithMmap maps every shard.
func OpenSharded(path string, opts ...OpenOption) (*File, error) {
	cfg := openConfig{workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	set, err := shard.Open(path, shard.Options{BlockSize: cfg.blockSize, Mmap: cfg.mmap})
	if err != nil {
		return nil, err
	}
	f := &File{shards: set}
	f.workers.Store(int32(cfg.workers))
	return f, nil
}

// OpenGraph opens path as whatever kind of graph it is: a sharded graph when
// IsShardManifest(path) (manifest file or directory), a plain adjacency file
// otherwise. Journal directories are not handled here — use OpenJournal or a
// Registry for those.
func OpenGraph(path string, opts ...OpenOption) (*File, error) {
	if IsShardManifest(path) {
		return OpenSharded(path, opts...)
	}
	return Open(path, opts...)
}

// Sharded reports whether f is backed by a shard set rather than a single
// adjacency file.
func (f *File) Sharded() bool { return f.shards != nil }

// NumShards returns the number of shard files backing f, or 0 for a
// single-file graph.
func (f *File) NumShards() int {
	if f.shards == nil {
		return 0
	}
	return f.shards.NumShards()
}

// ShardDigests returns each shard file's SHA-256 content digest in manifest
// order, verifying them against the digests recorded at split time. On a
// single-file graph it returns nil, nil.
func (f *File) ShardDigests(ctx context.Context) ([]string, error) {
	if f.shards == nil {
		return nil, nil
	}
	return f.shards.ShardDigests(ctx)
}

// shardedErr builds the typed refusal for an operation that needs a single
// mutable adjacency file.
func shardedErr(op string) error {
	return fmt.Errorf("%w: %s needs a single adjacency file, not a shard set", ErrSharded, op)
}
