package extsort

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/gio"
	"repro/internal/graph"
)

func randomGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	return b.Build()
}

// checkSorted verifies dst is a degree-sorted permutation of g.
func checkSorted(t *testing.T, dst string, g *graph.Graph) {
	t.Helper()
	f, err := gio.Open(dst, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Header().DegreeSorted() {
		t.Fatal("output missing degree-sorted flag")
	}
	if f.NumVertices() != g.NumVertices() {
		t.Fatalf("output has %d vertices, want %d", f.NumVertices(), g.NumVertices())
	}
	seen := make([]bool, g.NumVertices())
	prevDeg, prevID := -1, -1
	err = f.ForEach(func(r gio.Record) error {
		if seen[r.ID] {
			t.Fatalf("vertex %d appears twice", r.ID)
		}
		seen[r.ID] = true
		d := len(r.Neighbors)
		if d < prevDeg || (d == prevDeg && int(r.ID) < prevID) {
			t.Fatalf("order violated at vertex %d (deg %d after deg %d id %d)", r.ID, d, prevDeg, prevID)
		}
		prevDeg, prevID = d, int(r.ID)
		if d != g.Degree(r.ID) {
			t.Fatalf("vertex %d: degree %d, want %d", r.ID, d, g.Degree(r.ID))
		}
		for _, nb := range r.Neighbors {
			if !g.HasEdge(r.ID, nb) {
				t.Fatalf("invented edge {%d,%d}", r.ID, nb)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("vertex %d missing from output", v)
		}
	}
}

func TestSortByDegreeInMemory(t *testing.T) {
	g := randomGraph(1, 200, 600)
	dir := t.TempDir()
	src := filepath.Join(dir, "in.adj")
	dst := filepath.Join(dir, "out.adj")
	if err := gio.WriteGraph(src, g, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := SortByDegree(src, dst, Options{}); err != nil {
		t.Fatal(err)
	}
	checkSorted(t, dst, g)
}

func TestSortByDegreeWithSpills(t *testing.T) {
	// A tiny memory budget forces many runs and at least one merge pass.
	g := randomGraph(2, 300, 900)
	dir := t.TempDir()
	src := filepath.Join(dir, "in.adj")
	dst := filepath.Join(dir, "out.adj")
	if err := gio.WriteGraph(src, g, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := SortByDegree(src, dst, Options{MemoryBudget: 256, MaxFanIn: 3}); err != nil {
		t.Fatal(err)
	}
	checkSorted(t, dst, g)
}

func TestSortEmptyGraph(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "in.adj")
	dst := filepath.Join(dir, "out.adj")
	if err := gio.WriteGraph(src, graph.NewBuilder(0).Build(), nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := SortByDegree(src, dst, Options{}); err != nil {
		t.Fatal(err)
	}
	f, err := gio.Open(dst, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumVertices() != 0 {
		t.Fatal("empty sort produced vertices")
	}
}

func TestSortCompressedInput(t *testing.T) {
	// The sorter reads through the gio scanner, so a compressed input file
	// sorts like any other; the output is a raw degree-sorted file.
	g := randomGraph(9, 200, 500)
	dir := t.TempDir()
	src := filepath.Join(dir, "in.cadj")
	w, err := gio.NewWriter(src, gio.FlagCompressed, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if err := w.Append(uint32(v), g.Neighbors(uint32(v))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "out.adj")
	if err := SortByDegree(src, dst, Options{MemoryBudget: 1024}); err != nil {
		t.Fatal(err)
	}
	checkSorted(t, dst, g)
}

func TestSortMissingInput(t *testing.T) {
	dir := t.TempDir()
	err := SortByDegree(filepath.Join(dir, "nope.adj"), filepath.Join(dir, "out.adj"), Options{})
	if err == nil {
		t.Fatal("expected error for missing input")
	}
}

func TestSortProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8, budget uint16) bool {
		n := int(nRaw%50) + 1
		g := randomGraph(seed, n, int(mRaw))
		dir := t.TempDir()
		src := filepath.Join(dir, "in.adj")
		dst := filepath.Join(dir, "out.adj")
		if err := gio.WriteGraph(src, g, nil, 0, nil); err != nil {
			return false
		}
		if err := SortByDegree(src, dst, Options{MemoryBudget: int(budget%2048) + 64, MaxFanIn: 4}); err != nil {
			return false
		}
		out, err := gio.Open(dst, 0, nil)
		if err != nil {
			return false
		}
		defer out.Close()
		if out.NumVertices() != n {
			return false
		}
		prev := -1
		seen := 0
		ok := true
		_ = out.ForEach(func(r gio.Record) error {
			if len(r.Neighbors) < prev || len(r.Neighbors) != g.Degree(r.ID) {
				ok = false
			}
			prev = len(r.Neighbors)
			seen++
			return nil
		})
		return ok && seen == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
