package extsort

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Intermediate runs use a raw, EOF-terminated record stream rather than the
// gio adjacency format: a run holds an arbitrary subset of a graph's
// vertices, so gio's header-driven record count and ID validation do not
// apply to it.

type runWriter struct {
	f   *os.File
	bw  *bufio.Writer
	buf [8]byte
}

func newRunWriter(path string, blockSize int) (*runWriter, error) {
	if blockSize <= 0 {
		blockSize = 256 * 1024
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("extsort: create run %s: %w", path, err)
	}
	return &runWriter{f: f, bw: bufio.NewWriterSize(f, blockSize)}, nil
}

func (w *runWriter) append(id uint32, neighbors []uint32) error {
	binary.LittleEndian.PutUint32(w.buf[0:], id)
	binary.LittleEndian.PutUint32(w.buf[4:], uint32(len(neighbors)))
	if _, err := w.bw.Write(w.buf[:8]); err != nil {
		return err
	}
	for _, n := range neighbors {
		binary.LittleEndian.PutUint32(w.buf[:4], n)
		if _, err := w.bw.Write(w.buf[:4]); err != nil {
			return err
		}
	}
	return nil
}

func (w *runWriter) close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

type runReader struct {
	f    *os.File
	br   *bufio.Reader
	ns   []uint32
	buf  [8]byte
	path string
}

func newRunReader(path string, blockSize int) (*runReader, error) {
	if blockSize <= 0 {
		blockSize = 256 * 1024
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("extsort: open run %s: %w", path, err)
	}
	return &runReader{f: f, br: bufio.NewReaderSize(f, blockSize), path: path}, nil
}

// next returns the next record, or done=true at end of run. The returned
// neighbor slice is reused by subsequent calls.
func (r *runReader) next() (id uint32, neighbors []uint32, done bool, err error) {
	if _, err := io.ReadFull(r.br, r.buf[:8]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, true, nil
		}
		return 0, nil, false, fmt.Errorf("extsort: run %s: %w", r.path, err)
	}
	id = binary.LittleEndian.Uint32(r.buf[0:])
	deg := binary.LittleEndian.Uint32(r.buf[4:])
	if cap(r.ns) < int(deg) {
		r.ns = make([]uint32, deg, deg*2)
	}
	r.ns = r.ns[:deg]
	for i := range r.ns {
		if _, err := io.ReadFull(r.br, r.buf[:4]); err != nil {
			return 0, nil, false, fmt.Errorf("extsort: run %s truncated: %w", r.path, err)
		}
		r.ns[i] = binary.LittleEndian.Uint32(r.buf[:4])
	}
	return id, r.ns, false, nil
}

func (r *runReader) close() error { return r.f.Close() }
