package extsort

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/gio"
)

// Intermediate runs use a raw, EOF-terminated record stream rather than the
// gio adjacency format: a run holds an arbitrary subset of a graph's
// vertices, so gio's header-driven record count and ID validation do not
// apply to it. Record encoding and neighbor decoding reuse gio's raw-record
// codec, so the bytes are laid out identically to an adjacency file's body
// and both sides move whole records per call instead of 4 bytes at a time.

type runWriter struct {
	f   *os.File
	bw  *bufio.Writer
	buf []byte
}

func newRunWriter(path string, blockSize int) (*runWriter, error) {
	if blockSize <= 0 {
		blockSize = 256 * 1024
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("extsort: create run %s: %w", path, err)
	}
	return &runWriter{f: f, bw: bufio.NewWriterSize(f, blockSize)}, nil
}

func (w *runWriter) append(id uint32, neighbors []uint32) error {
	w.buf = gio.AppendRawRecord(w.buf[:0], id, neighbors)
	_, err := w.bw.Write(w.buf)
	return err
}

func (w *runWriter) close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

type runReader struct {
	f    *os.File
	br   *bufio.Reader
	ns   []uint32
	buf  []byte
	path string
}

func newRunReader(path string, blockSize int) (*runReader, error) {
	if blockSize <= 0 {
		blockSize = 256 * 1024
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("extsort: open run %s: %w", path, err)
	}
	return &runReader{f: f, br: bufio.NewReaderSize(f, blockSize), path: path, buf: make([]byte, 8)}, nil
}

// next returns the next record, or done=true at end of run. The returned
// neighbor slice is reused by subsequent calls.
func (r *runReader) next() (id uint32, neighbors []uint32, done bool, err error) {
	if _, err := io.ReadFull(r.br, r.buf[:8]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, true, nil
		}
		return 0, nil, false, fmt.Errorf("extsort: run %s: %w", r.path, err)
	}
	id = binary.LittleEndian.Uint32(r.buf[0:])
	deg := int(binary.LittleEndian.Uint32(r.buf[4:]))
	if cap(r.ns) < deg {
		r.ns = make([]uint32, deg, deg*2)
	}
	r.ns = r.ns[:deg]
	if cap(r.buf) < 4*deg {
		r.buf = make([]byte, 4*deg)
	}
	if _, err := io.ReadFull(r.br, r.buf[:4*deg]); err != nil {
		return 0, nil, false, fmt.Errorf("extsort: run %s truncated: %w", r.path, err)
	}
	gio.DecodeUint32s(r.ns, r.buf)
	return id, r.ns, false, nil
}

func (r *runReader) close() error { return r.f.Close() }
