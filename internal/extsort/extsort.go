// Package extsort implements the preprocessing phase of the paper's Greedy
// algorithm (Section 4.1): rewriting an adjacency file so that vertex
// records appear in ascending order of degree, using external merge sort
// with a bounded in-memory buffer.
//
// The sort proceeds in the classical two stages: sequential run generation
// (fill a memory budget with records, sort, spill a sorted run) followed by
// a multi-way merge of the runs. Both stages only read and write
// sequentially, matching the paper's I/O cost
// (|V|+|E|)/B · (log_{M/B}(|V|/B) + 2).
package extsort

import (
	"container/heap"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/gio"
)

// DefaultMemoryBudget bounds the bytes of adjacency records buffered in
// memory during run generation when the caller does not specify a budget.
const DefaultMemoryBudget = 64 * 1024 * 1024

// Options configure SortByDegree.
type Options struct {
	// MemoryBudget is the maximum bytes of record data held in memory during
	// run generation. ≤ 0 selects DefaultMemoryBudget.
	MemoryBudget int
	// BlockSize is the I/O buffer size; ≤ 0 selects gio.DefaultBlockSize.
	BlockSize int
	// TempDir receives intermediate run files; empty selects the destination
	// file's directory.
	TempDir string
	// Stats receives I/O accounting; may be nil.
	Stats *gio.Counters
	// MaxFanIn bounds the number of runs merged at once (multiple merge
	// passes happen above it). ≤ 0 selects 64.
	MaxFanIn int
}

type record struct {
	id        uint32
	deg       uint32
	neighbors []uint32
}

// SortByDegree reads the adjacency file at src and writes a new file at dst
// whose records are in ascending (degree, id) order and whose neighbor lists
// are ordered by ascending neighbor degree (ID tiebreak). It keeps only
// O(|V|) state (the degree array) plus the configured memory budget.
func SortByDegree(src, dst string, opts Options) error {
	if opts.MemoryBudget <= 0 {
		opts.MemoryBudget = DefaultMemoryBudget
	}
	if opts.MaxFanIn <= 0 {
		opts.MaxFanIn = 64
	}
	in, err := gio.Open(src, opts.BlockSize, opts.Stats)
	if err != nil {
		return err
	}
	defer in.Close()

	// Pass 1: degrees of all vertices (needed to order neighbor lists).
	deg, err := gio.ReadDegrees(in)
	if err != nil {
		return err
	}

	tempDir := opts.TempDir
	if tempDir == "" {
		tempDir = filepath.Dir(dst)
	}

	// Pass 2: run generation.
	runs, err := generateRuns(in, deg, tempDir, opts)
	if err != nil {
		return err
	}
	defer func() {
		for _, r := range runs {
			os.Remove(r)
		}
	}()

	// Merge passes until the fan-in fits; the last merge writes the final
	// gio adjacency file.
	level := 0
	for len(runs) > opts.MaxFanIn {
		var next []string
		for i := 0; i < len(runs); i += opts.MaxFanIn {
			end := i + opts.MaxFanIn
			if end > len(runs) {
				end = len(runs)
			}
			out := filepath.Join(tempDir, fmt.Sprintf("extsort-l%d-%d.run", level, i))
			if err := mergeToRun(runs[i:end], out, opts); err != nil {
				return err
			}
			for _, r := range runs[i:end] {
				os.Remove(r)
			}
			next = append(next, out)
		}
		runs = next
		level++
	}
	return mergeToFinal(runs, dst, opts)
}

func generateRuns(in *gio.File, deg []uint32, tempDir string, opts Options) ([]string, error) {
	var (
		runs    []string
		batch   []record
		pending int
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		sortBatch(batch)
		path := filepath.Join(tempDir, fmt.Sprintf("extsort-run-%d.run", len(runs)))
		w, err := newRunWriter(path, opts.BlockSize)
		if err != nil {
			return err
		}
		for _, r := range batch {
			sortNeighbors(r.neighbors, deg)
			if err := w.append(r.id, r.neighbors); err != nil {
				w.close()
				return err
			}
		}
		if err := w.close(); err != nil {
			return err
		}
		runs = append(runs, path)
		batch = batch[:0]
		pending = 0
		return nil
	}

	sc, err := in.Scan()
	if err != nil {
		return nil, err
	}
	defer sc.Close() // a mid-scan flush error must not strand the prefetcher
	for {
		recs := sc.NextBatch()
		if recs == nil {
			break
		}
		for _, r := range recs {
			ns := make([]uint32, len(r.Neighbors))
			copy(ns, r.Neighbors)
			batch = append(batch, record{id: r.ID, deg: uint32(len(ns)), neighbors: ns})
			pending += 8 + 4*len(ns)
			if pending >= opts.MemoryBudget {
				if err := flush(); err != nil {
					return runs, err
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return runs, err
	}
	if err := flush(); err != nil {
		return runs, err
	}
	if len(runs) == 0 {
		// Empty input still yields one empty run so the merge produces a
		// valid (empty) output file.
		path := filepath.Join(tempDir, "extsort-run-0.run")
		w, err := newRunWriter(path, opts.BlockSize)
		if err != nil {
			return runs, err
		}
		if err := w.close(); err != nil {
			return runs, err
		}
		runs = append(runs, path)
	}
	return runs, nil
}

func sortBatch(batch []record) {
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].deg != batch[j].deg {
			return batch[i].deg < batch[j].deg
		}
		return batch[i].id < batch[j].id
	})
}

func sortNeighbors(ns []uint32, deg []uint32) {
	sort.Slice(ns, func(i, j int) bool {
		di, dj := deg[ns[i]], deg[ns[j]]
		if di != dj {
			return di < dj
		}
		return ns[i] < ns[j]
	})
}

// mergeItem is the head record of one run during a k-way merge.
type mergeItem struct {
	id  uint32
	deg uint32
	ns  []uint32
	src int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].deg != h[j].deg {
		return h[i].deg < h[j].deg
	}
	return h[i].id < h[j].id
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// mergeRuns k-way merges sorted run files, handing each record in
// (degree, id) order to emit.
func mergeRuns(runs []string, opts Options, emit func(id uint32, ns []uint32) error) error {
	readers := make([]*runReader, len(runs))
	defer func() {
		for _, r := range readers {
			if r != nil {
				r.close()
			}
		}
	}()
	h := make(mergeHeap, 0, len(runs))
	advance := func(src int) (mergeItem, bool, error) {
		id, ns, done, err := readers[src].next()
		if err != nil || done {
			return mergeItem{}, done, err
		}
		cp := make([]uint32, len(ns))
		copy(cp, ns)
		return mergeItem{id: id, deg: uint32(len(cp)), ns: cp, src: src}, false, nil
	}
	for i, path := range runs {
		r, err := newRunReader(path, opts.BlockSize)
		if err != nil {
			return err
		}
		readers[i] = r
		it, done, err := advance(i)
		if err != nil {
			return err
		}
		if !done {
			h = append(h, it)
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		it := h[0]
		if err := emit(it.id, it.ns); err != nil {
			return err
		}
		next, done, err := advance(it.src)
		if err != nil {
			return err
		}
		if done {
			heap.Pop(&h)
		} else {
			h[0] = next
			heap.Fix(&h, 0)
		}
	}
	return nil
}

// mergeToRun merges runs into another intermediate run file.
func mergeToRun(runs []string, out string, opts Options) error {
	w, err := newRunWriter(out, opts.BlockSize)
	if err != nil {
		return err
	}
	if err := mergeRuns(runs, opts, w.append); err != nil {
		w.close()
		return err
	}
	return w.close()
}

// mergeToFinal merges runs into the final degree-sorted adjacency file.
func mergeToFinal(runs []string, dst string, opts Options) error {
	w, err := gio.NewWriter(dst, gio.FlagDegreeSorted, opts.BlockSize, opts.Stats)
	if err != nil {
		return err
	}
	if err := mergeRuns(runs, opts, w.Append); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
