package plrg

import "testing"

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(3000, 2, 5)
	if g.NumVertices() != 3000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Roughly m edges per arrival after the seed clique.
	if g.NumEdges() < 5000 || g.NumEdges() > 7000 {
		t.Fatalf("edges = %d, want ≈ 6000", g.NumEdges())
	}
	// Preferential attachment produces hubs: max degree far above average.
	if float64(g.MaxDegree()) < 5*g.AvgDegree() {
		t.Fatalf("max degree %d vs avg %.1f — no hubs formed", g.MaxDegree(), g.AvgDegree())
	}
	// Determinism.
	h := BarabasiAlbert(3000, 2, 5)
	if h.NumEdges() != g.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
}

func TestBarabasiAlbertDegenerate(t *testing.T) {
	if g := BarabasiAlbert(0, 2, 1); g.NumVertices() != 0 {
		t.Fatal("n=0 wrong")
	}
	if g := BarabasiAlbert(3, 5, 1); g.NumVertices() != 3 {
		t.Fatal("m > n wrong")
	}
	g := BarabasiAlbert(100, 0, 1) // m clamps to 1
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRMAT(t *testing.T) {
	g := RMATDefault(12, 20000, 9)
	if g.NumVertices() != 1<<12 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 || g.NumEdges() > 20000 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// Skew: the canonical parameters concentrate edges on low IDs, so the
	// max degree dwarfs the average.
	if float64(g.MaxDegree()) < 8*g.AvgDegree() {
		t.Fatalf("max degree %d vs avg %.1f — R-MAT skew missing", g.MaxDegree(), g.AvgDegree())
	}
	h := RMATDefault(12, 20000, 9)
	if h.NumEdges() != g.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
}

func TestRMATPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { RMAT(-1, 10, 0.5, 0.2, 0.2, 1) },
		func() { RMAT(31, 10, 0.5, 0.2, 0.2, 1) },
		func() { RMAT(4, 10, 0.6, 0.3, 0.3, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
