package plrg

import (
	"math/rand"

	"repro/internal/graph"
)

// BarabasiAlbert generates a preferential-attachment graph: vertices arrive
// one at a time and attach m edges to existing vertices chosen with
// probability proportional to their current degree. Produces power-law
// tails with exponent ≈ 3 — a useful contrast to the configuration-model
// P(α, β) graphs when checking that the algorithms' behaviour tracks degree
// shape rather than one generator's artifacts.
func BarabasiAlbert(n, m int, seed int64) *graph.Graph {
	if n <= 0 {
		return graph.NewBuilder(0).Build()
	}
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// endpoints holds one entry per edge endpoint; sampling uniformly from
	// it is sampling proportional to degree.
	endpoints := make([]uint32, 0, 2*m*n)
	start := m + 1
	if start > n {
		start = n
	}
	// Seed clique over the first few vertices so early targets exist.
	for u := 0; u < start; u++ {
		for v := u + 1; v < start; v++ {
			b.AddEdge(uint32(u), uint32(v))
			endpoints = append(endpoints, uint32(u), uint32(v))
		}
	}
	for v := start; v < n; v++ {
		chosen := make(map[uint32]bool, m)
		for len(chosen) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			chosen[t] = true
		}
		for t := range chosen {
			b.AddEdge(uint32(v), t)
			endpoints = append(endpoints, uint32(v), t)
		}
	}
	return b.Build()
}

// RMAT generates a recursive-matrix (Kronecker-style) graph with 2^scale
// vertices and the requested number of edge samples, using the classic
// (a, b, c, d) quadrant probabilities. Duplicate edges and self-loops are
// dropped, so the realized edge count is lower. The standard parameters
// (0.57, 0.19, 0.19, 0.05) mimic web/social graphs, the workloads the
// paper's datasets come from.
func RMAT(scale int, edges int, a, b, c float64, seed int64) *graph.Graph {
	if scale < 0 || scale > 30 {
		panic("plrg: RMAT scale out of range [0, 30]")
	}
	d := 1 - a - b - c
	if d < 0 {
		panic("plrg: RMAT probabilities exceed 1")
	}
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	builder := graph.NewBuilder(n)
	for i := 0; i < edges; i++ {
		var u, v int
		for level := 0; level < scale; level++ {
			r := rng.Float64()
			switch {
			case r < a: // top-left
			case r < a+b: // top-right
				v |= 1 << level
			case r < a+b+c: // bottom-left
				u |= 1 << level
			default: // bottom-right
				u |= 1 << level
				v |= 1 << level
			}
		}
		builder.AddEdge(uint32(u), uint32(v))
	}
	return builder.Build()
}

// RMATDefault generates an R-MAT graph with the canonical (0.57, 0.19,
// 0.19) parameters.
func RMATDefault(scale, edges int, seed int64) *graph.Graph {
	return RMAT(scale, edges, 0.57, 0.19, 0.19, seed)
}
