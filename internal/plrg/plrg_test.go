package plrg

import (
	"math"
	"testing"

	"repro/internal/theory"
)

func TestPowerLawReproducible(t *testing.T) {
	p := theory.ParamsForVertices(2000, 2.0)
	a := PowerLaw(p, 7)
	b := PowerLaw(p, 7)
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Degree(uint32(v)) != b.Degree(uint32(v)) {
			t.Fatalf("vertex %d degree differs across identical seeds", v)
		}
	}
	c := PowerLaw(p, 8)
	if c.NumEdges() == a.NumEdges() && c.NumVertices() == a.NumVertices() {
		// Same sizes are possible, but identical adjacency is not expected;
		// spot-check a few vertices.
		same := true
		for v := 0; v < 50 && v < a.NumVertices(); v++ {
			if a.Degree(uint32(v)) != c.Degree(uint32(v)) {
				same = false
				break
			}
		}
		if same {
			t.Log("warning: different seeds produced suspiciously similar graphs")
		}
	}
}

func TestPowerLawTargetsVertexCount(t *testing.T) {
	for _, beta := range []float64{1.7, 2.0, 2.5} {
		g := PowerLawN(5000, beta, 1)
		n := float64(g.NumVertices())
		if math.Abs(n-5000) > 0.05*5000 {
			t.Fatalf("beta=%.1f: %d vertices, want ≈5000", beta, g.NumVertices())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("beta=%.1f: %v", beta, err)
		}
	}
}

func TestPowerLawDegreeShape(t *testing.T) {
	// The realized degree distribution must be heavy-tailed and decreasing
	// in the aggregate: many more degree-1 vertices than degree-10 ones.
	g := PowerLawN(20000, 2.0, 3)
	h := g.DegreeHistogram()
	if h[1] < 100 {
		t.Fatalf("only %d degree-1 vertices", h[1])
	}
	if h[1] <= h[10]*10 {
		t.Fatalf("degree distribution not heavy-tailed: h[1]=%d h[10]=%d", h[1], h[10])
	}
	// Larger beta → fewer edges for the same |V|.
	sparse := PowerLawN(5000, 2.6, 3)
	dense := PowerLawN(5000, 1.8, 3)
	if sparse.NumEdges() >= dense.NumEdges() {
		t.Fatalf("beta=2.6 has %d edges, beta=1.8 has %d; expected fewer",
			sparse.NumEdges(), dense.NumEdges())
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 300, 1)
	if g.NumVertices() != 100 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 300 {
		t.Fatalf("edges = %d, want (0,300]", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClassicalFamilies(t *testing.T) {
	if g := Star(5); g.NumVertices() != 6 || g.NumEdges() != 5 || g.Degree(0) != 5 {
		t.Fatal("star wrong")
	}
	if g := Path(5); g.NumEdges() != 4 {
		t.Fatal("path wrong")
	}
	if g := Cycle(5); g.NumEdges() != 5 || g.Degree(0) != 2 {
		t.Fatal("cycle wrong")
	}
	if g := Grid(3, 4); g.NumVertices() != 12 || g.NumEdges() != 17 {
		t.Fatalf("grid wrong: %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if g := Complete(5); g.NumEdges() != 10 {
		t.Fatal("complete wrong")
	}
}

func TestCascadeStructure(t *testing.T) {
	k := 4
	g := Cascade(k)
	if g.NumVertices() != 3*k {
		t.Fatalf("vertices = %d, want %d", g.NumVertices(), 3*k)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// First center: degree 2; middle centers: degree 4; all leaves except
	// the last group's: degree 2; last group leaves: degree 1.
	if g.Degree(0) != 2 {
		t.Fatalf("c0 degree = %d, want 2", g.Degree(0))
	}
	for i := 1; i < k; i++ {
		if g.Degree(uint32(3*i)) != 4 {
			t.Fatalf("c%d degree = %d, want 4", i, g.Degree(uint32(3*i)))
		}
	}
	last := uint32(3 * (k - 1))
	if g.Degree(last+1) != 1 || g.Degree(last+2) != 1 {
		t.Fatal("last-group leaves should have degree 1")
	}
	centers := CascadeCenters(k)
	if len(centers) != k || centers[1] != 3 {
		t.Fatalf("centers = %v", centers)
	}
}

func TestPaperFigures(t *testing.T) {
	f1 := Figure1()
	if f1.NumVertices() != 5 || f1.NumEdges() != 3 || f1.Degree(0) != 3 {
		t.Fatal("Figure 1 wrong")
	}
	f2 := Figure2()
	if f2.NumVertices() != 6 || f2.NumEdges() != 5 {
		t.Fatal("Figure 2 wrong")
	}
	if !f2.HasEdge(2, 5) {
		t.Fatal("Figure 2 missing the conflict edge v3–v6")
	}
	f7 := Figure7()
	if f7.NumVertices() != 8 {
		t.Fatal("Figure 7 wrong")
	}
	// v4..v6, v8 are adjacent to both v2 and v3.
	for _, v := range []uint32{3, 4, 5, 7} {
		if !f7.HasEdge(1, v) || !f7.HasEdge(2, v) {
			t.Fatalf("Figure 7: vertex %d not adjacent to both IS vertices", v)
		}
	}
}
