// Package plrg generates the graphs used throughout the paper's analysis and
// experiments: Power-Law Random graphs P(α, β) built with the
// Aiello–Chung–Lu random-matching model of Section 2.2, the cascade-swap
// worst case of Figure 5, the worked examples of Figures 1, 2 and 7, and a
// few classical families (Erdős–Rényi, stars, paths, grids) used by tests.
//
// All randomness is driven by caller-provided seeds, so every generated
// graph is reproducible.
package plrg

import (
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/theory"
)

// PowerLaw generates a simple power-law random graph with the matching
// model: for each degree x ≤ Δ = ⌊e^{α/β}⌋ it creates ⌊e^α/x^β⌋ vertices of
// target degree x, forms the multiset L of vertex copies, draws a uniform
// random perfect matching of L, and keeps the resulting edges, dropping
// self-loops and parallel edges (so realized degrees can be slightly below
// target, as in the standard model).
func PowerLaw(p theory.Params, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	delta := p.MaxDegree()
	ea := math.Exp(p.Alpha)

	// Degree sequence. Vertex IDs are shuffled so that ID order carries no
	// degree information — real graph files are not degree-sorted, and the
	// Baseline competitor's whole handicap is scanning in raw ID order.
	var degrees []uint32
	for x := 1; x <= delta; x++ {
		count := int(math.Floor(ea / math.Pow(float64(x), p.Beta)))
		for c := 0; c < count; c++ {
			degrees = append(degrees, uint32(x))
		}
	}
	n := len(degrees)
	if n == 0 {
		return graph.NewBuilder(0).Build()
	}
	rng.Shuffle(n, func(i, j int) {
		degrees[i], degrees[j] = degrees[j], degrees[i]
	})

	// Multiset L of vertex copies.
	var total int
	for _, d := range degrees {
		total += int(d)
	}
	copies := make([]uint32, 0, total)
	for v, d := range degrees {
		for c := uint32(0); c < d; c++ {
			copies = append(copies, uint32(v))
		}
	}
	rng.Shuffle(len(copies), func(i, j int) {
		copies[i], copies[j] = copies[j], copies[i]
	})

	b := graph.NewBuilder(n)
	for i := 0; i+1 < len(copies); i += 2 {
		b.AddEdge(copies[i], copies[i+1])
	}
	return b.Build()
}

// PowerLawN generates a power-law random graph with approximately n vertices
// and exponent beta, solving for α first.
func PowerLawN(n int, beta float64, seed int64) *graph.Graph {
	return PowerLaw(theory.ParamsForVertices(n, beta), seed)
}

// ErdosRenyi generates G(n, m): n vertices and m uniform random edges
// (duplicates and loops dropped, so the realized count can be lower).
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	return b.Build()
}

// Star returns a star with one center (vertex 0) and leaves vertices 1..k.
func Star(k int) *graph.Graph {
	b := graph.NewBuilder(k + 1)
	for i := 1; i <= k; i++ {
		b.AddEdge(0, uint32(i))
	}
	return b.Build()
}

// Path returns the path graph on n vertices.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(uint32(i), uint32(i+1))
	}
	return b.Build()
}

// Cycle returns the cycle graph on n vertices.
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(uint32(i), uint32((i+1)%n))
	}
	return b.Build()
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(uint32(i), uint32(j))
		}
	}
	return b.Build()
}

// Cascade builds the cascade-swap worst case of Figure 5 with k groups
// (3k vertices). Group i has a center c_i = 3i and two leaves 3i+1, 3i+2;
// the center is adjacent to its leaves, and each leaf of group i is also
// adjacent to the center of group i+1. Starting from the independent set of
// all centers, a one-k-swap round can only fire the last remaining group, so
// the algorithm needs exactly k = n/3 rounds.
func Cascade(k int) *graph.Graph {
	b := graph.NewBuilder(3 * k)
	for i := 0; i < k; i++ {
		c := uint32(3 * i)
		b.AddEdge(c, c+1)
		b.AddEdge(c, c+2)
		if i+1 < k {
			next := uint32(3 * (i + 1))
			b.AddEdge(c+1, next)
			b.AddEdge(c+2, next)
		}
	}
	return b.Build()
}

// CascadeCenters returns the initial independent set (all centers) for
// Cascade(k).
func CascadeCenters(k int) []uint32 {
	centers := make([]uint32, k)
	for i := range centers {
		centers[i] = uint32(3 * i)
	}
	return centers
}

// Figure1 returns the five-vertex example of the paper's Figure 1
// (0-indexed: v1..v5 become 0..4). {v1, v2} = {0, 1} is maximal;
// {v2..v5} = {1, 2, 3, 4} is maximum.
func Figure1() *graph.Graph {
	return graph.FromEdges(5, [][2]uint32{{0, 2}, {0, 3}, {0, 4}})
}

// Figure2 returns the six-vertex swap-conflict example of Figure 2
// (0-indexed). With the initial independent set {v1, v4} = {0, 3}, the swaps
// v1→{v2, v3} and v4→{v5, v6} conflict through the edge {v3, v6} = {2, 5}.
func Figure2() *graph.Graph {
	return graph.FromEdges(6, [][2]uint32{
		{0, 1}, {0, 2}, // v1–v2, v1–v3
		{3, 4}, {3, 5}, // v4–v5, v4–v6
		{2, 5}, // v3–v6: the conflict edge
	})
}

// Figure7 returns the eight-vertex two-k-swap example of Figure 7
// (0-indexed v1..v8 → 0..7). Vertices v2, v3 = {1, 2} can be exchanged for
// the four vertices v4, v5, v6, v8 = {3, 4, 5, 7}; v7 = 6 conflicts.
func Figure7() *graph.Graph {
	return graph.FromEdges(8, [][2]uint32{
		{1, 3}, {2, 3}, // v4 adjacent to both v2 and v3
		{1, 4}, {2, 4}, // v5 adjacent to both
		{1, 5}, {2, 5}, // v6 adjacent to both
		{1, 7}, {2, 7}, // v8 adjacent to both
		{4, 6}, {5, 6}, // v7 adjacent to v5 and v6 (the conflict)
		{0, 6}, // v1–v7 keeps v7 out of the final set and gives v1 degree 1
	})
}
