// Package graph provides a compact in-memory representation of simple
// undirected graphs in compressed sparse row (CSR) form, together with a
// builder that deduplicates edges and drops self-loops.
//
// The semi-external algorithms in internal/core never load a whole graph
// through this package; it exists for graph construction (generators,
// converters), for the in-memory DynamicUpdate baseline, and for tests.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. Vertex IDs are dense: a graph with n
// vertices uses IDs 0..n-1.
type VertexID = uint32

// Graph is an immutable simple undirected graph in CSR form. Each edge
// {u, v} is stored twice, once in the adjacency list of each endpoint.
type Graph struct {
	offsets []uint64 // len n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []VertexID
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the adjacency list of v. The returned slice aliases the
// graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the edge {u, v} exists. Adjacency lists are sorted
// by neighbor ID, so this is a binary search over the smaller list.
func (g *Graph) HasEdge(u, v VertexID) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// AvgDegree returns the average vertex degree, 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(len(g.adj)) / float64(n)
}

// MaxDegree returns the largest vertex degree, 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(VertexID(v)); d > max {
			max = d
		}
	}
	return max
}

// DegreeHistogram returns a map from degree to the number of vertices with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.NumVertices(); v++ {
		h[g.Degree(VertexID(v))]++
	}
	return h
}

// Edges calls fn once for every undirected edge {u, v} with u < v.
// It stops early if fn returns false.
func (g *Graph) Edges(fn func(u, v VertexID) bool) {
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(VertexID(u)) {
			if VertexID(u) < v {
				if !fn(VertexID(u), v) {
					return
				}
			}
		}
	}
}

// Validate checks structural invariants of the CSR representation: sorted
// adjacency lists, no self-loops, no duplicate edges, and symmetry.
// It is intended for tests and costs O(|V| + |E| log |E|).
func (g *Graph) Validate() error {
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		ns := g.Neighbors(VertexID(u))
		for i, v := range ns {
			if int(v) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", u, v)
			}
			if v == VertexID(u) {
				return fmt.Errorf("graph: vertex %d has a self-loop", u)
			}
			if i > 0 && ns[i-1] >= v {
				return fmt.Errorf("graph: adjacency of %d is not strictly sorted at index %d", u, i)
			}
			if !g.HasEdge(v, VertexID(u)) {
				return fmt.Errorf("graph: edge {%d,%d} is not symmetric", u, v)
			}
		}
	}
	return nil
}

// Builder accumulates edges and produces a Graph. Self-loops and duplicate
// edges are silently dropped, so any edge stream yields a simple graph.
type Builder struct {
	n     int
	edges []edge
}

type edge struct{ u, v VertexID }

// NewBuilder returns a builder for a graph with n vertices (IDs 0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v}. Self-loops are ignored.
// AddEdge panics if either endpoint is out of range.
func (b *Builder) AddEdge(u, v VertexID) {
	if int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range for %d vertices", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, edge{u, v})
}

// NumPendingEdges returns the number of edges recorded so far, including
// duplicates that Build will drop.
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build constructs the CSR graph. The builder may be reused afterwards; it
// keeps its recorded edges.
func (b *Builder) Build() *Graph {
	es := make([]edge, len(b.edges))
	copy(es, b.edges)
	sort.Slice(es, func(i, j int) bool {
		if es[i].u != es[j].u {
			return es[i].u < es[j].u
		}
		return es[i].v < es[j].v
	})
	// Deduplicate.
	uniq := es[:0]
	for i, e := range es {
		if i == 0 || e != es[i-1] {
			uniq = append(uniq, e)
		}
	}
	es = uniq

	deg := make([]uint64, b.n+1)
	for _, e := range es {
		deg[e.u+1]++
		deg[e.v+1]++
	}
	for i := 1; i <= b.n; i++ {
		deg[i] += deg[i-1]
	}
	adj := make([]VertexID, deg[b.n])
	next := make([]uint64, b.n)
	copy(next, deg[:b.n])
	for _, e := range es {
		adj[next[e.u]] = e.v
		next[e.u]++
		adj[next[e.v]] = e.u
		next[e.v]++
	}
	g := &Graph{offsets: deg, adj: adj}
	// Each list was filled in increasing order of the opposite endpoint for
	// the u side, but the v side interleaves; sort every list once.
	for v := 0; v < b.n; v++ {
		ns := g.adj[g.offsets[v]:g.offsets[v+1]]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
	return g
}

// FromEdges is a convenience constructor: a graph on n vertices with the
// given undirected edges (duplicates and self-loops dropped).
func FromEdges(n int, edges [][2]VertexID) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Subgraph returns the induced subgraph on keep (which must be sorted and
// duplicate-free) with vertices renumbered 0..len(keep)-1, plus the mapping
// from new IDs to original IDs.
func (g *Graph) Subgraph(keep []VertexID) (*Graph, []VertexID) {
	remap := make(map[VertexID]VertexID, len(keep))
	for i, v := range keep {
		remap[v] = VertexID(i)
	}
	b := NewBuilder(len(keep))
	for _, v := range keep {
		for _, u := range g.Neighbors(v) {
			if nu, ok := remap[u]; ok {
				b.AddEdge(remap[v], nu)
			}
		}
	}
	orig := make([]VertexID, len(keep))
	copy(orig, keep)
	return b.Build(), orig
}
