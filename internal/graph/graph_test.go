package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate (reversed)
	b.AddEdge(1, 1) // self loop dropped
	b.AddEdge(2, 3)
	g := b.Build()
	if g.NumVertices() != 4 {
		t.Fatalf("vertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(2, 3) {
		t.Fatal("missing expected edges")
	}
	if g.HasEdge(0, 2) || g.HasEdge(1, 1) {
		t.Fatal("unexpected edges")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestDegreesAndHistogram(t *testing.T) {
	g := FromEdges(5, [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if g.Degree(0) != 4 {
		t.Fatalf("center degree = %d, want 4", g.Degree(0))
	}
	h := g.DegreeHistogram()
	if h[1] != 4 || h[4] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	if g.AvgDegree() != 8.0/5.0 {
		t.Fatalf("avg degree = %f", g.AvgDegree())
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("max degree = %d", g.MaxDegree())
	}
}

func TestEdgesIteration(t *testing.T) {
	g := FromEdges(4, [][2]uint32{{0, 1}, {1, 2}, {2, 3}})
	var got [][2]uint32
	g.Edges(func(u, v uint32) bool {
		got = append(got, [2]uint32{u, v})
		return true
	})
	if len(got) != 3 {
		t.Fatalf("iterated %d edges, want 3", len(got))
	}
	for _, e := range got {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not ordered u < v", e)
		}
	}
	// Early stop.
	count := 0
	g.Edges(func(u, v uint32) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop iterated %d edges, want 1", count)
	}
}

func TestSubgraph(t *testing.T) {
	g := FromEdges(6, [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	sub, orig := g.Subgraph([]uint32{0, 1, 2})
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("subgraph: %d vertices, %d edges", sub.NumVertices(), sub.NumEdges())
	}
	if len(orig) != 3 || orig[0] != 0 {
		t.Fatalf("orig mapping = %v", orig)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Fatal("subgraph edges wrong")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.AvgDegree() != 0 || g.MaxDegree() != 0 {
		t.Fatal("empty graph has nonzero stats")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBuildProperty checks with testing/quick that Build always produces a
// valid simple graph whose edge set matches the deduplicated input.
func TestBuildProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw%60) + 1
		m := int(mRaw % 512)
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(n)
		want := make(map[[2]uint32]bool)
		for i := 0; i < m; i++ {
			u := uint32(rng.Intn(n))
			v := uint32(rng.Intn(n))
			b.AddEdge(u, v)
			if u != v {
				if u > v {
					u, v = v, u
				}
				want[[2]uint32{u, v}] = true
			}
		}
		g := b.Build()
		if g.Validate() != nil {
			return false
		}
		if g.NumEdges() != len(want) {
			return false
		}
		for e := range want {
			if !g.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestHasEdgeProperty cross-checks HasEdge against a linear scan.
func TestHasEdgeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := NewBuilder(n)
		for i := 0; i < n*2; i++ {
			b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		g := b.Build()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				found := false
				for _, x := range g.Neighbors(uint32(u)) {
					if x == uint32(v) {
						found = true
						break
					}
				}
				if found != g.HasEdge(uint32(u), uint32(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
