package gio

import "fmt"

// ScanError wraps the error that stopped a sequential scan — typically a
// context cancellation or deadline — together with the scan position, so a
// caller aborting a multi-minute pass learns exactly how far it got. It
// unwraps to the underlying cause: errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) see through it.
type ScanError struct {
	// Records is the number of records the scan delivered before stopping.
	Records uint64
	// Total is the number of records a complete scan would deliver.
	Total uint64
	// Err is the cause, e.g. ctx.Err().
	Err error
}

func (e *ScanError) Error() string {
	return fmt.Sprintf("scan stopped at record %d of %d: %v", e.Records, e.Total, e.Err)
}

func (e *ScanError) Unwrap() error { return e.Err }
