package gio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// This file preserves the pre-pipeline scanner: a bufio.Reader decoded one
// record at a time, one binary.ReadUvarint byte at a time on compressed
// files. It is kept, unchanged in behavior, for two reasons:
//
//   - the decoder-parity tests assert that the block-pipelined engine
//     reproduces its records, its error messages and its Stats accounting
//     bit for bit, on well-formed and on truncated/corrupt files alike;
//   - misbench's scanbench experiment and the internal/gio benchmarks
//     measure old-vs-new throughput from the same binary, which is how
//     BENCH_scan.json tracks the speedup across PRs.
//
// New code should use Scan / ForEach / ForEachBatch instead.

// ForEachBytewise runs one full sequential scan using the byte-at-a-time
// reference decoder, invoking fn for every record. Stats accounting matches
// ForEach on completed scans.
func (g *File) ForEachBytewise(fn func(Record) error) error {
	sc, err := g.scanBytewise()
	if err != nil {
		return err
	}
	for sc.next() {
		if err := fn(sc.rec); err != nil {
			return err
		}
	}
	return sc.err
}

// bytewiseScanner is the pre-pipeline Scanner, verbatim.
type bytewiseScanner struct {
	file    *File
	br      *bufio.Reader
	rec     Record
	scratch []uint32
	buf     []byte
	read    uint64
	err     error
	done    bool
}

// scanBytewise rewinds the file and returns a reference scanner over all
// records. It seeks the shared descriptor, so it stops any in-flight
// pipelined scan first.
func (g *File) scanBytewise() (*bytewiseScanner, error) {
	g.stopActive()
	if _, err := g.f.Seek(HeaderSize, io.SeekStart); err != nil {
		return nil, fmt.Errorf("gio: rewind %s: %w", g.path, err)
	}
	return &bytewiseScanner{
		file: g,
		br:   bufio.NewReaderSize(statsReader{g.f, g.stats}, g.blockSize),
		buf:  make([]byte, 8),
	}, nil
}

func (s *bytewiseScanner) next() bool {
	if s.err != nil || s.done {
		return false
	}
	if s.read == s.file.records {
		s.done = true
		if s.file.stats != nil {
			s.file.stats.AddScans(1)
			s.file.stats.AddPhysicalScans(1)
		}
		return false
	}
	if s.file.header.Flags&FlagCompressed != 0 {
		return s.nextCompressed()
	}
	if _, err := io.ReadFull(s.br, s.buf[:8]); err != nil {
		s.err = fmt.Errorf("%w: %s: record %d header: %v", ErrBadFormat, s.file.path, s.read, err)
		return false
	}
	id := binary.LittleEndian.Uint32(s.buf[0:])
	deg := binary.LittleEndian.Uint32(s.buf[4:])
	if uint64(id) >= s.file.header.Vertices {
		s.err = fmt.Errorf("%w: %s: record %d has out-of-range id %d", ErrBadFormat, s.file.path, s.read, id)
		return false
	}
	if uint64(deg) >= s.file.header.Vertices {
		s.err = fmt.Errorf("%w: %s: vertex %d has impossible degree %d", ErrBadFormat, s.file.path, id, deg)
		return false
	}
	if cap(s.scratch) < int(deg) {
		s.scratch = make([]uint32, deg, deg*2)
	}
	s.scratch = s.scratch[:deg]
	if err := readUint32s(s.br, s.scratch); err != nil {
		s.err = fmt.Errorf("%w: %s: vertex %d neighbors: %v", ErrBadFormat, s.file.path, id, err)
		return false
	}
	s.rec.ID = id
	s.rec.Neighbors = s.scratch
	s.read++
	if s.file.stats != nil {
		s.file.stats.AddRecordsRead(1)
	}
	return true
}

// nextCompressed decodes one compressed record, one varint byte at a time.
func (s *bytewiseScanner) nextCompressed() bool {
	br := byteReaderCounter{s.br}
	id64, err := binary.ReadUvarint(br)
	if err != nil {
		s.err = fmt.Errorf("%w: %s: record %d id: %v", ErrBadFormat, s.file.path, s.read, err)
		return false
	}
	deg64, err := binary.ReadUvarint(br)
	if err != nil {
		s.err = fmt.Errorf("%w: %s: record %d degree: %v", ErrBadFormat, s.file.path, s.read, err)
		return false
	}
	if id64 >= s.file.header.Vertices {
		s.err = fmt.Errorf("%w: %s: record %d has out-of-range id %d", ErrBadFormat, s.file.path, s.read, id64)
		return false
	}
	if deg64 >= s.file.header.Vertices {
		s.err = fmt.Errorf("%w: %s: vertex %d has impossible degree %d", ErrBadFormat, s.file.path, id64, deg64)
		return false
	}
	deg := int(deg64)
	if cap(s.scratch) < deg {
		s.scratch = make([]uint32, deg, deg*2)
	}
	s.scratch = s.scratch[:deg]
	prev := int64(-1)
	for i := 0; i < deg; i++ {
		gap, err := binary.ReadUvarint(br)
		if err != nil {
			s.err = fmt.Errorf("%w: %s: vertex %d neighbors: %v", ErrBadFormat, s.file.path, id64, err)
			return false
		}
		v := prev + 1 + int64(gap)
		if v >= int64(s.file.header.Vertices) {
			s.err = fmt.Errorf("%w: %s: vertex %d has out-of-range neighbor %d", ErrBadFormat, s.file.path, id64, v)
			return false
		}
		s.scratch[i] = uint32(v)
		prev = v
	}
	s.rec.ID = uint32(id64)
	s.rec.Neighbors = s.scratch
	s.read++
	if s.file.stats != nil {
		s.file.stats.AddRecordsRead(1)
	}
	return true
}

// readUint32s fills dst with little-endian uint32 values from r.
func readUint32s(r io.Reader, dst []uint32) error {
	var buf [4096]byte
	for len(dst) > 0 {
		chunk := len(dst) * 4
		if chunk > len(buf) {
			chunk = len(buf)
		}
		if _, err := io.ReadFull(r, buf[:chunk]); err != nil {
			return err
		}
		for i := 0; i < chunk/4; i++ {
			dst[i] = binary.LittleEndian.Uint32(buf[i*4:])
		}
		dst = dst[chunk/4:]
	}
	return nil
}

// statsReader counts bytes and buffered refills.
type statsReader struct {
	r     io.Reader
	stats *Counters
}

func (sr statsReader) Read(p []byte) (int, error) {
	n, err := sr.r.Read(p)
	if sr.stats != nil {
		sr.stats.AddBytesRead(uint64(n))
		if n > 0 {
			sr.stats.AddBlocksRead(1)
		}
	}
	return n, err
}

// byteReaderCounter adapts bufio.Reader for binary.ReadUvarint.
type byteReaderCounter struct{ r *bufio.Reader }

func (b byteReaderCounter) ReadByte() (byte, error) { return b.r.ReadByte() }

var _ io.ByteReader = byteReaderCounter{}
