package gio

import (
	"encoding/binary"
	"fmt"
)

// RandomAccessStats counts positional reads — the access pattern the
// semi-external algorithms exist to avoid. Only RandomAccessFile produces
// them.
type RandomAccessStats struct {
	RandomReads uint64 // positional record fetches
	BytesRead   uint64
}

// RandomAccessFile lets an algorithm fetch individual adjacency records by
// vertex ID through positional reads. It exists to reproduce the paper's
// Section 4.1 Remark: the classical DynamicUpdate greedy needs exactly this
// access pattern, which is why it cannot be run semi-externally. One
// sequential scan builds the offset index (O(|V|) memory); every Fetch
// afterwards is a random read counted in RandomAccessStats.
type RandomAccessFile struct {
	f       *File
	offsets []int64 // byte offset of each vertex's record
	degrees []uint32
	stats   RandomAccessStats
	buf     []byte
}

// NewRandomAccessFile indexes f's records with one sequential scan.
// Compressed files are not supported (their records are not independently
// seekable without the index storing bit positions).
func NewRandomAccessFile(f *File) (*RandomAccessFile, error) {
	if f.header.Flags&FlagCompressed != 0 {
		return nil, fmt.Errorf("gio: random access over compressed files is not supported")
	}
	n := f.NumVertices()
	ra := &RandomAccessFile{
		f:       f,
		offsets: make([]int64, n),
		degrees: make([]uint32, n),
	}
	off := int64(HeaderSize)
	err := f.ForEachBatch(func(batch []Record) error {
		for _, r := range batch {
			ra.offsets[r.ID] = off
			ra.degrees[r.ID] = uint32(len(r.Neighbors))
			off += 8 + 4*int64(len(r.Neighbors))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ra, nil
}

// Degree returns v's degree from the in-memory index (no I/O).
func (ra *RandomAccessFile) Degree(v uint32) int { return int(ra.degrees[v]) }

// Degrees returns the whole degree index, indexed by vertex ID (no I/O).
// The slice is the index itself; callers must not modify it.
func (ra *RandomAccessFile) Degrees() []uint32 { return ra.degrees }

// Fetch reads v's neighbor list with one positional read. The returned
// slice is reused by the next Fetch.
func (ra *RandomAccessFile) Fetch(v uint32) ([]uint32, error) {
	deg := int(ra.degrees[v])
	need := 8 + 4*deg
	if cap(ra.buf) < need {
		ra.buf = make([]byte, need, need*2)
	}
	buf := ra.buf[:need]
	if _, err := ra.f.f.ReadAt(buf, ra.offsets[v]); err != nil {
		return nil, fmt.Errorf("gio: random read of vertex %d: %w", v, err)
	}
	ra.stats.RandomReads++
	ra.stats.BytesRead += uint64(need)
	id := binary.LittleEndian.Uint32(buf[0:])
	if id != v {
		return nil, fmt.Errorf("%w: random read of vertex %d found record %d", ErrBadFormat, v, id)
	}
	out := make([]uint32, deg)
	DecodeUint32s(out, buf[8:])
	return out, nil
}

// Stats returns the accumulated random-read counters.
func (ra *RandomAccessFile) Stats() RandomAccessStats { return ra.stats }
