package gio

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"sync"
	"testing"
)

func TestContentDigestMatchesFileBytes(t *testing.T) {
	g := randomGraph(7, 40, 100)
	path := tmpPath(t)
	if err := WriteGraph(path, g, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	got, err := f.ContentDigest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(raw)
	if want := hex.EncodeToString(sum[:]); got != want {
		t.Fatalf("digest %s, want %s", got, want)
	}
}

func TestContentDigestCachedAndSharedByViews(t *testing.T) {
	g := randomGraph(8, 30, 60)
	path := tmpPath(t)
	if err := WriteGraph(path, g, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	var stats Counters
	f, err := Open(path, 0, &stats)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	first, err := f.ContentDigest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	bytesAfterFirst := stats.Snapshot().BytesRead
	if bytesAfterFirst == 0 {
		t.Fatal("digest read no accounted bytes")
	}

	// A view shares the cache: no additional I/O, same sum.
	view := f.WithCounters(stats.Scope())
	again, err := view.ContentDigest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatalf("view digest %s != %s", again, first)
	}
	if b := stats.Snapshot().BytesRead; b != bytesAfterFirst {
		t.Fatalf("cached digest re-read the file: %d bytes then %d", bytesAfterFirst, b)
	}
	if s := stats.Snapshot(); s.Scans != 0 || s.PhysicalScans != 0 {
		t.Fatalf("digest counted as a scan: %+v", s)
	}
}

func TestContentDigestConcurrent(t *testing.T) {
	g := randomGraph(9, 50, 150)
	path := tmpPath(t)
	if err := WriteGraph(path, g, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const n = 8
	sums := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := f.ContentDigest(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			sums[i] = s
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if sums[i] != sums[0] {
			t.Fatalf("digest %d = %s, digest 0 = %s", i, sums[i], sums[0])
		}
	}
}

func TestContentDigestCanceledNotCached(t *testing.T) {
	g := randomGraph(10, 30, 60)
	path := tmpPath(t)
	if err := WriteGraph(path, g, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.ContentDigest(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled digest err = %v", err)
	}
	// The failure was not cached; a healthy ctx succeeds.
	if _, err := f.ContentDigest(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestContentDigestDiffersAcrossContents(t *testing.T) {
	dir := t.TempDir()
	paths := [2]string{dir + "/a.adj", dir + "/b.adj"}
	for i, seed := range []int64{1, 2} {
		if err := WriteGraph(paths[i], randomGraph(seed, 20, 40), nil, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	var sums [2]string
	for i, p := range paths {
		f, err := Open(p, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		sums[i], err = f.ContentDigest(context.Background())
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if sums[0] == sums[1] {
		t.Fatalf("distinct graphs share digest %s", sums[0])
	}
}
