package gio

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

// writeMmapTestFile writes a raw or compressed file with n vertices in a
// ring (every record degree 2), big enough for several batches when n is
// large.
func writeMmapTestFile(t testing.TB, dir string, n int, compressed bool) string {
	t.Helper()
	flags := uint32(0)
	if compressed {
		flags = FlagCompressed
	}
	path := fmt.Sprintf("%s/mmap-%d-%v.adj", dir, n, compressed)
	w, err := NewWriter(path, flags, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		nb := []uint32{uint32((v + 1) % n), uint32((v + n - 1) % n)}
		if n < 3 {
			nb = nil
		}
		if err := w.Append(uint32(v), nb); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMmapZeroCopyAliasesMapping proves the zero-copy path really is zero
// copy: every raw Record.Neighbors slice points into the mapping, not into
// the arena.
func TestMmapZeroCopyAliasesMapping(t *testing.T) {
	path := writeMmapTestFile(t, t.TempDir(), 5000, false)
	f, err := OpenMmap(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.MmapActive() {
		t.Skip("mmap unavailable on this platform/build")
	}
	if !f.MmapZeroCopy() {
		t.Skip("zero-copy aliasing unavailable (big-endian host)")
	}
	base := uintptr(unsafe.Pointer(unsafe.SliceData(f.mm.data)))
	end := base + uintptr(len(f.mm.data))
	records := 0
	err = f.ForEachBatch(func(batch []Record) error {
		for _, r := range batch {
			records++
			if len(r.Neighbors) == 0 {
				continue
			}
			p := uintptr(unsafe.Pointer(unsafe.SliceData(r.Neighbors)))
			if p < base || p >= end {
				return fmt.Errorf("record %d: neighbors at %#x outside mapping [%#x,%#x)", r.ID, p, base, end)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if records != 5000 {
		t.Fatalf("scanned %d records, want 5000", records)
	}
}

// TestMmapCompressedUsesArena pins the documented asymmetry: compressed
// records must decode into the arena even on a mapped file (gaps have to be
// materialized), so their Neighbors never point into the mapping.
func TestMmapCompressedUsesArena(t *testing.T) {
	path := writeMmapTestFile(t, t.TempDir(), 500, true)
	f, err := OpenMmap(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.MmapActive() {
		t.Skip("mmap unavailable on this platform/build")
	}
	if f.MmapZeroCopy() {
		t.Fatal("MmapZeroCopy must report false for compressed files")
	}
	base := uintptr(unsafe.Pointer(unsafe.SliceData(f.mm.data)))
	end := base + uintptr(len(f.mm.data))
	err = f.ForEachBatch(func(batch []Record) error {
		for _, r := range batch {
			if len(r.Neighbors) == 0 {
				continue
			}
			p := uintptr(unsafe.Pointer(unsafe.SliceData(r.Neighbors)))
			if p >= base && p < end {
				return fmt.Errorf("record %d: compressed neighbors alias the mapping", r.ID)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMmapCloseDuringScan is the lifetime contract under -race: File.Close
// racing a mapped scan must wait for the in-flight callback, fail the scan
// at its next batch, and never unmap under a reader.
func TestMmapCloseDuringScan(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		t.Run(fmt.Sprintf("compressed=%v", compressed), func(t *testing.T) {
			path := writeMmapTestFile(t, t.TempDir(), 200000, compressed)
			f, err := OpenMmap(path, 4096, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !f.MmapActive() {
				f.Close()
				t.Skip("mmap unavailable on this platform/build")
			}

			firstBatch := make(chan struct{})
			scanDone := make(chan error, 1)
			go func() {
				var once sync.Once
				scanDone <- f.ForEachBatch(func(batch []Record) error {
					once.Do(func() { close(firstBatch) })
					// Touch every neighbor: if Close unmapped under us this
					// faults, and -race flags any unsynchronized teardown.
					var sink uint64
					for _, r := range batch {
						for _, nb := range r.Neighbors {
							sink += uint64(nb)
						}
					}
					_ = sink
					return nil
				})
			}()

			<-firstBatch
			if err := f.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if f.MmapActive() {
				t.Fatal("mapping still active after Close")
			}
			err = <-scanDone
			if err != nil && !strings.Contains(err.Error(), errScanStopped.Error()) {
				t.Fatalf("scan error = %v, want scan-stopped (or completion)", err)
			}
			// err == nil is legal: the scan may have finished before Close won
			// the race. Either way the scan released its reference before
			// returning, so by now the deferred munmap has happened.
			if !f.mm.unmapped() {
				t.Fatal("pages still mapped after Close and scan drain")
			}
		})
	}
}

// TestMmapScanAfterClose: a scan started on a closed mapped file fails on
// its first batch instead of touching freed pages.
func TestMmapScanAfterClose(t *testing.T) {
	path := writeMmapTestFile(t, t.TempDir(), 100, false)
	f, err := OpenMmap(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	err = f.ForEachBatch(func([]Record) error { return nil })
	if err == nil {
		t.Fatal("scan on closed mapped file succeeded")
	}
}

// TestMmapCancelMidScan: context cancellation stops a mapped scan between
// windows, surfacing the ctx error in a ScanError with the scan position.
func TestMmapCancelMidScan(t *testing.T) {
	path := writeMmapTestFile(t, t.TempDir(), 50000, false)
	f, err := OpenMmap(path, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ctx, cancel := context.WithCancel(context.Background())
	batches := 0
	batchesAfterCancel := 0
	err = f.ForEachBatchCtx(ctx, func(batch []Record) error {
		batches++
		if batches == 3 {
			cancel()
		}
		if ctx.Err() != nil {
			batchesAfterCancel++
		}
		return nil
	})
	var se *ScanError
	if !errors.As(err, &se) {
		t.Fatalf("error = %v, want *ScanError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if se.Records == 0 || se.Records >= 50000 {
		t.Fatalf("ScanError position = %d, want mid-scan", se.Records)
	}
	if batchesAfterCancel > 1 {
		t.Fatalf("%d batches delivered after cancel, want ≤ 1", batchesAfterCancel)
	}
}

// TestMmapPinMapDefersUnmap: a PinMap reference keeps the pages mapped
// across Close until released — the contract the parallel executor's
// consumer relies on for batches still in flight when the file closes.
func TestMmapPinMapDefersUnmap(t *testing.T) {
	path := writeMmapTestFile(t, t.TempDir(), 100, false)
	f, err := OpenMmap(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	release, ok := f.PinMap()
	if !ok {
		f.Close()
		t.Skip("mmap unavailable on this platform/build")
	}

	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if f.MmapActive() {
		t.Fatal("mapping reported active after Close")
	}
	if f.mm.unmapped() {
		t.Fatal("pages unmapped while pinned")
	}
	release()
	if !f.mm.unmapped() {
		t.Fatal("pages still mapped after the pin was released")
	}
	// A second release is a no-op, and PinMap on the closed file fails.
	release()
	if _, ok := f.PinMap(); ok {
		t.Fatal("PinMap succeeded on a closed file")
	}
}

// TestMmapSupersededScanStops: starting a new Scan invalidates the previous
// mapped scanner at its next batch, mirroring the pipelined engine's
// supersession semantics, and releases its mapping reference so Close does
// not hang.
func TestMmapSupersededScanStops(t *testing.T) {
	path := writeMmapTestFile(t, t.TempDir(), 50000, false)
	f, err := OpenMmap(path, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !f.MmapActive() {
		f.Close()
		t.Skip("mmap unavailable on this platform/build")
	}
	s1, err := f.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if s1.NextBatch() == nil {
		t.Fatalf("first batch failed: %v", s1.Err())
	}
	s2, err := f.Scan() // supersedes s1
	if err != nil {
		t.Fatal(err)
	}
	for s2.NextBatch() != nil {
	}
	if err := s2.Err(); err != nil {
		t.Fatalf("superseding scan failed: %v", err)
	}
	// s1 must now fail (possibly after draining its current window) rather
	// than scan to completion.
	for s1.NextBatch() != nil {
	}
	if s1.Err() == nil {
		t.Fatal("superseded mapped scan completed without error")
	}
	// The superseded scanner released its reference when driven to failure,
	// the superseding one at completion: Close must unmap immediately.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if !f.mm.unmapped() {
		t.Fatal("a mapping reference leaked: pages still mapped after Close")
	}
}

// TestMmapFallbackParity: OpenMmap on a file that cannot map (or a fallback
// build) still scans correctly through the pipelined engine. Exercised
// meaningfully under -tags nommap; on mmap platforms it just re-checks the
// mapped path against LoadGraph-style consumption.
func TestMmapFallbackParity(t *testing.T) {
	path := writeMmapTestFile(t, t.TempDir(), 1000, false)
	var counters Counters
	f, err := OpenMmap(path, 0, &counters)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var ids uint64
	if err := f.ForEachBatch(func(batch []Record) error {
		for _, r := range batch {
			ids += uint64(r.ID)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := uint64(1000*999) / 2; ids != want {
		t.Fatalf("id sum %d, want %d", ids, want)
	}
	st := counters.Snapshot()
	if st.Scans != 1 || st.PhysicalScans != 1 {
		t.Fatalf("scans=%d physical=%d, want 1/1", st.Scans, st.PhysicalScans)
	}
	if st.RecordsRead != 1000 {
		t.Fatalf("records=%d, want 1000", st.RecordsRead)
	}
}

// TestMmapViewsConcurrent: WithCounters views of one mapped file scan
// concurrently, each accounting into its own scope — the Solver API's
// concurrency model — with batches aliasing one shared mapping.
func TestMmapViewsConcurrent(t *testing.T) {
	path := writeMmapTestFile(t, t.TempDir(), 20000, false)
	var root Counters
	f, err := OpenMmap(path, 0, &root)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const views = 4
	var wg sync.WaitGroup
	errs := make([]error, views)
	for i := 0; i < views; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scope := root.Scope()
			v := f.WithCounters(scope)
			defer v.Close()
			errs[i] = v.ForEachBatch(func(batch []Record) error {
				var sink uint64
				for _, r := range batch {
					for _, nb := range r.Neighbors {
						sink += uint64(nb)
					}
				}
				_ = sink
				return nil
			})
			if st := scope.Snapshot(); st.Scans != 1 {
				errs[i] = fmt.Errorf("view %d: scans=%d, want 1", i, st.Scans)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("view %d: %v", i, err)
		}
	}
	if st := root.Snapshot(); st.Scans != views {
		t.Fatalf("root scans=%d, want %d", st.Scans, views)
	}
}
