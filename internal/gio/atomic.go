package gio

import (
	"fmt"
	"os"
	"path/filepath"
)

// CommitFile durably publishes the finished temp file tmp at path final:
// fsync(tmp), rename(tmp → final), fsync(parent dir). After it returns, a
// crash leaves final complete; before it returns, final is either absent or
// its previous complete content. It is the shared publication step for
// Materialize and the WAL compactor's generation files — anything that must
// never leave a half-written file at its destination.
func CommitFile(tmp, final string) error {
	f, err := os.Open(tmp)
	if err != nil {
		return fmt.Errorf("gio: commit %s: %w", final, err)
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("gio: commit %s: fsync temp: %w", final, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("gio: commit %s: %w", final, err)
	}
	return SyncDir(filepath.Dir(final))
}

// SyncDir fsyncs a directory, making renames and creates inside it durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("gio: sync dir %s: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("gio: sync dir %s: %w", dir, err)
	}
	return nil
}
