// Package gio implements the on-disk graph format used by the semi-external
// algorithms: a binary adjacency-list file read and written strictly
// sequentially through block-buffered I/O, with counters for every scan,
// block and byte so experiments can report I/O cost.
//
// File layout (all integers little-endian):
//
//	offset 0   magic     8 bytes  "MISADJ1\n"
//	offset 8   version   uint32   currently 1
//	offset 12  flags     uint32   bit 0: records are in ascending-degree order
//	offset 16  vertices  uint64
//	offset 24  edges     uint64   undirected edge count
//	offset 32  records...         one per vertex, in scan order:
//	             id        uint32
//	             degree    uint32
//	             neighbors degree × uint32
//
// Every vertex appears in exactly one record; the scan order is the order in
// which semi-external algorithms visit vertices. Neighbor lists store vertex
// IDs; callers that need neighbors ordered by degree arrange that when the
// file is produced (see internal/extsort).
package gio

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic identifies adjacency files.
const Magic = "MISADJ1\n"

// HeaderSize is the byte length of the fixed file header.
const HeaderSize = 32

// Format flags.
const (
	// FlagDegreeSorted marks a file whose records are in ascending order of
	// vertex degree (the Greedy preprocessing output).
	FlagDegreeSorted uint32 = 1 << 0
)

// DefaultBlockSize is the buffer size used for sequential reads and writes
// when the caller does not specify one. It plays the role of the block size
// B in the paper's I/O cost formulas.
const DefaultBlockSize = 256 * 1024

// Header describes an adjacency file.
type Header struct {
	Version  uint32
	Flags    uint32
	Vertices uint64
	Edges    uint64
}

// DegreeSorted reports whether the file's records are in ascending degree
// order.
func (h Header) DegreeSorted() bool { return h.Flags&FlagDegreeSorted != 0 }

// ErrBadFormat is wrapped by errors returned for malformed files.
var ErrBadFormat = errors.New("gio: malformed adjacency file")

func (h Header) encode(buf []byte) {
	copy(buf[:8], Magic)
	binary.LittleEndian.PutUint32(buf[8:], h.Version)
	binary.LittleEndian.PutUint32(buf[12:], h.Flags)
	binary.LittleEndian.PutUint64(buf[16:], h.Vertices)
	binary.LittleEndian.PutUint64(buf[24:], h.Edges)
}

func decodeHeader(buf []byte) (Header, error) {
	var h Header
	if len(buf) < HeaderSize {
		return h, fmt.Errorf("%w: short header (%d bytes)", ErrBadFormat, len(buf))
	}
	if string(buf[:8]) != Magic {
		return h, fmt.Errorf("%w: bad magic %q", ErrBadFormat, buf[:8])
	}
	h.Version = binary.LittleEndian.Uint32(buf[8:])
	if h.Version != 1 {
		return h, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, h.Version)
	}
	h.Flags = binary.LittleEndian.Uint32(buf[12:])
	h.Vertices = binary.LittleEndian.Uint64(buf[16:])
	h.Edges = binary.LittleEndian.Uint64(buf[24:])
	return h, nil
}
