package gio

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// File is an open adjacency file supporting repeated sequential scans.
// It is the only way the semi-external algorithms touch the graph: every
// Scan reads the file front to back through the block-pipelined engine —
// a background goroutine prefetches the next block while the current one
// decodes — with no seeks other than the implicit rewind between scans.
//
// One File value supports one scan at a time (a new Scan supersedes an
// unfinished one). Concurrent runs each take their own view of the file via
// WithCounters: views share the descriptor (all reads are positional) and
// the partition-plan cache, but have independent active-scan slots and
// account into independent Counters, so any number of views may scan
// concurrently.
type File struct {
	f         *os.File
	path      string
	header    Header
	blockSize int
	stats     *Counters
	active    *prefetcher // the current scan's block pipeline, if any
	activeM   *Scanner    // the current mapped scan, if any (see OpenMmap)

	// records is the number of adjacency records actually present: the
	// footer's count when the file has one (shard files hold fewer records
	// than header.Vertices), header.Vertices otherwise. It is the scan limit
	// of every engine. payloadEnd is the offset one past the last record
	// (footer start, or file size when footerless); hasFooter records which
	// interpretation applied. All three are fixed at Open.
	records    uint64
	payloadEnd int64
	hasFooter  bool

	// mm is the shared memory mapping of an OpenMmap file (nil otherwise),
	// shared by every view like the plan cache.
	mm *mapState

	// plan is the partition-planning cache (see Partitions), shared by every
	// view of the file and guarded by its own mutex.
	plan *planState

	// dig is the content-digest cache (see ContentDigest), shared by every
	// view of the file like the plan cache.
	dig *digestState

	// view marks a WithCounters view: Close then only stops the view's
	// active scan, never the shared descriptor.
	view bool
}

// planState caches the partition-planning cut table (see Partitions).
// Captured opportunistically during the first full counted sequential scan
// (ForEachBatchWithPlanCapture), or built lazily by the first Partitions
// call with one side scan through a separate file handle; reused for every
// worker count afterwards. The mutex makes the cache safe for concurrent
// views of one file.
type planState struct {
	mu      sync.Mutex
	cuts    *cutTable
	cutsErr error
	// captureFailed records a capture whose computed offsets did not match
	// the file's payload (e.g. trailing bytes after the last record). The
	// capture is not retried; Partitions' side scan, which cross-checks
	// against the scanner's own position, remains the planner of record.
	captureFailed bool
}

// Open opens an adjacency file for scanning. stats may be nil; blockSize
// ≤ 0 selects DefaultBlockSize.
func Open(path string, blockSize int, stats *Counters) (*File, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gio: open %s: %w", path, err)
	}
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s: reading header: %v", ErrBadFormat, path, err)
	}
	h, err := decodeHeader(hdr[:])
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	g := &File{f: f, path: path, header: h, blockSize: blockSize, stats: stats, plan: &planState{}, dig: &digestState{}}
	g.records = h.Vertices
	if fi, err := f.Stat(); err == nil {
		g.payloadEnd = fi.Size()
		if recs, ct, end, ok := parseFooter(f, fi.Size(), h); ok {
			g.records, g.payloadEnd, g.hasFooter = recs, end, true
			// The persisted cut table is the partition plan: Partitions
			// answers without a planning scan for the file's whole lifetime.
			g.plan.cuts = ct
		}
	}
	return g, nil
}

// WithCounters returns a view of the file that accounts its I/O into c
// instead of the file's own counters. The view shares the descriptor (reads
// are positional) and the partition-plan cache; its active-scan slot is its
// own, so scans on distinct views run concurrently. Closing a view releases
// only the view's in-flight scan, never the shared descriptor — the original
// File's Close does that.
func (g *File) WithCounters(c *Counters) *File {
	v := *g
	v.stats = c
	v.active = nil
	v.activeM = nil
	v.view = true
	return &v
}

// Header returns the file header.
func (g *File) Header() Header { return g.header }

// Path returns the file's path.
func (g *File) Path() string { return g.path }

// NumVertices returns the vertex count from the header.
func (g *File) NumVertices() int { return int(g.header.Vertices) }

// NumEdges returns the undirected edge count from the header.
func (g *File) NumEdges() uint64 { return g.header.Edges }

// Stats returns the shared I/O counters, which may be nil.
func (g *File) Stats() *Counters { return g.stats }

// BlockSize returns the buffered-I/O block size used for scans.
func (g *File) BlockSize() int { return g.blockSize }

// SizeBytes returns the on-disk size of the file.
func (g *File) SizeBytes() (int64, error) {
	fi, err := g.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Close closes the underlying file, stopping any in-flight prefetch. On a
// WithCounters view it only stops the view's in-flight scan; the descriptor
// stays open until the original File is closed. On an OpenMmap file, Close
// poisons the mapping — every in-flight mapped scan (its own views'
// included) fails at its next batch — and returns without blocking; the
// munmap itself is deferred until the last of those scans (and any PinMap
// holder) releases its reference, so batches that alias the mapping are
// never yanked out from under a reader mid-callback.
func (g *File) Close() error {
	g.stopActive()
	if g.view {
		return nil
	}
	if err := g.mm.close(); err != nil {
		g.f.Close()
		return err
	}
	return g.f.Close()
}

// stopActive shuts down the previous scan's engine, if one is still running
// (a scan that was abandoned before reaching end of file): the prefetcher
// of a pipelined scan, or — for a mapped one — a stop request only. The
// mapping reference itself is never dropped here: stopActive may run on a
// goroutine other than the one driving the old scan (File.Close racing a
// scan), and yanking the reference out from under a decode in flight would
// let the munmap happen under a live reader. The old scanner releases when
// it is next driven (it fails with errScanStopped), when Closed, or via its
// GC cleanup.
func (g *File) stopActive() {
	if g.active != nil {
		g.active.shutdown()
		g.active = nil
	}
	if g.activeM != nil {
		g.activeM.mstopreq.Store(true)
		g.activeM = nil
	}
}

// Record is one vertex's adjacency record as stored on disk.
//
// Neighbors is only valid until the scanner advances past the batch that
// produced it: the next NextBatch/Next call, the return of the ForEachBatch
// callback, or the end of the scan, whichever comes first. On the arena
// path the next batch overwrites the storage (silent corruption for code
// that retained a slice — see SetAliasCheck for a debug mode that poisons
// reused arenas so such bugs fail loudly); on the mmap zero-copy path the
// slice aliases the file mapping, which File.Close unmaps. Callers that
// need a record past its batch must copy the Neighbors slice.
type Record struct {
	ID        uint32
	Neighbors []uint32
}

// AliasPoison is the sentinel SetAliasCheck fills reused neighbor arenas
// with: a Neighbors slice retained across batches reads as AliasPoison
// values instead of plausible stale IDs.
const AliasPoison uint32 = 0xA11A5BAD

// aliasCheck enables arena poisoning between batches (see SetAliasCheck).
// It is read on the scan path without synchronization: toggle it before
// starting scans, not during them.
var aliasCheck = os.Getenv("GIO_ALIAS_CHECK") == "1"

// SetAliasCheck toggles the batch-aliasing debug check. When on, every
// batch boundary fills the outgoing batch's neighbor arena with AliasPoison
// and quarantines it (the next batch decodes into fresh storage), so code
// that illegally retains a Record.Neighbors slice across batches observes
// an unmistakable sentinel forever after, instead of silently reading
// whatever the next batch decoded into the same storage. The check costs an
// arena-sized write plus fresh batch allocations per batch; it is meant for
// tests and debugging, and can also be enabled with GIO_ALIAS_CHECK=1.
// Toggle before scanning, not mid-scan. The check covers arena-backed
// batches; on the mmap zero-copy path retained slices alias the read-only
// file mapping instead, where File.Close already turns late reads into
// faults rather than silent corruption.
func SetAliasCheck(on bool) { aliasCheck = on }

// Batch sizing for the block-pipelined decoder: a batch closes on whichever
// comes first, a record-count cap (so per-record bookkeeping amortizes) or a
// decoded-neighbor volume target (so the shared arena stays cache-sized).
const (
	batchMaxRecords = 1024
	batchTargetInts = 64 * 1024
)

// Scanner iterates the records of one sequential scan. Records are decoded
// in batches from in-memory blocks: NextBatch exposes whole batches with
// amortized allocation, while Next/Record retain the familiar one-record
// interface on top of the same engine.
type Scanner struct {
	file *File
	pf   *prefetcher

	win   []byte // decode window: unconsumed bytes of fetched blocks
	pos   int    // decode position within win
	ioErr error  // terminal read error from the pipeline (io.EOF at EOF)

	recs    []Record // current batch; Neighbors are views into arena
	arena   []uint32 // neighbor storage shared by the whole batch
	nextRec int      // Next()'s cursor within recs
	rec     Record   // Next()'s current record

	// A record header decoded right before the batch ran out of arena space
	// is parked here so the next batch resumes without re-reading bytes.
	pending               bool
	pendingID, pendingDeg uint64

	read    uint64 // global index of the next record to decode
	limit   uint64 // decode records while read < limit
	fetched uint64 // payload bytes appended to the window so far
	baseOff int64  // absolute file offset the window started at

	// detached marks a partition scanner (File.ScanPartition): it shares the
	// file's descriptor through positional reads but is not the file's active
	// scan and never touches the file's Stats, so several detached scanners
	// can run concurrently on worker goroutines.
	detached bool

	// ctx, when non-nil, cancels the scan between batches: the next
	// fillBatch fails with the ctx error wrapped in a ScanError carrying the
	// scan position, and the prefetcher observes ctx.Done directly so a
	// read-ahead in flight stops too. Mapped scans never block on I/O, so
	// they check only at batch boundaries (between windows).
	ctx context.Context

	// Mapped mode (see OpenMmap): the decode window is a view of mdata —
	// the mapping from baseOff to end of file — extended block-equivalent
	// by block-equivalent by moreMapped instead of being refilled through
	// the prefetcher. mref is this scan's reference on the mapping, released
	// only on the scanner's own drive path (finish, fail, Close) or by GC
	// cleanup; nil when the mapping could not be acquired (scanner born
	// stopped). mstopreq is the cross-goroutine stop request (supersession by
	// a new Scan): it makes the scan fail at its next boundary, where the
	// scan itself releases mref.
	mapped   bool
	mdata    []byte
	zerocopy bool // raw Neighbors alias the mapping (little-endian hosts)
	mref     *mapRef
	mstopreq atomic.Bool

	err  error
	done bool
}

// Scan rewinds the file and returns a Scanner over all records, counting
// one sequential scan in the file's Stats when the scan completes. Starting
// a new Scan stops the prefetch pipeline of any previous unfinished one.
func (g *File) Scan() (*Scanner, error) {
	return g.ScanCtx(nil)
}

// ScanCtx is Scan bound to a context: when ctx is canceled or its deadline
// passes, the scan stops within one batch, Err reports the ctx error wrapped
// in a ScanError with the scan position, and the prefetch pipeline shuts
// down. A nil ctx scans without cancellation, exactly like Scan.
func (g *File) ScanCtx(ctx context.Context) (*Scanner, error) {
	g.stopActive()
	if g.mm != nil {
		s := g.newMappedScanner(HeaderSize, 0, g.records, false)
		s.ctx = ctx
		g.activeM = s
		return s, nil
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	pf := newPrefetcher(g.f, HeaderSize, g.blockSize, done)
	g.active = pf
	return &Scanner{
		file:    g,
		pf:      pf,
		ctx:     ctx,
		limit:   g.records,
		baseOff: HeaderSize,
		recs:    make([]Record, 0, batchMaxRecords),
		arena:   make([]uint32, 0, batchTargetInts),
	}, nil
}

// ScanPartition returns a detached scanner over one partition of the file
// (see Partitions): records StartRecord..StartRecord+Records-1, decoded from
// byte offset StartOffset. Detached scanners read through positional I/O
// only, never touch the file's Stats or active-scan slot, and so may run
// concurrently with each other on separate goroutines — they are the
// per-worker engines of the parallel partitioned executor (internal/exec).
// The caller must Close the scanner if it abandons it before the end of the
// partition.
func (g *File) ScanPartition(p Partition) *Scanner {
	if g.mm != nil {
		return g.newMappedScanner(p.StartOffset, p.StartRecord, p.StartRecord+p.Records, true)
	}
	return &Scanner{
		file:     g,
		pf:       newPrefetcher(g.f, p.StartOffset, g.blockSize, nil),
		read:     p.StartRecord,
		limit:    p.StartRecord + p.Records,
		baseOff:  p.StartOffset,
		detached: true,
		recs:     make([]Record, 0, batchMaxRecords),
		arena:    make([]uint32, 0, batchTargetInts),
	}
}

// SwapBuffers hands the scanner fresh batch storage and returns the current
// record slice and neighbor arena, transferring their ownership to the
// caller. It is meant to be called directly after NextBatch by consumers
// that ship whole batches to another goroutine (the parallel executor):
// the returned buffers stay valid indefinitely instead of being overwritten
// by the following NextBatch. The replacement slices may be nil or of any
// capacity; the scanner grows them as needed.
func (s *Scanner) SwapBuffers(recs []Record, arena []uint32) ([]Record, []uint32) {
	oldRecs, oldArena := s.recs, s.arena
	s.recs, s.arena = recs[:0], arena[:0]
	s.nextRec = 0
	return oldRecs, oldArena
}

// offset returns the absolute file offset of the next undecoded byte. Only
// meaningful between batches when no record header is parked (!s.pending).
func (s *Scanner) offset() int64 {
	return s.baseOff + int64(s.fetched) - int64(len(s.win)-s.pos)
}

// NextBatch returns the next batch of records in scan order, or nil at end
// of scan or on error (check Err afterwards). The returned slice and the
// Neighbors slices of its records are reused by the following NextBatch
// call.
func (s *Scanner) NextBatch() []Record {
	if s.nextRec < len(s.recs) {
		// Mixed Next/NextBatch use: hand out the unconsumed tail first.
		out := s.recs[s.nextRec:]
		s.nextRec = len(s.recs)
		return out
	}
	s.fillBatch()
	s.nextRec = len(s.recs)
	if len(s.recs) == 0 {
		return nil
	}
	return s.recs
}

// Next advances to the next record. It returns false at end of scan or on
// error; check Err afterwards.
func (s *Scanner) Next() bool {
	if s.nextRec >= len(s.recs) {
		s.fillBatch()
		if len(s.recs) == 0 {
			return false
		}
	}
	s.rec = s.recs[s.nextRec]
	s.nextRec++
	return true
}

// Record returns the current record. Its Neighbors slice is reused once the
// scanner advances past the current batch.
func (s *Scanner) Record() Record { return s.rec }

// Err returns the first error encountered by the scan, if any.
func (s *Scanner) Err() error { return s.err }

// fillBatch decodes the next batch of records into s.recs. On return either
// the batch is non-empty, or the scan completed (s.done) or failed (s.err).
// Decoding never consumes bytes past the final record, so trailing garbage
// in a file is never read into the window's accounting.
func (s *Scanner) fillBatch() {
	s.recs = s.recs[:0]
	s.nextRec = 0
	if s.err != nil || s.done {
		return
	}
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			s.fail(&ScanError{Records: s.read, Total: s.limit, Err: err})
			return
		}
	}
	if s.mapped && s.mapStopped() {
		// The mapping was poisoned (File.Close) or this scan superseded:
		// refuse to decode from window bytes that may be about to unmap.
		s.fail(fmt.Errorf("%w: %s: record %d header: %v", ErrBadFormat, s.file.path, s.read, errScanStopped))
		return
	}
	if s.read == s.limit {
		s.finish()
		return
	}
	if aliasCheck {
		// Quarantine the outgoing batch's storage: fill the arena with
		// AliasPoison and decode the next batch into fresh slices. Poisoning
		// alone is not enough — the next batch would overwrite the sentinel
		// with its own plausible neighbor data — so the old arena is never
		// reused, and a Neighbors slice illegally retained across batches
		// keeps reading AliasPoison for the rest of the process.
		p := s.arena[:cap(s.arena)]
		for i := range p {
			p[i] = AliasPoison
		}
		s.arena = make([]uint32, 0, cap(s.arena))
		s.recs = make([]Record, 0, cap(s.recs))
	}
	s.arena = s.arena[:0]
	if s.file.header.Flags&FlagCompressed != 0 {
		s.fillCompressed()
	} else if s.zerocopy {
		s.fillRawZeroCopy()
	} else {
		s.fillRaw()
	}
	if s.file.stats != nil && !s.detached {
		s.file.stats.AddRecordsRead(uint64(len(s.recs)))
	}
}

// fillRaw batch-decodes fixed-width records from the window.
func (s *Scanner) fillRaw() {
	h := s.file.header
	for s.read < s.limit && len(s.recs) < batchMaxRecords && len(s.arena) < batchTargetInts {
		var id, deg uint64
		if s.pending {
			id, deg = s.pendingID, s.pendingDeg
			s.pending = false
		} else {
			if err := s.ensure(8); err != nil {
				s.fail(fmt.Errorf("%w: %s: record %d header: %v", ErrBadFormat, s.file.path, s.read, err))
				return
			}
			id = uint64(binary.LittleEndian.Uint32(s.win[s.pos:]))
			deg = uint64(binary.LittleEndian.Uint32(s.win[s.pos+4:]))
			s.pos += 8
			if id >= h.Vertices {
				s.fail(fmt.Errorf("%w: %s: record %d has out-of-range id %d", ErrBadFormat, s.file.path, s.read, id))
				return
			}
			if deg >= h.Vertices {
				s.fail(fmt.Errorf("%w: %s: vertex %d has impossible degree %d", ErrBadFormat, s.file.path, id, deg))
				return
			}
		}
		n := int(deg)
		if !s.reserve(n) {
			s.pending, s.pendingID, s.pendingDeg = true, id, deg
			return
		}
		if err := s.ensure(n * 4); err != nil {
			s.fail(fmt.Errorf("%w: %s: vertex %d neighbors: %v", ErrBadFormat, s.file.path, id, err))
			return
		}
		start := len(s.arena)
		s.arena = s.arena[:start+n]
		DecodeUint32s(s.arena[start:], s.win[s.pos:])
		s.pos += n * 4
		s.recs = append(s.recs, Record{ID: uint32(id), Neighbors: s.arena[start : start+n : start+n]})
		s.read++
	}
}

// reserve ensures the arena can hold need more values without reallocating,
// which would invalidate the views already handed to this batch's records.
// With records already in the batch it refuses instead, so the caller closes
// the batch and resumes into an empty (possibly grown) arena.
func (s *Scanner) reserve(need int) bool {
	if len(s.arena)+need <= cap(s.arena) {
		return true
	}
	if len(s.recs) > 0 {
		return false
	}
	if aliasCheck {
		// The old arena is about to be abandoned to the GC; poison it so
		// slices retained from earlier batches cannot keep reading stale
		// (still-plausible) neighbor IDs out of it.
		p := s.arena[:cap(s.arena)]
		for i := range p {
			p[i] = AliasPoison
		}
	}
	newCap := 2 * cap(s.arena)
	if newCap < need {
		newCap = need
	}
	if newCap < batchTargetInts {
		newCap = batchTargetInts
	}
	s.arena = make([]uint32, 0, newCap)
	return true
}

// ensure fills the window until n bytes are available from the current
// position. When the stream runs out first, it reports the same error the
// bytewise reference decoder's chunked io.ReadFull would have: io.EOF when
// the truncation point falls on a 4096-byte chunk boundary of the request,
// io.ErrUnexpectedEOF otherwise, and underlying read errors verbatim.
func (s *Scanner) ensure(n int) error {
	for len(s.win)-s.pos < n {
		if !s.more() {
			if s.ioErr != nil && s.ioErr != io.EOF {
				return s.ioErr
			}
			if avail := len(s.win) - s.pos; avail%4096 != 0 {
				return io.ErrUnexpectedEOF
			}
			return io.EOF
		}
	}
	return nil
}

// more appends the next prefetched block to the window, compacting consumed
// bytes first. It returns false when the stream is exhausted. Stats are
// counted here, on the consumer side, block by block as ownership transfers.
func (s *Scanner) more() bool {
	if s.mapped {
		return s.moreMapped()
	}
	if s.ioErr != nil {
		return false
	}
	blk := s.pf.next()
	if blk.err == errScanCanceled && s.ctx != nil {
		// The pipeline's done channel (the scan context) fired while the
		// decoder was waiting for bytes: surface the context's error with
		// the scan position, not a decode failure.
		s.ioErr = blk.err
		s.fail(&ScanError{Records: s.read, Total: s.limit, Err: s.ctx.Err()})
		return false
	}
	if st := s.file.stats; st != nil && !s.detached && len(blk.buf) > 0 {
		st.AddBytesRead(uint64(len(blk.buf)))
		st.AddBlocksRead(1)
	}
	s.fetched += uint64(len(blk.buf))
	if blk.err != nil {
		s.ioErr = blk.err
	}
	if len(blk.buf) == 0 {
		return false
	}
	if s.pos > 0 {
		if s.pos == len(s.win) {
			s.win = s.win[:0]
			s.pos = 0
		} else if s.pos >= s.file.blockSize {
			// Drop the consumed prefix only once it dominates the window, so
			// a record straddling many blocks is not recopied per block.
			n := copy(s.win, s.win[s.pos:])
			s.win = s.win[:n]
			s.pos = 0
		}
	}
	s.win = append(s.win, blk.buf...)
	s.pf.recycle(blk.buf)
	return true
}

// finish marks a completed scan, counting it exactly once. A plain engine
// scan is one logical pass riding one physical pass; the pass scheduler
// (internal/pipeline) adds the extra logical scans of a fused pass group on
// top.
func (s *Scanner) finish() {
	if s.done {
		return
	}
	s.done = true
	if s.file.stats != nil && !s.detached {
		s.file.stats.AddScans(1)
		s.file.stats.AddPhysicalScans(1)
	}
	s.close()
}

// fail records the scan's first error and stops the pipeline.
func (s *Scanner) fail(err error) {
	if s.err == nil {
		s.err = err
	}
	s.close()
}

// Close releases the scan's prefetch pipeline (a goroutine and two block
// buffers). Completed or failed scans release it automatically, as do
// File.Close and a new Scan on the same file; call Close when abandoning a
// scan mid-file while keeping the File open. Idempotent.
func (s *Scanner) Close() { s.close() }

// close stops this scan's engine: the prefetcher of a pipelined scan, or
// the mapping reference of a mapped one. Detached scanners never touch the
// file's active-scan slot: they may close concurrently on worker goroutines.
// A mapped scanner likewise leaves the slot alone (stopMapped is idempotent,
// so the file stopping it again later is harmless), keeping close free of
// cross-goroutine writes to the File.
func (s *Scanner) close() {
	if s.mapped {
		s.stopMapped()
		return
	}
	s.pf.shutdown()
	if !s.detached && s.file.active == s.pf {
		s.file.active = nil
	}
}

// DecodeUint32s decodes len(dst) little-endian uint32 values from src. It is
// the single bulk decoder for fixed-width neighbor lists, shared with the
// external-sort run reader.
func DecodeUint32s(dst []uint32, src []byte) {
	if len(dst) == 0 {
		return
	}
	_ = src[4*len(dst)-1] // one bounds check for the whole loop
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(src[i*4:])
	}
}

// AppendRawRecord appends the raw (uncompressed) on-disk encoding of one
// adjacency record to dst and returns the extended slice. It is the single
// encoder for the raw record layout, shared by Writer and the external-sort
// run writer.
func AppendRawRecord(dst []byte, id uint32, neighbors []uint32) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:], id)
	binary.LittleEndian.PutUint32(b[4:], uint32(len(neighbors)))
	dst = append(dst, b[:]...)
	for _, n := range neighbors {
		var v [4]byte
		binary.LittleEndian.PutUint32(v[:], n)
		dst = append(dst, v[:]...)
	}
	return dst
}

// ForEach runs one full sequential scan, invoking fn for every record.
func (g *File) ForEach(fn func(Record) error) error {
	return g.ForEachCtx(nil, fn)
}

// ForEachCtx is ForEach bound to a context (see ScanCtx); nil behaves like
// ForEach.
func (g *File) ForEachCtx(ctx context.Context, fn func(Record) error) error {
	return g.ForEachBatchCtx(ctx, func(batch []Record) error {
		for i := range batch {
			if err := fn(batch[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// ForEachBatch runs one full sequential scan, invoking fn for every decoded
// batch of records in scan order. It is the fast path for scan-bound
// algorithms: one callback per batch instead of per record, with the batch's
// neighbor lists decoded back to back in one arena.
func (g *File) ForEachBatch(fn func([]Record) error) error {
	return g.ForEachBatchCtx(nil, fn)
}

// ForEachBatchCtx is ForEachBatch bound to a context: a canceled or expired
// ctx stops the scan within one batch, shuts the prefetch pipeline down, and
// returns the ctx error wrapped in a ScanError carrying the scan position. A
// nil ctx behaves exactly like ForEachBatch.
func (g *File) ForEachBatchCtx(ctx context.Context, fn func([]Record) error) error {
	sc, err := g.ScanCtx(ctx)
	if err != nil {
		return err
	}
	defer sc.close()
	for {
		batch := sc.NextBatch()
		if batch == nil {
			break
		}
		if err := fn(batch); err != nil {
			return err
		}
	}
	return sc.Err()
}
