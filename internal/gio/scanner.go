package gio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// File is an open adjacency file supporting repeated sequential scans.
// It is the only way the semi-external algorithms touch the graph: every
// Scan reads the file front to back with block-buffered reads and no seeks
// other than the rewind between scans.
type File struct {
	f         *os.File
	path      string
	header    Header
	blockSize int
	stats     *Stats
}

// Open opens an adjacency file for scanning. stats may be nil; blockSize
// ≤ 0 selects DefaultBlockSize.
func Open(path string, blockSize int, stats *Stats) (*File, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gio: open %s: %w", path, err)
	}
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s: reading header: %v", ErrBadFormat, path, err)
	}
	h, err := decodeHeader(hdr[:])
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &File{f: f, path: path, header: h, blockSize: blockSize, stats: stats}, nil
}

// Header returns the file header.
func (g *File) Header() Header { return g.header }

// Path returns the file's path.
func (g *File) Path() string { return g.path }

// NumVertices returns the vertex count from the header.
func (g *File) NumVertices() int { return int(g.header.Vertices) }

// NumEdges returns the undirected edge count from the header.
func (g *File) NumEdges() uint64 { return g.header.Edges }

// Stats returns the shared I/O statistics, which may be nil.
func (g *File) Stats() *Stats { return g.stats }

// SizeBytes returns the on-disk size of the file.
func (g *File) SizeBytes() (int64, error) {
	fi, err := g.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Close closes the underlying file.
func (g *File) Close() error { return g.f.Close() }

// Record is one vertex's adjacency record as stored on disk. Neighbors is
// only valid until the next Scanner.Next call.
type Record struct {
	ID        uint32
	Neighbors []uint32
}

// Scanner iterates the records of one sequential scan.
type Scanner struct {
	file    *File
	br      *bufio.Reader
	rec     Record
	scratch []uint32
	buf     []byte
	read    uint64
	err     error
	done    bool
}

// Scan rewinds the file and returns a Scanner over all records, counting
// one sequential scan in the file's Stats when the scan completes.
func (g *File) Scan() (*Scanner, error) {
	if _, err := g.f.Seek(HeaderSize, io.SeekStart); err != nil {
		return nil, fmt.Errorf("gio: rewind %s: %w", g.path, err)
	}
	return &Scanner{
		file: g,
		br:   bufio.NewReaderSize(statsReader{g.f, g.stats}, g.blockSize),
		buf:  make([]byte, 8),
	}, nil
}

// Next advances to the next record. It returns false at end of scan or on
// error; check Err afterwards.
func (s *Scanner) Next() bool {
	if s.err != nil || s.done {
		return false
	}
	if s.read == s.file.header.Vertices {
		s.done = true
		if s.file.stats != nil {
			s.file.stats.Scans++
		}
		return false
	}
	if s.file.header.Flags&FlagCompressed != 0 {
		return s.nextCompressed()
	}
	if _, err := io.ReadFull(s.br, s.buf[:8]); err != nil {
		s.err = fmt.Errorf("%w: %s: record %d header: %v", ErrBadFormat, s.file.path, s.read, err)
		return false
	}
	id := binary.LittleEndian.Uint32(s.buf[0:])
	deg := binary.LittleEndian.Uint32(s.buf[4:])
	if uint64(id) >= s.file.header.Vertices {
		s.err = fmt.Errorf("%w: %s: record %d has out-of-range id %d", ErrBadFormat, s.file.path, s.read, id)
		return false
	}
	if uint64(deg) >= s.file.header.Vertices {
		s.err = fmt.Errorf("%w: %s: vertex %d has impossible degree %d", ErrBadFormat, s.file.path, id, deg)
		return false
	}
	if cap(s.scratch) < int(deg) {
		s.scratch = make([]uint32, deg, deg*2)
	}
	s.scratch = s.scratch[:deg]
	if err := readUint32s(s.br, s.scratch); err != nil {
		s.err = fmt.Errorf("%w: %s: vertex %d neighbors: %v", ErrBadFormat, s.file.path, id, err)
		return false
	}
	s.rec.ID = id
	s.rec.Neighbors = s.scratch
	s.read++
	if s.file.stats != nil {
		s.file.stats.RecordsRead++
	}
	return true
}

// Record returns the current record. Its Neighbors slice is reused by Next.
func (s *Scanner) Record() Record { return s.rec }

// Err returns the first error encountered by the scan, if any.
func (s *Scanner) Err() error { return s.err }

// readUint32s fills dst with little-endian uint32 values from r.
func readUint32s(r io.Reader, dst []uint32) error {
	var buf [4096]byte
	for len(dst) > 0 {
		chunk := len(dst) * 4
		if chunk > len(buf) {
			chunk = len(buf)
		}
		if _, err := io.ReadFull(r, buf[:chunk]); err != nil {
			return err
		}
		for i := 0; i < chunk/4; i++ {
			dst[i] = binary.LittleEndian.Uint32(buf[i*4:])
		}
		dst = dst[chunk/4:]
	}
	return nil
}

// ForEach runs one full sequential scan, invoking fn for every record.
func (g *File) ForEach(fn func(Record) error) error {
	sc, err := g.Scan()
	if err != nil {
		return err
	}
	for sc.Next() {
		if err := fn(sc.Record()); err != nil {
			return err
		}
	}
	return sc.Err()
}

// statsReader counts bytes and buffered refills.
type statsReader struct {
	r     io.Reader
	stats *Stats
}

func (sr statsReader) Read(p []byte) (int, error) {
	n, err := sr.r.Read(p)
	if sr.stats != nil {
		sr.stats.BytesRead += uint64(n)
		if n > 0 {
			sr.stats.BlocksRead++
		}
	}
	return n, err
}
