package gio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// FlagCompressed marks a file whose records are varint/delta encoded. The
// paper's datasets ship WebGraph-compressed [6]; this format plays the same
// role for this library: neighbor lists are stored as ascending vertex IDs
// with gap encoding, which none of the algorithms mind (they only iterate
// lists; the scan order of *records* still carries the degree sort).
//
// Compressed record layout:
//
//	uvarint id
//	uvarint degree
//	uvarint neighbors[0]            (absolute)
//	uvarint neighbors[k]-neighbors[k-1]-1   (gaps, strictly ascending)
const FlagCompressed uint32 = 1 << 1

// appendCompressed writes one compressed record. Neighbors are sorted into
// ascending ID order (a copy; the caller's slice is not modified). The whole
// record is encoded into the writer's scratch buffer and written with one
// call, instead of one write per varint.
func (w *Writer) appendCompressed(id uint32, neighbors []uint32) error {
	sorted := neighbors
	if !sort.SliceIsSorted(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] }) {
		sorted = make([]uint32, len(neighbors))
		copy(sorted, neighbors)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	}
	buf := w.buf[:0]
	buf = binary.AppendUvarint(buf, uint64(id))
	buf = binary.AppendUvarint(buf, uint64(len(sorted)))
	prev := int64(-1)
	for _, nb := range sorted {
		if int64(nb) == prev {
			err := fmt.Errorf("gio: duplicate neighbor %d in record %d", nb, id)
			w.err = err
			return err
		}
		gap := uint64(int64(nb) - prev - 1)
		prev = int64(nb)
		buf = binary.AppendUvarint(buf, gap)
	}
	w.buf = buf[:0]
	if _, err := w.bw.Write(buf); err != nil {
		w.err = err
		return err
	}
	w.records++
	w.degSum += uint64(len(sorted))
	w.observeCut(int64(len(buf)))
	return nil
}

// errVarintOverflow mirrors encoding/binary's unexported overflow error so
// the slice-based varint decoder reports byte-for-byte the same failure as
// binary.ReadUvarint does on the bytewise reference path — the parity tests
// compare the two as strings.
var errVarintOverflow = errors.New("binary: varint overflows a 64-bit integer")

// uvarintSafe is the window headroom above which a varint can be decoded
// straight from the slice with binary.Uvarint: with MaxVarintLen64+1 bytes
// available the decode always terminates (n > 0) or overflows (n < 0),
// never reports "buf too small" (n == 0).
const uvarintSafe = binary.MaxVarintLen64 + 1

// uvarint decodes one varint from the window, refilling as needed. Error
// semantics mirror binary.ReadUvarint exactly: io.EOF when no byte was
// available, io.ErrUnexpectedEOF when the varint was cut short, the
// stdlib's overflow message after ten bytes, and underlying read errors
// verbatim.
func (s *Scanner) uvarint() (uint64, error) {
	if len(s.win)-s.pos >= uvarintSafe {
		x, n := binary.Uvarint(s.win[s.pos:])
		if n > 0 {
			s.pos += n
			return x, nil
		}
		return 0, errVarintOverflow
	}
	var x uint64
	var shift uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		for s.pos >= len(s.win) {
			if !s.more() {
				err := s.ioErr
				if err == nil {
					err = io.EOF
				}
				if i > 0 && err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return x, err
			}
		}
		b := s.win[s.pos]
		s.pos++
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return x, errVarintOverflow
			}
			return x | uint64(b)<<shift, nil
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	return x, errVarintOverflow
}

// fillCompressed batch-decodes varint/gap records from the window. The
// arithmetic matches the bytewise reference decoder exactly, including its
// int64 wraparound behavior on adversarial gap values, so the two paths
// accept and reject byte-identical inputs.
func (s *Scanner) fillCompressed() {
	h := s.file.header
	for s.read < s.limit && len(s.recs) < batchMaxRecords && len(s.arena) < batchTargetInts {
		var id64, deg64 uint64
		if s.pending {
			id64, deg64 = s.pendingID, s.pendingDeg
			s.pending = false
		} else {
			var err error
			id64, err = s.uvarint()
			if err != nil {
				s.fail(fmt.Errorf("%w: %s: record %d id: %v", ErrBadFormat, s.file.path, s.read, err))
				return
			}
			deg64, err = s.uvarint()
			if err != nil {
				s.fail(fmt.Errorf("%w: %s: record %d degree: %v", ErrBadFormat, s.file.path, s.read, err))
				return
			}
			if id64 >= h.Vertices {
				s.fail(fmt.Errorf("%w: %s: record %d has out-of-range id %d", ErrBadFormat, s.file.path, s.read, id64))
				return
			}
			if deg64 >= h.Vertices {
				s.fail(fmt.Errorf("%w: %s: vertex %d has impossible degree %d", ErrBadFormat, s.file.path, id64, deg64))
				return
			}
		}
		deg := int(deg64)
		if !s.reserve(deg) {
			s.pending, s.pendingID, s.pendingDeg = true, id64, deg64
			return
		}
		start := len(s.arena)
		s.arena = s.arena[:start+deg]
		dst := s.arena[start : start+deg]
		prev := int64(-1)
		for i := 0; i < deg; {
			// Fast path: while the window holds guaranteed-complete varints,
			// decode gaps straight off the slice with no refill checks.
			win, pos := s.win, s.pos
			for i < deg && len(win)-pos >= uvarintSafe {
				gap, n := binary.Uvarint(win[pos:])
				if n <= 0 {
					s.pos = pos
					s.fail(fmt.Errorf("%w: %s: vertex %d neighbors: %v", ErrBadFormat, s.file.path, id64, errVarintOverflow))
					return
				}
				pos += n
				v := prev + 1 + int64(gap)
				if v >= int64(h.Vertices) {
					s.pos = pos
					s.fail(fmt.Errorf("%w: %s: vertex %d has out-of-range neighbor %d", ErrBadFormat, s.file.path, id64, v))
					return
				}
				dst[i] = uint32(v)
				prev = v
				i++
			}
			s.pos = pos
			if i == deg {
				break
			}
			// Slow path near the window edge: one gap with refills.
			gap, err := s.uvarint()
			if err != nil {
				s.fail(fmt.Errorf("%w: %s: vertex %d neighbors: %v", ErrBadFormat, s.file.path, id64, err))
				return
			}
			v := prev + 1 + int64(gap)
			if v >= int64(h.Vertices) {
				s.fail(fmt.Errorf("%w: %s: vertex %d has out-of-range neighbor %d", ErrBadFormat, s.file.path, id64, v))
				return
			}
			dst[i] = uint32(v)
			prev = v
			i++
		}
		s.recs = append(s.recs, Record{ID: uint32(id64), Neighbors: s.arena[start : start+deg : start+deg]})
		s.read++
	}
}
