package gio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// FlagCompressed marks a file whose records are varint/delta encoded. The
// paper's datasets ship WebGraph-compressed [6]; this format plays the same
// role for this library: neighbor lists are stored as ascending vertex IDs
// with gap encoding, which none of the algorithms mind (they only iterate
// lists; the scan order of *records* still carries the degree sort).
//
// Compressed record layout:
//
//	uvarint id
//	uvarint degree
//	uvarint neighbors[0]            (absolute)
//	uvarint neighbors[k]-neighbors[k-1]-1   (gaps, strictly ascending)
const FlagCompressed uint32 = 1 << 1

// appendCompressed writes one compressed record. Neighbors are sorted into
// ascending ID order (a copy; the caller's slice is not modified).
func (w *Writer) appendCompressed(id uint32, neighbors []uint32) error {
	sorted := neighbors
	if !sort.SliceIsSorted(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] }) {
		sorted = make([]uint32, len(neighbors))
		copy(sorted, neighbors)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	}
	var buf [2 * binary.MaxVarintLen32]byte
	n := binary.PutUvarint(buf[:], uint64(id))
	n += binary.PutUvarint(buf[n:], uint64(len(sorted)))
	if _, err := w.bw.Write(buf[:n]); err != nil {
		w.err = err
		return err
	}
	prev := int64(-1)
	for _, nb := range sorted {
		if int64(nb) == prev {
			err := fmt.Errorf("gio: duplicate neighbor %d in record %d", nb, id)
			w.err = err
			return err
		}
		gap := uint64(int64(nb) - prev - 1)
		prev = int64(nb)
		n = binary.PutUvarint(buf[:], gap)
		if _, err := w.bw.Write(buf[:n]); err != nil {
			w.err = err
			return err
		}
	}
	w.records++
	w.degSum += uint64(len(sorted))
	return nil
}

// nextCompressed decodes one compressed record into the scanner.
func (s *Scanner) nextCompressed() bool {
	br := byteReaderCounter{s.br}
	id64, err := binary.ReadUvarint(br)
	if err != nil {
		s.err = fmt.Errorf("%w: %s: record %d id: %v", ErrBadFormat, s.file.path, s.read, err)
		return false
	}
	deg64, err := binary.ReadUvarint(br)
	if err != nil {
		s.err = fmt.Errorf("%w: %s: record %d degree: %v", ErrBadFormat, s.file.path, s.read, err)
		return false
	}
	if id64 >= s.file.header.Vertices {
		s.err = fmt.Errorf("%w: %s: record %d has out-of-range id %d", ErrBadFormat, s.file.path, s.read, id64)
		return false
	}
	if deg64 >= s.file.header.Vertices {
		s.err = fmt.Errorf("%w: %s: vertex %d has impossible degree %d", ErrBadFormat, s.file.path, id64, deg64)
		return false
	}
	deg := int(deg64)
	if cap(s.scratch) < deg {
		s.scratch = make([]uint32, deg, deg*2)
	}
	s.scratch = s.scratch[:deg]
	prev := int64(-1)
	for i := 0; i < deg; i++ {
		gap, err := binary.ReadUvarint(br)
		if err != nil {
			s.err = fmt.Errorf("%w: %s: vertex %d neighbors: %v", ErrBadFormat, s.file.path, id64, err)
			return false
		}
		v := prev + 1 + int64(gap)
		if v >= int64(s.file.header.Vertices) {
			s.err = fmt.Errorf("%w: %s: vertex %d has out-of-range neighbor %d", ErrBadFormat, s.file.path, id64, v)
			return false
		}
		s.scratch[i] = uint32(v)
		prev = v
	}
	s.rec.ID = uint32(id64)
	s.rec.Neighbors = s.scratch
	s.read++
	if s.file.stats != nil {
		s.file.stats.RecordsRead++
	}
	return true
}

// byteReaderCounter adapts bufio.Reader for binary.ReadUvarint.
type byteReaderCounter struct{ r *bufio.Reader }

func (b byteReaderCounter) ReadByte() (byte, error) { return b.r.ReadByte() }

var _ io.ByteReader = byteReaderCounter{}
