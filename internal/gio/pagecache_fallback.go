//go:build !linux || nommap

package gio

// DropPageCache is unavailable without posix_fadvise; callers (the cold
// scan benchmark) record the failure and report their numbers as
// page-cache-warm.
func DropPageCache(path string) error { return ErrPageCacheCtl }
