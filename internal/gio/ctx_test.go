package gio

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
)

// writeCtxFile writes a file with enough records for several batches.
func writeCtxFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ctx.adj")
	w, err := NewWriter(path, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for v := uint32(0); v < n; v++ {
		nb := []uint32{(v + 1) % n, (v + 2) % n}
		if err := w.Append(v, nb); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestForEachBatchCtxCancel: cancellation mid-scan surfaces a ScanError
// wrapping the ctx error with the scan position, and the pipeline shuts
// down (a later plain scan still works).
func TestForEachBatchCtxCancel(t *testing.T) {
	f, err := Open(writeCtxFile(t), 0, &Counters{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ctx, cancel := context.WithCancel(context.Background())
	batches := 0
	err = f.ForEachBatchCtx(ctx, func(batch []Record) error {
		if batches++; batches == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var se *ScanError
	if !errors.As(err, &se) {
		t.Fatalf("err %v carries no scan position", err)
	}
	if se.Records == 0 || se.Records >= se.Total {
		t.Fatalf("position %d of %d, want mid-scan", se.Records, se.Total)
	}

	// The file remains fully usable for the next (uncancelled) scan.
	records := uint64(0)
	if err := f.ForEachBatch(func(batch []Record) error {
		records += uint64(len(batch))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if records != f.Header().Vertices {
		t.Fatalf("follow-up scan delivered %d of %d records", records, f.Header().Vertices)
	}
}

// TestForEachBatchCtxNil: a nil ctx behaves exactly like ForEachBatch.
func TestForEachBatchCtxNil(t *testing.T) {
	var stats Counters
	f, err := Open(writeCtxFile(t), 0, &stats)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.ForEachBatchCtx(nil, func([]Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if snap := stats.Snapshot(); snap.Scans != 1 || snap.RecordsRead != f.Header().Vertices {
		t.Fatalf("nil-ctx scan accounting off: %+v", snap)
	}
}

// TestCountersScope: a child scope sees only its own additions while the
// parent accumulates everything, including concurrent additions from many
// scopes (run under -race in CI).
func TestCountersScope(t *testing.T) {
	var root Counters
	var wg sync.WaitGroup
	const scopes, adds = 8, 1000
	children := make([]*Counters, scopes)
	for i := range children {
		children[i] = root.Scope()
		wg.Add(1)
		go func(c *Counters) {
			defer wg.Done()
			for j := 0; j < adds; j++ {
				c.AddRecordsRead(1)
				c.AddScans(1)
			}
		}(children[i])
	}
	wg.Wait()
	for i, c := range children {
		if snap := c.Snapshot(); snap.RecordsRead != adds || snap.Scans != adds {
			t.Fatalf("scope %d: %+v, want %d records / %d scans", i, snap, adds, adds)
		}
	}
	if snap := root.Snapshot(); snap.RecordsRead != scopes*adds || snap.Scans != scopes*adds {
		t.Fatalf("root: %+v, want %d records", snap, scopes*adds)
	}
	root.Reset()
	if snap := root.Snapshot(); snap != (Stats{}) {
		t.Fatalf("reset left %+v", snap)
	}
}

// TestWithCountersViews: concurrent sequential scans through separate views
// of one file deliver full record streams and account into their own
// scopes.
func TestWithCountersViews(t *testing.T) {
	var root Counters
	f, err := Open(writeCtxFile(t), 0, &root)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const views = 4
	var wg sync.WaitGroup
	scopes := make([]*Counters, views)
	counts := make([]uint64, views)
	errs := make([]error, views)
	for i := 0; i < views; i++ {
		scopes[i] = root.Scope()
		v := f.WithCounters(scopes[i])
		wg.Add(1)
		go func(i int, v *File) {
			defer wg.Done()
			errs[i] = v.ForEachBatch(func(batch []Record) error {
				counts[i] += uint64(len(batch))
				return nil
			})
		}(i, v)
	}
	wg.Wait()
	total := f.Header().Vertices
	for i := 0; i < views; i++ {
		if errs[i] != nil {
			t.Fatalf("view %d: %v", i, errs[i])
		}
		if counts[i] != total {
			t.Fatalf("view %d delivered %d of %d records", i, counts[i], total)
		}
		if snap := scopes[i].Snapshot(); snap.Scans != 1 || snap.RecordsRead != total {
			t.Fatalf("view %d scope: %+v", i, snap)
		}
	}
	if snap := root.Snapshot(); snap.Scans != views || snap.RecordsRead != views*total {
		t.Fatalf("root totals: %+v", snap)
	}
}
