package gio

import (
	"testing"
)

// The arena-aliasing footgun, demonstrated and made loud: Record.Neighbors
// is a view into per-batch storage (the shared arena, or the file mapping on
// the mmap zero-copy path), so retaining a slice across batches silently
// reads whatever the next batch decoded into the same storage. With
// SetAliasCheck on, the scanner poisons outgoing arenas with AliasPoison at
// every batch boundary, turning that silent corruption into an unmistakable
// sentinel.

// retainAcrossBatches scans path, illegally retains the first batch's first
// non-empty Neighbors slice, and returns that slice's contents as observed
// AFTER the scan finished — i.e. what a buggy caller would actually read.
func retainAcrossBatches(t *testing.T, path string) []uint32 {
	t.Helper()
	f, err := Open(path, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var retained []uint32
	batches := 0
	err = f.ForEachBatch(func(batch []Record) error {
		batches++
		if retained == nil {
			for _, r := range batch {
				if len(r.Neighbors) > 0 {
					retained = r.Neighbors // BUG under test: no copy
					break
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if batches < 2 {
		t.Fatalf("file too small to cross a batch boundary: %d batches", batches)
	}
	if retained == nil {
		t.Fatal("no non-empty record found")
	}
	return append([]uint32(nil), retained...)
}

func TestRetainAcrossBatchesMisuse(t *testing.T) {
	// Enough records to span several batches (batchMaxRecords = 1024).
	path := writeMmapTestFile(t, t.TempDir(), 5000, false)

	// Without the check the retained slice holds plausible-looking stale
	// garbage — later batches' neighbor data — which is exactly why the bug
	// is dangerous: nothing fails.
	SetAliasCheck(false)
	stale := retainAcrossBatches(t, path)
	for _, v := range stale {
		if v == AliasPoison {
			t.Fatalf("arena poisoned with the check off: %#x", v)
		}
	}

	// With the check on, the same misuse reads the sentinel instead.
	SetAliasCheck(true)
	defer SetAliasCheck(false)
	poisoned := retainAcrossBatches(t, path)
	for i, v := range poisoned {
		if v != AliasPoison {
			t.Fatalf("retained[%d] = %#x, want AliasPoison %#x: misuse went undetected", i, v, AliasPoison)
		}
	}
}

// TestAliasCheckCleanUseUnaffected: code honoring the batch contract sees
// identical records with the check on and off — the poisoning happens only
// to storage that is already invalid to read.
func TestAliasCheckCleanUseUnaffected(t *testing.T) {
	path := writeMmapTestFile(t, t.TempDir(), 3000, false)
	collect := func() []Record {
		f, err := Open(path, 4096, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var out []Record
		if err := f.ForEach(func(r Record) error {
			out = append(out, Record{ID: r.ID, Neighbors: append([]uint32(nil), r.Neighbors...)})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	SetAliasCheck(false)
	plain := collect()
	SetAliasCheck(true)
	defer SetAliasCheck(false)
	checked := collect()
	if len(plain) != len(checked) {
		t.Fatalf("record counts differ: %d vs %d", len(plain), len(checked))
	}
	for i := range plain {
		if plain[i].ID != checked[i].ID || len(plain[i].Neighbors) != len(checked[i].Neighbors) {
			t.Fatalf("record %d differs under alias check", i)
		}
		for j := range plain[i].Neighbors {
			if plain[i].Neighbors[j] != checked[i].Neighbors[j] {
				t.Fatalf("record %d neighbor %d differs under alias check", i, j)
			}
		}
	}
}
