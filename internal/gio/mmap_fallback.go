//go:build !(linux || darwin) || nommap

package gio

import (
	"errors"
	"os"
)

// The portable fallback: platforms without syscall.Mmap (and builds under
// the nommap tag) cannot map the file, so OpenMmap degrades to the ordinary
// block-pipelined engine — positional ReadAt through the double-buffered
// prefetcher — with identical records, errors and Stats. MmapActive reports
// false, and zero-copy aliasing is unavailable (batches are arena-backed,
// so the arena lifetime contract applies unchanged).

const mmapSupported = false

var errMmapUnsupported = errors.New("gio: mmap not supported on this platform")

func mapMem(f *os.File, size int64) ([]byte, error) { return nil, errMmapUnsupported }

func unmapMem(data []byte) error { return nil }

func adviseSequential(data []byte) {}
