package gio

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// Writer produces an adjacency file through buffered sequential writes.
// Records must be appended in the intended scan order. Close finalizes the
// header with the actual vertex and edge counts.
type Writer struct {
	f       *os.File
	bw      *countingWriter
	buf     []byte
	header  Header
	records uint64
	degSum  uint64
	stats   *Counters
	err     error
}

// NewWriter creates (truncating) an adjacency file at path. flags are format
// flags such as FlagDegreeSorted. stats may be nil.
func NewWriter(path string, flags uint32, blockSize int, stats *Counters) (*Writer, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("gio: create %s: %w", path, err)
	}
	w := &Writer{
		f:      f,
		bw:     newCountingWriter(f, blockSize, stats),
		header: Header{Version: 1, Flags: flags},
		stats:  stats,
	}
	// Reserve header space; rewritten on Close with final counts.
	var hdr [HeaderSize]byte
	if _, err := w.bw.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("gio: write header: %w", err)
	}
	return w, nil
}

// Append writes the record for vertex id with the given neighbor list.
// On a FlagCompressed writer the list is stored varint/delta encoded in
// ascending ID order; otherwise it is stored verbatim. Either way the whole
// record is encoded into a reusable scratch buffer and written in one call.
func (w *Writer) Append(id uint32, neighbors []uint32) error {
	if w.err != nil {
		return w.err
	}
	if w.header.Flags&FlagCompressed != 0 {
		return w.appendCompressed(id, neighbors)
	}
	w.buf = AppendRawRecord(w.buf[:0], id, neighbors)
	if _, err := w.bw.Write(w.buf); err != nil {
		w.err = err
		return err
	}
	w.records++
	w.degSum += uint64(len(neighbors))
	return nil
}

// Close flushes buffered data, rewrites the header with final counts, and
// closes the file.
func (w *Writer) Close() error {
	if w.err != nil {
		w.f.Close()
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("gio: flush: %w", err)
	}
	w.header.Vertices = w.records
	w.header.Edges = w.degSum / 2
	var hdr [HeaderSize]byte
	w.header.encode(hdr[:])
	if _, err := w.f.WriteAt(hdr[:], 0); err != nil {
		w.f.Close()
		return fmt.Errorf("gio: rewrite header: %w", err)
	}
	if w.stats != nil {
		w.stats.AddBytesWritten(HeaderSize)
	}
	return w.f.Close()
}

// countingWriter is a bufio.Writer that counts bytes and flushes (blocks)
// into Stats.
type countingWriter struct {
	*bufio.Writer
	stats *Counters
}

func newCountingWriter(w io.Writer, blockSize int, stats *Counters) *countingWriter {
	cw := &countingWriter{stats: stats}
	cw.Writer = bufio.NewWriterSize(statsWriter{w, stats}, blockSize)
	return cw
}

type statsWriter struct {
	w     io.Writer
	stats *Counters
}

func (sw statsWriter) Write(p []byte) (int, error) {
	n, err := sw.w.Write(p)
	if sw.stats != nil {
		sw.stats.AddBytesWritten(uint64(n))
		sw.stats.AddBlocksWritten(1)
	}
	return n, err
}
