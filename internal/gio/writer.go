package gio

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// Writer produces an adjacency file through buffered sequential writes.
// Records must be appended in the intended scan order. Close finalizes the
// header with the actual vertex and edge counts and, by default, appends a
// footer carrying the record count and the partition cut table observed
// during the write (see footer.go) — so files it produces open with their
// partition plan pre-loaded and never pay a planning scan.
type Writer struct {
	f       *os.File
	bw      *countingWriter
	buf     []byte
	header  Header
	records uint64
	degSum  uint64
	stats   *Counters
	err     error

	// Footer bookkeeping: off tracks the absolute offset past the last
	// record written; cuts accumulates the partition cut table with exactly
	// the cadence of the planning scan's cutBuilder, so a footer-loaded plan
	// and a side-scan plan are identical.
	off        int64
	cuts       cutTable
	noFooter   bool
	vertices   uint64 // header vertex-count override (shard files); 0 = records
	hasVertSet bool
}

// NewWriter creates (truncating) an adjacency file at path. flags are format
// flags such as FlagDegreeSorted. stats may be nil.
func NewWriter(path string, flags uint32, blockSize int, stats *Counters) (*Writer, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("gio: create %s: %w", path, err)
	}
	w := &Writer{
		f:      f,
		bw:     newCountingWriter(f, blockSize, stats),
		header: Header{Version: 1, Flags: flags},
		stats:  stats,
		off:    HeaderSize,
		cuts:   cutTable{recs: []uint64{0}, offs: []int64{HeaderSize}},
	}
	// Reserve header space; rewritten on Close with final counts.
	var hdr [HeaderSize]byte
	if _, err := w.bw.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("gio: write header: %w", err)
	}
	return w, nil
}

// Append writes the record for vertex id with the given neighbor list.
// On a FlagCompressed writer the list is stored varint/delta encoded in
// ascending ID order; otherwise it is stored verbatim. Either way the whole
// record is encoded into a reusable scratch buffer and written in one call.
func (w *Writer) Append(id uint32, neighbors []uint32) error {
	if w.err != nil {
		return w.err
	}
	if w.header.Flags&FlagCompressed != 0 {
		return w.appendCompressed(id, neighbors)
	}
	w.buf = AppendRawRecord(w.buf[:0], id, neighbors)
	if _, err := w.bw.Write(w.buf); err != nil {
		w.err = err
		return err
	}
	w.records++
	w.degSum += uint64(len(neighbors))
	w.observeCut(int64(len(w.buf)))
	return nil
}

// observeCut folds one written record of n bytes into the footer's cut
// table, mirroring cutBuilder.observe record for record.
func (w *Writer) observeCut(n int64) {
	w.off += n
	if w.off-w.cuts.offs[len(w.cuts.offs)-1] >= cutGranularity {
		w.cuts.recs = append(w.cuts.recs, w.records)
		w.cuts.offs = append(w.cuts.offs, w.off)
	}
}

// PayloadBytes returns the encoded size of the records appended so far
// (header and footer excluded). Splitters use it to roll shard files at a
// byte budget.
func (w *Writer) PayloadBytes() int64 { return w.off - HeaderSize }

// Records returns the number of records appended so far.
func (w *Writer) Records() uint64 { return w.records }

// SetVertexCount overrides the header's vertex count on Close. Shard files
// use it to keep the global vertex count in the header — so global vertex
// IDs and degrees still validate on a bare open — while the footer records
// how many records the shard actually holds.
func (w *Writer) SetVertexCount(n uint64) {
	w.vertices = n
	w.hasVertSet = true
}

// DisableFooter makes Close skip the footer, producing the pre-footer format
// byte for byte. Tests use it to exercise the footerless fallback path;
// production writers have no reason to.
func (w *Writer) DisableFooter() { w.noFooter = true }

// Close appends the footer, flushes buffered data, rewrites the header with
// final counts, and closes the file.
func (w *Writer) Close() error {
	if w.err != nil {
		w.f.Close()
		return w.err
	}
	if !w.noFooter {
		// Seal the cut table (the final boundary closes at the payload end)
		// and append footer block + trailer through the same buffered writer.
		if last := len(w.cuts.offs) - 1; w.cuts.offs[last] != w.off {
			w.cuts.recs = append(w.cuts.recs, w.records)
			w.cuts.offs = append(w.cuts.offs, w.off)
		}
		w.buf = appendFooter(w.buf[:0], w.records, &w.cuts)
		if _, err := w.bw.Write(w.buf); err != nil {
			w.f.Close()
			return fmt.Errorf("gio: write footer: %w", err)
		}
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("gio: flush: %w", err)
	}
	w.header.Vertices = w.records
	if w.hasVertSet {
		w.header.Vertices = w.vertices
	}
	w.header.Edges = w.degSum / 2
	var hdr [HeaderSize]byte
	w.header.encode(hdr[:])
	if _, err := w.f.WriteAt(hdr[:], 0); err != nil {
		w.f.Close()
		return fmt.Errorf("gio: rewrite header: %w", err)
	}
	if w.stats != nil {
		w.stats.AddBytesWritten(HeaderSize)
	}
	return w.f.Close()
}

// countingWriter is a bufio.Writer that counts bytes and flushes (blocks)
// into Stats.
type countingWriter struct {
	*bufio.Writer
	stats *Counters
}

func newCountingWriter(w io.Writer, blockSize int, stats *Counters) *countingWriter {
	cw := &countingWriter{stats: stats}
	cw.Writer = bufio.NewWriterSize(statsWriter{w, stats}, blockSize)
	return cw
}

type statsWriter struct {
	w     io.Writer
	stats *Counters
}

func (sw statsWriter) Write(p []byte) (int, error) {
	n, err := sw.w.Write(p)
	if sw.stats != nil {
		sw.stats.AddBytesWritten(uint64(n))
		sw.stats.AddBlocksWritten(1)
	}
	return n, err
}
