package gio

import (
	"errors"
	"fmt"
	"sort"
)

// Partition is a contiguous vertex-range slice of an adjacency file: a run
// of whole records, identified both by global record indices and by the
// exact byte range that encodes them. Partitions come from Partitions and
// are consumed by ScanPartition; they are the unit of work of the parallel
// partitioned executor (internal/exec).
type Partition struct {
	StartRecord uint64 // global index (scan order) of the first record
	Records     uint64 // number of records in the partition
	StartOffset int64  // absolute file offset of the first record
	EndOffset   int64  // absolute file offset one past the last record
}

// cutGranularity is the minimum payload distance between candidate cut
// points recorded by the planning scan. It bounds both the cut table's size
// (16 bytes per granule) and how far a partition boundary can sit from its
// ideal byte position; actual partitions are payload/parts bytes, usually
// much larger.
const cutGranularity = 16 * 1024

// cutTable is the cached planning index: record-aligned candidate cut
// points roughly every cutGranularity bytes of payload, each a (cumulative
// record count, absolute byte offset) pair. Entry 0 is (0, HeaderSize); the
// last entry is (total records, end of payload). The table is independent of
// any particular partition count, so one side scan serves every worker
// configuration of the file's lifetime.
type cutTable struct {
	recs []uint64
	offs []int64
}

// encodedSize returns the on-disk byte length of one record, recomputed
// from its decoded form. For compressed records this relies on neighbors
// being stored (and decoded) in ascending order with gap encoding.
func encodedSize(compressed bool, r Record) int64 {
	if !compressed {
		return 8 + 4*int64(len(r.Neighbors))
	}
	n := uvarintLen(uint64(r.ID)) + uvarintLen(uint64(len(r.Neighbors)))
	prev := int64(-1)
	for _, nb := range r.Neighbors {
		n += uvarintLen(uint64(int64(nb) - prev - 1))
		prev = int64(nb)
	}
	return n
}

func uvarintLen(x uint64) int64 {
	n := int64(1)
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// cutBuilder accumulates a cutTable from the records of one full sequential
// scan, recomputing each record's on-disk size from its decoded form. It is
// shared by the dedicated planning side scan (buildCutTable) and the
// opportunistic capture that rides an already-running counted scan
// (ForEachBatchWithPlanCapture).
type cutBuilder struct {
	compressed bool
	off        int64  // computed absolute offset past the last observed record
	read       uint64 // records observed
	ct         cutTable
}

func (g *File) newCutBuilder() *cutBuilder {
	return &cutBuilder{
		compressed: g.header.Flags&FlagCompressed != 0,
		off:        HeaderSize,
		ct:         cutTable{recs: []uint64{0}, offs: []int64{HeaderSize}},
	}
}

// observe folds one batch of decoded records, in scan order, into the plan.
func (b *cutBuilder) observe(batch []Record) {
	for i := range batch {
		b.off += encodedSize(b.compressed, batch[i])
		b.read++
		if b.off-b.ct.offs[len(b.ct.offs)-1] >= cutGranularity {
			b.ct.recs = append(b.ct.recs, b.read)
			b.ct.offs = append(b.ct.offs, b.off)
		}
	}
}

// table seals the accumulated plan, closing the final partition boundary.
func (b *cutBuilder) table() *cutTable {
	if last := len(b.ct.offs) - 1; b.ct.offs[last] != b.off {
		b.ct.recs = append(b.ct.recs, b.read)
		b.ct.offs = append(b.ct.offs, b.off)
	}
	return &b.ct
}

// buildCutTable runs the planning scan through a separate read-only handle
// so it neither disturbs an active scan nor counts toward the file's Stats:
// partitioning is metadata construction (like the degree-sort preprocessing),
// not one of the algorithm's accounted sequential passes.
func (g *File) buildCutTable() (*cutTable, error) {
	pf, err := Open(g.path, g.blockSize, nil)
	if err != nil {
		return nil, err
	}
	defer pf.Close()
	sc, err := pf.Scan()
	if err != nil {
		return nil, err
	}
	cb := g.newCutBuilder()
	for {
		batch := sc.NextBatch()
		if batch == nil {
			break
		}
		cb.observe(batch)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Cross-check the size arithmetic against the scanner's own position:
	// a drift here would mean ScanPartition seeks into the middle of a
	// record, so refuse to partition rather than decode garbage.
	if want := sc.offset(); cb.off != want {
		return nil, fmt.Errorf("%w: %s: partition plan drifted: computed offset %d, scanner at %d", ErrBadFormat, g.path, cb.off, want)
	}
	return cb.table(), nil
}

// Partitions splits the file into up to parts record-aligned partitions of
// roughly equal byte size, planning cut points with one sequential side scan
// on first use (cached afterwards; the planning scan is not counted in the
// file's Stats). Fewer partitions are returned when the file is too small to
// split at batch granularity; an empty file yields none. A malformed file
// fails here with the same error a sequential scan would report, which is
// how the executor detects that it must fall back to — and exactly
// reproduce — the sequential path. The plan cache is shared by every view of
// the file and guarded by its mutex; a first-use planning scan is
// single-flight (concurrent callers wait for it).
func (g *File) Partitions(parts int) ([]Partition, error) {
	g.plan.mu.Lock()
	defer g.plan.mu.Unlock()
	if g.plan.cutsErr != nil {
		return nil, g.plan.cutsErr
	}
	if g.plan.cuts == nil {
		ct, err := g.buildCutTable()
		if err != nil {
			// Cache only format errors: the file itself is malformed and
			// will stay so. Transient failures (descriptor exhaustion, a
			// momentary read error on the side handle) must not pin the
			// file to sequential scans for its whole lifetime.
			if errors.Is(err, ErrBadFormat) {
				g.plan.cutsErr = err
			}
			return nil, err
		}
		g.plan.cuts = ct
	}
	ct := g.plan.cuts
	last := len(ct.offs) - 1
	if last < 1 {
		return nil, nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > last {
		parts = last
	}

	// Pick the cut nearest each ideal byte boundary, keeping cuts strictly
	// increasing so every partition is non-empty.
	payload := ct.offs[last] - ct.offs[0]
	bounds := make([]int, 1, parts+1)
	for i := 1; i < parts; i++ {
		target := ct.offs[0] + payload*int64(i)/int64(parts)
		j := sort.Search(len(ct.offs), func(k int) bool { return ct.offs[k] >= target })
		if j > 0 && (j == len(ct.offs) || target-ct.offs[j-1] <= ct.offs[j]-target) {
			j--
		}
		if j <= bounds[len(bounds)-1] {
			j = bounds[len(bounds)-1] + 1
		}
		if j >= last {
			break
		}
		bounds = append(bounds, j)
	}
	bounds = append(bounds, last)

	ps := make([]Partition, 0, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		a, b := bounds[i], bounds[i+1]
		ps = append(ps, Partition{
			StartRecord: ct.recs[a],
			Records:     ct.recs[b] - ct.recs[a],
			StartOffset: ct.offs[a],
			EndOffset:   ct.offs[b],
		})
	}
	return ps, nil
}
