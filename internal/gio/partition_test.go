package gio

import (
	"os"
	"testing"

	"repro/internal/graph"
)

// writePartitionFile writes g in vertex order with the given flags.
func writePartitionFile(t testing.TB, path string, g *graph.Graph, compressed bool) {
	t.Helper()
	flags := uint32(0)
	if compressed {
		flags = FlagCompressed
	}
	w, err := NewWriter(path, flags, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if err := w.Append(uint32(v), g.Neighbors(uint32(v))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionsTile checks the structural invariants of every plan: the
// partitions are non-empty, contiguous in both record indices and byte
// offsets, start at the payload, end at end of file, and cover every record.
func TestPartitionsTile(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		for _, n := range []int{1, 50, 3000} {
			g := randomGraph(int64(n), n, n*6)
			path := tmpPath(t)
			writePartitionFile(t, path, g, compressed)
			f, err := Open(path, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			size, err := f.SizeBytes()
			if err != nil {
				t.Fatal(err)
			}
			for _, parts := range []int{1, 2, 7, 64} {
				ps, err := f.Partitions(parts)
				if err != nil {
					t.Fatal(err)
				}
				if len(ps) == 0 || len(ps) > parts {
					t.Fatalf("compressed=%v n=%d parts=%d: got %d partitions", compressed, n, parts, len(ps))
				}
				if ps[0].StartRecord != 0 || ps[0].StartOffset != HeaderSize {
					t.Fatalf("first partition starts at (%d, %d)", ps[0].StartRecord, ps[0].StartOffset)
				}
				var recs uint64
				for i, p := range ps {
					if p.Records == 0 {
						t.Fatalf("partition %d is empty", i)
					}
					if p.StartRecord != recs {
						t.Fatalf("partition %d starts at record %d, want %d", i, p.StartRecord, recs)
					}
					if i > 0 && p.StartOffset != ps[i-1].EndOffset {
						t.Fatalf("partition %d byte gap: %d after %d", i, p.StartOffset, ps[i-1].EndOffset)
					}
					recs += p.Records
				}
				if recs != uint64(n) {
					t.Fatalf("partitions cover %d records, want %d", recs, n)
				}
				if end := ps[len(ps)-1].EndOffset; end != f.PayloadEnd() {
					t.Fatalf("partitions end at %d, payload end %d (file size %d)", end, f.PayloadEnd(), size)
				}
			}
			f.Close()
		}
	}
}

// TestPartitionsEmptyFile: a zero-vertex file cannot be partitioned.
func TestPartitionsEmptyFile(t *testing.T) {
	path := tmpPath(t)
	writePartitionFile(t, path, graph.NewBuilder(0).Build(), false)
	f, err := Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ps, err := f.Partitions(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 0 {
		t.Fatalf("got %d partitions for an empty file", len(ps))
	}
}

// TestPartitionsPlanNotCounted: planning I/O runs through a side handle and
// must not appear in the file's Stats.
func TestPartitionsPlanNotCounted(t *testing.T) {
	g := randomGraph(3, 400, 1500)
	path := tmpPath(t)
	writePartitionFile(t, path, g, false)
	var stats Counters
	f, err := Open(path, 0, &stats)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Partitions(4); err != nil {
		t.Fatal(err)
	}
	if snap := stats.Snapshot(); snap != (Stats{}) {
		t.Fatalf("planning scan leaked into stats: %+v", snap)
	}
}

// TestScanPartitionRecords: each partition scanner yields exactly its range,
// with record IDs matching a full sequential scan, and leaves Stats alone.
func TestScanPartitionRecords(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		g := randomGraph(9, 2500, 15000)
		path := tmpPath(t)
		writePartitionFile(t, path, g, compressed)
		var stats Counters
		f, err := Open(path, 0, &stats)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := f.Partitions(5)
		if err != nil {
			t.Fatal(err)
		}
		if len(ps) < 2 {
			t.Fatalf("compressed=%v: want ≥2 partitions, got %d", compressed, len(ps))
		}
		var seen uint64
		for _, p := range ps {
			sc := f.ScanPartition(p)
			for {
				batch := sc.NextBatch()
				if batch == nil {
					break
				}
				for _, r := range batch {
					if uint64(r.ID) != seen {
						t.Fatalf("compressed=%v: record %d out of order (want %d)", compressed, r.ID, seen)
					}
					if want := g.Neighbors(r.ID); len(want) != len(r.Neighbors) {
						t.Fatalf("compressed=%v: record %d has %d neighbors, want %d",
							compressed, r.ID, len(r.Neighbors), len(want))
					}
					seen++
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
		}
		if seen != uint64(g.NumVertices()) {
			t.Fatalf("compressed=%v: partition scans yielded %d records, want %d", compressed, seen, g.NumVertices())
		}
		if snap := stats.Snapshot(); snap != (Stats{}) {
			t.Fatalf("compressed=%v: detached scans leaked into stats: %+v", compressed, snap)
		}
		f.Close()
	}
}

// TestPartitionsCached: the cut table is built once; subsequent calls with
// any partition count reuse it.
func TestPartitionsCached(t *testing.T) {
	g := randomGraph(11, 2000, 9000)
	path := tmpPath(t)
	writePartitionFile(t, path, g, false)
	f, err := Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Partitions(3); err != nil {
		t.Fatal(err)
	}
	ct := f.plan.cuts
	if ct == nil {
		t.Fatal("cut table not cached")
	}
	for _, parts := range []int{1, 5, 9} {
		if _, err := f.Partitions(parts); err != nil {
			t.Fatal(err)
		}
		if f.plan.cuts != ct {
			t.Fatalf("cut table rebuilt for parts=%d", parts)
		}
	}
}

// TestPartitionsMalformed: planning a malformed file reports the same error
// string a sequential scan would, so the executor's fallback is seamless.
func TestPartitionsMalformed(t *testing.T) {
	g := randomGraph(13, 200, 700)
	path := tmpPath(t)
	writePartitionFile(t, path, g, false)
	data := stripFooter(t, mustRead(t, path))
	trunc := tmpPath(t)
	mustWrite(t, trunc, data[:len(data)-7])

	f, err := Open(trunc, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, planErr := f.Partitions(4)
	if planErr == nil {
		t.Fatal("planning a truncated file succeeded")
	}
	scanErr := f.ForEachBatch(func([]Record) error { return nil })
	if scanErr == nil || planErr.Error() != scanErr.Error() {
		t.Fatalf("plan error %q differs from scan error %q", planErr, scanErr)
	}
	// And the failure is cached, not replanned.
	if _, err := f.Partitions(2); err == nil || err.Error() != planErr.Error() {
		t.Fatalf("cached plan error mismatch: %v", err)
	}
}

func mustRead(t testing.TB, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func mustWrite(t testing.TB, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
