package gio

import (
	"bytes"
	"reflect"
	"testing"
)

// stripFooter returns data truncated to its payload: the exact pre-footer
// file bytes. Tests that corrupt or truncate record bytes use it so their
// edits land on records, not on the footer.
func stripFooter(t testing.TB, data []byte) []byte {
	t.Helper()
	h, err := decodeHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	_, _, end, ok := parseFooter(bytes.NewReader(data), int64(len(data)), h)
	if !ok {
		t.Fatal("stripFooter: no footer present")
	}
	return data[:end]
}

// TestFooterRoundTrip: a written file opens with the footer's record count,
// payload end and a pre-loaded partition plan identical to the one a
// planning side scan would build.
func TestFooterRoundTrip(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		g := randomGraph(7, 900, 4000)
		path := tmpPath(t)
		writePartitionFile(t, path, g, compressed)

		f, err := Open(path, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !f.HasFooter() {
			t.Fatal("written file has no footer")
		}
		if !f.HasPartitionPlan() {
			t.Fatal("footer did not pre-load the partition plan")
		}
		if f.PlanCaptureViable() {
			t.Fatal("plan capture still viable with a footer-loaded plan")
		}
		if f.NumRecords() != uint64(g.NumVertices()) {
			t.Fatalf("records = %d, want %d", f.NumRecords(), g.NumVertices())
		}
		size, err := f.SizeBytes()
		if err != nil {
			t.Fatal(err)
		}
		if f.PayloadEnd() >= size {
			t.Fatalf("payload end %d not before file size %d", f.PayloadEnd(), size)
		}
		footerRecs, footerOffs, ok := f.PartitionPlan()
		if !ok {
			t.Fatal("no partition plan exported")
		}
		f.Close()

		// The footer-loaded plan must equal the side scan's, entry for entry.
		ct, err := func() (*cutTable, error) {
			pf, err := Open(path, 0, nil)
			if err != nil {
				return nil, err
			}
			defer pf.Close()
			return pf.buildCutTable()
		}()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(footerRecs, ct.recs) || !reflect.DeepEqual(footerOffs, ct.offs) {
			t.Fatalf("compressed=%v: footer plan differs from side-scan plan:\nfooter recs %v offs %v\nscan   recs %v offs %v",
				compressed, footerRecs, footerOffs, ct.recs, ct.offs)
		}
	}
}

// TestFooterlessFallback: stripping the footer yields a file that opens and
// scans exactly like the pre-footer format — same records, capture viable.
func TestFooterlessFallback(t *testing.T) {
	g := randomGraph(8, 300, 1200)
	path := tmpPath(t)
	writePartitionFile(t, path, g, false)
	data := stripFooter(t, mustRead(t, path))
	bare := tmpPath(t)
	mustWrite(t, bare, data)

	f, err := Open(bare, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.HasFooter() || f.HasPartitionPlan() {
		t.Fatal("footerless file claims a footer or plan")
	}
	if !f.PlanCaptureViable() {
		t.Fatal("plan capture not viable on a footerless file")
	}
	if f.NumRecords() != uint64(g.NumVertices()) {
		t.Fatalf("records = %d, want %d", f.NumRecords(), g.NumVertices())
	}
	if size, _ := f.SizeBytes(); f.PayloadEnd() != size {
		t.Fatalf("payload end %d != size %d on footerless file", f.PayloadEnd(), size)
	}
	var n int
	if err := f.ForEach(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != g.NumVertices() {
		t.Fatalf("scanned %d records, want %d", n, g.NumVertices())
	}
}

// TestFooterDisabled: DisableFooter reproduces the pre-footer bytes.
func TestFooterDisabled(t *testing.T) {
	g := randomGraph(9, 50, 200)
	with, without := tmpPath(t), tmpPath(t)
	writePartitionFile(t, with, g, false)

	w, err := NewWriter(without, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.DisableFooter()
	for v := 0; v < g.NumVertices(); v++ {
		if err := w.Append(uint32(v), g.Neighbors(uint32(v))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stripFooter(t, mustRead(t, with)), mustRead(t, without)) {
		t.Fatal("DisableFooter output differs from footered payload")
	}
}

// TestFooterCorruptFallsBack: flipping footer bytes (CRC mismatch) or the
// trailer magic degrades gracefully to the footerless interpretation — for
// an ordinary file the scan is untouched, since the decoder stops at
// header.Vertices records either way.
func TestFooterCorruptFallsBack(t *testing.T) {
	g := randomGraph(10, 120, 500)
	path := tmpPath(t)
	writePartitionFile(t, path, g, false)
	data := mustRead(t, path)

	corrupt := func(name string, mutate func([]byte)) {
		p := tmpPath(t)
		d := append([]byte(nil), data...)
		mutate(d)
		mustWrite(t, p, d)
		f, err := Open(p, 0, nil)
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		defer f.Close()
		if f.HasFooter() {
			t.Fatalf("%s: corrupt footer accepted", name)
		}
		var n int
		if err := f.ForEach(func(Record) error { n++; return nil }); err != nil {
			t.Fatalf("%s: scan: %v", name, err)
		}
		if n != g.NumVertices() {
			t.Fatalf("%s: scanned %d records, want %d", name, n, g.NumVertices())
		}
	}

	payloadEnd := int64(len(stripFooter(t, data)))
	corrupt("footer block bit flip", func(d []byte) { d[payloadEnd+9] ^= 0x40 })
	corrupt("trailer magic", func(d []byte) { d[len(d)-1] ^= 0xFF })
	corrupt("future version", func(d []byte) { d[len(d)-12] = 99 })
}

// TestWriterVertexCountOverride: the shard-file shape — header keeps the
// global vertex count, footer records how many records the file holds, and
// scans deliver exactly those records with global IDs validating.
func TestWriterVertexCountOverride(t *testing.T) {
	path := tmpPath(t)
	w, err := NewWriter(path, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.SetVertexCount(1000)
	// Records 500..502 of a 1000-vertex graph, neighbor IDs global.
	for v := uint32(500); v < 503; v++ {
		if err := w.Append(v, []uint32{v - 500, 999}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumVertices() != 1000 {
		t.Fatalf("header vertices = %d, want 1000", f.NumVertices())
	}
	if f.NumRecords() != 3 {
		t.Fatalf("records = %d, want 3", f.NumRecords())
	}
	var ids []uint32
	if err := f.ForEach(func(r Record) error { ids = append(ids, r.ID); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []uint32{500, 501, 502}) {
		t.Fatalf("scanned ids %v", ids)
	}
}

// TestInstallPartitionPlan: an externally persisted plan (the shard
// manifest's) installs after validation; malformed plans are rejected.
func TestInstallPartitionPlan(t *testing.T) {
	g := randomGraph(11, 400, 1600)
	path := tmpPath(t)
	writePartitionFile(t, path, g, false)
	bare := tmpPath(t)
	mustWrite(t, bare, stripFooter(t, mustRead(t, path)))

	ref, err := Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs, offs, ok := ref.PartitionPlan()
	ref.Close()
	if !ok {
		t.Fatal("no reference plan")
	}

	f, err := Open(bare, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Wrong end offset must be rejected.
	bad := append([]int64(nil), offs...)
	bad[len(bad)-1]++
	if err := f.InstallPartitionPlan(recs, bad); err == nil {
		t.Fatal("installed a plan with a wrong end offset")
	}
	if err := f.InstallPartitionPlan(recs[:1], offs[:1]); err == nil {
		t.Fatal("installed a plan not covering the payload")
	}
	if err := f.InstallPartitionPlan(recs, offs); err != nil {
		t.Fatal(err)
	}
	if !f.HasPartitionPlan() {
		t.Fatal("plan not installed")
	}
	ps, err := f.Partitions(4)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, p := range ps {
		total += p.Records
	}
	if total != uint64(g.NumVertices()) {
		t.Fatalf("installed plan covers %d records, want %d", total, g.NumVertices())
	}
}

// TestFooterEmptyFile: a zero-record file round-trips its footer.
func TestFooterEmptyFile(t *testing.T) {
	path := tmpPath(t)
	w, err := NewWriter(path, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.HasFooter() || f.NumRecords() != 0 || f.PayloadEnd() != HeaderSize {
		t.Fatalf("empty file: footer=%v records=%d payloadEnd=%d", f.HasFooter(), f.NumRecords(), f.PayloadEnd())
	}
	if err := f.ForEach(func(Record) error { t.Fatal("record in empty file"); return nil }); err != nil {
		t.Fatal(err)
	}
}
