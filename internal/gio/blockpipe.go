package gio

import (
	"errors"
	"os"
	"sync"
)

// errScanStopped is delivered to a scanner that advances after its pipeline
// was shut down — the file was closed, or a new Scan superseded it. The old
// bytewise decoder surfaced an analogous "file already closed" read error
// here; it must never become a hang.
var errScanStopped = errors.New("scan stopped: file closed or superseded by a new scan")

// errScanCanceled is delivered when the pipeline's external done channel (a
// context's Done) fired. The consumer (Scanner.more) translates it into a
// ScanError wrapping the context's error; it never escapes the package.
var errScanCanceled = errors.New("scan canceled")

// prefetcher reads consecutive fixed-size blocks of an adjacency file on a
// background goroutine so that the next block is usually already in memory
// by the time the decoder finishes the current one. Reads use ReadAt with an
// explicit offset, so the prefetcher never touches the *os.File's seek
// position and a stale prefetcher from an abandoned scan can never corrupt a
// newer one. Two buffers shuttle between producer and consumer — classic
// double buffering: block k decodes while block k+1 is being read.
//
// The prefetcher itself never updates Stats: Stats is documented as not safe
// for concurrent use, so byte/block accounting happens on the consumer
// goroutine when it takes ownership of a block. A block that is read ahead
// but never consumed is therefore never counted, matching the lazy reads of
// the bytewise reference decoder.
type prefetcher struct {
	blocks chan pblock
	free   chan []byte
	quit   chan struct{}
	done   <-chan struct{} // external cancellation (ctx.Done), may be nil
	once   sync.Once
}

// pblock is one fetched block: a prefix of a recycled buffer holding the
// valid bytes, plus the read error that ended the fetch (io.EOF at end of
// file, possibly alongside a final partial block).
type pblock struct {
	buf []byte
	err error
}

// newPrefetcher starts reading blockSize blocks from f at offset off. done,
// when non-nil, is an external cancellation signal (a context's Done
// channel): once it closes, the producer stops fetching further blocks —
// the consumer notices the cancellation itself between batches. A nil done
// never fires.
func newPrefetcher(f *os.File, off int64, blockSize int, done <-chan struct{}) *prefetcher {
	p := &prefetcher{
		blocks: make(chan pblock, 1),
		free:   make(chan []byte, 2),
		quit:   make(chan struct{}),
		done:   done,
	}
	p.free <- make([]byte, blockSize)
	p.free <- make([]byte, blockSize)
	go p.run(f, off, blockSize)
	return p
}

func (p *prefetcher) run(f *os.File, off int64, blockSize int) {
	for {
		var buf []byte
		select {
		case buf = <-p.free:
		case <-p.quit:
			return
		case <-p.done:
			return
		}
		n, err := f.ReadAt(buf[:blockSize], off)
		off += int64(n)
		select {
		case p.blocks <- pblock{buf: buf[:n], err: err}:
		case <-p.quit:
			return
		case <-p.done:
			return
		}
		if err != nil {
			return
		}
	}
}

// next hands over the next block. The slice is owned by the caller until it
// passes it back through recycle. The producer stops after delivering a
// block with a non-nil err, so callers must not call next again after one.
// After shutdown, next reports errScanStopped instead of blocking forever
// (preferring a block the producer already delivered, which keeps the
// common consume-then-shutdown sequence lossless).
func (p *prefetcher) next() pblock {
	select {
	case blk := <-p.blocks:
		return blk
	case <-p.quit:
		select {
		case blk := <-p.blocks:
			return blk
		default:
			return pblock{err: errScanStopped}
		}
	case <-p.done:
		select {
		case blk := <-p.blocks:
			return blk
		default:
			return pblock{err: errScanCanceled}
		}
	}
}

// recycle returns a consumed block buffer to the producer.
func (p *prefetcher) recycle(buf []byte) {
	select {
	case p.free <- buf[:cap(buf)]:
	default:
	}
}

// shutdown stops the producer goroutine. Idempotent, and safe to call while
// the producer is mid-read or blocked on a channel.
func (p *prefetcher) shutdown() { p.once.Do(func() { close(p.quit) }) }
