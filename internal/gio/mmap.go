package gio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Memory-mapped scan path. OpenMmap maps the whole adjacency file into the
// process's address space and lets the scanner decode straight out of the
// OS page cache: the decode window is a view of the mapping, so the prefetch
// copy of the block pipeline disappears, and on little-endian hosts the raw
// fixed-width format can go one step further and hand out Record.Neighbors
// slices that alias the mapping itself (no arena copy either). Compressed
// (varint/gap) records always decode into the arena — the gaps have to be
// materialized as absolute IDs somewhere, so there is no mapping-backed
// representation to alias.
//
// Lifetime is the hard part. Batches handed out by a mapped scan alias the
// mapping, so munmap under a live reader would be a use-after-free enforced
// by the MMU. The contract is the one the arena already implies — a batch
// (and every Neighbors slice in it) is valid only until the next
// NextBatch/Next call, the end of the ForEachBatch callback, or the end of
// the scan — and the mapping's refcount enforces it: File.Close poisons the
// mapping (every in-flight scan fails at its next refill or batch boundary
// with a scan-stopped error) and the actual munmap is deferred to the moment
// the last reference drains. Close itself never blocks, and crucially, no
// code path ever drops a scan's reference from a foreign goroutine — a
// reference is released only on the scanner's own drive path (completion,
// failure, Close on the scanner) or, for scanners abandoned without any of
// those, by a GC cleanup — so a reference can never vanish while its
// goroutine is mid-decode or mid-callback. Superseding an in-flight mapped
// scan (a new Scan on the same handle) only requests a stop: the old scanner
// releases when next driven, when Closed, or when collected.

// mapState is the shared mapping of one OpenMmap file: all WithCounters
// views of the file point at the same mapState, exactly like the partition
// plan cache. refs counts in-flight users (scans and PinMap holders);
// poisoned flips on close so readers fail fast at their next boundary, and
// whoever drops the last reference after close performs the munmap.
type mapState struct {
	mu       sync.Mutex
	data     []byte // whole file, header included; nil once unmapped
	refs     int
	closed   bool
	poisoned atomic.Bool
	zerocopy atomic.Bool // raw batches may alias the mapping
}

func newMapState(data []byte) *mapState {
	m := &mapState{data: data}
	m.zerocopy.Store(canAliasUint32)
	return m
}

// acquire takes a reference on the mapping; it fails once the mapping is
// poisoned or gone.
func (m *mapState) acquire() bool {
	if m == nil || m.poisoned.Load() {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.poisoned.Load() {
		return false
	}
	m.refs++
	return true
}

// release drops a reference; the last one out after close unmaps.
func (m *mapState) release() {
	m.mu.Lock()
	m.refs--
	var data []byte
	if m.refs == 0 && m.closed {
		data, m.data = m.data, nil
	}
	m.mu.Unlock()
	if data != nil {
		unmapMem(data)
	}
}

// close poisons the mapping and unmaps it if no references are live;
// otherwise the munmap happens when the last reference is released. Always
// safe to call while scans are in flight: they fail at their next boundary
// and the pages stay mapped until every one of them has let go. Idempotent;
// nil-safe.
func (m *mapState) close() error {
	if m == nil {
		return nil
	}
	m.poisoned.Store(true)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	var data []byte
	if m.refs == 0 {
		data, m.data = m.data, nil
	}
	m.mu.Unlock()
	if data != nil {
		return unmapMem(data)
	}
	return nil
}

// unmapped reports whether the pages are gone (refcount drained after
// close). Test hook for the deferred-unmap contract.
func (m *mapState) unmapped() bool {
	if m == nil {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed && m.data == nil
}

// mapRef is one scan's (or pin's) reference on the mapping, releasable
// exactly once. It is a separate allocation from the Scanner so a GC cleanup
// can hold it without keeping the Scanner alive: a mapped scanner abandoned
// undrained and un-Closed releases its reference when the collector notices
// nothing can ever drive it again.
type mapRef struct {
	mm       *mapState
	released atomic.Bool
}

func (r *mapRef) release() {
	if r != nil && r.released.CompareAndSwap(false, true) {
		r.mm.release()
	}
}

// ErrPageCacheCtl reports that page-cache eviction (DropPageCache) is not
// available on this platform/build; cold-cache benchmark runs degrade to
// warm ones and say so.
var ErrPageCacheCtl = errors.New("gio: page-cache control not supported on this platform")

// canAliasUint32 reports whether a []byte view of the file can be
// reinterpreted as []uint32 without conversion: the on-disk format is
// little-endian, so aliasing is exact on little-endian hosts only.
var canAliasUint32 = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// u32view reinterprets the first 4*n bytes of b as a []uint32 without
// copying. b must be 4-byte aligned and hold at least 4*n bytes; the raw
// record layout guarantees the alignment (header is 32 bytes, every raw
// record is a multiple of 4, and mappings are page-aligned).
func u32view(b []byte, n int) []uint32 {
	if n == 0 {
		return emptyNeighbors
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(b))), n)
}

// emptyNeighbors is the zero-length Neighbors slice of degree-0 records on
// the zero-copy path, mirroring the arena path's non-nil empty view.
var emptyNeighbors = []uint32{}

// OpenMmap opens an adjacency file like Open, but backs every sequential
// and partition scan with a read-only memory mapping of the file instead of
// the prefetch block pipeline: the decoder consumes file-backed byte slices
// directly from the page cache. On platforms without mmap support (or under
// the nommap build tag), or when mapping fails, the returned File silently
// falls back to the block-pipelined engine — MmapActive reports which path
// is live. Records, errors, Stats accounting, cancellation and
// partition-plan capture are identical to Open's engine either way; mapped
// scans still count as physical scans.
//
// On little-endian hosts, raw (uncompressed) batches from a mapped file
// alias the mapping itself — Record.Neighbors points into the file's pages,
// and no per-record copy happens at all. See SetMmapZeroCopy to disable the
// aliasing (batches then decode into the arena as usual, still without the
// prefetch copy).
func OpenMmap(path string, blockSize int, stats *Counters) (*File, error) {
	g, err := Open(path, blockSize, stats)
	if err != nil {
		return nil, err
	}
	if !mmapSupported {
		return g, nil
	}
	size, err := g.SizeBytes()
	if err != nil || size < HeaderSize {
		return g, nil
	}
	data, err := mapMem(g.f, size)
	if err != nil {
		return g, nil
	}
	adviseSequential(data)
	g.mm = newMapState(data)
	return g, nil
}

// MmapActive reports whether scans of this file run off a live memory
// mapping (false after fallback or Close).
func (g *File) MmapActive() bool {
	if g.mm == nil {
		return false
	}
	return !g.mm.poisoned.Load()
}

// MmapZeroCopy reports whether raw batches alias the mapping.
func (g *File) MmapZeroCopy() bool {
	return g.mm != nil && g.mm.zerocopy.Load() && g.header.Flags&FlagCompressed == 0
}

// SetMmapZeroCopy toggles zero-copy aliasing of raw batches on a mapped
// file (the scanbench ablation's mmap vs mmap-zerocopy knob). Enabling it
// on a big-endian host or a non-mapped file is a no-op; the setting applies
// to scans started afterwards.
func (g *File) SetMmapZeroCopy(on bool) {
	if g.mm == nil {
		return
	}
	g.mm.zerocopy.Store(on && canAliasUint32)
}

// PinMap pins the file's mapping against munmap and returns the release.
// Multi-scanner operations whose batches outlive any single scanner — the
// parallel executor ships batches from worker scanners to a consumer
// goroutine — pin once for the whole run: a concurrent File.Close still
// returns immediately (and fails the run's scans at their next boundary),
// but the pages stay mapped until the pin is released, so batches already in
// flight to the consumer stay readable. ok is false when the file is not
// mapped (nothing to pin: batches are arena-backed) or the mapping is
// already poisoned (the run's scans will fail fast anyway).
func (g *File) PinMap() (release func(), ok bool) {
	if g.mm == nil || !g.mm.acquire() {
		return nil, false
	}
	var once sync.Once
	return func() { once.Do(g.mm.release) }, true
}

// newMappedScanner builds a Scanner decoding from the mapping, from
// absolute byte offset startOff, records startRec..limit-1. When the
// mapping cannot be acquired (file closed mid-setup), the scanner is born
// stopped and its first batch fails with errScanStopped, mirroring a
// pipelined scan on a closed descriptor.
func (g *File) newMappedScanner(startOff int64, startRec, limit uint64, detached bool) *Scanner {
	s := &Scanner{
		file:     g,
		read:     startRec,
		limit:    limit,
		baseOff:  startOff,
		detached: detached,
		mapped:   true,
		recs:     make([]Record, 0, batchMaxRecords),
		arena:    make([]uint32, 0, batchTargetInts),
	}
	if g.mm.acquire() {
		s.mref = &mapRef{mm: g.mm}
		s.mdata = g.mm.data[startOff:]
		// Aliasing stays exact because raw decoding only ever advances the
		// window position by multiples of 4 from a 4-aligned start offset.
		s.zerocopy = g.mm.zerocopy.Load() && g.header.Flags&FlagCompressed == 0 && startOff%4 == 0
		// Backstop for scanners abandoned without draining or Close: when
		// nothing can drive the scanner anymore, its reference must not keep
		// the pages mapped forever. The cleanup holds only the mapRef, so it
		// does not keep the Scanner itself alive, and release is CAS-guarded
		// against the normal paths.
		runtime.AddCleanup(s, func(r *mapRef) { r.release() }, s.mref)
	}
	return s
}

// stopMapped releases the scanner's mapping reference exactly once; later
// refills fail with errScanStopped. Only ever called on the scanner's own
// drive path (or its GC cleanup) — never on behalf of another goroutine.
func (s *Scanner) stopMapped() {
	s.mref.release()
}

// mapStopped reports whether the scan must not touch the mapping again:
// its reference is gone (never acquired, already released), a stop was
// requested (supersession by a new Scan), or the mapping is poisoned
// (File.Close).
func (s *Scanner) mapStopped() bool {
	return s.mref == nil || s.mref.released.Load() || s.mstopreq.Load() || s.file.mm.poisoned.Load()
}

// moreMapped is the mapped engine's refill: instead of appending a fetched
// block to the window, it extends the window over the next block-sized run
// of the mapping — no copy, no goroutine — while keeping byte/block/EOF
// accounting identical to the pipelined consumer's (full blocks of
// BlockSize, a clipped final block, io.EOF semantics byte for byte).
func (s *Scanner) moreMapped() bool {
	if s.ioErr != nil {
		return false
	}
	if s.mapStopped() {
		s.ioErr = errScanStopped
		return false
	}
	total := len(s.mdata)
	have := len(s.win)
	if have == total {
		s.ioErr = io.EOF
		return false
	}
	chunk := s.file.blockSize
	if chunk >= total-have {
		chunk = total - have
		if have+chunk == total && chunk < s.file.blockSize {
			// Partial final block: delivered together with EOF, exactly like
			// ReadAt's short final read on the pipelined path.
			s.ioErr = io.EOF
		}
	}
	s.win = s.mdata[:have+chunk]
	if st := s.file.stats; st != nil && !s.detached {
		st.AddBytesRead(uint64(chunk))
		st.AddBlocksRead(1)
	}
	s.fetched += uint64(chunk)
	return true
}

// fillRawZeroCopy is fillRaw for mapped raw files with aliasing on: instead
// of bulk-converting neighbors into the arena, each record's Neighbors
// slice reinterprets the mapping bytes in place. Validation, error
// positions and batch cadence (record and neighbor-volume caps) match
// fillRaw; only the arena traffic disappears.
func (s *Scanner) fillRawZeroCopy() {
	h := s.file.header
	vol := 0
	for s.read < s.limit && len(s.recs) < batchMaxRecords && vol < batchTargetInts {
		var id, deg uint64
		if s.pending {
			id, deg = s.pendingID, s.pendingDeg
			s.pending = false
		} else {
			if err := s.ensure(8); err != nil {
				s.fail(fmt.Errorf("%w: %s: record %d header: %v", ErrBadFormat, s.file.path, s.read, err))
				return
			}
			id = uint64(binary.LittleEndian.Uint32(s.win[s.pos:]))
			deg = uint64(binary.LittleEndian.Uint32(s.win[s.pos+4:]))
			s.pos += 8
			if id >= h.Vertices {
				s.fail(fmt.Errorf("%w: %s: record %d has out-of-range id %d", ErrBadFormat, s.file.path, s.read, id))
				return
			}
			if deg >= h.Vertices {
				s.fail(fmt.Errorf("%w: %s: vertex %d has impossible degree %d", ErrBadFormat, s.file.path, id, deg))
				return
			}
		}
		n := int(deg)
		if err := s.ensure(n * 4); err != nil {
			s.fail(fmt.Errorf("%w: %s: vertex %d neighbors: %v", ErrBadFormat, s.file.path, id, err))
			return
		}
		s.recs = append(s.recs, Record{ID: uint32(id), Neighbors: u32view(s.win[s.pos:], n)})
		s.pos += n * 4
		vol += n
		s.read++
	}
}
