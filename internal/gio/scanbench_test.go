package gio_test

// Scan-throughput micro-benchmarks for the block-pipelined engine, next to
// the bytewise reference decoder so old-vs-new is one `go test -bench` (or
// benchstat) away. cmd/misbench's scanbench experiment runs the same
// comparison at larger scale and emits BENCH_scan.json.

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gio"
	"repro/internal/plrg"
)

// TestMain cleans up the shared benchmark files, which outlive any single
// benchmark (b.TempDir is torn down per benchmark).
func TestMain(m *testing.M) {
	code := m.Run()
	if benchFiles.dir != "" {
		os.RemoveAll(benchFiles.dir)
	}
	os.Exit(code)
}

const (
	benchVertices = 120_000
	benchBeta     = 2.0
)

var benchFiles struct {
	once      sync.Once
	dir       string
	raw, comp string
	sorted    string
	err       error
}

// benchFilePaths writes the benchmark graphs once per process.
func benchFilePaths(b *testing.B) (raw, comp, sorted string) {
	b.Helper()
	benchFiles.once.Do(func() {
		dir, err := os.MkdirTemp("", "gio-scanbench")
		if err != nil {
			benchFiles.err = err
			return
		}
		benchFiles.dir = dir
		g := plrg.PowerLawN(benchVertices, benchBeta, 42)
		benchFiles.raw = filepath.Join(dir, "bench.adj")
		if err := gio.WriteGraph(benchFiles.raw, g, nil, 0, nil); err != nil {
			benchFiles.err = err
			return
		}
		benchFiles.sorted = filepath.Join(dir, "bench-sorted.adj")
		if err := gio.WriteGraphSorted(benchFiles.sorted, g, nil); err != nil {
			benchFiles.err = err
			return
		}
		benchFiles.comp = filepath.Join(dir, "bench.cadj")
		benchFiles.err = gio.WriteGraph(benchFiles.comp, g, nil, gio.FlagCompressed, nil)
	})
	if benchFiles.err != nil {
		b.Fatal(benchFiles.err)
	}
	return benchFiles.raw, benchFiles.comp, benchFiles.sorted
}

func benchScan(b *testing.B, path string, engine string) {
	f, err := gio.Open(path, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	size, err := f.SizeBytes()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(size - gio.HeaderSize)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		switch engine {
		case "pipelined":
			err = f.ForEach(func(r gio.Record) error {
				sink += uint64(r.ID) + uint64(len(r.Neighbors))
				return nil
			})
		case "batch":
			err = f.ForEachBatch(func(batch []gio.Record) error {
				for _, r := range batch {
					sink += uint64(r.ID) + uint64(len(r.Neighbors))
				}
				return nil
			})
		case "bytewise":
			err = f.ForEachBytewise(func(r gio.Record) error {
				sink += uint64(r.ID) + uint64(len(r.Neighbors))
				return nil
			})
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	if sink == 0 && b.N > 0 {
		b.Fatal("benchmark scanned nothing")
	}
}

func BenchmarkScanRaw(b *testing.B) {
	raw, _, _ := benchFilePaths(b)
	benchScan(b, raw, "pipelined")
}

func BenchmarkScanRawBatch(b *testing.B) {
	raw, _, _ := benchFilePaths(b)
	benchScan(b, raw, "batch")
}

func BenchmarkScanRawBytewise(b *testing.B) {
	raw, _, _ := benchFilePaths(b)
	benchScan(b, raw, "bytewise")
}

func BenchmarkScanCompressed(b *testing.B) {
	_, comp, _ := benchFilePaths(b)
	benchScan(b, comp, "pipelined")
}

func BenchmarkScanCompressedBatch(b *testing.B) {
	_, comp, _ := benchFilePaths(b)
	benchScan(b, comp, "batch")
}

func BenchmarkScanCompressedBytewise(b *testing.B) {
	_, comp, _ := benchFilePaths(b)
	benchScan(b, comp, "bytewise")
}

// BenchmarkGreedyScan runs the whole Greedy algorithm — one scan plus the
// per-vertex state machine — so the scan engine is measured under its most
// important consumer.
func BenchmarkGreedyScan(b *testing.B) {
	_, _, sorted := benchFilePaths(b)
	f, err := gio.Open(sorted, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	size, err := f.SizeBytes()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(size - gio.HeaderSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Greedy(f)
		if err != nil {
			b.Fatal(err)
		}
		if res.Size == 0 {
			b.Fatal("greedy found nothing")
		}
	}
}
