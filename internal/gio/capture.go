package gio

import "context"

// Opportunistic partition-plan capture: building the cut table (see
// Partitions) normally costs one dedicated side scan through a separate file
// handle. But any full sequential scan already decodes every record in scan
// order, which is all the planning scan does — so a counted scan that is
// running anyway can observe its own record stream and leave the plan behind
// as a side effect. The pass scheduler (internal/pipeline) and the parallel
// executor's cold start (internal/exec) use this to make the first scan of a
// file plan its partitions for free, closing the "-workers on cold
// single-pass workloads" gap: one physical pass instead of a planning pass
// plus a scan.

// HasPartitionPlan reports whether the partition cut table is already cached,
// i.e. whether Partitions can answer without a planning side scan.
func (g *File) HasPartitionPlan() bool {
	g.plan.mu.Lock()
	defer g.plan.mu.Unlock()
	return g.plan.cuts != nil
}

// PlanCaptureViable reports whether an opportunistic capture could still
// install a plan: no plan cached yet, no cached planning failure, and no
// previously failed capture. Callers that would otherwise schedule a
// planning side scan (the executor's cold start) consult this to decide
// between capturing and planning.
func (g *File) PlanCaptureViable() bool {
	g.plan.mu.Lock()
	defer g.plan.mu.Unlock()
	return g.plan.cuts == nil && g.plan.cutsErr == nil && !g.plan.captureFailed
}

// ForEachBatchWithPlanCapture runs one full sequential scan exactly like
// ForEachBatch — same records, same batches, same error, same Stats — and,
// when no partition plan is cached yet, additionally captures the plan from
// the records flowing by, installing it if the scan completes and the
// computed offsets check out. fn observes nothing of the capture; a scan
// aborted by fn or by a decode error installs nothing.
func (g *File) ForEachBatchWithPlanCapture(fn func([]Record) error) error {
	return g.ForEachBatchWithPlanCaptureCtx(nil, fn)
}

// ForEachBatchWithPlanCaptureCtx is ForEachBatchWithPlanCapture bound to a
// context (see ForEachBatchCtx); nil behaves identically.
func (g *File) ForEachBatchWithPlanCaptureCtx(ctx context.Context, fn func([]Record) error) error {
	if !g.PlanCaptureViable() {
		return g.ForEachBatchCtx(ctx, fn)
	}
	cb := g.newCutBuilder()
	err := g.ForEachBatchCtx(ctx, func(batch []Record) error {
		cb.observe(batch)
		return fn(batch)
	})
	if err == nil {
		g.installCapturedPlan(cb)
	}
	return err
}

// installCapturedPlan validates a captured cut table against the file and
// caches it. Without a scanner position to cross-check (the capture rides an
// arbitrary consumer's scan), validation compares the computed end offset to
// the file's payload end (the footer start on footered files, the file size
// otherwise). That check is exact, not merely aggregate: encodedSize
// recomputes minimal encodings, so a computed record size can only
// undershoot its on-disk length, drift is monotone non-decreasing along the
// scan, and a matching total therefore implies every interior cut point is
// correct. Trailing bytes after the last record fail the check; the capture
// is then abandoned for the file's lifetime and planning falls back to
// Partitions' self-checking side scan. When concurrent views both capture
// (each completed a full scan before either installed), the first install
// wins; the captures are identical by construction.
func (g *File) installCapturedPlan(cb *cutBuilder) {
	g.plan.mu.Lock()
	defer g.plan.mu.Unlock()
	if g.plan.cuts != nil || g.plan.cutsErr != nil || g.plan.captureFailed {
		return
	}
	if cb.read != g.records || cb.off != g.payloadEnd {
		g.plan.captureFailed = true
		return
	}
	g.plan.cuts = cb.table()
}
