package gio

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync"
)

// digestState caches a file's content digest. Like the partition-plan cache
// it is shared by every WithCounters view of one open file, guarded by its
// own mutex: the first caller computes, everyone after reads the cached sum.
// The cache lives exactly as long as the open file — reopening a path (or a
// journal generation flip, which opens a fresh base file) starts from an
// empty cache, so a digest can never outlive the bytes it names.
type digestState struct {
	mu  sync.Mutex
	sum string // empty until computed; only successful computations cache
}

// ContentDigest returns the SHA-256 of the file's full on-disk contents
// (header included) as lowercase hex. It is computed lazily on first need
// with positional reads — an in-flight scan is undisturbed — and cached for
// the lifetime of the open file, shared by every WithCounters view. ctx
// cancels the computation between blocks; a canceled or failed computation
// is not cached, so a later call retries. The bytes read are accounted into
// the file's counters (never as a scan: digesting is not a pass of the
// paper's I/O cost model).
func (g *File) ContentDigest(ctx context.Context) (string, error) {
	g.dig.mu.Lock()
	defer g.dig.mu.Unlock()
	if g.dig.sum != "" {
		return g.dig.sum, nil
	}
	sum, err := g.computeDigest(ctx)
	if err != nil {
		return "", err
	}
	g.dig.sum = sum
	return sum, nil
}

func (g *File) computeDigest(ctx context.Context) (string, error) {
	h := sha256.New()
	buf := make([]byte, g.blockSize)
	var off int64
	for {
		if err := ctx.Err(); err != nil {
			return "", fmt.Errorf("gio: content digest of %s: %w", g.path, err)
		}
		n, err := g.f.ReadAt(buf, off)
		if n > 0 {
			h.Write(buf[:n])
			off += int64(n)
			if g.stats != nil {
				g.stats.AddBytesRead(uint64(n))
				g.stats.AddBlocksRead(1)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", fmt.Errorf("gio: content digest of %s: %w", g.path, err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
