package gio

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// The block-pipelined engine must be observationally identical to the
// bytewise reference decoder: same records in the same order, the same
// error (as a string, including the record/vertex indices in the message)
// on truncated and corrupt files, and the same Stats accounting. These
// tests compare the two paths record for record and byte for byte.

// scanOutcome captures everything observable from one full scan attempt.
type scanOutcome struct {
	recs  []Record // deep copies
	err   error
	stats Stats
}

func (o scanOutcome) errString() string {
	if o.err == nil {
		return "<nil>"
	}
	return o.err.Error()
}

// runScan scans path with the given engine ("pipelined", "batch",
// "bytewise", "mmap" or "mmap-zerocopy") and block size, collecting
// records, final error and stats. The mmap engines open through OpenMmap;
// on fallback builds they degrade to the pipelined engine, which keeps the
// parity assertions meaningful (if trivial) under -tags nommap.
func runScan(t testing.TB, path string, engine string, blockSize int) (out scanOutcome) {
	t.Helper()
	var counters Counters
	var f *File
	var err error
	if engine == "mmap" || engine == "mmap-zerocopy" {
		f, err = OpenMmap(path, blockSize, &counters)
		if err == nil {
			f.SetMmapZeroCopy(engine == "mmap-zerocopy")
		}
	} else {
		f, err = Open(path, blockSize, &counters)
	}
	defer func() { out.stats = counters.Snapshot() }()
	if err != nil {
		out.err = err
		return out
	}
	defer f.Close()
	collect := func(r Record) error {
		cp := Record{ID: r.ID, Neighbors: append([]uint32(nil), r.Neighbors...)}
		out.recs = append(out.recs, cp)
		return nil
	}
	switch engine {
	case "pipelined":
		out.err = f.ForEach(collect)
	case "batch", "mmap", "mmap-zerocopy":
		out.err = f.ForEachBatch(func(batch []Record) error {
			for _, r := range batch {
				if err := collect(r); err != nil {
					return err
				}
			}
			return nil
		})
	case "bytewise":
		out.err = f.ForEachBytewise(collect)
	default:
		t.Fatalf("unknown engine %q", engine)
	}
	return out
}

// parityEngines are the engines held to bytewise-oracle parity: records,
// errors and Stats identical on every input, malformed ones included.
var parityEngines = []string{"pipelined", "batch", "mmap", "mmap-zerocopy"}

// assertParity scans path with every engine and requires identical
// outcomes.
func assertParity(t testing.TB, path string, blockSize int) {
	t.Helper()
	ref := runScan(t, path, "bytewise", blockSize)
	for _, engine := range parityEngines {
		got := runScan(t, path, engine, blockSize)
		if got.errString() != ref.errString() {
			t.Fatalf("%s (block %d): error mismatch:\n got  %s\n want %s",
				engine, blockSize, got.errString(), ref.errString())
		}
		if len(got.recs) != len(ref.recs) {
			t.Fatalf("%s (block %d): %d records, reference %d",
				engine, blockSize, len(got.recs), len(ref.recs))
		}
		for i := range got.recs {
			if got.recs[i].ID != ref.recs[i].ID {
				t.Fatalf("%s (block %d): record %d id %d, reference %d",
					engine, blockSize, i, got.recs[i].ID, ref.recs[i].ID)
			}
			a, b := got.recs[i].Neighbors, ref.recs[i].Neighbors
			if len(a) != len(b) {
				t.Fatalf("%s (block %d): record %d has %d neighbors, reference %d",
					engine, blockSize, i, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("%s (block %d): record %d neighbor %d = %d, reference %d",
						engine, blockSize, i, j, a[j], b[j])
				}
			}
		}
		// Full stats parity holds for block sizes ≥ 4096. Below that, the
		// bytewise path's bufio.Reader bypasses its own buffer for neighbor
		// reads larger than the buffer (reading up to 4096 bytes directly),
		// so its byte/block counts at toy block sizes are artifacts of that
		// bypass rather than the documented ≤-block-size read model. Scan
		// and record accounting must agree everywhere.
		if blockSize >= 4096 {
			if got.stats != ref.stats {
				t.Fatalf("%s (block %d): stats mismatch:\n got  %+v\n want %+v",
					engine, blockSize, got.stats, ref.stats)
			}
		} else if got.stats.Scans != ref.stats.Scans || got.stats.RecordsRead != ref.stats.RecordsRead {
			t.Fatalf("%s (block %d): scan/record accounting mismatch:\n got  %+v\n want %+v",
				engine, blockSize, got.stats, ref.stats)
		}
	}
}

// parityBlockSizes exercises records straddling block boundaries (tiny
// blocks), block-aligned records, and the default size.
var parityBlockSizes = []int{16, 64, 4096, DefaultBlockSize}

func writeParityFile(t testing.TB, dir string, g *graph.Graph, compressed bool, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	flags := uint32(0)
	if compressed {
		flags = FlagCompressed
	}
	w, err := NewWriter(path, flags, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if err := w.Append(uint32(v), g.Neighbors(uint32(v))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDecoderParityWellFormed(t *testing.T) {
	dir := t.TempDir()
	graphs := map[string]*graph.Graph{
		"empty":  graph.NewBuilder(0).Build(),
		"single": graph.NewBuilder(1).Build(),
		"small":  randomGraph(21, 40, 120),
		"medium": randomGraph(22, 500, 3000),
		"dense":  randomGraph(23, 64, 1800),
	}
	for name, g := range graphs {
		for _, compressed := range []bool{false, true} {
			path := writeParityFile(t, dir, g, compressed, fmt.Sprintf("%s-%v.adj", name, compressed))
			for _, bs := range parityBlockSizes {
				assertParity(t, path, bs)
			}
		}
	}
}

// TestDecoderParityTruncated cuts a valid file at every possible length and
// requires the engines to agree on the resulting record prefix and error.
func TestDecoderParityTruncated(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(24, 30, 90)
	for _, compressed := range []bool{false, true} {
		full := writeParityFile(t, dir, g, compressed, fmt.Sprintf("full-%v.adj", compressed))
		data, err := os.ReadFile(full)
		if err != nil {
			t.Fatal(err)
		}
		trunc := filepath.Join(dir, fmt.Sprintf("trunc-%v.adj", compressed))
		for cut := 0; cut <= len(data); cut++ {
			if err := os.WriteFile(trunc, data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			assertParity(t, trunc, 64)
		}
	}
}

// TestDecoderParityCorrupt flips bytes across the body of a valid file
// (producing bad ids, impossible degrees, out-of-range neighbors and broken
// varints) and requires identical outcomes.
func TestDecoderParityCorrupt(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(25, 30, 90)
	rng := rand.New(rand.NewSource(99))
	for _, compressed := range []bool{false, true} {
		full := writeParityFile(t, dir, g, compressed, fmt.Sprintf("base-%v.adj", compressed))
		data, err := os.ReadFile(full)
		if err != nil {
			t.Fatal(err)
		}
		corrupt := filepath.Join(dir, fmt.Sprintf("corrupt-%v.adj", compressed))
		for off := HeaderSize; off < len(data); off++ {
			mut := append([]byte(nil), data...)
			mut[off] ^= byte(1 + rng.Intn(255))
			if err := os.WriteFile(corrupt, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			assertParity(t, corrupt, 64)
		}
	}
}

// TestDecoderParityProperty quick-checks parity over random graphs, formats
// and block sizes.
func TestDecoderParityProperty(t *testing.T) {
	dir := t.TempDir()
	i := 0
	prop := func(seed int64, nRaw, mRaw uint8, compressed bool, bsRaw uint8) bool {
		i++
		n := int(nRaw%60) + 1
		g := randomGraph(seed, n, int(mRaw)*2)
		path := writeParityFile(t, dir, g, compressed, fmt.Sprintf("q%d.adj", i))
		bs := parityBlockSizes[int(bsRaw)%len(parityBlockSizes)]
		assertParity(t, path, bs)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
