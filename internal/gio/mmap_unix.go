//go:build (linux || darwin) && !nommap

package gio

import (
	"os"
	"syscall"
)

// mmapSupported selects the mapped scan path at build time. The nommap tag
// forces the portable ReadAt fallback on platforms that do have mmap, so CI
// can compile and test the fallback without cross-building.
const mmapSupported = true

// mapMem maps size bytes of f read-only and shared. The mapping observes
// the page cache directly, which is the whole point: a sequential scan then
// touches each file page exactly once with no intermediate copy.
func mapMem(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// unmapMem releases a mapMem mapping.
func unmapMem(data []byte) error {
	return syscall.Munmap(data)
}

// adviseSequential hints the kernel that the mapping will be read front to
// back, enabling aggressive readahead. Best effort: scan correctness never
// depends on it.
func adviseSequential(data []byte) {
	_ = syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
}
