//go:build linux && !nommap

package gio

import (
	"os"
	"syscall"
)

// fadvDontNeed is POSIX_FADV_DONTNEED; the constant is not exported by
// package syscall.
const fadvDontNeed = 4

// DropPageCache asks the kernel to evict the file's pages from the page
// cache (posix_fadvise DONTNEED). Benchmarks use it to approximate a cold
// first read without root access to /proc/sys/vm/drop_caches; it is a hint,
// so a nil return means "requested", not "evicted". On platforms without
// fadvise it reports ErrPageCacheCtl.
func DropPageCache(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// package syscall has no Fadvise wrapper; SYS_FADVISE64 is defined for
	// every linux GOARCH.
	if _, _, errno := syscall.Syscall6(syscall.SYS_FADVISE64, f.Fd(), 0, 0, fadvDontNeed, 0, 0); errno != 0 {
		return errno
	}
	return nil
}
