package gio

import (
	"bytes"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// TestGoldenFormat pins the on-disk encoding byte for byte. If this test
// breaks, the file format changed: either revert the change or bump the
// format version — silently breaking every existing adjacency file is not
// an option for a storage library.
func TestGoldenFormat(t *testing.T) {
	g := graph.FromEdges(3, [][2]uint32{{0, 1}, {1, 2}})
	path := filepath.Join(t.TempDir(), "golden.adj")
	// Fixed scan order 0,1,2 with neighbor lists by (degree, id).
	if err := WriteGraph(path, g, []uint32{0, 1, 2}, FlagDegreeSorted, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const want = "4d4953414 44a310a" + // "MISADJ1\n"
		"01000000" + // version 1
		"01000000" + // flags: degree-sorted
		"0300000000000000" + // 3 vertices
		"0200000000000000" + // 2 edges
		"00000000" + "01000000" + "01000000" + // v0: deg 1, nbr 1
		"01000000" + "02000000" + "00000000" + "02000000" + // v1: deg 2, nbrs 0,2
		"02000000" + "01000000" + "01000000" + // v2: deg 1, nbr 1
		// Footer block (see footer.go): cut table persisted at write time.
		"4d4953465442310a" + // "MISFTB1\n"
		"01000000" + // footer version 1 + reserved
		"0300000000000000" + // 3 records
		"02000000" + // 2 cut entries
		"0000000000000000" + "2000000000000000" + // cut (record 0, offset 32)
		"0300000000000000" + "4800000000000000" + // cut (record 3, offset 72)
		// Trailer: block length, CRC-32C, version, "MISFTR1\n".
		"3800000000000000" + "0cb9c8b0" + "01000000" + "4d4953465452310a"
	wantBytes, err := hex.DecodeString(stripSpaces(want))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, wantBytes) {
		t.Fatalf("format drifted:\n got %x\nwant %x", data, wantBytes)
	}
}

func stripSpaces(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != ' ' {
			out = append(out, s[i])
		}
	}
	return string(out)
}

// TestGoldenScanRecords pins the decoded view of the golden files: every
// engine (pipelined, batch, bytewise) must recover exactly these records
// from the pinned bytes. Together with the format tests this anchors both
// directions of the codec.
func TestGoldenScanRecords(t *testing.T) {
	g := graph.FromEdges(3, [][2]uint32{{0, 1}, {1, 2}})
	dir := t.TempDir()
	want := []Record{
		{ID: 0, Neighbors: []uint32{1}},
		{ID: 1, Neighbors: []uint32{0, 2}},
		{ID: 2, Neighbors: []uint32{1}},
	}

	raw := filepath.Join(dir, "golden.adj")
	if err := WriteGraph(raw, g, []uint32{0, 1, 2}, FlagDegreeSorted, nil); err != nil {
		t.Fatal(err)
	}
	comp := filepath.Join(dir, "golden.cadj")
	w, err := NewWriter(comp, FlagCompressed, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < 3; v++ {
		if err := w.Append(v, g.Neighbors(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{raw, comp} {
		for _, engine := range []string{"pipelined", "batch", "bytewise"} {
			got := runScan(t, path, engine, 0)
			if got.err != nil {
				t.Fatalf("%s %s: %v", path, engine, got.err)
			}
			if len(got.recs) != len(want) {
				t.Fatalf("%s %s: %d records, want %d", path, engine, len(got.recs), len(want))
			}
			for i, r := range got.recs {
				if r.ID != want[i].ID || len(r.Neighbors) != len(want[i].Neighbors) {
					t.Fatalf("%s %s: record %d = %+v, want %+v", path, engine, i, r, want[i])
				}
				for j := range r.Neighbors {
					if r.Neighbors[j] != want[i].Neighbors[j] {
						t.Fatalf("%s %s: record %d = %+v, want %+v", path, engine, i, r, want[i])
					}
				}
			}
		}
	}
}

// TestGoldenCompressedFormat pins the compressed encoding.
func TestGoldenCompressedFormat(t *testing.T) {
	g := graph.FromEdges(3, [][2]uint32{{0, 1}, {1, 2}})
	path := filepath.Join(t.TempDir(), "golden.cadj")
	w, err := NewWriter(path, FlagCompressed, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < 3; v++ {
		if err := w.Append(v, g.Neighbors(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const want = "4d4953414 44a310a" + // magic
		"01000000" + // version
		"02000000" + // flags: compressed
		"0300000000000000" + // 3 vertices
		"0200000000000000" + // 2 edges
		"000101" + // v0: id 0, deg 1, first nbr 1
		"01020001" + // v1: id 1, deg 2, nbr 0, gap to 2 = 1
		"020101" + // v2: id 2, deg 1, first nbr 1
		// Footer block (see footer.go): cut table persisted at write time.
		"4d4953465442310a" + // "MISFTB1\n"
		"01000000" + // footer version 1 + reserved
		"0300000000000000" + // 3 records
		"02000000" + // 2 cut entries
		"0000000000000000" + "2000000000000000" + // cut (record 0, offset 32)
		"0300000000000000" + "2a00000000000000" + // cut (record 3, offset 42)
		// Trailer: block length, CRC-32C, version, "MISFTR1\n".
		"3800000000000000" + "e9edb035" + "01000000" + "4d4953465452310a"
	wantBytes, err := hex.DecodeString(stripSpaces(want))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, wantBytes) {
		t.Fatalf("compressed format drifted:\n got %x\nwant %x", data, wantBytes)
	}
}
