package gio

import (
	"bytes"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// TestGoldenFormat pins the on-disk encoding byte for byte. If this test
// breaks, the file format changed: either revert the change or bump the
// format version — silently breaking every existing adjacency file is not
// an option for a storage library.
func TestGoldenFormat(t *testing.T) {
	g := graph.FromEdges(3, [][2]uint32{{0, 1}, {1, 2}})
	path := filepath.Join(t.TempDir(), "golden.adj")
	// Fixed scan order 0,1,2 with neighbor lists by (degree, id).
	if err := WriteGraph(path, g, []uint32{0, 1, 2}, FlagDegreeSorted, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const want = "4d4953414 44a310a" + // "MISADJ1\n"
		"01000000" + // version 1
		"01000000" + // flags: degree-sorted
		"0300000000000000" + // 3 vertices
		"0200000000000000" + // 2 edges
		"00000000" + "01000000" + "01000000" + // v0: deg 1, nbr 1
		"01000000" + "02000000" + "00000000" + "02000000" + // v1: deg 2, nbrs 0,2
		"02000000" + "01000000" + "01000000" // v2: deg 1, nbr 1
	wantBytes, err := hex.DecodeString(stripSpaces(want))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, wantBytes) {
		t.Fatalf("format drifted:\n got %x\nwant %x", data, wantBytes)
	}
}

func stripSpaces(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != ' ' {
			out = append(out, s[i])
		}
	}
	return string(out)
}

// TestGoldenCompressedFormat pins the compressed encoding.
func TestGoldenCompressedFormat(t *testing.T) {
	g := graph.FromEdges(3, [][2]uint32{{0, 1}, {1, 2}})
	path := filepath.Join(t.TempDir(), "golden.cadj")
	w, err := NewWriter(path, FlagCompressed, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < 3; v++ {
		if err := w.Append(v, g.Neighbors(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const want = "4d4953414 44a310a" + // magic
		"01000000" + // version
		"02000000" + // flags: compressed
		"0300000000000000" + // 3 vertices
		"0200000000000000" + // 2 edges
		"000101" + // v0: id 0, deg 1, first nbr 1
		"01020001" + // v1: id 1, deg 2, nbr 0, gap to 2 = 1
		"020101" // v2: id 2, deg 1, first nbr 1
	wantBytes, err := hex.DecodeString(stripSpaces(want))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, wantBytes) {
		t.Fatalf("compressed format drifted:\n got %x\nwant %x", data, wantBytes)
	}
}
