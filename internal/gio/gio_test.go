package gio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/graph"
)

func tmpPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "g.adj")
}

func randomGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	return b.Build()
}

func TestRoundTrip(t *testing.T) {
	g := randomGraph(1, 50, 120)
	path := tmpPath(t)
	var stats Counters
	if err := WriteGraph(path, g, nil, 0, &stats); err != nil {
		t.Fatal(err)
	}
	back, err := LoadGraph(path, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d",
			back.NumVertices(), back.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(uint32(v)) != back.Degree(uint32(v)) {
			t.Fatalf("vertex %d degree changed", v)
		}
		for _, u := range g.Neighbors(uint32(v)) {
			if !back.HasEdge(uint32(v), u) {
				t.Fatalf("edge {%d,%d} lost", v, u)
			}
		}
	}
	if snap := stats.Snapshot(); snap.BytesWritten == 0 || snap.BytesRead == 0 {
		t.Fatal("stats not accumulated")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%40) + 1
		g := randomGraph(seed, n, int(mRaw))
		dir, err := os.MkdirTemp("", "gio")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "g.adj")
		if err := WriteGraphSorted(path, g, nil); err != nil {
			return false
		}
		back, err := LoadGraph(path, nil)
		if err != nil {
			return false
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			return false
		}
		ok := true
		g.Edges(func(u, v uint32) bool {
			if !back.HasEdge(u, v) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeSortedOrder(t *testing.T) {
	g := randomGraph(2, 80, 200)
	path := tmpPath(t)
	if err := WriteGraphSorted(path, g, nil); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Header().DegreeSorted() {
		t.Fatal("degree-sorted flag missing")
	}
	prev := -1
	err = f.ForEach(func(r Record) error {
		d := len(r.Neighbors)
		if d < prev {
			t.Fatalf("degree order violated: %d after %d", d, prev)
		}
		prev = d
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNeighborListsSortedByDegree(t *testing.T) {
	g := randomGraph(3, 60, 150)
	path := tmpPath(t)
	if err := WriteGraphSorted(path, g, nil); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	err = f.ForEach(func(r Record) error {
		for i := 1; i < len(r.Neighbors); i++ {
			if g.Degree(r.Neighbors[i-1]) > g.Degree(r.Neighbors[i]) {
				t.Fatalf("vertex %d: neighbor degrees out of order", r.ID)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanCounting(t *testing.T) {
	g := randomGraph(4, 30, 60)
	path := tmpPath(t)
	if err := WriteGraph(path, g, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	var stats Counters
	f, err := Open(path, 0, &stats)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 3; i++ {
		if err := f.ForEach(func(Record) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if snap := stats.Snapshot(); snap.Scans != 3 {
		t.Fatalf("scans = %d, want 3", snap.Scans)
	}
	if snap := stats.Snapshot(); snap.RecordsRead != uint64(3*g.NumVertices()) {
		t.Fatalf("records = %d, want %d", snap.RecordsRead, 3*g.NumVertices())
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()

	// Missing file.
	if _, err := Open(filepath.Join(dir, "missing.adj"), 0, nil); err == nil {
		t.Fatal("expected error for missing file")
	}

	// Bad magic.
	bad := filepath.Join(dir, "bad.adj")
	if err := os.WriteFile(bad, bytes.Repeat([]byte{0xAB}, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad, 0, nil); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("bad magic: got %v, want ErrBadFormat", err)
	}

	// Truncated header.
	short := filepath.Join(dir, "short.adj")
	if err := os.WriteFile(short, []byte(Magic), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(short, 0, nil); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("short header: got %v, want ErrBadFormat", err)
	}

	// Unsupported version.
	ver := filepath.Join(dir, "ver.adj")
	buf := make([]byte, HeaderSize)
	copy(buf, Magic)
	binary.LittleEndian.PutUint32(buf[8:], 99)
	if err := os.WriteFile(ver, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(ver, 0, nil); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("bad version: got %v, want ErrBadFormat", err)
	}
}

func TestTruncatedRecords(t *testing.T) {
	g := randomGraph(5, 20, 50)
	path := tmpPath(t)
	if err := WriteGraph(path, g, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data = stripFooter(t, data) // truncate record bytes, not footer bytes
	trunc := filepath.Join(t.TempDir(), "trunc.adj")
	if err := os.WriteFile(trunc, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(trunc, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	err = f.ForEach(func(Record) error { return nil })
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("truncated records: got %v, want ErrBadFormat", err)
	}
}

func TestCorruptDegree(t *testing.T) {
	// A record claiming an impossible degree must fail cleanly, not OOM.
	path := tmpPath(t)
	w, err := NewWriter(path, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, []uint32{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []uint32{0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the first record's degree field with a huge value.
	binary.LittleEndian.PutUint32(data[HeaderSize+4:], 1<<30)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	err = f.ForEach(func(Record) error { return nil })
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("corrupt degree: got %v, want ErrBadFormat", err)
	}
}

func TestEdgeListText(t *testing.T) {
	src := `# comment
0 1
1 2
% another comment

2 3
3 0
`
	g, err := ReadEdgeListText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("parsed %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	var buf bytes.Buffer
	if err := WriteEdgeListText(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeListText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("text round trip: %d vs %d edges", g2.NumEdges(), g.NumEdges())
	}
}

func TestEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeListText(strings.NewReader("0\n")); err == nil {
		t.Fatal("expected error for one-field line")
	}
	if _, err := ReadEdgeListText(strings.NewReader("a b\n")); err == nil {
		t.Fatal("expected error for non-numeric field")
	}
	if _, err := ReadEdgeListText(strings.NewReader("-1 2\n")); err == nil {
		t.Fatal("expected error for negative id")
	}
}

func TestImportEdgeListFile(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "edges.txt")
	if err := os.WriteFile(src, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "g.adj")
	if err := ImportEdgeListFile(src, dst, nil); err != nil {
		t.Fatal(err)
	}
	f, err := Open(dst, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumVertices() != 3 || f.NumEdges() != 3 {
		t.Fatalf("import: %d vertices, %d edges", f.NumVertices(), f.NumEdges())
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[uint64]string{
		0:          "0B",
		512:        "512B",
		1024:       "1.0KB",
		1536:       "1.5KB",
		1 << 20:    "1.0MB",
		5 << 30:    "5.0GB",
		3 << 40:    "3.0TB",
		1234567890: "1.1GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestReadDegrees(t *testing.T) {
	g := randomGraph(6, 25, 60)
	path := tmpPath(t)
	if err := WriteGraphSorted(path, g, nil); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	deg, err := ReadDegrees(f)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if int(deg[v]) != g.Degree(uint32(v)) {
			t.Fatalf("vertex %d: degree %d, want %d", v, deg[v], g.Degree(uint32(v)))
		}
	}
}

// TestScanAfterClose pins that advancing a Scanner after File.Close (or
// after a new Scan supersedes it) reports an error instead of blocking on
// the shut-down prefetch pipeline.
func TestScanAfterClose(t *testing.T) {
	g := randomGraph(7, 400, 4000)
	path := tmpPath(t)
	if err := WriteGraph(path, g, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := f.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Next() {
		t.Fatalf("first record: %v", sc.Err())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for sc.Next() { // must terminate, with or without records
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Scanner.Next deadlocked after File.Close")
	}
}

func TestEmptyGraphFile(t *testing.T) {
	path := tmpPath(t)
	if err := WriteGraph(path, graph.NewBuilder(0).Build(), nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumVertices() != 0 || f.NumEdges() != 0 {
		t.Fatal("empty graph header wrong")
	}
	count := 0
	if err := f.ForEach(func(Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("empty file yielded %d records", count)
	}
}
