package gio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// FuzzOpenAndScan feeds arbitrary bytes to the adjacency-file reader: it
// must either reject the file or scan it to completion without panicking,
// unbounded allocation, or out-of-range neighbor IDs — the guarantees the
// semi-external algorithms rely on when handed untrusted files.
func FuzzOpenAndScan(f *testing.F) {
	// Seed corpus: valid raw and compressed files plus a truncated one.
	dir := f.TempDir()
	g := graph.FromEdges(4, [][2]uint32{{0, 1}, {1, 2}, {2, 3}})
	raw := filepath.Join(dir, "raw.adj")
	if err := WriteGraphSorted(raw, g, nil); err != nil {
		f.Fatal(err)
	}
	rawBytes, err := os.ReadFile(raw)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rawBytes)
	f.Add(rawBytes[:len(rawBytes)-5])
	f.Add([]byte(Magic))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	comp := filepath.Join(dir, "comp.adj")
	w, err := NewWriter(comp, FlagCompressed, 0, nil)
	if err != nil {
		f.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if err := w.Append(uint32(v), g.Neighbors(uint32(v))); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	compBytes, err := os.ReadFile(comp)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(compBytes)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.adj")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		file, err := Open(path, 0, nil)
		if err != nil {
			return // rejected cleanly
		}
		defer file.Close()
		n := file.NumVertices()
		records := 0
		_ = file.ForEach(func(r Record) error {
			records++
			if int(r.ID) >= n {
				t.Fatalf("scanner delivered out-of-range id %d (n=%d)", r.ID, n)
			}
			for _, nb := range r.Neighbors {
				if int(nb) >= n && file.Header().Flags&FlagCompressed != 0 {
					t.Fatalf("compressed scanner delivered out-of-range neighbor %d", nb)
				}
			}
			if records > n {
				t.Fatal("scanner delivered more records than the header promised")
			}
			return nil
		})
		// Decoder parity: whatever the input, the block-pipelined engine and
		// the bytewise reference decoder must agree on records and errors.
		assertParity(t, path, 4096)
		assertParity(t, path, DefaultBlockSize)
	})
}

// FuzzEdgeListText feeds arbitrary text to the edge-list parser: it must
// parse or reject without panicking, and anything it parses must be a valid
// simple graph.
func FuzzEdgeListText(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n\n3 4 extra\n")
	f.Add("a b\n")
	f.Add("-1 7\n")
	f.Add("99999999999999999999 1\n")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ReadEdgeListText(bytes.NewReader([]byte(src)))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser produced an invalid graph: %v", err)
		}
	})
}
