package gio

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// WriteGraph writes g to path in the given scan order (nil means vertex-ID
// order). Within each record, neighbors are ordered by ascending degree with
// ID as a tiebreak, as Section 4.1 of the paper prescribes. flags should
// include FlagDegreeSorted when order is an ascending-degree order.
func WriteGraph(path string, g *graph.Graph, order []uint32, flags uint32, stats *Counters) error {
	w, err := NewWriter(path, flags, 0, stats)
	if err != nil {
		return err
	}
	write := func(v uint32) error {
		ns := g.Neighbors(v)
		sorted := make([]uint32, len(ns))
		copy(sorted, ns)
		sort.Slice(sorted, func(i, j int) bool {
			di, dj := g.Degree(sorted[i]), g.Degree(sorted[j])
			if di != dj {
				return di < dj
			}
			return sorted[i] < sorted[j]
		})
		return w.Append(v, sorted)
	}
	if order == nil {
		for v := 0; v < g.NumVertices(); v++ {
			if err := write(uint32(v)); err != nil {
				w.Close()
				return err
			}
		}
	} else {
		if len(order) != g.NumVertices() {
			w.Close()
			return fmt.Errorf("gio: order has %d entries for %d vertices", len(order), g.NumVertices())
		}
		for _, v := range order {
			if err := write(v); err != nil {
				w.Close()
				return err
			}
		}
	}
	return w.Close()
}

// DegreeOrder returns g's vertex IDs sorted by ascending degree (ID
// tiebreak) — the scan order required by the Greedy algorithm.
func DegreeOrder(g *graph.Graph) []uint32 {
	order := make([]uint32, g.NumVertices())
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	return order
}

// WriteGraphSorted writes g to path in ascending-degree scan order and sets
// FlagDegreeSorted.
func WriteGraphSorted(path string, g *graph.Graph, stats *Counters) error {
	return WriteGraph(path, g, DegreeOrder(g), FlagDegreeSorted, stats)
}

// LoadGraph reads an entire adjacency file into memory. Intended for small
// graphs, the DynamicUpdate baseline and tests; semi-external algorithms use
// File.Scan instead.
func LoadGraph(path string, stats *Counters) (*graph.Graph, error) {
	return LoadGraphCtx(nil, path, stats)
}

// LoadGraphCtx is LoadGraph bound to a context: a canceled or expired ctx
// stops the load within one batch (see File.ForEachBatchCtx). A nil ctx
// behaves exactly like LoadGraph.
func LoadGraphCtx(ctx context.Context, path string, stats *Counters) (*graph.Graph, error) {
	f, err := Open(path, 0, stats)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b := graph.NewBuilder(f.NumVertices())
	err = f.ForEachBatchCtx(ctx, func(batch []Record) error {
		for _, r := range batch {
			for _, n := range r.Neighbors {
				b.AddEdge(r.ID, n)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// BatchSource is the slice of the scan interface the degree pass needs.
// Both *File and the parallel partitioned executor (internal/exec) satisfy
// it, so degree collection can run on either engine.
type BatchSource interface {
	NumVertices() int
	ForEachBatch(fn func([]Record) error) error
}

// LoadGraphSource loads a whole graph into memory from one scan of any
// source — the LoadGraph path for graphs that are not a single file, such as
// shard sets.
func LoadGraphSource(src BatchSource) (*graph.Graph, error) {
	b := graph.NewBuilder(src.NumVertices())
	err := src.ForEachBatch(func(batch []Record) error {
		for _, r := range batch {
			for _, n := range r.Neighbors {
				b.AddEdge(r.ID, n)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// ReadDegrees scans the file once and returns the degree of every vertex,
// indexed by vertex ID. This is an O(|V|) in-memory structure allowed by the
// semi-external model.
func ReadDegrees(f BatchSource) ([]uint32, error) {
	deg := make([]uint32, f.NumVertices())
	err := f.ForEachBatch(func(batch []Record) error {
		for _, r := range batch {
			deg[r.ID] = uint32(len(r.Neighbors))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return deg, nil
}

// ReadEdgeListText parses a whitespace-separated edge list ("u v" per line;
// '#' or '%' start comments) into a Graph. Vertex IDs must be non-negative
// integers; the graph has max(id)+1 vertices.
func ReadEdgeListText(r io.Reader) (*graph.Graph, error) {
	type e struct{ u, v uint32 }
	var edges []e
	maxID := int64(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("gio: edge list line %d: need two fields, got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gio: edge list line %d: %v", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gio: edge list line %d: %v", line, err)
		}
		if u < 0 || v < 0 || u > 1<<31 || v > 1<<31 {
			return nil, fmt.Errorf("gio: edge list line %d: vertex id out of range", line)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, e{uint32(u), uint32(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gio: reading edge list: %w", err)
	}
	b := graph.NewBuilder(int(maxID + 1))
	for _, ed := range edges {
		b.AddEdge(ed.u, ed.v)
	}
	return b.Build(), nil
}

// ImportEdgeListFile reads a text edge list from src and writes a
// degree-sorted adjacency file to dst.
func ImportEdgeListFile(src, dst string, stats *Counters) error {
	f, err := os.Open(src)
	if err != nil {
		return fmt.Errorf("gio: open %s: %w", src, err)
	}
	defer f.Close()
	g, err := ReadEdgeListText(f)
	if err != nil {
		return err
	}
	return WriteGraphSorted(dst, g, stats)
}

// WriteEdgeListText writes g as a text edge list (one "u v" per line, u < v).
func WriteEdgeListText(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	var outer error
	g.Edges(func(u, v uint32) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			outer = err
			return false
		}
		return true
	})
	if outer != nil {
		return outer
	}
	return bw.Flush()
}
