package gio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Footer: the partition cut table persisted at write time, so a cold Open
// never pays a planning scan (Partitions answers from the footer, the
// opportunistic capture never needs to run). The footer sits after the last
// record and is invisible to scans: decoding stops at the record count, so a
// footer-aware reader never feeds footer bytes to the decoder, and a
// pre-footer reader of an ordinary file stops at header.Vertices records —
// exactly the payload end — and never reads them either.
//
// Layout (all integers little-endian), appended after the final record:
//
//	footer block:
//	  magic    8 bytes  "MISFTB1\n"
//	  version  uint8    currently 1
//	  reserved 3 bytes  zero
//	  records  uint64   records actually present in the payload
//	  cuts     uint32   cut-table entries
//	  entries  cuts × (recs uint64, offs uint64)
//	trailer (fixed 24 bytes, always the last bytes of the file):
//	  length   uint64   byte length of the footer block
//	  crc      uint32   CRC-32C of the footer block
//	  version  uint8    currently 1 (repeated so it is visible at fixed offset)
//	  reserved 3 bytes  zero
//	  magic    8 bytes  "MISFTR1\n"
//
// The records field makes the record count independent of header.Vertices,
// which is what shard files exploit: a shard keeps the global vertex count in
// its header (so ID and degree validation still work on global IDs) while the
// footer records how many records this one file actually holds.
//
// Fallback is graceful and total: any structural mismatch — short file, bad
// trailer magic, unknown version, CRC failure, an inconsistent cut table —
// makes Open treat the file as footerless (records = header.Vertices,
// payload = whole file), which is exactly the pre-footer format.

const (
	footerBlockMagic   = "MISFTB1\n"
	footerTrailerMagic = "MISFTR1\n"
	footerVersion      = 1
	footerTrailerSize  = 24
	footerFixedSize    = 8 + 4 + 8 + 4 // magic, version+reserved, records, cut count
)

// crcTable is the CRC-32C (Castagnoli) table shared with the WAL's framing.
var footerCRCTable = crc32.MakeTable(crc32.Castagnoli)

// appendFooter appends the footer block plus trailer for a payload of
// records records with cut table ct.
func appendFooter(dst []byte, records uint64, ct *cutTable) []byte {
	start := len(dst)
	dst = append(dst, footerBlockMagic...)
	dst = append(dst, footerVersion, 0, 0, 0)
	dst = binary.LittleEndian.AppendUint64(dst, records)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ct.recs)))
	for i := range ct.recs {
		dst = binary.LittleEndian.AppendUint64(dst, ct.recs[i])
		dst = binary.LittleEndian.AppendUint64(dst, uint64(ct.offs[i]))
	}
	block := dst[start:]
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(block)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(block, footerCRCTable))
	dst = append(dst, footerVersion, 0, 0, 0)
	dst = append(dst, footerTrailerMagic...)
	return dst
}

// parseFooter looks for a footer at the end of a size-byte file and returns
// the record count, the cut table and the payload end when one is present
// and internally consistent with header h. ok is false — with no error — for
// footerless (or unrecognizably damaged) files; the caller then falls back
// to the pre-footer interpretation.
func parseFooter(r io.ReaderAt, size int64, h Header) (records uint64, ct *cutTable, payloadEnd int64, ok bool) {
	if size < HeaderSize+footerTrailerSize+footerFixedSize {
		return 0, nil, 0, false
	}
	var tr [footerTrailerSize]byte
	if _, err := r.ReadAt(tr[:], size-footerTrailerSize); err != nil {
		return 0, nil, 0, false
	}
	if string(tr[16:]) != footerTrailerMagic || tr[12] != footerVersion {
		return 0, nil, 0, false
	}
	blockLen := int64(binary.LittleEndian.Uint64(tr[0:]))
	wantCRC := binary.LittleEndian.Uint32(tr[8:])
	if blockLen < footerFixedSize || blockLen > size-HeaderSize-footerTrailerSize {
		return 0, nil, 0, false
	}
	payloadEnd = size - footerTrailerSize - blockLen
	block := make([]byte, blockLen)
	if _, err := r.ReadAt(block, payloadEnd); err != nil {
		return 0, nil, 0, false
	}
	if crc32.Checksum(block, footerCRCTable) != wantCRC {
		return 0, nil, 0, false
	}
	if string(block[:8]) != footerBlockMagic || block[8] != footerVersion {
		return 0, nil, 0, false
	}
	records = binary.LittleEndian.Uint64(block[12:])
	cuts := int64(binary.LittleEndian.Uint32(block[20:])) // fixed part ends at 24
	if records > h.Vertices || cuts < 1 || footerFixedSize+cuts*16 != blockLen {
		return 0, nil, 0, false
	}
	t := &cutTable{recs: make([]uint64, cuts), offs: make([]int64, cuts)}
	for i := int64(0); i < cuts; i++ {
		t.recs[i] = binary.LittleEndian.Uint64(block[footerFixedSize+i*16:])
		t.offs[i] = int64(binary.LittleEndian.Uint64(block[footerFixedSize+i*16+8:]))
	}
	if err := validateCutTable(t, records, payloadEnd); err != nil {
		return 0, nil, 0, false
	}
	return records, t, payloadEnd, true
}

// validateCutTable checks the structural invariants every partition plan must
// satisfy: entry 0 is (0, HeaderSize), entries are strictly increasing in both
// coordinates (except a single-entry table of an empty payload), and the last
// entry is exactly (records, payloadEnd). Plans loaded from a footer or a
// shard manifest pass through here; a plan built by a planning scan satisfies
// these by construction.
func validateCutTable(t *cutTable, records uint64, payloadEnd int64) error {
	n := len(t.recs)
	if n == 0 || n != len(t.offs) {
		return fmt.Errorf("cut table has %d record cuts, %d offset cuts", len(t.recs), len(t.offs))
	}
	if t.recs[0] != 0 || t.offs[0] != HeaderSize {
		return fmt.Errorf("cut table starts at (%d, %d), want (0, %d)", t.recs[0], t.offs[0], HeaderSize)
	}
	for i := 1; i < n; i++ {
		if t.recs[i] <= t.recs[i-1] || t.offs[i] <= t.offs[i-1] {
			return fmt.Errorf("cut table entry %d (%d, %d) does not increase over (%d, %d)",
				i, t.recs[i], t.offs[i], t.recs[i-1], t.offs[i-1])
		}
	}
	if t.recs[n-1] != records || t.offs[n-1] != payloadEnd {
		return fmt.Errorf("cut table ends at (%d, %d), want (%d, %d)", t.recs[n-1], t.offs[n-1], records, payloadEnd)
	}
	return nil
}

// NumRecords returns the number of adjacency records actually present in the
// file: header.Vertices for ordinary files, the footer's record count for
// vertex-range shard files (whose header keeps the global vertex count).
func (g *File) NumRecords() uint64 { return g.records }

// PayloadEnd returns the absolute offset one past the last record: the
// footer start for footered files, the file size otherwise.
func (g *File) PayloadEnd() int64 { return g.payloadEnd }

// HasFooter reports whether the file carries a valid footer (and therefore
// opened with a pre-loaded partition plan).
func (g *File) HasFooter() bool { return g.hasFooter }

// PartitionPlan returns a copy of the cached partition cut table, if any:
// parallel record counts and absolute byte offsets, as persisted in footers
// and shard manifests. ok is false when no plan is cached yet.
func (g *File) PartitionPlan() (recs []uint64, offs []int64, ok bool) {
	g.plan.mu.Lock()
	defer g.plan.mu.Unlock()
	if g.plan.cuts == nil {
		return nil, nil, false
	}
	recs = append([]uint64(nil), g.plan.cuts.recs...)
	offs = append([]int64(nil), g.plan.cuts.offs...)
	return recs, offs, true
}

// InstallPartitionPlan installs an externally persisted partition cut table
// (a shard manifest's) after validating it against the file's record count
// and payload end. A plan already cached wins silently — plans for one file
// are identical by construction. The installed plan serves every Partitions
// call for the file's lifetime, so a cold open followed by a parallel scan
// performs zero planning scans.
func (g *File) InstallPartitionPlan(recs []uint64, offs []int64) error {
	t := &cutTable{
		recs: append([]uint64(nil), recs...),
		offs: append([]int64(nil), offs...),
	}
	if err := validateCutTable(t, g.records, g.payloadEnd); err != nil {
		return fmt.Errorf("%w: %s: invalid partition plan: %v", ErrBadFormat, g.path, err)
	}
	g.plan.mu.Lock()
	defer g.plan.mu.Unlock()
	if g.plan.cuts != nil {
		return nil
	}
	g.plan.cuts = t
	g.plan.cutsErr = nil
	return nil
}
