package gio

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// writeCompressed writes g as a compressed, degree-record-ordered file.
func writeCompressed(t *testing.T, g *graph.Graph, path string) {
	t.Helper()
	w, err := NewWriter(path, FlagDegreeSorted|FlagCompressed, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range DegreeOrder(g) {
		if err := w.Append(v, g.Neighbors(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	g := randomGraph(11, 300, 900)
	path := filepath.Join(t.TempDir(), "c.adj")
	writeCompressed(t, g, path)
	back, err := LoadGraph(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d",
			back.NumVertices(), back.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	ok := true
	g.Edges(func(u, v uint32) bool {
		if !back.HasEdge(u, v) {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		t.Fatal("edges lost in compressed round trip")
	}
}

func TestCompressedSmaller(t *testing.T) {
	// Delta-encoded lists should beat fixed 4-byte neighbors on any graph
	// whose IDs fit well under 2^28.
	g := randomGraph(12, 2000, 8000)
	dir := t.TempDir()
	raw := filepath.Join(dir, "raw.adj")
	comp := filepath.Join(dir, "comp.adj")
	if err := WriteGraphSorted(raw, g, nil); err != nil {
		t.Fatal(err)
	}
	writeCompressed(t, g, comp)
	ri, err := os.Stat(raw)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := os.Stat(comp)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Size() >= ri.Size() {
		t.Fatalf("compressed %d not smaller than raw %d", ci.Size(), ri.Size())
	}
	t.Logf("raw %d bytes, compressed %d bytes (%.1f%%)",
		ri.Size(), ci.Size(), 100*float64(ci.Size())/float64(ri.Size()))
}

func TestCompressedScanOrderPreserved(t *testing.T) {
	g := randomGraph(13, 150, 400)
	path := filepath.Join(t.TempDir(), "c.adj")
	writeCompressed(t, g, path)
	f, err := Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Header().DegreeSorted() {
		t.Fatal("flag lost")
	}
	prev := -1
	err = f.ForEach(func(r Record) error {
		if len(r.Neighbors) < prev {
			t.Fatal("record degree order lost under compression")
		}
		prev = len(r.Neighbors)
		// Neighbor lists come back ascending by ID.
		for i := 1; i < len(r.Neighbors); i++ {
			if r.Neighbors[i-1] >= r.Neighbors[i] {
				t.Fatalf("vertex %d: neighbors not ascending", r.ID)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompressedTruncation(t *testing.T) {
	g := randomGraph(14, 60, 150)
	path := filepath.Join(t.TempDir(), "c.adj")
	writeCompressed(t, g, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data = stripFooter(t, data) // truncate record bytes, not footer bytes
	trunc := filepath.Join(t.TempDir(), "t.adj")
	if err := os.WriteFile(trunc, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(trunc, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.ForEach(func(Record) error { return nil }); err == nil {
		t.Fatal("truncated compressed file scanned cleanly")
	}
}

func TestCompressedProperty(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%50) + 1
		g := randomGraph(seed, n, int(mRaw))
		dir, err := os.MkdirTemp("", "gioc")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "c.adj")
		w, err := NewWriter(path, FlagCompressed, 0, nil)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if err := w.Append(uint32(v), g.Neighbors(uint32(v))); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		back, err := LoadGraph(path, nil)
		if err != nil {
			return false
		}
		if back.NumEdges() != g.NumEdges() {
			return false
		}
		ok := true
		g.Edges(func(u, v uint32) bool {
			if !back.HasEdge(u, v) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
