package gio

import "fmt"

// Stats accumulates I/O accounting across readers and writers that share it.
// The semi-external algorithms report these numbers for the paper's Table 6
// style measurements. Stats is not safe for concurrent use; each experiment
// run owns one.
type Stats struct {
	Scans         int    // completed sequential scans of an adjacency file
	RecordsRead   uint64 // vertex records decoded
	BytesRead     uint64
	BytesWritten  uint64
	BlocksRead    uint64 // buffered refills of size ≤ block size
	BlocksWritten uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Scans += other.Scans
	s.RecordsRead += other.RecordsRead
	s.BytesRead += other.BytesRead
	s.BytesWritten += other.BytesWritten
	s.BlocksRead += other.BlocksRead
	s.BlocksWritten += other.BlocksWritten
}

// String formats the counters compactly.
func (s *Stats) String() string {
	return fmt.Sprintf("scans=%d records=%d read=%s written=%s blocks(r/w)=%d/%d",
		s.Scans, s.RecordsRead, FormatBytes(s.BytesRead), FormatBytes(s.BytesWritten),
		s.BlocksRead, s.BlocksWritten)
}

// FormatBytes renders a byte count with a binary-prefix unit, e.g. "1.5MB".
func FormatBytes(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := uint64(unit), 0
	for v := n / unit; v >= unit; v /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%cB", float64(n)/float64(div), "KMGTPE"[exp])
}
