package gio

import (
	"fmt"
	"sync/atomic"
)

// Stats is one consistent snapshot of I/O accounting: scans, records, bytes
// and buffered blocks. The semi-external algorithms report these numbers for
// the paper's Table 6 style measurements. Stats is a plain value — results
// embed it, deltas subtract it — produced by Counters.Snapshot; the
// accumulation itself happens in Counters, whose atomic adds make one
// counter set shareable by concurrent runs.
type Stats struct {
	// Scans counts completed logical scans: sequential passes the consuming
	// algorithm's structure calls for. When the pass scheduler
	// (internal/pipeline) fuses several logical passes into one shared
	// physical scan, each fused pass still counts here, so an algorithm's
	// Scans stays comparable whether or not fusion is enabled.
	Scans int
	// PhysicalScans counts completed end-to-end passes over the file — the
	// scan count of the paper's I/O cost model, and the number fusion
	// actually reduces. Without fusion, PhysicalScans == Scans.
	PhysicalScans int
	// CarriedScans counts the logical scans that were satisfied entirely
	// from state carried across swap rounds (the pipeline's cross-round
	// Produces/Consumes fusion): the pass's records were collected while
	// riding an earlier round's physical scan and resolved from memory, so
	// no physical pass was paid. Always ≤ Scans; each carried scan is one
	// physical scan the classic round structure would have spent.
	CarriedScans  int
	RecordsRead   uint64 // vertex records decoded
	BytesRead     uint64
	BytesWritten  uint64
	BlocksRead    uint64 // buffered refills of size ≤ block size
	BlocksWritten uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Scans += other.Scans
	s.PhysicalScans += other.PhysicalScans
	s.CarriedScans += other.CarriedScans
	s.RecordsRead += other.RecordsRead
	s.BytesRead += other.BytesRead
	s.BytesWritten += other.BytesWritten
	s.BlocksRead += other.BlocksRead
	s.BlocksWritten += other.BlocksWritten
}

// Sub returns the difference s - snap: the I/O performed since snap was
// taken. It is the delta primitive behind per-run and per-round accounting.
func (s Stats) Sub(snap Stats) Stats {
	return Stats{
		Scans:         s.Scans - snap.Scans,
		PhysicalScans: s.PhysicalScans - snap.PhysicalScans,
		CarriedScans:  s.CarriedScans - snap.CarriedScans,
		RecordsRead:   s.RecordsRead - snap.RecordsRead,
		BytesRead:     s.BytesRead - snap.BytesRead,
		BytesWritten:  s.BytesWritten - snap.BytesWritten,
		BlocksRead:    s.BlocksRead - snap.BlocksRead,
		BlocksWritten: s.BlocksWritten - snap.BlocksWritten,
	}
}

// String formats the counters compactly.
func (s *Stats) String() string {
	return fmt.Sprintf("scans=%d physical=%d carried=%d records=%d read=%s written=%s blocks(r/w)=%d/%d",
		s.Scans, s.PhysicalScans, s.CarriedScans, s.RecordsRead, FormatBytes(s.BytesRead), FormatBytes(s.BytesWritten),
		s.BlocksRead, s.BlocksWritten)
}

// Counters is the concurrency-safe accumulator behind Stats. Every reader
// and writer that shares a Counters adds with atomic operations, so
// concurrent runs — several solvers scanning one file at once — can account
// into the same totals without a data race.
//
// A Counters may be a scope of a parent (see Scope): every addition then
// forwards to the parent as well, which is how a run-private counter set
// merges into its file's lifetime totals while staying independently
// readable. The zero value is a valid root accumulator.
type Counters struct {
	parent *Counters

	scans         atomic.Int64
	physicalScans atomic.Int64
	carriedScans  atomic.Int64
	recordsRead   atomic.Uint64
	bytesRead     atomic.Uint64
	bytesWritten  atomic.Uint64
	blocksRead    atomic.Uint64
	blocksWritten atomic.Uint64
}

// Scope returns a fresh child accumulator whose every addition also lands
// in c: the per-run stat scope of a solver run. Reading the child yields
// exactly the I/O of that run, while the parent keeps the file-lifetime
// total. Scopes may nest.
func (c *Counters) Scope() *Counters { return &Counters{parent: c} }

// AddScans counts n completed logical scans.
func (c *Counters) AddScans(n int) {
	for s := c; s != nil; s = s.parent {
		s.scans.Add(int64(n))
	}
}

// AddPhysicalScans counts n completed end-to-end passes over the file.
func (c *Counters) AddPhysicalScans(n int) {
	for s := c; s != nil; s = s.parent {
		s.physicalScans.Add(int64(n))
	}
}

// AddCarriedScans counts n logical scans resolved from carried state.
func (c *Counters) AddCarriedScans(n int) {
	for s := c; s != nil; s = s.parent {
		s.carriedScans.Add(int64(n))
	}
}

// AddRecordsRead counts n decoded vertex records.
func (c *Counters) AddRecordsRead(n uint64) {
	for s := c; s != nil; s = s.parent {
		s.recordsRead.Add(n)
	}
}

// AddBytesRead counts n bytes consumed from disk.
func (c *Counters) AddBytesRead(n uint64) {
	for s := c; s != nil; s = s.parent {
		s.bytesRead.Add(n)
	}
}

// AddBytesWritten counts n bytes written to disk.
func (c *Counters) AddBytesWritten(n uint64) {
	for s := c; s != nil; s = s.parent {
		s.bytesWritten.Add(n)
	}
}

// AddBlocksRead counts n buffered read refills.
func (c *Counters) AddBlocksRead(n uint64) {
	for s := c; s != nil; s = s.parent {
		s.blocksRead.Add(n)
	}
}

// AddBlocksWritten counts n buffered write flushes.
func (c *Counters) AddBlocksWritten(n uint64) {
	for s := c; s != nil; s = s.parent {
		s.blocksWritten.Add(n)
	}
}

// AddStats accumulates a whole snapshot at once.
func (c *Counters) AddStats(s Stats) {
	c.AddScans(s.Scans)
	c.AddPhysicalScans(s.PhysicalScans)
	c.AddCarriedScans(s.CarriedScans)
	c.AddRecordsRead(s.RecordsRead)
	c.AddBytesRead(s.BytesRead)
	c.AddBytesWritten(s.BytesWritten)
	c.AddBlocksRead(s.BlocksRead)
	c.AddBlocksWritten(s.BlocksWritten)
}

// Snapshot returns the current totals as a plain Stats value. Each field is
// read atomically; with concurrent writers the fields are individually — not
// jointly — consistent, which is what progress reporting needs.
func (c *Counters) Snapshot() Stats {
	return Stats{
		Scans:         int(c.scans.Load()),
		PhysicalScans: int(c.physicalScans.Load()),
		CarriedScans:  int(c.carriedScans.Load()),
		RecordsRead:   c.recordsRead.Load(),
		BytesRead:     c.bytesRead.Load(),
		BytesWritten:  c.bytesWritten.Load(),
		BlocksRead:    c.blocksRead.Load(),
		BlocksWritten: c.blocksWritten.Load(),
	}
}

// Reset zeroes this accumulator's own counters. A parent scope is not
// touched: resetting a file's lifetime totals does not rewrite history
// recorded elsewhere.
func (c *Counters) Reset() {
	c.scans.Store(0)
	c.physicalScans.Store(0)
	c.carriedScans.Store(0)
	c.recordsRead.Store(0)
	c.bytesRead.Store(0)
	c.bytesWritten.Store(0)
	c.blocksRead.Store(0)
	c.blocksWritten.Store(0)
}

// String formats the current totals compactly.
func (c *Counters) String() string {
	s := c.Snapshot()
	return s.String()
}

// FormatBytes renders a byte count with a binary-prefix unit, e.g. "1.5MB".
func FormatBytes(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := uint64(unit), 0
	for v := n / unit; v >= unit; v /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%cB", float64(n)/float64(div), "KMGTPE"[exp])
}
