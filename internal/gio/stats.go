package gio

import "fmt"

// Stats accumulates I/O accounting across readers and writers that share it.
// The semi-external algorithms report these numbers for the paper's Table 6
// style measurements. Stats is not safe for concurrent use; each experiment
// run owns one.
type Stats struct {
	// Scans counts completed logical scans: sequential passes the consuming
	// algorithm's structure calls for. When the pass scheduler
	// (internal/pipeline) fuses several logical passes into one shared
	// physical scan, each fused pass still counts here, so an algorithm's
	// Scans stays comparable whether or not fusion is enabled.
	Scans int
	// PhysicalScans counts completed end-to-end passes over the file — the
	// scan count of the paper's I/O cost model, and the number fusion
	// actually reduces. Without fusion, PhysicalScans == Scans.
	PhysicalScans int
	// CarriedScans counts the logical scans that were satisfied entirely
	// from state carried across swap rounds (the pipeline's cross-round
	// Produces/Consumes fusion): the pass's records were collected while
	// riding an earlier round's physical scan and resolved from memory, so
	// no physical pass was paid. Always ≤ Scans; each carried scan is one
	// physical scan the classic round structure would have spent.
	CarriedScans  int
	RecordsRead   uint64 // vertex records decoded
	BytesRead     uint64
	BytesWritten  uint64
	BlocksRead    uint64 // buffered refills of size ≤ block size
	BlocksWritten uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Scans += other.Scans
	s.PhysicalScans += other.PhysicalScans
	s.CarriedScans += other.CarriedScans
	s.RecordsRead += other.RecordsRead
	s.BytesRead += other.BytesRead
	s.BytesWritten += other.BytesWritten
	s.BlocksRead += other.BlocksRead
	s.BlocksWritten += other.BlocksWritten
}

// String formats the counters compactly.
func (s *Stats) String() string {
	return fmt.Sprintf("scans=%d physical=%d carried=%d records=%d read=%s written=%s blocks(r/w)=%d/%d",
		s.Scans, s.PhysicalScans, s.CarriedScans, s.RecordsRead, FormatBytes(s.BytesRead), FormatBytes(s.BytesWritten),
		s.BlocksRead, s.BlocksWritten)
}

// FormatBytes renders a byte count with a binary-prefix unit, e.g. "1.5MB".
func FormatBytes(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := uint64(unit), 0
	for v := n / unit; v >= unit; v /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%cB", float64(n)/float64(div), "KMGTPE"[exp])
}
