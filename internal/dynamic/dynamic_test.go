package dynamic

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/plrg"
)

func openGraph(t *testing.T, g *graph.Graph) *gio.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.adj")
	if err := gio.WriteGraphSorted(path, g, nil); err != nil {
		t.Fatal(err)
	}
	f, err := gio.Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func greedySet(t *testing.T, f *gio.File) []bool {
	t.Helper()
	r, err := core.Greedy(f)
	if err != nil {
		t.Fatal(err)
	}
	return r.InSet
}

// effectiveGraph reconstructs the maintainer's current graph in memory as a
// reference for cross-checking.
type effectiveGraph struct {
	n     int
	edges map[uint64]bool
}

func newEffective(g *graph.Graph) *effectiveGraph {
	e := &effectiveGraph{n: g.NumVertices(), edges: map[uint64]bool{}}
	g.Edges(func(u, v uint32) bool {
		e.edges[edgeKey(u, v)] = true
		return true
	})
	return e
}

func (e *effectiveGraph) insert(u, v uint32) { e.edges[edgeKey(u, v)] = true }
func (e *effectiveGraph) remove(u, v uint32) { delete(e.edges, edgeKey(u, v)) }

func (e *effectiveGraph) independent(in []bool) bool {
	for k := range e.edges {
		u, v := uint32(k>>32), uint32(k&0xffffffff)
		if in[u] && in[v] {
			return false
		}
	}
	return true
}

func (e *effectiveGraph) maximal(in []bool) bool {
	blocked := make([]bool, e.n)
	for k := range e.edges {
		u, v := uint32(k>>32), uint32(k&0xffffffff)
		if in[u] {
			blocked[v] = true
		}
		if in[v] {
			blocked[u] = true
		}
	}
	for v := 0; v < e.n; v++ {
		if !in[v] && !blocked[v] {
			return false
		}
	}
	return true
}

func TestInsertEvicts(t *testing.T) {
	g := plrg.Path(4) // 0-1-2-3; greedy set {0, 2} or similar
	f := openGraph(t, g)
	m, err := New(f, greedySet(t, f))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	// Force an intra-set edge.
	var members []uint32
	for v, in := range m.Set() {
		if in {
			members = append(members, uint32(v))
		}
	}
	if len(members) < 2 {
		t.Fatalf("set too small: %v", members)
	}
	before := m.Size()
	if err := m.InsertEdge(members[0], members[1]); err != nil {
		t.Fatal(err)
	}
	if m.Size() != before-1 {
		t.Fatalf("size %d after eviction, want %d", m.Size(), before-1)
	}
	if m.Evictions() != 1 || !m.Dirty() {
		t.Fatal("eviction accounting wrong")
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertErrors(t *testing.T) {
	f := openGraph(t, plrg.Path(3))
	m, err := New(f, make([]bool, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InsertEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := m.InsertEdge(0, 99); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := m.DeleteEdge(1, 1); err == nil {
		t.Fatal("self-loop delete accepted")
	}
}

func TestDeleteThenRepairAdds(t *testing.T) {
	// Star: center 0 with 4 leaves; greedy picks the leaves. Delete all
	// center edges → the center becomes addable after Repair.
	g := plrg.Star(4)
	f := openGraph(t, g)
	m, err := New(f, greedySet(t, f))
	if err != nil {
		t.Fatal(err)
	}
	if m.Contains(0) {
		t.Fatal("center should start outside the set")
	}
	for leaf := uint32(1); leaf <= 4; leaf++ {
		if err := m.DeleteEdge(0, leaf); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Dirty() {
		t.Fatal("deletions must mark dirty")
	}
	added, err := m.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || !m.Contains(0) {
		t.Fatalf("repair added %d (contains0=%v), want the center", added, m.Contains(0))
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestReinsertDeletedEdge(t *testing.T) {
	f := openGraph(t, plrg.Path(3)) // 0-1-2
	m, err := New(f, greedySet(t, f))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.InsertEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Repair(); err != nil {
		t.Fatal(err)
	}
	// 0-1-2 path restored: a maximal independent set has ≤ 2 vertices and
	// never both ends of an edge.
	if m.Size() > 2 {
		t.Fatalf("size %d impossible on a 3-path", m.Size())
	}
}

func TestRandomUpdateStream(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := plrg.ErdosRenyi(60, 120, seed)
		f := openGraph(t, base)
		m, err := New(f, greedySet(t, f))
		if err != nil {
			t.Fatal(err)
		}
		ref := newEffective(base)
		for step := 0; step < 300; step++ {
			u := uint32(rng.Intn(60))
			v := uint32(rng.Intn(60))
			if u == v {
				continue
			}
			if rng.Intn(2) == 0 {
				if err := m.InsertEdge(u, v); err != nil {
					t.Fatal(err)
				}
				ref.insert(u, v)
			} else {
				if err := m.DeleteEdge(u, v); err != nil {
					t.Fatal(err)
				}
				ref.remove(u, v)
			}
			// Invariant 1 holds after every update.
			if !ref.independent(m.Set()) {
				t.Fatalf("seed %d step %d: set not independent", seed, step)
			}
			if step%50 == 49 {
				if _, err := m.Repair(); err != nil {
					t.Fatal(err)
				}
				if !ref.independent(m.Set()) {
					t.Fatalf("seed %d step %d: not independent after repair", seed, step)
				}
				if !ref.maximal(m.Set()) {
					t.Fatalf("seed %d step %d: not maximal after repair", seed, step)
				}
				if err := m.Verify(); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}
		}
	}
}

func TestMaterializeMatchesEffective(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := plrg.ErdosRenyi(50, 100, 7)
	f := openGraph(t, base)
	m, err := New(f, greedySet(t, f))
	if err != nil {
		t.Fatal(err)
	}
	ref := newEffective(base)
	for step := 0; step < 120; step++ {
		u := uint32(rng.Intn(50))
		v := uint32(rng.Intn(50))
		if u == v {
			continue
		}
		if rng.Intn(2) == 0 {
			m.InsertEdge(u, v)
			ref.insert(u, v)
		} else {
			m.DeleteEdge(u, v)
			ref.remove(u, v)
		}
	}
	path := filepath.Join(t.TempDir(), "mat.adj")
	if err := m.Materialize(path); err != nil {
		t.Fatal(err)
	}
	got, err := gio.LoadGraph(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != len(ref.edges) {
		t.Fatalf("materialized %d edges, want %d", got.NumEdges(), len(ref.edges))
	}
	for k := range ref.edges {
		u, v := uint32(k>>32), uint32(k&0xffffffff)
		if !got.HasEdge(u, v) {
			t.Fatalf("edge {%d,%d} missing after materialize", u, v)
		}
	}
	// The materialized file feeds the full pipeline.
	mf, err := gio.Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	r, err := core.Greedy(mf)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyIndependent(mf, r.InSet); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaAccounting(t *testing.T) {
	f := openGraph(t, plrg.Path(10))
	m, err := New(f, make([]bool, 10))
	if err != nil {
		t.Fatal(err)
	}
	m.InsertEdge(0, 5)
	m.InsertEdge(0, 5) // duplicate: no growth
	if m.DeltaEdges() != 1 {
		t.Fatalf("delta = %d, want 1", m.DeltaEdges())
	}
	m.DeleteEdge(0, 5) // removes the added edge, leaves a tombstone
	if m.DeltaEdges() != 1 {
		t.Fatalf("delta = %d after delete, want 1 (tombstone)", m.DeltaEdges())
	}
}
