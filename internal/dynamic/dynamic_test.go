package dynamic

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/plrg"
)

func openGraph(t *testing.T, g *graph.Graph) *gio.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.adj")
	if err := gio.WriteGraphSorted(path, g, nil); err != nil {
		t.Fatal(err)
	}
	f, err := gio.Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func greedySet(t *testing.T, f *gio.File) []bool {
	t.Helper()
	r, err := core.Greedy(f)
	if err != nil {
		t.Fatal(err)
	}
	return r.InSet
}

// effectiveGraph reconstructs the maintainer's current graph in memory as a
// reference for cross-checking.
type effectiveGraph struct {
	n     int
	edges map[uint64]bool
}

func newEffective(g *graph.Graph) *effectiveGraph {
	e := &effectiveGraph{n: g.NumVertices(), edges: map[uint64]bool{}}
	g.Edges(func(u, v uint32) bool {
		e.edges[edgeKey(u, v)] = true
		return true
	})
	return e
}

func (e *effectiveGraph) insert(u, v uint32) { e.edges[edgeKey(u, v)] = true }
func (e *effectiveGraph) remove(u, v uint32) { delete(e.edges, edgeKey(u, v)) }

func (e *effectiveGraph) independent(in []bool) bool {
	for k := range e.edges {
		u, v := uint32(k>>32), uint32(k&0xffffffff)
		if in[u] && in[v] {
			return false
		}
	}
	return true
}

func (e *effectiveGraph) maximal(in []bool) bool {
	blocked := make([]bool, e.n)
	for k := range e.edges {
		u, v := uint32(k>>32), uint32(k&0xffffffff)
		if in[u] {
			blocked[v] = true
		}
		if in[v] {
			blocked[u] = true
		}
	}
	for v := 0; v < e.n; v++ {
		if !in[v] && !blocked[v] {
			return false
		}
	}
	return true
}

func TestInsertEvicts(t *testing.T) {
	g := plrg.Path(4) // 0-1-2-3; greedy set {0, 2} or similar
	f := openGraph(t, g)
	m, err := New(f, greedySet(t, f))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	// Force an intra-set edge.
	var members []uint32
	for v, in := range m.Set() {
		if in {
			members = append(members, uint32(v))
		}
	}
	if len(members) < 2 {
		t.Fatalf("set too small: %v", members)
	}
	before := m.Size()
	if err := m.InsertEdge(members[0], members[1]); err != nil {
		t.Fatal(err)
	}
	if m.Size() != before-1 {
		t.Fatalf("size %d after eviction, want %d", m.Size(), before-1)
	}
	if m.Evictions() != 1 || !m.Dirty() {
		t.Fatal("eviction accounting wrong")
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertErrors(t *testing.T) {
	f := openGraph(t, plrg.Path(3))
	m, err := New(f, make([]bool, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InsertEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := m.InsertEdge(0, 99); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := m.DeleteEdge(1, 1); err == nil {
		t.Fatal("self-loop delete accepted")
	}
}

func TestDeleteThenRepairAdds(t *testing.T) {
	// Star: center 0 with 4 leaves; greedy picks the leaves. Delete all
	// center edges → the center becomes addable after Repair.
	g := plrg.Star(4)
	f := openGraph(t, g)
	m, err := New(f, greedySet(t, f))
	if err != nil {
		t.Fatal(err)
	}
	if m.Contains(0) {
		t.Fatal("center should start outside the set")
	}
	for leaf := uint32(1); leaf <= 4; leaf++ {
		if err := m.DeleteEdge(0, leaf); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Dirty() {
		t.Fatal("deletions must mark dirty")
	}
	added, err := m.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || !m.Contains(0) {
		t.Fatalf("repair added %d (contains0=%v), want the center", added, m.Contains(0))
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestReinsertDeletedEdge(t *testing.T) {
	f := openGraph(t, plrg.Path(3)) // 0-1-2
	m, err := New(f, greedySet(t, f))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.InsertEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Repair(); err != nil {
		t.Fatal(err)
	}
	// 0-1-2 path restored: a maximal independent set has ≤ 2 vertices and
	// never both ends of an edge.
	if m.Size() > 2 {
		t.Fatalf("size %d impossible on a 3-path", m.Size())
	}
}

func TestRandomUpdateStream(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := plrg.ErdosRenyi(60, 120, seed)
		f := openGraph(t, base)
		m, err := New(f, greedySet(t, f))
		if err != nil {
			t.Fatal(err)
		}
		ref := newEffective(base)
		for step := 0; step < 300; step++ {
			u := uint32(rng.Intn(60))
			v := uint32(rng.Intn(60))
			if u == v {
				continue
			}
			if rng.Intn(2) == 0 {
				if err := m.InsertEdge(u, v); err != nil {
					t.Fatal(err)
				}
				ref.insert(u, v)
			} else {
				if err := m.DeleteEdge(u, v); err != nil {
					t.Fatal(err)
				}
				ref.remove(u, v)
			}
			// Invariant 1 holds after every update.
			if !ref.independent(m.Set()) {
				t.Fatalf("seed %d step %d: set not independent", seed, step)
			}
			if step%50 == 49 {
				if _, err := m.Repair(); err != nil {
					t.Fatal(err)
				}
				if !ref.independent(m.Set()) {
					t.Fatalf("seed %d step %d: not independent after repair", seed, step)
				}
				if !ref.maximal(m.Set()) {
					t.Fatalf("seed %d step %d: not maximal after repair", seed, step)
				}
				if err := m.Verify(); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}
		}
	}
}

func TestMaterializeMatchesEffective(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := plrg.ErdosRenyi(50, 100, 7)
	f := openGraph(t, base)
	m, err := New(f, greedySet(t, f))
	if err != nil {
		t.Fatal(err)
	}
	ref := newEffective(base)
	for step := 0; step < 120; step++ {
		u := uint32(rng.Intn(50))
		v := uint32(rng.Intn(50))
		if u == v {
			continue
		}
		if rng.Intn(2) == 0 {
			m.InsertEdge(u, v)
			ref.insert(u, v)
		} else {
			m.DeleteEdge(u, v)
			ref.remove(u, v)
		}
	}
	path := filepath.Join(t.TempDir(), "mat.adj")
	if err := m.Materialize(path); err != nil {
		t.Fatal(err)
	}
	got, err := gio.LoadGraph(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != len(ref.edges) {
		t.Fatalf("materialized %d edges, want %d", got.NumEdges(), len(ref.edges))
	}
	for k := range ref.edges {
		u, v := uint32(k>>32), uint32(k&0xffffffff)
		if !got.HasEdge(u, v) {
			t.Fatalf("edge {%d,%d} missing after materialize", u, v)
		}
	}
	// The materialized file feeds the full pipeline.
	mf, err := gio.Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	r, err := core.Greedy(mf)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyIndependent(mf, r.InSet); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaAccounting(t *testing.T) {
	f := openGraph(t, plrg.Path(10))
	m, err := New(f, make([]bool, 10))
	if err != nil {
		t.Fatal(err)
	}
	m.InsertEdge(0, 5)
	m.InsertEdge(0, 5) // duplicate: no growth
	if m.DeltaEdges() != 1 {
		t.Fatalf("delta = %d, want 1", m.DeltaEdges())
	}
	m.DeleteEdge(0, 5) // removes the added edge, leaves a tombstone
	if m.DeltaEdges() != 1 {
		t.Fatalf("delta = %d after delete, want 1 (tombstone)", m.DeltaEdges())
	}
}

func TestVerifyViolationTyped(t *testing.T) {
	f := openGraph(t, plrg.Path(4)) // 0-1-2-3
	bad := make([]bool, 4)
	bad[1], bad[2] = true, true // edge {1,2} inside the set
	m, err := New(f, bad)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Verify()
	var ve *ViolationError
	if !errors.As(err, &ve) {
		t.Fatalf("Verify returned %T (%v), want *ViolationError", err, err)
	}
	lo, hi := ve.U, ve.V
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo != 1 || hi != 2 {
		t.Fatalf("violation edge {%d,%d}, want {1,2}", ve.U, ve.V)
	}
	if ve.Record == 0 || ve.Record > 4 {
		t.Fatalf("violation scan position %d out of range", ve.Record)
	}
	// A violation introduced purely by the delta is typed the same way.
	f2 := openGraph(t, plrg.Path(4))
	m2, err := New(f2, make([]bool, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.InsertEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	m2.inSet[0], m2.inSet[3] = true, true // bypass eviction to fake corruption
	if err := m2.Verify(); !errors.As(err, &ve) {
		t.Fatalf("delta violation: %T (%v), want *ViolationError", err, err)
	}
}

func TestCtxCancelSurfacesScanError(t *testing.T) {
	f := openGraph(t, plrg.ErdosRenyi(200, 400, 1))
	m, err := New(f, make([]bool, 200))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RepairCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RepairCtx: %v, want context.Canceled", err)
	}
	var se *gio.ScanError
	if _, err := m.RepairCtx(ctx); !errors.As(err, &se) {
		t.Fatalf("RepairCtx error %T not a *gio.ScanError", err)
	}
	if err := m.VerifyCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("VerifyCtx: %v, want context.Canceled", err)
	}
	dst := filepath.Join(t.TempDir(), "out.adj")
	if err := m.MaterializeCtx(ctx, dst); !errors.Is(err, context.Canceled) {
		t.Fatalf("MaterializeCtx: %v, want context.Canceled", err)
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatalf("canceled materialize left a file at the destination (err=%v)", err)
	}
	if _, err := os.Stat(dst + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("canceled materialize left a temp file (err=%v)", err)
	}
}

func TestMaterializeAtomicReplace(t *testing.T) {
	// Materialize over an existing destination must leave the old complete
	// file in place until the new one is fully written, and replace it
	// atomically — a failed run never clobbers it.
	f := openGraph(t, plrg.Path(6))
	m, err := New(f, make([]bool, 6))
	if err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(t.TempDir(), "snap.adj")
	if err := m.Materialize(dst); err != nil {
		t.Fatal(err)
	}
	before, err := gio.LoadGraph(dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A canceled rewrite leaves the previous snapshot untouched.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.InsertEdge(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := m.MaterializeCtx(ctx, dst); err == nil {
		t.Fatal("canceled materialize succeeded")
	}
	after, err := gio.LoadGraph(dst, nil)
	if err != nil {
		t.Fatalf("destination unreadable after failed rewrite: %v", err)
	}
	if after.NumEdges() != before.NumEdges() {
		t.Fatalf("failed rewrite changed the destination: %d edges, had %d", after.NumEdges(), before.NumEdges())
	}
	// And a successful rewrite flips to the new content.
	if err := m.Materialize(dst); err != nil {
		t.Fatal(err)
	}
	final, err := gio.LoadGraph(dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.NumEdges() != before.NumEdges()+1 {
		t.Fatalf("rewrite has %d edges, want %d", final.NumEdges(), before.NumEdges()+1)
	}
}
