// Package dynamic maintains an independent set under edge insertions and
// deletions — the extension the paper's conclusion names as future work
// ("how our solutions can be extended to the incremental massive graphs
// with frequent updates").
//
// The design keeps the semi-external discipline: the base graph stays on
// disk and is never randomly accessed. Updates accumulate in memory as a
// delta (added edges and tombstones over base edges). Two invariants:
//
//  1. The maintained set is independent with respect to the *current*
//     graph after every single update. Inserting an edge inside the set
//     evicts one endpoint immediately — no file access needed.
//  2. Maximality is restored lazily: evictions and deletions mark the
//     maintainer dirty, and Repair() re-establishes maximality with one
//     sequential scan, amortizing file I/O over many updates — the same
//     lazy ethos as the paper's greedy algorithm.
//
// Materialize writes the effective graph (base ∖ tombstones ∪ delta) to a
// fresh adjacency file so the full swap pipeline can re-optimize when the
// delta has grown large.
package dynamic

import (
	"context"
	"fmt"
	"os"
	"sort"

	"repro/internal/gio"
)

// Maintainer holds an independent set over a base graph file plus an
// in-memory edge delta. Not safe for concurrent use.
type Maintainer struct {
	f     *gio.File
	n     int
	inSet []bool
	size  int

	addedAdj  map[uint32][]uint32 // symmetric adjacency of inserted edges
	added     map[uint64]struct{} // inserted edges by packed key
	tombstone map[uint64]struct{} // deleted (possibly base) edges
	dirty     bool                // maximality may be violated
	evictions int
}

func edgeKey(u, v uint32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// New creates a maintainer over f starting from the independent set
// initial. The initial set is trusted; call Verify to check it against the
// file.
func New(f *gio.File, initial []bool) (*Maintainer, error) {
	if len(initial) != f.NumVertices() {
		return nil, fmt.Errorf("dynamic: initial set has %d entries for %d vertices",
			len(initial), f.NumVertices())
	}
	m := &Maintainer{
		f:         f,
		n:         f.NumVertices(),
		inSet:     append([]bool(nil), initial...),
		addedAdj:  make(map[uint32][]uint32),
		added:     make(map[uint64]struct{}),
		tombstone: make(map[uint64]struct{}),
	}
	for _, in := range initial {
		if in {
			m.size++
		}
	}
	return m, nil
}

// Size returns the current set size.
func (m *Maintainer) Size() int { return m.size }

// Contains reports set membership.
func (m *Maintainer) Contains(v uint32) bool {
	return int(v) < m.n && m.inSet[v]
}

// Set returns a copy of the membership slice.
func (m *Maintainer) Set() []bool { return append([]bool(nil), m.inSet...) }

// Dirty reports whether maximality may currently be violated (Repair will
// restore it).
func (m *Maintainer) Dirty() bool { return m.dirty }

// Snapshot returns an independent deep copy of the maintainer, for reading
// a frozen delta while the original keeps taking updates — the online
// compaction materializes the fold from a snapshot. The copy scans through
// its own view of the base file (gio.File.WithCounters), so a snapshot scan
// and a concurrent Repair or Verify on the original never race on the
// file's scan state; the shared descriptor is read positionally.
func (m *Maintainer) Snapshot() *Maintainer {
	c := &Maintainer{
		f:         m.f.WithCounters(m.f.Stats()),
		n:         m.n,
		inSet:     append([]bool(nil), m.inSet...),
		size:      m.size,
		addedAdj:  make(map[uint32][]uint32, len(m.addedAdj)),
		added:     make(map[uint64]struct{}, len(m.added)),
		tombstone: make(map[uint64]struct{}, len(m.tombstone)),
		dirty:     m.dirty,
		evictions: m.evictions,
	}
	for u, ns := range m.addedAdj {
		c.addedAdj[u] = append([]uint32(nil), ns...)
	}
	for k := range m.added {
		c.added[k] = struct{}{}
	}
	for k := range m.tombstone {
		c.tombstone[k] = struct{}{}
	}
	return c
}

// Evictions returns how many set vertices were evicted by edge insertions.
func (m *Maintainer) Evictions() int { return m.evictions }

// DeltaEdges returns the number of in-memory delta entries (inserted edges
// plus tombstones) — the maintainer's memory driver.
func (m *Maintainer) DeltaEdges() int { return len(m.added) + len(m.tombstone) }

// InsertEdge adds the undirected edge {u, v} to the graph. If both
// endpoints are in the set, the higher-ID endpoint is evicted immediately,
// keeping invariant 1 with no file access. Self-loops are rejected.
func (m *Maintainer) InsertEdge(u, v uint32) error {
	if err := m.checkIDs(u, v); err != nil {
		return err
	}
	key := edgeKey(u, v)
	if _, dead := m.tombstone[key]; dead {
		// Re-inserting a deleted base edge: drop the tombstone. The edge
		// may or may not exist in the base; recording it in the delta too
		// is harmless (the effective graph is a set union).
		delete(m.tombstone, key)
	}
	if _, ok := m.added[key]; !ok {
		m.added[key] = struct{}{}
		m.addedAdj[u] = append(m.addedAdj[u], v)
		m.addedAdj[v] = append(m.addedAdj[v], u)
	}
	if m.inSet[u] && m.inSet[v] {
		evict := u
		if v > u {
			evict = v
		}
		m.inSet[evict] = false
		m.size--
		m.evictions++
		m.dirty = true // the evictee's other neighbors may now be addable
	}
	return nil
}

// DeleteEdge removes the undirected edge {u, v} from the graph (whether it
// came from the base file or the delta). Deleting an edge can only create
// room for additions, so the set stays independent; maximality is restored
// by Repair.
func (m *Maintainer) DeleteEdge(u, v uint32) error {
	if err := m.checkIDs(u, v); err != nil {
		return err
	}
	key := edgeKey(u, v)
	if _, ok := m.added[key]; ok {
		delete(m.added, key)
		m.addedAdj[u] = removeOne(m.addedAdj[u], v)
		m.addedAdj[v] = removeOne(m.addedAdj[v], u)
	}
	// Tombstone the base edge unconditionally: if the base never had it,
	// the tombstone is inert.
	m.tombstone[key] = struct{}{}
	if !m.inSet[u] || !m.inSet[v] {
		m.dirty = true
	}
	return nil
}

// CheckEdge validates an edge's endpoints (range and self-loop) without
// applying anything — the journal layer validates before it logs, so a
// rejected update is never acknowledged or persisted.
func (m *Maintainer) CheckEdge(u, v uint32) error { return m.checkIDs(u, v) }

// MarkDirty flags maximality as possibly violated. The journal layer uses
// it to carry the dirty flag across a compaction's maintainer swap.
func (m *Maintainer) MarkDirty() { m.dirty = true }

func (m *Maintainer) checkIDs(u, v uint32) error {
	if int(u) >= m.n || int(v) >= m.n {
		return fmt.Errorf("dynamic: edge {%d,%d} out of range for %d vertices", u, v, m.n)
	}
	if u == v {
		return fmt.Errorf("dynamic: self-loop {%d,%d} rejected", u, v)
	}
	return nil
}

func removeOne(s []uint32, x uint32) []uint32 {
	for i, y := range s {
		if y == x {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// effectiveNeighbors merges a base record with the delta: base neighbors
// minus tombstones, plus inserted edges at u.
func (m *Maintainer) effectiveNeighbors(u uint32, base []uint32, buf []uint32) []uint32 {
	buf = buf[:0]
	for _, nb := range base {
		if _, dead := m.tombstone[edgeKey(u, nb)]; !dead {
			buf = append(buf, nb)
		}
	}
	for _, nb := range m.addedAdj[u] {
		// Inserted edges may duplicate surviving base edges; dedup cheaply.
		dup := false
		for _, have := range buf {
			if have == nb {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, nb)
		}
	}
	return buf
}

// ViolationError reports an independence violation Verify found: the edge
// inside the set and the scan position where it surfaced. It is typed —
// mirroring gio.ScanError for I/O failures — so daemon-style callers can
// distinguish data corruption (errors.As *gio.ScanError) from invariant
// violations (errors.As *ViolationError) without string matching.
type ViolationError struct {
	// U, V are the endpoints of the in-set edge.
	U, V uint32
	// Record is the scan position (records delivered, 1-based) at which the
	// violation surfaced.
	Record uint64
}

func (e *ViolationError) Error() string {
	return fmt.Sprintf("dynamic: edge {%d,%d} inside the set (found at scan record %d)", e.U, e.V, e.Record)
}

// Repair restores maximality with one sequential scan: every vertex outside
// the set with no effective IS neighbor joins, in scan order. It returns the
// number of vertices added.
func (m *Maintainer) Repair() (int, error) { return m.RepairCtx(context.Background()) }

// RepairCtx is Repair bound to a context: cancellation stops the scan
// within one batch and surfaces as a *gio.ScanError carrying the position.
// A canceled repair leaves the set independent (additions are monotone) but
// still dirty.
func (m *Maintainer) RepairCtx(ctx context.Context) (int, error) {
	addedCount := 0
	var buf []uint32
	err := m.f.ForEachCtx(ctx, func(r gio.Record) error {
		u := r.ID
		if m.inSet[u] {
			return nil
		}
		buf = m.effectiveNeighbors(u, r.Neighbors, buf)
		for _, nb := range buf {
			if m.inSet[nb] {
				return nil
			}
		}
		m.inSet[u] = true
		m.size++
		addedCount++
		return nil
	})
	if err != nil {
		// The cause is a scan failure (*gio.ScanError for cancellation and
		// positioned I/O errors); %w keeps it reachable through errors.As.
		return addedCount, fmt.Errorf("dynamic: repair: %w", err)
	}
	m.dirty = false
	return addedCount, nil
}

// Verify checks invariant 1 — the set is independent in the effective
// graph — with one sequential scan plus the in-memory delta. A violation
// surfaces as a *ViolationError; a scan failure as the underlying
// (*gio.ScanError-typed) error.
func (m *Maintainer) Verify() error { return m.VerifyCtx(context.Background()) }

// VerifyCtx is Verify bound to a context (see RepairCtx).
func (m *Maintainer) VerifyCtx(ctx context.Context) error {
	var buf []uint32
	var scanned uint64
	return m.f.ForEachCtx(ctx, func(r gio.Record) error {
		scanned++
		if !m.inSet[r.ID] {
			return nil
		}
		buf = m.effectiveNeighbors(r.ID, r.Neighbors, buf)
		for _, nb := range buf {
			if m.inSet[nb] {
				return &ViolationError{U: r.ID, V: nb, Record: scanned}
			}
		}
		// Inserted edges between vertices whose base records carry no trace
		// of each other are covered too: effectiveNeighbors includes the
		// delta at every record.
		return nil
	})
}

// Materialize writes the effective graph to path as a degree-sorted
// adjacency file, so the swap pipeline can re-optimize from scratch once
// the delta has grown past the caller's threshold. The file appears at
// path atomically — written to a temp file, fsynced, then renamed — so an
// error or crash mid-write never leaves a partial file at the destination.
func (m *Maintainer) Materialize(path string) error {
	return m.MaterializeCtx(context.Background(), path)
}

// MaterializeCtx is Materialize bound to a context: cancellation stops the
// scan within one batch, removes the temp file, and leaves the destination
// untouched.
func (m *Maintainer) MaterializeCtx(ctx context.Context, path string) error {
	type rec struct {
		id uint32
		ns []uint32
	}
	recs := make([]rec, 0, m.n)
	var buf []uint32
	err := m.f.ForEachCtx(ctx, func(r gio.Record) error {
		buf = m.effectiveNeighbors(r.ID, r.Neighbors, buf)
		ns := make([]uint32, len(buf))
		copy(ns, buf)
		recs = append(recs, rec{r.ID, ns})
		return nil
	})
	if err != nil {
		return fmt.Errorf("dynamic: materialize: %w", err)
	}
	sort.Slice(recs, func(i, j int) bool {
		if len(recs[i].ns) != len(recs[j].ns) {
			return len(recs[i].ns) < len(recs[j].ns)
		}
		return recs[i].id < recs[j].id
	})
	tmp := path + ".tmp"
	w, err := gio.NewWriter(tmp, gio.FlagDegreeSorted, 0, m.f.Stats())
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := w.Append(r.id, r.ns); err != nil {
			w.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := gio.CommitFile(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
