// Package pipeline implements the pass-graph scan scheduler: the layer
// between the scan engines (gio's sequential engine, exec's parallel
// partitioned executor) and the algorithms (internal/core).
//
// The paper's cost model is the number of sequential scans of the adjacency
// file, so the scheduler's job is to spend as few physical scans as the
// declared work allows. Algorithms stop calling Source.ForEachBatch directly
// and instead register logical passes — small structs declaring a batch
// callback plus what they read and mutate — with a Scheduler, which fuses
// compatible passes into one shared physical scan, invokes the fused batch
// callbacks in declared order on every batch, and accounts the logical and
// physical scan counts separately (gio.Stats.Scans vs PhysicalScans).
//
// Fusion never changes observable results: the planner fuses two passes only
// when their declared access flags prove them independent (at most one of
// them touches shared state, or both only read it), or when a pass
// explicitly declares — via FuseAfter — that it was constructed to tolerate
// a specific predecessor's in-scan mutations (the deferred-write sweep of
// the swap algorithms is the canonical example). Running a Scheduler with
// Unfused set executes every pass as its own physical scan instead; the core
// parity tests hold both modes to bit-identical results.
//
// As a second economy, every physical scan the scheduler runs uses the
// source's opportunistic partition-plan capture when the source offers one,
// so the first full sequential scan of a file leaves the parallel executor's
// cut table behind for free instead of requiring a dedicated planning side
// scan.
package pipeline

import (
	"context"
	"errors"

	"repro/internal/gio"
)

// ErrStopScan, returned from a Pass's Batch callback, tells the scheduler
// the pass needs nothing more from the current physical scan (a verify pass
// that has already found its violation, say). It is not a failure: the
// pass's Done hook still runs, and co-scheduled passes keep receiving
// batches. The physical scan is cut short only once every pass in its group
// has stopped — in which case the aborted scan is not counted in Stats,
// exactly like a consumer abandoning a plain ForEachBatch.
var ErrStopScan = errors.New("pipeline: stop scan")

// Source is the scan engine a scheduler drives: one full sequential pass per
// ForEachBatch call, batches delivered in scan order on the calling
// goroutine. It is structurally identical to core.Source (both *gio.File and
// *exec.Executor satisfy it); pipeline re-declares it to stay below core in
// the layering.
type Source interface {
	NumVertices() int
	Stats() *gio.Counters
	ForEachBatch(fn func([]gio.Record) error) error
	ForEach(fn func(gio.Record) error) error
}

// planCapturingSource is the optional capture capability (gio.File and
// exec.Executor both have it): a scan that also leaves the partition cut
// table behind when none is cached yet.
type planCapturingSource interface {
	ForEachBatchWithPlanCapture(fn func([]gio.Record) error) error
}

// ctxSource is the optional context-aware scan capability (gio.File and
// exec.Executor both have it): the engine itself observes cancellation —
// the sequential engine's prefetcher stops reading ahead, the executor
// drains its worker pool — instead of relying only on the scheduler's
// between-batch checks.
type ctxSource interface {
	ForEachBatchCtx(ctx context.Context, fn func([]gio.Record) error) error
}

// ctxPlanCapturingSource combines both capabilities.
type ctxPlanCapturingSource interface {
	ForEachBatchWithPlanCaptureCtx(ctx context.Context, fn func([]gio.Record) error) error
}

// Pass is one logical pass over the adjacency file: a batch callback plus
// the declaration of what it reads and mutates, which is what the fusion
// planner reasons about.
type Pass struct {
	// Name identifies the pass in errors and in FuseAfter references.
	Name string

	// ReadOnly declares that the pass consumes only the record stream and
	// pass-private storage: it neither reads nor writes any state another
	// pass in the same scheduler run could touch. ReadOnly passes fuse with
	// anything — they cannot observe a co-scheduled pass's mutations.
	ReadOnly bool

	// MutatesStates declares that the pass writes shared per-vertex state
	// (or any other cross-pass-visible structure) during the scan. A
	// mutating pass never fuses with another pass that reads shared state,
	// in either order, unless that pass names it in FuseAfter.
	MutatesStates bool

	// NeedsScanOrder declares that the pass's logic depends on observing
	// records in exact scan order (scan-order preemption, greedy marking).
	// Every physical scan today delivers scan order — the parallel executor
	// merges partitions back — so the flag does not yet constrain the
	// planner; it exists so a future partition-parallel mode knows which
	// passes could consume unmerged partition streams.
	NeedsScanOrder bool

	// DeferredWrites declares that the pass mutates shared state from its
	// Done hook (not during the scan — that is MutatesStates). A pass
	// running after it in a separate scan would observe those writes, so
	// the planner refuses to fuse any later shared-state-touching pass into
	// a deferred writer's scan: fused, that pass would see pre-Done state.
	// The maximality sweep is the canonical deferred writer.
	DeferredWrites bool

	// FuseAfter names a pass this one may share a physical scan with even
	// though the flags alone forbid it, because this pass is implemented to
	// tolerate that specific predecessor's in-scan and deferred mutations
	// (typically by deferring its own decisions to Done). The named pass
	// must precede this one in declaration order. The exemption is
	// one-directional: it does not license this pass's own in-scan
	// mutations against the named pass's reads.
	FuseAfter string

	// Produces names a cross-round state product: shared state this pass
	// mutates during its scan that is complete — every vertex's entry final
	// — once the scan ends. A later-declared pass naming it in Consumes may
	// join this pass's physical scan. The swap algorithms' setup and
	// post-swap passes are the canonical producers (states, ISN sets and ISN
	// preimage counts, all complete at end of scan).
	Produces string

	// Consumes names a product of a co-scheduled pass that this pass's
	// deferred resolution will read. Declaring it is the cross-round fusion
	// edge: this pass belongs logically to the NEXT round, but its Batch
	// rides the producer's physical scan, collecting into pass-private
	// buffers only, and every decision against the product is made after the
	// scan — when the product is complete — via an explicit resolve step in
	// the owning algorithm. The planner therefore admits it into the
	// producer's scan despite the producer's in-scan mutations, and treats it
	// as a deferred writer toward later passes (its resolution mutates shared
	// state after the scan, so a later shared-state pass fused behind it
	// would observe pre-resolve state). A Consumes pass does not count a
	// logical scan when it rides; the resolve step accounts it via
	// ResolveCarried. Like FuseAfter, the exemption never licenses the
	// consumer's own in-scan mutations: a consumer declaring MutatesStates
	// forfeits it.
	Consumes string

	// Batch is invoked for every decoded batch in scan order. Within a fused
	// physical scan, batch callbacks run in declaration order on each batch.
	// A non-nil error aborts the physical scan and the whole run.
	Batch func(batch []gio.Record) error

	// Done, if non-nil, runs after the pass's physical scan completes
	// without error — deferred resolution for passes that must act as if
	// they ran after their scan finished. Within a fused group, Done hooks
	// run in declaration order; the first error aborts the run.
	Done func() error
}

// inert reports whether the pass provably cannot interact with another
// pass's state: declared ReadOnly and not mutating. A pass declaring both
// ReadOnly and MutatesStates contradicts itself; the planner resolves the
// contradiction conservatively, as a mutator.
func (p Pass) inert() bool { return p.ReadOnly && !p.MutatesStates }

// deferredWriter reports whether the pass mutates shared state after its
// scan rather than during it: declared via DeferredWrites (Done-hook
// writers like the maximality sweep) or implied by Consumes (a carried pass
// resolves against the completed product after the scan). Either way, a
// later shared-state pass must not join its scan.
func (p Pass) deferredWriter() bool { return p.DeferredWrites || p.Consumes != "" }

// Fusable reports whether two passes, with a declared before b, may share
// one physical scan under the conservative flag rule alone (FuseAfter
// exemptions are handled by the planner, not here):
//
//   - a must not be a deferred writer unless b is inert: b running in a's
//     scan would see shared state before a's Done applied its writes, while
//     a separate scan would run after them; and
//   - either pass is inert — ReadOnly and non-mutating — so it can neither
//     observe nor disturb the other, or
//   - neither pass mutates shared state (two readers commute).
//
// Everything else — a mutator next to a reader, or two mutators — would let
// one pass observe the other's partial, batch-interleaved writes, which a
// separate scan would never show it.
func Fusable(a, b Pass) bool {
	if a.deferredWriter() && !b.inert() {
		return false
	}
	if a.inert() || b.inert() {
		return true
	}
	return !a.MutatesStates && !b.MutatesStates
}

// Options configure a Scheduler.
type Options struct {
	// Unfused disables fusion: every logical pass runs as its own physical
	// scan, in declaration order. This is the accounting-transparent
	// baseline the parity tests compare fused execution against.
	Unfused bool

	// Ctx cancels scheduler runs: it is checked between physical scans and
	// between batches within a scan, and handed to the scan engine itself
	// when the source is context-aware (so the prefetcher and the parallel
	// executor's workers stop too). A run aborted mid-scan returns the ctx
	// error wrapped in a gio.ScanError carrying the scan position; an
	// aborted scan is not counted in Stats, exactly like a consumer
	// abandoning a plain ForEachBatch. A nil Ctx never cancels.
	Ctx context.Context

	// Progress, when non-nil, observes every physical scan the scheduler
	// runs: after each delivered batch it receives the records delivered so
	// far in the current scan and the file's total record count. Callbacks
	// run synchronously on the scan goroutine — keep them cheap.
	Progress func(records, total uint64)
}

// Scheduler collects logical passes and runs them over one Source.
type Scheduler struct {
	src    Source
	opts   Options
	passes []Pass
}

// New returns an empty scheduler over src.
func New(src Source, opts Options) *Scheduler {
	return &Scheduler{src: src, opts: opts}
}

// Add registers a logical pass. Passes run (and fuse) in registration order.
func (s *Scheduler) Add(p Pass) {
	s.passes = append(s.passes, p)
}

// Plan groups the registered passes into physical scans: each group is a
// maximal run of consecutive passes that are pairwise fusable (or exempted
// via FuseAfter). Declaration order is preserved both across and within
// groups. With Unfused set, every pass is its own group.
func (s *Scheduler) Plan() [][]Pass {
	return PlanFusion(s.passes, s.opts.Unfused)
}

// PlanFusion is Plan on an explicit pass list; exported for the planner's
// fuzz test.
func PlanFusion(passes []Pass, unfused bool) [][]Pass {
	var groups [][]Pass
	for _, p := range passes {
		if unfused || len(groups) == 0 {
			groups = append(groups, []Pass{p})
			continue
		}
		cur := groups[len(groups)-1]
		if joinable(cur, p) {
			groups[len(groups)-1] = append(cur, p)
		} else {
			groups = append(groups, []Pass{p})
		}
	}
	return groups
}

// joinable reports whether p may join the group: p must be fusable with
// every member, where two exemptions cover specific members that precede p
// in the group:
//
//   - FuseAfter names a member whose in-scan and deferred mutations p was
//     constructed to tolerate;
//   - Consumes matches a member's Produces — the cross-round edge: p only
//     collects during the scan and resolves against the member's product
//     after it, when the product is complete.
//
// Both exemptions are one-directional — they waive only the named member's
// writes as observed by p, which is what p's author vouched for; p's own
// in-scan mutations disturbing that member's reads are never waived.
func joinable(group []Pass, p Pass) bool {
	for _, m := range group {
		exempt := (p.FuseAfter != "" && p.FuseAfter == m.Name) ||
			(p.Consumes != "" && p.Consumes == m.Produces)
		if exempt {
			if p.MutatesStates && !m.inert() {
				return false
			}
			continue
		}
		if !Fusable(m, p) {
			return false
		}
	}
	return true
}

// Run plans the registered passes and executes the physical scans in order.
// It returns the first error: a Batch error aborts its physical scan
// immediately (later groups never run), a Done error stops before later Done
// hooks and groups, and a canceled Options.Ctx aborts between scans and
// between batches. On success, every pass's Batch saw every batch and every
// Done ran.
func (s *Scheduler) Run() error {
	for _, group := range s.Plan() {
		if ctx := s.opts.Ctx; ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := s.runGroup(group); err != nil {
			return err
		}
	}
	return nil
}

// runGroup executes one physical scan serving every pass in the group. A
// pass may opt out of the rest of the stream by returning ErrStopScan; the
// scan is cut short once every pass has, sparing the failure paths (a
// verify pass that already has its violation) a full read of the file.
func (s *Scheduler) runGroup(group []Pass) error {
	stopped := make([]bool, len(group))
	remaining := len(group)
	total := uint64(s.src.NumVertices())
	var delivered uint64
	fn := func(batch []gio.Record) error {
		if ctx := s.opts.Ctx; ctx != nil {
			if err := ctx.Err(); err != nil {
				return &gio.ScanError{Records: delivered, Total: total, Err: err}
			}
		}
		for i := range group {
			if stopped[i] {
				continue
			}
			switch err := group[i].Batch(batch); err {
			case nil:
			case ErrStopScan:
				stopped[i] = true
				if remaining--; remaining == 0 {
					return ErrStopScan
				}
			default:
				return err
			}
		}
		delivered += uint64(len(batch))
		if s.opts.Progress != nil {
			s.opts.Progress(delivered, total)
		}
		return nil
	}
	err := s.scan(fn)
	if err != nil && err != ErrStopScan {
		return err
	}
	// The engine counted a completed physical scan as one logical scan; the
	// other fused passes each logically scanned the file too — except
	// carried (Consumes) passes riding their producer's scan, whose logical
	// scan belongs to the round that resolves them and is counted then, by
	// ResolveCarried. A scan every pass cut short is not a completed scan
	// and counted nothing — exactly like a consumer abandoning a plain
	// ForEachBatch mid-file.
	if st := s.src.Stats(); st != nil && err == nil {
		st.AddScans(len(group) - 1 - carriedInGroup(group))
	}
	for i := range group {
		if group[i].Done != nil {
			if err := group[i].Done(); err != nil {
				// Returned verbatim: Done errors are the pass's own verdict
				// (a verify pass's violation, say), not a scheduler failure.
				return err
			}
		}
	}
	return nil
}

// carriedInGroup counts the group's carried passes: Consumes passes riding
// a co-scheduled producer of their product. A Consumes pass stranded in a
// group without its producer (the planner split them apart) ran as an
// ordinary pass of this round and is accounted normally.
func carriedInGroup(group []Pass) int {
	carried := 0
	for i, p := range group {
		if p.Consumes == "" {
			continue
		}
		for j := 0; j < i; j++ {
			if group[j].Produces == p.Consumes {
				carried++
				break
			}
		}
	}
	return carried
}

// ResolveCarried accounts the deferred resolution of a carried (Consumes)
// pass: the logical scan it represents is counted at the moment the owning
// algorithm replays the collected records against the completed product,
// alongside the CarriedScans counter that makes the cross-round fusion
// observable. No physical scan is involved — that is the point.
func ResolveCarried(src Source) {
	if st := src.Stats(); st != nil {
		st.AddScans(1)
		st.AddCarriedScans(1)
	}
}

// scan runs one physical scan, preferring the source's plan-capturing
// variant so the first full scan of a file doubles as its partition-planning
// scan, and the context-aware variants when the run has a context — the
// engine then observes cancellation itself (prefetcher, worker pool), not
// just the scheduler's between-batch checks.
func (s *Scheduler) scan(fn func([]gio.Record) error) error {
	if ctx := s.opts.Ctx; ctx != nil {
		if c, ok := s.src.(ctxPlanCapturingSource); ok {
			return c.ForEachBatchWithPlanCaptureCtx(ctx, fn)
		}
		if c, ok := s.src.(ctxSource); ok {
			return c.ForEachBatchCtx(ctx, fn)
		}
	}
	if c, ok := s.src.(planCapturingSource); ok {
		return c.ForEachBatchWithPlanCapture(fn)
	}
	return s.src.ForEachBatch(fn)
}
