package pipeline

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/gio"
)

// writeTestFile builds a small adjacency file: vertex v is adjacent to v+1.
func writeTestFile(t testing.TB, n int) string {
	return writePipeFile(t, n, false)
}

// writeFooterlessTestFile writes the pre-footer format, for tests of the
// opportunistic plan capture (which footered files never need).
func writeFooterlessTestFile(t testing.TB, n int) string {
	return writePipeFile(t, n, true)
}

func writePipeFile(t testing.TB, n int, footerless bool) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pipe.adj")
	w, err := gio.NewWriter(path, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if footerless {
		w.DisableFooter()
	}
	for v := 0; v < n; v++ {
		var nbrs []uint32
		if v > 0 {
			nbrs = append(nbrs, uint32(v-1))
		}
		if v+1 < n {
			nbrs = append(nbrs, uint32(v+1))
		}
		if err := w.Append(uint32(v), nbrs); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func open(t testing.TB, path string) (*gio.File, *gio.Counters) {
	t.Helper()
	stats := &gio.Counters{}
	f, err := gio.Open(path, 0, stats)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, stats
}

// TestFusionAccounting drives a mutator plus two ReadOnly riders through
// both modes: fused they share one physical scan (three logical), unfused
// they pay three physical scans — and both modes deliver every record to
// every pass in declared order.
func TestFusionAccounting(t *testing.T) {
	const n = 500
	path := writeTestFile(t, n)
	for _, unfused := range []bool{false, true} {
		f, stats := open(t, path)
		var order []string
		counts := map[string]int{}
		pass := func(name string, ro, mut bool) Pass {
			return Pass{
				Name: name, ReadOnly: ro, MutatesStates: mut,
				Batch: func(batch []gio.Record) error {
					if counts[name] == 0 {
						order = append(order, name)
					}
					counts[name] += len(batch)
					return nil
				},
			}
		}
		s := New(f, Options{Unfused: unfused})
		s.Add(pass("mark", false, true))
		s.Add(pass("stats-a", true, false))
		s.Add(pass("stats-b", true, false))
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"mark", "stats-a", "stats-b"} {
			if counts[name] != n {
				t.Fatalf("unfused=%v: pass %s saw %d records, want %d", unfused, name, counts[name], n)
			}
		}
		if len(order) != 3 || order[0] != "mark" || order[1] != "stats-a" || order[2] != "stats-b" {
			t.Fatalf("unfused=%v: first-batch order %v", unfused, order)
		}
		if stats.Snapshot().Scans != 3 {
			t.Fatalf("unfused=%v: logical scans = %d, want 3", unfused, stats.Snapshot().Scans)
		}
		wantPhys := 1
		if unfused {
			wantPhys = 3
		}
		if stats.Snapshot().PhysicalScans != wantPhys {
			t.Fatalf("unfused=%v: physical scans = %d, want %d", unfused, stats.Snapshot().PhysicalScans, wantPhys)
		}
	}
}

// TestIncompatiblePassesSplit checks that a reader of shared state never
// shares a scan with a mutator (in either order) and that two shared-state
// readers do.
func TestIncompatiblePassesSplit(t *testing.T) {
	mut := Pass{Name: "mut", MutatesStates: true}
	rd1 := Pass{Name: "rd1"}
	rd2 := Pass{Name: "rd2"}
	ro := Pass{Name: "ro", ReadOnly: true}

	for _, tc := range []struct {
		name   string
		passes []Pass
		want   int // physical scans
	}{
		{"mut-then-reader", []Pass{mut, rd1}, 2},
		{"reader-then-mut", []Pass{rd1, mut}, 2},
		{"two-mutators", []Pass{mut, {Name: "mut2", MutatesStates: true}}, 2},
		{"two-readers", []Pass{rd1, rd2}, 1},
		{"mut-ro-reader", []Pass{mut, ro, rd1}, 2}, // ro fuses with mut; rd1 cannot
		{"exempted", []Pass{mut, {Name: "deferred", FuseAfter: "mut"}}, 1},
		{"exemption-wrong-target", []Pass{rd1, {Name: "deferred", MutatesStates: true, FuseAfter: "mut"}}, 2},
		// A deferred writer closes its group to everything but inert passes:
		// a later reader would see pre-apply state fused, post-apply unfused.
		{"deferred-writer-then-reader", []Pass{{Name: "dw", DeferredWrites: true}, rd2}, 2},
		{"fused-deferred-writer-then-reader", []Pass{mut, {Name: "dw", DeferredWrites: true, FuseAfter: "mut"}, rd2}, 2},
		{"deferred-writer-then-ro", []Pass{{Name: "dw", DeferredWrites: true}, ro}, 1},
		// The cross-round edge: a Consumes pass joins the scan of the pass
		// producing its product, despite the producer's mutations.
		{"carried-joins-producer", []Pass{
			{Name: "post", MutatesStates: true, Produces: "states"},
			{Name: "carry", Consumes: "states"},
		}, 1},
		// Without a matching producer in the group, a consumer gets no
		// exemption against a mutator.
		{"carried-wrong-product", []Pass{
			{Name: "post", MutatesStates: true, Produces: "states"},
			{Name: "carry", Consumes: "other"},
		}, 2},
		// A consumer that itself mutates shared state forfeits the
		// exemption — its in-scan writes were never vouched for.
		{"carried-mutator-forfeits", []Pass{
			{Name: "post", MutatesStates: true, Produces: "states"},
			{Name: "carry", MutatesStates: true, Consumes: "states"},
		}, 2},
		// A consumer is a deferred writer toward later passes: its resolve
		// mutates shared state after the scan, so a later shared-state pass
		// fused behind it would observe pre-resolve state.
		{"carried-closes-group", []Pass{
			{Name: "post", MutatesStates: true, Produces: "states"},
			{Name: "carry", Consumes: "states"},
			rd1,
		}, 2},
		{"carried-then-ro", []Pass{
			{Name: "post", MutatesStates: true, Produces: "states"},
			{Name: "carry", Consumes: "states"},
			ro,
		}, 1},
	} {
		groups := PlanFusion(tc.passes, false)
		if len(groups) != tc.want {
			t.Errorf("%s: %d physical scans, want %d", tc.name, len(groups), tc.want)
		}
		total := 0
		for _, g := range groups {
			total += len(g)
		}
		if total != len(tc.passes) {
			t.Errorf("%s: plan dropped or duplicated passes: %d of %d", tc.name, total, len(tc.passes))
		}
	}
}

// TestCarriedAccounting drives the cross-round edge end to end: the carried
// pass rides its producer's physical scan without counting a logical scan
// of its own, sees every record after the producer's callback, and its
// logical scan is accounted only when ResolveCarried runs — as a carried,
// physical-scan-free resolution.
func TestCarriedAccounting(t *testing.T) {
	const n = 500
	path := writeTestFile(t, n)
	f, stats := open(t, path)

	collected := 0
	s := New(f, Options{})
	s.Add(Pass{
		Name:          "post",
		Produces:      "states",
		MutatesStates: true,
		Batch:         func(batch []gio.Record) error { return nil },
	})
	s.Add(Pass{
		Name:           "carry",
		Consumes:       "states",
		DeferredWrites: true,
		Batch:          func(batch []gio.Record) error { collected += len(batch); return nil },
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if collected != n {
		t.Fatalf("carried pass collected %d of %d records", collected, n)
	}
	// The scan counts once logically (the producer), once physically; the
	// carried pass has not been accounted yet.
	if stats.Snapshot().Scans != 1 || stats.Snapshot().PhysicalScans != 1 || stats.Snapshot().CarriedScans != 0 {
		t.Fatalf("after collection: %+v, want scans=1 physical=1 carried=0", stats.Snapshot())
	}
	ResolveCarried(f)
	if stats.Snapshot().Scans != 2 || stats.Snapshot().PhysicalScans != 1 || stats.Snapshot().CarriedScans != 1 {
		t.Fatalf("after resolve: %+v, want scans=2 physical=1 carried=1", stats.Snapshot())
	}
}

// TestBatchErrorAborts: an error from a fused pass stops the scan at that
// batch; later passes in the group never see the failing batch's successors
// and Done hooks do not run.
func TestBatchErrorAborts(t *testing.T) {
	path := writeTestFile(t, 300)
	f, _ := open(t, path)
	sentinel := errors.New("boom")
	doneRan := false
	seenAfter := 0
	s := New(f, Options{})
	s.Add(Pass{
		Name: "fails", MutatesStates: true,
		Batch: func(batch []gio.Record) error { return sentinel },
		Done:  func() error { doneRan = true; return nil },
	})
	s.Add(Pass{
		Name: "rider", ReadOnly: true,
		Batch: func(batch []gio.Record) error { seenAfter += len(batch); return nil },
	})
	if err := s.Run(); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if doneRan {
		t.Fatal("Done ran after a Batch error")
	}
	if seenAfter != 0 {
		t.Fatalf("rider saw %d records from the aborted batch onwards", seenAfter)
	}
}

// TestErrStopScan: a lone pass opting out aborts the physical scan (which
// then counts nothing, like any abandoned scan) while its Done still runs; a
// fused partner that has not opted out keeps the scan alive and sees every
// record.
func TestErrStopScan(t *testing.T) {
	const n = 2000
	path := writeTestFile(t, n)

	f, stats := open(t, path)
	doneRan := false
	seen := 0
	s := New(f, Options{})
	s.Add(Pass{
		Name:  "stopper",
		Batch: func(b []gio.Record) error { seen += len(b); return ErrStopScan },
		Done:  func() error { doneRan = true; return nil },
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !doneRan {
		t.Fatal("Done did not run after ErrStopScan")
	}
	if seen == 0 || seen >= n {
		t.Fatalf("lone stopping pass saw %d of %d records, want one batch", seen, n)
	}
	if stats.Snapshot().Scans != 0 || stats.Snapshot().PhysicalScans != 0 {
		t.Fatalf("aborted scan was counted: %+v", stats.Snapshot())
	}

	f2, stats2 := open(t, path)
	total := 0
	s2 := New(f2, Options{})
	s2.Add(Pass{Name: "stop-early", Batch: func(b []gio.Record) error { return ErrStopScan }})
	s2.Add(Pass{Name: "full", Batch: func(b []gio.Record) error { total += len(b); return nil }})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if total != n {
		t.Fatalf("partner pass saw %d of %d records", total, n)
	}
	if snap := stats2.Snapshot(); snap.Scans != 2 || snap.PhysicalScans != 1 {
		t.Fatalf("fused scan accounting: %+v", snap)
	}
}

// TestDoneOrderAndError: Done hooks run in declaration order and the first
// error stops the run verbatim.
func TestDoneOrderAndError(t *testing.T) {
	path := writeTestFile(t, 10)
	f, _ := open(t, path)
	wantErr := errors.New("first verdict")
	var ran []string
	s := New(f, Options{})
	s.Add(Pass{Name: "a", Batch: func([]gio.Record) error { return nil },
		Done: func() error { ran = append(ran, "a"); return wantErr }})
	s.Add(Pass{Name: "b", Batch: func([]gio.Record) error { return nil },
		Done: func() error { ran = append(ran, "b"); return nil }})
	if err := s.Run(); err != wantErr {
		t.Fatalf("err = %v, want the first Done's error verbatim", err)
	}
	if len(ran) != 1 || ran[0] != "a" {
		t.Fatalf("Done order = %v", ran)
	}
}

// TestSchedulerCapturesPlan: on a footerless file (written by a pre-footer
// tool), the scheduler's first physical scan doubles as the
// partition-planning scan. Footered files skip capture entirely — their plan
// loads at Open.
func TestSchedulerCapturesPlan(t *testing.T) {
	path := writeFooterlessTestFile(t, 2000)
	f, _ := open(t, path)
	if f.HasPartitionPlan() {
		t.Fatal("fresh file already has a plan")
	}
	s := New(f, Options{})
	s.Add(Pass{Name: "noop", ReadOnly: true, Batch: func([]gio.Record) error { return nil }})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !f.HasPartitionPlan() {
		t.Fatal("scheduler scan did not capture the partition plan")
	}
}

// FuzzPlanFusion feeds the planner random pass sets with random access
// flags — including the cross-round Produces/Consumes edges — and
// independently re-checks every planned group: no group may pair a
// shared-state mutator with any other shared-state-touching pass unless the
// latter declared the former in FuseAfter or consumes its product; a
// consumer (like a declared deferred writer) closes its group to later
// shared-state passes; order and pass multiset must be preserved; unfused
// plans must be singletons.
func FuzzPlanFusion(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04}, false)
	f.Add([]byte{0x13, 0x05, 0x22, 0x01}, true)
	f.Add([]byte{0xff, 0xfe, 0x80, 0x41, 0x07, 0x09}, false)
	// A producer followed by its consumer, and a consumer of a product
	// nobody in the group produces.
	f.Add([]byte{0x22, 0x40, 0x60, 0xc0}, false)
	f.Fuzz(func(t *testing.T, raw []byte, unfused bool) {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		passes := make([]Pass, len(raw))
		for i, b := range raw {
			passes[i] = Pass{
				Name:           fmt.Sprintf("p%d", i),
				ReadOnly:       b&1 != 0,
				MutatesStates:  b&2 != 0,
				NeedsScanOrder: b&4 != 0,
				DeferredWrites: b&16 != 0,
			}
			// A slice of the byte picks an earlier pass as a FuseAfter
			// target (sometimes a nonexistent or later name, which must not
			// grant an exemption).
			if b&8 != 0 {
				passes[i].FuseAfter = fmt.Sprintf("p%d", int(b>>4))
			}
			// Cross-round edges from the top bits: two product names, so
			// matching and mismatching producer/consumer chains, duplicate
			// producers and stranded consumers all occur.
			if b&32 != 0 {
				passes[i].Produces = fmt.Sprintf("prod%d", int(b>>6)&1)
			}
			if b&64 != 0 {
				passes[i].Consumes = fmt.Sprintf("prod%d", int(b>>7)&1)
			}
		}
		groups := PlanFusion(passes, unfused)

		// Re-derive the safety predicate from scratch (not via Fusable). A
		// pass with contradictory flags (ReadOnly and MutatesStates) must be
		// handled as a mutator that also touches shared state; a consumer is
		// a deferred writer whether or not it also declared it.
		touches := func(p Pass) bool { return !p.ReadOnly || p.MutatesStates }
		defers := func(p Pass) bool { return p.DeferredWrites || p.Consumes != "" }
		idx := 0
		for _, g := range groups {
			if unfused && len(g) != 1 {
				t.Fatalf("unfused plan has a fused group of %d", len(g))
			}
			for i, p := range g {
				if want := passes[idx]; p.Name != want.Name {
					t.Fatalf("plan reordered passes: got %s at position %d, want %s", p.Name, idx, want.Name)
				}
				idx++
				for j := 0; j < i; j++ {
					q := g[j] // q precedes p in the shared scan
					exempt := (p.FuseAfter != "" && p.FuseAfter == q.Name) ||
						(p.Consumes != "" && p.Consumes == q.Produces)
					if exempt {
						// An exemption waives q's in-scan and deferred writes
						// as observed by p — but never p's own mutations
						// against q's reads.
						if p.MutatesStates && touches(q) {
							t.Fatalf("exemption let mutator %s into reader %s's scan", p.Name, q.Name)
						}
						continue
					}
					if defers(q) && touches(p) {
						t.Fatalf("fused deferred writer %s with later shared-state pass %s", q.Name, p.Name)
					}
					if q.MutatesStates && touches(p) {
						t.Fatalf("fused mutator %s with shared-state pass %s", q.Name, p.Name)
					}
					if p.MutatesStates && touches(q) {
						t.Fatalf("fused shared-state pass %s with later mutator %s", q.Name, p.Name)
					}
				}
			}
		}
		if idx != len(passes) {
			t.Fatalf("plan covers %d of %d passes", idx, len(passes))
		}
	})
}
