package server

import (
	"context"
	"fmt"
	"sync"
)

// operation is one background solve: pollable status plus a buffered event
// feed that SSE subscribers replay and then follow live. The events a
// long solve emits (per-round, throttled per-scan heartbeats) ride the
// existing OnRound/OnProgress solver hooks.
type operation struct {
	id        string
	kind      string
	graph     string
	algorithm string
	cancel    context.CancelFunc

	mu     sync.Mutex
	status string // running, done, error, canceled
	events []Event
	subs   map[chan Event]struct{}
	result *SolveResponse
	apiErr *APIError
}

const (
	opRunning  = "running"
	opDone     = "done"
	opError    = "error"
	opCanceled = "canceled"
)

// maxOpEvents bounds one operation's replay buffer; past it, progress
// heartbeats are dropped from the buffer (round and terminal events are
// always kept — they are bounded by the round count).
const maxOpEvents = 4096

// emit appends ev to the buffer and fans it out. A subscriber too slow to
// drain its channel misses heartbeats rather than blocking the solve.
func (o *operation) emit(ev Event) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.events) < maxOpEvents || ev.Type != "progress" {
		o.events = append(o.events, ev)
	}
	for ch := range o.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// finish records the terminal state and emits the terminal event.
func (o *operation) finish(res *SolveResponse, apiErr *APIError, canceled bool) {
	o.mu.Lock()
	switch {
	case canceled:
		o.status = opCanceled
	case apiErr != nil:
		o.status = opError
	default:
		o.status = opDone
	}
	o.result, o.apiErr = res, apiErr
	o.mu.Unlock()
	if apiErr != nil {
		o.emit(Event{Type: "error", Error: apiErr})
	} else {
		ev := Event{Type: "done"}
		if res != nil {
			ev.Size = res.Size
		}
		o.emit(ev)
	}
}

// subscribe returns a channel that replays the buffered events and then
// receives live ones, plus an unsubscribe func. The caller owns draining.
func (o *operation) subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 256)
	o.mu.Lock()
	replay := append([]Event(nil), o.events...)
	o.subs[ch] = struct{}{}
	o.mu.Unlock()
	out := make(chan Event, 256)
	done := make(chan struct{})
	go func() {
		defer close(out)
		for _, ev := range replay {
			select {
			case out <- ev:
			case <-done:
				return
			}
			if ev.Type == "done" || ev.Type == "error" {
				return
			}
		}
		for {
			select {
			case ev := <-ch:
				select {
				case out <- ev:
				case <-done:
					return
				}
				if ev.Type == "done" || ev.Type == "error" {
					return
				}
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	unsub := func() {
		once.Do(func() {
			o.mu.Lock()
			delete(o.subs, ch)
			o.mu.Unlock()
			close(done)
		})
	}
	return out, unsub
}

func (o *operation) info() OperationInfo {
	o.mu.Lock()
	defer o.mu.Unlock()
	return OperationInfo{
		ID:        o.id,
		Kind:      o.kind,
		Graph:     o.graph,
		Algorithm: o.algorithm,
		Status:    o.status,
		Result:    o.result,
		Error:     o.apiErr,
	}
}

// opStore retains the most recent background operations; completed ones
// past the bound are dropped oldest-first (a running op is never dropped).
type opStore struct {
	mu    sync.Mutex
	seq   uint64
	ops   map[string]*operation
	order []string
	max   int
}

func newOpStore(max int) *opStore {
	if max <= 0 {
		max = 128
	}
	return &opStore{ops: make(map[string]*operation), max: max}
}

func (st *opStore) add(kind, graph, algorithm string, cancel context.CancelFunc) *operation {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	op := &operation{
		id:        fmt.Sprintf("op-%d", st.seq),
		kind:      kind,
		graph:     graph,
		algorithm: algorithm,
		cancel:    cancel,
		status:    opRunning,
		subs:      make(map[chan Event]struct{}),
	}
	st.ops[op.id] = op
	st.order = append(st.order, op.id)
	for len(st.order) > st.max {
		dropped := false
		for i, id := range st.order {
			o := st.ops[id]
			o.mu.Lock()
			running := o.status == opRunning
			o.mu.Unlock()
			if !running {
				delete(st.ops, id)
				st.order = append(st.order[:i], st.order[i+1:]...)
				dropped = true
				break
			}
		}
		if !dropped {
			break // everything retained is still running
		}
	}
	return op
}

func (st *opStore) get(id string) (*operation, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	op, ok := st.ops[id]
	return op, ok
}

func (st *opStore) list() []OperationInfo {
	st.mu.Lock()
	ids := append([]string(nil), st.order...)
	st.mu.Unlock()
	out := make([]OperationInfo, 0, len(ids))
	for _, id := range ids {
		if op, ok := st.get(id); ok {
			out = append(out, op.info())
		}
	}
	return out
}

func (st *opStore) stats() OpsStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := OpsStats{Retained: len(st.ops)}
	for _, op := range st.ops {
		op.mu.Lock()
		if op.status == opRunning {
			s.Running++
		}
		op.mu.Unlock()
	}
	return s
}
