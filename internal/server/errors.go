package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	mis "repro"
	"repro/internal/dynamic"
	"repro/internal/gio"
	"repro/internal/wal"
)

// Stable API error codes. Clients dispatch on these, never on message
// strings: messages are for humans and may change, codes may not.
const (
	CodeNotFound        = "not_found"        // unknown graph or operation
	CodeInvalidArgument = "invalid_argument" // malformed request
	CodeNilArgument     = "nil_argument"     // nil where a value is required
	CodeTimeout         = "timeout"          // request deadline exceeded
	CodeCanceled        = "canceled"         // request canceled
	CodeOverloaded      = "overloaded"       // solve capacity and queue full
	CodeScanAborted     = "scan_aborted"     // a scan stopped mid-file
	CodeBadGraph        = "bad_graph"        // malformed adjacency file
	CodeJournalCorrupt  = "journal_corrupt"  // journal damage before the tail
	CodeJournalPoisoned = "journal_poisoned" // journal rejected writes after an ambiguous flip
	CodeVerifyFailed    = "verify_failed"    // result failed verification
	CodeInternal        = "internal"         // everything else; details in the daemon log
)

// APIError is the wire form of every daemon failure: a stable code, a
// human-oriented message, and optional structured detail. Internal error
// types — gio scan errors, wal journal errors — are translated here and
// never serialized verbatim: messages contain no absolute paths and no Go
// type noise, because clients on the other side of a socket must not
// depend on (or be shown) the daemon's filesystem layout.
type APIError struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Detail  map[string]any `json:"detail,omitempty"`
}

func (e *APIError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

type errorResponse struct {
	Error *APIError `json:"error"`
}

// apiError classifies err into an HTTP status and a sanitized APIError.
func apiError(err error) (int, *APIError) {
	var ae *APIError
	if errors.As(err, &ae) {
		return statusFor(ae.Code), ae
	}

	var nilArg *mis.NilArgumentError
	if errors.As(err, &nilArg) {
		return http.StatusBadRequest, &APIError{
			Code:    CodeNilArgument,
			Message: fmt.Sprintf("%s: nil %s", nilArg.Method, nilArg.Arg),
		}
	}
	if errors.Is(err, mis.ErrNilArgument) {
		return http.StatusBadRequest, &APIError{Code: CodeNilArgument, Message: "nil argument"}
	}
	if errors.Is(err, errOverloaded) {
		return http.StatusTooManyRequests, &APIError{
			Code:    CodeOverloaded,
			Message: "solve capacity exhausted and queue full; retry later",
		}
	}
	if errors.Is(err, mis.ErrBaselineOnSorted) {
		return http.StatusBadRequest, &APIError{
			Code:    CodeInvalidArgument,
			Message: "baseline requested on a degree-sorted graph; set baseline_on_sorted to opt in",
		}
	}

	// Deadline and cancellation, with the scan position when a scan was cut
	// (gio.ScanError unwraps to the ctx error, so check the cause first).
	scanDetail := map[string]any(nil)
	var se *gio.ScanError
	if errors.As(err, &se) {
		scanDetail = map[string]any{"records": se.Records, "total": se.Total}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout, &APIError{
			Code: CodeTimeout, Message: "request deadline exceeded", Detail: scanDetail,
		}
	}
	if errors.Is(err, context.Canceled) {
		return http.StatusRequestTimeout, &APIError{
			Code: CodeCanceled, Message: "request canceled", Detail: scanDetail,
		}
	}

	if errors.Is(err, gio.ErrBadFormat) {
		return http.StatusInternalServerError, &APIError{
			Code: CodeBadGraph, Message: "malformed adjacency file",
		}
	}
	var ce *wal.CorruptError
	if errors.As(err, &ce) {
		return http.StatusInternalServerError, &APIError{
			Code:    CodeJournalCorrupt,
			Message: "journal record corrupt",
			Detail:  map[string]any{"offset": ce.Offset, "reason": ce.Reason},
		}
	}
	var ve *dynamic.ViolationError
	if errors.As(err, &ve) {
		return http.StatusConflict, &APIError{
			Code:    CodeVerifyFailed,
			Message: "independence violated",
			Detail:  map[string]any{"u": ve.U, "v": ve.V},
		}
	}
	if se != nil {
		return http.StatusInternalServerError, &APIError{
			Code: CodeScanAborted, Message: "scan aborted mid-file", Detail: scanDetail,
		}
	}

	// Unknown internals stay inside: stable code, generic message. The
	// daemon logs the real error next to the request.
	return http.StatusInternalServerError, &APIError{Code: CodeInternal, Message: "internal error"}
}

func statusFor(code string) int {
	switch code {
	case CodeNotFound:
		return http.StatusNotFound
	case CodeInvalidArgument, CodeNilArgument:
		return http.StatusBadRequest
	case CodeTimeout:
		return http.StatusGatewayTimeout
	case CodeCanceled:
		return http.StatusRequestTimeout
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeVerifyFailed:
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// writeError serializes err as the standard error envelope and logs
// unclassified internals server-side, where the path-laden detail belongs.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	status, ae := apiError(err)
	if ae.Code == CodeInternal {
		s.logf("misd: %s %s: %v", r.Method, r.URL.Path, err)
	}
	writeJSON(w, status, errorResponse{Error: ae})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// notFound and invalid build typed request-level failures.
func notFound(what, name string) *APIError {
	return &APIError{Code: CodeNotFound, Message: fmt.Sprintf("unknown %s %q", what, name)}
}

func invalid(format string, args ...any) *APIError {
	return &APIError{Code: CodeInvalidArgument, Message: fmt.Sprintf(format, args...)}
}
