// Package server implements misd, the graph-solver daemon: a REST API over
// a unix or TCP socket that serves solve / verify / stat / bound / color
// requests for a registry of adjacency files to many concurrent clients.
//
// Three mechanisms turn the Solver library into a multi-tenant service:
//
//   - A result cache (internal/cache) keyed by (file content digest,
//     algorithm, options), with singleflight deduplication: concurrent
//     identical requests share one underlying solve, and repeated ones are
//     map lookups. The digest key makes invalidation automatic — a journal
//     compaction flips to a new base generation, whose digest differs, so
//     stale entries simply stop being addressed and age out of the LRU.
//   - Admission control: a bounded solve semaphore plus a bounded wait
//     queue; requests beyond both get 429 immediately. Only work that will
//     scan a file passes the gate — cache hits bypass it.
//   - Per-request deadlines riding the Solver's context plumbing: a
//     timeout_ms (or the daemon default) cancels a solve within one decoded
//     batch, and the expired request detaches from a shared solve without
//     killing it for the other waiters.
//
// Long solves can run as background operations with pollable status and an
// SSE event feed of per-round progress (GET /v1/operations/{id}/events).
package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	mis "repro"
	"repro/internal/cache"
)

// Config parameterizes New. The zero value of every knob selects a default.
type Config struct {
	// Registry holds the graphs the daemon serves. Required.
	Registry *mis.Registry
	// MaxSolves bounds concurrently executing solves (0 = GOMAXPROCS).
	MaxSolves int
	// MaxQueue bounds solves waiting for a slot (0 = 64, negative = none:
	// anything beyond MaxSolves is refused immediately).
	MaxQueue int
	// CacheEntries bounds the result cache (0 = 256).
	CacheEntries int
	// DefaultTimeout bounds requests that set no timeout_ms (0 = unlimited).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (0 = uncapped).
	MaxTimeout time.Duration
	// Workers is the per-solve scan parallelism (see mis.Workers; 0 = the
	// file's default).
	Workers int
	// MaxOps bounds retained background operations (0 = 128).
	MaxOps int
	// Logf, when set, receives daemon log lines (unclassified internal
	// errors, lifecycle events).
	Logf func(format string, args ...any)
}

// Server is the misd daemon core: an http.Handler plus the solve cache,
// admission gate and background-operation store behind it.
type Server struct {
	cfg      Config
	reg      *mis.Registry
	cache    *cache.Cache[any]
	adm      *admission
	ops      *opStore
	baseCtx  context.Context
	shutdown context.CancelFunc
	started  time.Time
	closed   atomic.Bool
}

// testSolveGate, when set, is called by every executed (non-cached) solve
// while it holds its admission slot — the test seam that lets the suite
// hold a solve open deterministically. Atomic because a detached solve can
// still be running when the test that installed the gate clears it.
var testSolveGate atomic.Pointer[func(graph string)]

// New builds a Server over cfg.Registry. Call Close (or Shutdown) when
// done; it cancels every in-flight solve and background operation.
func New(cfg Config) *Server {
	if cfg.MaxSolves <= 0 {
		cfg.MaxSolves = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.MaxQueue == 0:
		cfg.MaxQueue = 64
	case cfg.MaxQueue < 0:
		cfg.MaxQueue = 0
	}
	base, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:      cfg,
		reg:      cfg.Registry,
		cache:    cache.New[any](base, cfg.CacheEntries),
		adm:      newAdmission(cfg.MaxSolves, cfg.MaxQueue),
		ops:      newOpStore(cfg.MaxOps),
		baseCtx:  base,
		shutdown: cancel,
		started:  time.Now(),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	mux.HandleFunc("GET /v1/graphs/{name}", s.handleGraph)
	mux.HandleFunc("GET /v1/graphs/{name}/bound", s.handleBound)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/color", s.handleColor)
	mux.HandleFunc("GET /v1/operations", s.handleOps)
	mux.HandleFunc("GET /v1/operations/{id}", s.handleOp)
	mux.HandleFunc("GET /v1/operations/{id}/events", s.handleOpEvents)
	mux.HandleFunc("DELETE /v1/operations/{id}", s.handleOpCancel)
	return mux
}

// Serve runs an HTTP server for the daemon on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	go func() {
		<-s.baseCtx.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	err := srv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Close cancels every in-flight solve and operation and stops Serve loops.
// The registry is the caller's to close.
func (s *Server) Close() error {
	if s.closed.CompareAndSwap(false, true) {
		s.shutdown()
	}
	return nil
}

// ---- request plumbing ----

// requestCtx applies the effective deadline: the client's timeout_ms,
// bounded by MaxTimeout, defaulting to DefaultTimeout.
func (s *Server) requestCtx(ctx context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := time.Duration(timeoutMS) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (d <= 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

func (s *Server) entry(name string) (*mis.RegistryEntry, *APIError) {
	if name == "" {
		return nil, invalid("missing graph name")
	}
	e, ok := s.reg.Get(name)
	if !ok {
		return nil, notFound("graph", name)
	}
	return e, nil
}

// digestOf pins the entry's current generation just long enough to read its
// content digest (cached per open file after the first computation).
func digestOf(ctx context.Context, e *mis.RegistryEntry) (string, error) {
	f, release := e.Acquire()
	defer release()
	return f.ContentDigest(ctx)
}

func decodeBody(r *http.Request, v any) *APIError {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return invalid("bad request body: %v", err)
	}
	return nil
}

// ---- solve ----

var algorithms = map[string]bool{
	string(mis.AlgGreedy): true, string(mis.AlgBaseline): true,
	string(mis.AlgOneKSwap): true, string(mis.AlgTwoKSwap): true,
	string(mis.AlgDynamicUpdate): true, string(mis.AlgExternalMaximal): true,
	"randomized": true,
}

// solveKey builds the cache key: graph identity by content, algorithm, and
// every result-affecting option. Scan parallelism is deliberately excluded
// — results are bit-identical for any worker count.
func solveKey(digest string, req *SolveRequest) string {
	return fmt.Sprintf("solve|%s|%s|mr=%d|es=%d|seed=%d", digest, req.Algorithm, req.MaxRounds, req.EarlyStop, req.Seed)
}

// cachedSolve is the cache value for a solve key. The result is shared by
// every request that hits the entry: treat it as immutable.
type cachedSolve struct {
	res       *mis.Result
	digest    string
	elapsedMS int64
	verified  atomic.Bool
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if ae := decodeBody(r, &req); ae != nil {
		s.writeError(w, r, ae)
		return
	}
	if !algorithms[req.Algorithm] {
		s.writeError(w, r, invalid("unknown algorithm %q", req.Algorithm))
		return
	}
	e, ae := s.entry(req.Graph)
	if ae != nil {
		s.writeError(w, r, ae)
		return
	}

	if req.Async {
		s.startSolveOp(w, r, e, &req)
		return
	}

	ctx, cancel := s.requestCtx(r.Context(), req.TimeoutMS)
	defer cancel()
	resp, err := s.solve(ctx, e, &req, nil)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// solve answers one solve request through the cache; events, when non-nil,
// receives round/progress events if this request ends up executing the
// solve (a request deduplicated onto an in-flight solve only observes
// completion).
func (s *Server) solve(ctx context.Context, e *mis.RegistryEntry, req *SolveRequest, events func(Event)) (*SolveResponse, error) {
	digest, err := digestOf(ctx, e)
	if err != nil {
		return nil, err
	}
	fn := func(cctx context.Context) (any, error) { return s.executeSolve(cctx, e, req, events) }

	var (
		v       any
		outcome cache.Outcome
	)
	if req.NoCache {
		v, err = fn(ctx)
		outcome = cache.Miss
	} else {
		v, outcome, err = s.cache.Do(ctx, solveKey(digest, req), fn)
	}
	if err != nil {
		return nil, err
	}
	cs := v.(*cachedSolve)

	verified := cs.verified.Load()
	if req.Verify && !verified {
		if err := s.verifyResult(ctx, e, cs.res); err != nil {
			return nil, err
		}
		cs.verified.Store(true)
		verified = true
	}

	resp := &SolveResponse{
		Graph:       e.Name(),
		Algorithm:   req.Algorithm,
		Digest:      cs.digest,
		Size:        cs.res.Size,
		Rounds:      cs.res.Rounds,
		RoundGains:  cs.res.RoundGains,
		MemoryBytes: cs.res.MemoryBytes,
		IO:          ioStats(cs.res.IO),
		Verified:    verified && req.Verify,
		Cache:       outcome.String(),
		ElapsedMS:   cs.elapsedMS,
	}
	if req.IncludeVertices {
		resp.Vertices = cs.res.Vertices()
	}
	return resp, nil
}

// executeSolve is the cache-miss path: the one goroutine that actually
// scans. It passes admission, pins the entry's current generation, and runs
// the algorithm with the solver's event hooks wired to the sink.
func (s *Server) executeSolve(ctx context.Context, e *mis.RegistryEntry, req *SolveRequest, events func(Event)) (any, error) {
	if err := s.adm.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.adm.release()
	if gate := testSolveGate.Load(); gate != nil {
		(*gate)(e.Name())
	}

	f, release := e.Acquire()
	defer release()

	opts := []mis.SolverOption{
		mis.MaxRounds(req.MaxRounds),
		mis.EarlyStop(req.EarlyStop),
		mis.Workers(s.cfg.Workers),
	}
	if req.BaselineOnSorted {
		opts = append(opts, mis.BaselineOnSorted())
	}
	if events != nil {
		opts = append(opts,
			mis.OnRound(func(ev mis.RoundEvent) {
				events(Event{Type: "round", Round: ev.Round, Gain: ev.Gain, Size: ev.Size})
			}),
			mis.OnProgress(progressThrottle(events)),
		)
	}
	solver := mis.NewSolver(f, opts...)

	start := time.Now()
	var (
		res *mis.Result
		err error
	)
	if req.Algorithm == "randomized" {
		res, err = solver.RandomizedMaximal(ctx, req.Seed)
	} else {
		res, err = solver.Solve(ctx, mis.Algorithm(req.Algorithm))
	}
	if err != nil {
		return nil, err
	}
	// The digest of the generation actually solved: under a rare race with
	// a concurrent compaction it may differ from the key's digest, and the
	// response reports the truth (the stale key can never be addressed
	// again — new requests compute the new digest).
	digest, err := f.ContentDigest(ctx)
	if err != nil {
		return nil, err
	}
	return &cachedSolve{res: res, digest: digest, elapsedMS: time.Since(start).Milliseconds()}, nil
}

// progressThrottle converts scan progress to events at ~1% granularity so
// an SSE feed is a heartbeat, not a firehose.
func progressThrottle(events func(Event)) func(mis.ScanProgress) {
	var lastPct atomic.Int64
	return func(p mis.ScanProgress) {
		pct := int64(p.Percent())
		if prev := lastPct.Load(); pct != prev && lastPct.CompareAndSwap(prev, pct) {
			events(Event{Type: "progress", Records: p.Records, Total: p.Total})
		}
	}
}

// verifyResult runs the fused verify scan for a solve that asked for it.
func (s *Server) verifyResult(ctx context.Context, e *mis.RegistryEntry, res *mis.Result) error {
	if err := s.adm.acquire(ctx); err != nil {
		return err
	}
	defer s.adm.release()
	f, release := e.Acquire()
	defer release()
	return mis.NewSolver(f, mis.Workers(s.cfg.Workers)).Verify(ctx, res)
}

// startSolveOp runs the solve as a background operation.
func (s *Server) startSolveOp(w http.ResponseWriter, r *http.Request, e *mis.RegistryEntry, req *SolveRequest) {
	ctx, cancel := s.requestCtx(s.baseCtx, req.TimeoutMS)
	op := s.ops.add("solve", e.Name(), req.Algorithm, cancel)
	go func() {
		defer cancel()
		resp, err := s.solve(ctx, e, req, op.emit)
		if err != nil {
			_, ae := apiError(err)
			if ae.Code == CodeInternal {
				s.logf("misd: operation %s: %v", op.id, err)
			}
			op.finish(nil, ae, errors.Is(err, context.Canceled))
			return
		}
		op.finish(resp, nil, false)
	}()
	writeJSON(w, http.StatusAccepted, OperationRef{Operation: op.id})
}

// ---- verify ----

// cachedVerify is the cache value for a verify key: the verdict is
// deterministic for (digest, vertex set), failures included.
type cachedVerify struct {
	ok     bool
	reason string
	digest string
}

func verifyKey(digest string, vertices []uint32) string {
	h := sha256.New()
	var buf [4]byte
	for _, v := range vertices {
		binary.LittleEndian.PutUint32(buf[:], v)
		h.Write(buf[:])
	}
	return fmt.Sprintf("verify|%s|%s", digest, hex.EncodeToString(h.Sum(nil)))
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if ae := decodeBody(r, &req); ae != nil {
		s.writeError(w, r, ae)
		return
	}
	e, ae := s.entry(req.Graph)
	if ae != nil {
		s.writeError(w, r, ae)
		return
	}
	ctx, cancel := s.requestCtx(r.Context(), req.TimeoutMS)
	defer cancel()

	digest, err := digestOf(ctx, e)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	v, outcome, err := s.cache.Do(ctx, verifyKey(digest, req.Vertices), func(cctx context.Context) (any, error) {
		return s.executeVerify(cctx, e, req.Vertices)
	})
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	cv := v.(*cachedVerify)
	writeJSON(w, http.StatusOK, VerifyResponse{
		Graph:  e.Name(),
		Digest: cv.digest,
		OK:     cv.ok,
		Reason: cv.reason,
		Cache:  outcome.String(),
	})
}

func (s *Server) executeVerify(ctx context.Context, e *mis.RegistryEntry, vertices []uint32) (any, error) {
	if err := s.adm.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.adm.release()
	f, release := e.Acquire()
	defer release()

	inSet := make([]bool, f.NumVertices())
	for _, v := range vertices {
		if int(v) >= len(inSet) {
			return nil, invalid("vertex %d out of range (graph has %d vertices)", v, len(inSet))
		}
		inSet[v] = true
	}
	res := &mis.Result{InSet: inSet, Size: len(vertices)}
	digest, err := f.ContentDigest(ctx)
	if err != nil {
		return nil, err
	}
	err = mis.NewSolver(f, mis.Workers(s.cfg.Workers)).Verify(ctx, res)
	if err == nil {
		return &cachedVerify{ok: true, digest: digest}, nil
	}
	// A deadline, cancellation or I/O failure is this request's problem; a
	// verification verdict is a cacheable fact about (graph, set).
	if _, ae := apiError(err); ae.Code != CodeInternal && ae.Code != CodeVerifyFailed {
		return nil, err
	}
	return &cachedVerify{ok: false, reason: err.Error(), digest: digest}, nil
}

// ---- color and bound ----

type cachedColor struct {
	col       *mis.Coloring
	digest    string
	elapsedMS int64
}

func (s *Server) handleColor(w http.ResponseWriter, r *http.Request) {
	var req ColorRequest
	if ae := decodeBody(r, &req); ae != nil {
		s.writeError(w, r, ae)
		return
	}
	e, ae := s.entry(req.Graph)
	if ae != nil {
		s.writeError(w, r, ae)
		return
	}
	ctx, cancel := s.requestCtx(r.Context(), req.TimeoutMS)
	defer cancel()

	digest, err := digestOf(ctx, e)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	key := fmt.Sprintf("color|%s|mc=%d", digest, req.MaxColors)
	v, outcome, err := s.cache.Do(ctx, key, func(cctx context.Context) (any, error) {
		if err := s.adm.acquire(cctx); err != nil {
			return nil, err
		}
		defer s.adm.release()
		f, release := e.Acquire()
		defer release()
		d, err := f.ContentDigest(cctx)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		col, err := mis.NewSolver(f, mis.Workers(s.cfg.Workers)).ColorByIS(cctx, req.MaxColors)
		if err != nil {
			return nil, err
		}
		return &cachedColor{col: col, digest: d, elapsedMS: time.Since(start).Milliseconds()}, nil
	})
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	cc := v.(*cachedColor)
	writeJSON(w, http.StatusOK, ColorResponse{
		Graph:      e.Name(),
		Digest:     cc.digest,
		NumColors:  cc.col.NumColors,
		ClassSizes: cc.col.ClassSizes,
		Cache:      outcome.String(),
		ElapsedMS:  cc.elapsedMS,
	})
}

type cachedBound struct {
	upper  uint64
	wei    float64
	digest string
}

func (s *Server) handleBound(w http.ResponseWriter, r *http.Request) {
	e, ae := s.entry(r.PathValue("name"))
	if ae != nil {
		s.writeError(w, r, ae)
		return
	}
	ctx, cancel := s.requestCtx(r.Context(), 0)
	defer cancel()

	digest, err := digestOf(ctx, e)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	v, outcome, err := s.cache.Do(ctx, "bound|"+digest, func(cctx context.Context) (any, error) {
		if err := s.adm.acquire(cctx); err != nil {
			return nil, err
		}
		defer s.adm.release()
		f, release := e.Acquire()
		defer release()
		d, err := f.ContentDigest(cctx)
		if err != nil {
			return nil, err
		}
		solver := mis.NewSolver(f, mis.Workers(s.cfg.Workers))
		upper, err := solver.UpperBound(cctx)
		if err != nil {
			return nil, err
		}
		wei, err := solver.WeiBound(cctx)
		if err != nil {
			return nil, err
		}
		return &cachedBound{upper: upper, wei: wei, digest: d}, nil
	})
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	cb := v.(*cachedBound)
	writeJSON(w, http.StatusOK, BoundResponse{
		Graph:  e.Name(),
		Digest: cb.digest,
		Upper:  cb.upper,
		Wei:    cb.wei,
		Cache:  outcome.String(),
	})
}

// ---- stat and status ----

func (s *Server) graphInfo(ctx context.Context, e *mis.RegistryEntry) (*GraphInfo, error) {
	f, release := e.Acquire()
	defer release()
	digest, err := f.ContentDigest(ctx)
	if err != nil {
		return nil, err
	}
	size, err := f.SizeBytes()
	if err != nil {
		return nil, err
	}
	gi := &GraphInfo{
		Name:         e.Name(),
		Vertices:     f.NumVertices(),
		Edges:        f.NumEdges(),
		AvgDegree:    f.AvgDegree(),
		DegreeSorted: f.DegreeSorted(),
		SizeBytes:    size,
		Digest:       digest,
		IO:           ioStats(f.Stats()),
	}
	if j := e.Journal(); j != nil {
		st := j.Stats()
		gi.Journal = &JournalInfo{
			Generation:     st.Generation,
			DeltaEdges:     st.DeltaEdges,
			JournalEdges:   st.JournalEdges,
			DurableRecords: st.DurableRecords,
			SetSize:        st.SetSize,
			Dirty:          st.Dirty,
		}
	}
	if f.Sharded() {
		digests, err := f.ShardDigests(ctx)
		if err != nil {
			return nil, err
		}
		gi.Shards = &ShardInfo{
			Count:      f.NumShards(),
			TotalBytes: size,
			Digests:    digests,
		}
	}
	return gi, nil
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestCtx(r.Context(), 0)
	defer cancel()
	var out []*GraphInfo
	for _, name := range s.reg.Names() {
		e, ok := s.reg.Get(name)
		if !ok {
			continue
		}
		gi, err := s.graphInfo(ctx, e)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		out = append(out, gi)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	e, ae := s.entry(r.PathValue("name"))
	if ae != nil {
		s.writeError(w, r, ae)
		return
	}
	ctx, cancel := s.requestCtx(r.Context(), 0)
	defer cancel()
	gi, err := s.graphInfo(ctx, e)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, gi)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	writeJSON(w, http.StatusOK, StatusResponse{
		Graphs: s.reg.Names(),
		Cache: CacheStats{
			Entries: cs.Entries, Inflight: cs.Inflight,
			Hits: cs.Hits, Misses: cs.Misses, Shared: cs.Shared, Evictions: cs.Evictions,
		},
		Solves:     s.adm.stats(),
		Operations: s.ops.stats(),
		UptimeMS:   time.Since(s.started).Milliseconds(),
	})
}

// ---- operations ----

func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ops.list())
}

func (s *Server) handleOp(w http.ResponseWriter, r *http.Request) {
	op, ok := s.ops.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, r, notFound("operation", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, op.info())
}

func (s *Server) handleOpCancel(w http.ResponseWriter, r *http.Request) {
	op, ok := s.ops.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, r, notFound("operation", r.PathValue("id")))
		return
	}
	op.cancel()
	writeJSON(w, http.StatusOK, op.info())
}

// handleOpEvents streams the operation's event feed as SSE: buffered events
// replay first, then live ones until the terminal done/error event.
func (s *Server) handleOpEvents(w http.ResponseWriter, r *http.Request) {
	op, ok := s.ops.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, r, notFound("operation", r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, r, invalid("streaming unsupported by transport"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	events, unsub := op.subscribe()
	defer unsub()
	for {
		select {
		case ev, open := <-events:
			if !open {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
