package server

import mis "repro"

// Wire types of the misd REST API. Every field uses stable snake_case JSON
// names: clients (misctl included) and the daemon agree on this file.

// SolveRequest asks for an independent set on a registered graph.
//
// POST /v1/solve
type SolveRequest struct {
	// Graph is the registry name of the graph to solve.
	Graph string `json:"graph"`
	// Algorithm is one of greedy, baseline, one-k-swap, two-k-swap,
	// dynamic-update, external-maximal, randomized.
	Algorithm string `json:"algorithm"`
	// MaxRounds caps swap rounds (0 = until convergence).
	MaxRounds int `json:"max_rounds,omitempty"`
	// EarlyStop stops swaps after a fixed number of rounds (0 = off).
	EarlyStop int `json:"early_stop,omitempty"`
	// Seed seeds the randomized algorithm.
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMS bounds this request (0 = the daemon's default). The daemon
	// may cap it; expiry returns code "timeout".
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// BaselineOnSorted opts in to running the baseline on a degree-sorted
	// file (see mis.BaselineOnSorted).
	BaselineOnSorted bool `json:"baseline_on_sorted,omitempty"`
	// Verify additionally checks independence and maximality of the result
	// (one fused scan, memoized per cached result).
	Verify bool `json:"verify,omitempty"`
	// IncludeVertices returns the set members, not just the size.
	IncludeVertices bool `json:"include_vertices,omitempty"`
	// Async runs the solve as a background operation: the response is an
	// OperationRef immediately, progress streams from the operation's event
	// feed.
	Async bool `json:"async,omitempty"`
	// NoCache bypasses the result cache for this request (the result is
	// still not cached).
	NoCache bool `json:"no_cache,omitempty"`
}

// IOStats mirrors mis.IOStats with stable wire names.
type IOStats struct {
	Scans         int    `json:"scans"`
	PhysicalScans int    `json:"physical_scans"`
	CarriedScans  int    `json:"carried_scans"`
	RecordsRead   uint64 `json:"records_read"`
	BytesRead     uint64 `json:"bytes_read"`
	BytesWritten  uint64 `json:"bytes_written"`
}

func ioStats(s mis.IOStats) IOStats {
	return IOStats{
		Scans:         s.Scans,
		PhysicalScans: s.PhysicalScans,
		CarriedScans:  s.CarriedScans,
		RecordsRead:   s.RecordsRead,
		BytesRead:     s.BytesRead,
		BytesWritten:  s.BytesWritten,
	}
}

// SolveResponse reports a solve result.
type SolveResponse struct {
	Graph     string `json:"graph"`
	Algorithm string `json:"algorithm"`
	// Digest is the content digest of the adjacency file the result was
	// computed on — the graph identity the cache keys by.
	Digest      string   `json:"digest"`
	Size        int      `json:"size"`
	Rounds      int      `json:"rounds"`
	RoundGains  []int    `json:"round_gains,omitempty"`
	MemoryBytes uint64   `json:"memory_bytes"`
	IO          IOStats  `json:"io"`
	Vertices    []uint32 `json:"vertices,omitempty"`
	Verified    bool     `json:"verified,omitempty"`
	// Cache is how the request was satisfied: "hit", "miss" or "shared"
	// (deduplicated onto a concurrent identical solve).
	Cache string `json:"cache"`
	// ElapsedMS is the wall time of the underlying solve (not of this
	// request: a cache hit reports the original solve's time).
	ElapsedMS int64 `json:"elapsed_ms"`
}

// VerifyRequest checks a client-supplied vertex set against a graph.
//
// POST /v1/verify
type VerifyRequest struct {
	Graph string `json:"graph"`
	// Vertices lists the members of the claimed independent set.
	Vertices  []uint32 `json:"vertices"`
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
}

// VerifyResponse reports the verdict. A set that fails verification is not
// an HTTP error: OK is false and Reason says why.
type VerifyResponse struct {
	Graph  string `json:"graph"`
	Digest string `json:"digest"`
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
	Cache  string `json:"cache"`
}

// ColorRequest runs the iterated-IS graph coloring.
//
// POST /v1/color
type ColorRequest struct {
	Graph string `json:"graph"`
	// MaxColors caps the color classes (0 = unlimited).
	MaxColors int   `json:"max_colors,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ColorResponse reports a coloring.
type ColorResponse struct {
	Graph      string `json:"graph"`
	Digest     string `json:"digest"`
	NumColors  int    `json:"num_colors"`
	ClassSizes []int  `json:"class_sizes"`
	Cache      string `json:"cache"`
	ElapsedMS  int64  `json:"elapsed_ms"`
}

// BoundResponse reports the Algorithm 5 upper bound and Wei's lower bound.
//
// GET /v1/graphs/{name}/bound
type BoundResponse struct {
	Graph  string  `json:"graph"`
	Digest string  `json:"digest"`
	Upper  uint64  `json:"upper_bound"`
	Wei    float64 `json:"wei_lower_bound"`
	Cache  string  `json:"cache"`
}

// GraphInfo describes one registered graph.
//
// GET /v1/graphs, GET /v1/graphs/{name}
type GraphInfo struct {
	Name         string  `json:"name"`
	Vertices     int     `json:"vertices"`
	Edges        uint64  `json:"edges"`
	AvgDegree    float64 `json:"avg_degree"`
	DegreeSorted bool    `json:"degree_sorted"`
	SizeBytes    int64   `json:"size_bytes"`
	Digest       string  `json:"digest"`
	// IO is the file's lifetime I/O accounting — scan counters included, so
	// a client can observe that a cached solve performed no scan.
	IO IOStats `json:"io"`
	// Journal-backed graphs only: the journal's durability state. Solves
	// scan the current base generation; compact to fold pending updates.
	Journal *JournalInfo `json:"journal,omitempty"`
	// Manifest-backed sharded graphs only: the shard layout.
	Shards *ShardInfo `json:"shards,omitempty"`
}

// JournalInfo is the journal-backed subset of GraphInfo.
type JournalInfo struct {
	Generation     uint64 `json:"generation"`
	DeltaEdges     int    `json:"delta_edges"`
	JournalEdges   uint64 `json:"journal_edges"`
	DurableRecords uint64 `json:"durable_records"`
	SetSize        int    `json:"set_size"`
	Dirty          bool   `json:"dirty"`
}

// ShardInfo is the manifest-backed subset of GraphInfo: the shard count,
// the summed on-disk size of the shard files, and each shard's SHA-256
// content digest in manifest (scan) order.
type ShardInfo struct {
	Count      int      `json:"count"`
	TotalBytes int64    `json:"total_bytes"`
	Digests    []string `json:"digests"`
}

// StatusResponse is the daemon's health and effectiveness snapshot.
//
// GET /v1/status
type StatusResponse struct {
	Graphs     []string   `json:"graphs"`
	Cache      CacheStats `json:"cache"`
	Solves     SolveStats `json:"solves"`
	Operations OpsStats   `json:"operations"`
	UptimeMS   int64      `json:"uptime_ms"`
}

// CacheStats mirrors cache.Stats on the wire.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Inflight  int    `json:"inflight"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Shared    uint64 `json:"shared"`
	Evictions uint64 `json:"evictions"`
}

// SolveStats reports admission-control occupancy.
type SolveStats struct {
	Active   int `json:"active"`
	Queued   int `json:"queued"`
	MaxAct   int `json:"max_active"`
	MaxQueue int `json:"max_queue"`
}

// OpsStats summarizes background operations.
type OpsStats struct {
	Running  int `json:"running"`
	Retained int `json:"retained"`
}

// OperationRef is the immediate response to an async request.
type OperationRef struct {
	Operation string `json:"operation"`
}

// OperationInfo describes one background operation.
//
// GET /v1/operations/{id}
type OperationInfo struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	Graph     string `json:"graph"`
	Algorithm string `json:"algorithm,omitempty"`
	// Status is running, done, error or canceled.
	Status string         `json:"status"`
	Result *SolveResponse `json:"result,omitempty"`
	Error  *APIError      `json:"error,omitempty"`
}

// Event is one entry of an operation's progress feed, delivered over SSE
// from GET /v1/operations/{id}/events. Type is "round" (a completed swap
// round), "progress" (scan heartbeat), "done" or "error".
type Event struct {
	Type    string    `json:"type"`
	Round   int       `json:"round,omitempty"`
	Gain    int       `json:"gain,omitempty"`
	Size    int       `json:"size,omitempty"`
	Records uint64    `json:"records,omitempty"`
	Total   uint64    `json:"total,omitempty"`
	Error   *APIError `json:"error,omitempty"`
}
