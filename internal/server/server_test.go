package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	mis "repro"
	"repro/internal/shard"
)

// writeGraph builds a small degree-sorted adjacency file.
func writeGraph(t *testing.T, path string, edges [][2]uint32, n int) {
	t.Helper()
	b := mis.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	if err := b.WriteFile(path, true); err != nil {
		t.Fatal(err)
	}
}

// pathGraph is a 6-vertex path: its MIS is {0,2,4} or similar, size 3.
var pathEdges = [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}

type testDaemon struct {
	srv  *Server
	http *httptest.Server
	reg  *mis.Registry
}

// newTestDaemon serves graphs "a" and "b" (plain files) and "dyn" (a
// journal store) from a temp dir.
func newTestDaemon(t *testing.T, cfg Config) *testDaemon {
	t.Helper()
	dir := t.TempDir()
	a := filepath.Join(dir, "a.adj")
	writeGraph(t, a, pathEdges, 6)
	b := filepath.Join(dir, "b.adj")
	writeGraph(t, b, [][2]uint32{{0, 1}, {0, 2}, {0, 3}}, 5)

	base := filepath.Join(dir, "base.adj")
	writeGraph(t, base, pathEdges, 6)
	jdir := filepath.Join(dir, "dyn")
	if err := mis.InitJournal(jdir, base); err != nil {
		t.Fatal(err)
	}

	reg, err := mis.OpenRegistry(context.Background(), map[string]string{
		"a": a, "b": b, "dyn": jdir,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	cfg.Logf = t.Logf
	srv := New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
		reg.Close()
	})
	return &testDaemon{srv: srv, http: hs, reg: reg}
}

func (d *testDaemon) post(t *testing.T, path string, req, resp any) (int, *APIError) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(d.http.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	return decodeResponse(t, r, resp)
}

func (d *testDaemon) get(t *testing.T, path string, resp any) (int, *APIError) {
	t.Helper()
	r, err := http.Get(d.http.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	return decodeResponse(t, r, resp)
}

func decodeResponse(t *testing.T, r *http.Response, resp any) (int, *APIError) {
	t.Helper()
	data, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode >= 400 {
		var er errorResponse
		if err := json.Unmarshal(data, &er); err != nil || er.Error == nil {
			t.Fatalf("status %d with undecodable error body %q", r.StatusCode, data)
		}
		return r.StatusCode, er.Error
	}
	if resp != nil {
		if err := json.Unmarshal(data, resp); err != nil {
			t.Fatalf("decode %q: %v", data, err)
		}
	}
	return r.StatusCode, nil
}

func solveReq(graph string) *SolveRequest {
	return &SolveRequest{Graph: graph, Algorithm: "greedy"}
}

// setGate installs fn as the solve gate for the test's lifetime.
func setGate(t *testing.T, fn func(graph string)) {
	t.Helper()
	testSolveGate.Store(&fn)
	t.Cleanup(func() { testSolveGate.Store(nil) })
}

func TestSolveAndCacheHit(t *testing.T) {
	d := newTestDaemon(t, Config{})

	var first SolveResponse
	if code, ae := d.post(t, "/v1/solve", solveReq("a"), &first); ae != nil {
		t.Fatalf("first solve: %d %v", code, ae)
	}
	if first.Cache != "miss" {
		t.Fatalf("first solve cache = %q, want miss", first.Cache)
	}
	if first.Size != 3 {
		t.Fatalf("path MIS size = %d, want 3", first.Size)
	}
	if first.Digest == "" {
		t.Fatal("no digest in response")
	}

	var gi GraphInfo
	d.get(t, "/v1/graphs/a", &gi)
	scansAfterFirst := gi.IO.Scans

	var second SolveResponse
	if _, ae := d.post(t, "/v1/solve", solveReq("a"), &second); ae != nil {
		t.Fatal(ae)
	}
	if second.Cache != "hit" {
		t.Fatalf("second solve cache = %q, want hit", second.Cache)
	}
	if second.Size != first.Size || second.Digest != first.Digest {
		t.Fatalf("cache hit disagrees with original: %+v vs %+v", second, first)
	}

	d.get(t, "/v1/graphs/a", &gi)
	if gi.IO.Scans != scansAfterFirst {
		t.Fatalf("cache hit scanned the file: %d scans, had %d", gi.IO.Scans, scansAfterFirst)
	}
}

// TestSingleflightDedup drives n identical concurrent requests into a held
// solve and asserts exactly one executed: one miss, n-1 shared, and the
// file's scan counter advanced by a single solve's worth.
func TestSingleflightDedup(t *testing.T) {
	d := newTestDaemon(t, Config{})

	// Baseline: how many scans does one greedy solve cost?
	var probe SolveResponse
	if _, ae := d.post(t, "/v1/solve", solveReq("b"), &probe); ae != nil {
		t.Fatal(ae)
	}
	scansPerSolve := probe.IO.Scans

	var gi GraphInfo
	d.get(t, "/v1/graphs/a", &gi)
	scansBefore := gi.IO.Scans

	release := make(chan struct{})
	setGate(t, func(graph string) {
		if graph == "a" {
			<-release
		}
	})

	const n = 8
	results := make([]*SolveResponse, n)
	errs := make([]*APIError, n)
	var wg sync.WaitGroup
	for i := range n {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp SolveResponse
			_, ae := d.post(t, "/v1/solve", solveReq("a"), &resp)
			results[i], errs[i] = &resp, ae
		}()
	}

	// Wait until all n have reached the cache (one leader, n-1 joined),
	// then let the solve finish.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st StatusResponse
		d.get(t, "/v1/status", &st)
		if st.Cache.Misses+st.Cache.Shared >= uint64(n)+1 { // +1: the probe solve
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests never converged on one flight: %+v", st.Cache)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	wg.Wait()

	var miss, shared int
	for i := range n {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		switch results[i].Cache {
		case "miss":
			miss++
		case "shared":
			shared++
		default:
			t.Fatalf("request %d outcome %q", i, results[i].Cache)
		}
		if results[i].Size != 3 {
			t.Fatalf("request %d size %d, want 3", i, results[i].Size)
		}
	}
	if miss != 1 || shared != n-1 {
		t.Fatalf("dedup outcomes: %d miss + %d shared, want 1 + %d", miss, shared, n-1)
	}

	d.get(t, "/v1/graphs/a", &gi)
	if got := gi.IO.Scans - scansBefore; got != scansPerSolve {
		t.Fatalf("%d requests cost %d scans, want %d (one solve)", n, got, scansPerSolve)
	}
}

// TestShortDeadlineDetaches holds a solve past a request's deadline: the
// request must come back with code "timeout" and the daemon must keep
// serving afterwards.
func TestShortDeadlineDetaches(t *testing.T) {
	d := newTestDaemon(t, Config{})

	release := make(chan struct{})
	setGate(t, func(graph string) {
		if graph == "a" {
			<-release
		}
	})

	req := solveReq("a")
	req.TimeoutMS = 50
	code, ae := d.post(t, "/v1/solve", req, nil)
	if ae == nil {
		t.Fatal("expected timeout error")
	}
	if code != http.StatusGatewayTimeout || ae.Code != CodeTimeout {
		t.Fatalf("got %d %q, want 504 %q", code, ae.Code, CodeTimeout)
	}
	if strings.Contains(ae.Message, t.TempDir()[:5]) {
		t.Fatalf("error message leaks paths: %q", ae.Message)
	}

	// Daemon must not be wedged: an untouched graph still solves.
	close(release)
	var resp SolveResponse
	if code, ae := d.post(t, "/v1/solve", solveReq("b"), &resp); ae != nil {
		t.Fatalf("daemon wedged after timeout: %d %v", code, ae)
	}
}

// TestOverloaded fills the single solve slot and zero-length queue; the
// next distinct request must get 429.
func TestOverloaded(t *testing.T) {
	d := newTestDaemon(t, Config{MaxSolves: 1, MaxQueue: -1})

	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	setGate(t, func(graph string) {
		entered <- struct{}{}
		<-release
	})
	defer close(release)

	held, _ := json.Marshal(solveReq("a"))
	go http.Post(d.http.URL+"/v1/solve", "application/json", bytes.NewReader(held))
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first solve never started")
	}

	code, ae := d.post(t, "/v1/solve", solveReq("b"), nil)
	if ae == nil || code != http.StatusTooManyRequests || ae.Code != CodeOverloaded {
		t.Fatalf("got %d %v, want 429 %q", code, ae, CodeOverloaded)
	}
}

// TestCompactionInvalidatesCache mutates a journal graph and compacts; the
// digest flips, so the old cached result stops being addressed and the next
// solve misses.
func TestCompactionInvalidatesCache(t *testing.T) {
	d := newTestDaemon(t, Config{})
	ctx := context.Background()

	var first SolveResponse
	if _, ae := d.post(t, "/v1/solve", solveReq("dyn"), &first); ae != nil {
		t.Fatal(ae)
	}
	var again SolveResponse
	if _, ae := d.post(t, "/v1/solve", solveReq("dyn"), &again); ae != nil {
		t.Fatal(ae)
	}
	if again.Cache != "hit" || again.Digest != first.Digest {
		t.Fatalf("pre-compaction solve should hit: %+v", again)
	}

	e, _ := d.reg.Get("dyn")
	j := e.Journal()
	// Connect 0-2 and 0-4: the path's size-3 set {0,2,4} dies.
	if err := j.InsertEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := j.InsertEdge(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(ctx); err != nil {
		t.Fatal(err)
	}

	var after SolveResponse
	if _, ae := d.post(t, "/v1/solve", solveReq("dyn"), &after); ae != nil {
		t.Fatal(ae)
	}
	if after.Cache != "miss" {
		t.Fatalf("post-compaction solve cache = %q, want miss", after.Cache)
	}
	if after.Digest == first.Digest {
		t.Fatal("digest unchanged across compaction that folded edges")
	}
	var gi GraphInfo
	d.get(t, "/v1/graphs/dyn", &gi)
	if gi.Digest != after.Digest {
		t.Fatalf("stat digest %s disagrees with solve digest %s", gi.Digest, after.Digest)
	}
}

func TestVerifyEndpoint(t *testing.T) {
	d := newTestDaemon(t, Config{})

	var good VerifyResponse
	if _, ae := d.post(t, "/v1/verify", &VerifyRequest{Graph: "a", Vertices: []uint32{0, 2, 4}}, &good); ae != nil {
		t.Fatal(ae)
	}
	if !good.OK {
		t.Fatalf("valid MIS rejected: %q", good.Reason)
	}

	// 0-1 is an edge: not independent. The verdict is data, not an error.
	var bad VerifyResponse
	code, ae := d.post(t, "/v1/verify", &VerifyRequest{Graph: "a", Vertices: []uint32{0, 1}}, &bad)
	if ae != nil || code != http.StatusOK {
		t.Fatalf("failed verify must be 200 with ok=false, got %d %v", code, ae)
	}
	if bad.OK || bad.Reason == "" {
		t.Fatalf("want ok=false with reason, got %+v", bad)
	}
	if strings.Contains(bad.Reason, "/") {
		t.Fatalf("verify reason leaks a path: %q", bad.Reason)
	}

	// Same verdict again: cached.
	var cached VerifyResponse
	d.post(t, "/v1/verify", &VerifyRequest{Graph: "a", Vertices: []uint32{0, 1}}, &cached)
	if cached.Cache != "hit" || cached.OK {
		t.Fatalf("repeat verify: %+v, want cached ok=false", cached)
	}

	code, ae = d.post(t, "/v1/verify", &VerifyRequest{Graph: "a", Vertices: []uint32{99}}, nil)
	if ae == nil || code != http.StatusBadRequest || ae.Code != CodeInvalidArgument {
		t.Fatalf("out-of-range vertex: %d %v, want 400 %q", code, ae, CodeInvalidArgument)
	}
}

func TestRequestValidation(t *testing.T) {
	d := newTestDaemon(t, Config{})

	code, ae := d.post(t, "/v1/solve", solveReq("nope"), nil)
	if ae == nil || code != http.StatusNotFound || ae.Code != CodeNotFound {
		t.Fatalf("unknown graph: %d %v", code, ae)
	}

	req := solveReq("a")
	req.Algorithm = "quantum"
	code, ae = d.post(t, "/v1/solve", req, nil)
	if ae == nil || code != http.StatusBadRequest || ae.Code != CodeInvalidArgument {
		t.Fatalf("unknown algorithm: %d %v", code, ae)
	}

	r, err := http.Post(d.http.URL+"/v1/solve", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if code, ae := decodeResponse(t, r, nil); ae == nil || code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d %v", code, ae)
	}

	// Baseline on a degree-sorted file without the opt-in: stable 400, no
	// filesystem detail in the message.
	req = solveReq("a")
	req.Algorithm = "baseline"
	code, ae = d.post(t, "/v1/solve", req, nil)
	if ae == nil || code != http.StatusBadRequest || ae.Code != CodeInvalidArgument {
		t.Fatalf("baseline-on-sorted: %d %v", code, ae)
	}
	if strings.Contains(ae.Message, "/") {
		t.Fatalf("error message leaks a path: %q", ae.Message)
	}
}

func TestVerifyInSolveMemoized(t *testing.T) {
	d := newTestDaemon(t, Config{})

	req := solveReq("a")
	req.Verify = true
	var first SolveResponse
	if _, ae := d.post(t, "/v1/solve", req, &first); ae != nil {
		t.Fatal(ae)
	}
	if !first.Verified {
		t.Fatal("first solve not verified")
	}
	var gi GraphInfo
	d.get(t, "/v1/graphs/a", &gi)
	scans := gi.IO.Scans

	var second SolveResponse
	if _, ae := d.post(t, "/v1/solve", req, &second); ae != nil {
		t.Fatal(ae)
	}
	if second.Cache != "hit" || !second.Verified {
		t.Fatalf("repeat verified solve: %+v", second)
	}
	d.get(t, "/v1/graphs/a", &gi)
	if gi.IO.Scans != scans {
		t.Fatal("repeat verify of a cached result re-scanned the file")
	}
}

func TestBoundAndColorAndStatus(t *testing.T) {
	d := newTestDaemon(t, Config{})

	var bound BoundResponse
	if _, ae := d.get(t, "/v1/graphs/a/bound", &bound); ae != nil {
		t.Fatal(ae)
	}
	if bound.Upper < 3 || bound.Upper > 6 {
		t.Fatalf("upper bound %d outside [3,6]", bound.Upper)
	}
	var bound2 BoundResponse
	d.get(t, "/v1/graphs/a/bound", &bound2)
	if bound2.Cache != "hit" {
		t.Fatalf("repeat bound: %q, want hit", bound2.Cache)
	}

	var col ColorResponse
	if _, ae := d.post(t, "/v1/color", &ColorRequest{Graph: "a"}, &col); ae != nil {
		t.Fatal(ae)
	}
	if col.NumColors < 2 {
		t.Fatalf("path colored with %d colors", col.NumColors)
	}

	var st StatusResponse
	if _, ae := d.get(t, "/v1/status", &st); ae != nil {
		t.Fatal(ae)
	}
	if len(st.Graphs) != 3 {
		t.Fatalf("status graphs %v", st.Graphs)
	}
	if st.Cache.Misses == 0 {
		t.Fatal("status reports no cache activity after solves")
	}

	var graphs []*GraphInfo
	if _, ae := d.get(t, "/v1/graphs", &graphs); ae != nil {
		t.Fatal(ae)
	}
	if len(graphs) != 3 {
		t.Fatalf("graph listing has %d entries", len(graphs))
	}
	for _, gi := range graphs {
		if gi.Name == "dyn" && gi.Journal == nil {
			t.Fatal("journal entry missing journal info")
		}
	}
}

// TestAsyncOperation runs a background solve and follows its SSE feed to
// the terminal event.
func TestAsyncOperation(t *testing.T) {
	d := newTestDaemon(t, Config{})

	req := solveReq("a")
	req.Algorithm = "one-k-swap"
	req.Async = true
	var ref OperationRef
	if code, ae := d.post(t, "/v1/solve", req, &ref); ae != nil || code != http.StatusAccepted {
		t.Fatalf("async solve: %d %v", code, ae)
	}
	if ref.Operation == "" {
		t.Fatal("no operation id")
	}

	deadline := time.Now().Add(10 * time.Second)
	var info OperationInfo
	for {
		if _, ae := d.get(t, "/v1/operations/"+ref.Operation, &info); ae != nil {
			t.Fatal(ae)
		}
		if info.Status != opRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("operation stuck running: %+v", info)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if info.Status != opDone || info.Result == nil || info.Result.Size != 3 {
		t.Fatalf("operation finished badly: %+v", info)
	}

	// The event feed replays to the terminal event even after completion.
	r, err := http.Get(d.http.URL + "/v1/operations/" + ref.Operation + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if ct := r.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	var types []string
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		if ev, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			types = append(types, ev)
		}
	}
	if len(types) == 0 || types[len(types)-1] != "done" {
		t.Fatalf("event feed %v does not end in done", types)
	}

	var ops []OperationInfo
	if _, ae := d.get(t, "/v1/operations", &ops); ae != nil {
		t.Fatal(ae)
	}
	if len(ops) != 1 || ops[0].ID != ref.Operation {
		t.Fatalf("operations listing %+v", ops)
	}
}

func TestOperationCancel(t *testing.T) {
	d := newTestDaemon(t, Config{})

	release := make(chan struct{})
	setGate(t, func(graph string) { <-release })
	defer close(release)

	req := solveReq("a")
	req.Async = true
	var ref OperationRef
	if _, ae := d.post(t, "/v1/solve", req, &ref); ae != nil {
		t.Fatal(ae)
	}

	var info OperationInfo
	if _, ae := d.get(t, "/v1/operations/"+ref.Operation, &info); ae != nil {
		t.Fatal(ae)
	}
	if info.Status != opRunning {
		t.Fatalf("operation %q, want running", info.Status)
	}

	hreq, _ := http.NewRequest(http.MethodDelete, d.http.URL+"/v1/operations/"+ref.Operation, nil)
	r, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		d.get(t, "/v1/operations/"+ref.Operation, &info)
		if info.Status != opRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("canceled operation still running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if info.Status != opCanceled {
		t.Fatalf("operation %q, want canceled", info.Status)
	}
}

// TestConcurrentClients is the race-detector stress: N clients hammering M
// graphs with mixed algorithms and verifies, while the journal graph
// compacts underneath them.
func TestConcurrentClients(t *testing.T) {
	d := newTestDaemon(t, Config{MaxSolves: 4})
	algs := []string{"greedy", "one-k-swap", "external-maximal", "randomized"}
	graphs := []string{"a", "b", "dyn"}

	var wg sync.WaitGroup
	for c := range 12 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range 8 {
				req := solveReq(graphs[(c+i)%len(graphs)])
				req.Algorithm = algs[(c+3*i)%len(algs)]
				req.Seed = int64(c)
				req.Verify = i%3 == 0
				var resp SolveResponse
				code, ae := d.post(t, "/v1/solve", req, &resp)
				if ae != nil {
					t.Errorf("client %d req %d: %d %v", c, i, code, ae)
					return
				}
				if resp.Size == 0 {
					t.Errorf("client %d req %d: empty set", c, i)
				}
			}
		}()
	}
	// Concurrent compactions flip the journal generation mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		e, _ := d.reg.Get("dyn")
		j := e.Journal()
		for i := range 4 {
			if err := j.InsertEdge(uint32(i), uint32(i+2)%6); err != nil {
				t.Error(err)
				return
			}
			if err := j.Compact(context.Background()); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestNoCacheBypasses(t *testing.T) {
	d := newTestDaemon(t, Config{})

	if _, ae := d.post(t, "/v1/solve", solveReq("a"), nil); ae != nil {
		t.Fatal(ae)
	}
	req := solveReq("a")
	req.NoCache = true
	var resp SolveResponse
	if _, ae := d.post(t, "/v1/solve", req, &resp); ae != nil {
		t.Fatal(ae)
	}
	if resp.Cache != "miss" {
		t.Fatalf("no_cache solve reported %q", resp.Cache)
	}
}

func TestUnknownErrorStaysGeneric(t *testing.T) {
	status, ae := apiError(fmt.Errorf("open /var/lib/secret/graph.adj: permission denied"))
	if status != http.StatusInternalServerError || ae.Code != CodeInternal {
		t.Fatalf("got %d %q", status, ae.Code)
	}
	if strings.Contains(ae.Message, "/var/lib") {
		t.Fatalf("internal error leaked detail: %q", ae.Message)
	}
}

// TestShardedGraphInfo: a manifest-backed graph serves like any other, and
// its GraphInfo carries the shard layout — count, total bytes, per-shard
// digests.
func TestShardedGraphInfo(t *testing.T) {
	dir := t.TempDir()
	single := filepath.Join(dir, "g.adj")
	writeGraph(t, single, pathEdges, 6)
	shardDir := filepath.Join(dir, "sharded")
	if _, err := shard.SplitFile(context.Background(), single, shardDir, shard.SplitOptions{Shards: 3}); err != nil {
		t.Fatal(err)
	}
	reg, err := mis.OpenRegistry(context.Background(), map[string]string{"sh": shardDir})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Registry: reg, Logf: t.Logf})
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		srv.Close()
		reg.Close()
	}()
	d := &testDaemon{srv: srv, http: hs, reg: reg}

	var gi GraphInfo
	if code, ae := d.get(t, "/v1/graphs/sh", &gi); ae != nil {
		t.Fatalf("graph info: %d %v", code, ae)
	}
	if gi.Shards == nil {
		t.Fatal("sharded graph info has no shard metadata")
	}
	if gi.Shards.Count != 3 || len(gi.Shards.Digests) != 3 {
		t.Fatalf("shard metadata %+v, want 3 shards with 3 digests", gi.Shards)
	}
	if gi.Shards.TotalBytes != gi.SizeBytes {
		t.Errorf("shard total bytes %d != size %d", gi.Shards.TotalBytes, gi.SizeBytes)
	}
	for i, dgst := range gi.Shards.Digests {
		if len(dgst) != 64 {
			t.Errorf("shard %d digest %q is not a sha256 hex", i, dgst)
		}
	}
	if gi.Vertices != 6 {
		t.Errorf("vertices = %d, want 6", gi.Vertices)
	}

	// Solves work against the sharded entry, and the cache keys on the
	// combined digest: the second solve is a hit.
	var first, second SolveResponse
	if code, ae := d.post(t, "/v1/solve", solveReq("sh"), &first); ae != nil {
		t.Fatalf("solve: %d %v", code, ae)
	}
	if first.Size != 3 {
		t.Fatalf("path MIS size = %d, want 3", first.Size)
	}
	if _, ae := d.post(t, "/v1/solve", solveReq("sh"), &second); ae != nil {
		t.Fatalf("second solve: %v", ae)
	}
	if second.Cache != "hit" {
		t.Errorf("second solve cache = %q, want hit", second.Cache)
	}
	if first.Digest == "" || first.Digest != second.Digest {
		t.Errorf("digests %q vs %q", first.Digest, second.Digest)
	}
}
