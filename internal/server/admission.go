package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// errOverloaded is returned by admission when the solve slots and the wait
// queue are both full; it maps to 429 at the API boundary.
var errOverloaded = errors.New("server: solve capacity exhausted")

// admission is the daemon's solve gate: at most maxActive solves run at
// once, at most maxQueue more wait for a slot, and everything beyond that is
// refused immediately. Cache hits never pass through here — only work that
// will actually scan a file.
type admission struct {
	slots    chan struct{}
	maxQueue int
	queued   atomic.Int32
}

func newAdmission(maxActive, maxQueue int) *admission {
	return &admission{slots: make(chan struct{}, maxActive), maxQueue: maxQueue}
}

// acquire takes a solve slot, waiting in the bounded queue if none is free.
// It returns errOverloaded when the queue is full, or ctx.Err() if the
// caller's deadline expires while queued.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if int(a.queued.Add(1)) > a.maxQueue {
		a.queued.Add(-1)
		return errOverloaded
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

func (a *admission) stats() SolveStats {
	return SolveStats{
		Active:   len(a.slots),
		Queued:   int(a.queued.Load()),
		MaxAct:   cap(a.slots),
		MaxQueue: a.maxQueue,
	}
}
