package exec

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/gio"
	"repro/internal/plrg"
)

// openBig writes and opens a file large enough to split into many
// partitions.
func openBig(t *testing.T) *gio.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "big.adj")
	if err := gio.WriteGraphSorted(path, plrg.PowerLawN(40000, 2.0, 3), nil); err != nil {
		t.Fatal(err)
	}
	f, err := gio.Open(path, 4096, &gio.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestCtxCancelDrainsWorkers cancels a parallel scan mid-merge and requires
// the ctx error wrapped with the scan position, plus a fully drained worker
// pool: the goroutine count returns to its pre-scan level.
func TestCtxCancelDrainsWorkers(t *testing.T) {
	f := openBig(t)
	// Warm the partition plan so the canceled scans below take the parallel
	// path rather than the sequential cold-start capture.
	if err := New(f, 4).ForEachBatch(func([]gio.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		ex := New(f, 4)
		batches := 0
		err := ex.ForEachBatchCtx(ctx, func(batch []gio.Record) error {
			if batches++; batches == 2 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		var se *gio.ScanError
		if !errors.As(err, &se) {
			t.Fatalf("err %v carries no scan position", err)
		}
		if se.Records == 0 || se.Records >= se.Total {
			t.Fatalf("scan position %d of %d, want mid-scan", se.Records, se.Total)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("worker pool leaked: %d goroutines before, %d after", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCtxParityWithPlainScan: a never-canceled context changes nothing —
// records, stats and completion match ForEachBatch for every worker count.
func TestCtxParityWithPlainScan(t *testing.T) {
	f := openBig(t)
	ctx := context.Background()
	for _, w := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			var plain, withCtx uint64
			if err := New(f, w).ForEachBatch(func(b []gio.Record) error {
				plain += uint64(len(b))
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if err := New(f, w).ForEachBatchCtx(ctx, func(b []gio.Record) error {
				withCtx += uint64(len(b))
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if plain != withCtx {
				t.Fatalf("ctx scan delivered %d records, plain %d", withCtx, plain)
			}
		})
	}
}
