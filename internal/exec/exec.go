// Package exec implements the parallel partitioned scan executor: it splits
// an adjacency file into record-aligned byte-range partitions (planned once
// per file from batch-boundary cut points), fans the block-pipelined batch
// decoding out across a pool of worker goroutines, and merges the decoded
// batches back into exact sequential scan order for a single consumer
// callback.
//
// The design keeps the sequential engine as the oracle: because batches are
// delivered to the callback in global record order on the calling goroutine,
// every pass migrated onto the executor — order-dependent ones like the
// greedy marking scan included — produces bit-identical results to a plain
// File.ForEachBatch. Parallelism accelerates only the decode (varint/gap
// expansion, fixed-width neighbor copies), which is where scan-bound passes
// spend their cycles; see the parity tests for the enforced equivalences and
// BENCH_parscan.json for the measured throughput.
//
// Fallbacks preserve oracle behavior exactly: workers ≤ 1, files too small
// to split, and files whose partition planning fails (malformed input) all
// run the ordinary sequential scan, reproducing its records, error and Stats
// byte for byte.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/gio"
)

const (
	// partitionsPerWorker oversplits the file relative to the worker count
	// so that a skewed partition (one hub vertex's huge record) does not
	// serialize the tail of the scan: workers grab partitions dynamically.
	partitionsPerWorker = 2
	// partitionChanDepth bounds decoded-but-unconsumed batches per
	// partition, keeping memory at O(workers · batch) while letting workers
	// run ahead of the consumer.
	partitionChanDepth = 4
)

// Executor runs scans of one file with a fixed degree of parallelism. It is
// cheap to construct (partition plans are cached on the File) and satisfies
// the same scan interface as *gio.File, so algorithm passes accept either.
// Like the File it wraps, an Executor must not be used concurrently with
// itself or with other scans of the same file.
type Executor struct {
	f       *gio.File
	workers int
}

// New returns an executor over f using the given number of decode workers.
// workers ≤ 0 selects GOMAXPROCS; workers == 1 is the sequential engine.
func New(f *gio.File, workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Executor{f: f, workers: workers}
}

// Workers returns the configured degree of parallelism.
func (e *Executor) Workers() int { return e.workers }

// File returns the underlying file.
func (e *Executor) File() *gio.File { return e.f }

// NumVertices returns the vertex count from the file header.
func (e *Executor) NumVertices() int { return e.f.NumVertices() }

// Header returns the file header.
func (e *Executor) Header() gio.Header { return e.f.Header() }

// Stats returns the file's shared I/O counters, which may be nil.
func (e *Executor) Stats() *gio.Counters { return e.f.Stats() }

// ForEach runs one full scan, invoking fn for every record in scan order.
func (e *Executor) ForEach(fn func(gio.Record) error) error {
	return e.ForEachBatch(func(batch []gio.Record) error {
		for i := range batch {
			if err := fn(batch[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// ForEachBatch runs one full scan, invoking fn for every decoded batch in
// scan order on the calling goroutine. With workers > 1 the batches are
// decoded concurrently by partition workers and merged deterministically;
// the record sequence, the first error (fn's or the decoder's, whichever
// comes first in scan order) and the completed scan's Stats are identical to
// gio.File.ForEachBatch. Batch boundaries may differ from the sequential
// engine's — no pass may depend on them. fn must not retain a batch or its
// Neighbors slices past the call.
func (e *Executor) ForEachBatch(fn func([]gio.Record) error) error {
	return e.ForEachBatchCtx(nil, fn)
}

// ForEachBatchCtx is ForEachBatch bound to a context: when ctx is canceled
// or its deadline passes, the merge loop stops within one batch, the worker
// pool is drained (no goroutine outlives the call), and the scan returns the
// ctx error wrapped in a gio.ScanError carrying the scan position. A nil ctx
// behaves exactly like ForEachBatch.
func (e *Executor) ForEachBatchCtx(ctx context.Context, fn func([]gio.Record) error) error {
	if e.workers <= 1 {
		return e.f.ForEachBatchCtx(ctx, fn)
	}
	if e.f.PlanCaptureViable() { // no plan cached yet and capture can still install one
		// Cold start: no cut table yet. A dedicated planning side scan would
		// read the whole file once before the counted scan reads it again, so
		// a one-shot workload would pay two passes over the disk. Instead run
		// this scan on the sequential engine and capture the plan from its
		// record stream — one physical pass, identical records, error and
		// Stats, and every subsequent scan goes parallel off the cached plan.
		// If the capture cannot validate (see gio), the next scan falls
		// through to Partitions' self-checking side scan below.
		return e.f.ForEachBatchWithPlanCaptureCtx(ctx, fn)
	}
	parts, err := e.f.Partitions(e.workers * partitionsPerWorker)
	if err != nil || len(parts) < 2 {
		// Malformed input (planning failed) or a file too small to split:
		// the sequential engine is the oracle, run it verbatim.
		return e.f.ForEachBatchCtx(ctx, fn)
	}
	return e.runParallel(ctx, parts, fn)
}

// ForEachBatchWithPlanCapture runs one full scan with opportunistic
// partition-plan capture (see gio.File.ForEachBatchWithPlanCapture). For the
// executor this is ForEachBatch itself — its cold start already captures —
// but the method makes the capability visible to the pass scheduler
// (internal/pipeline), which type-asserts for it.
func (e *Executor) ForEachBatchWithPlanCapture(fn func([]gio.Record) error) error {
	return e.ForEachBatchCtx(nil, fn)
}

// ForEachBatchWithPlanCaptureCtx is the context-aware form of
// ForEachBatchWithPlanCapture, likewise ForEachBatchCtx itself.
func (e *Executor) ForEachBatchWithPlanCaptureCtx(ctx context.Context, fn func([]gio.Record) error) error {
	return e.ForEachBatchCtx(ctx, fn)
}

// batchMsg carries one decoded batch (or a partition's terminal status) from
// a worker to the consumer. recs and arena transfer ownership with the
// message; the consumer recycles them through the buffer pool.
type batchMsg struct {
	recs  []gio.Record
	arena []uint32
	err   error
	last  bool
}

// batchBufs is a recycled (record slice, neighbor arena) pair.
type batchBufs struct {
	recs  []gio.Record
	arena []uint32
}

func (e *Executor) runParallel(ctx context.Context, parts []gio.Partition, fn func([]gio.Record) error) error {
	// On a mapped file, zero-copy batches alias the mapping while they sit in
	// the partition channels — after the worker's scanner has closed and
	// released its own mapping reference. Pin the mapping once for the whole
	// run so a concurrent File.Close defers the munmap past the last of those
	// in-flight batches. If the pin fails (file already closing), the workers'
	// scans fail fast below and the error propagates normally.
	if release, ok := e.f.PinMap(); ok {
		defer release()
	}
	nw := e.workers
	if nw > len(parts) {
		nw = len(parts)
	}
	chans := make([]chan batchMsg, len(parts))
	for i := range chans {
		chans[i] = make(chan batchMsg, partitionChanDepth)
	}
	quit := make(chan struct{})
	pool := &sync.Pool{New: func() any { return &batchBufs{} }}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(parts) {
					return
				}
				if !e.scanPartition(parts[i], chans[i], quit, pool) {
					return
				}
			}
		}()
	}

	// Consume partitions in order; within a partition, batches arrive in
	// order. The merged invocation sequence is therefore the sequential scan
	// order, and the earliest error in that order wins — exactly the
	// sequential engine's stopping point.
	st := e.f.Stats()
	consumedEnd := int64(gio.HeaderSize) // end offset of the last fully consumed partition
	total := uint64(e.f.NumVertices())
	var delivered uint64
	var runErr error
consume:
	for i := range chans {
		for {
			msg := <-chans[i]
			if msg.last {
				if msg.err != nil {
					runErr = msg.err
					break consume
				}
				consumedEnd = parts[i].EndOffset
				break
			}
			if ctx != nil {
				// Cancellation point of the merge loop: stop before handing
				// fn another batch, then fall through to the pool drain
				// below — close(quit) unblocks every worker, wg.Wait
				// guarantees none outlives the call.
				if err := ctx.Err(); err != nil {
					runErr = &gio.ScanError{Records: delivered, Total: total, Err: err}
					break consume
				}
			}
			if st != nil {
				st.AddRecordsRead(uint64(len(msg.recs)))
			}
			if err := fn(msg.recs); err != nil {
				runErr = err
				break consume
			}
			delivered += uint64(len(msg.recs))
			pool.Put(&batchBufs{recs: msg.recs, arena: msg.arena})
		}
	}
	close(quit)
	wg.Wait()

	// Account what the sequential engine would have counted: it consumes
	// ceil(covered/B) blocks to reach the last record's end byte, every block
	// full-sized except a final one clipped at end of file. A completed scan
	// covers the whole payload and its accounting is identical to the
	// sequential engine's; a scan stopped by an error covers the fully
	// consumed partition prefix, a deterministic lower bound on what the
	// sequential engine would have counted before the same stopping point
	// (the exact figure depends on its batch boundaries). Scans counts
	// completed scans only, exactly like the sequential engine.
	if st != nil {
		if runErr == nil {
			consumedEnd = parts[len(parts)-1].EndOffset
		}
		covered := consumedEnd - gio.HeaderSize
		if b := int64(e.f.BlockSize()); covered > 0 {
			blocks := (covered + b - 1) / b
			bytes := blocks * b
			if size, err := e.f.SizeBytes(); err == nil && bytes > size-gio.HeaderSize {
				bytes = size - gio.HeaderSize
			}
			st.AddBlocksRead(uint64(blocks))
			st.AddBytesRead(uint64(bytes))
		}
		if runErr == nil {
			st.AddScans(1)
			st.AddPhysicalScans(1)
		}
	}
	return runErr
}

// scanPartition decodes one partition, shipping each batch (with its
// ownership-transferred buffers) to ch, then a terminal message carrying the
// partition's scan error. It reports false when the run was cancelled.
func (e *Executor) scanPartition(p gio.Partition, ch chan<- batchMsg, quit <-chan struct{}, pool *sync.Pool) bool {
	sc := e.f.ScanPartition(p)
	defer sc.Close()
	for {
		batch := sc.NextBatch()
		if batch == nil {
			break
		}
		bufs := pool.Get().(*batchBufs)
		recs, arena := sc.SwapBuffers(bufs.recs, bufs.arena)
		select {
		case ch <- batchMsg{recs: recs, arena: arena}:
		case <-quit:
			return false
		}
	}
	select {
	case ch <- batchMsg{err: sc.Err(), last: true}:
		return true
	case <-quit:
		return false
	}
}
