package exec

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gio"
)

// The migrated algorithm passes must be oblivious to the scan engine: every
// result field — the set itself, round trace, memory accounting and the I/O
// statistics the paper's tables report — must be bit-identical between the
// sequential oracle and the parallel executor at every worker count.

func openPair(t *testing.T, path string) (seq, par *gio.File) {
	t.Helper()
	var s1, s2 gio.Counters
	seq, err := gio.Open(path, 0, &s1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seq.Close() })
	par, err = gio.Open(path, 0, &s2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { par.Close() })
	return seq, par
}

func TestAlgorithmParity(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name       string
		compressed bool
	}{
		{"raw", false},
		{"compressed", true},
	} {
		g := randomGraph(77, 4000, 24000)
		path := writeFile(t, dir, g, tc.compressed, tc.name+".adj")
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range parityWorkers {
				seqF, parF := openPair(t, path)
				ex := New(parF, workers)

				wantG, err := core.Greedy(seqF)
				if err != nil {
					t.Fatal(err)
				}
				gotG, err := core.Greedy(ex)
				if err != nil {
					t.Fatal(err)
				}
				assertResultsEqual(t, fmt.Sprintf("greedy workers=%d", workers), gotG, wantG)

				wantOne, err := core.OneKSwap(seqF, wantG.InSet, core.SwapOptions{})
				if err != nil {
					t.Fatal(err)
				}
				gotOne, err := core.OneKSwap(ex, gotG.InSet, core.SwapOptions{})
				if err != nil {
					t.Fatal(err)
				}
				assertResultsEqual(t, fmt.Sprintf("one-k-swap workers=%d", workers), gotOne, wantOne)

				wantTwo, err := core.TwoKSwap(seqF, wantG.InSet, core.SwapOptions{})
				if err != nil {
					t.Fatal(err)
				}
				gotTwo, err := core.TwoKSwap(ex, gotG.InSet, core.SwapOptions{})
				if err != nil {
					t.Fatal(err)
				}
				assertResultsEqual(t, fmt.Sprintf("two-k-swap workers=%d", workers), gotTwo, wantTwo)

				wantUB, err := core.UpperBound(seqF)
				if err != nil {
					t.Fatal(err)
				}
				gotUB, err := core.UpperBound(ex)
				if err != nil {
					t.Fatal(err)
				}
				if gotUB != wantUB {
					t.Fatalf("upper bound workers=%d: got %d, want %d", workers, gotUB, wantUB)
				}

				wantDeg, err := gio.ReadDegrees(seqF)
				if err != nil {
					t.Fatal(err)
				}
				gotDeg, err := gio.ReadDegrees(ex)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotDeg, wantDeg) {
					t.Fatalf("degrees workers=%d: mismatch", workers)
				}

				if err := core.VerifyIndependent(ex, gotTwo.InSet); err != nil {
					t.Fatal(err)
				}
				if err := core.VerifyMaximal(ex, gotTwo.InSet); err != nil {
					t.Fatal(err)
				}
				if err := core.VerifyIndependent(seqF, wantTwo.InSet); err != nil {
					t.Fatal(err)
				}
				if err := core.VerifyMaximal(seqF, wantTwo.InSet); err != nil {
					t.Fatal(err)
				}

				// The files accumulated identical scan statistics overall.
				if *seqF.Stats() != *parF.Stats() {
					t.Fatalf("workers=%d: file stats diverged:\n seq %+v\n par %+v",
						workers, *seqF.Stats(), *parF.Stats())
				}
			}
		})
	}
}

// TestFusedUnfusedWorkerMatrix extends the parity harness across the
// scheduler dimension: for each of workers 1, 2, 4 and 7 and each scheduler
// mode (fused, unfused), the swap algorithms and the fused verify must
// produce bit-identical outcomes. Within a mode, every worker count must
// agree on everything including the I/O accounting; across modes the results
// and errors must agree while the fused mode pays fewer physical scans.
func TestFusedUnfusedWorkerMatrix(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(91, 3000, 18000)
	path := writeFile(t, dir, g, true, "matrix.adj")

	type key struct {
		alg     string
		unfused bool
	}
	results := map[key]map[int]*core.Result{}

	for _, unfused := range []bool{false, true} {
		for _, workers := range []int{1, 2, 4, 7} {
			var stats gio.Counters
			f, err := gio.Open(path, 0, &stats)
			if err != nil {
				t.Fatal(err)
			}
			var src core.Source = f
			if workers > 1 {
				src = New(f, workers)
			}
			greedy, err := core.Greedy(src)
			if err != nil {
				t.Fatal(err)
			}
			opts := core.SwapOptions{Unfused: unfused}
			one, err := core.OneKSwap(src, greedy.InSet, opts)
			if err != nil {
				t.Fatal(err)
			}
			two, err := core.TwoKSwap(src, greedy.InSet, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := core.VerifyBoth(src, one.InSet); err != nil {
				t.Fatalf("workers=%d unfused=%v: one-k result failed verify: %v", workers, unfused, err)
			}
			if err := core.VerifyBoth(src, two.InSet); err != nil {
				t.Fatalf("workers=%d unfused=%v: two-k result failed verify: %v", workers, unfused, err)
			}
			for alg, r := range map[string]*core.Result{"one-k": one, "two-k": two} {
				k := key{alg, unfused}
				if results[k] == nil {
					results[k] = map[int]*core.Result{}
				}
				results[k][workers] = r
			}
			f.Close()
		}
	}

	for k, byWorkers := range results {
		ref := byWorkers[1]
		for _, workers := range []int{2, 4, 7} {
			assertResultsEqual(t, fmt.Sprintf("%s unfused=%v workers=%d vs 1", k.alg, k.unfused, workers),
				byWorkers[workers], ref)
		}
	}
	for _, alg := range []string{"one-k", "two-k"} {
		fused, unfused := results[key{alg, false}][1], results[key{alg, true}][1]
		if !reflect.DeepEqual(fused.InSet, unfused.InSet) || fused.Rounds != unfused.Rounds {
			t.Fatalf("%s: fused and unfused disagree on the result", alg)
		}
		if fused.IO.PhysicalScans >= unfused.IO.PhysicalScans {
			t.Fatalf("%s: fused physical scans %d, not below unfused %d",
				alg, fused.IO.PhysicalScans, unfused.IO.PhysicalScans)
		}
	}
}

func assertResultsEqual(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.InSet, want.InSet) {
		t.Fatalf("%s: InSet differs", label)
	}
	if got.Size != want.Size || got.Rounds != want.Rounds {
		t.Fatalf("%s: size/rounds (%d, %d) vs (%d, %d)", label, got.Size, got.Rounds, want.Size, want.Rounds)
	}
	if !reflect.DeepEqual(got.RoundGains, want.RoundGains) {
		t.Fatalf("%s: RoundGains %v vs %v", label, got.RoundGains, want.RoundGains)
	}
	if got.SCHighWater != want.SCHighWater {
		t.Fatalf("%s: SCHighWater %d vs %d", label, got.SCHighWater, want.SCHighWater)
	}
	if got.MemoryBytes != want.MemoryBytes {
		t.Fatalf("%s: MemoryBytes %d vs %d", label, got.MemoryBytes, want.MemoryBytes)
	}
	if got.IO != want.IO {
		t.Fatalf("%s: IO stats:\n got  %+v\n want %+v", label, got.IO, want.IO)
	}
}
