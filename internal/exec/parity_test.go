package exec

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/gio"
	"repro/internal/graph"
)

// The parallel partitioned executor must be observationally identical to the
// sequential engine it wraps: the same records in the same order, the same
// first error (as a string, including record/vertex indices), and the same
// Stats accounting on completed scans — for every worker count, file format,
// block size, and for malformed inputs, which take the sequential fallback.

var parityWorkers = []int{2, 4, 7}

func randomGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	return b.Build()
}

// hubGraph produces a heavily skewed graph: one vertex adjacent to all
// others, so a single record dominates the payload and stresses partition
// balancing and the arena-overflow (pending record) machinery.
func hubGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, uint32(v))
	}
	return b.Build()
}

func writeFile(t testing.TB, dir string, g *graph.Graph, compressed bool, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	flags := uint32(0)
	if compressed {
		flags = gio.FlagCompressed
	}
	w, err := gio.NewWriter(path, flags, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if err := w.Append(uint32(v), g.Neighbors(uint32(v))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// scanOutcome captures everything observable from one full scan attempt.
type scanOutcome struct {
	recs  []gio.Record // deep copies
	err   error
	stats gio.Stats
}

func (o scanOutcome) errString() string {
	if o.err == nil {
		return "<nil>"
	}
	return o.err.Error()
}

// execEngine selects how runScan opens files: "" is the block-pipelined
// engine, "mmap" and "mmap-zerocopy" the mapped one (TestParallelParityMmap
// flips it to re-run the core parity tests against those engines, workers
// and malformed inputs included).
var execEngine string

func openTestFile(path string, blockSize int, c *gio.Counters) (*gio.File, error) {
	if execEngine == "" {
		return gio.Open(path, blockSize, c)
	}
	f, err := gio.OpenMmap(path, blockSize, c)
	if err == nil {
		f.SetMmapZeroCopy(execEngine == "mmap-zerocopy")
	}
	return f, err
}

// runScan scans path with the given worker count (1 = the sequential
// engine), collecting records, final error and stats.
func runScan(t testing.TB, path string, workers, blockSize int) (out scanOutcome) {
	t.Helper()
	var counters gio.Counters
	defer func() { out.stats = counters.Snapshot() }()
	f, err := openTestFile(path, blockSize, &counters)
	if err != nil {
		out.err = err
		return out
	}
	defer f.Close()
	collect := func(batch []gio.Record) error {
		for _, r := range batch {
			out.recs = append(out.recs, gio.Record{
				ID:        r.ID,
				Neighbors: append([]uint32(nil), r.Neighbors...),
			})
		}
		return nil
	}
	if workers == 1 {
		out.err = f.ForEachBatch(collect)
	} else {
		// Warm the partition plan so this scan exercises the parallel merge
		// path rather than the cold-start sequential capture scan (which has
		// its own parity tests below). Planning failure is the executor's
		// fallback signal and is deliberately ignored here.
		_, _ = f.Partitions(workers * 2)
		out.err = New(f, workers).ForEachBatch(collect)
	}
	return out
}

func assertSameOutcome(t testing.TB, label string, got, want scanOutcome, checkStats bool) {
	t.Helper()
	if got.errString() != want.errString() {
		t.Fatalf("%s: error mismatch:\n got  %s\n want %s", label, got.errString(), want.errString())
	}
	if len(got.recs) != len(want.recs) {
		t.Fatalf("%s: %d records, reference %d", label, len(got.recs), len(want.recs))
	}
	for i := range got.recs {
		if got.recs[i].ID != want.recs[i].ID {
			t.Fatalf("%s: record %d id %d, reference %d", label, i, got.recs[i].ID, want.recs[i].ID)
		}
		a, b := got.recs[i].Neighbors, want.recs[i].Neighbors
		if len(a) != len(b) {
			t.Fatalf("%s: record %d has %d neighbors, reference %d", label, i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("%s: record %d neighbor %d = %d, reference %d", label, i, j, a[j], b[j])
			}
		}
	}
	if checkStats && got.stats != want.stats {
		t.Fatalf("%s: stats mismatch:\n got  %+v\n want %+v", label, got.stats, want.stats)
	}
}

// assertParity scans path sequentially and with every parity worker count,
// requiring identical outcomes. Stats are compared in full on every path:
// completed parallel scans account exactly what the sequential engine
// counts, and failed ones take the sequential fallback wholesale.
func assertParity(t testing.TB, path string, blockSize int) {
	t.Helper()
	ref := runScan(t, path, 1, blockSize)
	for _, w := range parityWorkers {
		got := runScan(t, path, w, blockSize)
		assertSameOutcome(t, fmt.Sprintf("workers=%d block=%d", w, blockSize), got, ref, true)
	}
}

var parityBlockSizes = []int{4096, 64 * 1024, gio.DefaultBlockSize}

func TestParallelParityWellFormed(t *testing.T) {
	dir := t.TempDir()
	graphs := map[string]*graph.Graph{
		"empty":  graph.NewBuilder(0).Build(),
		"single": graph.NewBuilder(1).Build(),
		"small":  randomGraph(21, 40, 120),
		"medium": randomGraph(22, 700, 5000),
		"hub":    hubGraph(2000),
	}
	for name, g := range graphs {
		for _, compressed := range []bool{false, true} {
			path := writeFile(t, dir, g, compressed, fmt.Sprintf("%s-%v.adj", name, compressed))
			for _, bs := range parityBlockSizes {
				assertParity(t, path, bs)
			}
		}
	}
}

// TestParallelParityProperty quick-checks parity over random graphs, formats,
// block sizes and worker counts.
func TestParallelParityProperty(t *testing.T) {
	dir := t.TempDir()
	i := 0
	prop := func(seed int64, nRaw uint16, mRaw uint8, compressed bool, bsRaw uint8) bool {
		i++
		n := int(nRaw%900) + 1
		g := randomGraph(seed, n, int(mRaw)*8)
		path := writeFile(t, dir, g, compressed, fmt.Sprintf("q%d.adj", i))
		bs := parityBlockSizes[int(bsRaw)%len(parityBlockSizes)]
		assertParity(t, path, bs)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelParityTruncated cuts a valid file at sampled lengths and
// requires the executor to agree with the sequential engine on the record
// prefix, error and stats (malformed files take the sequential fallback).
func TestParallelParityTruncated(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(24, 60, 200)
	for _, compressed := range []bool{false, true} {
		full := writeFile(t, dir, g, compressed, fmt.Sprintf("full-%v.adj", compressed))
		data, err := os.ReadFile(full)
		if err != nil {
			t.Fatal(err)
		}
		trunc := filepath.Join(dir, fmt.Sprintf("trunc-%v.adj", compressed))
		for cut := 0; cut <= len(data); cut += 1 + cut/16 {
			if err := os.WriteFile(trunc, data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			assertParity(t, trunc, 4096)
		}
	}
}

// TestParallelParityCorrupt flips sampled bytes across the body of a valid
// file and requires identical outcomes.
func TestParallelParityCorrupt(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(25, 60, 200)
	rng := rand.New(rand.NewSource(99))
	for _, compressed := range []bool{false, true} {
		full := writeFile(t, dir, g, compressed, fmt.Sprintf("base-%v.adj", compressed))
		data, err := os.ReadFile(full)
		if err != nil {
			t.Fatal(err)
		}
		corrupt := filepath.Join(dir, fmt.Sprintf("corrupt-%v.adj", compressed))
		for off := gio.HeaderSize; off < len(data); off += 1 + rng.Intn(7) {
			mut := append([]byte(nil), data...)
			mut[off] ^= byte(1 + rng.Intn(255))
			if err := os.WriteFile(corrupt, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			assertParity(t, corrupt, 4096)
		}
	}
}

// TestCallbackErrorPropagation verifies that an error returned by the
// consumer callback stops the scan and surfaces verbatim, after exactly the
// same record prefix as on the sequential engine.
func TestCallbackErrorPropagation(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(31, 500, 2500)
	path := writeFile(t, dir, g, false, "cberr.adj")
	sentinel := errors.New("stop here")

	run := func(workers, stopAfter int) (int, error) {
		f, err := gio.Open(path, 4096, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		seen := 0
		err = New(f, workers).ForEachBatch(func(batch []gio.Record) error {
			for range batch {
				seen++
				if seen >= stopAfter {
					return sentinel
				}
			}
			return nil
		})
		return seen, err
	}

	for _, stopAfter := range []int{1, 57, 499} {
		wantSeen, wantErr := run(1, stopAfter)
		if !errors.Is(wantErr, sentinel) {
			t.Fatalf("sequential: got error %v", wantErr)
		}
		for _, w := range parityWorkers {
			seen, err := run(w, stopAfter)
			if !errors.Is(err, sentinel) {
				t.Fatalf("workers=%d stop=%d: got error %v", w, stopAfter, err)
			}
			if seen != wantSeen {
				t.Fatalf("workers=%d stop=%d: saw %d records, sequential saw %d", w, stopAfter, seen, wantSeen)
			}
		}
	}
}

// TestPostPlanCorruption corrupts a byte mid-file after the partition plan
// has been built, so the failure surfaces inside a worker's partition scan
// rather than during planning. The merged outcome must be deterministic: the
// earliest failing partition in scan order decides the error, repeatably.
func TestPostPlanCorruption(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(47, 3000, 20000)
	path := writeFile(t, dir, g, false, "postplan.adj")

	f, err := gio.Open(path, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	parts, err := f.Partitions(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) < 3 {
		t.Fatalf("want ≥3 partitions, got %d", len(parts))
	}

	// Corrupt the first record header of a middle partition: out-of-range id.
	mid := parts[len(parts)/2]
	raw, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.WriteAt([]byte{0xff, 0xff, 0xff, 0xff}, mid.StartOffset); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	outcome := func() (int, error) {
		seen := 0
		err := New(f, 4).ForEachBatch(func(batch []gio.Record) error {
			seen += len(batch)
			return nil
		})
		return seen, err
	}
	seen1, err1 := outcome()
	if err1 == nil {
		t.Fatal("corrupted partition did not surface an error")
	}
	if !errors.Is(err1, gio.ErrBadFormat) {
		t.Fatalf("error does not wrap ErrBadFormat: %v", err1)
	}
	if uint64(seen1) != mid.StartRecord {
		t.Fatalf("saw %d records before the error, want the %d of earlier partitions", seen1, mid.StartRecord)
	}
	for i := 0; i < 3; i++ {
		seen2, err2 := outcome()
		if seen2 != seen1 || err2.Error() != err1.Error() {
			t.Fatalf("nondeterministic outcome: (%d, %v) then (%d, %v)", seen1, err1, seen2, err2)
		}
	}
}

// TestColdStartCapturePar checks the executor's cold start: with no cached
// plan, the first ForEachBatch runs the sequential engine while capturing the
// partition plan (one physical pass, no planning side scan), and the second
// scan goes parallel off the captured plan — both observationally identical
// to the sequential engine.
func TestColdStartCapturePar(t *testing.T) {
	dir := t.TempDir()
	for _, compressed := range []bool{false, true} {
		g := randomGraph(53, 800, 6000)
		path := writeFile(t, dir, g, compressed, fmt.Sprintf("cold-%v.adj", compressed))
		ref := runScan(t, path, 1, 4096)
		for _, w := range parityWorkers {
			var stats gio.Counters
			f, err := openTestFile(path, 4096, &stats)
			if err != nil {
				t.Fatal(err)
			}
			ex := New(f, w)
			for scan := 0; scan < 2; scan++ {
				label := fmt.Sprintf("compressed=%v workers=%d scan=%d", compressed, w, scan)
				got := scanOutcome{}
				statsBefore := stats.Snapshot()
				got.err = ex.ForEachBatch(func(batch []gio.Record) error {
					for _, r := range batch {
						got.recs = append(got.recs, gio.Record{
							ID:        r.ID,
							Neighbors: append([]uint32(nil), r.Neighbors...),
						})
					}
					return nil
				})
				got.stats = stats.Snapshot().Sub(statsBefore)
				assertSameOutcome(t, label, got, ref, true)
				if !f.HasPartitionPlan() {
					t.Fatalf("%s: no partition plan captured by the cold-start scan", label)
				}
			}
			f.Close()
		}
	}
}

// TestColdStartCaptureTrailingBytes appends junk after the last record: the
// capture must refuse to install a plan (its offsets cannot validate), scans
// must stay correct, and later scans must still reach the parallel path via
// the self-checking planning side scan.
func TestColdStartCaptureTrailingBytes(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(54, 400, 2400)
	path := writeFile(t, dir, g, false, "trailing.adj")
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write([]byte("junk-past-the-last-record")); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	ref := runScan(t, path, 1, 4096)
	f, err := gio.Open(path, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ex := New(f, 4)
	for scan := 0; scan < 2; scan++ {
		got := scanOutcome{stats: ref.stats}
		got.err = ex.ForEachBatch(func(batch []gio.Record) error {
			for _, r := range batch {
				got.recs = append(got.recs, gio.Record{
					ID:        r.ID,
					Neighbors: append([]uint32(nil), r.Neighbors...),
				})
			}
			return nil
		})
		assertSameOutcome(t, fmt.Sprintf("trailing scan=%d", scan), got, ref, false)
	}
	if !f.HasPartitionPlan() {
		t.Fatal("side-scan planning should have installed a plan after the failed capture")
	}
	if f.PlanCaptureViable() {
		t.Fatal("capture should be marked non-viable after offset validation failed")
	}
}

// TestForEachRecordOrder checks the per-record convenience wrapper.
func TestForEachRecordOrder(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(5, 300, 1200)
	path := writeFile(t, dir, g, true, "fe.adj")
	f, err := gio.Open(path, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	next := uint32(0)
	err = New(f, 4).ForEach(func(r gio.Record) error {
		if r.ID != next {
			return fmt.Errorf("record %d out of order (want %d)", r.ID, next)
		}
		next++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(next) != g.NumVertices() {
		t.Fatalf("saw %d records, want %d", next, g.NumVertices())
	}
}
