package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/gio"
)

// TestParallelParityMmap re-runs the executor's core parity suite — worker
// counts 2/4/7 against the sequential oracle, raw and compressed formats,
// well-formed, truncated, corrupt and tiny files, cold-start capture — with
// every file opened through the mapped engine, with and without zero-copy
// aliasing. On fallback builds (-tags nommap) OpenMmap degrades to the
// pipelined engine and the suite still passes, trivially.
func TestParallelParityMmap(t *testing.T) {
	for _, engine := range []string{"mmap", "mmap-zerocopy"} {
		t.Run(engine, func(t *testing.T) {
			execEngine = engine
			defer func() { execEngine = "" }()
			t.Run("WellFormed", TestParallelParityWellFormed)
			t.Run("Truncated", TestParallelParityTruncated)
			t.Run("Corrupt", TestParallelParityCorrupt)
			t.Run("Property", TestParallelParityProperty)
			t.Run("ColdStartCapture", TestColdStartCapturePar)
		})
	}
}

// TestParallelMmapCancelMidScan cancels a parallel scan of a mapped file
// mid-merge: the run must stop within one batch, return the ctx error
// wrapped in a gio.ScanError with the merge position, and leave no worker
// goroutine behind (the -race build would flag workers touching the scan
// state after return).
func TestParallelMmapCancelMidScan(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(71, 20000, 120000)
	path := writeFile(t, dir, g, false, "cancel.adj")
	for _, engine := range []string{"mmap", "mmap-zerocopy"} {
		t.Run(engine, func(t *testing.T) {
			f, err := gio.OpenMmap(path, 4096, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			f.SetMmapZeroCopy(engine == "mmap-zerocopy")
			_, _ = f.Partitions(8) // warm the plan: exercise the parallel path

			ctx, cancel := context.WithCancel(context.Background())
			batches := 0
			err = New(f, 4).ForEachBatchCtx(ctx, func(batch []gio.Record) error {
				if batches++; batches == 3 {
					cancel()
				}
				return nil
			})
			var se *gio.ScanError
			if !errors.As(err, &se) {
				t.Fatalf("error = %v, want *gio.ScanError", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error = %v, want context.Canceled", err)
			}
			if se.Records == 0 || se.Records >= uint64(g.NumVertices()) {
				t.Fatalf("ScanError position = %d, want mid-scan", se.Records)
			}
		})
	}
}

// TestParallelMmapCloseDuringScan closes a mapped file while a parallel
// scan is consuming zero-copy batches from the worker channels. The run's
// PinMap reference must keep the already-shipped batches readable (the
// consumer folds every neighbor), the scan must fail (or complete, if it
// won the race) rather than fault, and Close must never unmap under a
// reader — the assertions -race and the MMU enforce.
func TestParallelMmapCloseDuringScan(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(73, 30000, 200000)
	for _, compressed := range []bool{false, true} {
		t.Run(fmt.Sprintf("compressed=%v", compressed), func(t *testing.T) {
			path := writeFile(t, dir, g, compressed, fmt.Sprintf("close-%v.adj", compressed))
			f, err := gio.OpenMmap(path, 4096, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !f.MmapActive() {
				f.Close()
				t.Skip("mmap unavailable on this platform/build")
			}
			_, _ = f.Partitions(8)

			firstBatch := make(chan struct{})
			scanDone := make(chan error, 1)
			go func() {
				var once sync.Once
				scanDone <- New(f, 4).ForEachBatch(func(batch []gio.Record) error {
					once.Do(func() { close(firstBatch) })
					var sink uint64
					for _, r := range batch {
						for _, nb := range r.Neighbors {
							sink += uint64(nb)
						}
					}
					_ = sink
					return nil
				})
			}()

			<-firstBatch
			if err := f.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if f.MmapActive() {
				t.Fatal("mapping still active after Close")
			}
			if err := <-scanDone; err != nil && !errors.Is(err, gio.ErrBadFormat) {
				t.Fatalf("scan error = %v, want ErrBadFormat-wrapped stop (or completion)", err)
			}
		})
	}
}
