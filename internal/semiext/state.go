// Package semiext holds the in-memory per-vertex structures of the paper's
// semi-external framework: the six-state array of Table 3, the ISN
// (IS-neighbor) sets, and the swap-candidate (SC) store used by two-k-swap,
// all with explicit memory accounting so experiments can report the
// framework's footprint (Table 6, Figure 10).
package semiext

// State is a vertex's swap state (Table 3 of the paper).
type State uint8

// The six states of Table 3.
const (
	// StateInitial is the pre-greedy "unvisited" state (Algorithm 1).
	StateInitial State = iota
	// StateIS (I): in the independent set.
	StateIS
	// StateNonIS (N): not in the independent set.
	StateNonIS
	// StateAdjacent (A): a non-IS vertex adjacent to exactly one IS vertex
	// (one or two for two-k-swap), eligible to swap in.
	StateAdjacent
	// StateProtected (P): an adjacent vertex that will become IS in the
	// next iteration.
	StateProtected
	// StateConflict (C): an adjacent vertex that lost a swap conflict and
	// stays non-IS this iteration.
	StateConflict
	// StateRetrograde (R): an IS vertex that will leave the set in the next
	// iteration.
	StateRetrograde
)

// String returns the paper's one-letter notation.
func (s State) String() string {
	switch s {
	case StateInitial:
		return "·"
	case StateIS:
		return "I"
	case StateNonIS:
		return "N"
	case StateAdjacent:
		return "A"
	case StateProtected:
		return "P"
	case StateConflict:
		return "C"
	case StateRetrograde:
		return "R"
	}
	return "?"
}

// NoVertex marks an empty ISN slot.
const NoVertex = ^uint32(0)

// States is the per-vertex state array, packed at four bits per vertex (two
// vertices per byte) — the framework's core O(|V|) structure at half the
// footprint of a byte-per-vertex array. The seven states of Table 3 (the six
// lettered states plus the pre-greedy Initial) need three bits, so two bits
// per vertex is information-theoretically impossible; the nibble layout is
// the densest packing whose accessors stay a single shift-and-mask on the
// scan hot path. Like a slice, a States value shares its backing storage
// when copied.
type States struct {
	n int
	b []byte
}

// NewStates returns a state array of n vertices, all StateInitial.
func NewStates(n int) States { return States{n: n, b: make([]byte, (n+1)/2)} }

// Len returns the number of vertices.
func (st States) Len() int { return st.n }

// Get returns vertex v's state.
func (st States) Get(v uint32) State {
	b := st.b[v>>1]
	if v&1 != 0 {
		b >>= 4
	}
	return State(b & 0x0f)
}

// Set records vertex v's state.
func (st States) Set(v uint32, s State) {
	i := v >> 1
	if v&1 != 0 {
		st.b[i] = st.b[i]&0x0f | byte(s)<<4
	} else {
		st.b[i] = st.b[i]&0xf0 | byte(s)
	}
}

// CountIS returns the number of vertices in state I.
func (st States) CountIS() int {
	c := 0
	for v := 0; v < st.n; v++ {
		if st.Get(uint32(v)) == StateIS {
			c++
		}
	}
	return c
}

// Collect returns the IDs of all vertices in the given state, ascending.
func (st States) Collect(want State) []uint32 {
	var out []uint32
	for v := 0; v < st.n; v++ {
		if st.Get(uint32(v)) == want {
			out = append(out, uint32(v))
		}
	}
	return out
}

// Snapshot expands the packed array into one State per vertex — the unpacked
// form handed to observation hooks (SwapOptions.OnPhase) and tests.
func (st States) Snapshot() []State {
	out := make([]State, st.n)
	for v := range out {
		out[v] = st.Get(uint32(v))
	}
	return out
}

// MemoryBytes returns the packed array's in-memory size: ⌈n/2⌉ bytes.
func (st States) MemoryBytes() uint64 { return uint64(len(st.b)) }

// ISN stores, for each A vertex, its (at most two) IS neighbors, and for
// each IS vertex w, the number of A vertices whose ISN is exactly {w} — the
// counter reuse trick of Section 5.4 that lets one-k-swap test 1-2
// swap-skeleton existence in O(deg u) without locating the partner vertex.
// Only singleton preimages are counted because only a vertex whose sole IS
// neighbor is w can serve as the witness of a 1-2 swap against w.
type ISN struct {
	first  []uint32 // per vertex: first IS neighbor or NoVertex
	second []uint32 // per vertex: second IS neighbor (two-k only) or NoVertex
	count  []uint32 // per IS vertex w: |{u : state(u)=A, ISN(u)={w}}|
	two    bool
}

// NewISN returns ISN storage for n vertices. two enables the second slot
// (two-k-swap); one-k-swap uses a single slot.
func NewISN(n int, two bool) *ISN {
	isn := &ISN{
		first: make([]uint32, n),
		count: make([]uint32, n),
		two:   two,
	}
	for i := range isn.first {
		isn.first[i] = NoVertex
	}
	if two {
		isn.second = make([]uint32, n)
		for i := range isn.second {
			isn.second[i] = NoVertex
		}
	}
	return isn
}

// Reset clears all slots and counters.
func (isn *ISN) Reset() {
	for i := range isn.first {
		isn.first[i] = NoVertex
		isn.count[i] = 0
	}
	if isn.two {
		for i := range isn.second {
			isn.second[i] = NoVertex
		}
	}
}

// Set records u's IS neighbors (1 or 2 of them). A singleton {w} bumps w's
// witness counter; a pair does not, since neither member alone can be
// exchanged for u.
func (isn *ISN) Set(u uint32, w ...uint32) {
	switch len(w) {
	case 1:
		isn.first[u] = w[0]
		isn.count[w[0]]++
	case 2:
		if !isn.two {
			panic("semiext: two IS neighbors on a one-slot ISN")
		}
		isn.first[u] = w[0]
		isn.second[u] = w[1]
	default:
		panic("semiext: ISN.Set needs one or two neighbors")
	}
}

// Clear removes u's ISN entries, decrementing the witness counter when the
// entry was a singleton.
func (isn *ISN) Clear(u uint32) {
	w1 := isn.first[u]
	w2 := NoVertex
	if isn.two {
		w2 = isn.second[u]
	}
	if w1 != NoVertex && w2 == NoVertex && isn.count[w1] > 0 {
		isn.count[w1]--
	}
	isn.first[u] = NoVertex
	if isn.two {
		isn.second[u] = NoVertex
	}
}

// Get returns u's IS neighbors (0, 1 or 2 values).
func (isn *ISN) Get(u uint32) (w1, w2 uint32, n int) {
	w1, w2 = isn.first[u], NoVertex
	if isn.two {
		w2 = isn.second[u]
	}
	switch {
	case w1 == NoVertex && w2 == NoVertex:
		return NoVertex, NoVertex, 0
	case w2 == NoVertex:
		return w1, NoVertex, 1
	case w1 == NoVertex:
		return w2, NoVertex, 1
	default:
		return w1, w2, 2
	}
}

// Has reports whether w is one of u's recorded IS neighbors.
func (isn *ISN) Has(u, w uint32) bool {
	if isn.first[u] == w {
		return true
	}
	return isn.two && isn.second[u] == w
}

// PreimageCount returns |ISN⁻¹(w)|: how many A vertices currently name w.
func (isn *ISN) PreimageCount(w uint32) uint32 { return isn.count[w] }

// MemoryBytes returns the structure's in-memory size.
func (isn *ISN) MemoryBytes() uint64 {
	b := uint64(len(isn.first)+len(isn.count)) * 4
	if isn.two {
		b += uint64(len(isn.second)) * 4
	}
	return b
}
