package semiext

// RecordBuffer is the bounded deferral store behind the scan-fusion
// machinery: vertex IDs with copies of their adjacency lists, held in scan
// order beside the packed state array so that a pass riding someone else's
// physical scan can put decisions off until that scan's state product is
// complete. The maximality sweep and the cross-round pre-swap carry are the
// two users. The buffer is budgeted in stored neighbor entries — keeping it
// in the same O(|V|) memory class as the state and ISN arrays — with
// explicit overflow (the owner falls back to a dedicated scan) and a memory
// high-water mark for the experiments' footprint accounting.
type RecordBuffer struct {
	ids   []uint32 // buffered vertices, in scan order
	pos   []uint32 // their scan positions; nil unless tracking was requested
	nbrs  []uint32 // neighbor lists, back to back
	heads []uint32 // nbrs end offset per buffered vertex

	withPos  bool
	budget   int
	overflow bool
	peak     uint64
}

// NewRecordBuffer returns a buffer bounded at budget stored neighbor
// entries. withPos additionally records each vertex's scan position, for
// owners that later merge the buffer with out-of-buffer vertices in scan
// order (two-k-swap's validating swap replay).
func NewRecordBuffer(budget int, withPos bool) *RecordBuffer {
	return &RecordBuffer{budget: budget, withPos: withPos}
}

// Append copies one record into the buffer and reports whether it fit.
// Exceeding the budget discards everything already buffered and latches
// Overflowed — a partial deferral is useless, and the fallback scan the
// owner will run instead covers the whole file anyway. Appends after
// overflow are ignored.
func (b *RecordBuffer) Append(id, pos uint32, neighbors []uint32) bool {
	if b.overflow {
		return false
	}
	if len(b.nbrs)+len(neighbors) > b.budget {
		b.overflow = true
		b.ids, b.pos, b.nbrs, b.heads = nil, nil, nil, nil
		return false
	}
	b.ids = append(b.ids, id)
	if b.withPos {
		b.pos = append(b.pos, pos)
	}
	b.nbrs = append(b.nbrs, neighbors...)
	b.heads = append(b.heads, uint32(len(b.nbrs)))
	if cur := uint64(len(b.ids)+len(b.pos)+len(b.heads)+len(b.nbrs)) * 4; cur > b.peak {
		b.peak = cur
	}
	return true
}

// Overflowed reports whether the budget was ever exceeded since the last
// Reset; the buffered contents are gone and the owner must fall back to a
// dedicated scan.
func (b *RecordBuffer) Overflowed() bool { return b.overflow }

// Len returns the number of buffered records.
func (b *RecordBuffer) Len() int { return len(b.ids) }

// ID returns the i-th buffered vertex.
func (b *RecordBuffer) ID(i int) uint32 { return b.ids[i] }

// Pos returns the i-th buffered vertex's scan position. Only valid when the
// buffer was created with position tracking.
func (b *RecordBuffer) Pos(i int) uint32 { return b.pos[i] }

// Neighbors returns the i-th buffered vertex's adjacency list. The slice
// aliases the buffer and is valid until the next Reset.
func (b *RecordBuffer) Neighbors(i int) []uint32 {
	start := uint32(0)
	if i > 0 {
		start = b.heads[i-1]
	}
	return b.nbrs[start:b.heads[i]]
}

// ForEach visits the buffered records in scan order.
func (b *RecordBuffer) ForEach(fn func(id uint32, neighbors []uint32)) {
	start := uint32(0)
	for i, id := range b.ids {
		end := b.heads[i]
		fn(id, b.nbrs[start:end])
		start = end
	}
}

// Reset drops the contents and clears overflow, keeping capacity (and the
// high-water mark, which spans the whole run).
func (b *RecordBuffer) Reset() {
	b.ids, b.pos, b.nbrs, b.heads = b.ids[:0], b.pos[:0], b.nbrs[:0], b.heads[:0]
	b.overflow = false
}

// MemoryPeak returns the high-water byte footprint of the buffer.
func (b *RecordBuffer) MemoryPeak() uint64 { return b.peak }
