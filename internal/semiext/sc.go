package semiext

// Pair is a swap-candidate pair (u, v): two A vertices that could replace
// the IS pair the bucket is keyed by (Definition 2 of the paper).
type Pair struct {
	U, V uint32
}

// SCStore holds the swap-candidate sets SC(w1, w2) of the two-k-swap
// algorithm, keyed by the unordered IS pair {w1, w2}. It tracks a high-water
// mark of stored vertices, which the paper bounds by |V| − e^α (Lemma 6) and
// measures empirically as |SC| ≈ 0.13·|V| (Figure 10).
type SCStore struct {
	buckets   map[uint64][]Pair
	size      int // current number of stored vertices (2 per pair)
	highWater int
}

// NewSCStore returns an empty store.
func NewSCStore() *SCStore {
	return &SCStore{buckets: make(map[uint64][]Pair)}
}

func scKey(w1, w2 uint32) uint64 {
	if w1 > w2 {
		w1, w2 = w2, w1
	}
	return uint64(w1)<<32 | uint64(w2)
}

// Add records the pair (u, v) as a swap candidate for the IS pair {w1, w2}.
func (sc *SCStore) Add(w1, w2, u, v uint32) {
	k := scKey(w1, w2)
	sc.buckets[k] = append(sc.buckets[k], Pair{U: u, V: v})
	sc.size += 2
	if sc.size > sc.highWater {
		sc.highWater = sc.size
	}
}

// Pairs returns the candidate pairs recorded for {w1, w2}. Callers must
// re-validate the states of returned vertices; entries are not eagerly
// removed when a vertex leaves state A.
func (sc *SCStore) Pairs(w1, w2 uint32) []Pair {
	return sc.buckets[scKey(w1, w2)]
}

// Free drops the bucket for {w1, w2} (Algorithm 4 line 8 frees the space
// once its skeleton fires).
func (sc *SCStore) Free(w1, w2 uint32) {
	k := scKey(w1, w2)
	if ps, ok := sc.buckets[k]; ok {
		sc.size -= 2 * len(ps)
		delete(sc.buckets, k)
	}
}

// Reset drops all buckets, keeping the high-water mark.
func (sc *SCStore) Reset() {
	sc.buckets = make(map[uint64][]Pair)
	sc.size = 0
}

// Size returns the current number of stored vertices (two per pair).
func (sc *SCStore) Size() int { return sc.size }

// HighWater returns the peak number of stored vertices over the store's
// lifetime.
func (sc *SCStore) HighWater() int { return sc.highWater }

// MemoryBytes returns the approximate in-memory footprint at the high-water
// mark: 8 bytes per stored vertex pair entry plus map overhead per bucket.
func (sc *SCStore) MemoryBytes() uint64 {
	return uint64(sc.highWater) * 4
}
