package semiext

import "fmt"

// legalTransitions encodes the paper's Figure 3 state-transition diagram,
// extended with the transitions the full algorithm needs around it:
//
//   - A→P (a 1-k/2-k swap skeleton claims the vertex), A→C (a neighbor is
//     already P), A→A (recomputed), A→N (its IS neighborhood changed size);
//   - P→I (the swap commits), P→C (two-k group rollback);
//   - I→R (the vertex is scheduled to leave), R→N (it leaves), R→I
//     (two-k rollback reinstates it);
//   - C→{A, N, I} and N→{A, N, I} in the post-swap recomputation and 0↔1
//     additions (C→C when re-conflicted within a round);
//   - Initial→{IS, NonIS, A} covers Algorithm 1 and swap setup.
//
// The checker is deliberately permissive only where the algorithms are:
// anything outside this relation is a state-machine bug.
var legalTransitions = map[State][]State{
	StateInitial:    {StateIS, StateNonIS, StateAdjacent},
	StateIS:         {StateRetrograde},
	StateNonIS:      {StateAdjacent, StateIS},
	StateAdjacent:   {StateProtected, StateConflict, StateNonIS},
	StateProtected:  {StateIS, StateConflict},
	StateConflict:   {StateAdjacent, StateNonIS, StateIS},
	StateRetrograde: {StateNonIS, StateIS},
}

// TransitionChecker validates that a sequence of state-array snapshots only
// ever steps through the Figure 3 diagram. Feed it every snapshot a swap
// run produces (e.g. from core.SwapOptions.OnPhase); it remembers the
// previous snapshot and reports the first illegal edge.
type TransitionChecker struct {
	prev  []State
	label string
}

// Check compares the snapshot against the previous one and returns an error
// describing the first illegal transition, or nil. label annotates error
// messages (e.g. "round 2 pre-swap").
func (tc *TransitionChecker) Check(label string, states []State) error {
	defer func() {
		if cap(tc.prev) < len(states) {
			tc.prev = make([]State, len(states))
		}
		tc.prev = tc.prev[:len(states)]
		copy(tc.prev, states)
		tc.label = label
	}()
	if tc.prev == nil {
		return nil
	}
	if len(tc.prev) != len(states) {
		return fmt.Errorf("semiext: snapshot size changed from %d to %d", len(tc.prev), len(states))
	}
	for v := range states {
		from, to := tc.prev[v], states[v]
		if from == to {
			continue
		}
		if !transitionLegal(from, to) {
			return fmt.Errorf("semiext: vertex %d made illegal transition %s→%s between %q and %q",
				v, from, to, tc.label, label)
		}
	}
	return nil
}

func transitionLegal(from, to State) bool {
	for _, t := range legalTransitions[from] {
		if t == to {
			return true
		}
	}
	return false
}
