package semiext

import (
	"reflect"
	"testing"
)

func TestRecordBufferRoundTrip(t *testing.T) {
	b := NewRecordBuffer(10, true)
	recs := []struct {
		id, pos uint32
		nbrs    []uint32
	}{
		{4, 0, []uint32{1, 2, 3}},
		{7, 2, nil},
		{9, 5, []uint32{0, 4}},
	}
	for _, r := range recs {
		if !b.Append(r.id, r.pos, r.nbrs) {
			t.Fatalf("append %d rejected within budget", r.id)
		}
	}
	if b.Len() != len(recs) || b.Overflowed() {
		t.Fatalf("len=%d overflow=%v", b.Len(), b.Overflowed())
	}
	for i, r := range recs {
		if b.ID(i) != r.id || b.Pos(i) != r.pos {
			t.Fatalf("record %d: id/pos %d/%d, want %d/%d", i, b.ID(i), b.Pos(i), r.id, r.pos)
		}
		if got := b.Neighbors(i); len(got) != len(r.nbrs) || (len(got) > 0 && !reflect.DeepEqual(got, r.nbrs)) {
			t.Fatalf("record %d: neighbors %v, want %v", i, got, r.nbrs)
		}
	}
	var order []uint32
	b.ForEach(func(id uint32, nbrs []uint32) { order = append(order, id) })
	if !reflect.DeepEqual(order, []uint32{4, 7, 9}) {
		t.Fatalf("ForEach order %v", order)
	}
	if b.MemoryPeak() == 0 {
		t.Fatal("no memory high-water recorded")
	}
}

func TestRecordBufferOverflowAndReset(t *testing.T) {
	b := NewRecordBuffer(4, false)
	if !b.Append(1, 0, []uint32{1, 2, 3}) {
		t.Fatal("first append rejected")
	}
	if b.Append(2, 1, []uint32{4, 5}) {
		t.Fatal("append past budget accepted")
	}
	if !b.Overflowed() || b.Len() != 0 {
		t.Fatalf("overflow did not discard: overflowed=%v len=%d", b.Overflowed(), b.Len())
	}
	if b.Append(3, 2, []uint32{6}) {
		t.Fatal("append after overflow accepted")
	}
	b.Reset()
	if b.Overflowed() || b.Len() != 0 {
		t.Fatal("reset did not clear overflow")
	}
	if !b.Append(3, 2, []uint32{6}) {
		t.Fatal("append after reset rejected")
	}
	if b.ID(0) != 3 || len(b.Neighbors(0)) != 1 || b.Neighbors(0)[0] != 6 {
		t.Fatalf("post-reset contents wrong: id=%d nbrs=%v", b.ID(0), b.Neighbors(0))
	}
}
