package semiext

import (
	"strings"
	"testing"
)

func TestTransitionCheckerAcceptsLegal(t *testing.T) {
	var tc TransitionChecker
	seqs := [][]State{
		{StateInitial, StateInitial, StateInitial},
		{StateIS, StateAdjacent, StateNonIS},          // setup
		{StateRetrograde, StateProtected, StateNonIS}, // pre-swap
		{StateNonIS, StateIS, StateNonIS},             // swap
		{StateAdjacent, StateIS, StateNonIS},          // post-swap recompute
	}
	for i, s := range seqs {
		if err := tc.Check("step", s); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestTransitionCheckerRejectsIllegal(t *testing.T) {
	cases := []struct {
		name     string
		from, to State
	}{
		{"I jumps to N without R", StateIS, StateNonIS},
		{"P jumps back to A", StateProtected, StateAdjacent},
		{"R becomes A", StateRetrograde, StateAdjacent},
		{"N regresses to Initial", StateNonIS, StateInitial},
		{"A becomes I directly", StateAdjacent, StateIS},
	}
	for _, c := range cases {
		var tc TransitionChecker
		if err := tc.Check("before", []State{c.from}); err != nil {
			t.Fatalf("%s: priming failed: %v", c.name, err)
		}
		err := tc.Check("after", []State{c.to})
		if err == nil {
			t.Fatalf("%s: illegal transition accepted", c.name)
		}
		if !strings.Contains(err.Error(), "illegal transition") {
			t.Fatalf("%s: unexpected error %v", c.name, err)
		}
	}
}

func TestTransitionCheckerSizeChange(t *testing.T) {
	var tc TransitionChecker
	if err := tc.Check("a", []State{StateInitial}); err != nil {
		t.Fatal(err)
	}
	if err := tc.Check("b", []State{StateInitial, StateInitial}); err == nil {
		t.Fatal("size change accepted")
	}
}
