package semiext

import (
	"testing"
	"testing/quick"
)

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		StateInitial: "·", StateIS: "I", StateNonIS: "N",
		StateAdjacent: "A", StateProtected: "P", StateConflict: "C",
		StateRetrograde: "R", State(99): "?",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
}

func TestStatesCollect(t *testing.T) {
	st := NewStates(5)
	st.Set(1, StateIS)
	st.Set(3, StateIS)
	st.Set(4, StateAdjacent)
	if st.CountIS() != 2 {
		t.Fatalf("CountIS = %d", st.CountIS())
	}
	got := st.Collect(StateIS)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Collect = %v", got)
	}
	if st.MemoryBytes() != 3 {
		t.Fatalf("MemoryBytes = %d, want 3 (5 vertices packed 2 per byte)", st.MemoryBytes())
	}
}

// TestStatesPackedRoundTrip drives every state value through every packing
// slot: odd and even nibbles, shared bytes, and the dangling half byte of an
// odd-length array. Neighbor slots must be unaffected by a Set.
func TestStatesPackedRoundTrip(t *testing.T) {
	all := []State{StateInitial, StateIS, StateNonIS, StateAdjacent,
		StateProtected, StateConflict, StateRetrograde}
	const n = 33 // odd, so the last nibble is the dangling one
	st := NewStates(n)
	want := make([]State, n)
	for i := 0; i < 4*n; i++ {
		v := uint32((i * 13) % n)
		s := all[(i*7)%len(all)]
		st.Set(v, s)
		want[v] = s
		for u := 0; u < n; u++ {
			if got := st.Get(uint32(u)); got != want[u] {
				t.Fatalf("after Set(%d,%v): Get(%d) = %v, want %v", v, s, u, got, want[u])
			}
		}
	}
	snap := st.Snapshot()
	for u := range snap {
		if snap[u] != want[u] {
			t.Fatalf("Snapshot[%d] = %v, want %v", u, snap[u], want[u])
		}
	}
}

// TestStatesPackedFootprint pins the satellite requirement: the packed array
// must cost strictly less than the former byte-per-vertex layout — half of
// it, rounded up — and Len must stay the vertex count, not the byte count.
func TestStatesPackedFootprint(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 1024, 99999} {
		st := NewStates(n)
		before := uint64(n) // the previous []State representation: 1 byte/vertex
		after := st.MemoryBytes()
		if want := uint64((n + 1) / 2); after != want {
			t.Fatalf("n=%d: MemoryBytes = %d, want %d", n, after, want)
		}
		if n > 1 && after >= before {
			t.Fatalf("n=%d: packed footprint %d not below byte-per-vertex %d", n, after, before)
		}
		if st.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, st.Len())
		}
	}
}

func TestISNSingle(t *testing.T) {
	isn := NewISN(10, false)
	isn.Set(1, 5)
	isn.Set(2, 5)
	isn.Set(3, 7)
	if isn.PreimageCount(5) != 2 || isn.PreimageCount(7) != 1 {
		t.Fatal("counters wrong after Set")
	}
	w, _, n := isn.Get(1)
	if n != 1 || w != 5 {
		t.Fatalf("Get(1) = %d,%d", w, n)
	}
	if !isn.Has(1, 5) || isn.Has(1, 7) {
		t.Fatal("Has wrong")
	}
	isn.Clear(1)
	if isn.PreimageCount(5) != 1 {
		t.Fatal("Clear did not decrement")
	}
	if _, _, n := isn.Get(1); n != 0 {
		t.Fatal("Clear did not clear")
	}
	isn.Clear(1) // double clear is a no-op
	if isn.PreimageCount(5) != 1 {
		t.Fatal("double Clear decremented")
	}
}

func TestISNPair(t *testing.T) {
	isn := NewISN(10, true)
	isn.Set(1, 4, 6)
	// Pairs do not count as witnesses.
	if isn.PreimageCount(4) != 0 || isn.PreimageCount(6) != 0 {
		t.Fatal("pair Set must not bump witness counters")
	}
	w1, w2, n := isn.Get(1)
	if n != 2 || w1 != 4 || w2 != 6 {
		t.Fatalf("Get = %d,%d,%d", w1, w2, n)
	}
	if !isn.Has(1, 4) || !isn.Has(1, 6) || isn.Has(1, 5) {
		t.Fatal("Has wrong for pair")
	}
	isn.Clear(1)
	if _, _, n := isn.Get(1); n != 0 {
		t.Fatal("pair Clear failed")
	}
	isn.Set(2, 4)
	if isn.PreimageCount(4) != 1 {
		t.Fatal("singleton after pair broken")
	}
	isn.Reset()
	if isn.PreimageCount(4) != 0 {
		t.Fatal("Reset failed")
	}
}

func TestISNPanics(t *testing.T) {
	isn := NewISN(4, false)
	mustPanic(t, func() { isn.Set(0, 1, 2) }) // pair on one-slot ISN
	mustPanic(t, func() { isn.Set(0) })       // no neighbors
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestISNCounterProperty(t *testing.T) {
	// The witness counter always equals the number of vertices whose ISN is
	// exactly {w}, under any interleaving of Set/Clear.
	f := func(ops []uint16) bool {
		const n = 16
		isn := NewISN(n, true)
		arity := make(map[uint32]int)
		target := make(map[uint32][2]uint32)
		for _, op := range ops {
			u := uint32(op % n)
			w1 := uint32((op >> 4) % n)
			w2 := uint32((op >> 8) % n)
			switch (op >> 12) % 3 {
			case 0: // set singleton
				isn.Clear(u)
				isn.Set(u, w1)
				arity[u] = 1
				target[u] = [2]uint32{w1, NoVertex}
			case 1: // set pair
				isn.Clear(u)
				isn.Set(u, w1, w2)
				arity[u] = 2
				target[u] = [2]uint32{w1, w2}
			case 2: // clear
				isn.Clear(u)
				arity[u] = 0
			}
		}
		for w := uint32(0); w < n; w++ {
			want := uint32(0)
			for u := uint32(0); u < n; u++ {
				if arity[u] == 1 && target[u][0] == w {
					want++
				}
			}
			if isn.PreimageCount(w) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSCStore(t *testing.T) {
	sc := NewSCStore()
	sc.Add(3, 1, 10, 11)
	sc.Add(1, 3, 12, 13) // same unordered key
	sc.Add(2, 4, 20, 21)
	if got := sc.Pairs(1, 3); len(got) != 2 {
		t.Fatalf("Pairs(1,3) = %v", got)
	}
	if got := sc.Pairs(3, 1); len(got) != 2 {
		t.Fatal("key must be unordered")
	}
	if sc.Size() != 6 {
		t.Fatalf("Size = %d, want 6", sc.Size())
	}
	if sc.HighWater() != 6 {
		t.Fatalf("HighWater = %d", sc.HighWater())
	}
	sc.Free(1, 3)
	if sc.Size() != 2 || len(sc.Pairs(1, 3)) != 0 {
		t.Fatal("Free failed")
	}
	if sc.HighWater() != 6 {
		t.Fatal("HighWater must persist past Free")
	}
	sc.Reset()
	if sc.Size() != 0 || sc.HighWater() != 6 {
		t.Fatal("Reset wrong")
	}
}
