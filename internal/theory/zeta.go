// Package theory implements the paper's analytical machinery for Power-Law
// Random graphs P(α, β): the partial zeta sums of Equation (2), the expected
// greedy independent-set size of Lemma 1 / Proposition 2, the swap-gain
// estimate of Lemma 3 / Proposition 5, and the SC-size bound of Lemma 6.
// These reproduce the theory-side numbers of Table 2, Figure 6, Table 9 and
// Figure 10.
package theory

import "math"

// Zeta returns the partial zeta sum ζ(x, y) = Σ_{i=1..y} 1/i^x used
// throughout Section 4.2's analysis (Equation 2).
func Zeta(x float64, y int) float64 {
	var sum float64
	// Sum smallest terms first for accuracy.
	for i := y; i >= 1; i-- {
		sum += math.Pow(float64(i), -x)
	}
	return sum
}

// Params are the two parameters of the power-law random graph model
// P(α, β): α is the logarithm of the graph's size and β the log-log growth
// rate. The number of vertices of degree x is e^α / x^β.
type Params struct {
	Alpha float64
	Beta  float64
}

// MaxDegree returns Δ = ⌊e^{α/β}⌋, the maximum degree of the graph.
func (p Params) MaxDegree() int {
	d := int(math.Floor(math.Exp(p.Alpha / p.Beta)))
	if d < 1 {
		d = 1
	}
	return d
}

// VerticesOfDegree returns the expected number of vertices with degree x,
// e^α / x^β (Equation 1).
func (p Params) VerticesOfDegree(x int) float64 {
	return math.Exp(p.Alpha) / math.Pow(float64(x), p.Beta)
}

// NumVertices returns |V| = ζ(β, Δ)·e^α (Equation 2).
func (p Params) NumVertices() float64 {
	return Zeta(p.Beta, p.MaxDegree()) * math.Exp(p.Alpha)
}

// NumEdges returns |E| = ζ(β−1, Δ)·e^α / 2 (Equation 2 counts endpoints;
// we return undirected edges).
func (p Params) NumEdges() float64 {
	return Zeta(p.Beta-1, p.MaxDegree()) * math.Exp(p.Alpha) / 2
}

// ParamsForVertices solves for α such that P(α, β) has approximately n
// vertices. The fixed point converges in a handful of iterations because
// Δ(α) varies slowly.
func ParamsForVertices(n int, beta float64) Params {
	if n < 1 {
		n = 1
	}
	alpha := math.Log(float64(n)) // initial guess with ζ≈1
	for i := 0; i < 60; i++ {
		p := Params{Alpha: alpha, Beta: beta}
		z := Zeta(beta, p.MaxDegree())
		next := math.Log(float64(n) / z)
		if math.Abs(next-alpha) < 1e-12 {
			alpha = next
			break
		}
		alpha = next
	}
	return Params{Alpha: alpha, Beta: beta}
}
