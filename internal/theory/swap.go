package theory

import "math"

// lchoose returns log C(n, k), or -Inf when the binomial is zero.
func lchoose(n, k float64) float64 {
	if k < 0 || n < 0 || k > n {
		return math.Inf(-1)
	}
	ln, _ := math.Lgamma(n + 1)
	lk, _ := math.Lgamma(k + 1)
	lnk, _ := math.Lgamma(n - k + 1)
	return ln - lk - lnk
}

// C returns the binomial coefficient C(n, k) as a float64, 0 when invalid.
func C(n, k float64) float64 {
	l := lchoose(n, k)
	if math.IsInf(l, -1) {
		return 0
	}
	return math.Exp(l)
}

// EdgeEndpointFraction returns c(α, β) = Σ_i i·GR_i(α,β) / e^α — the
// IS-incident endpoint mass used by Lemma 3.
func EdgeEndpointFraction(p Params) float64 {
	var sum float64
	for i := 1; i <= p.MaxDegree(); i++ {
		sum += float64(i) * GreedyByDegree(p, i)
	}
	return sum / math.Exp(p.Alpha)
}

// cPrime returns c'(α,β) = ζ(β−1,Δ) / (ζ(β−1,Δ) − 2c(α,β)) from Lemma 3.
func cPrime(p Params, c float64) float64 {
	z := Zeta(p.Beta-1, p.MaxDegree())
	den := z - 2*c
	if den <= 0 {
		return math.Inf(1)
	}
	return z / den
}

// maxSwapDegreeCap bounds the degree range the swap-gain sums iterate over.
// Lemma 3's whole point is that d_s is a small constant — the T(x, y, i)
// contributions decay geometrically in degree — so truncating the O(d_s³)
// triple sum here changes the estimate by a vanishing amount while keeping
// it cheap even when the closed form degenerates (c' → 1 at small β).
const maxSwapDegreeCap = 64

// MaxSwapDegree returns d_s, the largest degree that can contribute new IS
// vertices in a 1-k swap with non-negligible probability (Lemma 3):
// d_s ≤ (α + ln ζ(β, Δ)) / ln c'(α, β) = ln|V| / ln c'.
func MaxSwapDegree(p Params) int {
	return maxSwapDegreeFromC(p, EdgeEndpointFraction(p))
}

func maxSwapDegreeFromC(p Params, c float64) int {
	cp := cPrime(p, c)
	ds := maxSwapDegreeCap
	if !math.IsInf(cp, 1) && cp > 1 {
		lnV := p.Alpha + math.Log(Zeta(p.Beta, p.MaxDegree()))
		if d := int(math.Ceil(lnV / math.Log(cp))); d < ds {
			ds = d
		}
	}
	if ds < 2 {
		ds = 2
	}
	if ds > p.MaxDegree() {
		ds = p.MaxDegree()
	}
	return ds
}

// binsBallsPr is Equation (14): the probability that, throwing m1 type-1 and
// m2 type-2 balls into n bins of capacity d, the first bin receives at least
// one ball of each type.
func binsBallsPr(m1, m2, n, d float64) float64 {
	if m1 < 1 || m2 < 1 || n < 1 || d < 1 {
		return 0
	}
	num := lchoose(d, 1) + lchoose(n-d, m1-1) + lchoose(d-1, 1) + lchoose(n-d-m1+1, m2-1)
	den := lchoose(n, m1) + lchoose(n-m1, m2)
	if math.IsInf(num, -1) || math.IsInf(den, -1) {
		return 0
	}
	pr := math.Exp(num - den)
	if pr > 1 {
		pr = 1
	}
	return pr
}

// swapModel caches the per-degree quantities shared by SwapGain and SCBound.
type swapModel struct {
	p     Params
	ds    int
	gr    []float64 // gr[i] = GR_i, 1-indexed
	nv    []float64 // nv[i] = expected vertices of degree i
	a     []float64 // a[i] = |A_i| (adjacent vertices of degree i)
	wMass float64   // Σ_{x≥2} x·GR_x, the ISN target mass
	c     float64   // EdgeEndpointFraction
	z     float64   // ζ(β−1, Δ)
}

func newSwapModel(p Params) *swapModel {
	m := &swapModel{p: p}
	delta := p.MaxDegree()
	m.gr = make([]float64, delta+1)
	m.nv = make([]float64, delta+1)
	m.a = make([]float64, delta+1)
	m.z = Zeta(p.Beta-1, delta)
	ea := math.Exp(p.Alpha)
	var dangerMass, selectedMass float64
	for i := 1; i <= delta; i++ {
		gri, cond := greedyDegreeRates(p, i, m.z, dangerMass)
		m.gr[i] = gri
		m.nv[i] = p.VerticesOfDegree(i)
		ni := math.Floor(ea / math.Pow(float64(i), p.Beta))
		dangerMass += float64(i) * ni * cond
		selectedMass += float64(i) * gri
	}
	m.c = selectedMass / ea
	m.ds = maxSwapDegreeFromC(p, m.c)
	// ISN targets are distributed over the *whole* IS endpoint mass —
	// including degree-1 IS vertices, which soak up most A vertices yet can
	// never host a 1-2 swap (their single neighbor is the A vertex itself).
	for x := 1; x <= delta; x++ {
		m.wMass += float64(x) * m.gr[x]
	}
	// |A_i|: non-IS degree-i vertices with exactly one IS neighbor,
	// conditioned on having at least one (Equation 13).
	pIS := m.c / m.z // chance one random endpoint lands on an IS vertex
	if pIS > 1 {
		pIS = 1
	}
	for i := 1; i <= m.ds; i++ {
		nonIS := m.nv[i] - m.gr[i]
		if nonIS <= 0 {
			continue
		}
		exactlyOne := float64(i) * pIS * math.Pow(1-pIS, float64(i-1))
		atLeastOne := 1 - math.Pow(1-pIS, float64(i))
		if atLeastOne <= 0 {
			continue
		}
		frac := exactlyOne / atLeastOne
		if frac > 1 {
			frac = 1
		}
		m.a[i] = nonIS * frac
	}
	return m
}

// aTo returns |A_{x,i}|: A vertices of degree x whose ISN has degree i
// (Lemma 4 requires i ≤ x), distributing A_x over IS targets proportionally
// to their degree mass.
func (m *swapModel) aTo(x, i int) float64 {
	if m.wMass <= 0 || i > x || i < 2 {
		return 0
	}
	return m.a[x] * float64(i) * m.gr[i] / m.wMass
}

// t is T(x, y, i) in the spirit of Equation (15): the expected number of IS
// vertices of degree i exchanged for two A vertices of degrees x and y.
// Exposed for the per-pair decomposition; SwapGain itself aggregates the
// ball types first (see below).
func (m *swapModel) t(x, y, i int) float64 {
	bins := m.gr[i]
	if bins < 1 {
		return 0
	}
	pr := binsBallsPr(m.aTo(x, i), m.aTo(y, i), bins, float64(i))
	return bins * pr
}

// atLeastTwoPr is the bins-and-balls probability that the first of n bins
// (capacity d) receives at least two of m balls — the event that an IS
// vertex has two swap partners, i.e. a 1-2 swap skeleton exists for it.
func atLeastTwoPr(mBalls, n, d float64) float64 {
	if mBalls < 2 || n < 1 || d < 2 {
		return 0
	}
	den := lchoose(n, mBalls)
	if math.IsInf(den, -1) {
		return 0
	}
	p0 := math.Exp(lchoose(n-d, mBalls) - den)
	p1 := d * math.Exp(lchoose(n-d, mBalls-1)-den)
	pr := 1 - p0 - p1
	if pr < 0 {
		return 0
	}
	if pr > 1 {
		return 1
	}
	return pr
}

// SwapGain returns SG(α, β), the expected number of net-new IS vertices
// added by the first round of one-k-swap on top of the greedy solution
// (Proposition 5). Each successful 1↔2 swap removes one IS vertex and adds
// two, so the net gain equals the number of swapped IS vertices: a degree-i
// IS vertex w swaps when at least two of the A vertices naming it as their
// only IS neighbor are mutually non-adjacent, which the bins-and-balls
// model of Equation (14) evaluates with the A masses of Lemma 4 (only A
// vertices of degree ≥ i target w, and no degree beyond d_s contributes —
// Lemma 3).
//
// Note on fidelity: Equation (5) as printed sums T(x, y, i) over every
// degree pair (x, y), which counts the same IS vertex once per pair and
// diverges as soon as the A masses saturate the per-pair probability; we
// aggregate the partner mass per target degree instead, which keeps the
// estimate bounded by GR_i per degree and matches the measured swap gains
// (EXPERIMENTS.md).
func SwapGain(p Params) float64 {
	m := newSwapModel(p)
	var sg float64
	for i := 2; i <= m.ds; i++ {
		bins := m.gr[i]
		if bins < 1 {
			continue
		}
		var partners float64
		for x := i; x <= m.ds; x++ {
			partners += m.aTo(x, i)
		}
		gain := bins * atLeastTwoPr(partners, bins, float64(i))
		if gain > bins {
			gain = bins
		}
		sg += gain
	}
	return sg
}

// OneKSwap returns the expected IS size after one round of one-k-swap:
// GR(α, β) + SG(α, β).
func OneKSwap(p Params) float64 {
	return Greedy(p) + SwapGain(p)
}

// MaxSCDegree returns d_2k from Lemma 6 (Equation 17), the largest degree of
// vertices that can appear in SC sets.
func MaxSCDegree(p Params) int {
	c := EdgeEndpointFraction(p)
	z := Zeta(p.Beta-1, p.MaxDegree())
	if z-c <= 0 || z-2*c <= 0 {
		return p.MaxDegree()
	}
	num := p.Alpha + math.Log(Zeta(p.Beta, p.MaxDegree())) + 2*math.Log(z/(z-c))
	den := math.Log((z - c) / (z - 2*c))
	if den <= 0 {
		return p.MaxDegree()
	}
	d := int(math.Ceil(num / den))
	if d < 2 {
		d = 2
	}
	if d > p.MaxDegree() {
		d = p.MaxDegree()
	}
	return d
}

// SCBound returns Lemma 6's high-probability bound on the total number of
// vertices stored in SC sets during one two-k-swap round (Equation 19).
// The paper further relaxes it to |V| − e^α; we return the tighter sum.
func SCBound(p Params) float64 {
	m := newSwapModel(p)
	d2k := MaxSCDegree(p)
	pIS := m.c / m.z
	if pIS > 1 {
		pIS = 1
	}
	// p_i: probability a non-IS vertex of degree d2k has i IS neighbors.
	pi := func(i int) float64 {
		return C(float64(d2k), float64(i)) * math.Pow(pIS, float64(i)) *
			math.Pow(1-pIS, float64(d2k-i))
	}
	bmax := 0.0
	if m.z-2*m.c > 0 && m.z/(m.z-2*m.c) > 1 {
		bmax = m.c / m.z / math.Log(m.z/(m.z-2*m.c))
	}
	var sum float64
	for i := 2; i <= d2k; i++ {
		var cum float64
		for j := 1; j <= i; j++ {
			cum += pi(j)
		}
		if cum <= 0 {
			continue
		}
		contrib := m.nv[min(i, len(m.nv)-1)] * (float64(i)*bmax*pi(1) + pi(2)) / cum
		if contrib > 0 {
			sum += contrib
		}
	}
	limit := p.NumVertices() - math.Exp(p.Alpha)
	if sum > limit && limit > 0 {
		sum = limit
	}
	return sum
}
