package theory

import "math"

// GreedyByDegree returns GR_i(α, β), the expected number of degree-i
// vertices that Algorithm 1 places in the independent set (Lemma 1):
//
//	GR_i ≈ Σ_{x=1}^{⌊e^α/i^β⌋} ( i^β·x/e^α + (ζ(β−1,Δ) − ζ(β−1,i)) / ζ(β−1,Δ) )^i
//
// The term inside the power is the probability that one random neighbor of
// the x-th degree-i vertex does not pre-empt it: either the neighbor has a
// larger degree (the zeta ratio) or it is a degree-i vertex that the scan
// has not reached. Terms are clamped to [0, 1].
// The derivation below follows Lemma 1's structure — the x-th degree-i
// vertex in scan order survives iff none of its i random endpoints lands on
// an already-selected vertex — but evaluates the selection probability
// directly rather than through the paper's printed closed form, which (as
// transcribed) grows with x and exceeds the Algorithm 5 upper bound at
// every β we checked. EXPERIMENTS.md records the validation: this estimate
// tracks measured Greedy sizes within ~1–3% from below, matching the
// accuracy profile the paper reports in Table 9.
//
// Model: when the x-th degree-i vertex is scanned, the endpoints already
// absorbed into the set have mass Σ_{s<i} s·GR_s + i·x·r_i out of the total
// e^α·ζ(β−1, Δ), where r_i = GR_i/n_i is degree i's own selection rate. A
// random endpoint is dangerous with that probability, so the vertex
// survives with (1 − A − B·x)^i, and summing over x in closed form
// (an integral) gives a fixed-point equation in r_i solved by iteration.
// The danger a scanned degree-s neighbor u poses is its selection
// probability *conditioned on the edge to us*: one of u's s endpoints is
// reserved for that edge, so only the other s−1 can have excluded u. For
// s = 1 this conditional probability is exactly 1 — a pendant pair always
// loses one member — which the marginal rate would miss.
func GreedyByDegree(p Params, i int) float64 {
	delta := p.MaxDegree()
	if i > delta {
		return 0
	}
	// Recompute the danger prefix the slow way for the standalone entry
	// point; Greedy threads it incrementally.
	zAll := Zeta(p.Beta-1, delta)
	var dangerMass float64
	for s := 1; s < i; s++ {
		gri, cond := greedyDegreeRates(p, s, zAll, dangerMass)
		_ = gri
		ns := math.Floor(math.Exp(p.Alpha) / math.Pow(float64(s), p.Beta))
		dangerMass += float64(s) * ns * cond
	}
	gri, _ := greedyDegreeRates(p, i, zAll, dangerMass)
	return gri
}

// greedyDegreeRates returns GR_i and the conditional selection rate r̃_i of
// a degree-i vertex given one endpoint reserved, with dangerMass =
// Σ_{s<i} s·n_s·r̃_s the dangerous endpoint mass of fully scanned degrees
// and total normalizer e^α·ζ(β−1, Δ).
//
// The x-th degree-i vertex in scan order survives with (1 − a − b·x)^i,
// where a = dangerMass/total and b = i·r̃_i/total (within-degree danger
// grows linearly as the scan proceeds). Integrating over x gives GR_i; the
// conditional rate uses exponent i−1 and closes the fixed point.
func greedyDegreeRates(p Params, i int, zAll, dangerMass float64) (gri, cond float64) {
	ea := math.Exp(p.Alpha)
	ni := math.Floor(ea / math.Pow(float64(i), p.Beta)) // vertices of degree i
	if ni < 1 {
		return 0, 0
	}
	total := ea * zAll // all edge endpoints
	if total <= 0 {
		return ni, 1
	}
	a := dangerMass / total // danger from smaller degrees (fully scanned)
	if a >= 1 {
		return 0, 0
	}
	fi := float64(i)
	// meanPow(e, b) = (1/n_i)·∫_0^{n_i} (1 − a − b·x)^e dx.
	meanPow := func(e, b float64) float64 {
		if b < 1e-18 {
			return math.Pow(1-a, e)
		}
		lo := 1 - a - b*ni
		if lo < 0 {
			lo = 0
		}
		v := (math.Pow(1-a, e+1) - math.Pow(lo, e+1)) / (b * (e + 1) * ni)
		if v > 1 {
			v = 1
		}
		if v < 0 {
			v = 0
		}
		return v
	}
	// Fixed point on the conditional rate r̃ (exponent i−1).
	r := math.Pow(1-a, fi-1)
	for iter := 0; iter < 60; iter++ {
		next := meanPow(fi-1, fi*r/total)
		if math.Abs(next-r) < 1e-12 {
			r = next
			break
		}
		r = next
	}
	return ni * meanPow(fi, fi*r/total), r
}

// Greedy returns GR(α, β) = Σ_i GR_i(α, β), the expected independent-set
// size of the semi-external greedy algorithm (Proposition 2).
func Greedy(p Params) float64 {
	delta := p.MaxDegree()
	zAll := Zeta(p.Beta-1, delta)
	ea := math.Exp(p.Alpha)
	var sum, dangerMass float64
	for i := 1; i <= delta; i++ {
		gri, cond := greedyDegreeRates(p, i, zAll, dangerMass)
		sum += gri
		ni := math.Floor(ea / math.Pow(float64(i), p.Beta))
		dangerMass += float64(i) * ni * cond
	}
	return sum
}

// UpperBound returns the theoretical upper bound on the independence number
// used as the denominator of the paper's ratios. It mirrors Algorithm 5's
// star-partition bound in expectation: degree-1 vertices (beyond one per
// star) and all vertices whose neighborhood is fully intact contribute;
// equivalently, the bound equals |V| minus the expected number of "star
// centers" — vertices charged one unit for their neighborhood. In a PLR
// graph the dominant loss is one center per connected star, which the paper
// evaluates numerically with Algorithm 5; here we expose the same quantity
// computed from the degree distribution: |V| − Σ_x y_x·x/(x+1) weighted by
// the chance the vertex is a center. Experiments use the exact Algorithm 5
// on generated graphs; this analytic version exists for quick estimates.
func UpperBound(p Params) float64 {
	// A vertex of degree x caps its star's contribution at x (instead of
	// x+1 vertices), so each star "loses" one vertex. The expected number
	// of stars is at least |V| / (avg star size). We approximate with the
	// greedy star partition in scan order, which Algorithm 5 computes
	// exactly on concrete graphs.
	v := p.NumVertices()
	e2 := Zeta(p.Beta-1, p.MaxDegree()) * math.Exp(p.Alpha) // endpoints
	avgStar := 1 + e2/v                                     // 1 + average degree
	return v - v/avgStar
}
