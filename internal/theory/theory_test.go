package theory

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZetaKnownValues(t *testing.T) {
	if got := Zeta(1, 1); got != 1 {
		t.Fatalf("ζ(1,1) = %f", got)
	}
	// Harmonic number H_4 = 1 + 1/2 + 1/3 + 1/4 = 25/12.
	if got := Zeta(1, 4); math.Abs(got-25.0/12.0) > 1e-12 {
		t.Fatalf("ζ(1,4) = %f, want %f", got, 25.0/12.0)
	}
	// ζ(2, ∞) = π²/6; the partial sum at 10⁶ should be close.
	if got := Zeta(2, 1_000_000); math.Abs(got-math.Pi*math.Pi/6) > 1e-5 {
		t.Fatalf("ζ(2,1e6) = %f, want ≈ %f", got, math.Pi*math.Pi/6)
	}
}

func TestZetaMonotone(t *testing.T) {
	f := func(xRaw, yRaw uint8) bool {
		x := 1 + float64(xRaw%30)/10 // x in [1, 3.9]
		y := int(yRaw%100) + 2
		return Zeta(x, y) > Zeta(x, y-1) && Zeta(x, y) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParamsForVertices(t *testing.T) {
	for _, beta := range []float64{1.7, 2.0, 2.3, 2.7} {
		for _, n := range []int{1000, 100000, 10000000} {
			p := ParamsForVertices(n, beta)
			got := p.NumVertices()
			if math.Abs(got-float64(n))/float64(n) > 0.01 {
				t.Fatalf("beta=%.1f n=%d: model gives %f vertices", beta, n, got)
			}
		}
	}
}

func TestGreedyExpectationRange(t *testing.T) {
	// Proposition 2 at the paper's scale (10M vertices): the expected
	// greedy set must be a large fraction of |V| and decrease with beta
	// beyond the paper's observation (Table 9's surprising finding).
	prev := math.Inf(1)
	for _, beta := range []float64{1.7, 1.9, 2.1, 2.3, 2.5, 2.7} {
		p := ParamsForVertices(10_000_000, beta)
		gr := Greedy(p)
		if gr <= 0 || gr > p.NumVertices() {
			t.Fatalf("beta=%.1f: GR = %f out of range", beta, gr)
		}
		if gr/p.NumVertices() < 0.5 {
			t.Fatalf("beta=%.1f: GR/|V| = %f implausibly small", beta, gr/p.NumVertices())
		}
		if gr >= prev {
			t.Fatalf("beta=%.1f: GR did not decrease with beta (%f after %f)", beta, gr, prev)
		}
		prev = gr
	}
}

func TestGreedyByDegreeBounded(t *testing.T) {
	p := ParamsForVertices(1_000_000, 2.0)
	for i := 1; i <= p.MaxDegree(); i++ {
		gri := GreedyByDegree(p, i)
		ni := p.VerticesOfDegree(i)
		if gri < 0 || gri > ni+1 {
			t.Fatalf("GR_%d = %f exceeds vertex count %f", i, gri, ni)
		}
	}
	if GreedyByDegree(p, p.MaxDegree()+5) != 0 {
		t.Fatal("GR beyond max degree must be 0")
	}
}

func TestSwapGainPositiveAndBounded(t *testing.T) {
	for _, beta := range []float64{1.7, 2.0, 2.3, 2.7} {
		p := ParamsForVertices(10_000_000, beta)
		sg := SwapGain(p)
		if sg < 0 {
			t.Fatalf("beta=%.1f: negative swap gain %f", beta, sg)
		}
		if sg > 0.1*p.NumVertices() {
			t.Fatalf("beta=%.1f: swap gain %f implausibly large", beta, sg)
		}
		if OneKSwap(p) < Greedy(p) {
			t.Fatalf("beta=%.1f: one-k expectation below greedy", beta)
		}
	}
}

func TestMaxSwapDegreeSmall(t *testing.T) {
	// Lemma 3: only low degrees contribute to swaps; d_s must be tiny
	// compared to the max degree at paper scale.
	p := ParamsForVertices(10_000_000, 2.0)
	ds := MaxSwapDegree(p)
	if ds < 2 || ds > p.MaxDegree() {
		t.Fatalf("d_s = %d out of range (Δ = %d)", ds, p.MaxDegree())
	}
	if ds > 200 {
		t.Fatalf("d_s = %d, expected a small constant", ds)
	}
}

func TestSCBoundBelowPaperCap(t *testing.T) {
	// Lemma 6: |SC| < |V| − e^α.
	for _, beta := range []float64{1.8, 2.2, 2.6} {
		p := ParamsForVertices(1_000_000, beta)
		sc := SCBound(p)
		limit := p.NumVertices() - math.Exp(p.Alpha)
		if sc < 0 || sc > limit+1 {
			t.Fatalf("beta=%.1f: SC bound %f exceeds cap %f", beta, sc, limit)
		}
	}
}

func TestBinsBalls(t *testing.T) {
	if pr := binsBallsPr(0, 5, 10, 2); pr != 0 {
		t.Fatalf("no type-1 balls must give 0, got %f", pr)
	}
	if pr := binsBallsPr(5, 5, 10, 2); pr < 0 || pr > 1 {
		t.Fatalf("probability out of range: %f", pr)
	}
	// More balls of both types cannot decrease the probability.
	lo := binsBallsPr(2, 2, 50, 3)
	hi := binsBallsPr(10, 10, 50, 3)
	if hi < lo {
		t.Fatalf("monotonicity violated: %f < %f", hi, lo)
	}
}

func TestChoose(t *testing.T) {
	cases := []struct {
		n, k, want float64
	}{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {6, 3, 20}, {0, 0, 1},
	}
	for _, c := range cases {
		if got := C(c.n, c.k); math.Abs(got-c.want) > 1e-6*c.want+1e-9 {
			t.Errorf("C(%v,%v) = %f, want %f", c.n, c.k, got, c.want)
		}
	}
	if C(3, 5) != 0 || C(-1, 0) != 0 {
		t.Error("invalid binomials must be 0")
	}
}

func TestEdgeEndpointFraction(t *testing.T) {
	p := ParamsForVertices(1_000_000, 2.0)
	c := EdgeEndpointFraction(p)
	z := Zeta(p.Beta-1, p.MaxDegree())
	if c <= 0 || c >= z {
		t.Fatalf("c = %f out of (0, ζ=%f)", c, z)
	}
}

func TestUpperBoundSane(t *testing.T) {
	p := ParamsForVertices(1_000_000, 2.0)
	ub := UpperBound(p)
	if ub <= 0 || ub > p.NumVertices() {
		t.Fatalf("upper bound %f out of range", ub)
	}
	if ub < Greedy(p)*0.8 {
		t.Fatalf("analytic bound %f far below greedy expectation %f", ub, Greedy(p))
	}
}
