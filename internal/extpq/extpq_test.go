package extpq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicOrder(t *testing.T) {
	q := New(Options{MemoryCapacity: 4, Dir: t.TempDir()})
	defer q.Close()
	keys := []uint64{5, 3, 9, 1, 7, 3, 8, 0, 2, 6}
	for _, k := range keys {
		if err := q.Push(k); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != len(keys) {
		t.Fatalf("len = %d, want %d", q.Len(), len(keys))
	}
	if q.Spills() == 0 {
		t.Fatal("expected spills with capacity 4")
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, want := range sorted {
		got, ok, err := q.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("pop %d: queue empty early", i)
		}
		if got != want {
			t.Fatalf("pop %d: got %d, want %d", i, got, want)
		}
	}
	if _, ok, _ := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestMinPeek(t *testing.T) {
	q := New(Options{MemoryCapacity: 2, Dir: t.TempDir()})
	defer q.Close()
	for _, k := range []uint64{4, 2, 8, 1} {
		if err := q.Push(k); err != nil {
			t.Fatal(err)
		}
	}
	min, ok, err := q.Min()
	if err != nil || !ok || min != 1 {
		t.Fatalf("min = %d ok=%v err=%v, want 1", min, ok, err)
	}
	if q.Len() != 4 {
		t.Fatal("Min must not remove")
	}
}

func TestEmpty(t *testing.T) {
	q := New(Options{Dir: t.TempDir()})
	defer q.Close()
	if _, ok, _ := q.Min(); ok {
		t.Fatal("empty Min reported ok")
	}
	if _, ok, _ := q.Pop(); ok {
		t.Fatal("empty Pop reported ok")
	}
}

func TestPushAfterClose(t *testing.T) {
	q := New(Options{Dir: t.TempDir()})
	q.Close()
	if err := q.Push(1); err == nil {
		t.Fatal("expected error pushing to closed queue")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	// Time-forward usage: pops interleave with pushes of larger keys.
	q := New(Options{MemoryCapacity: 8, Dir: t.TempDir()})
	defer q.Close()
	rng := rand.New(rand.NewSource(42))
	inFlight := 0
	last := uint64(0)
	for step := uint64(0); step < 2000; step++ {
		for i := 0; i < rng.Intn(3); i++ {
			if err := q.Push(step + 1 + uint64(rng.Intn(50))); err != nil {
				t.Fatal(err)
			}
			inFlight++
		}
		for {
			k, ok, err := q.Min()
			if err != nil {
				t.Fatal(err)
			}
			if !ok || k > step {
				break
			}
			got, _, err := q.Pop()
			if err != nil {
				t.Fatal(err)
			}
			if got < last {
				t.Fatalf("pop order violated: %d after %d", got, last)
			}
			last = got
			inFlight--
		}
	}
	if q.Len() != inFlight {
		t.Fatalf("len = %d, want %d", q.Len(), inFlight)
	}
}

func TestRandomAgainstReference(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		q := New(Options{MemoryCapacity: int(capRaw%16) + 1, Dir: t.TempDir()})
		defer q.Close()
		var ref []uint64
		for i := 0; i < 300; i++ {
			if rng.Intn(3) == 0 && len(ref) > 0 {
				// Pop and compare with reference min.
				sort.Slice(ref, func(a, b int) bool { return ref[a] < ref[b] })
				got, ok, err := q.Pop()
				if err != nil || !ok || got != ref[0] {
					return false
				}
				ref = ref[1:]
			} else {
				k := uint64(rng.Intn(1000))
				if err := q.Push(k); err != nil {
					return false
				}
				ref = append(ref, k)
			}
		}
		return q.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateKeys(t *testing.T) {
	q := New(Options{MemoryCapacity: 3, Dir: t.TempDir()})
	defer q.Close()
	for i := 0; i < 20; i++ {
		if err := q.Push(7); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		k, ok, err := q.Pop()
		if err != nil || !ok || k != 7 {
			t.Fatalf("pop %d: %d %v %v", i, k, ok, err)
		}
	}
}
