// Package extpq implements an external-memory priority queue over uint64
// keys: a bounded in-memory heap that spills sorted runs to disk and merges
// run heads on demand. It is the substrate for the time-forward-processing
// maximal independent set baseline (the paper's "STXXL" competitor, after
// Zeh's deterministic external algorithm), whose I/O cost is O(sort(|E|)).
//
// All disk access is sequential: spills write a run front to back, and pops
// advance each run's buffered cursor monotonically.
package extpq

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// DefaultMemoryCapacity is the default number of keys held in memory before
// a spill.
const DefaultMemoryCapacity = 1 << 20

// Options configure a queue.
type Options struct {
	// MemoryCapacity is the maximum number of keys buffered in memory;
	// ≤ 0 selects DefaultMemoryCapacity.
	MemoryCapacity int
	// Dir receives spill files; empty selects the OS temp directory.
	Dir string
	// BlockSize is the buffered I/O size for runs; ≤ 0 selects 256 KiB.
	BlockSize int
}

// PQ is an external priority queue of uint64 keys with duplicates allowed.
// It is not safe for concurrent use.
type PQ struct {
	opts   Options
	mem    keyHeap
	runs   []*run
	heads  headHeap
	length int
	spills int
	closed bool
}

// New returns an empty queue.
func New(opts Options) *PQ {
	if opts.MemoryCapacity <= 0 {
		opts.MemoryCapacity = DefaultMemoryCapacity
	}
	if opts.BlockSize <= 0 {
		opts.BlockSize = 256 * 1024
	}
	return &PQ{opts: opts}
}

// Len returns the number of keys in the queue.
func (q *PQ) Len() int { return q.length }

// Spills returns how many sorted runs have been written to disk.
func (q *PQ) Spills() int { return q.spills }

// Push inserts a key, spilling the in-memory buffer to a sorted disk run if
// it is full.
func (q *PQ) Push(key uint64) error {
	if q.closed {
		return fmt.Errorf("extpq: push on closed queue")
	}
	if len(q.mem) >= q.opts.MemoryCapacity {
		if err := q.spill(); err != nil {
			return err
		}
	}
	heap.Push(&q.mem, key)
	q.length++
	return nil
}

// Min returns the smallest key without removing it. ok is false when the
// queue is empty.
func (q *PQ) Min() (key uint64, ok bool, err error) {
	if q.length == 0 {
		return 0, false, nil
	}
	if err := q.fillHeads(); err != nil {
		return 0, false, err
	}
	best, have := uint64(0), false
	if len(q.mem) > 0 {
		best, have = q.mem[0], true
	}
	if len(q.heads) > 0 && (!have || q.heads[0].key < best) {
		best = q.heads[0].key
	}
	return best, true, nil
}

// Pop removes and returns the smallest key. ok is false when the queue is
// empty.
func (q *PQ) Pop() (key uint64, ok bool, err error) {
	if q.length == 0 {
		return 0, false, nil
	}
	if err := q.fillHeads(); err != nil {
		return 0, false, err
	}
	useMem := len(q.mem) > 0
	if useMem && len(q.heads) > 0 && q.heads[0].key < q.mem[0] {
		useMem = false
	}
	if useMem {
		key = heap.Pop(&q.mem).(uint64)
	} else {
		h := q.heads[0]
		key = h.key
		next, eof, rerr := h.run.next()
		if rerr != nil {
			return 0, false, rerr
		}
		if eof {
			heap.Pop(&q.heads)
			h.run.discard()
		} else {
			q.heads[0].key = next
			heap.Fix(&q.heads, 0)
		}
	}
	q.length--
	return key, true, nil
}

// Close removes all spill files. The queue is unusable afterwards.
func (q *PQ) Close() error {
	q.closed = true
	var first error
	for _, r := range q.runs {
		if err := r.discard(); err != nil && first == nil {
			first = err
		}
	}
	q.runs = nil
	q.heads = nil
	q.mem = nil
	q.length = 0
	return first
}

func (q *PQ) spill() error {
	keys := make([]uint64, len(q.mem))
	copy(keys, q.mem)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	f, err := os.CreateTemp(q.opts.Dir, "extpq-run-*.bin")
	if err != nil {
		return fmt.Errorf("extpq: spill: %w", err)
	}
	bw := bufio.NewWriterSize(f, q.opts.BlockSize)
	var buf [8]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf[:], k)
		if _, err := bw.Write(buf[:]); err != nil {
			f.Close()
			os.Remove(f.Name())
			return fmt.Errorf("extpq: spill write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("extpq: spill flush: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("extpq: spill rewind: %w", err)
	}
	r := &run{f: f, br: bufio.NewReaderSize(f, q.opts.BlockSize), remaining: len(keys)}
	q.runs = append(q.runs, r)
	q.spills++
	// The new run's head joins the merge heap.
	first, eof, err := r.next()
	if err != nil {
		return err
	}
	if !eof {
		heap.Push(&q.heads, head{key: first, run: r})
	}
	q.mem = q.mem[:0]
	return nil
}

// fillHeads is a hook point kept for symmetry; run heads are loaded eagerly
// at spill time, so there is nothing to do.
func (q *PQ) fillHeads() error { return nil }

type run struct {
	f         *os.File
	br        *bufio.Reader
	remaining int
	removed   bool
}

func (r *run) next() (key uint64, eof bool, err error) {
	if r.remaining == 0 {
		return 0, true, nil
	}
	var buf [8]byte
	if _, err := io.ReadFull(r.br, buf[:]); err != nil {
		return 0, false, fmt.Errorf("extpq: run read: %w", err)
	}
	r.remaining--
	return binary.LittleEndian.Uint64(buf[:]), false, nil
}

func (r *run) discard() error {
	if r.removed {
		return nil
	}
	r.removed = true
	name := r.f.Name()
	err := r.f.Close()
	if rmErr := os.Remove(filepath.Clean(name)); rmErr != nil && err == nil {
		err = rmErr
	}
	return err
}

// keyHeap is a min-heap of keys.
type keyHeap []uint64

func (h keyHeap) Len() int            { return len(h) }
func (h keyHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h keyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *keyHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *keyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	k := old[n-1]
	*h = old[:n-1]
	return k
}

// head is the smallest unread key of one run.
type head struct {
	key uint64
	run *run
}

type headHeap []head

func (h headHeap) Len() int            { return len(h) }
func (h headHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h headHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *headHeap) Push(x interface{}) { *h = append(*h, x.(head)) }
func (h *headHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
