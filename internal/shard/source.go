package shard

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/gio"
)

const (
	// partitionsPerWorker oversplits the work list relative to the worker
	// count, exactly like the single-file executor: workers claim units
	// dynamically, so one skewed unit cannot serialize the scan's tail.
	partitionsPerWorker = 2
	// unitChanDepth bounds decoded-but-unconsumed batches per unit.
	unitChanDepth = 4
)

// Source is one logical scan engine over a Set: it satisfies core.Source
// (and the scheduler's optional ctx capability) by driving per-shard workers
// and merging their batches back into the merged graph's exact scan order on
// the calling goroutine. Construct one Source per concurrent run (they are
// cheap); a Source itself must not be used concurrently, mirroring
// exec.Executor.
//
// The Source deliberately does not implement the plan-capture capability:
// its partitions come from metadata persisted at write time (footers and the
// manifest), so there is never a plan to capture — a cold open performs zero
// planning scans by construction.
type Source struct {
	set     *Set
	stats   *gio.Counters
	workers int
}

// Source returns a scan source over the set accounting into stats (which
// may be nil). workers ≤ 0 selects GOMAXPROCS; 1 decodes shards sequentially
// on the calling goroutine.
func (s *Set) Source(stats *gio.Counters, workers int) *Source {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Source{set: s, stats: stats, workers: workers}
}

// NumVertices returns the merged graph's vertex count.
func (src *Source) NumVertices() int { return src.set.NumVertices() }

// Stats returns the counters the source accounts into, which may be nil.
func (src *Source) Stats() *gio.Counters { return src.stats }

// Workers returns the configured degree of parallelism.
func (src *Source) Workers() int { return src.workers }

// ForEach runs one full merged scan, invoking fn for every record in scan
// order.
func (src *Source) ForEach(fn func(gio.Record) error) error {
	return src.ForEachBatch(func(batch []gio.Record) error {
		for i := range batch {
			if err := fn(batch[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// ForEachBatch runs one full merged scan, invoking fn for every decoded
// batch in scan order on the calling goroutine. Batch boundaries may differ
// from a single merged file's — no pass may depend on them.
func (src *Source) ForEachBatch(fn func([]gio.Record) error) error {
	return src.ForEachBatchCtx(nil, fn)
}

// unit is one work item: a record-aligned partition of one shard file.
// Partition record indices are local to the shard file; unit order (by
// shard, then by offset) is the merged scan order.
type unit struct {
	shard int
	p     gio.Partition
}

// units builds the run's work list from persisted metadata only. Shards with
// a loaded partition plan (footered files) split into byte-proportional
// record-aligned partitions; shards without one become a single unit whose
// bounds come from the manifest — either way, no planning scan runs.
func (src *Source) units() []unit {
	files, man := src.set.files, src.set.man
	var out []unit
	target := src.workers * partitionsPerWorker
	total := man.TotalBytes()
	for i, f := range files {
		e := man.Shards[i]
		if src.workers > 1 && f.HasPartitionPlan() {
			parts := 1
			if total > 0 {
				parts = int((int64(target)*e.Bytes + total/2) / total)
			}
			if parts < 1 {
				parts = 1
			}
			if ps, err := f.Partitions(parts); err == nil && len(ps) > 0 {
				for _, p := range ps {
					out = append(out, unit{shard: i, p: p})
				}
				continue
			}
		}
		end := f.PayloadEnd()
		out = append(out, unit{shard: i, p: gio.Partition{
			StartRecord: 0,
			Records:     e.Records,
			StartOffset: gio.HeaderSize,
			EndOffset:   end,
		}})
	}
	return out
}

// ForEachBatchCtx is ForEachBatch bound to a context: cancellation stops the
// merge within one batch, drains every worker, and returns the ctx error
// wrapped in a gio.ScanError carrying the merged scan position.
func (src *Source) ForEachBatchCtx(ctx context.Context, fn func([]gio.Record) error) error {
	units := src.units()
	consumedEnd := make([]int64, len(src.set.files))
	var err error
	if src.workers <= 1 || len(units) < 2 {
		err = src.runSequential(ctx, units, consumedEnd, fn)
	} else {
		err = src.runParallel(ctx, units, consumedEnd, fn)
	}
	src.account(consumedEnd, err == nil)
	return err
}

// runSequential drives each unit's detached scanner inline, in unit order.
func (src *Source) runSequential(ctx context.Context, units []unit, consumedEnd []int64, fn func([]gio.Record) error) error {
	total := uint64(src.set.NumVertices())
	var delivered uint64
	for _, u := range units {
		sc := src.set.files[u.shard].ScanPartition(u.p)
		for {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					sc.Close()
					return &gio.ScanError{Records: delivered, Total: total, Err: err}
				}
			}
			batch := sc.NextBatch()
			if batch == nil {
				break
			}
			if src.stats != nil {
				src.stats.AddRecordsRead(uint64(len(batch)))
			}
			if err := fn(batch); err != nil {
				sc.Close()
				return err
			}
			delivered += uint64(len(batch))
		}
		if err := sc.Err(); err != nil {
			return err
		}
		consumedEnd[u.shard] = u.p.EndOffset
	}
	return nil
}

// batchMsg carries one decoded batch (or a unit's terminal status) from a
// worker to the consumer; recs and arena transfer ownership with it.
type batchMsg struct {
	recs  []gio.Record
	arena []uint32
	err   error
	last  bool
}

type batchBufs struct {
	recs  []gio.Record
	arena []uint32
}

// runParallel fans units out across a worker pool and merges their batches
// back in unit order — the single-file executor's design, one level up.
func (src *Source) runParallel(ctx context.Context, units []unit, consumedEnd []int64, fn func([]gio.Record) error) error {
	// Pin every mapped shard for the whole run: zero-copy batches alias the
	// mappings while they sit in the unit channels, after their worker's
	// scanner already closed. A concurrent Set.Close then still returns
	// immediately; the munmaps are deferred past the last in-flight batch.
	for _, f := range src.set.files {
		if release, ok := f.PinMap(); ok {
			defer release()
		}
	}
	nw := src.workers
	if nw > len(units) {
		nw = len(units)
	}
	chans := make([]chan batchMsg, len(units))
	for i := range chans {
		chans[i] = make(chan batchMsg, unitChanDepth)
	}
	quit := make(chan struct{})
	pool := &sync.Pool{New: func() any { return &batchBufs{} }}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(units) {
					return
				}
				if !src.scanUnit(units[i], chans[i], quit, pool) {
					return
				}
			}
		}()
	}

	// Consume units in order; within a unit, batches arrive in order. The
	// merged invocation sequence is the merged graph's sequential scan
	// order, and the earliest error in that order wins.
	total := uint64(src.set.NumVertices())
	var delivered uint64
	var runErr error
consume:
	for i := range chans {
		for {
			msg := <-chans[i]
			if msg.last {
				if msg.err != nil {
					runErr = msg.err
					break consume
				}
				consumedEnd[units[i].shard] = units[i].p.EndOffset
				break
			}
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					runErr = &gio.ScanError{Records: delivered, Total: total, Err: err}
					break consume
				}
			}
			if src.stats != nil {
				src.stats.AddRecordsRead(uint64(len(msg.recs)))
			}
			if err := fn(msg.recs); err != nil {
				runErr = err
				break consume
			}
			delivered += uint64(len(msg.recs))
			pool.Put(&batchBufs{recs: msg.recs, arena: msg.arena})
		}
	}
	close(quit)
	wg.Wait()
	return runErr
}

// scanUnit decodes one unit, shipping each batch to ch, then a terminal
// message with the unit's scan error. Reports false when the run was
// cancelled.
func (src *Source) scanUnit(u unit, ch chan<- batchMsg, quit <-chan struct{}, pool *sync.Pool) bool {
	sc := src.set.files[u.shard].ScanPartition(u.p)
	defer sc.Close()
	for {
		batch := sc.NextBatch()
		if batch == nil {
			break
		}
		bufs := pool.Get().(*batchBufs)
		recs, arena := sc.SwapBuffers(bufs.recs, bufs.arena)
		select {
		case ch <- batchMsg{recs: recs, arena: arena}:
		case <-quit:
			return false
		}
	}
	select {
	case ch <- batchMsg{err: sc.Err(), last: true}:
		return true
	case <-quit:
		return false
	}
}

// account adds the run's block and byte counters — what a sequential scan of
// each covered shard would have counted: ceil(covered/B) blocks per shard,
// every block full-sized except a final one clipped at the shard's end of
// file — plus, on a completed run, exactly one logical and one physical scan
// for the whole merged pass. The formula is shared by the sequential and
// parallel paths, so a run's Stats are identical at every worker count; on
// an aborted run the fully consumed unit prefix is the same deterministic
// lower bound the single-file executor reports.
func (src *Source) account(consumedEnd []int64, completed bool) {
	if src.stats == nil {
		return
	}
	b := int64(src.set.blockSize)
	for i, f := range src.set.files {
		end := consumedEnd[i]
		if completed {
			end = f.PayloadEnd()
		}
		covered := end - gio.HeaderSize
		if covered <= 0 {
			continue
		}
		blocks := (covered + b - 1) / b
		bytes := blocks * b
		if size, err := f.SizeBytes(); err == nil && bytes > size-gio.HeaderSize {
			bytes = size - gio.HeaderSize
		}
		src.stats.AddBlocksRead(uint64(blocks))
		src.stats.AddBytesRead(uint64(bytes))
	}
	if completed {
		src.stats.AddScans(1)
		src.stats.AddPhysicalScans(1)
	}
}
