package shard

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"path/filepath"
	"sync"

	"repro/internal/gio"
)

// Options configures opening a shard set.
type Options struct {
	// BlockSize is each shard's buffered-I/O block size (≤ 0 selects
	// gio.DefaultBlockSize). It is also the block size B of the scan
	// accounting, exactly as for a single file.
	BlockSize int
	// Mmap backs every shard's scans with a read-only memory mapping (see
	// gio.OpenMmap), falling back per shard where mapping fails.
	Mmap bool
}

// Set is an open shard set: the manifest plus one open gio.File per shard.
// Shard files are opened with nil counters — the Set's scan engine accounts
// the merged logical scan itself, so per-shard I/O is never double-counted —
// and with their partition plans loaded from footers (or single-unit
// fallbacks from the manifest), so no planning scan ever runs.
//
// Like gio.File, one Set supports any number of concurrent scans as long as
// each runs through its own Source (see Source); the shard files' detached
// partition scanners never touch per-file scan state.
type Set struct {
	man       *Manifest
	path      string // manifest file path
	dir       string
	files     []*gio.File
	blockSize int

	digMu    sync.Mutex
	combined string
	perShard []string
}

// Open loads, validates and opens the shard set described by the manifest at
// path (the manifest file or its directory). Every shard file must open,
// agree with the manifest on format flags and global vertex count, match its
// recorded size, and — when footered — match its recorded record count.
// Content digests are not verified here (that would read every byte); they
// are computed lazily by CombinedDigest and checked against the manifest's
// recorded values then.
func Open(path string, o Options) (*Set, error) {
	man, manPath, err := LoadManifest(path)
	if err != nil {
		return nil, err
	}
	blockSize := o.BlockSize
	if blockSize <= 0 {
		blockSize = gio.DefaultBlockSize
	}
	s := &Set{man: man, path: manPath, dir: filepath.Dir(manPath), blockSize: blockSize}
	for i, e := range man.Shards {
		fp := filepath.Join(s.dir, filepath.FromSlash(e.Path))
		var f *gio.File
		if o.Mmap {
			f, err = gio.OpenMmap(fp, blockSize, nil)
		} else {
			f, err = gio.Open(fp, blockSize, nil)
		}
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("shard: open shard %d: %w", i, err)
		}
		s.files = append(s.files, f)
		if err := s.validateShard(i, e, f); err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("%w: %s: shard %d (%s): %v", gio.ErrBadFormat, manPath, i, e.Path, err)
		}
	}
	return s, nil
}

// validateShard cross-checks one opened shard file against its manifest
// entry.
func (s *Set) validateShard(i int, e ShardEntry, f *gio.File) error {
	h := f.Header()
	if h.Flags != s.man.Flags {
		return fmt.Errorf("flags %#x differ from manifest flags %#x", h.Flags, s.man.Flags)
	}
	if h.Vertices != s.man.Vertices {
		return fmt.Errorf("header has %d vertices, manifest says %d (shard headers carry the global count)", h.Vertices, s.man.Vertices)
	}
	size, err := f.SizeBytes()
	if err != nil {
		return err
	}
	if size != e.Bytes {
		return fmt.Errorf("file is %d bytes, manifest recorded %d", size, e.Bytes)
	}
	if f.HasFooter() && f.NumRecords() != e.Records {
		return fmt.Errorf("footer records %d, manifest says %d", f.NumRecords(), e.Records)
	}
	if ct := e.Cuts; ct != nil {
		if len(ct.Records) != len(ct.Offsets) || len(ct.Records) == 0 {
			return fmt.Errorf("malformed cut table (%d record cuts, %d offset cuts)", len(ct.Records), len(ct.Offsets))
		}
		if last := len(ct.Records) - 1; ct.Records[last] != e.Records {
			return fmt.Errorf("cut table covers %d records, manifest says %d", ct.Records[last], e.Records)
		}
	}
	return nil
}

// NumVertices returns the merged graph's vertex count.
func (s *Set) NumVertices() int { return int(s.man.Vertices) }

// NumEdges returns the merged graph's undirected edge count.
func (s *Set) NumEdges() uint64 { return s.man.Edges }

// Flags returns the format flags every shard carries.
func (s *Set) Flags() uint32 { return s.man.Flags }

// DegreeSorted reports whether the merged scan order is ascending-degree.
func (s *Set) DegreeSorted() bool { return s.man.Flags&gio.FlagDegreeSorted != 0 }

// NumShards returns the shard count.
func (s *Set) NumShards() int { return len(s.man.Shards) }

// Manifest returns the loaded manifest. Treat it as read-only.
func (s *Set) Manifest() *Manifest { return s.man }

// Path returns the manifest file's path.
func (s *Set) Path() string { return s.path }

// Dir returns the shard directory.
func (s *Set) Dir() string { return s.dir }

// BlockSize returns the per-shard buffered-I/O block size.
func (s *Set) BlockSize() int { return s.blockSize }

// TotalBytes returns the summed on-disk size of the shard files.
func (s *Set) TotalBytes() int64 { return s.man.TotalBytes() }

// MmapActive reports whether every shard's scans run off a live memory
// mapping.
func (s *Set) MmapActive() bool {
	if len(s.files) == 0 {
		return false
	}
	for _, f := range s.files {
		if !f.MmapActive() {
			return false
		}
	}
	return true
}

// Close closes every shard file.
func (s *Set) Close() error { return s.closeFiles() }

func (s *Set) closeFiles() error {
	var first error
	for _, f := range s.files {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ShardDigests returns each shard's SHA-256 content digest, computing and
// caching them on first use and verifying each against the digest the
// manifest recorded at write time.
func (s *Set) ShardDigests(ctx context.Context) ([]string, error) {
	s.digMu.Lock()
	defer s.digMu.Unlock()
	if err := s.digestsLocked(ctx); err != nil {
		return nil, err
	}
	return append([]string(nil), s.perShard...), nil
}

// CombinedDigest returns the digest identifying the merged graph's content:
// SHA-256 over the ordered per-shard content digests. It feeds the same
// result cache single-file ContentDigests key — two opens of the same shard
// set yield the same digest, and any shard's bytes changing changes it.
func (s *Set) CombinedDigest(ctx context.Context) (string, error) {
	s.digMu.Lock()
	defer s.digMu.Unlock()
	if err := s.digestsLocked(ctx); err != nil {
		return "", err
	}
	return s.combined, nil
}

func (s *Set) digestsLocked(ctx context.Context) error {
	if s.combined != "" {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	per := make([]string, len(s.files))
	h := sha256.New()
	fmt.Fprintf(h, "shardset:%d\n", len(s.files))
	for i, f := range s.files {
		d, err := f.ContentDigest(ctx)
		if err != nil {
			return err
		}
		if want := s.man.Shards[i].Digest; want != "" && want != d {
			return fmt.Errorf("%w: %s: shard %d (%s): content digest %s differs from manifest's %s",
				gio.ErrBadFormat, s.path, i, s.man.Shards[i].Path, d, want)
		}
		per[i] = d
		fmt.Fprintf(h, "%s\n", d)
	}
	s.perShard = per
	s.combined = hex.EncodeToString(h.Sum(nil))
	return nil
}
