package shard

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/gio"
)

// SplitOptions configures SplitFile. Exactly one of Shards and TargetBytes
// must be positive.
type SplitOptions struct {
	// Shards splits into exactly this many shards with near-equal record
	// counts (shard i holds records [i·n/N, (i+1)·n/N)).
	Shards int
	// TargetBytes starts a new shard whenever the current one's payload has
	// reached this many bytes. Every shard holds at least one record; the
	// final shard takes the remainder.
	TargetBytes int64
	// BlockSize is the write-side buffer size (≤ 0 selects the default).
	BlockSize int
	// Prefix names the shard files "<prefix>-00000.adj"; default "shard".
	Prefix string
}

// SplitFile splits the adjacency file at src into vertex-range shards in
// dir, writing shard files plus an atomically committed MANIFEST.shards, and
// returns the manifest. Each shard is a valid adjacency file in its own
// right: its header keeps the global vertex count (so global IDs validate on
// a bare open) and its footer records the shard's actual record count and
// partition cut table. Each finished shard is re-opened for verification
// — header, footer, plan — and digested; digests, sizes, ranges and cut
// tables all land in the manifest, which is written last, fsynced, so a
// crash mid-split leaves no manifest rather than a wrong one.
func SplitFile(ctx context.Context, src, dir string, o SplitOptions) (*Manifest, error) {
	if (o.Shards > 0) == (o.TargetBytes > 0) {
		return nil, fmt.Errorf("shard: exactly one of Shards and TargetBytes must be set")
	}
	f, err := gio.Open(src, o.BlockSize, nil)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	n := f.NumRecords()
	if n == 0 {
		return nil, fmt.Errorf("shard: %s is empty, nothing to split", src)
	}
	if o.Shards > 0 && uint64(o.Shards) > n {
		return nil, fmt.Errorf("shard: cannot split %d records into %d shards", n, o.Shards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	prefix := o.Prefix
	if prefix == "" {
		prefix = "shard"
	}
	h := f.Header()
	man := &Manifest{
		Version:  ManifestVersion,
		Vertices: h.Vertices,
		Edges:    h.Edges,
		Flags:    h.Flags,
	}

	sw := &splitWriter{
		ctx:       ctx,
		dir:       dir,
		prefix:    prefix,
		flags:     h.Flags,
		vertices:  h.Vertices,
		blockSize: o.BlockSize,
		man:       man,
		total:     n,
		shards:    o.Shards,
		target:    o.TargetBytes,
	}
	err = f.ForEachCtx(ctx, func(r gio.Record) error {
		return sw.append(r)
	})
	if err != nil {
		sw.abort()
		return nil, err
	}
	if err := sw.finish(); err != nil {
		return nil, err
	}
	if err := WriteManifest(filepath.Join(dir, ManifestName), man); err != nil {
		return nil, err
	}
	return man, nil
}

// splitWriter streams records into rolling shard files.
type splitWriter struct {
	ctx       context.Context
	dir       string
	prefix    string
	flags     uint32
	vertices  uint64
	blockSize int
	man       *Manifest
	total     uint64
	shards    int   // records mode: split into this many shards
	target    int64 // bytes mode: roll at this payload size

	w       *gio.Writer
	path    string
	written uint64 // records written into finished shards
	cur     uint64 // records written into the current shard
}

// boundary returns the global record index at which the current shard ends
// (records mode only).
func (sw *splitWriter) boundary() uint64 {
	i := len(sw.man.Shards) + 1
	return sw.total * uint64(i) / uint64(sw.shards)
}

func (sw *splitWriter) append(r gio.Record) error {
	if sw.w != nil && sw.rollDue() {
		if err := sw.closeShard(); err != nil {
			return err
		}
	}
	if sw.w == nil {
		sw.path = filepath.Join(sw.dir, fmt.Sprintf("%s-%05d.adj", sw.prefix, len(sw.man.Shards)))
		w, err := gio.NewWriter(sw.path, sw.flags, sw.blockSize, nil)
		if err != nil {
			return err
		}
		w.SetVertexCount(sw.vertices)
		sw.w = w
		sw.cur = 0
	}
	if err := sw.w.Append(r.ID, r.Neighbors); err != nil {
		return err
	}
	sw.cur++
	return nil
}

// rollDue reports whether the next record belongs to a new shard.
func (sw *splitWriter) rollDue() bool {
	if sw.cur == 0 {
		return false // every shard takes at least one record
	}
	if sw.shards > 0 {
		return sw.written+sw.cur >= sw.boundary() && len(sw.man.Shards)+1 < sw.shards
	}
	return sw.w.PayloadBytes() >= sw.target
}

// closeShard seals the current shard file, fsyncs it, re-opens it for
// verification and records its manifest entry.
func (sw *splitWriter) closeShard() error {
	w, path := sw.w, sw.path
	sw.w = nil
	if err := w.Close(); err != nil {
		return err
	}
	if err := syncFile(path); err != nil {
		return err
	}
	lo := sw.written
	entry, err := shardEntry(sw.ctx, sw.dir, path, lo, sw.cur, sw.flags)
	if err != nil {
		return err
	}
	sw.man.Shards = append(sw.man.Shards, *entry)
	sw.written += sw.cur
	sw.cur = 0
	return nil
}

func (sw *splitWriter) finish() error {
	if sw.w != nil {
		if err := sw.closeShard(); err != nil {
			return err
		}
	}
	return gio.SyncDir(sw.dir)
}

// abort closes and best-effort removes the in-progress shard file; finished
// shards are left behind (harmless without a manifest).
func (sw *splitWriter) abort() {
	if sw.w != nil {
		sw.w.Close()
		os.Remove(sw.path)
		sw.w = nil
	}
}

// shardEntry re-opens a finished shard file, verifies the shape the opener
// will later rely on, and builds its manifest entry — range, size, digest
// and the footer's partition cut table.
func shardEntry(ctx context.Context, dir, path string, lo, records uint64, flags uint32) (*ShardEntry, error) {
	f, err := gio.Open(path, 0, nil)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if !f.HasFooter() || f.NumRecords() != records {
		return nil, fmt.Errorf("shard: %s: wrote %d records, file reports %d (footer=%v)", path, records, f.NumRecords(), f.HasFooter())
	}
	size, err := f.SizeBytes()
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	digest, err := f.ContentDigest(ctx)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(dir, path)
	if err != nil {
		rel = filepath.Base(path)
	}
	entry := &ShardEntry{
		Path:    filepath.ToSlash(rel),
		Lo:      lo,
		Hi:      lo + records,
		Records: records,
		Bytes:   size,
		Format:  formatName(flags),
		Digest:  digest,
	}
	if recs, offs, ok := f.PartitionPlan(); ok {
		entry.Cuts = &CutTable{Records: recs, Offsets: offs}
	}
	return entry, nil
}

func formatName(flags uint32) string {
	if flags&gio.FlagCompressed != 0 {
		return FormatCompressed
	}
	return FormatRaw
}

func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// StreamDigest hashes the canonical decoded record stream of one full scan
// of src: for every record in scan order, its ID, degree and neighbor IDs as
// little-endian uint32s. Two sources produce equal StreamDigests iff they
// deliver identical record streams, regardless of on-disk layout — the
// missplit -verify check that a shard set re-merges to exactly the original
// file's records.
func StreamDigest(src core.Source) (string, error) {
	h := sha256.New()
	var buf []byte
	err := src.ForEachBatch(func(batch []gio.Record) error {
		for i := range batch {
			r := &batch[i]
			buf = buf[:0]
			buf = binary.LittleEndian.AppendUint32(buf, r.ID)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Neighbors)))
			for _, nb := range r.Neighbors {
				buf = binary.LittleEndian.AppendUint32(buf, nb)
			}
			h.Write(buf)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
