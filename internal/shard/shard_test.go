package shard

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/gio"
)

// testNeighbors returns a deterministic ascending neighbor list for vertex i
// of an n-vertex graph.
func testNeighbors(i, n int) []uint32 {
	deg := (i*7)%5 + 1
	seen := make(map[uint32]bool)
	var out []uint32
	for j := 0; len(out) < deg && j < 4*deg; j++ {
		v := uint32((i*13 + j*29 + 3) % n)
		if int(v) == i || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// writeTestGraph writes an n-vertex adjacency file and returns its path.
func writeTestGraph(t *testing.T, dir string, n int, flags uint32) string {
	t.Helper()
	path := filepath.Join(dir, "graph.adj")
	w, err := gio.NewWriter(path, flags, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Append(uint32(i), testNeighbors(i, n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func fileDigest(t *testing.T, path string) string {
	t.Helper()
	f, err := gio.Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := StreamDigest(f)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSplitRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name  string
		flags uint32
	}{
		{"raw", 0},
		{"compressed", gio.FlagCompressed},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			src := writeTestGraph(t, dir, 100, tc.flags)
			shardDir := filepath.Join(dir, "shards")
			man, err := SplitFile(context.Background(), src, shardDir, SplitOptions{Shards: 3})
			if err != nil {
				t.Fatal(err)
			}
			if len(man.Shards) != 3 {
				t.Fatalf("got %d shards, want 3", len(man.Shards))
			}
			if man.Vertices != 100 {
				t.Fatalf("manifest vertices = %d, want 100", man.Vertices)
			}
			for i, e := range man.Shards {
				if e.Digest == "" {
					t.Errorf("shard %d has no digest", i)
				}
				if e.Cuts == nil {
					t.Errorf("shard %d has no persisted cut table", i)
				}
			}
			set, err := Open(shardDir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer set.Close()
			if got := set.NumVertices(); got != 100 {
				t.Fatalf("set has %d vertices, want 100", got)
			}
			// The merged record stream must be byte-for-byte the original's.
			want := fileDigest(t, src)
			for _, workers := range []int{1, 2, 4, 7} {
				got, err := StreamDigest(set.Source(nil, workers))
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got != want {
					t.Errorf("workers=%d: merged stream digest %s != original %s", workers, got, want)
				}
			}
			// The combined digest must be stable across opens and verified
			// against the manifest's recorded per-shard digests.
			d1, err := set.CombinedDigest(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			set2, err := Open(filepath.Join(shardDir, ManifestName), Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer set2.Close()
			d2, err := set2.CombinedDigest(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if d1 != d2 {
				t.Errorf("combined digest changed across opens: %s vs %s", d1, d2)
			}
		})
	}
}

func TestSplitTargetBytes(t *testing.T) {
	dir := t.TempDir()
	src := writeTestGraph(t, dir, 200, 0)
	shardDir := filepath.Join(dir, "shards")
	man, err := SplitFile(context.Background(), src, shardDir, SplitOptions{TargetBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Shards) < 2 {
		t.Fatalf("expected multiple shards at a 512-byte budget, got %d", len(man.Shards))
	}
	set, err := Open(shardDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	got, err := StreamDigest(set.Source(nil, 4))
	if err != nil {
		t.Fatal(err)
	}
	if want := fileDigest(t, src); got != want {
		t.Errorf("merged stream digest %s != original %s", got, want)
	}
}

func TestSplitRejectsBadOptions(t *testing.T) {
	dir := t.TempDir()
	src := writeTestGraph(t, dir, 10, 0)
	for _, o := range []SplitOptions{{}, {Shards: 2, TargetBytes: 100}, {Shards: 11}} {
		if _, err := SplitFile(context.Background(), src, filepath.Join(dir, "out"), o); err == nil {
			t.Errorf("SplitFile with %+v: expected error", o)
		}
	}
}

// TestZeroPlanningScans is the acceptance check that a cold open of a shard
// set never pays a planning scan: every shard opens with its partition plan
// already loaded from the footer, and a full parallel scan's stats contain
// exactly the blocks of the data pass — nothing extra.
func TestZeroPlanningScans(t *testing.T) {
	dir := t.TempDir()
	src := writeTestGraph(t, dir, 120, 0)
	shardDir := filepath.Join(dir, "shards")
	if _, err := SplitFile(context.Background(), src, shardDir, SplitOptions{Shards: 3}); err != nil {
		t.Fatal(err)
	}
	set, err := Open(shardDir, Options{BlockSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	for i, f := range set.files {
		if !f.HasPartitionPlan() {
			t.Errorf("shard %d opened without a partition plan", i)
		}
	}
	var stats gio.Counters
	if err := set.Source(&stats, 4).ForEachBatch(func([]gio.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	snap := stats.Snapshot()
	if snap.Scans != 1 || snap.PhysicalScans != 1 {
		t.Errorf("one pass counted scans=%d physical=%d, want 1/1", snap.Scans, snap.PhysicalScans)
	}
	// The byte budget of one sequential pass over the shard payloads is an
	// upper bound; a planning scan would exceed it.
	var maxBytes uint64
	for _, f := range set.files {
		size, err := f.SizeBytes()
		if err != nil {
			t.Fatal(err)
		}
		maxBytes += uint64(size - gio.HeaderSize)
	}
	if snap.BytesRead > maxBytes {
		t.Errorf("read %d bytes, sequential pass needs at most %d: a planning scan ran", snap.BytesRead, maxBytes)
	}
}

// TestSourceStatsWorkerInvariance checks the accounting contract: one full
// scan's counters are identical at every worker count.
func TestSourceStatsWorkerInvariance(t *testing.T) {
	dir := t.TempDir()
	src := writeTestGraph(t, dir, 150, 0)
	shardDir := filepath.Join(dir, "shards")
	if _, err := SplitFile(context.Background(), src, shardDir, SplitOptions{Shards: 4}); err != nil {
		t.Fatal(err)
	}
	set, err := Open(shardDir, Options{BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	var want gio.Stats
	for i, workers := range []int{1, 2, 4, 7} {
		var stats gio.Counters
		if err := set.Source(&stats, workers).ForEachBatch(func([]gio.Record) error { return nil }); err != nil {
			t.Fatal(err)
		}
		snap := stats.Snapshot()
		if i == 0 {
			want = snap
			if want.RecordsRead != 150 {
				t.Fatalf("read %d records, want 150", want.RecordsRead)
			}
			continue
		}
		if !reflect.DeepEqual(snap, want) {
			t.Errorf("workers=%d stats %+v differ from sequential %+v", workers, snap, want)
		}
	}
}

func TestSourceCancellation(t *testing.T) {
	dir := t.TempDir()
	src := writeTestGraph(t, dir, 100, 0)
	shardDir := filepath.Join(dir, "shards")
	if _, err := SplitFile(context.Background(), src, shardDir, SplitOptions{Shards: 3}); err != nil {
		t.Fatal(err)
	}
	set, err := Open(shardDir, Options{BlockSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		calls := 0
		err := set.Source(nil, workers).ForEachBatchCtx(ctx, func([]gio.Record) error {
			calls++
			cancel()
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		var se *gio.ScanError
		if !errors.As(err, &se) {
			t.Errorf("workers=%d: error %v does not carry scan position", workers, err)
		}
		if calls == 0 {
			t.Errorf("workers=%d: callback never ran", workers)
		}
		cancel()
	}
}

// mutateManifest loads a split manifest, applies f, and writes it back
// without validation.
func mutateManifest(t *testing.T, dir string, f func(*Manifest)) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	f(&m)
	out, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), out, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestManifestRejection(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Manifest)
		substr string
	}{
		{"overlap", func(m *Manifest) { m.Shards[1].Lo-- }, "contiguous"},
		{"gap", func(m *Manifest) { m.Shards[1].Lo++ }, "contiguous"},
		{"short", func(m *Manifest) { m.Shards[2].Hi--; m.Shards[2].Records-- }, "vertices"},
		{"records", func(m *Manifest) { m.Shards[0].Records++ }, "records"},
		{"version", func(m *Manifest) { m.Version = 99 }, "version"},
		{"empty", func(m *Manifest) { m.Shards = nil }, "no shards"},
		{"format", func(m *Manifest) { m.Shards[1].Format = FormatCompressed }, "format"},
		{"inverted", func(m *Manifest) { m.Shards[0].Hi = m.Shards[0].Lo }, "range"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			src := writeTestGraph(t, dir, 60, 0)
			shardDir := filepath.Join(dir, "shards")
			if _, err := SplitFile(context.Background(), src, shardDir, SplitOptions{Shards: 3}); err != nil {
				t.Fatal(err)
			}
			mutateManifest(t, shardDir, tc.mutate)
			_, err := Open(shardDir, Options{})
			if err == nil {
				t.Fatal("corrupt manifest opened cleanly")
			}
			if !strings.Contains(err.Error(), tc.substr) {
				t.Errorf("error %q does not mention %q", err, tc.substr)
			}
		})
	}
}

func TestTruncatedShardRejected(t *testing.T) {
	dir := t.TempDir()
	src := writeTestGraph(t, dir, 60, 0)
	shardDir := filepath.Join(dir, "shards")
	man, err := SplitFile(context.Background(), src, shardDir, SplitOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(shardDir, man.Shards[1].Path)
	if err := os.Truncate(p, man.Shards[1].Bytes-10); err != nil {
		t.Fatal(err)
	}
	_, err = Open(shardDir, Options{})
	if err == nil {
		t.Fatal("truncated shard opened cleanly")
	}
	if !errors.Is(err, gio.ErrBadFormat) {
		t.Errorf("got %v, want ErrBadFormat", err)
	}
}

func TestCorruptShardDigestDetected(t *testing.T) {
	dir := t.TempDir()
	src := writeTestGraph(t, dir, 60, 0)
	shardDir := filepath.Join(dir, "shards")
	man, err := SplitFile(context.Background(), src, shardDir, SplitOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte without changing the size: the open (which only
	// checks structure) succeeds, the digest verification catches it.
	p := filepath.Join(shardDir, man.Shards[2].Path)
	f, err := os.OpenFile(p, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte{0}
	if _, err := f.ReadAt(buf, gio.HeaderSize+5); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xff
	if _, err := f.WriteAt(buf, gio.HeaderSize+5); err != nil {
		t.Fatal(err)
	}
	f.Close()
	set, err := Open(shardDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if _, err := set.CombinedDigest(context.Background()); err == nil {
		t.Fatal("combined digest of corrupted shard verified cleanly")
	} else if !errors.Is(err, gio.ErrBadFormat) {
		t.Errorf("got %v, want ErrBadFormat", err)
	}
}

// TestManifestWriteAtomic checks the crash-safety contract: WriteManifest
// leaves no temp file behind, and overwriting an existing manifest either
// fully replaces it or leaves the old one.
func TestManifestWriteAtomic(t *testing.T) {
	dir := t.TempDir()
	src := writeTestGraph(t, dir, 60, 0)
	shardDir := filepath.Join(dir, "shards")
	man, err := SplitFile(context.Background(), src, shardDir, SplitOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	des, err := os.ReadDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".tmp") {
			t.Errorf("temp file %s left behind", de.Name())
		}
	}
	// Rewriting the manifest in place replaces it atomically.
	if err := WriteManifest(filepath.Join(shardDir, ManifestName), man); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadManifest(shardDir); err != nil {
		t.Fatal(err)
	}
	// An invalid manifest is refused before anything touches disk.
	bad := *man
	bad.Vertices++
	if err := WriteManifest(filepath.Join(shardDir, ManifestName), &bad); err == nil {
		t.Fatal("invalid manifest written")
	}
	if _, _, err := LoadManifest(shardDir); err != nil {
		t.Errorf("failed write damaged the existing manifest: %v", err)
	}
}

func TestOpenMmap(t *testing.T) {
	dir := t.TempDir()
	src := writeTestGraph(t, dir, 80, 0)
	shardDir := filepath.Join(dir, "shards")
	if _, err := SplitFile(context.Background(), src, shardDir, SplitOptions{Shards: 3}); err != nil {
		t.Fatal(err)
	}
	set, err := Open(shardDir, Options{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	got, err := StreamDigest(set.Source(nil, 4))
	if err != nil {
		t.Fatal(err)
	}
	if want := fileDigest(t, src); got != want {
		t.Errorf("mmap merged stream digest %s != original %s", got, want)
	}
}
