// Package shard presents a set of vertex-range shard files as one logical
// graph: a JSON manifest (MANIFEST.shards) lists the shards in scan order,
// an opener validates that their ranges tile [0, vertices) exactly, and a
// scan engine drives per-shard workers — each shard internally using the
// existing pipelined or mmap engine — merging batches back into the exact
// scan order of the merged single file. Every algorithm, the pass-graph
// scheduler, scan accounting and ctx cancellation work unchanged on top; the
// parity suite enforces it result for result and counter for counter.
//
// The manifest persists each shard's partition cut table (the same table
// single-file footers carry), so a cold open performs zero planning scans:
// partitioning is answered from metadata written at split time.
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/gio"
)

// ManifestName is the file name a shard manifest is stored under. A
// directory containing one is a sharded graph; DiscoverGraphs treats it like
// a single .adj file.
const ManifestName = "MANIFEST.shards"

// ManifestVersion is the current manifest format version.
const ManifestVersion = 1

// Format strings for ShardEntry.Format.
const (
	FormatRaw        = "raw"
	FormatCompressed = "compressed"
)

// CutTable is a shard's persisted partition plan: parallel arrays of
// cumulative record counts and absolute byte offsets, entry 0 at
// (0, gio.HeaderSize), the last entry at (records, payload end). It is the
// same table single-file footers store, serialized as JSON here so the
// manifest alone can partition a shard whose file predates footers.
type CutTable struct {
	Records []uint64 `json:"records"`
	Offsets []int64  `json:"offsets"`
}

// ShardEntry describes one shard file: a contiguous run of the merged
// graph's scan positions (equal to vertex IDs for files in ID order).
type ShardEntry struct {
	// Path is the shard file's path, relative to the manifest's directory.
	Path string `json:"path"`
	// Lo and Hi bound the shard's scan-position range [lo, hi): the shard
	// holds records lo..hi-1 of the merged scan order.
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
	// Records is the record count, always hi-lo.
	Records uint64 `json:"records"`
	// Bytes is the shard file's on-disk size at write time.
	Bytes int64 `json:"bytes"`
	// Format is "raw" or "compressed".
	Format string `json:"format"`
	// Digest is the shard file's SHA-256 content digest at write time (the
	// same digest gio.File.ContentDigest computes). The opener's combined
	// digest is derived from the shards' actual digests; a mismatch against
	// this recorded value is surfaced as corruption.
	Digest string `json:"digest"`
	// Cuts is the shard's partition cut table, persisted at write time so
	// cold opens never pay a planning scan.
	Cuts *CutTable `json:"cuts,omitempty"`
}

// Manifest is the on-disk MANIFEST.shards document.
type Manifest struct {
	Version int `json:"version"`
	// Vertices and Edges describe the merged graph; Flags are the gio
	// format flags every shard must agree on.
	Vertices uint64       `json:"vertices"`
	Edges    uint64       `json:"edges"`
	Flags    uint32       `json:"flags"`
	Shards   []ShardEntry `json:"shards"`
}

// Validate checks the manifest's structural invariants: a supported version,
// at least one shard, ranges that tile [0, vertices) contiguously without
// overlap, per-shard record counts matching their ranges, and recognized
// formats consistent with the flags.
func (m *Manifest) Validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("unsupported manifest version %d", m.Version)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("manifest lists no shards")
	}
	wantFormat := FormatRaw
	if m.Flags&gio.FlagCompressed != 0 {
		wantFormat = FormatCompressed
	}
	var next uint64
	for i, s := range m.Shards {
		if s.Path == "" {
			return fmt.Errorf("shard %d has no path", i)
		}
		if s.Lo != next {
			return fmt.Errorf("shard %d (%s) starts at %d, want %d: ranges must be contiguous and non-overlapping", i, s.Path, s.Lo, next)
		}
		if s.Hi <= s.Lo {
			return fmt.Errorf("shard %d (%s) has empty or inverted range [%d,%d)", i, s.Path, s.Lo, s.Hi)
		}
		if s.Records != s.Hi-s.Lo {
			return fmt.Errorf("shard %d (%s) claims %d records for range [%d,%d)", i, s.Path, s.Records, s.Lo, s.Hi)
		}
		if s.Format != wantFormat {
			return fmt.Errorf("shard %d (%s) has format %q, manifest flags say %q", i, s.Path, s.Format, wantFormat)
		}
		next = s.Hi
	}
	if next != m.Vertices {
		return fmt.Errorf("shards cover [0,%d), manifest says %d vertices", next, m.Vertices)
	}
	return nil
}

// TotalBytes returns the summed on-disk size of all shard files as recorded
// at write time.
func (m *Manifest) TotalBytes() int64 {
	var n int64
	for _, s := range m.Shards {
		n += s.Bytes
	}
	return n
}

// IsManifestPath reports whether path names a shard manifest: the manifest
// file itself, or a directory containing one.
func IsManifestPath(path string) bool {
	fi, err := os.Stat(path)
	if err != nil {
		return false
	}
	if fi.IsDir() {
		fi, err = os.Stat(filepath.Join(path, ManifestName))
		return err == nil && !fi.IsDir()
	}
	return filepath.Base(path) == ManifestName
}

// LoadManifest reads and validates a manifest document. path may be the
// manifest file itself or a directory containing one.
func LoadManifest(path string) (*Manifest, string, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		path = filepath.Join(path, ManifestName)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("shard: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, "", fmt.Errorf("shard: %s: parse manifest: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, "", fmt.Errorf("shard: %s: %w", path, err)
	}
	return &m, path, nil
}

// WriteManifest atomically publishes the manifest at path (the final
// MANIFEST.shards location) via temp + fsync + rename + dir fsync, so a
// crash mid-write leaves either the previous manifest or none — never a
// truncated one.
func WriteManifest(path string, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("shard: refusing to write invalid manifest: %w", err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encode manifest: %w", err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("shard: write manifest: %w", err)
	}
	if err := gio.CommitFile(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
