package bench

import (
	"time"

	"repro/internal/core"
	"repro/internal/gio"
)

// AblationIO measures how the block size B drives Greedy's I/O, isolating
// the (|V|+|E|)/B term of the paper's cost model: halving B should roughly
// double the buffered block count while the result stays identical.
func AblationIO(cfg *Config) error {
	cfg = cfg.withDefaults()
	path, err := cfg.sweepFile(2.0, 0)
	if err != nil {
		return err
	}
	cfg.printf("Ablation: block size B vs Greedy I/O (graph %s)\n", path)
	cfg.printf("%10s %10s %12s %12s %8s\n", "B", "|IS|", "blocks", "bytes", "time")
	var baseline int
	for _, blockSize := range []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		stats := &gio.Counters{}
		f, err := gio.Open(path, blockSize, stats)
		if err != nil {
			return err
		}
		start := time.Now()
		r, err := core.Greedy(f)
		elapsed := time.Since(start)
		f.Close()
		if err != nil {
			return err
		}
		if baseline == 0 {
			baseline = r.Size
		}
		if r.Size != baseline {
			cfg.printf("WARNING: block size changed the result (%d vs %d)\n", r.Size, baseline)
		}
		sn := stats.Snapshot()
		cfg.printf("%10d %10d %12d %12d %8s\n",
			blockSize, r.Size, sn.BlocksRead, sn.BytesRead, fmtDur(elapsed))
	}
	return nil
}

// AblationEarlyStop quantifies the early-stop design choice beyond Table 8:
// final set sizes when the swap loop is cut at 1, 2, 3 rounds versus run to
// convergence.
func AblationEarlyStop(cfg *Config) error {
	cfg = cfg.withDefaults()
	path, err := cfg.sweepFile(2.0, 0)
	if err != nil {
		return err
	}
	f, _, err := openSorted(path)
	if err != nil {
		return err
	}
	defer f.Close()
	greedy, err := core.Greedy(f)
	if err != nil {
		return err
	}
	cfg.printf("Ablation: early stop — two-k-swap size by round budget (greedy seed %d)\n", greedy.Size)
	cfg.printf("%12s %10s %12s %10s\n", "budget", "|IS|", "gain kept", "rounds")
	full, err := core.TwoKSwap(f, greedy.InSet, core.SwapOptions{})
	if err != nil {
		return err
	}
	fullGain := full.Size - greedy.Size
	for _, budget := range []int{1, 2, 3} {
		r, err := core.TwoKSwap(f, greedy.InSet, core.SwapOptions{EarlyStopRounds: budget})
		if err != nil {
			return err
		}
		kept := 1.0
		if fullGain > 0 {
			kept = float64(r.Size-greedy.Size) / float64(fullGain)
		}
		cfg.printf("%12d %10d %11.1f%% %10d\n", budget, r.Size, 100*kept, r.Rounds)
	}
	cfg.printf("%12s %10d %11.1f%% %10d\n", "∞", full.Size, 100.0, full.Rounds)
	return nil
}

// AblationSort isolates the degree-sort preprocessing: the same scan
// algorithm on the same graph, in vertex-ID versus ascending-degree order,
// plus what the swap algorithms recover from the bad start — the Section 7
// "performance advantage of swap operations is more pronounced from the
// Baseline" observation.
func AblationSort(cfg *Config) error {
	cfg = cfg.withDefaults()
	d := PaperDatasets()[7] // Facebook stand-in
	sorted, unsorted, err := cfg.standIn(d)
	if err != nil {
		return err
	}
	cfg.printf("Ablation: degree-sort preprocessing (%s stand-in)\n", d.Name)
	cfg.printf("%-24s %10s %10s\n", "configuration", "|IS|", "vs sorted")
	fs, _, err := openSorted(sorted)
	if err != nil {
		return err
	}
	defer fs.Close()
	fu, _, err := openSorted(unsorted)
	if err != nil {
		return err
	}
	defer fu.Close()

	g, err := core.Greedy(fs)
	if err != nil {
		return err
	}
	b, err := core.Baseline(fu)
	if err != nil {
		return err
	}
	bSwap, err := core.TwoKSwap(fu, b.InSet, core.SwapOptions{})
	if err != nil {
		return err
	}
	gSwap, err := core.TwoKSwap(fs, g.InSet, core.SwapOptions{})
	if err != nil {
		return err
	}
	rows := []struct {
		name string
		size int
	}{
		{"greedy (sorted)", g.Size},
		{"baseline (unsorted)", b.Size},
		{"two-k after baseline", bSwap.Size},
		{"two-k after greedy", gSwap.Size},
	}
	for _, row := range rows {
		cfg.printf("%-24s %10d %9.2f%%\n", row.name, row.size, 100*float64(row.size)/float64(g.Size))
	}
	return nil
}

// AblationRandomAccess quantifies the paper's Section 4.1 Remark: the
// classical DynamicUpdate, run against the on-disk graph, issues one random
// read per touched adjacency list, while the lazy Greedy does one
// sequential scan. The two produce comparable set sizes; the access pattern
// is the entire difference.
func AblationRandomAccess(cfg *Config) error {
	cfg = cfg.withDefaults()
	path, err := cfg.sweepFile(2.0, 0)
	if err != nil {
		return err
	}
	f, stats, err := openSorted(path)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := core.Greedy(f)
	if err != nil {
		return err
	}
	// The §4.1 Remark is about passes over the disk, so count physical
	// scans: greedy's marking pass and its fused degree/stat rider share
	// one.
	seqScans := stats.Snapshot().PhysicalScans
	dyn, raStats, err := core.DynamicUpdateSemiExternal(f)
	if err != nil {
		return err
	}
	cfg.printf("Ablation: access pattern — lazy Greedy vs on-disk DynamicUpdate (§4.1 Remark)\n")
	cfg.printf("%-28s %10s %16s %16s\n", "algorithm", "|IS|", "sequential scans", "random reads")
	cfg.printf("%-28s %10d %16d %16d\n", "greedy (lazy, sequential)", g.Size, seqScans, 0)
	cfg.printf("%-28s %10d %16s %16d\n", "dynamic-update (on disk)", dyn.Size, "1 (index build)", raStats.RandomReads)
	return nil
}

// AblationPQ varies the external priority queue's memory buffer for the
// time-forward-processing baseline: smaller buffers force disk spills
// without changing the result — the substrate's correctness/performance
// trade-off.
func AblationPQ(cfg *Config) error {
	cfg = cfg.withDefaults()
	path, err := cfg.sweepFile(2.0, 0)
	if err != nil {
		return err
	}
	cfg.printf("Ablation: external PQ buffer vs spills (graph %s)\n", path)
	cfg.printf("%12s %10s %8s\n", "buffer keys", "|IS|", "time")
	var baseline int
	for _, capacity := range []int{1 << 8, 1 << 12, 1 << 16, 1 << 20} {
		f, _, err := openSorted(path)
		if err != nil {
			return err
		}
		start := time.Now()
		r, err := core.ExternalMaximal(f, core.ExternalMaximalOptions{
			PQMemoryCapacity: capacity,
			TempDir:          cfg.WorkDir,
		})
		elapsed := time.Since(start)
		f.Close()
		if err != nil {
			return err
		}
		if baseline == 0 {
			baseline = r.Size
		}
		if r.Size != baseline {
			cfg.printf("WARNING: PQ capacity changed the result (%d vs %d)\n", r.Size, baseline)
		}
		cfg.printf("%12d %10d %8s\n", capacity, r.Size, fmtDur(elapsed))
	}
	return nil
}
