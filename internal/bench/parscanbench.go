// Parscanbench measures raw scan throughput of the parallel partitioned
// executor (internal/exec) across worker counts, against the single-stream
// block-pipelined engine as the workers=1 baseline, and emits a
// machine-readable BENCH_parscan.json so the parallel-scan trajectory is
// tracked across PRs.
//
// Methodology: one graph, two file formats (raw and varint/gap compressed),
// five trials per (format, workers) cell, best-of reported. Every
// measurement is a full ForEachBatch pass folding record IDs and degrees
// into a sink, i.e. the same access pattern as the migrated algorithm
// passes' cheapest consumer. The partition plan is warmed before timing so
// the numbers isolate steady-state scan throughput (the plan is built once
// per file and amortized over every subsequent scan). NumCPU is recorded
// because the executor parallelizes decode CPU, not disk: on a single-core
// host the sweep measures overhead (expect ≈1x), while the ≥4-core speedup
// target needs ≥4 hardware threads to be observable.

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/exec"
	"repro/internal/gio"
	"repro/internal/plrg"
	"repro/internal/shard"
)

// parScanWorkers is the sweep; 1 is the single-stream baseline.
var parScanWorkers = []int{1, 2, 4, 7}

// parScanShards is the shard count of the sharded sweep mode.
const parScanShards = 4

// ParScanBenchResult is one (scan mode, worker count) measurement.
type ParScanBenchResult struct {
	Format  string  `json:"format"`  // "raw", "compressed" or "sharded"
	Workers int     `json:"workers"` // 1 = single-stream engine
	Bytes   int64   `json:"bytes"`   // payload scanned per pass
	NsPerOp int64   `json:"ns_per_op"`
	MBPerS  float64 `json:"mb_per_s"`
}

// ParScanBenchReport is the BENCH_parscan.json document.
type ParScanBenchReport struct {
	Go        string               `json:"go"`
	NumCPU    int                  `json:"num_cpu"`
	Vertices  int                  `json:"vertices"`
	Edges     int                  `json:"edges"`
	BlockSize int                  `json:"block_size"`
	Trials    int                  `json:"trials"`
	Results   []ParScanBenchResult `json:"results"`
	// Speedup is executor-over-single-stream throughput per format at
	// 4 workers, the headline number (meaningful on ≥4-core hosts).
	Speedup map[string]float64 `json:"speedup_at_4_workers"`
	// Note flags measurements that cannot show what the artifact exists to
	// track — set when NumCPU < 4, where the worker sweep can only measure
	// scheduling overhead, not multi-core decode speedup. Always read
	// num_cpu before comparing speedups across hosts.
	Note string `json:"note,omitempty"`
}

// ParScanBench runs the worker sweep and writes BENCH_parscan.json (to
// cfg.ParScanBenchOut, or the work directory when unset).
func ParScanBench(cfg *Config) error {
	cfg = cfg.withDefaults()
	n := cfg.SweepVertices * 4
	g := plrg.PowerLawN(n, 2.0, cfg.Seed)

	rawPath, err := cfg.cachedFile(fmt.Sprintf("scanbench-raw-n%d", n), func(path string) error {
		return gio.WriteGraph(path, g, nil, 0, nil)
	})
	if err != nil {
		return err
	}
	compPath, err := cfg.cachedFile(fmt.Sprintf("scanbench-comp-n%d", n), func(path string) error {
		return gio.WriteGraph(path, g, nil, gio.FlagCompressed, nil)
	})
	if err != nil {
		return err
	}

	const trials = 5
	report := ParScanBenchReport{
		Go:        runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		BlockSize: gio.DefaultBlockSize,
		Trials:    trials,
		Speedup:   map[string]float64{},
	}

	files := []struct{ format, path string }{
		{"raw", rawPath},
		{"compressed", compPath},
	}
	best := map[string]float64{} // format/workers → MB/s
	measure := func(format string, payload int64, workers int, src parScanSource) error {
		var bestNs int64
		for t := 0; t < trials; t++ {
			ns, err := timeParScan(src, format)
			if err != nil {
				return err
			}
			if bestNs == 0 || ns < bestNs {
				bestNs = ns
			}
		}
		mbps := float64(payload) / (float64(bestNs) / 1e9) / 1e6
		best[fmt.Sprintf("%s/%d", format, workers)] = mbps
		report.Results = append(report.Results, ParScanBenchResult{
			Format:  format,
			Workers: workers,
			Bytes:   payload,
			NsPerOp: bestNs,
			MBPerS:  mbps,
		})
		cfg.printf("%-11s workers=%d %8.1f MB/s\n", format, workers, mbps)
		return nil
	}
	var rawPayload int64
	for _, fl := range files {
		f, err := gio.Open(fl.path, 0, nil)
		if err != nil {
			return err
		}
		size, err := f.SizeBytes()
		if err != nil {
			f.Close()
			return err
		}
		payload := size - gio.HeaderSize
		if fl.format == "raw" {
			rawPayload = payload
		}
		// Warm the partition plan outside the timed region. (Footered files
		// and shard sets come with the plan pre-loaded; this is a no-op for
		// them.)
		if _, err := f.Partitions(2); err != nil {
			f.Close()
			return err
		}
		for _, workers := range parScanWorkers {
			if err := measure(fl.format, payload, workers, exec.New(f, workers)); err != nil {
				f.Close()
				return err
			}
		}
		f.Close()
	}

	// Shard mode: the raw graph split into vertex-range shards, scanned
	// through the shard merge engine. Payload is the single raw file's — the
	// same records are decoded — so MB/s stays comparable with the raw rows.
	shardDir := filepath.Join(cfg.WorkDir, fmt.Sprintf("scanbench-shards-n%d", n))
	if !shard.IsManifestPath(shardDir) {
		if _, err := shard.SplitFile(context.Background(), rawPath, shardDir, shard.SplitOptions{Shards: parScanShards}); err != nil {
			return err
		}
	}
	set, err := shard.Open(shardDir, shard.Options{})
	if err != nil {
		return err
	}
	for _, workers := range parScanWorkers {
		if err := measure("sharded", rawPayload, workers, set.Source(nil, workers)); err != nil {
			set.Close()
			return err
		}
	}
	set.Close()

	for _, format := range []string{"raw", "compressed", "sharded"} {
		report.Speedup[format] = best[format+"/4"] / best[format+"/1"]
	}
	if report.NumCPU < 4 {
		report.Note = fmt.Sprintf("measured on a %d-CPU host: the sweep can only show "+
			"scheduling overhead here, not multi-core decode speedup; expect ≈1x or below "+
			"at every worker count", report.NumCPU)
	}
	cfg.printf("speedup at 4 workers (vs single-stream): raw %.2fx, compressed %.2fx (host has %d CPUs)\n",
		report.Speedup["raw"], report.Speedup["compressed"], report.NumCPU)
	if report.Note != "" {
		cfg.printf("NOTE: %s\n", report.Note)
	}

	out := cfg.ParScanBenchOut
	if out == "" {
		out = filepath.Join(cfg.WorkDir, "BENCH_parscan.json")
	}
	if err := parScanOverwriteGuard(out, report.NumCPU, cfg.Force); err != nil {
		return err
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	cfg.printf("wrote %s\n", out)
	return nil
}

// parScanOverwriteGuard refuses to clobber an existing BENCH_parscan.json
// from a host with fewer than 4 CPUs: such a host cannot measure the
// multi-core decode speedup the artifact exists to track (the PR 2 artifact
// came from a 1-CPU container and records overhead, not speedup), so an
// unforced run there must not replace a meaningful measurement with a
// meaningless one.
func parScanOverwriteGuard(out string, numCPU int, force bool) error {
	if numCPU >= 4 || force {
		return nil
	}
	if _, err := os.Stat(out); err == nil {
		return fmt.Errorf("bench: refusing to overwrite %s from a %d-CPU host (<4): "+
			"the sweep only measures scheduling overhead here (a 1-CPU container is the "+
			"common case — GOMAXPROCS gives the workers nothing to run on), so the "+
			"artifact would record noise as if it were speedup; pass -force to overwrite "+
			"anyway, and read the num_cpu and note fields before comparing results", out, numCPU)
	}
	return nil
}

// parScanSource is the slice of the scan interface the sweep times: the
// single-file executor and the shard merge engine both satisfy it.
type parScanSource interface {
	NumVertices() int
	ForEachBatch(fn func([]gio.Record) error) error
}

// timeParScan measures one full scan folding IDs and degrees.
func timeParScan(src parScanSource, name string) (int64, error) {
	var sink uint64
	start := time.Now()
	err := src.ForEachBatch(func(batch []gio.Record) error {
		for _, r := range batch {
			sink += uint64(r.ID) + uint64(len(r.Neighbors))
		}
		return nil
	})
	elapsed := time.Since(start).Nanoseconds()
	if err != nil {
		return 0, err
	}
	if sink == 0 && src.NumVertices() > 0 {
		return 0, fmt.Errorf("bench: parallel %s scan decoded nothing", name)
	}
	return elapsed, nil
}
