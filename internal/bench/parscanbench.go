// Parscanbench measures raw scan throughput of the parallel partitioned
// executor (internal/exec) across worker counts, against the single-stream
// block-pipelined engine as the workers=1 baseline, and emits a
// machine-readable BENCH_parscan.json so the parallel-scan trajectory is
// tracked across PRs.
//
// Methodology: one graph, two file formats (raw and varint/gap compressed),
// five trials per (format, workers) cell, best-of reported. Every
// measurement is a full ForEachBatch pass folding record IDs and degrees
// into a sink, i.e. the same access pattern as the migrated algorithm
// passes' cheapest consumer. The partition plan is warmed before timing so
// the numbers isolate steady-state scan throughput (the plan is built once
// per file and amortized over every subsequent scan). NumCPU is recorded
// because the executor parallelizes decode CPU, not disk: on a single-core
// host the sweep measures overhead (expect ≈1x), while the ≥4-core speedup
// target needs ≥4 hardware threads to be observable.

package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/exec"
	"repro/internal/gio"
	"repro/internal/plrg"
)

// parScanWorkers is the sweep; 1 is the single-stream baseline.
var parScanWorkers = []int{1, 2, 4, 7}

// ParScanBenchResult is one (file format, worker count) measurement.
type ParScanBenchResult struct {
	Format  string  `json:"format"`  // "raw" or "compressed"
	Workers int     `json:"workers"` // 1 = single-stream engine
	Bytes   int64   `json:"bytes"`   // payload scanned per pass
	NsPerOp int64   `json:"ns_per_op"`
	MBPerS  float64 `json:"mb_per_s"`
}

// ParScanBenchReport is the BENCH_parscan.json document.
type ParScanBenchReport struct {
	Go        string               `json:"go"`
	NumCPU    int                  `json:"num_cpu"`
	Vertices  int                  `json:"vertices"`
	Edges     int                  `json:"edges"`
	BlockSize int                  `json:"block_size"`
	Trials    int                  `json:"trials"`
	Results   []ParScanBenchResult `json:"results"`
	// Speedup is executor-over-single-stream throughput per format at
	// 4 workers, the headline number (meaningful on ≥4-core hosts).
	Speedup map[string]float64 `json:"speedup_at_4_workers"`
	// Note flags measurements that cannot show what the artifact exists to
	// track — set when NumCPU < 4, where the worker sweep can only measure
	// scheduling overhead, not multi-core decode speedup. Always read
	// num_cpu before comparing speedups across hosts.
	Note string `json:"note,omitempty"`
}

// ParScanBench runs the worker sweep and writes BENCH_parscan.json (to
// cfg.ParScanBenchOut, or the work directory when unset).
func ParScanBench(cfg *Config) error {
	cfg = cfg.withDefaults()
	n := cfg.SweepVertices * 4
	g := plrg.PowerLawN(n, 2.0, cfg.Seed)

	rawPath, err := cfg.cachedFile(fmt.Sprintf("scanbench-raw-n%d", n), func(path string) error {
		return gio.WriteGraph(path, g, nil, 0, nil)
	})
	if err != nil {
		return err
	}
	compPath, err := cfg.cachedFile(fmt.Sprintf("scanbench-comp-n%d", n), func(path string) error {
		return gio.WriteGraph(path, g, nil, gio.FlagCompressed, nil)
	})
	if err != nil {
		return err
	}

	const trials = 5
	report := ParScanBenchReport{
		Go:        runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		BlockSize: gio.DefaultBlockSize,
		Trials:    trials,
		Speedup:   map[string]float64{},
	}

	files := []struct{ format, path string }{
		{"raw", rawPath},
		{"compressed", compPath},
	}
	best := map[string]float64{} // format/workers → MB/s
	for _, fl := range files {
		f, err := gio.Open(fl.path, 0, nil)
		if err != nil {
			return err
		}
		size, err := f.SizeBytes()
		if err != nil {
			f.Close()
			return err
		}
		payload := size - gio.HeaderSize
		// Warm the partition plan outside the timed region.
		if _, err := f.Partitions(2); err != nil {
			f.Close()
			return err
		}
		for _, workers := range parScanWorkers {
			ex := exec.New(f, workers)
			var bestNs int64
			for t := 0; t < trials; t++ {
				ns, err := timeParScan(ex)
				if err != nil {
					f.Close()
					return err
				}
				if bestNs == 0 || ns < bestNs {
					bestNs = ns
				}
			}
			mbps := float64(payload) / (float64(bestNs) / 1e9) / 1e6
			best[fmt.Sprintf("%s/%d", fl.format, workers)] = mbps
			report.Results = append(report.Results, ParScanBenchResult{
				Format:  fl.format,
				Workers: workers,
				Bytes:   payload,
				NsPerOp: bestNs,
				MBPerS:  mbps,
			})
			cfg.printf("%-11s workers=%d %8.1f MB/s\n", fl.format, workers, mbps)
		}
		f.Close()
	}
	for _, fl := range files {
		report.Speedup[fl.format] = best[fl.format+"/4"] / best[fl.format+"/1"]
	}
	if report.NumCPU < 4 {
		report.Note = fmt.Sprintf("measured on a %d-CPU host: the sweep can only show "+
			"scheduling overhead here, not multi-core decode speedup; expect ≈1x or below "+
			"at every worker count", report.NumCPU)
	}
	cfg.printf("speedup at 4 workers (vs single-stream): raw %.2fx, compressed %.2fx (host has %d CPUs)\n",
		report.Speedup["raw"], report.Speedup["compressed"], report.NumCPU)
	if report.Note != "" {
		cfg.printf("NOTE: %s\n", report.Note)
	}

	out := cfg.ParScanBenchOut
	if out == "" {
		out = filepath.Join(cfg.WorkDir, "BENCH_parscan.json")
	}
	if err := parScanOverwriteGuard(out, report.NumCPU, cfg.Force); err != nil {
		return err
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	cfg.printf("wrote %s\n", out)
	return nil
}

// parScanOverwriteGuard refuses to clobber an existing BENCH_parscan.json
// from a host with fewer than 4 CPUs: such a host cannot measure the
// multi-core decode speedup the artifact exists to track (the PR 2 artifact
// came from a 1-CPU container and records overhead, not speedup), so an
// unforced run there must not replace a meaningful measurement with a
// meaningless one.
func parScanOverwriteGuard(out string, numCPU int, force bool) error {
	if numCPU >= 4 || force {
		return nil
	}
	if _, err := os.Stat(out); err == nil {
		return fmt.Errorf("bench: refusing to overwrite %s from a %d-CPU host (<4): "+
			"the sweep only measures scheduling overhead here (a 1-CPU container is the "+
			"common case — GOMAXPROCS gives the workers nothing to run on), so the "+
			"artifact would record noise as if it were speedup; pass -force to overwrite "+
			"anyway, and read the num_cpu and note fields before comparing results", out, numCPU)
	}
	return nil
}

// timeParScan measures one full executor scan folding IDs and degrees.
func timeParScan(ex *exec.Executor) (int64, error) {
	var sink uint64
	start := time.Now()
	err := ex.ForEachBatch(func(batch []gio.Record) error {
		for _, r := range batch {
			sink += uint64(r.ID) + uint64(len(r.Neighbors))
		}
		return nil
	})
	elapsed := time.Since(start).Nanoseconds()
	if err != nil {
		return 0, err
	}
	if sink == 0 && ex.NumVertices() > 0 {
		return 0, fmt.Errorf("bench: parallel scan of %s decoded nothing", ex.File().Path())
	}
	return elapsed, nil
}
