package bench

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/plrg"
	"repro/internal/theory"
)

// Dataset describes one of the paper's real graphs (Table 4) and the
// synthetic stand-in parameters used to reproduce its shape.
type Dataset struct {
	Name     string
	PaperV   int     // the real graph's vertex count
	PaperAvg float64 // the real graph's average degree
}

// PaperDatasets are the Table 4 datasets. ClueWeb12 (978M vertices, 42B
// edges) is listed for documentation but excluded from the default runs —
// even scaled by 1000 it dwarfs the others; raise DatasetScale headroom and
// add it back via datasetByName when wanted.
func PaperDatasets() []Dataset {
	return []Dataset{
		{"Astroph", 37_000, 21.1},
		{"DBLP", 425_000, 4.92},
		{"Youtube", 1_160_000, 5.16},
		{"Patent", 3_770_000, 8.76},
		{"Blog", 4_040_000, 17.18},
		{"Citeseerx", 6_540_000, 4.6},
		{"Uniport", 6_970_000, 4.59},
		{"Facebook", 59_220_000, 5.12},
		{"Twitter", 61_580_000, 78.12},
	}
}

// scaledVertices returns the stand-in's vertex count under cfg's scale,
// with a floor so the smallest sets remain meaningful.
func (d Dataset) scaledVertices(cfg *Config) int {
	n := d.PaperV / cfg.DatasetScale
	if n < 4000 {
		n = 4000
	}
	return n
}

// betaForAvgDegree finds the power-law exponent whose P(α, β) model matches
// the target average degree at n vertices. Average degree is monotonically
// decreasing in β, so bisection suffices. Very dense targets (Twitter's 78)
// saturate at the lower bound, which is the right qualitative stand-in.
func betaForAvgDegree(n int, target float64) float64 {
	avg := func(beta float64) float64 {
		p := theory.ParamsForVertices(n, beta)
		return 2 * p.NumEdges() / p.NumVertices()
	}
	lo, hi := 1.05, 4.0
	if target >= avg(lo) {
		return lo
	}
	if target <= avg(hi) {
		return hi
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if avg(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// standIn generates (or reuses) the dataset's synthetic stand-in and
// returns paths to its degree-sorted and unsorted adjacency files.
func (cfg *Config) standIn(d Dataset) (sorted, unsorted string, err error) {
	n := d.scaledVertices(cfg)
	beta := betaForAvgDegree(n, d.PaperAvg)
	key := fmt.Sprintf("%s-n%d", d.Name, n)
	var g *graph.Graph
	build := func() *graph.Graph {
		if g == nil {
			g = plrg.PowerLawN(n, beta, cfg.Seed+int64(hashName(d.Name)))
		}
		return g
	}
	sorted, err = cfg.cachedFile(key+"-sorted", func(path string) error {
		return gio.WriteGraphSorted(path, build(), nil)
	})
	if err != nil {
		return "", "", err
	}
	unsorted, err = cfg.cachedFile(key+"-unsorted", func(path string) error {
		return gio.WriteGraph(path, build(), nil, 0, nil)
	})
	return sorted, unsorted, err
}

// sweepFile generates (or reuses) the β-sweep graph for a given trial.
func (cfg *Config) sweepFile(beta float64, trial int) (string, error) {
	key := fmt.Sprintf("sweep-b%.2f-t%d-n%d", beta, trial, cfg.SweepVertices)
	return cfg.cachedFile(key, func(path string) error {
		g := plrg.PowerLawN(cfg.SweepVertices, beta, cfg.Seed+int64(trial)*7919+int64(beta*100))
		return gio.WriteGraphSorted(path, g, nil)
	})
}

// sweepBetas is the paper's β grid.
func sweepBetas() []float64 {
	return []float64{1.7, 1.8, 1.9, 2.0, 2.1, 2.2, 2.3, 2.4, 2.5, 2.6, 2.7}
}

func hashName(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h % 1000
}

// openSorted opens an adjacency file with stats attached.
func openSorted(path string) (*gio.File, *gio.Counters, error) {
	stats := &gio.Counters{}
	f, err := gio.Open(path, 0, stats)
	return f, stats, err
}

// avgOf returns the mean of xs.
func avgOf(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// sortedKeys returns map keys in sorted order (deterministic printing).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
