// Scanbench measures raw sequential-scan throughput of the gio engines —
// the block-pipelined decoder against the bytewise reference decoder — and
// emits a machine-readable BENCH_scan.json so the perf trajectory of the
// scan path is tracked across PRs (the ROADMAP's "as fast as the hardware
// allows" north star is, for this library, exactly this number).

package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/gio"
	"repro/internal/plrg"
)

// ScanBenchResult is one (file format, engine) measurement.
type ScanBenchResult struct {
	Format  string  `json:"format"` // "raw" or "compressed"
	Engine  string  `json:"engine"` // "pipelined", "batch" or "bytewise"
	Bytes   int64   `json:"bytes"`  // payload scanned per pass
	NsPerOp int64   `json:"ns_per_op"`
	MBPerS  float64 `json:"mb_per_s"`
}

// ScanBenchReport is the BENCH_scan.json document.
type ScanBenchReport struct {
	Go        string            `json:"go"`
	Vertices  int               `json:"vertices"`
	Edges     int               `json:"edges"`
	BlockSize int               `json:"block_size"`
	Trials    int               `json:"trials"`
	Results   []ScanBenchResult `json:"results"`
	// Speedup is pipelined-over-bytewise throughput per format, the
	// old-vs-new headline number.
	Speedup map[string]float64 `json:"speedup"`
}

// ScanBench runs the scan-throughput comparison and writes BENCH_scan.json
// (to cfg.ScanBenchOut, or the work directory when unset).
func ScanBench(cfg *Config) error {
	cfg = cfg.withDefaults()
	n := cfg.SweepVertices * 4
	g := plrg.PowerLawN(n, 2.0, cfg.Seed)

	rawPath, err := cfg.cachedFile(fmt.Sprintf("scanbench-raw-n%d", n), func(path string) error {
		return gio.WriteGraph(path, g, nil, 0, nil)
	})
	if err != nil {
		return err
	}
	compPath, err := cfg.cachedFile(fmt.Sprintf("scanbench-comp-n%d", n), func(path string) error {
		return gio.WriteGraph(path, g, nil, gio.FlagCompressed, nil)
	})
	if err != nil {
		return err
	}

	const trials = 5
	report := ScanBenchReport{
		Go:        runtime.Version(),
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		BlockSize: gio.DefaultBlockSize,
		Trials:    trials,
		Speedup:   map[string]float64{},
	}

	files := []struct{ format, path string }{
		{"raw", rawPath},
		{"compressed", compPath},
	}
	engines := []string{"pipelined", "batch", "bytewise"}
	best := map[string]float64{} // format/engine → MB/s
	for _, fl := range files {
		f, err := gio.Open(fl.path, 0, nil)
		if err != nil {
			return err
		}
		size, err := f.SizeBytes()
		if err != nil {
			f.Close()
			return err
		}
		payload := size - gio.HeaderSize
		for _, engine := range engines {
			var bestNs int64
			for t := 0; t < trials; t++ {
				ns, err := timeScan(f, engine)
				if err != nil {
					f.Close()
					return err
				}
				if bestNs == 0 || ns < bestNs {
					bestNs = ns
				}
			}
			mbps := float64(payload) / (float64(bestNs) / 1e9) / 1e6
			best[fl.format+"/"+engine] = mbps
			report.Results = append(report.Results, ScanBenchResult{
				Format:  fl.format,
				Engine:  engine,
				Bytes:   payload,
				NsPerOp: bestNs,
				MBPerS:  mbps,
			})
			cfg.printf("%-11s %-9s %8.1f MB/s\n", fl.format, engine, mbps)
		}
		f.Close()
	}
	for _, fl := range files {
		report.Speedup[fl.format] = best[fl.format+"/pipelined"] / best[fl.format+"/bytewise"]
	}
	cfg.printf("speedup (pipelined vs bytewise): raw %.2fx, compressed %.2fx\n",
		report.Speedup["raw"], report.Speedup["compressed"])

	out := cfg.ScanBenchOut
	if out == "" {
		out = filepath.Join(cfg.WorkDir, "BENCH_scan.json")
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	cfg.printf("wrote %s\n", out)
	return nil
}

// timeScan measures one full scan of f with the given engine.
func timeScan(f *gio.File, engine string) (int64, error) {
	var sink uint64
	start := time.Now()
	var err error
	switch engine {
	case "pipelined":
		err = f.ForEach(func(r gio.Record) error {
			sink += uint64(r.ID) + uint64(len(r.Neighbors))
			return nil
		})
	case "batch":
		err = f.ForEachBatch(func(batch []gio.Record) error {
			for _, r := range batch {
				sink += uint64(r.ID) + uint64(len(r.Neighbors))
			}
			return nil
		})
	case "bytewise":
		err = f.ForEachBytewise(func(r gio.Record) error {
			sink += uint64(r.ID) + uint64(len(r.Neighbors))
			return nil
		})
	default:
		err = fmt.Errorf("bench: unknown scan engine %q", engine)
	}
	elapsed := time.Since(start).Nanoseconds()
	if err != nil {
		return 0, err
	}
	if sink == 0 && f.NumVertices() > 0 {
		return 0, fmt.Errorf("bench: scan of %s decoded nothing", f.Path())
	}
	return elapsed, nil
}
