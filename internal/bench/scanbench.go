// Scanbench measures raw sequential-scan throughput of the gio engines —
// the block-pipelined decoder, the memory-mapped decoder (with and without
// zero-copy aliasing), and the bytewise reference decoder — and emits a
// machine-readable BENCH_scan.json so the perf trajectory of the scan path
// is tracked across PRs (the ROADMAP's "as fast as the hardware allows"
// north star is, for this library, exactly this number).
//
// Methodology: every measurement is a full pass folding the record ID and
// every neighbor VALUE into a sink — not just the degree — so engines that
// skip materializing neighbors (mmap-zerocopy) are charged for actually
// delivering them, the access pattern of every real algorithm pass. Warm
// runs keep the file open across trials and report best-of (steady-state
// page-cache throughput); -cold runs re-open the file and ask the kernel to
// evict its pages (posix_fadvise DONTNEED) before every trial, reporting the
// first-read profile instead. The report records which mode produced it and
// whether eviction was actually available.

package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/gio"
	"repro/internal/plrg"
)

// scanBenchEngines is the ablation, in presentation order. "mmap" maps the
// file but decodes into the arena (isolates removing the prefetch copy);
// "mmap-zerocopy" additionally aliases raw neighbor lists straight into the
// mapping (isolates removing the arena copy; compressed files always decode
// into the arena, so there its rows measure the same path as "mmap").
var scanBenchEngines = []string{"bytewise", "pipelined", "batch", "mmap", "mmap-zerocopy"}

// ScanBenchResult is one (file format, engine) measurement.
type ScanBenchResult struct {
	Format  string  `json:"format"` // "raw" or "compressed"
	Engine  string  `json:"engine"` // see scanBenchEngines
	Bytes   int64   `json:"bytes"`  // payload scanned per pass
	NsPerOp int64   `json:"ns_per_op"`
	MBPerS  float64 `json:"mb_per_s"`
}

// ScanBenchReport is the BENCH_scan.json document.
type ScanBenchReport struct {
	Go        string `json:"go"`
	NumCPU    int    `json:"num_cpu"`
	Vertices  int    `json:"vertices"`
	Edges     int    `json:"edges"`
	BlockSize int    `json:"block_size"`
	Trials    int    `json:"trials"`
	// CacheMode is the page-cache state the trials ran under: "warm" (file
	// resident from the preceding trials; best-of measures steady state) or
	// "cold" (pages evicted and the file re-opened before every trial).
	CacheMode string `json:"cache_mode"`
	// ColdSupported reports whether page-cache eviction was available; a
	// cold run without it degrades to warm and says so here.
	ColdSupported bool `json:"cold_supported"`
	// MmapActive is false when the mmap engines fell back to the pipelined
	// engine (platform without mmap or nommap build): their rows then
	// measure the fallback, not a mapping.
	MmapActive bool `json:"mmap_active"`
	// MmapZeroCopy reports whether zero-copy aliasing was live for the raw
	// mmap-zerocopy rows (requires a little-endian host and an active map).
	MmapZeroCopy bool `json:"mmap_zerocopy"`
	// Consumer documents the per-record fold the timings charge every
	// engine for.
	Consumer string            `json:"consumer"`
	Results  []ScanBenchResult `json:"results"`
	// Speedup is pipelined-over-bytewise throughput per format, the
	// old-vs-new headline number.
	Speedup map[string]float64 `json:"speedup"`
	// SpeedupVsPipelined normalizes every engine to the pipelined engine on
	// the same format ("format/engine" → ×), the mmap ablation headline.
	SpeedupVsPipelined map[string]float64 `json:"speedup_vs_pipelined"`
}

// ScanBench runs the scan-throughput comparison and writes BENCH_scan.json
// (to cfg.ScanBenchOut, or the work directory when unset).
func ScanBench(cfg *Config) error {
	cfg = cfg.withDefaults()
	n := cfg.SweepVertices * 4
	g := plrg.PowerLawN(n, 2.0, cfg.Seed)

	rawPath, err := cfg.cachedFile(fmt.Sprintf("scanbench-raw-n%d", n), func(path string) error {
		return gio.WriteGraph(path, g, nil, 0, nil)
	})
	if err != nil {
		return err
	}
	compPath, err := cfg.cachedFile(fmt.Sprintf("scanbench-comp-n%d", n), func(path string) error {
		return gio.WriteGraph(path, g, nil, gio.FlagCompressed, nil)
	})
	if err != nil {
		return err
	}

	cold := cfg.ScanBenchCold
	coldOK := false
	if cold {
		if err := gio.DropPageCache(rawPath); err != nil {
			cfg.printf("cold mode unavailable (%v): falling back to warm trials\n", err)
			cold = false
		} else {
			coldOK = true
		}
	}

	const trials = 5
	report := ScanBenchReport{
		Go:                 runtime.Version(),
		NumCPU:             runtime.NumCPU(),
		Vertices:           g.NumVertices(),
		Edges:              g.NumEdges(),
		BlockSize:          gio.DefaultBlockSize,
		Trials:             trials,
		CacheMode:          map[bool]string{false: "warm", true: "cold"}[cold],
		ColdSupported:      coldOK,
		Consumer:           "sum of record ID and every neighbor value",
		Speedup:            map[string]float64{},
		SpeedupVsPipelined: map[string]float64{},
	}
	{
		// Probe what the mmap engines actually run on this platform/build.
		probe, err := gio.OpenMmap(rawPath, 0, nil)
		if err != nil {
			return err
		}
		report.MmapActive = probe.MmapActive()
		report.MmapZeroCopy = probe.MmapZeroCopy()
		probe.Close()
	}

	files := []struct{ format, path string }{
		{"raw", rawPath},
		{"compressed", compPath},
	}
	best := map[string]float64{} // format/engine → MB/s
	for _, fl := range files {
		fi, err := os.Stat(fl.path)
		if err != nil {
			return err
		}
		payload := fi.Size() - gio.HeaderSize
		for _, engine := range scanBenchEngines {
			var bestNs int64
			run := func(f *gio.File) error {
				ns, err := timeScan(f, engine)
				if err != nil {
					return err
				}
				if bestNs == 0 || ns < bestNs {
					bestNs = ns
				}
				return nil
			}
			if cold {
				// Cold profile: evict the file's pages and re-open per trial,
				// so every trial pays the first-read I/O and the per-scan
				// setup (open, mmap) instead of amortizing them.
				for t := 0; t < trials; t++ {
					if err := gio.DropPageCache(fl.path); err != nil {
						return err
					}
					f, err := openScanBenchFile(fl.path, engine)
					if err != nil {
						return err
					}
					err = run(f)
					f.Close()
					if err != nil {
						return err
					}
				}
			} else {
				f, err := openScanBenchFile(fl.path, engine)
				if err != nil {
					return err
				}
				for t := 0; t < trials; t++ {
					if err := run(f); err != nil {
						f.Close()
						return err
					}
				}
				f.Close()
			}
			mbps := float64(payload) / (float64(bestNs) / 1e9) / 1e6
			best[fl.format+"/"+engine] = mbps
			report.Results = append(report.Results, ScanBenchResult{
				Format:  fl.format,
				Engine:  engine,
				Bytes:   payload,
				NsPerOp: bestNs,
				MBPerS:  mbps,
			})
			cfg.printf("%-11s %-13s %8.1f MB/s\n", fl.format, engine, mbps)
		}
	}
	for _, fl := range files {
		report.Speedup[fl.format] = best[fl.format+"/pipelined"] / best[fl.format+"/bytewise"]
		for _, engine := range scanBenchEngines {
			if engine == "pipelined" {
				continue
			}
			key := fl.format + "/" + engine
			report.SpeedupVsPipelined[key] = best[key] / best[fl.format+"/pipelined"]
		}
	}
	cfg.printf("speedup (pipelined vs bytewise): raw %.2fx, compressed %.2fx\n",
		report.Speedup["raw"], report.Speedup["compressed"])
	cfg.printf("speedup vs pipelined: raw mmap %.2fx, raw mmap-zerocopy %.2fx, compressed mmap %.2fx\n",
		report.SpeedupVsPipelined["raw/mmap"],
		report.SpeedupVsPipelined["raw/mmap-zerocopy"],
		report.SpeedupVsPipelined["compressed/mmap"])

	out := cfg.ScanBenchOut
	if out == "" {
		out = filepath.Join(cfg.WorkDir, "BENCH_scan.json")
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	cfg.printf("wrote %s\n", out)
	return nil
}

// openScanBenchFile opens path with the engine's I/O path: OpenMmap for the
// mmap engines (zero-copy aliasing toggled per engine), Open otherwise.
func openScanBenchFile(path, engine string) (*gio.File, error) {
	if engine == "mmap" || engine == "mmap-zerocopy" {
		f, err := gio.OpenMmap(path, 0, nil)
		if err != nil {
			return nil, err
		}
		f.SetMmapZeroCopy(engine == "mmap-zerocopy")
		return f, nil
	}
	return gio.Open(path, 0, nil)
}

// timeScan measures one full scan of f with the given engine, folding every
// record's ID and every neighbor value into a sink.
func timeScan(f *gio.File, engine string) (int64, error) {
	var sink uint64
	fold := func(r gio.Record) {
		sink += uint64(r.ID)
		for _, nb := range r.Neighbors {
			sink += uint64(nb)
		}
	}
	start := time.Now()
	var err error
	switch engine {
	case "pipelined":
		err = f.ForEach(func(r gio.Record) error {
			fold(r)
			return nil
		})
	case "batch", "mmap", "mmap-zerocopy":
		err = f.ForEachBatch(func(batch []gio.Record) error {
			for _, r := range batch {
				fold(r)
			}
			return nil
		})
	case "bytewise":
		err = f.ForEachBytewise(func(r gio.Record) error {
			fold(r)
			return nil
		})
	default:
		err = fmt.Errorf("bench: unknown scan engine %q", engine)
	}
	elapsed := time.Since(start).Nanoseconds()
	if err != nil {
		return 0, err
	}
	if sink == 0 && f.NumVertices() > 1 {
		return 0, fmt.Errorf("bench: scan of %s decoded nothing", f.Path())
	}
	return elapsed, nil
}
