// Package bench contains one runner per table and figure of the paper's
// evaluation (Section 7). Each runner generates its workload, executes the
// algorithms, and prints rows shaped like the paper's artifact so the two
// can be compared side by side (EXPERIMENTS.md records that comparison).
//
// Real datasets are replaced by synthetic power-law stand-ins with the same
// name, power-law shape and average degree, scaled to laptop size — the
// substitution table in DESIGN.md §4 explains why shape, not scale, is what
// the algorithms respond to.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Config controls workload sizes for all experiments.
type Config struct {
	// WorkDir holds generated graph files (reused across experiments).
	// Empty selects a temp directory.
	WorkDir string
	// DatasetScale divides the paper's dataset vertex counts, e.g. 1000
	// turns the 59M-vertex Facebook graph into a 59k-vertex stand-in.
	// ≤ 0 selects 1000.
	DatasetScale int
	// SweepVertices is the graph size for the β sweeps (Tables 2 and 9,
	// Figures 6, 8 and 10; the paper uses 10M). ≤ 0 selects 50000.
	SweepVertices int
	// SweepTrials is how many random graphs are averaged per β (the paper
	// uses 10). ≤ 0 selects 3.
	SweepTrials int
	// Seed drives all generation.
	Seed int64
	// Out receives the formatted tables; nil selects os.Stdout.
	Out io.Writer
	// ScanBenchOut is where the scanbench experiment writes its
	// machine-readable BENCH_scan.json; empty selects the work directory.
	ScanBenchOut string
	// ParScanBenchOut is where the parscanbench experiment writes its
	// machine-readable BENCH_parscan.json; empty selects the work directory.
	ParScanBenchOut string
	// ScanBenchCold makes scanbench evict the benchmark file's pages from
	// the OS page cache and re-open the file before every trial, measuring
	// the cold first-read profile instead of steady-state warm-cache
	// throughput. On platforms without page-cache control the run degrades
	// to warm trials and the report records that.
	ScanBenchCold bool
	// Force lets parscanbench overwrite an existing BENCH_parscan.json even
	// on a host with fewer than 4 CPUs, where the sweep can only measure
	// scheduling overhead and would clobber a meaningful multi-core artifact
	// with a meaningless one. Without it, such a run refuses to overwrite.
	Force bool

	mu        sync.Mutex
	files     map[string]string // cached generated graph files by key
	runsCache []*datasetRun     // cached per-dataset measurements
}

func (c *Config) withDefaults() *Config {
	if c.DatasetScale <= 0 {
		c.DatasetScale = 1000
	}
	if c.SweepVertices <= 0 {
		c.SweepVertices = 50000
	}
	if c.SweepTrials <= 0 {
		c.SweepTrials = 3
	}
	if c.Out == nil {
		c.Out = os.Stdout
	}
	if c.WorkDir == "" {
		dir, err := os.MkdirTemp("", "misbench")
		if err != nil {
			panic(fmt.Sprintf("bench: temp dir: %v", err))
		}
		c.WorkDir = dir
	} else if err := os.MkdirAll(c.WorkDir, 0o755); err != nil {
		panic(fmt.Sprintf("bench: work dir %s: %v", c.WorkDir, err))
	}
	if c.files == nil {
		c.files = make(map[string]string)
	}
	return c
}

// cachedFile returns the path for key, generating it with gen on first use.
func (c *Config) cachedFile(key string, gen func(path string) error) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.files == nil {
		c.files = make(map[string]string)
	}
	if p, ok := c.files[key]; ok {
		return p, nil
	}
	path := filepath.Join(c.WorkDir, key+".adj")
	if _, err := os.Stat(path); err != nil {
		if err := gen(path); err != nil {
			return "", err
		}
	}
	c.files[key] = path
	return path, nil
}

func (c *Config) printf(format string, args ...interface{}) {
	fmt.Fprintf(c.Out, format, args...)
}

// Experiments maps experiment IDs to their runners.
func Experiments() map[string]func(*Config) error {
	return map[string]func(*Config) error{
		"table1":                Table1,
		"lemma1":                Lemma1,
		"table2":                Table2,
		"fig6":                  Fig6,
		"table4":                Table4,
		"table5":                Table5,
		"table6":                Table6,
		"table7":                Table7,
		"table8":                Table8,
		"table9":                Table9,
		"fig5":                  Fig5,
		"fig8":                  Fig8,
		"fig9":                  Fig9,
		"fig10":                 Fig10,
		"ablation-io":           AblationIO,
		"ablation-earlystop":    AblationEarlyStop,
		"ablation-sort":         AblationSort,
		"ablation-pq":           AblationPQ,
		"ablation-randomaccess": AblationRandomAccess,
		"scanbench":             ScanBench,
		"parscanbench":          ParScanBench,
	}
}

// Order lists experiment IDs in the paper's presentation order, followed by
// this reproduction's own ablations.
func Order() []string {
	return []string{
		"table1", "table2", "fig6", "table4", "table5", "table6", "table7",
		"table8", "table9", "fig5", "fig8", "fig9", "fig10", "lemma1",
		"ablation-io", "ablation-earlystop", "ablation-sort", "ablation-pq",
		"ablation-randomaccess", "scanbench", "parscanbench",
	}
}
