package bench

import (
	"math"

	"repro/internal/core"
	"repro/internal/gio"
	"repro/internal/theory"
)

// Table1 reproduces Table 1, the cost summary: for a concrete graph it
// evaluates each method's I/O or CPU cost formula with the measured |V|,
// |E|, block size B and memory M, alongside the measured scan counts, so
// the asymptotic table becomes checkable numbers.
func Table1(cfg *Config) error {
	cfg = cfg.withDefaults()
	path, err := cfg.sweepFile(2.0, 0)
	if err != nil {
		return err
	}
	f, stats, err := openSorted(path)
	if err != nil {
		return err
	}
	defer f.Close()

	v := float64(f.NumVertices())
	e := float64(f.NumEdges())
	b := float64(gio.DefaultBlockSize / 4) // keys per block (4-byte IDs)
	m := 8.0 * v * 4                       // the semi-external budget: a few words per vertex

	logMB := func(x float64) float64 {
		base := m / b
		if base <= 1 || x <= 1 {
			return 1
		}
		l := math.Log(x) / math.Log(base)
		if l < 1 {
			return 1
		}
		return l
	}
	scan := (v + e) / b

	cfg.printf("Table 1: cost formulas evaluated for |V|=%.0f |E|=%.0f B=%.0f keys M=%.0f bytes\n", v, e, b, m)
	cfg.printf("%-22s %-34s %14s\n", "Method", "cost model", "value")
	cfg.printf("%-22s %-34s %14s\n", "Xiao (exact)", "CPU 1.2002^|V|·poly", "astronomical")
	cfg.printf("%-22s %-34s %14.0f\n", "Halldórsson (DU)", "CPU |V|log|V|+|E|", v*math.Log2(v)+e)
	cfg.printf("%-22s %-34s %14.1f\n", "Zeh (ext. maximal)", "I/O sort(|V|+|E|) blocks", scan*logMB((v+e)/b))
	cfg.printf("%-22s %-34s %14.1f\n", "Greedy", "I/O (|V|+|E|)/B·(log_{M/B}|V|/B+2)", scan*(logMB(v/b)+2))
	cfg.printf("%-22s %-34s %14.1f\n", "One-k-swap", "I/O scan(|V|+|E|) per round ×3", 3*scan)
	cfg.printf("%-22s %-34s %14.1f\n", "Two-k-swap", "I/O scan(|V|+|E|) per round ×3", 3*scan)

	// Measured blocks for one greedy scan, for comparison with the model.
	before := stats.Snapshot().BlocksRead
	if _, err := core.Greedy(f); err != nil {
		return err
	}
	cfg.printf("measured: one sequential greedy scan read %d buffered blocks (model scan ≈ %.1f blocks of %d bytes)\n",
		stats.Snapshot().BlocksRead-before, (v+e)*4/float64(gio.DefaultBlockSize), gio.DefaultBlockSize)
	return nil
}

// Lemma1 calibrates the per-degree expectation GR_i of Lemma 1 against the
// measured per-degree composition of the Greedy set: for each small degree
// it prints how many degree-i vertices the theory expects in the set versus
// how many landed there, averaged over the sweep trials.
func Lemma1(cfg *Config) error {
	cfg = cfg.withDefaults()
	const beta = 2.0
	const maxDeg = 8
	p := theory.ParamsForVertices(cfg.SweepVertices, beta)

	measured := make([]float64, maxDeg+1)
	for trial := 0; trial < cfg.SweepTrials; trial++ {
		path, err := cfg.sweepFile(beta, trial)
		if err != nil {
			return err
		}
		f, _, err := openSorted(path)
		if err != nil {
			return err
		}
		r, err := core.Greedy(f)
		if err != nil {
			f.Close()
			return err
		}
		// One more scan tallies the degrees of the selected vertices.
		err = f.ForEach(func(rec gio.Record) error {
			if r.InSet[rec.ID] && len(rec.Neighbors) <= maxDeg {
				measured[len(rec.Neighbors)]++
			}
			return nil
		})
		f.Close()
		if err != nil {
			return err
		}
	}
	cfg.printf("Lemma 1 calibration: expected vs measured degree-i members of the Greedy set (β=%.1f, |V|=%d)\n",
		beta, cfg.SweepVertices)
	cfg.printf("%6s %14s %14s %10s\n", "i", "GR_i (theory)", "measured", "ratio")
	for i := 1; i <= maxDeg; i++ {
		est := theory.GreedyByDegree(p, i)
		got := measured[i] / float64(cfg.SweepTrials)
		ratio := math.NaN()
		if got > 0 {
			ratio = est / got
		}
		cfg.printf("%6d %14.0f %14.1f %10.3f\n", i, est, got, ratio)
	}
	return nil
}
