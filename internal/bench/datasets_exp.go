package bench

import (
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/gio"
	"repro/internal/plrg"
)

// Table4 reproduces Table 4: the characteristics of the dataset stand-ins
// (name, |V|, |E|, average degree, disk size), next to the paper's real
// averages for comparison.
func Table4(cfg *Config) error {
	cfg = cfg.withDefaults()
	cfg.printf("Table 4: Dataset stand-ins (scale 1/%d)\n", cfg.DatasetScale)
	cfg.printf("%-12s %10s %12s %9s %10s %12s\n", "Data Set", "|V|", "|E|", "Avg.Deg", "Disk", "Paper Avg")
	for _, d := range PaperDatasets() {
		sorted, _, err := cfg.standIn(d)
		if err != nil {
			return err
		}
		f, _, err := openSorted(sorted)
		if err != nil {
			return err
		}
		size, err := f.SizeBytes()
		if err != nil {
			f.Close()
			return err
		}
		n := f.NumVertices()
		avg := 2 * float64(f.NumEdges()) / float64(n)
		cfg.printf("%-12s %10d %12d %9.2f %10s %12.2f\n",
			d.Name, n, f.NumEdges(), avg, gio.FormatBytes(uint64(size)), d.PaperAvg)
		f.Close()
	}
	return nil
}

// datasetRun holds every measurement Table 5–8 and Figure 9 need, so the
// expensive runs happen once per dataset.
type datasetRun struct {
	name                 string
	vertices             int
	bound                uint64
	dynamicUpdate        int
	external             int
	baseline             int
	oneAfterBase         int
	twoAfterBase         int
	greedy               int
	oneAfterGreedy       int
	twoAfterGreedy       int
	tGreedy, tOne, tTwo  time.Duration
	tDyn, tExt           time.Duration
	memGreedy            uint64
	memOne, memTwo       uint64
	memDyn, memExt       uint64
	roundsOne, roundsTwo int
	gainsOne             []int
	scPeakTwo            int
}

func (cfg *Config) runDataset(d Dataset) (*datasetRun, error) {
	sorted, unsorted, err := cfg.standIn(d)
	if err != nil {
		return nil, err
	}
	run := &datasetRun{name: d.Name}

	// Unsorted file: Baseline, swaps after Baseline, ExternalMaximal.
	fu, _, err := openSorted(unsorted)
	if err != nil {
		return nil, err
	}
	base, err := core.Baseline(fu)
	if err != nil {
		fu.Close()
		return nil, err
	}
	run.baseline = base.Size
	oneB, err := core.OneKSwap(fu, base.InSet, core.SwapOptions{})
	if err != nil {
		fu.Close()
		return nil, err
	}
	run.oneAfterBase = oneB.Size
	twoB, err := core.TwoKSwap(fu, base.InSet, core.SwapOptions{})
	if err != nil {
		fu.Close()
		return nil, err
	}
	run.twoAfterBase = twoB.Size

	start := time.Now()
	ext, err := core.ExternalMaximal(fu, core.ExternalMaximalOptions{TempDir: cfg.WorkDir})
	if err != nil {
		fu.Close()
		return nil, err
	}
	run.tExt = time.Since(start)
	run.external = ext.Size
	run.memExt = ext.MemoryBytes
	fu.Close()

	// Sorted file: Greedy, swaps after Greedy, bound.
	fs, _, err := openSorted(sorted)
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	run.vertices = fs.NumVertices()

	start = time.Now()
	greedy, err := core.Greedy(fs)
	if err != nil {
		return nil, err
	}
	run.tGreedy = time.Since(start)
	run.greedy = greedy.Size
	run.memGreedy = greedy.MemoryBytes

	start = time.Now()
	one, err := core.OneKSwap(fs, greedy.InSet, core.SwapOptions{})
	if err != nil {
		return nil, err
	}
	run.tOne = time.Since(start)
	run.oneAfterGreedy = one.Size
	run.memOne = one.MemoryBytes
	run.roundsOne = one.Rounds
	run.gainsOne = one.RoundGains

	start = time.Now()
	two, err := core.TwoKSwap(fs, greedy.InSet, core.SwapOptions{})
	if err != nil {
		return nil, err
	}
	run.tTwo = time.Since(start)
	run.twoAfterGreedy = two.Size
	run.memTwo = two.MemoryBytes
	run.roundsTwo = two.Rounds
	run.scPeakTwo = two.SCHighWater

	bound, err := core.UpperBound(fs)
	if err != nil {
		return nil, err
	}
	run.bound = bound

	// DynamicUpdate: in-memory.
	g, err := gio.LoadGraph(sorted, nil)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	dyn := core.DynamicUpdate(g)
	run.tDyn = time.Since(start)
	run.dynamicUpdate = dyn.Size
	run.memDyn = dyn.MemoryBytes
	return run, nil
}

// allRuns executes (and caches) the per-dataset measurements.
func (cfg *Config) allRuns() ([]*datasetRun, error) {
	cfg.mu.Lock()
	if cfg.runsCache != nil {
		defer cfg.mu.Unlock()
		return cfg.runsCache, nil
	}
	cfg.mu.Unlock()
	var runs []*datasetRun
	for _, d := range PaperDatasets() {
		r, err := cfg.runDataset(d)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	cfg.mu.Lock()
	cfg.runsCache = runs
	cfg.mu.Unlock()
	return runs, nil
}

// Table5 reproduces Table 5: independent-set sizes of the six algorithms
// (swaps applied after both Baseline and Greedy). The paper's shape:
// Two-k ≥ One-k ≥ Greedy ≥ Baseline, with swaps rescuing Baseline's poor
// start, and the external maximal-IS algorithm trailing on large graphs.
func Table5(cfg *Config) error {
	cfg = cfg.withDefaults()
	runs, err := cfg.allRuns()
	if err != nil {
		return err
	}
	cfg.printf("Table 5: Independent-set sizes\n")
	cfg.printf("%-12s %10s %10s %10s %10s %10s %10s %10s %10s\n",
		"Data Set", "DynUpd", "STXXL", "Baseline", "1k(Base)", "2k(Base)", "Greedy", "1k(Grdy)", "2k(Grdy)")
	for _, r := range runs {
		cfg.printf("%-12s %10d %10d %10d %10d %10d %10d %10d %10d\n",
			r.name, r.dynamicUpdate, r.external, r.baseline,
			r.oneAfterBase, r.twoAfterBase, r.greedy, r.oneAfterGreedy, r.twoAfterGreedy)
	}
	return nil
}

// Table6 reproduces Table 6: running time and memory cost per algorithm.
// The paper's shape: Greedy is fastest and smallest; swap memory is a few
// words per vertex (independent of |E|); DynamicUpdate's memory scales with
// the whole graph.
func Table6(cfg *Config) error {
	cfg = cfg.withDefaults()
	runs, err := cfg.allRuns()
	if err != nil {
		return err
	}
	cfg.printf("Table 6: Time and memory cost\n")
	cfg.printf("%-12s | %10s %10s %10s %10s %10s | %10s %10s %10s %10s %10s\n",
		"Data Set", "DU time", "STXXL t", "Greedy t", "One-k t", "Two-k t",
		"DU mem", "STXXL m", "Greedy m", "One-k m", "Two-k m")
	for _, r := range runs {
		cfg.printf("%-12s | %10s %10s %10s %10s %10s | %10s %10s %10s %10s %10s\n",
			r.name,
			fmtDur(r.tDyn), fmtDur(r.tExt), fmtDur(r.tGreedy), fmtDur(r.tOne), fmtDur(r.tTwo),
			gio.FormatBytes(r.memDyn), gio.FormatBytes(r.memExt), gio.FormatBytes(r.memGreedy),
			gio.FormatBytes(r.memOne), gio.FormatBytes(r.memTwo))
	}
	return nil
}

func fmtDur(d time.Duration) string { return d.Round(time.Millisecond).String() }

// Table7 reproduces Table 7: rounds until convergence for both swap
// algorithms. The paper's shape: small constants (2–9), not proportional to
// graph size, with Two-k often converging in no more rounds than One-k.
func Table7(cfg *Config) error {
	cfg = cfg.withDefaults()
	runs, err := cfg.allRuns()
	if err != nil {
		return err
	}
	cfg.printf("Table 7: Number of rounds\n")
	cfg.printf("%-12s %12s %12s\n", "Data Set", "One-k swap", "Two-k swap")
	for _, r := range runs {
		cfg.printf("%-12s %12d %12d\n", r.name, r.roundsOne, r.roundsTwo)
	}
	return nil
}

// Table8 reproduces Table 8: new IS vertices per round for One-k-swap and
// the cumulative swap ratio after one, two and three rounds. The paper's
// shape: ≥ 97% of the total gain lands within three rounds.
func Table8(cfg *Config) error {
	cfg = cfg.withDefaults()
	runs, err := cfg.allRuns()
	if err != nil {
		return err
	}
	cfg.printf("Table 8: One-k-swap early-stop profile (cumulative gain and ratio per round)\n")
	cfg.printf("%-12s %10s %8s %10s %8s %10s %8s %10s\n",
		"Data Set", "1 round", "ratio", "2 rounds", "ratio", "3 rounds", "ratio", "total")
	for _, r := range runs {
		total := 0
		for _, g := range r.gainsOne {
			total += g
		}
		cum := func(k int) int {
			s := 0
			for i := 0; i < k && i < len(r.gainsOne); i++ {
				s += r.gainsOne[i]
			}
			return s
		}
		ratio := func(k int) float64 {
			if total == 0 {
				return 1
			}
			return float64(cum(k)) / float64(total)
		}
		cfg.printf("%-12s %10d %7.2f%% %10d %7.2f%% %10d %7.2f%% %10d\n",
			r.name, cum(1), 100*ratio(1), cum(2), 100*ratio(2), cum(3), 100*ratio(3), total)
	}
	return nil
}

// Fig9 reproduces Figure 9: Two-k-swap size against the Algorithm 5 optimal
// bound per dataset. The paper's shape: the sparse datasets sit within ~99%
// of the bound.
func Fig9(cfg *Config) error {
	cfg = cfg.withDefaults()
	runs, err := cfg.allRuns()
	if err != nil {
		return err
	}
	cfg.printf("Figure 9: Two-k-swap vs. optimal bound\n")
	cfg.printf("%-12s %12s %14s %8s\n", "Data Set", "Two-k-swap", "Optimal bound", "ratio")
	for _, r := range runs {
		cfg.printf("%-12s %12d %14d %8.4f\n",
			r.name, r.twoAfterGreedy, r.bound, float64(r.twoAfterGreedy)/float64(r.bound))
	}
	return nil
}

// Fig5 validates the cascade-swap worst case of Figure 5: a k-group cascade
// needs a full k rounds of one-k-swap, so rounds grow linearly in |V| = 3k.
func Fig5(cfg *Config) error {
	cfg = cfg.withDefaults()
	cfg.printf("Figure 5: Cascade-swap worst case (rounds must be ≈ |V|/3)\n")
	cfg.printf("%8s %8s %8s %8s\n", "k", "|V|", "rounds", "|IS|")
	for _, k := range []int{10, 30, 100, 300} {
		key := "cascade-" + strconv.Itoa(k)
		path, err := cfg.cachedFile(key, func(p string) error {
			return gio.WriteGraphSorted(p, plrg.Cascade(k), nil)
		})
		if err != nil {
			return err
		}
		f, _, err := openSorted(path)
		if err != nil {
			return err
		}
		init := make([]bool, 3*k)
		for _, c := range plrg.CascadeCenters(k) {
			init[c] = true
		}
		r, err := core.OneKSwap(f, init, core.SwapOptions{})
		f.Close()
		if err != nil {
			return err
		}
		cfg.printf("%8d %8d %8d %8d\n", k, 3*k, r.Rounds, r.Size)
	}
	return nil
}
