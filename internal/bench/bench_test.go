package bench

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tinyConfig(t *testing.T) (*Config, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	return &Config{
		WorkDir:       t.TempDir(),
		DatasetScale:  20000,
		SweepVertices: 4000,
		SweepTrials:   2,
		Seed:          1,
		Out:           &buf,
	}, &buf
}

func TestAllExperimentsRun(t *testing.T) {
	cfg, buf := tinyConfig(t)
	for _, id := range Order() {
		exp := Experiments()[id]
		if exp == nil {
			t.Fatalf("experiment %q missing from registry", id)
		}
		if err := exp(cfg); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "Figure 6", "Table 4", "Table 5",
		"Table 6", "Table 7", "Table 8", "Table 9", "Figure 5", "Figure 8",
		"Figure 9", "Figure 10"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestOrderMatchesRegistry(t *testing.T) {
	exps := Experiments()
	if len(Order()) != len(exps) {
		t.Fatalf("Order has %d ids, registry has %d", len(Order()), len(exps))
	}
	for _, id := range Order() {
		if _, ok := exps[id]; !ok {
			t.Errorf("ordered id %q not in registry", id)
		}
	}
}

func TestBetaForAvgDegree(t *testing.T) {
	// Monotone: denser targets need smaller β.
	bSparse := betaForAvgDegree(10000, 4.0)
	bDense := betaForAvgDegree(10000, 20.0)
	if bDense >= bSparse {
		t.Fatalf("beta(%f)=%f should be below beta(%f)=%f", 20.0, bDense, 4.0, bSparse)
	}
	// Extreme targets clamp to the search interval.
	if b := betaForAvgDegree(10000, 1e9); b != 1.05 {
		t.Fatalf("very dense target: beta = %f, want clamp at 1.05", b)
	}
	if b := betaForAvgDegree(10000, 0.0001); b != 4.0 {
		t.Fatalf("very sparse target: beta = %f, want clamp at 4.0", b)
	}
}

func TestStandInCaching(t *testing.T) {
	cfg, _ := tinyConfig(t)
	d := PaperDatasets()[0]
	s1, u1, err := cfg.standIn(d)
	if err != nil {
		t.Fatal(err)
	}
	s2, u2, err := cfg.standIn(d)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 || u1 != u2 {
		t.Fatal("standIn did not cache")
	}
}

func TestTable5Shape(t *testing.T) {
	// The paper's headline ordering must hold on the stand-ins:
	// swaps never lose to their seed, and Greedy beats Baseline.
	cfg, _ := tinyConfig(t)
	runs, err := cfg.allRuns()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) == 0 {
		t.Fatal("no runs")
	}
	for _, r := range runs {
		if r.oneAfterGreedy < r.greedy {
			t.Errorf("%s: one-k (%d) below greedy (%d)", r.name, r.oneAfterGreedy, r.greedy)
		}
		if r.twoAfterGreedy < r.greedy {
			t.Errorf("%s: two-k (%d) below greedy (%d)", r.name, r.twoAfterGreedy, r.greedy)
		}
		if r.oneAfterBase < r.baseline {
			t.Errorf("%s: one-k (%d) below baseline (%d)", r.name, r.oneAfterBase, r.baseline)
		}
		if r.greedy <= r.baseline {
			t.Errorf("%s: greedy (%d) does not beat baseline (%d)", r.name, r.greedy, r.baseline)
		}
		if uint64(r.twoAfterGreedy) > r.bound {
			t.Errorf("%s: result exceeds the upper bound", r.name)
		}
		if r.memGreedy >= r.memOne || r.memOne > r.memTwo {
			t.Errorf("%s: memory ordering violated: greedy=%d one=%d two=%d",
				r.name, r.memGreedy, r.memOne, r.memTwo)
		}
	}
}

func TestParScanOverwriteGuard(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "absent.json")
	existing := filepath.Join(dir, "BENCH_parscan.json")
	if err := os.WriteFile(existing, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		out     string
		numCPU  int
		force   bool
		wantErr bool
	}{
		{"small-host-existing", existing, 1, false, true},
		{"small-host-existing-3cpu", existing, 3, false, true},
		{"small-host-forced", existing, 1, true, false},
		{"small-host-fresh-path", missing, 1, false, false},
		{"big-host-existing", existing, 4, false, false},
	} {
		err := parScanOverwriteGuard(tc.out, tc.numCPU, tc.force)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", tc.name, err, tc.wantErr)
		}
	}
}

// TestParScanBenchShardRows: the sweep records shard-mode measurements next
// to the single-file formats, and the speedup map covers all three modes.
func TestParScanBenchShardRows(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_parscan.json")
	cfg := &Config{
		WorkDir:         dir,
		SweepVertices:   400,
		ParScanBenchOut: out,
		Out:             io.Discard,
	}
	if err := ParScanBench(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report ParScanBenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range report.Results {
		counts[r.Format]++
	}
	for _, format := range []string{"raw", "compressed", "sharded"} {
		if counts[format] != len(parScanWorkers) {
			t.Errorf("%s: %d rows, want %d", format, counts[format], len(parScanWorkers))
		}
		if report.Speedup[format] <= 0 {
			t.Errorf("%s: speedup %v not recorded", format, report.Speedup[format])
		}
	}
}
