package bench

import (
	"repro/internal/core"
	"repro/internal/theory"
)

// avgBound generates cfg.SweepTrials random P(·, β) graphs and averages
// their Algorithm 5 upper bounds — the paper's denominator for every
// theoretical ratio (Section 4.2 Remark).
func avgBound(cfg *Config, beta float64) (float64, error) {
	var bounds []float64
	for trial := 0; trial < cfg.SweepTrials; trial++ {
		path, err := cfg.sweepFile(beta, trial)
		if err != nil {
			return 0, err
		}
		f, _, err := openSorted(path)
		if err != nil {
			return 0, err
		}
		b, err := core.UpperBound(f)
		f.Close()
		if err != nil {
			return 0, err
		}
		bounds = append(bounds, float64(b))
	}
	return avgOf(bounds), nil
}

// Table2 reproduces Table 2: the expected performance ratio of the Greedy
// algorithm (Proposition 2) against the averaged Algorithm 5 upper bound,
// for β from 1.7 to 2.7. The paper reports 0.983–0.988 at 10M vertices.
func Table2(cfg *Config) error {
	cfg = cfg.withDefaults()
	cfg.printf("Table 2: Greedy performance ratio (Proposition 2 / Algorithm 5 bound), |V|=%d\n", cfg.SweepVertices)
	cfg.printf("%6s %12s %12s %8s\n", "β", "GR(α,β)", "bound", "ratio")
	for _, beta := range sweepBetas() {
		p := theory.ParamsForVertices(cfg.SweepVertices, beta)
		gr := theory.Greedy(p)
		bound, err := avgBound(cfg, beta)
		if err != nil {
			return err
		}
		cfg.printf("%6.1f %12.0f %12.0f %8.3f\n", beta, gr, bound, gr/bound)
	}
	return nil
}

// Fig6 reproduces Figure 6: the expected one-k-swap ratio (Proposition 5 on
// top of Proposition 2) over the same β grid; the paper reports ≥ 0.995.
func Fig6(cfg *Config) error {
	cfg = cfg.withDefaults()
	cfg.printf("Figure 6: One-k-swap expected ratio (Proposition 5), |V|=%d\n", cfg.SweepVertices)
	cfg.printf("%6s %12s %12s %12s %8s\n", "β", "GR", "GR+SG", "bound", "ratio")
	for _, beta := range sweepBetas() {
		p := theory.ParamsForVertices(cfg.SweepVertices, beta)
		gr := theory.Greedy(p)
		onek := theory.OneKSwap(p)
		bound, err := avgBound(cfg, beta)
		if err != nil {
			return err
		}
		cfg.printf("%6.1f %12.0f %12.0f %12.0f %8.3f\n", beta, gr, onek, bound, onek/bound)
	}
	return nil
}

// Table9 reproduces Table 9: the accuracy of the Proposition 2 estimate
// against the measured Greedy result on generated graphs, per β. The paper
// reports accuracies ≥ 98.7% with the estimate a lower bound, and the
// counter-intuitive finding that |IS| shrinks as β grows.
func Table9(cfg *Config) error {
	cfg = cfg.withDefaults()
	cfg.printf("Table 9: Accuracy of the Greedy estimation, |V|=%d, %d trials\n", cfg.SweepVertices, cfg.SweepTrials)
	cfg.printf("%6s %12s %12s %12s %10s\n", "β", "Edges", "Estimation", "Real", "Accuracy")
	for _, beta := range sweepBetas() {
		p := theory.ParamsForVertices(cfg.SweepVertices, beta)
		est := theory.Greedy(p)
		var sizes, edges []float64
		for trial := 0; trial < cfg.SweepTrials; trial++ {
			path, err := cfg.sweepFile(beta, trial)
			if err != nil {
				return err
			}
			f, _, err := openSorted(path)
			if err != nil {
				return err
			}
			r, err := core.Greedy(f)
			edgesN := f.NumEdges()
			f.Close()
			if err != nil {
				return err
			}
			sizes = append(sizes, float64(r.Size))
			edges = append(edges, float64(edgesN))
		}
		real := avgOf(sizes)
		cfg.printf("%6.1f %12.0f %12.0f %12.0f %9.1f%%\n", beta, avgOf(edges), est, real, 100*est/real)
	}
	return nil
}

// Fig8 reproduces Figure 8: measured approximation ratios of Greedy,
// One-k-swap and Two-k-swap on generated P(·, β) graphs against the
// Algorithm 5 bound. The paper reports all three ≥ 0.99, swaps above
// Greedy, and ratios rising with β.
func Fig8(cfg *Config) error {
	cfg = cfg.withDefaults()
	cfg.printf("Figure 8: Measured ratios of three algorithms, |V|=%d, %d trials\n", cfg.SweepVertices, cfg.SweepTrials)
	cfg.printf("%6s %10s %12s %12s\n", "β", "Greedy", "One-k-swap", "Two-k-swap")
	for _, beta := range sweepBetas() {
		var rg, r1, r2 []float64
		for trial := 0; trial < cfg.SweepTrials; trial++ {
			path, err := cfg.sweepFile(beta, trial)
			if err != nil {
				return err
			}
			f, _, err := openSorted(path)
			if err != nil {
				return err
			}
			bound, err := core.UpperBound(f)
			if err != nil {
				f.Close()
				return err
			}
			g, err := core.Greedy(f)
			if err != nil {
				f.Close()
				return err
			}
			one, err := core.OneKSwap(f, g.InSet, core.SwapOptions{})
			if err != nil {
				f.Close()
				return err
			}
			two, err := core.TwoKSwap(f, g.InSet, core.SwapOptions{})
			f.Close()
			if err != nil {
				return err
			}
			rg = append(rg, float64(g.Size)/float64(bound))
			r1 = append(r1, float64(one.Size)/float64(bound))
			r2 = append(r2, float64(two.Size)/float64(bound))
		}
		cfg.printf("%6.1f %10.4f %12.4f %12.4f\n", beta, avgOf(rg), avgOf(r1), avgOf(r2))
	}
	return nil
}

// Fig10 reproduces Figure 10: the peak SC-store population of Two-k-swap
// relative to |V| over the β grid. The paper reports a stable |SC| ≈
// 0.12–0.14 |V|.
func Fig10(cfg *Config) error {
	cfg = cfg.withDefaults()
	cfg.printf("Figure 10: |SC|/|V| for Two-k-swap, |V|=%d\n", cfg.SweepVertices)
	cfg.printf("%6s %12s %10s\n", "β", "|SC| peak", "|SC|/|V|")
	for _, beta := range sweepBetas() {
		var ratios, peaks []float64
		for trial := 0; trial < cfg.SweepTrials; trial++ {
			path, err := cfg.sweepFile(beta, trial)
			if err != nil {
				return err
			}
			f, _, err := openSorted(path)
			if err != nil {
				return err
			}
			g, err := core.Greedy(f)
			if err != nil {
				f.Close()
				return err
			}
			two, err := core.TwoKSwap(f, g.InSet, core.SwapOptions{})
			f.Close()
			if err != nil {
				return err
			}
			peaks = append(peaks, float64(two.SCHighWater))
			ratios = append(ratios, float64(two.SCHighWater)/float64(cfg.SweepVertices))
		}
		cfg.printf("%6.1f %12.0f %10.4f\n", beta, avgOf(peaks), avgOf(ratios))
	}
	return nil
}
