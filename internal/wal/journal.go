package wal

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Options configures a Journal.
type Options struct {
	// SyncEvery is the group-commit size trigger: an Append whose record
	// brings the unsynced count to SyncEvery (or beyond) commits the batch
	// with one fsync before returning, and concurrent appenders waiting on
	// the same batch piggyback on that fsync instead of issuing their own.
	// 1 (the default) makes every Append durable before it returns; larger
	// values trade a bounded window of acknowledged-but-volatile records
	// for fewer fsyncs. ≤ 0 means 1.
	SyncEvery int

	// SyncInterval is the group-commit time trigger: a background ticker
	// commits any unsynced records at least this often, bounding how long a
	// record admitted under SyncEvery > 1 stays volatile. 0 disables the
	// ticker.
	SyncInterval time.Duration

	// FS overrides the filesystem (fault injection, tests). Nil uses the OS.
	FS FS
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 1
	}
	o.FS = fsOrOS(o.FS)
	return o
}

// Journal is the durable append-only record log. All methods are safe for
// concurrent use; appends are serialized, and durability acknowledgments
// are batched through group commit (see Options.SyncEvery).
type Journal struct {
	path string
	fs   FS
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond // broadcast when durable advances or err sets
	f        File
	err      error // sticky: once a write or sync fails, the journal is poisoned
	size     int64 // bytes written (all records, synced or not)
	appended uint64
	durable  uint64 // records covered by a completed fsync
	edges    uint64 // non-checkpoint records among appended
	torn     int64  // bytes truncated from the tail during Open
	syncing  bool
	closed   bool

	stopTicker chan struct{}
	tickerDone chan struct{}
	buf        []byte
}

// Open opens (creating if absent) the journal at path and replays every
// intact record through apply, in order. A damaged tail — a partial record,
// or a CRC failure on the final record — is a torn write: the journal is
// truncated back to the last intact record, synced, and opened for appends.
// Damage before the tail aborts with a *CorruptError carrying the offset.
// An error from apply aborts the open and is returned verbatim.
func Open(path string, opts Options, apply func(Record) error) (*Journal, error) {
	opts = opts.withDefaults()
	f, err := opts.FS.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	j := &Journal{path: path, fs: opts.FS, opts: opts, f: f}
	j.cond = sync.NewCond(&j.mu)

	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	clean, err := DecodeStream(&sectionReader{f: f, size: size}, size, func(r Record) error {
		j.appended++
		if r.Op != OpCheckpoint {
			j.edges++
		}
		if apply != nil {
			return apply(r)
		}
		return nil
	})
	if err != nil {
		f.Close()
		if ce, ok := err.(*CorruptError); ok {
			ce.Path = path
		}
		return nil, err
	}
	if clean < size {
		j.torn = size - clean
		if err := f.Truncate(clean); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: sync %s: %w", path, err)
		}
	}
	if _, err := f.Seek(clean, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	j.size = clean
	j.durable = j.appended // everything replayed is on disk

	if opts.SyncInterval > 0 {
		j.stopTicker = make(chan struct{})
		j.tickerDone = make(chan struct{})
		go j.tickLoop(opts.SyncInterval)
	}
	return j, nil
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Appended returns the number of records in the journal, replayed plus
// appended, whether or not they are durable yet.
func (j *Journal) Appended() uint64 { j.mu.Lock(); defer j.mu.Unlock(); return j.appended }

// Durable returns the number of records covered by a completed fsync.
func (j *Journal) Durable() uint64 { j.mu.Lock(); defer j.mu.Unlock(); return j.durable }

// Edges returns the number of edge (non-checkpoint) records in the journal.
func (j *Journal) Edges() uint64 { j.mu.Lock(); defer j.mu.Unlock(); return j.edges }

// Size returns the journal length in bytes.
func (j *Journal) Size() int64 { j.mu.Lock(); defer j.mu.Unlock(); return j.size }

// TornBytes reports how many trailing bytes Open discarded as a torn write.
func (j *Journal) TornBytes() int64 { return j.torn }

// Err returns the journal's sticky error: non-nil once any write or fsync
// has failed, including a background SyncInterval commit. Callers that
// appended under SyncEvery > 1 and then went quiet must poll this (or call
// Sync) to learn that acknowledged-but-volatile records were lost — the
// failed ticker commit otherwise has no call to surface through.
func (j *Journal) Err() error { j.mu.Lock(); defer j.mu.Unlock(); return j.err }

// Append writes r to the journal. When the record triggers the group-commit
// size threshold the call blocks until an fsync covers it — shared with
// every other appender waiting on the same batch — and returns only once
// the record is durable. Below the threshold it returns immediately after
// the buffered write; the record becomes durable at the next size- or
// time-triggered commit, or an explicit Sync. A write or sync failure
// poisons the journal: the failed record is not acknowledged and every
// subsequent call returns the same error.
func (j *Journal) Append(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if j.closed {
		return fmt.Errorf("wal: append to closed journal %s", j.path)
	}
	j.buf = AppendRecord(j.buf[:0], r)
	n, err := j.f.Write(j.buf)
	j.size += int64(n)
	if err != nil {
		j.fail(fmt.Errorf("wal: append %s: %w", j.path, err))
		return j.err
	}
	j.appended++
	if r.Op != OpCheckpoint {
		j.edges++
	}
	if j.appended-j.durable >= uint64(j.opts.SyncEvery) {
		return j.commitLocked(j.appended)
	}
	return nil
}

// Sync commits every appended record with one fsync (group commit: if a
// sync already in flight covers the caller's records it just waits).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.commitLocked(j.appended)
}

// commitLocked blocks until records up to seq are durable, issuing the
// fsync itself if no in-flight sync will cover them. Called with j.mu held;
// the fsync itself runs unlocked so concurrent appenders keep writing (the
// next batch) while the current one commits.
func (j *Journal) commitLocked(seq uint64) error {
	for {
		if j.err != nil {
			return j.err
		}
		if j.durable >= seq {
			return nil
		}
		if j.syncing {
			j.cond.Wait()
			continue
		}
		j.syncing = true
		target := j.appended
		j.mu.Unlock()
		err := j.f.Sync()
		j.mu.Lock()
		j.syncing = false
		if err != nil {
			j.fail(fmt.Errorf("wal: sync %s: %w", j.path, err))
			return j.err
		}
		if target > j.durable {
			j.durable = target
		}
		j.cond.Broadcast()
	}
}

// fail poisons the journal with err. Called with j.mu held.
func (j *Journal) fail(err error) {
	if j.err == nil {
		j.err = err
	}
	j.cond.Broadcast()
}

// Reset truncates the journal to empty, writes cp as the new head
// checkpoint, and fsyncs — the compactor's "journal horizon folded, start
// generation cp.Gen" step. A failure poisons the journal (the on-disk state
// is ambiguous; recovery via Open resolves it).
func (j *Journal) Reset(cp Record) error {
	if cp.Op != OpCheckpoint {
		return fmt.Errorf("wal: reset head must be a checkpoint, got op %d", cp.Op)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if j.closed {
		return fmt.Errorf("wal: reset of closed journal %s", j.path)
	}
	// Wait out any in-flight fsync so truncate and sync don't interleave.
	for j.syncing {
		j.cond.Wait()
		if j.err != nil {
			return j.err
		}
	}
	if err := j.f.Truncate(0); err != nil {
		j.fail(fmt.Errorf("wal: reset truncate %s: %w", j.path, err))
		return j.err
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		j.fail(fmt.Errorf("wal: reset seek %s: %w", j.path, err))
		return j.err
	}
	j.size, j.appended, j.durable, j.edges = 0, 0, 0, 0
	j.buf = AppendRecord(j.buf[:0], cp)
	n, err := j.f.Write(j.buf)
	j.size += int64(n)
	if err != nil {
		j.fail(fmt.Errorf("wal: reset checkpoint %s: %w", j.path, err))
		return j.err
	}
	j.appended = 1
	if err := j.f.Sync(); err != nil {
		j.fail(fmt.Errorf("wal: reset sync %s: %w", j.path, err))
		return j.err
	}
	j.durable = 1
	return nil
}

// Close commits pending records and closes the file. A poisoned journal
// closes without syncing and reports the sticky error.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		err := j.err
		j.mu.Unlock()
		return err
	}
	j.closed = true
	stop := j.stopTicker
	j.mu.Unlock()
	if stop != nil {
		close(stop)
		<-j.tickerDone
	}

	j.mu.Lock()
	var err error
	if j.err == nil && j.durable < j.appended {
		err = j.commitLocked(j.appended)
	} else {
		err = j.err
	}
	cerr := j.f.Close()
	if err == nil {
		err = cerr
	}
	j.mu.Unlock()
	return err
}

func (j *Journal) tickLoop(interval time.Duration) {
	defer close(j.tickerDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-j.stopTicker:
			return
		case <-t.C:
			j.mu.Lock()
			if j.err == nil && !j.closed && j.durable < j.appended {
				// A failed background commit poisons the journal (fail sets
				// the sticky error inside commitLocked); with no caller on
				// this path it surfaces through Err and the next Append.
				j.commitLocked(j.appended)
			}
			j.mu.Unlock()
		}
	}
}
