package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALDecode drives DecodeStream — and the full Open recovery path —
// with arbitrary journal bytes. Truncated, bit-flipped, or garbage input
// must never panic and must resolve to exactly one of: a clean prefix of
// records (torn tail truncated) or a typed *CorruptError. The surviving
// prefix must round-trip: re-encoding the decoded records reproduces the
// input bytes up to the clean length.
func FuzzWALDecode(f *testing.F) {
	var seed []byte
	seed = AppendRecord(seed, Record{Op: OpCheckpoint, Gen: 1, Horizon: 0})
	seed = AppendRecord(seed, Record{Op: OpInsert, U: 1, V: 2})
	seed = AppendRecord(seed, Record{Op: OpDelete, U: 3, V: 4})
	seed = AppendRecord(seed, Record{Op: OpInsert, U: 0xffffffff, V: 0})
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	f.Add(seed[:7])           // partial header
	f.Add([]byte{})           // empty
	flip := append([]byte(nil), seed...)
	flip[9] ^= 0x01 // damage the head record's payload
	f.Add(flip)
	huge := append([]byte(nil), seed...)
	huge[0] = 0xff // absurd length prefix mid-file
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		clean, err := DecodeStream(bytes.NewReader(data), int64(len(data)), collect(&recs))
		if clean < 0 || clean > int64(len(data)) {
			t.Fatalf("clean length %d outside [0, %d]", clean, len(data))
		}
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("decode error is %T (%v), want *CorruptError", err, err)
			}
			if ce.Offset != clean {
				t.Fatalf("corrupt offset %d, clean length %d", ce.Offset, clean)
			}
		}
		// Round-trip: the accepted prefix re-encodes to the original bytes.
		var re []byte
		for _, r := range recs {
			re = AppendRecord(re, r)
		}
		if !bytes.Equal(re, data[:clean]) {
			t.Fatalf("re-encoded prefix diverges: %x vs %x", re, data[:clean])
		}

		// The same bytes through the full Open path: same records, and the
		// journal stays appendable after recovery.
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if werr := os.WriteFile(path, data, 0o644); werr != nil {
			t.Fatal(werr)
		}
		var replayed []Record
		j, oerr := Open(path, Options{}, collect(&replayed))
		if err != nil {
			if oerr == nil {
				j.Close()
				t.Fatalf("DecodeStream saw corruption but Open succeeded")
			}
			return
		}
		if oerr != nil {
			t.Fatalf("DecodeStream clean but Open failed: %v", oerr)
		}
		defer j.Close()
		if len(replayed) != len(recs) {
			t.Fatalf("Open replayed %d records, DecodeStream %d", len(replayed), len(recs))
		}
		if j.Size() != clean {
			t.Fatalf("post-recovery size %d, clean length %d", j.Size(), clean)
		}
		if aerr := j.Append(Record{Op: OpInsert, U: 9, V: 8}); aerr != nil {
			t.Fatalf("append after recovery: %v", aerr)
		}
	})
}
