package wal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// newBaseFile drops a placeholder base file: the store never reads base
// content, it only tracks which generation file is live.
func newBaseFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// writeBaseVia returns a compaction callback that durably writes content at
// the requested path through fs, so FaultFS injection covers the base write
// too.
func writeBaseVia(fs FS, content string) func(context.Context, string) error {
	return func(_ context.Context, path string) error {
		return writeFileAtomic(fs, path, []byte(content), 0o644)
	}
}

func openStore(t *testing.T, dir string, opts StoreOptions) (*Store, []Record) {
	t.Helper()
	var got []Record
	s, err := OpenStore(dir, opts, collect(&got))
	if err != nil {
		t.Fatalf("open store %s: %v", dir, err)
	}
	return s, got
}

func TestStoreInitOpenReplay(t *testing.T) {
	root := t.TempDir()
	base := newBaseFile(t, root, "g.adj", "gen1")
	dir := filepath.Join(root, "store")
	if err := InitStore(dir, base, StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := InitStore(dir, base, StoreOptions{}); err == nil {
		t.Fatal("double init accepted")
	}

	s, got := openStore(t, dir, StoreOptions{})
	if len(got) != 0 {
		t.Fatalf("fresh store replayed %d edge records", len(got))
	}
	man := s.Manifest()
	if man.Generation != 1 || man.Horizon != 0 {
		t.Fatalf("manifest %+v", man)
	}
	if s.BasePath() != base {
		t.Fatalf("base path %q, want %q", s.BasePath(), base)
	}
	for i := uint32(0); i < 6; i++ {
		if err := s.Append(edge(OpInsert, i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, got := openStore(t, dir, StoreOptions{})
	defer s2.Close()
	if len(got) != 6 {
		t.Fatalf("replayed %d edge records, want 6 (checkpoint filtered)", len(got))
	}
	if s2.Journal().Edges() != 6 || s2.Journal().Appended() != 7 {
		t.Fatalf("journal edges=%d appended=%d", s2.Journal().Edges(), s2.Journal().Appended())
	}
}

func TestStoreCompactFoldsAndFlips(t *testing.T) {
	root := t.TempDir()
	base := newBaseFile(t, root, "g.adj", "gen1")
	dir := filepath.Join(root, "store")
	if err := InitStore(dir, base, StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	s, _ := openStore(t, dir, StoreOptions{})
	for i := uint32(0); i < 5; i++ {
		if err := s.Append(edge(OpInsert, i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	man, err := s.Compact(context.Background(), writeBaseVia(OSFS(), "gen2"))
	if err != nil {
		t.Fatal(err)
	}
	if man.Generation != 2 || man.Horizon != 5 {
		t.Fatalf("post-compact manifest %+v", man)
	}
	if s.BasePath() != filepath.Join(dir, "base-000002.adj") {
		t.Fatalf("base path %q", s.BasePath())
	}
	if data, err := os.ReadFile(s.BasePath()); err != nil || string(data) != "gen2" {
		t.Fatalf("new base content %q err %v", data, err)
	}
	if s.Journal().Edges() != 0 || s.Journal().Appended() != 1 {
		t.Fatalf("journal after compact: edges=%d appended=%d", s.Journal().Edges(), s.Journal().Appended())
	}
	// New updates land in the new generation's journal.
	if err := s.Append(edge(OpDelete, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, got := openStore(t, dir, StoreOptions{})
	defer s2.Close()
	if len(got) != 1 || got[0] != edge(OpDelete, 0, 1) {
		t.Fatalf("replay after compact: %+v", got)
	}
	if s2.Manifest() != man {
		t.Fatalf("reopened manifest %+v, want %+v", s2.Manifest(), man)
	}
}

// legacyStore lays out a pre-segmentation store by hand: a manifest with no
// fold watermark and a single journal.wal holding a generation-1 head
// checkpoint plus edges records.
func legacyStore(t *testing.T, root string, edges uint32) string {
	t.Helper()
	base := newBaseFile(t, root, "g.adj", "gen1")
	dir := filepath.Join(root, "store")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writeManifest(OSFS(), filepath.Join(dir, manifestName),
		Manifest{Generation: 1, Base: base, Horizon: 0}); err != nil {
		t.Fatal(err)
	}
	j, err := Open(filepath.Join(dir, journalName), Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Reset(Record{Op: OpCheckpoint, Gen: 1}); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < edges; i++ {
		if err := j.Append(edge(OpInsert, i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestLegacySingleFileStoreOpens pins backward compatibility: a pre-PR 7
// store (single journal.wal, manifest without folded_segment) opens, replays
// its records, keeps appending into journal.wal, and a compaction migrates
// it to the segmented layout.
func TestLegacySingleFileStoreOpens(t *testing.T) {
	dir := legacyStore(t, t.TempDir(), 4)
	s, got := openStore(t, dir, StoreOptions{})
	if len(got) != 4 {
		t.Fatalf("legacy store replayed %d records, want 4", len(got))
	}
	if s.Stats().ActiveSegment != 1 {
		t.Fatalf("legacy journal not read as segment 1: %+v", s.Stats())
	}
	// Appends still land in journal.wal (no premature renaming).
	if err := s.Append(edge(OpInsert, 8, 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, journalName)); err != nil {
		t.Fatalf("legacy journal renamed out from under the store: %v", err)
	}
	// Compaction folds journal.wal and leaves a segmented layout behind.
	man, err := s.Compact(context.Background(), writeBaseVia(OSFS(), "gen2"))
	if err != nil {
		t.Fatal(err)
	}
	if man.Generation != 2 || man.Horizon != 5 || man.FoldedSegment != 1 {
		t.Fatalf("post-compact manifest %+v", man)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, journalName)); !os.IsNotExist(err) {
		t.Fatalf("folded legacy journal still present (err=%v)", err)
	}
	s2, got := openStore(t, dir, StoreOptions{})
	defer s2.Close()
	if len(got) != 0 || s2.Stats().ActiveSegment != 2 {
		t.Fatalf("migrated store replayed %d records, stats %+v", len(got), s2.Stats())
	}
}

func TestStaleJournalDropped(t *testing.T) {
	// Pre-segmentation stores have no fold watermark, so a crash between
	// their manifest flip and journal reset leaves journal.wal full of
	// already-folded generation-1 records under a generation-2 manifest.
	// Recovery must notice the head checkpoint's older generation and drop
	// them, not replay.
	root := t.TempDir()
	dir := legacyStore(t, root, 4)
	newBaseFile(t, dir, "base-000002.adj", "gen2")
	if err := writeManifest(OSFS(), filepath.Join(dir, manifestName),
		Manifest{Generation: 2, Base: "base-000002.adj", Horizon: 4}); err != nil {
		t.Fatal(err)
	}

	s2, got := openStore(t, dir, StoreOptions{})
	defer s2.Close()
	if len(got) != 0 {
		t.Fatalf("stale journal replayed %d records, want 0", len(got))
	}
	if s2.Journal().Appended() != 1 || s2.Journal().Edges() != 0 {
		t.Fatalf("journal after stale drop: appended=%d edges=%d", s2.Journal().Appended(), s2.Journal().Edges())
	}
}

func TestCompactPrunesOldGenerations(t *testing.T) {
	root := t.TempDir()
	base := newBaseFile(t, root, "g.adj", "gen1")
	dir := filepath.Join(root, "store")
	if err := InitStore(dir, base, StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	s, _ := openStore(t, dir, StoreOptions{KeepGenerations: 2})
	for gen := uint64(2); gen <= 5; gen++ {
		if err := s.Append(edge(OpInsert, uint32(gen), 0)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Compact(context.Background(), writeBaseVia(OSFS(), fmt.Sprintf("gen%d", gen))); err != nil {
			t.Fatal(err)
		}
	}
	defer s.Close()
	for gen := uint64(2); gen <= 3; gen++ {
		if _, err := os.Stat(filepath.Join(dir, baseName(gen))); !os.IsNotExist(err) {
			t.Fatalf("generation %d not pruned (err=%v)", gen, err)
		}
	}
	for gen := uint64(4); gen <= 5; gen++ {
		if _, err := os.Stat(filepath.Join(dir, baseName(gen))); err != nil {
			t.Fatalf("generation %d missing from retention window: %v", gen, err)
		}
	}
	// The original out-of-dir base is never touched.
	if _, err := os.Stat(base); err != nil {
		t.Fatalf("initial base pruned: %v", err)
	}
}

// TestCompactionCrashMatrix is the acceptance property for compaction:
// crash at EVERY mutating filesystem operation the compaction performs and
// assert recovery lands on exactly the old or the new generation — the old
// one with every journaled edge intact, or the new one with the journal
// folded — never a mix, a partial file, or double-applied records.
func TestCompactionCrashMatrix(t *testing.T) {
	const edges = 5
	setup := func(t *testing.T) string {
		root := t.TempDir()
		base := newBaseFile(t, root, "g.adj", "gen1")
		dir := filepath.Join(root, "store")
		if err := InitStore(dir, base, StoreOptions{}); err != nil {
			t.Fatal(err)
		}
		s, _ := openStore(t, dir, StoreOptions{})
		for i := uint32(0); i < edges; i++ {
			if err := s.Append(edge(OpInsert, i, i+1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	// Dry run to learn how many mutating ops a full compaction performs.
	dry := setup(t)
	ffs := NewFaultFS(nil)
	s, _ := openStore(t, dry, StoreOptions{Journal: Options{FS: ffs}})
	before := ffs.Ops()
	if _, err := s.Compact(context.Background(), writeBaseVia(ffs, "gen2")); err != nil {
		t.Fatal(err)
	}
	compactOps := ffs.Ops() - before
	s.Close()
	if compactOps < 6 {
		t.Fatalf("compaction used only %d mutating ops — seam not covering it", compactOps)
	}

	for n := 1; n <= compactOps; n++ {
		t.Run(fmt.Sprintf("crash-at-op-%d", n), func(t *testing.T) {
			dir := setup(t)
			ffs := NewFaultFS(nil)
			s, _ := openStore(t, dir, StoreOptions{Journal: Options{FS: ffs}})
			ffs.Arm(n, Crash)
			_, err := s.Compact(context.Background(), writeBaseVia(ffs, "gen2"))
			if !ffs.Fired() {
				t.Fatalf("fault at op %d never fired", n)
			}
			if err == nil {
				// The crash can hit pruning/cleanup after the commit point;
				// then Compact legitimately succeeds.
				t.Log("crash landed after the commit point; compaction reported success")
			}
			s.Close() // simulated process death; ignore errors

			// "Reboot": reopen with a clean filesystem.
			s2, got := openStore(t, dir, StoreOptions{})
			defer s2.Close()
			man := s2.Manifest()
			switch man.Generation {
			case 1:
				// Old generation: every acknowledged edge must replay.
				if len(got) != edges {
					t.Fatalf("old generation recovered %d/%d edges", len(got), edges)
				}
				if filepath.Base(s2.BasePath()) != "g.adj" {
					t.Fatalf("old generation points at %q", s2.BasePath())
				}
			case 2:
				// New generation: journal folded (or dropped as stale), base
				// complete.
				if len(got) != 0 {
					t.Fatalf("new generation replayed %d stale edges", len(got))
				}
				if man.Horizon != edges {
					t.Fatalf("new generation horizon %d, want %d", man.Horizon, edges)
				}
				data, err := os.ReadFile(s2.BasePath())
				if err != nil || string(data) != "gen2" {
					t.Fatalf("new base unreadable: %q, %v", data, err)
				}
			default:
				t.Fatalf("impossible generation %d", man.Generation)
			}
			// Whichever generation survived, the store takes updates again.
			if err := s2.Append(edge(OpInsert, 70, 71)); err != nil {
				t.Fatalf("post-recovery append: %v", err)
			}
		})
	}
}

func TestCompactWriteBaseErrorLeavesStoreUsable(t *testing.T) {
	root := t.TempDir()
	base := newBaseFile(t, root, "g.adj", "gen1")
	dir := filepath.Join(root, "store")
	if err := InitStore(dir, base, StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	s, _ := openStore(t, dir, StoreOptions{})
	defer s.Close()
	if err := s.Append(edge(OpInsert, 1, 2)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("materialize failed")
	if _, err := s.Compact(context.Background(), func(context.Context, string) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("compact error %v, want %v", err, boom)
	}
	// Failure before the manifest flip leaves everything intact and live.
	if s.Manifest().Generation != 1 {
		t.Fatalf("generation moved to %d on failed compact", s.Manifest().Generation)
	}
	if err := s.Append(edge(OpInsert, 3, 4)); err != nil {
		t.Fatalf("append after failed compact: %v", err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Compact(canceled, writeBaseVia(OSFS(), "x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled compact: %v", err)
	}
}

func TestManifestCorruptionDetected(t *testing.T) {
	root := t.TempDir()
	base := newBaseFile(t, root, "g.adj", "gen1")
	dir := filepath.Join(root, "store")
	if err := InitStore(dir, base, StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, StoreOptions{}, nil); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

// segOpts keeps the rotation threshold tiny so a handful of 17-byte edge
// records spans several segments: head checkpoint (25B) + 5 edges (85B)
// crosses 100 bytes on the fifth append.
func segOpts(fs FS) StoreOptions {
	return StoreOptions{Journal: Options{FS: fs}, SegmentSize: 100}
}

func TestSegmentRotation(t *testing.T) {
	root := t.TempDir()
	base := newBaseFile(t, root, "g.adj", "gen1")
	dir := filepath.Join(root, "store")
	if err := InitStore(dir, base, segOpts(nil)); err != nil {
		t.Fatal(err)
	}
	s, _ := openStore(t, dir, segOpts(nil))
	const total = 12
	for i := uint32(0); i < total; i++ {
		if err := s.Append(edge(OpInsert, i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segments != 3 || st.ActiveSegment != 3 || st.Edges != total {
		t.Fatalf("stats after %d appends: %+v", total, st)
	}
	// Successor head checkpoints carry the cumulative horizon at rotation.
	for _, want := range []struct {
		seq     uint64
		horizon uint64
	}{{2, 5}, {3, 10}} {
		head, err := peekHead(OSFS(), filepath.Join(dir, segmentName(want.seq)))
		if err != nil || head == nil {
			t.Fatalf("segment %d head: %v, %v", want.seq, head, err)
		}
		if head.Op != OpCheckpoint || head.Gen != 1 || head.Horizon != want.horizon {
			t.Fatalf("segment %d head %+v, want checkpoint gen 1 horizon %d", want.seq, head, want.horizon)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen replays every record across all segments, in append order.
	s2, got := openStore(t, dir, segOpts(nil))
	if len(got) != total {
		t.Fatalf("replayed %d records, want %d", len(got), total)
	}
	for i, r := range got {
		if r != edge(OpInsert, uint32(i), uint32(i)+1) {
			t.Fatalf("record %d replayed as %+v", i, r)
		}
	}
	// Compaction seals the active segment too and folds all of them.
	man, err := s2.Compact(context.Background(), writeBaseVia(OSFS(), "gen2"))
	if err != nil {
		t.Fatal(err)
	}
	if man.Generation != 2 || man.Horizon != total || man.FoldedSegment != 3 {
		t.Fatalf("post-compact manifest %+v", man)
	}
	if st := s2.Stats(); st.Segments != 1 || st.ActiveSegment != 4 || st.Edges != 0 {
		t.Fatalf("post-compact stats %+v", st)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := os.Stat(filepath.Join(dir, segmentName(seq))); !os.IsNotExist(err) {
			t.Fatalf("folded segment %d not removed (err=%v)", seq, err)
		}
	}
}

// TestAppendsDuringCompactionWindow pins the online-compaction contract at
// the store level: records appended between BeginCompact and CommitCompact
// land in the fresh active segment, are excluded from the fold, and survive
// the flip as the replayable suffix.
func TestAppendsDuringCompactionWindow(t *testing.T) {
	root := t.TempDir()
	base := newBaseFile(t, root, "g.adj", "gen1")
	dir := filepath.Join(root, "store")
	if err := InitStore(dir, base, StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	s, _ := openStore(t, dir, StoreOptions{})
	for i := uint32(0); i < 5; i++ {
		if err := s.Append(edge(OpInsert, i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := s.BeginCompact()
	if err != nil {
		t.Fatal(err)
	}
	if c.Gen != 2 || c.FoldedEdges() != 5 {
		t.Fatalf("compaction window %+v folds %d edges", c, c.FoldedEdges())
	}
	if _, err := s.BeginCompact(); err == nil {
		t.Fatal("second concurrent compaction window accepted")
	}
	suffix := []Record{edge(OpInsert, 50, 51), edge(OpDelete, 0, 1)}
	for _, r := range suffix {
		if err := s.Append(r); err != nil {
			t.Fatalf("append during compaction window: %v", err)
		}
	}
	if err := writeFileAtomic(OSFS(), c.BasePath, []byte("gen2"), 0o644); err != nil {
		t.Fatal(err)
	}
	man, err := s.CommitCompact(c)
	if err != nil {
		t.Fatal(err)
	}
	if man.Generation != 2 || man.Horizon != 5 || man.FoldedSegment != 1 {
		t.Fatalf("post-commit manifest %+v", man)
	}
	if st := s.Stats(); st.Edges != 2 {
		t.Fatalf("suffix edges %d, want 2 (stats %+v)", st.Edges, st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, got := openStore(t, dir, StoreOptions{})
	defer s2.Close()
	if len(got) != len(suffix) {
		t.Fatalf("replayed %d suffix records, want %d", len(got), len(suffix))
	}
	for i, r := range got {
		if r != suffix[i] {
			t.Fatalf("suffix record %d replayed as %+v, want %+v", i, r, suffix[i])
		}
	}
}

// TestAbortCompactKeepsSegmentsUnfolded: an aborted window leaves the
// sealed segments for the next compaction and removes the partial base.
func TestAbortCompactKeepsSegmentsUnfolded(t *testing.T) {
	root := t.TempDir()
	base := newBaseFile(t, root, "g.adj", "gen1")
	dir := filepath.Join(root, "store")
	if err := InitStore(dir, base, StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	s, _ := openStore(t, dir, StoreOptions{})
	defer s.Close()
	for i := uint32(0); i < 3; i++ {
		if err := s.Append(edge(OpInsert, i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := s.BeginCompact()
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(OSFS(), c.BasePath, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.AbortCompact(c)
	if _, err := os.Stat(c.BasePath); !os.IsNotExist(err) {
		t.Fatalf("aborted base still present (err=%v)", err)
	}
	if s.Manifest().Generation != 1 {
		t.Fatalf("generation moved on abort: %+v", s.Manifest())
	}
	// The next window folds the same sealed prefix plus anything since.
	if err := s.Append(edge(OpInsert, 9, 10)); err != nil {
		t.Fatal(err)
	}
	man, err := s.Compact(context.Background(), writeBaseVia(OSFS(), "gen2"))
	if err != nil {
		t.Fatal(err)
	}
	if man.Horizon != 4 || man.Generation != 2 {
		t.Fatalf("post-retry manifest %+v", man)
	}
}

// TestRotationCrashMatrix crashes at every mutating filesystem operation of
// an append workload that spans several segment rotations, and asserts
// recovery keeps every acknowledged record, in order — a failed or torn
// rotation may cost nothing more than an oversized active segment.
func TestRotationCrashMatrix(t *testing.T) {
	const total = 12
	setup := func(t *testing.T) string {
		root := t.TempDir()
		base := newBaseFile(t, root, "g.adj", "gen1")
		dir := filepath.Join(root, "store")
		if err := InitStore(dir, base, segOpts(nil)); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	// Dry run to learn the op count of the full append workload.
	dry := setup(t)
	ffs := NewFaultFS(nil)
	s, _ := openStore(t, dry, segOpts(ffs))
	before := ffs.Ops()
	for i := uint32(0); i < total; i++ {
		if err := s.Append(edge(OpInsert, i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	appendOps := ffs.Ops() - before
	s.Close()
	if appendOps <= total {
		t.Fatalf("workload used only %d mutating ops — rotations not covered", appendOps)
	}

	for n := 1; n <= appendOps; n++ {
		t.Run(fmt.Sprintf("crash-at-op-%d", n), func(t *testing.T) {
			dir := setup(t)
			ffs := NewFaultFS(nil)
			s, _ := openStore(t, dir, segOpts(ffs))
			ffs.Arm(n, Crash)
			acked := 0
			for i := uint32(0); i < total; i++ {
				if err := s.Append(edge(OpInsert, i, i+1)); err != nil {
					break
				}
				acked++
			}
			if !ffs.Fired() {
				t.Fatalf("fault at op %d never fired", n)
			}
			s.Close() // simulated process death; ignore errors

			// "Reboot": reopen with a clean filesystem. Acknowledged records
			// must all be there; a record written but not yet acknowledged
			// may legitimately survive too, so the recovered stream is a
			// prefix of the sent sequence at least acked long.
			s2, got := openStore(t, dir, segOpts(nil))
			defer s2.Close()
			if len(got) < acked {
				t.Fatalf("recovered %d records < %d acknowledged", len(got), acked)
			}
			for i, r := range got {
				if r != edge(OpInsert, uint32(i), uint32(i)+1) {
					t.Fatalf("record %d recovered as %+v", i, r)
				}
			}
			if err := s2.Append(edge(OpInsert, 70, 71)); err != nil {
				t.Fatalf("post-recovery append: %v", err)
			}
		})
	}
}

// dirSnapshot captures every file's bytes for before/after comparison.
func dirSnapshot(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := make(map[string]string, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		snap[e.Name()] = string(data)
	}
	return snap
}

// TestStatStoreReadOnly pins the stat contract: correct numbers, not one
// byte written — even on stores where OpenStore would repair (stale legacy
// journal to truncate, torn tail to cut, empty journal to stamp).
func TestStatStoreReadOnly(t *testing.T) {
	// A stale legacy journal: OpenStore truncates it, stat must only skip it.
	root := t.TempDir()
	dir := legacyStore(t, root, 4)
	newBaseFile(t, dir, "base-000002.adj", "gen2")
	if err := writeManifest(OSFS(), filepath.Join(dir, manifestName),
		Manifest{Generation: 2, Base: "base-000002.adj", Horizon: 4}); err != nil {
		t.Fatal(err)
	}
	before := dirSnapshot(t, dir)
	var got []Record
	st, err := StatStore(dir, StoreOptions{}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || st.Edges != 0 {
		t.Fatalf("stat replayed %d stale records (stats %+v)", len(got), st)
	}
	if st.Manifest.Generation != 2 || st.Manifest.Horizon != 4 {
		t.Fatalf("stat manifest %+v", st.Manifest)
	}
	after := dirSnapshot(t, dir)
	if len(before) != len(after) {
		t.Fatalf("stat changed the file set: %d -> %d files", len(before), len(after))
	}
	for name, data := range before {
		if after[name] != data {
			t.Fatalf("stat modified %s", name)
		}
	}

	// A live store with a torn active tail: stat counts the tear without
	// cutting it, and still replays the clean prefix.
	root2 := t.TempDir()
	base := newBaseFile(t, root2, "g.adj", "gen1")
	dir2 := filepath.Join(root2, "store")
	if err := InitStore(dir2, base, StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	s, _ := openStore(t, dir2, StoreOptions{})
	for i := uint32(0); i < 3; i++ {
		if err := s.Append(edge(OpInsert, i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir2, segmentName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before2 := dirSnapshot(t, dir2)
	got = nil
	st2, err := StatStore(dir2, StoreOptions{}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || st2.Edges != 3 || st2.TornBytes != 3 {
		t.Fatalf("torn-tail stat: %d records, stats %+v", len(got), st2)
	}
	after2 := dirSnapshot(t, dir2)
	if after2[segmentName(1)] != before2[segmentName(1)] {
		t.Fatal("stat truncated the torn tail")
	}
}
