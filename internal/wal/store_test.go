package wal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// newBaseFile drops a placeholder base file: the store never reads base
// content, it only tracks which generation file is live.
func newBaseFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// writeBaseVia returns a compaction callback that durably writes content at
// the requested path through fs, so FaultFS injection covers the base write
// too.
func writeBaseVia(fs FS, content string) func(context.Context, string) error {
	return func(_ context.Context, path string) error {
		return writeFileAtomic(fs, path, []byte(content), 0o644)
	}
}

func openStore(t *testing.T, dir string, opts StoreOptions) (*Store, []Record) {
	t.Helper()
	var got []Record
	s, err := OpenStore(dir, opts, collect(&got))
	if err != nil {
		t.Fatalf("open store %s: %v", dir, err)
	}
	return s, got
}

func TestStoreInitOpenReplay(t *testing.T) {
	root := t.TempDir()
	base := newBaseFile(t, root, "g.adj", "gen1")
	dir := filepath.Join(root, "store")
	if err := InitStore(dir, base, StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := InitStore(dir, base, StoreOptions{}); err == nil {
		t.Fatal("double init accepted")
	}

	s, got := openStore(t, dir, StoreOptions{})
	if len(got) != 0 {
		t.Fatalf("fresh store replayed %d edge records", len(got))
	}
	man := s.Manifest()
	if man.Generation != 1 || man.Horizon != 0 {
		t.Fatalf("manifest %+v", man)
	}
	if s.BasePath() != base {
		t.Fatalf("base path %q, want %q", s.BasePath(), base)
	}
	for i := uint32(0); i < 6; i++ {
		if err := s.Append(edge(OpInsert, i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, got := openStore(t, dir, StoreOptions{})
	defer s2.Close()
	if len(got) != 6 {
		t.Fatalf("replayed %d edge records, want 6 (checkpoint filtered)", len(got))
	}
	if s2.Journal().Edges() != 6 || s2.Journal().Appended() != 7 {
		t.Fatalf("journal edges=%d appended=%d", s2.Journal().Edges(), s2.Journal().Appended())
	}
}

func TestStoreCompactFoldsAndFlips(t *testing.T) {
	root := t.TempDir()
	base := newBaseFile(t, root, "g.adj", "gen1")
	dir := filepath.Join(root, "store")
	if err := InitStore(dir, base, StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	s, _ := openStore(t, dir, StoreOptions{})
	for i := uint32(0); i < 5; i++ {
		if err := s.Append(edge(OpInsert, i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	man, err := s.Compact(context.Background(), writeBaseVia(OSFS(), "gen2"))
	if err != nil {
		t.Fatal(err)
	}
	if man.Generation != 2 || man.Horizon != 5 {
		t.Fatalf("post-compact manifest %+v", man)
	}
	if s.BasePath() != filepath.Join(dir, "base-000002.adj") {
		t.Fatalf("base path %q", s.BasePath())
	}
	if data, err := os.ReadFile(s.BasePath()); err != nil || string(data) != "gen2" {
		t.Fatalf("new base content %q err %v", data, err)
	}
	if s.Journal().Edges() != 0 || s.Journal().Appended() != 1 {
		t.Fatalf("journal after compact: edges=%d appended=%d", s.Journal().Edges(), s.Journal().Appended())
	}
	// New updates land in the new generation's journal.
	if err := s.Append(edge(OpDelete, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, got := openStore(t, dir, StoreOptions{})
	defer s2.Close()
	if len(got) != 1 || got[0] != edge(OpDelete, 0, 1) {
		t.Fatalf("replay after compact: %+v", got)
	}
	if s2.Manifest() != man {
		t.Fatalf("reopened manifest %+v, want %+v", s2.Manifest(), man)
	}
}

func TestStaleJournalDropped(t *testing.T) {
	// Simulate a crash between the manifest flip and the journal reset: the
	// journal still holds generation-1 records, but the manifest says they
	// are folded into generation 2. Recovery must drop them, not replay.
	root := t.TempDir()
	base := newBaseFile(t, root, "g.adj", "gen1")
	dir := filepath.Join(root, "store")
	if err := InitStore(dir, base, StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	s, _ := openStore(t, dir, StoreOptions{})
	for i := uint32(0); i < 4; i++ {
		if err := s.Append(edge(OpInsert, i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip the manifest by hand, leaving the journal untouched.
	newBaseFile(t, dir, "base-000002.adj", "gen2")
	if err := writeManifest(OSFS(), filepath.Join(dir, manifestName),
		Manifest{Generation: 2, Base: "base-000002.adj", Horizon: 4}); err != nil {
		t.Fatal(err)
	}

	s2, got := openStore(t, dir, StoreOptions{})
	defer s2.Close()
	if len(got) != 0 {
		t.Fatalf("stale journal replayed %d records, want 0", len(got))
	}
	if s2.Journal().Appended() != 1 || s2.Journal().Edges() != 0 {
		t.Fatalf("journal after stale drop: appended=%d edges=%d", s2.Journal().Appended(), s2.Journal().Edges())
	}
}

func TestCompactPrunesOldGenerations(t *testing.T) {
	root := t.TempDir()
	base := newBaseFile(t, root, "g.adj", "gen1")
	dir := filepath.Join(root, "store")
	if err := InitStore(dir, base, StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	s, _ := openStore(t, dir, StoreOptions{KeepGenerations: 2})
	for gen := uint64(2); gen <= 5; gen++ {
		if err := s.Append(edge(OpInsert, uint32(gen), 0)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Compact(context.Background(), writeBaseVia(OSFS(), fmt.Sprintf("gen%d", gen))); err != nil {
			t.Fatal(err)
		}
	}
	defer s.Close()
	for gen := uint64(2); gen <= 3; gen++ {
		if _, err := os.Stat(filepath.Join(dir, baseName(gen))); !os.IsNotExist(err) {
			t.Fatalf("generation %d not pruned (err=%v)", gen, err)
		}
	}
	for gen := uint64(4); gen <= 5; gen++ {
		if _, err := os.Stat(filepath.Join(dir, baseName(gen))); err != nil {
			t.Fatalf("generation %d missing from retention window: %v", gen, err)
		}
	}
	// The original out-of-dir base is never touched.
	if _, err := os.Stat(base); err != nil {
		t.Fatalf("initial base pruned: %v", err)
	}
}

// TestCompactionCrashMatrix is the acceptance property for compaction:
// crash at EVERY mutating filesystem operation the compaction performs and
// assert recovery lands on exactly the old or the new generation — the old
// one with every journaled edge intact, or the new one with the journal
// folded — never a mix, a partial file, or double-applied records.
func TestCompactionCrashMatrix(t *testing.T) {
	const edges = 5
	setup := func(t *testing.T) string {
		root := t.TempDir()
		base := newBaseFile(t, root, "g.adj", "gen1")
		dir := filepath.Join(root, "store")
		if err := InitStore(dir, base, StoreOptions{}); err != nil {
			t.Fatal(err)
		}
		s, _ := openStore(t, dir, StoreOptions{})
		for i := uint32(0); i < edges; i++ {
			if err := s.Append(edge(OpInsert, i, i+1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	// Dry run to learn how many mutating ops a full compaction performs.
	dry := setup(t)
	ffs := NewFaultFS(nil)
	s, _ := openStore(t, dry, StoreOptions{Journal: Options{FS: ffs}})
	before := ffs.Ops()
	if _, err := s.Compact(context.Background(), writeBaseVia(ffs, "gen2")); err != nil {
		t.Fatal(err)
	}
	compactOps := ffs.Ops() - before
	s.Close()
	if compactOps < 6 {
		t.Fatalf("compaction used only %d mutating ops — seam not covering it", compactOps)
	}

	for n := 1; n <= compactOps; n++ {
		t.Run(fmt.Sprintf("crash-at-op-%d", n), func(t *testing.T) {
			dir := setup(t)
			ffs := NewFaultFS(nil)
			s, _ := openStore(t, dir, StoreOptions{Journal: Options{FS: ffs}})
			ffs.Arm(n, Crash)
			_, err := s.Compact(context.Background(), writeBaseVia(ffs, "gen2"))
			if !ffs.Fired() {
				t.Fatalf("fault at op %d never fired", n)
			}
			if err == nil {
				// The crash can hit pruning/cleanup after the commit point;
				// then Compact legitimately succeeds.
				t.Log("crash landed after the commit point; compaction reported success")
			}
			s.Close() // simulated process death; ignore errors

			// "Reboot": reopen with a clean filesystem.
			s2, got := openStore(t, dir, StoreOptions{})
			defer s2.Close()
			man := s2.Manifest()
			switch man.Generation {
			case 1:
				// Old generation: every acknowledged edge must replay.
				if len(got) != edges {
					t.Fatalf("old generation recovered %d/%d edges", len(got), edges)
				}
				if filepath.Base(s2.BasePath()) != "g.adj" {
					t.Fatalf("old generation points at %q", s2.BasePath())
				}
			case 2:
				// New generation: journal folded (or dropped as stale), base
				// complete.
				if len(got) != 0 {
					t.Fatalf("new generation replayed %d stale edges", len(got))
				}
				if man.Horizon != edges {
					t.Fatalf("new generation horizon %d, want %d", man.Horizon, edges)
				}
				data, err := os.ReadFile(s2.BasePath())
				if err != nil || string(data) != "gen2" {
					t.Fatalf("new base unreadable: %q, %v", data, err)
				}
			default:
				t.Fatalf("impossible generation %d", man.Generation)
			}
			// Whichever generation survived, the store takes updates again.
			if err := s2.Append(edge(OpInsert, 70, 71)); err != nil {
				t.Fatalf("post-recovery append: %v", err)
			}
		})
	}
}

func TestCompactWriteBaseErrorLeavesStoreUsable(t *testing.T) {
	root := t.TempDir()
	base := newBaseFile(t, root, "g.adj", "gen1")
	dir := filepath.Join(root, "store")
	if err := InitStore(dir, base, StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	s, _ := openStore(t, dir, StoreOptions{})
	defer s.Close()
	if err := s.Append(edge(OpInsert, 1, 2)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("materialize failed")
	if _, err := s.Compact(context.Background(), func(context.Context, string) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("compact error %v, want %v", err, boom)
	}
	// Failure before the manifest flip leaves everything intact and live.
	if s.Manifest().Generation != 1 {
		t.Fatalf("generation moved to %d on failed compact", s.Manifest().Generation)
	}
	if err := s.Append(edge(OpInsert, 3, 4)); err != nil {
		t.Fatalf("append after failed compact: %v", err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Compact(canceled, writeBaseVia(OSFS(), "x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled compact: %v", err)
	}
}

func TestManifestCorruptionDetected(t *testing.T) {
	root := t.TempDir()
	base := newBaseFile(t, root, "g.adj", "gen1")
	dir := filepath.Join(root, "store")
	if err := InitStore(dir, base, StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, StoreOptions{}, nil); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}
