package wal

import (
	"errors"
	"os"
	"sync"
)

// ErrInjected is the error FaultFS returns from an operation it was armed
// to fail.
var ErrInjected = errors.New("wal: injected fault")

// ErrCrashed is the error FaultFS returns from every operation after an
// injected crash: the simulated process is dead, only a fresh FS (a
// "reboot") can touch the files again.
var ErrCrashed = errors.New("wal: filesystem crashed (injected)")

// FaultMode selects what happens at the armed operation.
type FaultMode int

const (
	// FailOp returns ErrInjected without performing the operation; later
	// operations proceed normally (a transient I/O error).
	FailOp FaultMode = iota
	// ShortWrite applies only to writes: half the bytes reach the file,
	// then ErrInjected; later operations proceed normally.
	ShortWrite
	// Crash performs a short write (when the operation is a write), then
	// fails this and every subsequent operation with ErrCrashed — the
	// simulated kill -9. Re-wrap the real FS to "reboot".
	Crash
)

// FaultFS wraps an FS and injects a fault at the Nth mutating operation —
// the seam the crash-recovery tests drive. Mutating operations (counted in
// order): File.Write, File.Sync, File.Truncate, OpenFile with O_CREATE or
// O_TRUNC, Rename, Remove, MkdirAll, SyncDir. Reads, Stat, ReadDir, Seek,
// and plain opens are passed through uncounted, so arming "op N" is
// deterministic for a deterministic workload.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	ops     int
	armAt   int // fault fires when ops reaches this count; 0 = disarmed
	mode    FaultMode
	crashed bool
	fired   bool
}

// NewFaultFS wraps inner (nil for the OS filesystem).
func NewFaultFS(inner FS) *FaultFS { return &FaultFS{inner: fsOrOS(inner)} }

// Arm schedules a fault at the nth (1-based) mutating operation from now.
func (f *FaultFS) Arm(n int, mode FaultMode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armAt = f.ops + n
	f.mode = mode
	f.fired = false
}

// Ops returns how many mutating operations have been performed — run the
// workload once unarmed to learn the op count, then iterate Arm(1..N).
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Fired reports whether the armed fault has triggered.
func (f *FaultFS) Fired() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// step accounts one mutating operation. It returns (mode, true) when the
// fault fires on this operation, and an ErrCrashed error when the
// filesystem is already dead.
func (f *FaultFS) step() (FaultMode, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, false, ErrCrashed
	}
	f.ops++
	if f.armAt != 0 && f.ops == f.armAt {
		f.fired = true
		if f.mode == Crash {
			f.crashed = true
		}
		return f.mode, true, nil
	}
	return 0, false, nil
}

func (f *FaultFS) dead() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if flag&(os.O_CREATE|os.O_TRUNC) != 0 {
		mode, fire, err := f.step()
		if err != nil {
			return nil, err
		}
		if fire {
			if mode == Crash {
				return nil, ErrCrashed
			}
			return nil, ErrInjected
		}
		_ = mode
	} else if err := f.dead(); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.mutate(); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.mutate(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) MkdirAll(name string, perm os.FileMode) error {
	if err := f.mutate(); err != nil {
		return err
	}
	return f.inner.MkdirAll(name, perm)
}

func (f *FaultFS) SyncDir(name string) error {
	if err := f.mutate(); err != nil {
		return err
	}
	return f.inner.SyncDir(name)
}

func (f *FaultFS) Stat(name string) (os.FileInfo, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

// mutate is the shared counted path for non-write mutating operations.
func (f *FaultFS) mutate() error {
	mode, fire, err := f.step()
	if err != nil {
		return err
	}
	if !fire {
		return nil
	}
	if mode == Crash {
		return ErrCrashed
	}
	return ErrInjected // FailOp and ShortWrite degenerate to a plain failure
}

type faultFile struct {
	fs *FaultFS
	f  File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	mode, fire, err := ff.fs.step()
	if err != nil {
		return 0, err
	}
	if !fire {
		return ff.f.Write(p)
	}
	switch mode {
	case ShortWrite, Crash:
		n, _ := ff.f.Write(p[:len(p)/2])
		if mode == Crash {
			return n, ErrCrashed
		}
		return n, ErrInjected
	default:
		return 0, ErrInjected
	}
}

func (ff *faultFile) Sync() error {
	mode, fire, err := ff.fs.step()
	if err != nil {
		return err
	}
	if !fire {
		return ff.f.Sync()
	}
	if mode == Crash {
		return ErrCrashed
	}
	return ErrInjected
}

func (ff *faultFile) Truncate(size int64) error {
	mode, fire, err := ff.fs.step()
	if err != nil {
		return err
	}
	if !fire {
		return ff.f.Truncate(size)
	}
	if mode == Crash {
		return ErrCrashed
	}
	return ErrInjected
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := ff.fs.dead(); err != nil {
		return 0, err
	}
	return ff.f.ReadAt(p, off)
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	if err := ff.fs.dead(); err != nil {
		return 0, err
	}
	return ff.f.Seek(offset, whence)
}

func (ff *faultFile) Close() error {
	// Closing is not counted: a dying process's descriptors close anyway.
	return ff.f.Close()
}
