package wal

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Manifest names the current generation of a Store: which base adjacency
// file is live and how much journal history has been folded into it. It is
// rewritten with the temp + fsync + atomic-rename discipline, so on disk it
// is always one complete generation — the flip from generation g to g+1 is
// the rename, and readers see old or new, never a mix.
type Manifest struct {
	// Generation counts compactions, starting at 1 for the initial base.
	Generation uint64 `json:"generation"`
	// Base is the generation's adjacency file. Relative paths are relative
	// to the store directory (compacted generations always live there);
	// generation 1 may point outside it, at the file the store was
	// initialized from.
	Base string `json:"base"`
	// Horizon is the cumulative count of edge records folded into Base by
	// compactions — a monotone logical clock over the update stream.
	Horizon uint64 `json:"horizon"`
	// FoldedSegment is the highest journal segment sequence folded into
	// Base: recovery replays exactly the segments after it. 0 (also the
	// value decoded from pre-segment manifests) means no segment has been
	// folded. The field advances in the same atomic manifest flip as
	// Generation, which is what makes compaction safe to run while the
	// active segment keeps accepting appends — there is no window where the
	// generation and the fold watermark disagree.
	FoldedSegment uint64 `json:"folded_segment,omitempty"`
}

const (
	manifestName = "MANIFEST"
	// journalName is the pre-segmentation single-file journal. Stores laid
	// out by older versions keep opening: the file is read as segment 1 and
	// scrolls out of existence at the first compaction.
	journalName = "journal.wal"

	// DefaultSegmentSize is the rotation threshold when StoreOptions leaves
	// SegmentSize at 0: once the active segment reaches it, the segment is
	// sealed and a successor opened, so no single compaction ever has to
	// fold an unbounded file.
	DefaultSegmentSize = 16 << 20
)

// StoreOptions configures OpenStore/InitStore.
type StoreOptions struct {
	// Journal carries the group-commit knobs and the FS seam (shared by the
	// manifest writer and compactor).
	Journal Options
	// KeepGenerations is how many base generations to retain inside the
	// store directory after a compaction (the current one included).
	// Older generation files are removed; the initial base, if it lives
	// outside the directory, is never touched. ≤ 0 means 2 (current +
	// previous).
	KeepGenerations int
	// SegmentSize is the journal rotation threshold in bytes: an append
	// that grows the active segment to it or beyond seals the segment
	// (fsync) and opens a successor. 0 selects DefaultSegmentSize; negative
	// disables size-triggered rotation (compaction still rotates once).
	SegmentSize int64
}

func (o StoreOptions) withDefaults() StoreOptions {
	o.Journal = o.Journal.withDefaults()
	if o.KeepGenerations <= 0 {
		o.KeepGenerations = 2
	}
	if o.SegmentSize == 0 {
		o.SegmentSize = DefaultSegmentSize
	}
	return o
}

// Store ties a manifest, a base adjacency file, and a segmented journal
// into one durable home for a dynamic graph. The journal is a sequence of
// numbered segments: sealed segments are immutable (fsynced through their
// last byte) and only the highest-numbered segment takes appends. Methods
// are safe for concurrent use; in particular Append keeps working while a
// BeginCompact/CommitCompact window folds the sealed segments.
type Store struct {
	dir  string
	fs   FS
	opts StoreOptions

	mu         sync.Mutex
	man        Manifest
	sealed     []segmentInfo // unfolded sealed segments, ascending sequence
	active     *Journal
	activeSeq  uint64
	compacting bool
	torn       int64 // torn bytes discarded across all segments during open
}

// segmentInfo is the replay-time accounting for one sealed segment.
type segmentInfo struct {
	seq     uint64
	path    string
	records uint64 // all records, head checkpoint included
	edges   uint64 // edge (non-checkpoint) records
	bytes   int64
}

// segFile is one discovered on-disk segment.
type segFile struct {
	seq    uint64
	path   string
	legacy bool // the pre-segmentation journal.wal, read as sequence 1
}

// InitStore creates a store in dir (made if absent) whose generation-1 base
// is the adjacency file at base, with an empty journal segment. It fails if
// dir already holds a manifest.
func InitStore(dir, base string, opts StoreOptions) error {
	opts = opts.withDefaults()
	fs := opts.Journal.FS
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: init %s: %w", dir, err)
	}
	mpath := filepath.Join(dir, manifestName)
	if _, err := fs.Stat(mpath); err == nil {
		return fmt.Errorf("wal: init %s: already a store (manifest exists)", dir)
	}
	if _, err := fs.Stat(base); err != nil {
		return fmt.Errorf("wal: init %s: base %s: %w", dir, base, err)
	}
	// The manifest records bases inside the store dir relative to it (so
	// the store directory is relocatable); anything outside must be made
	// absolute, because readers resolve relative manifest paths against
	// dir, not against whatever the init-time working directory was.
	man := Manifest{Generation: 1, Base: base, Horizon: 0}
	if rel, err := filepath.Rel(dir, base); err == nil && !strings.HasPrefix(rel, "..") {
		man.Base = rel
	} else if abs, err := filepath.Abs(base); err == nil {
		man.Base = abs
	}
	if err := writeManifest(fs, mpath, man); err != nil {
		return err
	}
	j, err := Open(filepath.Join(dir, segmentName(1)), opts.Journal, nil)
	if err != nil {
		return err
	}
	if err := j.Reset(Record{Op: OpCheckpoint, Gen: 1}); err != nil {
		j.Close()
		return err
	}
	return j.Close()
}

// ReadManifest reads a store directory's manifest without opening it. fs
// nil uses the OS.
func ReadManifest(dir string, fs FS) (Manifest, error) {
	fs = fsOrOS(fs)
	data, err := readFile(fs, filepath.Join(dir, manifestName))
	if err != nil {
		return Manifest{}, fmt.Errorf("wal: %s: read manifest: %w", dir, err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return Manifest{}, fmt.Errorf("wal: %s: parse manifest: %w", dir, err)
	}
	if man.Generation == 0 || man.Base == "" {
		return Manifest{}, fmt.Errorf("wal: %s: manifest missing generation or base", dir)
	}
	return man, nil
}

func writeManifest(fs FS, path string, man Manifest) error {
	data, err := json.Marshal(man)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(fs, path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("wal: write manifest: %w", err)
	}
	return nil
}

// OpenStore opens the store in dir, recovering from any crash state:
// leftover temp files and never-flipped bases are pruned, segments at or
// below the manifest's fold watermark (crash between manifest flip and
// segment removal) are deleted, a legacy journal belonging to an older
// generation is dropped, and a torn tail of the active segment is
// truncated. Every intact edge record after the fold watermark is replayed
// through apply in append order — sealed segments first, then the active
// one. apply may be nil to skip replay delivery.
func OpenStore(dir string, opts StoreOptions, apply func(Record) error) (*Store, error) {
	opts = opts.withDefaults()
	fs := opts.Journal.FS
	man, err := ReadManifest(dir, fs)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, fs: fs, opts: opts, man: man}
	s.pruneLeftovers()

	segs, err := discoverSegments(fs, dir)
	if err != nil {
		return nil, err
	}
	live := segs[:0]
	for _, sf := range segs {
		if sf.seq <= man.FoldedSegment {
			// Folded into the base by a compaction whose cleanup a crash
			// interrupted: already counted in Horizon, remove.
			s.fs.Remove(sf.path)
			continue
		}
		live = append(live, sf)
	}
	if len(live) > 0 && live[0].legacy {
		// Pre-segmentation stores have no fold watermark; a crash between
		// their manifest flip and journal reset is detected by the head
		// checkpoint's generation instead.
		if err := s.dropStaleJournal(live[0].path); err != nil {
			return nil, err
		}
	}
	emit := func(r Record) error {
		if r.Op == OpCheckpoint {
			return nil
		}
		if apply != nil {
			return apply(r)
		}
		return nil
	}
	var activePath string
	var activeSeq uint64
	if len(live) == 0 {
		activeSeq = man.FoldedSegment + 1
		activePath = filepath.Join(dir, segmentName(activeSeq))
	} else {
		for _, sf := range live[:len(live)-1] {
			info, err := replaySealed(fs, sf, emit)
			if err != nil {
				return nil, err
			}
			s.sealed = append(s.sealed, info)
		}
		last := live[len(live)-1]
		activeSeq, activePath = last.seq, last.path
	}
	j, err := Open(activePath, opts.Journal, emit)
	if err != nil {
		return nil, err
	}
	s.active, s.activeSeq = j, activeSeq
	s.torn += j.TornBytes()
	if j.Appended() == 0 {
		// Fresh or fully-torn active segment: stamp the head checkpoint
		// with the generation and the cumulative horizon at this segment's
		// start, so the next open can place it.
		if err := j.Reset(Record{Op: OpCheckpoint, Gen: man.Generation, Horizon: s.horizonAtActive()}); err != nil {
			j.Close()
			return nil, err
		}
	}
	return s, nil
}

// horizonAtActive is the logical clock at the start of the active segment:
// records folded into the base plus edge records in the unfolded sealed
// prefix. Called with s.mu held (or before the store is shared).
func (s *Store) horizonAtActive() uint64 {
	h := s.man.Horizon
	for _, seg := range s.sealed {
		h += seg.edges
	}
	return h
}

// replaySegment decodes one segment file through emit without mutating it,
// reporting how many trailing bytes fail to decode as a complete record.
// The caller decides whether a torn tail is a crash artifact (final, active
// segment) or damage (sealed segments are fsynced through their last byte
// before a successor exists, so any tear there is a *CorruptError).
func replaySegment(fs FS, sf segFile, emit func(Record) error) (segmentInfo, int64, error) {
	info := segmentInfo{seq: sf.seq, path: sf.path}
	st, err := fs.Stat(sf.path)
	if err != nil {
		return info, 0, fmt.Errorf("wal: stat segment %s: %w", sf.path, err)
	}
	f, err := fs.OpenFile(sf.path, os.O_RDONLY, 0)
	if err != nil {
		return info, 0, fmt.Errorf("wal: open segment %s: %w", sf.path, err)
	}
	defer f.Close()
	size := st.Size()
	clean, err := DecodeStream(&sectionReader{f: f, size: size}, size, func(r Record) error {
		info.records++
		if r.Op != OpCheckpoint {
			info.edges++
		}
		return emit(r)
	})
	if err != nil {
		if ce, ok := err.(*CorruptError); ok {
			ce.Path = sf.path
		}
		return info, 0, err
	}
	info.bytes = clean
	return info, size - clean, nil
}

func replaySealed(fs FS, sf segFile, emit func(Record) error) (segmentInfo, error) {
	info, torn, err := replaySegment(fs, sf, emit)
	if err != nil {
		return info, err
	}
	if torn > 0 {
		return info, &CorruptError{Path: sf.path, Offset: info.bytes, Reason: "torn tail in a sealed segment"}
	}
	return info, nil
}

// dropStaleJournal peeks at a legacy journal's head record; if it is a
// checkpoint for an older generation than the manifest, the whole journal
// is already folded into the base (the crash hit between a pre-segmentation
// manifest flip and journal reset) and is truncated to empty. Torn or
// missing heads are left for Open's normal recovery.
func (s *Store) dropStaleJournal(jpath string) error {
	head, err := peekHead(s.fs, jpath)
	if err != nil || head == nil {
		return err
	}
	if head.Op != OpCheckpoint || head.Gen >= s.man.Generation {
		return nil
	}
	f, err := s.fs.OpenFile(jpath, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("wal: open journal %s: %w", jpath, err)
	}
	defer f.Close()
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("wal: drop stale journal %s: %w", jpath, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: drop stale journal %s: %w", jpath, err)
	}
	return nil
}

// peekHead reads a journal's first record without mutating the file. A
// missing, empty, torn, or corrupt head returns (nil, nil) — the caller's
// normal open path classifies it.
func peekHead(fs FS, path string) (*Record, error) {
	info, err := fs.Stat(path)
	if err != nil || info.Size() == 0 {
		return nil, nil
	}
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("wal: open journal %s: %w", path, err)
	}
	defer f.Close()
	var head *Record
	_, derr := DecodeStream(&sectionReader{f: f, size: info.Size()}, info.Size(), func(r Record) error {
		head = &r
		return errStopPeek
	})
	if derr != nil && derr != errStopPeek {
		return nil, nil
	}
	return head, nil
}

var errStopPeek = errors.New("wal: stop peek")

// discoverSegments lists the journal segments in dir, ascending by
// sequence. The legacy single-file journal.wal reads as sequence 1.
func discoverSegments(fs FS, dir string) ([]segFile, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %s: list segments: %w", dir, err)
	}
	var segs []segFile
	for _, e := range entries {
		name := e.Name()
		if name == journalName {
			segs = append(segs, segFile{seq: 1, path: filepath.Join(dir, name), legacy: true})
			continue
		}
		if seq, ok := parseSegmentName(name); ok {
			segs = append(segs, segFile{seq: seq, path: filepath.Join(dir, name)})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	for i := 1; i < len(segs); i++ {
		if segs[i].seq == segs[i-1].seq {
			return nil, fmt.Errorf("wal: %s: duplicate journal segment %d (%s and %s)",
				dir, segs[i].seq, filepath.Base(segs[i-1].path), filepath.Base(segs[i].path))
		}
	}
	return segs, nil
}

// pruneLeftovers removes temp files and base generations that a crashed
// compaction may have left: bases newer than the manifest (written but
// never flipped to) and bases older than the retention window. Called with
// s.mu held or before the store is shared.
func (s *Store) pruneLeftovers() {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	keepFloor := uint64(1)
	if g := s.man.Generation; g > uint64(s.opts.KeepGenerations-1) {
		keepFloor = g - uint64(s.opts.KeepGenerations-1)
	}
	current := filepath.Base(s.man.Base)
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			s.fs.Remove(filepath.Join(s.dir, name))
			continue
		}
		gen, ok := parseBaseName(name)
		if !ok || name == current {
			continue
		}
		if gen > s.man.Generation || gen < keepFloor {
			s.fs.Remove(filepath.Join(s.dir, name))
		}
	}
}

func baseName(gen uint64) string { return fmt.Sprintf("base-%06d.adj", gen) }

func parseBaseName(name string) (uint64, bool) {
	var gen uint64
	if _, err := fmt.Sscanf(name, "base-%06d.adj", &gen); err != nil {
		return 0, false
	}
	if name != baseName(gen) {
		return 0, false
	}
	return gen, true
}

func segmentName(seq uint64) string { return fmt.Sprintf("journal-%06d.wal", seq) }

func parseSegmentName(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "journal-%06d.wal", &seq); err != nil {
		return 0, false
	}
	if name != segmentName(seq) {
		return 0, false
	}
	return seq, true
}

// Manifest returns the current manifest.
func (s *Store) Manifest() Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// BasePath returns the current generation's adjacency file path, resolved
// against the store directory when relative.
func (s *Store) BasePath() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.basePathLocked()
}

func (s *Store) basePathLocked() string {
	if filepath.IsAbs(s.man.Base) {
		return s.man.Base
	}
	return filepath.Join(s.dir, s.man.Base)
}

// Journal returns the active segment's journal for durability queries.
// Counters cover the active segment only; Stats aggregates all live
// segments.
func (s *Store) Journal() *Journal {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Err returns the active journal's sticky error: non-nil once a write or
// fsync — including a background SyncInterval commit — has failed, meaning
// acknowledged-but-volatile records may be lost. See Journal.Err.
func (s *Store) Err() error {
	s.mu.Lock()
	j := s.active
	s.mu.Unlock()
	return j.Err()
}

// Sync forces group commit on the active segment.
func (s *Store) Sync() error {
	s.mu.Lock()
	j := s.active
	s.mu.Unlock()
	return j.Sync()
}

// Append journals one record in the active segment (see Journal.Append for
// durability semantics) and rotates the segment once it reaches the size
// threshold: the old segment is sealed with an fsync and a successor opens
// with a head checkpoint carrying the generation and cumulative horizon. A
// failed rotation never fails the append (the record is already durable per
// policy); it is retried on the next append and surfaced by BeginCompact.
func (s *Store) Append(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.active.Append(r); err != nil {
		return err
	}
	if s.opts.SegmentSize > 0 && s.active.Size() >= s.opts.SegmentSize {
		s.rotateLocked()
	}
	return nil
}

// rotateLocked seals the active segment and opens its successor. Order
// matters for crash safety: the seal fsync lands before the successor file
// exists, so recovery can treat a torn tail in any non-final segment as
// damage rather than a crash artifact. On failure the current active
// segment stays active (possibly oversized); nothing is lost.
func (s *Store) rotateLocked() error {
	if err := s.active.Sync(); err != nil {
		return err
	}
	nextSeq := s.activeSeq + 1
	path := filepath.Join(s.dir, segmentName(nextSeq))
	cp := Record{Op: OpCheckpoint, Gen: s.man.Generation, Horizon: s.horizonAtActive() + s.active.Edges()}
	next, err := Open(path, s.opts.Journal, nil)
	if err != nil {
		return err
	}
	if err := next.Reset(cp); err != nil {
		next.Close()
		s.fs.Remove(path)
		return err
	}
	old := s.active
	info := segmentInfo{seq: s.activeSeq, path: old.Path(), records: old.Appended(), edges: old.Edges(), bytes: old.Size()}
	if err := old.Close(); err != nil {
		next.Close()
		s.fs.Remove(path)
		return err
	}
	s.sealed = append(s.sealed, info)
	s.active, s.activeSeq = next, nextSeq
	return nil
}

// Compaction is an open BeginCompact window: the sealed-segment prefix
// being folded and where the new generation's base must be written.
type Compaction struct {
	// Gen is the generation the compaction will flip to.
	Gen uint64
	// BasePath is where the caller must durably and atomically write the
	// new base (Materialize's temp + fsync + rename does).
	BasePath string

	foldSeq   uint64 // highest sealed sequence included in the fold
	foldEdges uint64 // edge records across the folded segments
}

// FoldedEdges returns the number of edge records the compaction folds.
func (c *Compaction) FoldedEdges() uint64 { return c.foldEdges }

// BeginCompact opens a compaction window: the active segment is rotated so
// everything journaled so far sits in sealed segments, and those segments
// become the fold set. Appends keep landing in the fresh active segment
// while the caller materializes the new base at Compaction.BasePath;
// finish with CommitCompact or AbortCompact. Only one window may be open.
func (s *Store) BeginCompact() (*Compaction, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.compacting {
		return nil, fmt.Errorf("wal: %s: compaction already in flight", s.dir)
	}
	if err := s.active.Err(); err != nil {
		return nil, err
	}
	if err := s.rotateLocked(); err != nil {
		return nil, fmt.Errorf("wal: compact: seal active segment: %w", err)
	}
	c := &Compaction{Gen: s.man.Generation + 1}
	c.BasePath = filepath.Join(s.dir, baseName(c.Gen))
	for _, seg := range s.sealed {
		c.foldSeq = seg.seq
		c.foldEdges += seg.edges
	}
	s.compacting = true
	return c, nil
}

// CommitCompact flips the manifest to the compaction's generation — one
// atomic rename advances Generation, Horizon, and the FoldedSegment
// watermark together — then removes the folded segment files. A crash
// between flip and removal is recovered by OpenStore via the watermark. On
// a flip error the active journal is poisoned: the flip may or may not
// have hit the disk, so further appends could be silently dropped as
// already-folded on the next open and must not be acknowledged; the
// on-disk state remains recoverable — reopen the store to resume.
func (s *Store) CommitCompact(c *Compaction) (Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.compacting {
		return s.man, fmt.Errorf("wal: %s: CommitCompact without BeginCompact", s.dir)
	}
	s.compacting = false
	man := Manifest{Generation: c.Gen, Base: baseName(c.Gen), Horizon: s.man.Horizon + c.foldEdges, FoldedSegment: c.foldSeq}
	if err := writeManifest(s.fs, filepath.Join(s.dir, manifestName), man); err != nil {
		s.active.mu.Lock()
		s.active.fail(fmt.Errorf("wal: compact: manifest flip failed: %w", err))
		s.active.mu.Unlock()
		return s.man, err
	}
	s.man = man
	keep := s.sealed[:0]
	for _, seg := range s.sealed {
		if seg.seq <= c.foldSeq {
			s.fs.Remove(seg.path)
			continue
		}
		keep = append(keep, seg)
	}
	s.sealed = keep
	// Retention: drop generation files that have scrolled out of the window
	// (pruneLeftovers only ever touches base-NNNNNN.adj files inside dir).
	s.pruneLeftovers()
	return man, nil
}

// AbortCompact closes the compaction window without flipping: the sealed
// segments stay unfolded (the next compaction folds them) and the
// partially-written base, if any, is removed.
func (s *Store) AbortCompact(c *Compaction) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compacting = false
	s.fs.Remove(c.BasePath)
}

// Compact folds the journal into a fresh base generation in one call: seal
// (BeginCompact), write the new base through writeBase, flip
// (CommitCompact). Appends proceed throughout — they land in the active
// segment the seal opened and survive the flip as the unfolded suffix.
// Readers holding the old base keep scanning it untouched; a crash at any
// step leaves a state OpenStore recovers to either the old generation
// (watermark not flipped, all segments replay) or the new one (flipped,
// folded segments dropped), whole.
func (s *Store) Compact(ctx context.Context, writeBase func(ctx context.Context, path string) error) (Manifest, error) {
	if err := ctx.Err(); err != nil {
		return s.Manifest(), err
	}
	c, err := s.BeginCompact()
	if err != nil {
		return s.Manifest(), err
	}
	if err := writeBase(ctx, c.BasePath); err != nil {
		s.AbortCompact(c)
		return s.Manifest(), fmt.Errorf("wal: compact: write generation %d base: %w", c.Gen, err)
	}
	return s.CommitCompact(c)
}

// StoreStats aggregates the live (unfolded) journal state across every
// segment, sealed and active.
type StoreStats struct {
	Manifest      Manifest
	Segments      int    // live segment files, active included
	ActiveSegment uint64 // sequence number of the segment taking appends
	Records       uint64 // records across live segments (checkpoints included)
	Durable       uint64 // records covered by a completed fsync
	Edges         uint64 // edge records awaiting compaction
	Bytes         int64  // bytes across live segments
	TornBytes     int64  // torn tail discarded during open, if any
}

// Stats returns the aggregated journal state. Sealed segments are durable
// in full by construction (the rotation fsync covers them).
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		Manifest:      s.man,
		Segments:      len(s.sealed) + 1,
		ActiveSegment: s.activeSeq,
		TornBytes:     s.torn,
	}
	for _, seg := range s.sealed {
		st.Records += seg.records
		st.Durable += seg.records
		st.Edges += seg.edges
		st.Bytes += seg.bytes
	}
	st.Records += s.active.Appended()
	st.Durable += s.active.Durable()
	st.Edges += s.active.Edges()
	st.Bytes += s.active.Size()
	return st
}

// StatStore inspects the store in dir read-only: no checkpoint stamping,
// no torn-tail truncation, no leftover cleanup — a stat must never write.
// Live (unfolded) records are streamed through apply in replay order when
// apply is non-nil; a torn tail on the final segment is only counted.
// Damage earlier surfaces as a *CorruptError exactly as OpenStore would
// report it.
func StatStore(dir string, opts StoreOptions, apply func(Record) error) (StoreStats, error) {
	opts = opts.withDefaults()
	fs := opts.Journal.FS
	man, err := ReadManifest(dir, fs)
	if err != nil {
		return StoreStats{}, err
	}
	segs, err := discoverSegments(fs, dir)
	if err != nil {
		return StoreStats{}, err
	}
	live := segs[:0]
	for _, sf := range segs {
		if sf.seq <= man.FoldedSegment {
			continue // folded leftovers: already counted in Horizon
		}
		live = append(live, sf)
	}
	if len(live) > 0 && live[0].legacy {
		if head, err := peekHead(fs, live[0].path); err != nil {
			return StoreStats{}, err
		} else if head != nil && head.Op == OpCheckpoint && head.Gen < man.Generation {
			live = live[1:] // stale legacy journal: would be dropped on open
		}
	}
	st := StoreStats{Manifest: man, Segments: len(live)}
	emit := func(r Record) error {
		if r.Op == OpCheckpoint || apply == nil {
			return nil
		}
		return apply(r)
	}
	for i, sf := range live {
		st.ActiveSegment = sf.seq
		info, torn, err := replaySegment(fs, sf, emit)
		if err != nil {
			return StoreStats{}, err
		}
		if torn > 0 {
			if i != len(live)-1 {
				return StoreStats{}, &CorruptError{Path: sf.path, Offset: info.bytes, Reason: "torn tail in a sealed segment"}
			}
			// Torn tail on the final segment: what recovery would truncate.
			st.TornBytes += torn
		}
		st.Records += info.records
		st.Edges += info.edges
		st.Bytes += info.bytes
	}
	if len(live) == 0 {
		st.Segments = 1
		st.ActiveSegment = man.FoldedSegment + 1
	}
	st.Durable = st.Records
	return st, nil
}

// Close closes the active journal (sealed segments hold no descriptors).
func (s *Store) Close() error {
	s.mu.Lock()
	j := s.active
	s.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.Close()
}
