package wal

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Manifest names the current generation of a Store: which base adjacency
// file is live and how much journal history has been folded into it. It is
// rewritten with the temp + fsync + atomic-rename discipline, so on disk it
// is always one complete generation — the flip from generation g to g+1 is
// the rename, and readers see old or new, never a mix.
type Manifest struct {
	// Generation counts compactions, starting at 1 for the initial base.
	Generation uint64 `json:"generation"`
	// Base is the generation's adjacency file. Relative paths are relative
	// to the store directory (compacted generations always live there);
	// generation 1 may point outside it, at the file the store was
	// initialized from.
	Base string `json:"base"`
	// Horizon is the cumulative count of edge records folded into Base by
	// compactions — a monotone logical clock over the update stream.
	Horizon uint64 `json:"horizon"`
}

const (
	manifestName = "MANIFEST"
	journalName  = "journal.wal"
)

// StoreOptions configures OpenStore/InitStore.
type StoreOptions struct {
	// Journal carries the group-commit knobs and the FS seam (shared by the
	// manifest writer and compactor).
	Journal Options
	// KeepGenerations is how many base generations to retain inside the
	// store directory after a compaction (the current one included).
	// Older generation files are removed; the initial base, if it lives
	// outside the directory, is never touched. ≤ 0 means 2 (current +
	// previous).
	KeepGenerations int
}

func (o StoreOptions) withDefaults() StoreOptions {
	o.Journal = o.Journal.withDefaults()
	if o.KeepGenerations <= 0 {
		o.KeepGenerations = 2
	}
	return o
}

// Store ties a manifest, a base adjacency file, and the journal into one
// durable home for a dynamic graph. Methods are not safe for concurrent use
// (the journal itself is; callers serialize Compact against appends).
type Store struct {
	dir  string
	fs   FS
	opts StoreOptions
	man  Manifest
	j    *Journal
}

// errStaleJournal aborts replay when the journal's head checkpoint belongs
// to an older generation than the manifest: its records are already folded
// into the base, so replaying them would double-apply.
var errStaleJournal = errors.New("wal: journal is stale (older generation than manifest)")

// InitStore creates a store in dir (made if absent) whose generation-1 base
// is the adjacency file at base, with an empty journal. It fails if dir
// already holds a manifest.
func InitStore(dir, base string, opts StoreOptions) error {
	opts = opts.withDefaults()
	fs := opts.Journal.FS
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: init %s: %w", dir, err)
	}
	mpath := filepath.Join(dir, manifestName)
	if _, err := fs.Stat(mpath); err == nil {
		return fmt.Errorf("wal: init %s: already a store (manifest exists)", dir)
	}
	if _, err := fs.Stat(base); err != nil {
		return fmt.Errorf("wal: init %s: base %s: %w", dir, base, err)
	}
	// The manifest records bases inside the store dir relative to it (so
	// the store directory is relocatable); anything outside must be made
	// absolute, because readers resolve relative manifest paths against
	// dir, not against whatever the init-time working directory was.
	man := Manifest{Generation: 1, Base: base, Horizon: 0}
	if rel, err := filepath.Rel(dir, base); err == nil && !strings.HasPrefix(rel, "..") {
		man.Base = rel
	} else if abs, err := filepath.Abs(base); err == nil {
		man.Base = abs
	}
	if err := writeManifest(fs, mpath, man); err != nil {
		return err
	}
	j, err := Open(filepath.Join(dir, journalName), opts.Journal, nil)
	if err != nil {
		return err
	}
	if err := j.Reset(Record{Op: OpCheckpoint, Gen: 1}); err != nil {
		j.Close()
		return err
	}
	return j.Close()
}

// ReadManifest reads a store directory's manifest without opening it. fs
// nil uses the OS.
func ReadManifest(dir string, fs FS) (Manifest, error) {
	fs = fsOrOS(fs)
	data, err := readFile(fs, filepath.Join(dir, manifestName))
	if err != nil {
		return Manifest{}, fmt.Errorf("wal: %s: read manifest: %w", dir, err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return Manifest{}, fmt.Errorf("wal: %s: parse manifest: %w", dir, err)
	}
	if man.Generation == 0 || man.Base == "" {
		return Manifest{}, fmt.Errorf("wal: %s: manifest missing generation or base", dir)
	}
	return man, nil
}

func writeManifest(fs FS, path string, man Manifest) error {
	data, err := json.Marshal(man)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(fs, path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("wal: write manifest: %w", err)
	}
	return nil
}

// OpenStore opens the store in dir, recovering from any crash state:
// leftover temp files are pruned, a journal belonging to an older
// generation (crash between manifest flip and journal reset) is dropped,
// and a torn journal tail is truncated. Every intact edge record of the
// current generation is replayed through apply in append order. apply may
// be nil to skip replay delivery (stat-style opens).
func OpenStore(dir string, opts StoreOptions, apply func(Record) error) (*Store, error) {
	opts = opts.withDefaults()
	fs := opts.Journal.FS
	man, err := ReadManifest(dir, fs)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, fs: fs, opts: opts, man: man}
	s.pruneLeftovers()

	jpath := filepath.Join(dir, journalName)
	if err := s.dropStaleJournal(jpath); err != nil {
		return nil, err
	}
	guard := func(r Record) error {
		if r.Op == OpCheckpoint {
			if r.Gen != man.Generation {
				return errStaleJournal
			}
			return nil
		}
		if apply != nil {
			return apply(r)
		}
		return nil
	}
	j, err := Open(jpath, opts.Journal, guard)
	if err != nil {
		return nil, err
	}
	s.j = j
	if j.Appended() == 0 {
		// Fresh or fully-torn journal: stamp the current generation's head
		// checkpoint so the next open can detect staleness.
		if err := j.Reset(Record{Op: OpCheckpoint, Gen: man.Generation, Horizon: man.Horizon}); err != nil {
			j.Close()
			return nil, err
		}
	}
	return s, nil
}

// dropStaleJournal peeks at the journal's head record; if it is a
// checkpoint for an older generation than the manifest, the whole journal
// is already folded into the base (the crash hit between manifest flip and
// journal reset) and is truncated to empty. Torn or missing heads are left
// for Open's normal recovery.
func (s *Store) dropStaleJournal(jpath string) error {
	info, err := s.fs.Stat(jpath)
	if err != nil || info.Size() == 0 {
		return nil // no journal yet
	}
	f, err := s.fs.OpenFile(jpath, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("wal: open journal %s: %w", jpath, err)
	}
	defer f.Close()
	var head *Record
	_, derr := DecodeStream(&sectionReader{f: f, size: info.Size()}, info.Size(), func(r Record) error {
		head = &r
		return errStopPeek
	})
	if derr != nil && derr != errStopPeek {
		return nil // corrupt or torn head: Open will classify it
	}
	if head == nil || head.Op != OpCheckpoint || head.Gen >= s.man.Generation {
		return nil
	}
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("wal: drop stale journal %s: %w", jpath, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: drop stale journal %s: %w", jpath, err)
	}
	return nil
}

var errStopPeek = errors.New("wal: stop peek")

// pruneLeftovers removes temp files and base generations that a crashed
// compaction may have left: bases newer than the manifest (written but
// never flipped to) and bases older than the retention window.
func (s *Store) pruneLeftovers() {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	keepFloor := uint64(1)
	if g := s.man.Generation; g > uint64(s.opts.KeepGenerations-1) {
		keepFloor = g - uint64(s.opts.KeepGenerations-1)
	}
	current := filepath.Base(s.man.Base)
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			s.fs.Remove(filepath.Join(s.dir, name))
			continue
		}
		gen, ok := parseBaseName(name)
		if !ok || name == current {
			continue
		}
		if gen > s.man.Generation || gen < keepFloor {
			s.fs.Remove(filepath.Join(s.dir, name))
		}
	}
}

func baseName(gen uint64) string { return fmt.Sprintf("base-%06d.adj", gen) }

func parseBaseName(name string) (uint64, bool) {
	var gen uint64
	if _, err := fmt.Sscanf(name, "base-%06d.adj", &gen); err != nil {
		return 0, false
	}
	if name != baseName(gen) {
		return 0, false
	}
	return gen, true
}

// Manifest returns the current manifest.
func (s *Store) Manifest() Manifest { return s.man }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// BasePath returns the current generation's adjacency file path, resolved
// against the store directory when relative.
func (s *Store) BasePath() string {
	if filepath.IsAbs(s.man.Base) {
		return s.man.Base
	}
	return filepath.Join(s.dir, s.man.Base)
}

// Journal returns the store's journal for appends and durability queries.
func (s *Store) Journal() *Journal { return s.j }

// Append journals one record (see Journal.Append for durability semantics).
func (s *Store) Append(r Record) error { return s.j.Append(r) }

// Compact folds the journal into a fresh base generation. writeBase must
// write the new effective graph to the path it is given, durably and
// atomically (Materialize's temp + fsync + rename does). Then the manifest
// flips to the new generation with the same discipline and the journal is
// reset to a head checkpoint. Readers holding the old base keep scanning it
// untouched; a crash at any step leaves a state OpenStore recovers to
// either the old generation (journal intact) or the new one (journal
// folded or dropped as stale).
//
// On an error at or after the manifest flip the journal is poisoned —
// further appends could be silently dropped as stale on the next open, so
// they must not be acknowledged. The on-disk state remains recoverable;
// reopen the store to resume.
func (s *Store) Compact(ctx context.Context, writeBase func(ctx context.Context, path string) error) (Manifest, error) {
	if err := ctx.Err(); err != nil {
		return s.man, err
	}
	gen := s.man.Generation + 1
	newBase := filepath.Join(s.dir, baseName(gen))
	if err := writeBase(ctx, newBase); err != nil {
		return s.man, fmt.Errorf("wal: compact: write generation %d base: %w", gen, err)
	}
	folded := s.j.Edges()
	man := Manifest{Generation: gen, Base: baseName(gen), Horizon: s.man.Horizon + folded}
	if err := writeManifest(s.fs, filepath.Join(s.dir, manifestName), man); err != nil {
		// The flip may or may not have hit the disk; acknowledging further
		// appends into a possibly-folded journal would risk double-apply or
		// stale-drop. Poison and let recovery sort it out.
		s.j.mu.Lock()
		s.j.fail(fmt.Errorf("wal: compact: manifest flip failed: %w", err))
		s.j.mu.Unlock()
		return s.man, err
	}
	s.man = man
	if err := s.j.Reset(Record{Op: OpCheckpoint, Gen: gen, Horizon: man.Horizon}); err != nil {
		return s.man, fmt.Errorf("wal: compact: journal reset: %w", err)
	}
	// Retention: drop generation files that have scrolled out of the window
	// (pruneLeftovers only ever touches base-NNNNNN.adj files inside dir).
	s.pruneLeftovers()
	return man, nil
}

// Close closes the journal.
func (s *Store) Close() error {
	if s.j == nil {
		return nil
	}
	return s.j.Close()
}
