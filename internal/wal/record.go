// Package wal is a durable append-only edge journal for dynamic graphs —
// the LogBase-style write path the ROADMAP names for `internal/dynamic`.
// Acknowledged updates survive crashes: every record is length-prefixed and
// CRC32C-checksummed, writes go through a group-commit batcher so many
// appends share one fsync, and recovery replays the journal treating a
// damaged tail as a torn write (truncate and continue) while damage before
// the tail surfaces as a typed *CorruptError.
//
// On top of the journal, Store manages generational compaction: the delta
// is folded into a fresh base file (written tmp + fsync + atomic rename), a
// small manifest flips the current generation atomically, and the journal
// is reset — interrupted at any step, recovery reads either the old or the
// new generation in full, never a mix.
//
// Every filesystem touch goes through the FS seam, so the fault-injection
// harness (FaultFS) can fail, short-write, or "crash" at the Nth operation
// and the tests can assert recovery from every reachable on-disk state.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Op identifies a journal record type.
type Op uint8

const (
	// OpInsert records an undirected edge insertion {U, V}.
	OpInsert Op = 1
	// OpDelete records an undirected edge deletion {U, V}.
	OpDelete Op = 2
	// OpCheckpoint marks a generation boundary: the journal's head record.
	// Replaying a journal whose head generation does not match the store
	// manifest means the journal's edges are already folded into the base —
	// the store drops it instead of double-applying.
	OpCheckpoint Op = 3
)

// Record is one journal entry. Edge ops use U and V; checkpoints carry the
// generation they open and the cumulative fold horizon at that point.
type Record struct {
	Op   Op
	U, V uint32 // edge endpoints (OpInsert, OpDelete)

	Gen     uint64 // generation id (OpCheckpoint)
	Horizon uint64 // cumulative edge records folded into the base (OpCheckpoint)
}

// On-disk framing: every record is
//
//	length  uint32 LE   payload byte count
//	crc     uint32 LE   CRC32C (Castagnoli) over the payload
//	payload length bytes
//
// followed immediately by the next record. The length prefix bounds the
// payload so a reader can skip without decoding; the CRC catches torn
// writes and bit rot independently of payload structure.
const (
	recordHeaderSize = 8
	// MaxRecordLen bounds the payload of any valid record. A length prefix
	// beyond it cannot belong to a record this package wrote, so mid-file it
	// is corruption, not a torn tail.
	MaxRecordLen = 64

	edgePayloadSize       = 1 + 4 + 4
	checkpointPayloadSize = 1 + 8 + 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord appends r's on-disk encoding to dst and returns the extended
// slice. It is the single encoder, shared by the journal writer, the fuzz
// round-trip property, and tests that fabricate journals.
func AppendRecord(dst []byte, r Record) []byte {
	var payload [checkpointPayloadSize]byte
	var n int
	payload[0] = byte(r.Op)
	switch r.Op {
	case OpInsert, OpDelete:
		binary.LittleEndian.PutUint32(payload[1:], r.U)
		binary.LittleEndian.PutUint32(payload[5:], r.V)
		n = edgePayloadSize
	case OpCheckpoint:
		binary.LittleEndian.PutUint64(payload[1:], r.Gen)
		binary.LittleEndian.PutUint64(payload[9:], r.Horizon)
		n = checkpointPayloadSize
	default:
		panic(fmt.Sprintf("wal: encode unknown op %d", r.Op))
	}
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(n))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload[:n], castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload[:n]...)
}

func decodePayload(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("empty payload")
	}
	op := Op(payload[0])
	switch op {
	case OpInsert, OpDelete:
		if len(payload) != edgePayloadSize {
			return Record{}, fmt.Errorf("op %d payload is %d bytes, want %d", op, len(payload), edgePayloadSize)
		}
		return Record{
			Op: op,
			U:  binary.LittleEndian.Uint32(payload[1:]),
			V:  binary.LittleEndian.Uint32(payload[5:]),
		}, nil
	case OpCheckpoint:
		if len(payload) != checkpointPayloadSize {
			return Record{}, fmt.Errorf("checkpoint payload is %d bytes, want %d", len(payload), checkpointPayloadSize)
		}
		return Record{
			Op:      op,
			Gen:     binary.LittleEndian.Uint64(payload[1:]),
			Horizon: binary.LittleEndian.Uint64(payload[9:]),
		}, nil
	default:
		return Record{}, fmt.Errorf("unknown op %d", op)
	}
}

// CorruptError reports journal damage before the tail: a record that fails
// its CRC, carries an impossible length, or decodes to garbage while valid
// records (or any bytes at all) follow it. Damage at the very tail is a
// torn write — expected after a crash — and is truncated silently instead.
type CorruptError struct {
	Path   string // journal path, when known
	Offset int64  // byte offset of the damaged record
	Reason string
}

func (e *CorruptError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("wal: corrupt record at offset %d: %s", e.Offset, e.Reason)
	}
	return fmt.Sprintf("wal: %s: corrupt record at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// DecodeStream decodes records from r, which holds size bytes of journal,
// invoking emit for each good record in order. It returns the clean length:
// the byte offset just past the last good record. Bytes past the clean
// length are a torn tail (err == nil; the caller truncates) unless the
// damage lies strictly before the end of the data, in which case err is a
// *CorruptError at that offset. emit's error aborts the scan and is
// returned verbatim.
//
// The distinction: a record whose bytes run off the end of the data — short
// header, short payload, or a length prefix pointing past EOF — and a
// CRC-failing record that is the final one are all consistent with a crash
// mid-write, so they are torn. A CRC failure or structurally invalid
// payload with data after it cannot come from a torn append and is
// corruption.
func DecodeStream(r io.Reader, size int64, emit func(Record) error) (int64, error) {
	br := newChunkReader(r)
	var off int64
	for off < size {
		rem := size - off
		if rem < recordHeaderSize {
			return off, nil // torn: partial header
		}
		hdr, err := br.next(recordHeaderSize)
		if err != nil {
			return off, nil // short read at the tail: torn
		}
		length := int64(binary.LittleEndian.Uint32(hdr[0:]))
		wantCRC := binary.LittleEndian.Uint32(hdr[4:])
		end := off + recordHeaderSize + length
		if end > size {
			return off, nil // torn: payload runs off the end
		}
		if length > MaxRecordLen {
			return off, &CorruptError{Offset: off, Reason: fmt.Sprintf("length %d exceeds max %d", length, MaxRecordLen)}
		}
		payload, err := br.next(int(length))
		if err != nil {
			return off, nil // defensive: size lied; treat as torn
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			if end == size {
				return off, nil // torn: damaged final record
			}
			return off, &CorruptError{Offset: off, Reason: "CRC mismatch"}
		}
		rec, err := decodePayload(payload)
		if err != nil {
			// The CRC matched, so these bytes were written as-is: structural
			// garbage is corruption even at the tail.
			return off, &CorruptError{Offset: off, Reason: err.Error()}
		}
		if err := emit(rec); err != nil {
			return off, err
		}
		off = end
	}
	return off, nil
}

// chunkReader serves exact-length forward reads from an io.Reader through
// one reusable buffer, so replay costs large sequential reads rather than
// two syscalls per record.
type chunkReader struct {
	r   io.Reader
	buf []byte
	pos int
	end int
}

func newChunkReader(r io.Reader) *chunkReader {
	return &chunkReader{r: r, buf: make([]byte, 64<<10)}
}

// next returns the next n bytes, valid until the following call. A short
// source surfaces as an error (the caller maps it to a torn tail).
func (c *chunkReader) next(n int) ([]byte, error) {
	if c.end-c.pos < n {
		// Compact the leftover to the front and refill.
		copy(c.buf, c.buf[c.pos:c.end])
		c.end -= c.pos
		c.pos = 0
		for c.end < n {
			m, err := c.r.Read(c.buf[c.end:])
			c.end += m
			if err != nil {
				if c.end >= n {
					break
				}
				return nil, err
			}
		}
	}
	p := c.buf[c.pos : c.pos+n]
	c.pos += n
	return p, nil
}
