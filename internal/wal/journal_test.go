package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func edge(op Op, u, v uint32) Record { return Record{Op: op, U: u, V: v} }

func collect(dst *[]Record) func(Record) error {
	return func(r Record) error {
		*dst = append(*dst, r)
		return nil
	}
}

func openJournal(t *testing.T, path string, opts Options) (*Journal, []Record) {
	t.Helper()
	var got []Record
	j, err := Open(path, opts, collect(&got))
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return j, got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, got := openJournal(t, path, Options{})
	if len(got) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(got))
	}
	want := []Record{
		{Op: OpCheckpoint, Gen: 1, Horizon: 0},
		edge(OpInsert, 1, 2),
		edge(OpDelete, 3, 4),
		edge(OpInsert, 100000, 7),
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if j.Appended() != 4 || j.Durable() != 4 || j.Edges() != 3 {
		t.Fatalf("counters appended=%d durable=%d edges=%d", j.Appended(), j.Durable(), j.Edges())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got := openJournal(t, path, Options{})
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if j2.TornBytes() != 0 {
		t.Fatalf("clean journal reported %d torn bytes", j2.TornBytes())
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openJournal(t, path, Options{})
	for i := uint32(0); i < 5; i++ {
		if err := j.Append(edge(OpInsert, i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := len(whole) / 5

	// Every possible mid-record cut of the final record is a torn write:
	// recovery keeps the first 4 records and truncates the tail.
	for cut := 1; cut < recLen; cut++ {
		p := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(p, whole[:4*recLen+cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, got := openJournal(t, p, Options{})
		if len(got) != 4 {
			t.Fatalf("cut %d: recovered %d records, want 4", cut, len(got))
		}
		if j2.TornBytes() != int64(cut) {
			t.Fatalf("cut %d: torn bytes %d, want %d", cut, j2.TornBytes(), cut)
		}
		// The truncated journal accepts appends and they land after the
		// surviving prefix.
		if err := j2.Append(edge(OpDelete, 9, 8)); err != nil {
			t.Fatal(err)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		_, got = openJournal(t, p, Options{})
		if len(got) != 5 || got[4] != edge(OpDelete, 9, 8) {
			t.Fatalf("cut %d: after repair-append replay got %d records (%+v)", cut, len(got), got[len(got)-1])
		}
	}

	// A CRC-damaged final record is likewise torn, not corrupt.
	damaged := append([]byte(nil), whole...)
	damaged[len(damaged)-1] ^= 0xff
	p := filepath.Join(t.TempDir(), "crc.wal")
	if err := os.WriteFile(p, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	j3, got := openJournal(t, p, Options{})
	defer j3.Close()
	if len(got) != 4 || j3.TornBytes() != int64(recLen) {
		t.Fatalf("damaged final record: recovered %d records, torn %d", len(got), j3.TornBytes())
	}
}

func TestCorruptBeforeTailTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openJournal(t, path, Options{})
	for i := uint32(0); i < 5; i++ {
		if err := j.Append(edge(OpInsert, i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := len(whole) / 5

	// Flip a payload byte of record 2: records follow it, so this is
	// corruption, not a torn tail, and the error carries the offset.
	bad := append([]byte(nil), whole...)
	bad[2*recLen+recordHeaderSize+3] ^= 0x40
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(path, Options{}, nil)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CorruptError", err)
	}
	if ce.Offset != int64(2*recLen) {
		t.Fatalf("corrupt offset %d, want %d", ce.Offset, 2*recLen)
	}
	if ce.Path != path {
		t.Fatalf("corrupt path %q, want %q", ce.Path, path)
	}
}

func TestGroupCommitSyncEvery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openJournal(t, path, Options{SyncEvery: 3})
	defer j.Close()
	for i := uint32(1); i <= 2; i++ {
		if err := j.Append(edge(OpInsert, 0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if d := j.Durable(); d != 0 {
		t.Fatalf("durable %d before threshold, want 0", d)
	}
	if err := j.Append(edge(OpInsert, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if d := j.Durable(); d != 3 {
		t.Fatalf("durable %d at threshold, want 3", d)
	}
	if err := j.Append(edge(OpInsert, 0, 4)); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if d := j.Durable(); d != 4 {
		t.Fatalf("durable %d after explicit sync, want 4", d)
	}
}

func TestSyncIntervalTimer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openJournal(t, path, Options{SyncEvery: 1000, SyncInterval: 5 * time.Millisecond})
	defer j.Close()
	if err := j.Append(edge(OpInsert, 1, 2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.Durable() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("time-triggered group commit never fired")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTickerFaultSurfacesThroughErr pins the fix for silently dropped
// background fsync errors: under SyncInterval, a failed ticker commit must
// poison the journal so a caller that stops appending still learns — via
// Err, without waiting for a next Append — that acknowledged-but-volatile
// records were lost.
func TestTickerFaultSurfacesThroughErr(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	ffs := NewFaultFS(nil)
	j, _ := openJournal(t, path, Options{SyncEvery: 1000, SyncInterval: 2 * time.Millisecond, FS: ffs})
	defer j.Close()
	// Arm before the append: op 1 is the append's write (passes through),
	// op 2 is the background ticker's fsync — the failure with no caller
	// around to see it. (The ticker issues no FS ops while nothing is
	// pending, so it cannot consume the armed op early.)
	ffs.Arm(2, FailOp)
	if err := j.Append(edge(OpInsert, 1, 2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("failed background commit never surfaced through Err")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(j.Err(), ErrInjected) {
		t.Fatalf("Err = %v, want ErrInjected", j.Err())
	}
	if j.Durable() != 0 {
		t.Fatalf("durable %d after failed background commit, want 0", j.Durable())
	}
	// The sticky error also rejects every later append.
	if err := j.Append(edge(OpInsert, 3, 4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("append after poisoned ticker commit: %v", err)
	}
}

// countingFS counts fsync calls so the group-commit test can show many
// acknowledged appends sharing fewer fsyncs.
type countingFS struct {
	FS
	mu    sync.Mutex
	syncs int
}

func (c *countingFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := c.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, c: c}, nil
}

type countingFile struct {
	File
	c *countingFS
}

func (f *countingFile) Sync() error {
	f.c.mu.Lock()
	f.c.syncs++
	f.c.mu.Unlock()
	return f.File.Sync()
}

func TestConcurrentAppendGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	cfs := &countingFS{FS: OSFS()}
	j, _ := openJournal(t, path, Options{SyncEvery: 1, FS: cfs})
	const goroutines, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := j.Append(edge(OpInsert, uint32(g), uint32(1000+i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if j.Durable() != goroutines*per {
		t.Fatalf("durable %d, want %d", j.Durable(), goroutines*per)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, got := openJournal(t, path, Options{})
	if len(got) != goroutines*per {
		t.Fatalf("replayed %d records, want %d", len(got), goroutines*per)
	}
	t.Logf("group commit: %d appends acknowledged durable over %d fsyncs", goroutines*per, cfs.syncs)
}

func TestAppendFaultPoisonsJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.wal")
	ffs := NewFaultFS(nil)
	j, _ := openJournal(t, path, Options{FS: ffs})
	if err := j.Append(edge(OpInsert, 1, 2)); err != nil {
		t.Fatal(err)
	}
	// Arm the next write to short-write: the append must fail, and every
	// later call must return the same sticky error — a half-written record
	// is never acknowledged.
	ffs.Arm(1, ShortWrite)
	if err := j.Append(edge(OpInsert, 3, 4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("short write append: %v, want ErrInjected", err)
	}
	if err := j.Append(edge(OpInsert, 5, 6)); !errors.Is(err, ErrInjected) {
		t.Fatalf("append after poison: %v, want sticky ErrInjected", err)
	}
	if err := j.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync after poison: %v, want sticky ErrInjected", err)
	}
	j.Close()

	// Recovery drops the torn half-record and keeps the acknowledged prefix.
	j2, got := openJournal(t, path, Options{})
	defer j2.Close()
	if len(got) != 1 || got[0] != edge(OpInsert, 1, 2) {
		t.Fatalf("recovered %d records (%+v), want the 1 acknowledged", len(got), got)
	}
	if j2.TornBytes() == 0 {
		t.Fatal("expected torn bytes from the short write")
	}
}

func TestSyncFaultNotAcknowledged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	ffs := NewFaultFS(nil)
	j, _ := openJournal(t, path, Options{FS: ffs})
	defer j.Close()
	if err := j.Append(edge(OpInsert, 1, 2)); err != nil {
		t.Fatal(err)
	}
	// Ops so far: 1 create-open + 1 write + 1 sync. Fail the next sync.
	ffs.Arm(2, FailOp) // next = write, then sync fails
	if err := j.Append(edge(OpInsert, 3, 4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("append with failing fsync: %v, want ErrInjected", err)
	}
	if j.Durable() != 1 {
		t.Fatalf("durable %d after failed fsync, want 1", j.Durable())
	}
}

func TestResetStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openJournal(t, path, Options{})
	for i := uint32(0); i < 10; i++ {
		if err := j.Append(edge(OpInsert, i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Reset(Record{Op: OpCheckpoint, Gen: 2, Horizon: 10}); err != nil {
		t.Fatal(err)
	}
	if j.Appended() != 1 || j.Edges() != 0 {
		t.Fatalf("after reset: appended=%d edges=%d", j.Appended(), j.Edges())
	}
	if err := j.Append(edge(OpDelete, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, got := openJournal(t, path, Options{})
	want := []Record{{Op: OpCheckpoint, Gen: 2, Horizon: 10}, edge(OpDelete, 1, 2)}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("replay after reset: %+v", got)
	}
	if err := j.Reset(edge(OpInsert, 1, 2)); err == nil {
		t.Fatal("reset accepted a non-checkpoint head")
	}
}

func TestApplyErrorAbortsOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openJournal(t, path, Options{})
	for i := uint32(0); i < 3; i++ {
		if err := j.Append(edge(OpInsert, i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	_, err := Open(path, Options{}, func(Record) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("apply error not returned verbatim: %v", err)
	}
}
