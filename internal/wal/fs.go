package wal

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the filesystem seam every durable operation in this package goes
// through. Production uses OSFS; the fault-injection harness (FaultFS)
// wraps it to fail, short-write, or crash at a chosen operation so tests
// can drive recovery through every reachable on-disk state.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Stat returns file metadata.
	Stat(name string) (os.FileInfo, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// MkdirAll creates a directory tree.
	MkdirAll(name string, perm os.FileMode) error
	// SyncDir fsyncs a directory, making renames and creates within it
	// durable.
	SyncDir(name string) error
}

// File is the open-file surface the journal and manifest writers need.
type File interface {
	io.Writer
	io.ReaderAt
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// OSFS returns the real filesystem.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) Stat(name string) (os.FileInfo, error)      { return os.Stat(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) MkdirAll(name string, perm os.FileMode) error {
	return os.MkdirAll(name, perm)
}
func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// readFile reads name in full through fs.
func readFile(fs FS, name string) ([]byte, error) {
	info, err := fs.Stat(name)
	if err != nil {
		return nil, err
	}
	f, err := fs.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, info.Size())
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

// writeFileAtomic durably publishes data at name: write to name.tmp, fsync,
// rename over name, fsync the directory. A crash at any point leaves either
// the old complete file or the new complete file, never a partial one.
func writeFileAtomic(fs FS, name string, data []byte, perm os.FileMode) error {
	tmp := name + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, name); err != nil {
		fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(filepath.Dir(name))
}

// sectionReader adapts File's ReaderAt to a forward io.Reader over [0, size).
type sectionReader struct {
	f    File
	off  int64
	size int64
}

func (s *sectionReader) Read(p []byte) (int, error) {
	if s.off >= s.size {
		return 0, io.EOF
	}
	if max := s.size - s.off; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := s.f.ReadAt(p, s.off)
	s.off += int64(n)
	if err == io.EOF && n > 0 {
		err = nil
	}
	return n, err
}

func fsOrOS(fs FS) FS {
	if fs == nil {
		return OSFS()
	}
	return fs
}
