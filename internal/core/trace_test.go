package core

import (
	"testing"

	"repro/internal/plrg"
	"repro/internal/semiext"
)

// snapshotTrace records every phase callback.
type snapshotTrace struct {
	rounds []int
	phases []string
	states [][]semiext.State
}

func (tr *snapshotTrace) hook(round int, phase string, states []semiext.State) {
	tr.rounds = append(tr.rounds, round)
	tr.phases = append(tr.phases, phase)
	cp := make([]semiext.State, len(states))
	copy(cp, states)
	tr.states = append(tr.states, cp)
}

func (tr *snapshotTrace) at(round int, phase string) []semiext.State {
	for i := range tr.phases {
		if tr.rounds[i] == round && tr.phases[i] == phase {
			return tr.states[i]
		}
	}
	return nil
}

func count(states []semiext.State, want semiext.State) int {
	c := 0
	for _, s := range states {
		if s == want {
			c++
		}
	}
	return c
}

// TestExample1Trace replays the paper's Example 1 on the Figure 2 graph,
// checking the state machine phase by phase: the setup marks all four
// non-IS vertices A with their ISN; the first pre-swap fires exactly one of
// the two conflicting 1-2 swap skeletons (P vertices appear, one IS vertex
// turns R, and the competing swap's vertices are blocked); the swap phase
// realizes the exchange; the final set has size 3.
func TestExample1Trace(t *testing.T) {
	g := plrg.Figure2()
	f := writeFile(t, g, true)
	var tr snapshotTrace
	r, err := OneKSwap(f, members(6, 0, 3), SwapOptions{OnPhase: tr.hook})
	if err != nil {
		t.Fatal(err)
	}

	setup := tr.at(0, "setup")
	if setup == nil {
		t.Fatal("no setup snapshot")
	}
	if got := count(setup, semiext.StateAdjacent); got != 4 {
		t.Fatalf("setup: %d A vertices, want 4 (v2, v3, v5, v6)", got)
	}
	if got := count(setup, semiext.StateIS); got != 2 {
		t.Fatalf("setup: %d IS vertices, want 2 (v1, v4)", got)
	}

	pre := tr.at(1, "pre-swap")
	if pre == nil {
		t.Fatal("no round-1 pre-swap snapshot")
	}
	// Scan-order preemption: both initial IS vertices may leave only if
	// their swaps don't conflict — in Figure 2 they do conflict through the
	// edge v3–v6, so P vertices exist and at least one C appeared or one
	// skeleton was suppressed entirely.
	if got := count(pre, semiext.StateProtected); got == 0 {
		t.Fatal("pre-swap: no vertex was promoted to P")
	}
	if got := count(pre, semiext.StateRetrograde); got == 0 {
		t.Fatal("pre-swap: no IS vertex was marked R")
	}

	swap := tr.at(1, "swap")
	if count(swap, semiext.StateProtected) != 0 || count(swap, semiext.StateRetrograde) != 0 {
		t.Fatal("swap phase must clear all P and R marks")
	}

	if r.Size != 3 {
		t.Fatalf("final size %d, want 3", r.Size)
	}
	mustIndependent(t, f, r.InSet)
	mustMaximal(t, f, r.InSet)
}

// TestExample3Trace replays Example 3 on the Figure 7 graph through
// two-k-swap: the 2-3 swap skeleton fires (two IS vertices turn R, at least
// three vertices turn P), the conflicting v7 is blocked, and the final set
// is {v1, v4, v5, v6, v8}.
func TestExample3Trace(t *testing.T) {
	g := plrg.Figure7()
	f := writeFile(t, g, true)
	var tr snapshotTrace
	r, err := TwoKSwap(f, members(8, 0, 1, 2), SwapOptions{OnPhase: tr.hook})
	if err != nil {
		t.Fatal(err)
	}

	setup := tr.at(0, "setup")
	// v4, v5, v6, v8 have ISN {v2, v3}; v7 has ISN {v1}: five A vertices.
	if got := count(setup, semiext.StateAdjacent); got != 5 {
		t.Fatalf("setup: %d A vertices, want 5", got)
	}

	pre := tr.at(1, "pre-swap")
	if got := count(pre, semiext.StateRetrograde); got != 2 {
		t.Fatalf("pre-swap: %d R vertices, want 2 (v2 and v3 leave together)", got)
	}
	if got := count(pre, semiext.StateProtected); got < 3 {
		t.Fatalf("pre-swap: %d P vertices, want ≥ 3 (a 2-3 skeleton plus joiners)", got)
	}

	if r.Size != 5 {
		t.Fatalf("final size %d, want 5", r.Size)
	}
	if r.InSet[6] {
		t.Fatal("v7 must be blocked by its conflict and its IS neighbor v1")
	}
	for _, v := range []uint32{0, 3, 4, 5, 7} {
		if !r.InSet[v] {
			t.Fatalf("vertex %d missing from the Example 3 result %v", v+1, r.Vertices())
		}
	}
}

// TestTracePhaseOrder checks the hook contract: phases arrive in round
// order, each round contributing pre-swap, swap, post-swap.
func TestTracePhaseOrder(t *testing.T) {
	g := plrg.PowerLawN(300, 2.0, 9)
	f := writeFile(t, g, true)
	greedy, err := Greedy(f)
	if err != nil {
		t.Fatal(err)
	}
	var tr snapshotTrace
	r, err := OneKSwap(f, greedy.InSet, SwapOptions{OnPhase: tr.hook})
	if err != nil {
		t.Fatal(err)
	}
	if tr.phases[0] != "setup" || tr.phases[len(tr.phases)-1] != "sweep" {
		t.Fatalf("trace must start with setup and end with sweep: %v", tr.phases)
	}
	wantLen := 2 + 3*r.Rounds // setup + rounds×3 + sweep
	if len(tr.phases) != wantLen {
		t.Fatalf("got %d phase callbacks, want %d for %d rounds", len(tr.phases), wantLen, r.Rounds)
	}
	for i := 0; i < r.Rounds; i++ {
		base := 1 + 3*i
		if tr.phases[base] != "pre-swap" || tr.phases[base+1] != "swap" || tr.phases[base+2] != "post-swap" {
			t.Fatalf("round %d phases wrong: %v", i+1, tr.phases[base:base+3])
		}
		if tr.rounds[base] != i+1 {
			t.Fatalf("round numbering wrong at %d: %d", base, tr.rounds[base])
		}
	}
}
