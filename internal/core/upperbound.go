package core

import (
	"context"
	"fmt"

	"repro/internal/gio"
	"repro/internal/pipeline"
)

// UpperBound runs Algorithm 5 (Appendix): a one-scan star-partition upper
// bound on the independence number. Each unvisited vertex v claims its
// unvisited neighbors as a star; a star with N ≥ 1 leaves can contribute at
// most N independent vertices (an independent set cannot contain the center
// and every leaf), and an isolated star contributes one. The experiments use
// this bound as the denominator of all approximation ratios, exactly as the
// paper does (it cannot compute exact independence numbers at scale). The
// scan is one logical pass on the scheduler, touching only its pass-private
// visited array.
func UpperBound(f Source) (uint64, error) {
	return UpperBoundCtx(context.Background(), f, Hooks{})
}

// UpperBoundCtx is UpperBound bound to a context and run hooks.
func UpperBoundCtx(ctx context.Context, f Source, h Hooks) (uint64, error) {
	n := f.NumVertices()
	visited := make([]bool, n)
	var bound uint64
	s := pipeline.New(f, newRun(ctx, h).sopts(false))
	s.Add(pipeline.Pass{
		Name:           "upper-bound",
		ReadOnly:       true, // the visited array is pass-private
		NeedsScanOrder: true,
		Batch: func(batch []gio.Record) error {
			for i := range batch {
				r := &batch[i]
				if visited[r.ID] {
					continue
				}
				visited[r.ID] = true
				leaves := uint64(0)
				for _, u := range r.Neighbors {
					if !visited[u] {
						visited[u] = true
						leaves++
					}
				}
				if leaves > 0 {
					bound += leaves
				} else {
					bound++
				}
			}
			return nil
		},
	})
	if err := s.Run(); err != nil {
		return 0, fmt.Errorf("core: upper bound: %w", err)
	}
	return bound, nil
}
