package core

import (
	"repro/internal/gio"
	"repro/internal/pipeline"
	"repro/internal/semiext"
)

// carryCollector implements the algorithm side of the pipeline's cross-round
// fusion edge: it rides a scan that completes a round's swap states and ISN
// sets (the setup scan, or a post-swap scan) and collects exactly the
// records the NEXT round's pre-swap pass will act on — the A vertices, with
// their adjacency lists — so that the pre-swap (and, for two-k-swap, the
// validating swap pass) can resolve from memory instead of paying dedicated
// physical scans. This is what makes ISN maintenance effectively
// incremental across rounds: the producer scan leaves states, ISN sets and
// ISN preimage counts complete at its end, and every decision the carried
// passes make is deferred until then, so a steady-state swap round spends
// exactly one physical scan (its own post-swap pass).
//
// The collection rule is sound because the producer passes mutate only the
// state of the record currently in hand: once a record's batch callback has
// run, its vertex's classification (and ISN entry) is final for the
// remainder of the scan, so "A immediately after the producer's callback"
// equals "A when a dedicated pre-swap scan would run". The replay then
// iterates the buffer in scan order against the completed product, which
// reproduces the dedicated scan's reads and writes bit for bit — the
// fused-vs-unfused parity tests and the randomized property harness hold
// the two executions to identical results.
//
// Deferral stores the pending vertices' neighbor lists in memory. The
// buffer is bounded at a small multiple of |V| entries (the same order as
// the ISN arrays); past that the collector abandons the round's carry and
// the algorithm falls back to the classic dedicated scans, which are
// equivalent by construction. A stall exit likewise discards an unused
// collection — the classic standalone sweep already covers that path.
type carryCollector struct {
	states semiext.States
	buf    *semiext.RecordBuffer // the A records, budget-bounded

	// scanPos maps vertex → scan position, filled as a free rider of every
	// collection scan. Two-k-swap's validating swap replay needs it to
	// interleave the R vertices (which are not in the buffer — they were IS
	// at collection time) with the buffered P vertices in exact scan order.
	// Nil for one-k-swap, which has no validating scan.
	scanPos []uint32

	idx       uint32 // running record index of the current collection scan
	collected bool
}

// carryBudget returns the collector's neighbor-entry budget for an n-vertex
// graph: the same order as the ISN arrays, so the carry never changes the
// framework's O(|V|) memory class. A variable so the overflow fallback can
// be forced in tests.
var carryBudget = func(n int) int { return 2*n + 1024 }

// newCarryCollector returns a collector over the shared state array.
// withPos additionally allocates the vertex → scan-position table that
// two-k-swap's swap replay interleaves R vertices with.
func newCarryCollector(states semiext.States, withPos bool) *carryCollector {
	c := &carryCollector{
		states: states,
		buf:    semiext.NewRecordBuffer(carryBudget(states.Len()), withPos),
	}
	if withPos {
		c.scanPos = make([]uint32, states.Len())
	}
	return c
}

// pass returns the collection as a logical pass consuming the named product
// of a co-scheduled producer (the setup or post-swap pass). The pass only
// collects; the owning algorithm replays the buffer at the start of the
// next round, after calling pipeline.ResolveCarried for the accounting.
func (c *carryCollector) pass(name, product string) pipeline.Pass {
	c.reset()
	c.collected = true
	return pipeline.Pass{
		Name:           name,
		Consumes:       product,
		DeferredWrites: true,
		NeedsScanOrder: true,
		Batch:          c.batch,
	}
}

// reset drops any previous collection, keeping the buffer's capacity (and
// the scan-position table, which is identical for every scan of one file).
func (c *carryCollector) reset() {
	c.buf.Reset()
	c.idx = 0
	c.collected = false
}

func (c *carryCollector) batch(batch []gio.Record) error {
	for i := range batch {
		r := &batch[i]
		idx := c.idx
		c.idx++
		if c.scanPos != nil {
			c.scanPos[r.ID] = idx
		}
		if c.states.Get(r.ID) == semiext.StateAdjacent {
			c.buf.Append(r.ID, idx, r.Neighbors)
		}
	}
	return nil
}

// ready reports whether a complete collection is available for replay; when
// false (never scheduled, or overflowed) the round must pay the classic
// dedicated scans.
func (c *carryCollector) ready() bool { return c.collected && !c.buf.Overflowed() }

// forEach replays the buffered records in scan order.
func (c *carryCollector) forEach(fn func(u uint32, neighbors []uint32)) {
	c.buf.ForEach(fn)
}

// memoryBytes reports the collector's contribution to the algorithm's
// high-water footprint: the deferral buffer plus the scan-position table.
func (c *carryCollector) memoryBytes() uint64 {
	return c.buf.MemoryPeak() + uint64(len(c.scanPos))*4
}
