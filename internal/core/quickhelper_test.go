package core

import (
	"os"
	"path/filepath"

	"repro/internal/gio"
	"repro/internal/graph"
)

// writeFileQuick writes g to a temp file and opens it, for use inside
// testing/quick properties that have no *testing.T in scope. The path is
// unlinked immediately after opening (the descriptor keeps it readable), so
// nothing accumulates in the temp directory. Returns nil on any error.
func writeFileQuick(g *graph.Graph) *gio.File {
	dir, err := os.MkdirTemp("", "misquick")
	if err != nil {
		return nil
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "g.adj")
	if err := gio.WriteGraphSorted(path, g, nil); err != nil {
		return nil
	}
	f, err := gio.Open(path, 0, nil)
	if err != nil {
		return nil
	}
	return f
}
