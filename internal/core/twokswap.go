package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/gio"
	"repro/internal/pipeline"
	"repro/internal/semiext"
)

// twoKProduct names the cross-round state product of two-k-swap's setup and
// post-swap passes: the complete state array, ISN sets and ISN preimage
// counts the next round's pre-swap and validating swap passes consume.
const twoKProduct = "two-k-states"

// twoKState bundles the per-round in-memory structures of Algorithm 3.
type twoKState struct {
	states semiext.States
	isn    *semiext.ISN
	deg    []uint32
	sc     *semiext.SCStore

	// carry holds the cross-round collection (A vertices with adjacency,
	// plus the scan-position table): round r's setup/post-swap scan
	// collects, round r+1's pre-swap and validating swap passes replay.
	// Nil under an Unfused schedule.
	carry *carryCollector

	// seenPair[key(w1,w2)] lists scanned A vertices whose ISN is exactly
	// {w1, w2}; seenOne[w] lists those whose ISN is exactly {w}. Entries are
	// validated lazily against current state and ISN before use. They are
	// part of the swap-candidate storage, so their population counts toward
	// the SC high-water mark (Figure 10 measures the whole store).
	seenPair  map[uint64][]uint32
	seenOne   map[uint32][]uint32
	seenCount int
	scPeak    int

	// Swap groups: each fired skeleton registers its leaving IS vertices
	// and entering members so the swap-phase scan can validate the group
	// and roll it back atomically on a passenger collision.
	groups   []swapGroup
	groupOf  []int32 // primary group of a P/R vertex, -1 when none
	groupOf2 []int32 // secondary group (a joiner whose two ISN left in different groups)

	// canSwap is set by the swap pass when any R vertex actually left the
	// set this round.
	canSwap bool
}

type swapGroup struct {
	ws        []uint32 // IS vertices leaving (state R)
	confirmed []uint32 // members already promoted to I this swap phase
	failed    bool
}

func pairKey(w1, w2 uint32) uint64 {
	if w1 > w2 {
		w1, w2 = w2, w1
	}
	return uint64(w1)<<32 | uint64(w2)
}

// TwoKSwap runs Algorithms 3 and 4: starting from the independent set
// initial, it fires 2-3 swap skeletons (two IS vertices exchanged for three
// or more non-IS vertices) in addition to every 1-k swap, using the SC
// swap-candidate store. A round comprises three logical passes — pre-swap,
// a validating swap pass, and post-swap — but in steady state only the
// post-swap pass touches the disk: the setup and post-swap scans maintain
// states, ISN sets and ISN preimage counts incrementally (complete at end
// of scan), so the next round's pre-swap and swap-validation work rides
// them as a cross-round collection (pipeline.Pass.Consumes) and replays
// from memory, dropping a steady-state round from three physical scans to
// one. The setup pass additionally fuses with a read-only
// degree-collection rider, and on the final round — recognizable before
// its post-swap scan because the swap pass runs first — the maximality
// sweep rides the post-swap scan as a fused deferred pass. Carry-buffer
// overflow, a stall exit, and Unfused schedules fall back to the classic
// dedicated scans.
//
// The swap scan validates each promotion against the vertex's in-hand
// adjacency list and rolls back a whole skeleton group if two passengers
// from different groups turn out to be adjacent — an edge no SC pair ever
// examined. See DESIGN.md §3.3 for why rollback is confined to one group.
func TwoKSwap(f Source, initial []bool, opts SwapOptions) (*Result, error) {
	return TwoKSwapCtx(context.Background(), f, initial, opts, Hooks{})
}

// TwoKSwapCtx is TwoKSwap bound to a context and run hooks: ctx cancels
// between batches, between rounds and before carried-collection replays;
// hooks.OnScan observes per-batch progress and hooks.OnRound each completed
// round with its gain and I/O delta.
func TwoKSwapCtx(ctx context.Context, f Source, initial []bool, opts SwapOptions, h Hooks) (*Result, error) {
	n := f.NumVertices()
	if len(initial) != n {
		return nil, fmt.Errorf("core: two-k-swap: initial set has %d entries for %d vertices", len(initial), n)
	}
	opts = opts.WithDefaults(n)
	rn := newRun(ctx, h)
	snap := snapshot(f.Stats())

	st := &twoKState{
		states:   semiext.NewStates(n),
		isn:      semiext.NewISN(n, true),
		deg:      make([]uint32, n),
		sc:       semiext.NewSCStore(),
		seenPair: make(map[uint64][]uint32),
		seenOne:  make(map[uint32][]uint32),
		groupOf:  make([]int32, n),
		groupOf2: make([]int32, n),
	}
	if !opts.Unfused {
		st.carry = newCarryCollector(st.states, true)
	}
	size := 0
	for v, in := range initial {
		if in {
			st.states.Set(uint32(v), semiext.StateIS)
			size++
		} else {
			st.states.Set(uint32(v), semiext.StateNonIS)
		}
	}

	// Setup scan (Algorithm 3 lines 1–3): A vertices with one or two IS
	// neighbors, fused with the read-only collection of the degree array
	// that caps SC bucket sizes.
	setup := opts.scheduler(f, rn)
	setup.Add(pipeline.Pass{
		Name:           "two-k-setup",
		Produces:       twoKProduct,
		MutatesStates:  true,
		NeedsScanOrder: true,
		Batch: func(batch []gio.Record) error {
			for i := range batch {
				r := &batch[i]
				u := r.ID
				isMember := st.states.Get(u) == semiext.StateIS
				var (
					isNbrs int
					e1, e2 uint32
				)
				for _, nb := range r.Neighbors {
					if st.states.Get(nb) == semiext.StateIS {
						if isMember {
							return fmt.Errorf("%w: edge {%d,%d}", ErrNotIndependent, u, nb)
						}
						switch isNbrs {
						case 0:
							e1 = nb
						case 1:
							e2 = nb
						}
						isNbrs++
					}
				}
				if !isMember {
					switch isNbrs {
					case 1:
						st.states.Set(u, semiext.StateAdjacent)
						st.isn.Set(u, e1)
					case 2:
						st.states.Set(u, semiext.StateAdjacent)
						st.isn.Set(u, e1, e2)
					}
				}
			}
			return nil
		},
	})
	setup.Add(pipeline.Pass{
		Name:     "two-k-collect-degrees",
		ReadOnly: true, // writes only the degree array no co-scheduled pass reads
		Batch: func(batch []gio.Record) error {
			for i := range batch {
				st.deg[batch[i].ID] = uint32(len(batch[i].Neighbors))
			}
			return nil
		},
	})
	if st.carry != nil {
		setup.Add(st.carry.pass("two-k-pre-swap-carry", twoKProduct))
	}
	if err := setup.Run(); err != nil {
		return nil, err
	}
	opts.tracePhase(0, "setup", st.states)

	res := newResult(n)
	sw := newSweeper(f, st.states, rn.sopts(opts.Unfused))
	stall := 0
	for round := 0; round < opts.MaxRounds; round++ {
		if opts.EarlyStopRounds > 0 && round >= opts.EarlyStopRounds {
			break
		}
		if err := rn.err(); err != nil {
			return nil, fmt.Errorf("core: two-k-swap: round %d: %w", round+1, err)
		}
		roundSnap := snapshot(f.Stats())
		canSwap, err := st.round(f, opts, rn, round+1, opts.lastByBudget(round), sw)
		if err != nil {
			return nil, err
		}
		res.RoundIO = append(res.RoundIO, statsDelta(f.Stats(), roundSnap))
		res.Rounds++
		newSize := st.states.CountIS()
		res.RoundGains = append(res.RoundGains, newSize-size)
		rn.hooks.round(RoundEvent{
			Round: res.Rounds,
			Gain:  newSize - size,
			Size:  newSize,
			IO:    res.RoundIO[len(res.RoundIO)-1],
		})
		if newSize == size {
			stall++
		} else {
			stall = 0
		}
		size = newSize
		if !canSwap || stall >= opts.StallRounds {
			break
		}
	}

	// Apply the sweep collected by the final post-swap scan — after the last
	// round's gain was counted — or pay the classic standalone sweep scan on
	// an unpredicted (stall) exit.
	if err := sw.finish(); err != nil {
		return nil, err
	}
	opts.tracePhase(res.Rounds, "sweep", st.states)

	res.collectIS(st.states)
	res.SCHighWater = st.scPeak
	res.MemoryBytes = st.states.MemoryBytes() + st.isn.MemoryBytes() +
		st.sc.MemoryBytes() + uint64(n)*4 /* deg */ + uint64(n)*8 /* groups */ +
		sw.buf.MemoryPeak()
	if st.carry != nil {
		res.MemoryBytes += st.carry.memoryBytes()
	}
	res.IO = statsDelta(f.Stats(), snap)
	return res, nil
}

// round executes the pre-swap, swap (validating) and post-swap passes,
// reporting whether any swap fired. When the previous scan carried the
// cross-round collection, the pre-swap and validating swap passes replay
// from memory and only the post-swap pass pays a physical scan; otherwise
// each runs as its classic dedicated scan. lastByBudget marks a round whose
// post-swap scan is known to be the run's last regardless of swap progress;
// the no-swap signal from the swap pass is the other way a final post-swap
// scan is recognized, and in either case the maximality sweep fuses into it
// — a non-final post-swap scan instead carries the next round's collection.
func (st *twoKState) round(f Source, opts SwapOptions, rn run, round int, lastByBudget bool, sw *sweeper) (bool, error) {
	st.groups = st.groups[:0]
	for i := range st.groupOf {
		st.groupOf[i] = -1
		st.groupOf2[i] = -1
	}
	st.sc.Reset()
	clear(st.seenPair)
	clear(st.seenOne)
	st.seenCount = 0

	if st.carry != nil && st.carry.ready() {
		// Replay both carried passes against the completed product of the
		// previous scan: pre-swap over the buffered A records, then the
		// validating swap pass over the resulting P vertices (from the same
		// buffer) interleaved with the R vertices in exact scan order. The
		// carried path honors cancellation like the dedicated scans would.
		if err := rn.err(); err != nil {
			return false, fmt.Errorf("core: two-k-swap: pre-swap (carried): %w", err)
		}
		pipeline.ResolveCarried(f)
		nbrSet := make(map[uint32]struct{})
		st.carry.forEach(func(u uint32, neighbors []uint32) {
			st.preSwapRecord(u, neighbors, nbrSet)
		})
		opts.tracePhase(round, "pre-swap", st.states)

		if err := rn.err(); err != nil {
			return false, fmt.Errorf("core: two-k-swap: swap (carried): %w", err)
		}
		pipeline.ResolveCarried(f)
		st.replaySwap()
		st.carry.reset()
	} else {
		pre := opts.scheduler(f, rn)
		pre.Add(st.preSwapPass())
		if err := pre.Run(); err != nil {
			return false, fmt.Errorf("core: two-k-swap: pre-swap: %w", err)
		}
		opts.tracePhase(round, "pre-swap", st.states)

		swap := opts.scheduler(f, rn)
		swap.Add(st.swapPass())
		if err := swap.Run(); err != nil {
			return false, fmt.Errorf("core: two-k-swap: swap: %w", err)
		}
	}
	canSwap := st.canSwap
	opts.tracePhase(round, "swap", st.states)

	post := opts.scheduler(f, rn)
	postPass := postSwapPass(st.states, st.isn, true)
	post.Add(postPass)
	switch {
	case !canSwap || lastByBudget:
		post.Add(sw.pass(postPass.Name))
	case st.carry != nil:
		post.Add(st.carry.pass("two-k-pre-swap-carry", postPass.Produces))
	}
	if err := post.Run(); err != nil {
		return false, fmt.Errorf("core: two-k-swap: post-swap: %w", err)
	}
	opts.tracePhase(round, "post-swap", st.states)
	return canSwap, nil
}

// preSwapPass builds Algorithm 4 — run for every A vertex in scan order —
// as a logical pass, the classic dedicated-scan form of preSwapRecord.
func (st *twoKState) preSwapPass() pipeline.Pass {
	nbrSet := make(map[uint32]struct{})
	return pipeline.Pass{
		Name:           "two-k-pre-swap",
		MutatesStates:  true,
		NeedsScanOrder: true,
		Batch: func(batch []gio.Record) error {
			for i := range batch {
				st.preSwapRecord(batch[i].ID, batch[i].Neighbors, nbrSet)
			}
			return nil
		},
	}
}

// preSwapRecord runs Algorithm 4 for one record. It is shared between the
// classic dedicated pre-swap scan and the cross-round replay, which both
// invoke it for every A vertex in scan order against the same completed
// post-swap state, making the two paths bit-identical. nbrSet is scratch
// storage reused across records.
func (st *twoKState) preSwapRecord(u uint32, neighbors []uint32, nbrSet map[uint32]struct{}) {
	if st.states.Get(u) != semiext.StateAdjacent {
		return
	}
	// Conflict (Algorithm 4 lines 3–4): a neighbor already holds P.
	for _, nb := range neighbors {
		if st.states.Get(nb) == semiext.StateProtected {
			st.states.Set(u, semiext.StateConflict)
			st.isn.Clear(u)
			return
		}
	}

	w1, w2, cnt := st.isn.Get(u)
	switch cnt {
	case 2:
		s1, s2 := st.states.Get(w1), st.states.Get(w2)
		switch {
		case s1 == semiext.StateIS && s2 == semiext.StateIS:
			clear(nbrSet)
			for _, nb := range neighbors {
				nbrSet[nb] = struct{}{}
			}
			if st.fireSkeleton(u, w1, w2, neighbors, nbrSet) {
				return
			}
			st.addCandidatePair(u, w1, w2, nbrSet)
		case s1 == semiext.StateRetrograde && s2 == semiext.StateRetrograde:
			// Algorithm 4 lines 11–12 generalized: all of u's IS
			// neighbors are leaving, so u joins. It may straddle two
			// different groups.
			st.promote(u, neighbors)
			st.join(u, w1)
			st.join(u, w2)
		}
		// One I, one R: u's remaining IS neighbor keeps it out.
	case 1:
		switch st.states.Get(w1) {
		case semiext.StateIS:
			// 1-2 swap skeleton via the witness counter (lines 9–10).
			x := uint32(0)
			for _, nb := range neighbors {
				if st.states.Get(nb) == semiext.StateAdjacent && st.isn.Has(nb, w1) {
					if _, _, c := st.isn.Get(nb); c == 1 {
						x++
					}
				}
			}
			if st.isn.PreimageCount(w1) >= x+2 {
				st.promote(u, neighbors)
				st.states.Set(w1, semiext.StateRetrograde)
				gi := st.newGroup(w1)
				st.groupOf[w1] = gi
				st.groupOf[u] = gi
			} else {
				// Singleton-ISN vertices feed the partner index but are
				// not SC-set members (Definition 2 requires a two-IS
				// neighborhood), so they do not count toward the SC
				// high-water mark.
				st.seenOne[w1] = append(st.seenOne[w1], u)
			}
		case semiext.StateRetrograde:
			// Join an already-fired swap (lines 11–12).
			st.promote(u, neighbors)
			st.join(u, w1)
		}
	}
}

// fireSkeleton looks for a 2-3 swap skeleton (a, b, u, w1, w2) using the SC
// pairs recorded for {w1, w2} (Algorithm 4 lines 5–8). The pair's internal
// non-adjacency was verified when it was added; adjacency to u is checked
// against u's in-hand neighbor set. Returns true when a skeleton fired.
func (st *twoKState) fireSkeleton(u, w1, w2 uint32, neighbors []uint32, nbrSet map[uint32]struct{}) bool {
	for _, p := range st.sc.Pairs(w1, w2) {
		if p.U == u || p.V == u {
			// u itself was recorded as an earlier vertex's partner; firing
			// with it would be a size-neutral 2↔2 exchange, not a gain.
			continue
		}
		if !st.validCandidate(p.U, w1, w2) || !st.validCandidate(p.V, w1, w2) {
			continue
		}
		if _, adj := nbrSet[p.U]; adj {
			continue
		}
		if _, adj := nbrSet[p.V]; adj {
			continue
		}
		// Fire: u drives, p.U and p.V are passengers.
		gi := st.newGroup(w1, w2)
		st.states.Set(w1, semiext.StateRetrograde)
		st.states.Set(w2, semiext.StateRetrograde)
		st.groupOf[w1] = gi
		st.groupOf[w2] = gi
		st.promote(u, neighbors)
		st.groupOf[u] = gi
		for _, m := range [2]uint32{p.U, p.V} {
			st.states.Set(m, semiext.StateProtected)
			st.isn.Clear(m)
			st.groupOf[m] = gi
		}
		st.sc.Free(w1, w2)
		delete(st.seenPair, pairKey(w1, w2))
		return true
	}
	return false
}

// validCandidate reports whether v is still an A vertex whose ISN is inside
// {w1, w2} — SC entries and seen lists are validated lazily.
func (st *twoKState) validCandidate(v, w1, w2 uint32) bool {
	if st.states.Get(v) != semiext.StateAdjacent {
		return false
	}
	a, b, c := st.isn.Get(v)
	switch c {
	case 1:
		return a == w1 || a == w2
	case 2:
		return (a == w1 || a == w2) && (b == w1 || b == w2)
	}
	return false
}

// addCandidatePair records (u, v) into SC(w1, w2) for the first eligible
// previously-scanned partner v (Algorithm 4 lines 1–2), and remembers u for
// future partners. Bucket size is capped at deg(w1)+deg(w2), the bound from
// Lemma 6's analysis.
func (st *twoKState) addCandidatePair(u, w1, w2 uint32, nbrSet map[uint32]struct{}) {
	key := pairKey(w1, w2)
	if capacity := int(st.deg[w1] + st.deg[w2]); len(st.sc.Pairs(w1, w2))*2 < capacity {
		if v, ok := st.findPartner(u, w1, w2, nbrSet); ok {
			st.sc.Add(w1, w2, u, v)
		}
	}
	st.seenPair[key] = append(st.seenPair[key], u)
	st.seenCount++
	if cur := st.sc.Size() + st.seenCount; cur > st.scPeak {
		st.scPeak = cur
	}
}

// findPartner returns a previously-scanned A vertex v with ISN ⊆ {w1, w2}
// that is not adjacent to u.
func (st *twoKState) findPartner(u, w1, w2 uint32, nbrSet map[uint32]struct{}) (uint32, bool) {
	try := func(list []uint32) (uint32, bool) {
		for _, v := range list {
			if v == u || !st.validCandidate(v, w1, w2) {
				continue
			}
			if _, adj := nbrSet[v]; adj {
				continue
			}
			return v, true
		}
		return 0, false
	}
	if v, ok := try(st.seenPair[pairKey(w1, w2)]); ok {
		return v, true
	}
	if v, ok := try(st.seenOne[w1]); ok {
		return v, true
	}
	return try(st.seenOne[w2])
}

// promote marks u as P and eagerly demotes its A neighbors to C: u's
// adjacency list is in hand exactly now, and every invalidated neighbor must
// stop being a viable SC candidate before a later skeleton could pull it in
// next to u.
func (st *twoKState) promote(u uint32, neighbors []uint32) {
	st.states.Set(u, semiext.StateProtected)
	st.isn.Clear(u)
	for _, nb := range neighbors {
		if st.states.Get(nb) == semiext.StateAdjacent {
			st.states.Set(nb, semiext.StateConflict)
			st.isn.Clear(nb)
		}
	}
}

// join appends u to the group of the leaving IS vertex w.
func (st *twoKState) join(u, w uint32) {
	gi := st.groupOf[w]
	if gi < 0 {
		// w left the set without a registered group (defensive; should not
		// happen). Register w in a fresh group so validation still covers
		// both u and w — the swap replay discovers R vertices through the
		// groups' ws lists, so w must appear there.
		gi = st.newGroup(w)
		st.groupOf[w] = gi
	}
	if st.groupOf[u] < 0 {
		st.groupOf[u] = gi
	} else if st.groupOf[u] != gi && st.groupOf2[u] < 0 {
		st.groupOf2[u] = gi
	}
}

func (st *twoKState) newGroup(ws ...uint32) int32 {
	st.groups = append(st.groups, swapGroup{ws: append([]uint32(nil), ws...)})
	return int32(len(st.groups) - 1)
}

// swapPass builds the swap phase as a validating sequential logical pass:
// P vertices are confirmed to I unless an I neighbor shows a cross-group
// passenger collision, in which case the whole group rolls back; R vertices
// leave the set unless their group failed. The pass records into st.canSwap
// whether any R vertex actually left.
func (st *twoKState) swapPass() pipeline.Pass {
	st.canSwap = false
	return pipeline.Pass{
		Name:           "two-k-swap-validate",
		MutatesStates:  true,
		NeedsScanOrder: true,
		Batch: func(batch []gio.Record) error {
			for i := range batch {
				r := &batch[i]
				switch st.states.Get(r.ID) {
				case semiext.StateProtected:
					st.swapValidateP(r.ID, r.Neighbors)
				case semiext.StateRetrograde:
					st.swapValidateR(r.ID)
				}
			}
			return nil
		},
	}
}

// swapValidateP confirms or demotes one P vertex: it joins the set unless
// its group already failed or an IS neighbor shows a cross-group passenger
// collision, in which case its group(s) roll back. Shared between the
// dedicated swap scan and the cross-round replay.
func (st *twoKState) swapValidateP(u uint32, neighbors []uint32) {
	if st.groupFailed(u) {
		st.states.Set(u, semiext.StateConflict)
		return
	}
	for _, nb := range neighbors {
		if st.states.Get(nb) == semiext.StateIS {
			// Cross-group passenger collision: nb was promoted earlier in
			// this scan next to u. Demote u and roll its group(s) back.
			st.states.Set(u, semiext.StateConflict)
			st.fail(st.groupOf[u])
			st.fail(st.groupOf2[u])
			return
		}
	}
	st.states.Set(u, semiext.StateIS)
	st.confirm(u)
}

// swapValidateR resolves one R vertex: reinstated if its group failed,
// otherwise it leaves the set and the round counts as having swapped.
func (st *twoKState) swapValidateR(u uint32) {
	if gi := st.groupOf[u]; gi >= 0 && st.groups[gi].failed {
		st.states.Set(u, semiext.StateIS) // reinstated
	} else {
		st.states.Set(u, semiext.StateNonIS)
		st.canSwap = true
	}
}

// replaySwap runs the validating swap pass from the cross-round carry
// instead of a dedicated scan. Every P vertex was an A vertex when the
// carry was collected, so its adjacency list is in the buffer; the R
// vertices (IS vertices demoted by the pre-swap replay, registered in their
// swap groups) carry no adjacency reads but their position in the scan
// matters — a group's failure mid-scan decides whether a later-scanned R
// leaves or is reinstated, and whether its departure counts toward canSwap
// — so they are interleaved with the buffered records in exact scan order
// via the collector's scan-position table.
func (st *twoKState) replaySwap() {
	st.canSwap = false
	c := st.carry
	type rv struct{ pos, v uint32 }
	var rs []rv
	for _, g := range st.groups {
		for _, w := range g.ws {
			if st.states.Get(w) == semiext.StateRetrograde {
				rs = append(rs, rv{c.scanPos[w], w})
			}
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].pos < rs[j].pos })

	ri := 0
	for i := 0; i < c.buf.Len(); i++ {
		for ri < len(rs) && rs[ri].pos < c.buf.Pos(i) {
			if st.states.Get(rs[ri].v) == semiext.StateRetrograde {
				st.swapValidateR(rs[ri].v)
			}
			ri++
		}
		if u := c.buf.ID(i); st.states.Get(u) == semiext.StateProtected {
			st.swapValidateP(u, c.buf.Neighbors(i))
		}
	}
	for ; ri < len(rs); ri++ {
		if st.states.Get(rs[ri].v) == semiext.StateRetrograde {
			st.swapValidateR(rs[ri].v)
		}
	}
}

func (st *twoKState) groupFailed(u uint32) bool {
	if gi := st.groupOf[u]; gi >= 0 && st.groups[gi].failed {
		return true
	}
	if gi := st.groupOf2[u]; gi >= 0 && st.groups[gi].failed {
		return true
	}
	return false
}

func (st *twoKState) confirm(u uint32) {
	if gi := st.groupOf[u]; gi >= 0 {
		st.groups[gi].confirmed = append(st.groups[gi].confirmed, u)
	}
	if gi := st.groupOf2[u]; gi >= 0 {
		st.groups[gi].confirmed = append(st.groups[gi].confirmed, u)
	}
}

// fail rolls a group back: members already confirmed are demoted to C and
// the group's leaving IS vertices are reinstated. Cross-group P–R adjacency
// is impossible (an A vertex's IS neighbors are exactly its ISN set, and an
// IS vertex is demoted by at most one skeleton per round), so reinstating
// the ws cannot collide with any other group's confirmed members.
func (st *twoKState) fail(gi int32) {
	if gi < 0 || st.groups[gi].failed {
		return
	}
	g := &st.groups[gi]
	g.failed = true
	for _, m := range g.confirmed {
		st.states.Set(m, semiext.StateConflict)
	}
	for _, w := range g.ws {
		st.states.Set(w, semiext.StateIS)
	}
}
