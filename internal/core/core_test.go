package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/plrg"
)

// writeFile writes g under t.TempDir and opens it, degree-sorted or in
// vertex-ID order.
func writeFile(t *testing.T, g *graph.Graph, sorted bool) *gio.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.adj")
	var err error
	if sorted {
		err = gio.WriteGraphSorted(path, g, nil)
	} else {
		err = gio.WriteGraph(path, g, nil, 0, nil)
	}
	if err != nil {
		t.Fatalf("write graph: %v", err)
	}
	f, err := gio.Open(path, 0, &gio.Counters{})
	if err != nil {
		t.Fatalf("open graph: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func mustIndependent(t *testing.T, f *gio.File, in []bool) {
	t.Helper()
	if err := VerifyIndependent(f, in); err != nil {
		t.Fatalf("independence violated: %v", err)
	}
}

func mustMaximal(t *testing.T, f *gio.File, in []bool) {
	t.Helper()
	if err := VerifyMaximal(f, in); err != nil {
		t.Fatalf("maximality violated: %v", err)
	}
}

func members(n int, vs ...uint32) []bool {
	in := make([]bool, n)
	for _, v := range vs {
		in[v] = true
	}
	return in
}

func TestGreedyFigure1Sorted(t *testing.T) {
	// Degree order visits the degree-0/1 vertices v2..v5 first, recovering
	// the maximum independent set {v2, v3, v4, v5}.
	f := writeFile(t, plrg.Figure1(), true)
	r, err := Greedy(f)
	if err != nil {
		t.Fatal(err)
	}
	mustIndependent(t, f, r.InSet)
	mustMaximal(t, f, r.InSet)
	if r.Size != 4 {
		t.Fatalf("greedy on sorted Figure 1: size %d, want 4", r.Size)
	}
	if r.InSet[0] {
		t.Fatal("v1 should not be in the maximum set")
	}
}

func TestBaselineFigure1Unsorted(t *testing.T) {
	// Vertex-ID order visits the hub v1 first and gets stuck with the
	// maximal-but-not-maximum {v1, v2} — the paper's Figure 1 narrative.
	f := writeFile(t, plrg.Figure1(), false)
	r, err := Baseline(f)
	if err != nil {
		t.Fatal(err)
	}
	mustIndependent(t, f, r.InSet)
	mustMaximal(t, f, r.InSet)
	if r.Size != 2 {
		t.Fatalf("baseline on unsorted Figure 1: size %d, want 2", r.Size)
	}
	if !r.InSet[0] || !r.InSet[1] {
		t.Fatalf("baseline should pick {v1,v2}, got %v", r.Vertices())
	}
}

func TestGreedyScanCount(t *testing.T) {
	g := plrg.PowerLawN(500, 2.0, 1)
	f := writeFile(t, g, true)
	r, err := Greedy(f)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim is about physical passes: greedy reads the file
	// exactly once. The marking pass and the fused degree/stat rider are two
	// logical passes sharing that one scan.
	if r.IO.PhysicalScans != 1 {
		t.Fatalf("greedy used %d physical scans, want exactly 1", r.IO.PhysicalScans)
	}
	if r.IO.Scans != 2 {
		t.Fatalf("greedy counted %d logical scans, want 2 (marking + degree stats)", r.IO.Scans)
	}
	if r.Degrees.Sum != uint64(2*g.NumEdges()) {
		t.Fatalf("degree rider: Sum = %d, want %d", r.Degrees.Sum, 2*g.NumEdges())
	}
	if r.Degrees.Max == 0 {
		t.Fatal("degree rider: Max = 0 on a power-law graph")
	}
}

func TestOneKSwapFigure2(t *testing.T) {
	// Initial set {v1, v4}; the two 1-2 swaps conflict through edge v3–v6,
	// so exactly one fires and the set grows from 2 to 3.
	g := plrg.Figure2()
	f := writeFile(t, g, true)
	r, err := OneKSwap(f, members(6, 0, 3), SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustIndependent(t, f, r.InSet)
	mustMaximal(t, f, r.InSet)
	if r.Size != 3 {
		t.Fatalf("one-k-swap on Figure 2: size %d, want 3", r.Size)
	}
}

func TestOneKSwapRejectsDependentInput(t *testing.T) {
	f := writeFile(t, plrg.Path(4), true)
	if _, err := OneKSwap(f, members(4, 0, 1), SwapOptions{}); err == nil {
		t.Fatal("expected error for non-independent initial set")
	}
	if _, err := TwoKSwap(f, members(4, 0, 1), SwapOptions{}); err == nil {
		t.Fatal("expected error for non-independent initial set (two-k)")
	}
}

func TestOneKSwapCascade(t *testing.T) {
	// Figure 5: the cascade-swap graph forces one 1-2 swap per round, so a
	// k-group cascade needs k rounds (plus the terminating round).
	for _, k := range []int{2, 3, 5, 8} {
		g := plrg.Cascade(k)
		f := writeFile(t, g, true)
		init := members(3*k, plrg.CascadeCenters(k)...)
		r, err := OneKSwap(f, init, SwapOptions{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		mustIndependent(t, f, r.InSet)
		mustMaximal(t, f, r.InSet)
		if r.Size != 2*k {
			t.Fatalf("k=%d: size %d, want %d (all leaves)", k, r.Size, 2*k)
		}
		if r.Rounds < k {
			t.Fatalf("k=%d: converged in %d rounds, cascade needs ≥ %d", k, r.Rounds, k)
		}
	}
}

func TestTwoKSwapFigure7(t *testing.T) {
	// Initial set {v1, v2, v3}; a 2-4 swap exchanges {v2, v3} for
	// {v4, v5, v6, v8} while v7 conflicts, ending at size 5.
	g := plrg.Figure7()
	f := writeFile(t, g, true)
	r, err := TwoKSwap(f, members(8, 0, 1, 2), SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustIndependent(t, f, r.InSet)
	mustMaximal(t, f, r.InSet)
	if r.Size != 5 {
		t.Fatalf("two-k-swap on Figure 7: size %d, want 5", r.Size)
	}
	if r.InSet[6] {
		t.Fatal("v7 must stay outside (it conflicts and is covered by v1)")
	}
}

func TestSwapNeverShrinks(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(70)
		m := n * (1 + rng.Intn(4))
		g := plrg.ErdosRenyi(n, m, seed)
		f := writeFile(t, g, true)
		greedy, err := Greedy(f)
		if err != nil {
			t.Fatal(err)
		}
		one, err := OneKSwap(f, greedy.InSet, SwapOptions{})
		if err != nil {
			t.Fatal(err)
		}
		two, err := TwoKSwap(f, greedy.InSet, SwapOptions{})
		if err != nil {
			t.Fatal(err)
		}
		mustIndependent(t, f, one.InSet)
		mustMaximal(t, f, one.InSet)
		mustIndependent(t, f, two.InSet)
		mustMaximal(t, f, two.InSet)
		if one.Size < greedy.Size {
			t.Fatalf("seed %d: one-k-swap shrank %d → %d", seed, greedy.Size, one.Size)
		}
		if two.Size < greedy.Size {
			t.Fatalf("seed %d: two-k-swap shrank %d → %d", seed, greedy.Size, two.Size)
		}
	}
}

func TestSwapOnPowerLawGraphs(t *testing.T) {
	for _, beta := range []float64{1.8, 2.2, 2.6} {
		for seed := int64(1); seed <= 3; seed++ {
			g := plrg.PowerLawN(800, beta, seed)
			f := writeFile(t, g, true)
			greedy, err := Greedy(f)
			if err != nil {
				t.Fatal(err)
			}
			one, err := OneKSwap(f, greedy.InSet, SwapOptions{})
			if err != nil {
				t.Fatal(err)
			}
			two, err := TwoKSwap(f, greedy.InSet, SwapOptions{})
			if err != nil {
				t.Fatal(err)
			}
			mustIndependent(t, f, one.InSet)
			mustMaximal(t, f, one.InSet)
			mustIndependent(t, f, two.InSet)
			mustMaximal(t, f, two.InSet)
			if one.Size < greedy.Size || two.Size < greedy.Size {
				t.Fatalf("beta=%.1f seed=%d: swaps shrank the set", beta, seed)
			}
		}
	}
}

func TestExternalMaximalMatchesBaselineOrder(t *testing.T) {
	// On a vertex-ID-ordered file, time-forward processing is first-fit in
	// ID order — identical to the Baseline greedy.
	for seed := int64(0); seed < 5; seed++ {
		g := plrg.ErdosRenyi(60, 150, seed)
		f := writeFile(t, g, false)
		ext, err := ExternalMaximal(f, ExternalMaximalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		base, err := Baseline(f)
		if err != nil {
			t.Fatal(err)
		}
		mustIndependent(t, f, ext.InSet)
		mustMaximal(t, f, ext.InSet)
		if ext.Size != base.Size {
			t.Fatalf("seed %d: external=%d baseline=%d", seed, ext.Size, base.Size)
		}
		for v := range ext.InSet {
			if ext.InSet[v] != base.InSet[v] {
				t.Fatalf("seed %d: sets differ at vertex %d", seed, v)
			}
		}
	}
}

func TestExternalMaximalSpills(t *testing.T) {
	// A tiny PQ buffer forces disk spills without changing the answer.
	g := plrg.PowerLawN(400, 2.0, 7)
	f := writeFile(t, g, false)
	small, err := ExternalMaximal(f, ExternalMaximalOptions{PQMemoryCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	big, err := ExternalMaximal(f, ExternalMaximalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if small.Size != big.Size {
		t.Fatalf("spilling changed the result: %d vs %d", small.Size, big.Size)
	}
	mustIndependent(t, f, small.InSet)
	mustMaximal(t, f, small.InSet)
}

func TestDynamicUpdate(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := plrg.ErdosRenyi(80, 200, seed)
		r := DynamicUpdate(g)
		if err := VerifyIndependentGraph(g, r.InSet); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := VerifyMaximalGraph(g, r.InSet); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestDynamicUpdateKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"star", plrg.Star(9), 9},
		{"path10", plrg.Path(10), 5},
		{"complete6", plrg.Complete(6), 1},
		{"cycle8", plrg.Cycle(8), 4},
	}
	for _, c := range cases {
		r := DynamicUpdate(c.g)
		if r.Size != c.want {
			t.Errorf("%s: DynamicUpdate size %d, want %d", c.name, r.Size, c.want)
		}
	}
}

func TestExactKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"empty", graph.NewBuilder(5).Build(), 5},
		{"path5", plrg.Path(5), 3},
		{"cycle5", plrg.Cycle(5), 2},
		{"cycle6", plrg.Cycle(6), 3},
		{"complete6", plrg.Complete(6), 1},
		{"star7", plrg.Star(7), 7},
		{"grid3x3", plrg.Grid(3, 3), 5},
		{"grid4x4", plrg.Grid(4, 4), 8},
		{"figure1", plrg.Figure1(), 4},
	}
	for _, c := range cases {
		got, err := Exact(c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: exact independence number %d, want %d", c.name, got, c.want)
		}
		in, size, err := ExactSet(c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if size != c.want {
			t.Errorf("%s: ExactSet size %d, want %d", c.name, size, c.want)
		}
		if err := VerifyIndependentGraph(c.g, in); err != nil {
			t.Errorf("%s: ExactSet not independent: %v", c.name, err)
		}
	}
}

func TestExactRejectsLargeGraph(t *testing.T) {
	if _, err := Exact(plrg.Path(65)); err == nil {
		t.Fatal("expected error for 65-vertex graph")
	}
}

func TestUpperBoundDominatesExact(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(30)
		m := rng.Intn(3 * n)
		g := plrg.ErdosRenyi(n, m, seed)
		f := writeFile(t, g, true)
		bound, err := UpperBound(f)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(exact) > bound {
			t.Fatalf("seed %d: exact %d exceeds Algorithm 5 bound %d", seed, exact, bound)
		}
	}
}

func TestAllAlgorithmsOnDenseAndSparse(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"dense":    plrg.ErdosRenyi(40, 400, 3),
		"sparse":   plrg.ErdosRenyi(200, 100, 3),
		"plrg":     plrg.PowerLawN(300, 2.0, 3),
		"isolated": graph.NewBuilder(10).Build(),
		"single":   graph.NewBuilder(1).Build(),
		"empty":    graph.NewBuilder(0).Build(),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			f := writeFile(t, g, true)
			greedy, err := Greedy(f)
			if err != nil {
				t.Fatal(err)
			}
			mustIndependent(t, f, greedy.InSet)
			mustMaximal(t, f, greedy.InSet)
			one, err := OneKSwap(f, greedy.InSet, SwapOptions{})
			if err != nil {
				t.Fatal(err)
			}
			two, err := TwoKSwap(f, greedy.InSet, SwapOptions{})
			if err != nil {
				t.Fatal(err)
			}
			mustIndependent(t, f, one.InSet)
			mustIndependent(t, f, two.InSet)
			mustMaximal(t, f, one.InSet)
			mustMaximal(t, f, two.InSet)
			ext, err := ExternalMaximal(f, ExternalMaximalOptions{})
			if err != nil {
				t.Fatal(err)
			}
			mustIndependent(t, f, ext.InSet)
			mustMaximal(t, f, ext.InSet)
		})
	}
}

func TestSwapFromEmptyInitialSet(t *testing.T) {
	// An empty initial set is valid: everything is N, the post-swap 0-1
	// phase plus the maximality sweep must still deliver a maximal set.
	g := plrg.PowerLawN(200, 2.0, 5)
	f := writeFile(t, g, true)
	empty := make([]bool, f.NumVertices())
	r, err := OneKSwap(f, empty, SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustIndependent(t, f, r.InSet)
	mustMaximal(t, f, r.InSet)
	if r.Size == 0 {
		t.Fatal("one-k-swap from empty set produced nothing")
	}
	r2, err := TwoKSwap(f, empty, SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustIndependent(t, f, r2.InSet)
	mustMaximal(t, f, r2.InSet)
}

func TestEarlyStopRounds(t *testing.T) {
	g := plrg.Cascade(10)
	f := writeFile(t, g, true)
	init := members(30, plrg.CascadeCenters(10)...)
	r, err := OneKSwap(f, init, SwapOptions{EarlyStopRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Rounds > 3 {
		t.Fatalf("early stop at 3 ran %d rounds", r.Rounds)
	}
	mustIndependent(t, f, r.InSet)
	mustMaximal(t, f, r.InSet) // the final sweep keeps the result maximal
}

func TestRoundGainsMonotoneSize(t *testing.T) {
	g := plrg.PowerLawN(600, 1.9, 11)
	f := writeFile(t, g, true)
	greedy, err := Greedy(f)
	if err != nil {
		t.Fatal(err)
	}
	r, err := TwoKSwap(f, greedy.InSet, SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for i, gain := range r.RoundGains {
		if gain < 0 {
			t.Fatalf("round %d lost %d vertices; size must never decrease", i+1, -gain)
		}
		sum += gain
	}
	if greedy.Size+sum > r.Size {
		t.Fatalf("round gains %d on greedy %d exceed final size %d", sum, greedy.Size, r.Size)
	}
}
