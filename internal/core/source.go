package core

import "repro/internal/gio"

// Source is the scan engine an algorithm pass reads the graph through: one
// full sequential pass per ForEachBatch call, batches delivered in scan
// order on the calling goroutine. Both *gio.File (the sequential engine and
// oracle) and *exec.Executor (the parallel partitioned executor) satisfy it,
// and because the executor merges partitions back into scan order, a pass is
// oblivious to which one it runs on — results are bit-identical by
// construction, which the exec parity tests enforce.
type Source interface {
	// NumVertices returns the vertex count from the file header.
	NumVertices() int
	// Stats returns the shared I/O counters, which may be nil.
	Stats() *gio.Counters
	// ForEachBatch runs one full scan, invoking fn for every decoded batch
	// of records in scan order. fn must not retain a batch.
	ForEachBatch(fn func([]gio.Record) error) error
	// ForEach runs one full scan, invoking fn for every record in scan
	// order. fn must not retain the record's Neighbors slice.
	ForEach(fn func(gio.Record) error) error
}
