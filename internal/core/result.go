// Package core implements the paper's algorithms: the semi-external Greedy
// (Algorithm 1), the one-k-swap (Algorithm 2) and two-k-swap (Algorithms 3
// and 4) improvement procedures, the independence-number upper bound
// (Algorithm 5), and the three competitors evaluated in Section 7 —
// Baseline (Greedy without degree sorting), DynamicUpdate (the classical
// in-memory greedy), and an external maximal-IS baseline in the style of
// Zeh's time-forward processing (the paper's "STXXL" entry).
//
// All semi-external algorithms read the graph only through sequential scans
// of a gio.File and keep O(|V|) bytes of state in memory.
package core

import (
	"repro/internal/gio"
	"repro/internal/semiext"
)

// Result reports an independent set together with the accounting the
// paper's experiments need.
type Result struct {
	// InSet marks membership by vertex ID.
	InSet []bool
	// Size is the number of vertices in the set.
	Size int
	// Rounds is the number of swap rounds executed (swap algorithms only).
	Rounds int
	// RoundGains is the number of net-new IS vertices added per round
	// (Table 8's early-stop measurements). Empty for non-swap algorithms.
	RoundGains []int
	// RoundIO is the I/O performed by each swap round (pre-swap through
	// post-swap, aligned with RoundGains; the setup scan is charged to no
	// round). With cross-round fusion a steady-state round shows one
	// physical scan and one or two carried logical scans — the pre-swap
	// (and, for two-k-swap, swap-validation) work that rode the previous
	// round's post-swap pass. Empty for non-swap algorithms.
	RoundIO []gio.Stats
	// MemoryBytes is the in-memory footprint of the algorithm's auxiliary
	// structures (state array, ISN, SC, queues) at their high-water mark.
	MemoryBytes uint64
	// SCHighWater is the peak number of vertices in SC sets (two-k-swap
	// only; Figure 10).
	SCHighWater int
	// Degrees summarizes the degree sequence, collected by a read-only
	// logical pass fused into Greedy's marking scan — the Table 4 numbers
	// without a dedicated scan. Zero-valued for the other algorithms.
	Degrees DegreeStats
	// IO is the I/O accounting for the run (scans, bytes); zero-valued when
	// the algorithm is in-memory.
	IO gio.Stats
}

// DegreeStats summarizes a file's degree sequence as observed by one scan.
type DegreeStats struct {
	// Max is the largest degree.
	Max uint32
	// Isolated counts zero-degree vertices.
	Isolated int
	// Sum is the directed degree sum, i.e. 2·|E|.
	Sum uint64
}

// Vertices returns the members of the set in ascending ID order.
func (r *Result) Vertices() []uint32 {
	out := make([]uint32, 0, r.Size)
	for v, in := range r.InSet {
		if in {
			out = append(out, uint32(v))
		}
	}
	return out
}

// Clone returns a deep copy (useful when a result seeds a swap algorithm
// that mutates membership).
func (r *Result) Clone() *Result {
	c := *r
	c.InSet = make([]bool, len(r.InSet))
	copy(c.InSet, r.InSet)
	c.RoundGains = append([]int(nil), r.RoundGains...)
	c.RoundIO = append([]gio.Stats(nil), r.RoundIO...)
	return &c
}

func newResult(n int) *Result {
	return &Result{InSet: make([]bool, n)}
}

// collectIS copies the IS members of a state array into the result.
func (r *Result) collectIS(states semiext.States) {
	for v := 0; v < states.Len(); v++ {
		if states.Get(uint32(v)) == semiext.StateIS {
			r.InSet[v] = true
			r.Size++
		}
	}
}

// setFromMembers builds membership from a vertex list.
func setFromMembers(n int, members []uint32) []bool {
	in := make([]bool, n)
	for _, v := range members {
		in[v] = true
	}
	return in
}

// statsDelta captures the I/O performed between snap and now.
func statsDelta(stats *gio.Counters, snap gio.Stats) gio.Stats {
	if stats == nil {
		return gio.Stats{}
	}
	return stats.Snapshot().Sub(snap)
}

func snapshot(stats *gio.Counters) gio.Stats {
	if stats == nil {
		return gio.Stats{}
	}
	return stats.Snapshot()
}
