package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// treeMIS computes the exact independence number of a tree (or forest) with
// the classical two-state DP, giving the tests an exact oracle far beyond
// the 64-vertex branch-and-bound limit.
func treeMIS(g *graph.Graph) int {
	n := g.NumVertices()
	visited := make([]bool, n)
	incl := make([]int, n) // best including v
	excl := make([]int, n) // best excluding v
	total := 0
	type frame struct {
		v      uint32
		parent uint32
		stage  int
	}
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		stack := []frame{{uint32(root), ^uint32(0), 0}}
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			if fr.stage == 0 {
				visited[fr.v] = true
				incl[fr.v], excl[fr.v] = 1, 0
				fr.stage = 1
				for _, c := range g.Neighbors(fr.v) {
					if c != fr.parent {
						stack = append(stack, frame{c, fr.v, 0})
					}
				}
				continue
			}
			v, parent := fr.v, fr.parent
			stack = stack[:len(stack)-1]
			if parent != ^uint32(0) {
				incl[parent] += excl[v]
				if incl[v] > excl[v] {
					excl[parent] += incl[v]
				} else {
					excl[parent] += excl[v]
				}
			} else {
				if incl[v] > excl[v] {
					total += incl[v]
				} else {
					total += excl[v]
				}
			}
		}
	}
	return total
}

// randomTree returns a uniformly labeled random tree on n vertices via a
// random attachment process.
func randomTree(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(uint32(v), uint32(rng.Intn(v)))
	}
	return b.Build()
}

func TestTreeOracleAgreesWithExact(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomTree(20, seed)
		exact, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		if dp := treeMIS(g); dp != exact {
			t.Fatalf("seed %d: tree DP %d, exact %d", seed, dp, exact)
		}
	}
	// Known cases: a path of n vertices has independence number ⌈n/2⌉.
	path := func(n int) *graph.Graph {
		b := graph.NewBuilder(n)
		for i := 0; i+1 < n; i++ {
			b.AddEdge(uint32(i), uint32(i+1))
		}
		return b.Build()
	}
	for _, n := range []int{1, 2, 7, 100} {
		if got := treeMIS(path(n)); got != (n+1)/2 {
			t.Fatalf("path %d: DP = %d, want %d", n, got, (n+1)/2)
		}
	}
}

func TestSwapsNearOptimalOnTrees(t *testing.T) {
	// Trees at a scale the branch-and-bound oracle cannot reach: the DP
	// gives exact optima, Algorithm 5's bound must dominate them, and the
	// swap pipeline must land close to them.
	for seed := int64(0); seed < 5; seed++ {
		n := 2000
		g := randomTree(n, seed)
		f := writeFile(t, g, true)
		exact := treeMIS(g)

		bound, err := UpperBound(f)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(exact) > bound {
			t.Fatalf("seed %d: exact %d exceeds bound %d", seed, exact, bound)
		}

		greedy, err := Greedy(f)
		if err != nil {
			t.Fatal(err)
		}
		two, err := TwoKSwap(f, greedy.InSet, SwapOptions{})
		if err != nil {
			t.Fatal(err)
		}
		mustIndependent(t, f, two.InSet)
		mustMaximal(t, f, two.InSet)
		if two.Size > exact {
			t.Fatalf("seed %d: result %d exceeds the optimum %d", seed, two.Size, exact)
		}
		if ratio := float64(two.Size) / float64(exact); ratio < 0.95 {
			t.Fatalf("seed %d: two-k-swap at %.3f of the tree optimum (%d/%d)",
				seed, ratio, two.Size, exact)
		}
	}
}

func TestVertexCover(t *testing.T) {
	g := randomTree(200, 1)
	f := writeFile(t, g, true)
	greedy, err := Greedy(f)
	if err != nil {
		t.Fatal(err)
	}
	cover := VertexCover(greedy.InSet)
	if err := VerifyVertexCover(f, cover); err != nil {
		t.Fatal(err)
	}
	// A broken cover must be rejected.
	for v := range cover {
		if cover[v] {
			cover[v] = false
			break
		}
	}
	// Removing one cover vertex leaves some edge uncovered unless the
	// vertex was isolated; trees have no isolated vertices.
	if err := VerifyVertexCover(f, cover); err == nil {
		t.Fatal("expected uncovered edge after removing a cover vertex")
	}
}

func TestWeiBound(t *testing.T) {
	// Star: 1/(k+1) + k/2. Exact independence number is k, and Wei's bound
	// must be below it but above 1.
	g := writeFile(t, graph.FromEdges(5, [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {0, 4}}), true)
	w, err := WeiBound(g)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0/5.0 + 4.0/2.0
	if w != want {
		t.Fatalf("Wei bound = %f, want %f", w, want)
	}
	// On every graph, greedy (maximal) must reach at least Wei's bound.
	for seed := int64(0); seed < 5; seed++ {
		tr := randomTree(500, seed)
		f := writeFile(t, tr, true)
		wb, err := WeiBound(f)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Greedy(f)
		if err != nil {
			t.Fatal(err)
		}
		if float64(r.Size) < wb-1e-9 {
			t.Fatalf("seed %d: greedy %d below Wei bound %f", seed, r.Size, wb)
		}
	}
}
