package core

import (
	"fmt"

	"repro/internal/gio"
)

// VertexCover returns the complement of an independent set as a vertex
// cover, the dual the paper's conclusion points at: if S is independent,
// every edge has at most one endpoint in S, hence at least one in V \ S.
// The cover is minimal iff the independent set is maximal.
func VertexCover(inSet []bool) []bool {
	cover := make([]bool, len(inSet))
	for v, in := range inSet {
		cover[v] = !in
	}
	return cover
}

// VerifyVertexCover checks with one sequential scan that every edge of f
// has at least one endpoint in the cover.
func VerifyVertexCover(f *gio.File, cover []bool) error {
	if len(cover) != f.NumVertices() {
		return fmt.Errorf("core: verify cover: %d entries for %d vertices", len(cover), f.NumVertices())
	}
	return f.ForEach(func(r gio.Record) error {
		if cover[r.ID] {
			return nil
		}
		for _, nb := range r.Neighbors {
			if !cover[nb] {
				return fmt.Errorf("core: edge {%d,%d} uncovered", r.ID, nb)
			}
		}
		return nil
	})
}

// WeiBound returns Wei's lower bound on the independence number,
// Σ_v 1/(deg(v)+1), computed with one sequential scan. Every graph has an
// independent set at least this large (Wei 1981, cited as [25]); it is a
// useful sanity floor under the algorithms' results.
func WeiBound(f *gio.File) (float64, error) {
	var sum float64
	err := f.ForEach(func(r gio.Record) error {
		sum += 1.0 / float64(len(r.Neighbors)+1)
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("core: wei bound: %w", err)
	}
	return sum, nil
}
