package core

import (
	"context"
	"fmt"

	"repro/internal/gio"
	"repro/internal/pipeline"
)

// VertexCover returns the complement of an independent set as a vertex
// cover, the dual the paper's conclusion points at: if S is independent,
// every edge has at most one endpoint in S, hence at least one in V \ S.
// The cover is minimal iff the independent set is maximal.
func VertexCover(inSet []bool) []bool {
	cover := make([]bool, len(inSet))
	for v, in := range inSet {
		cover[v] = !in
	}
	return cover
}

// VerifyVertexCover checks with one sequential scan that every edge of f
// has at least one endpoint in the cover.
func VerifyVertexCover(f Source, cover []bool) error {
	return VerifyVertexCoverCtx(context.Background(), f, cover, Hooks{})
}

// VerifyVertexCoverCtx is VerifyVertexCover bound to a context and run
// hooks. Like the other verify passes it records only the first violation
// in scan order and opts out of the rest of the stream.
func VerifyVertexCoverCtx(ctx context.Context, f Source, cover []bool, h Hooks) error {
	if len(cover) != f.NumVertices() {
		return fmt.Errorf("core: verify cover: %d entries for %d vertices", len(cover), f.NumVertices())
	}
	var firstErr error
	s := pipeline.New(f, newRun(ctx, h).sopts(false))
	s.Add(pipeline.Pass{
		Name: "verify-vertex-cover",
		Batch: func(batch []gio.Record) error {
			for i := range batch {
				r := &batch[i]
				if cover[r.ID] {
					continue
				}
				for _, nb := range r.Neighbors {
					if !cover[nb] {
						firstErr = fmt.Errorf("core: edge {%d,%d} uncovered", r.ID, nb)
						return pipeline.ErrStopScan
					}
				}
			}
			return nil
		},
		Done: func() error { return firstErr },
	})
	return s.Run()
}

// WeiBound returns Wei's lower bound on the independence number,
// Σ_v 1/(deg(v)+1), computed with one sequential scan. Every graph has an
// independent set at least this large (Wei 1981, cited as [25]); it is a
// useful sanity floor under the algorithms' results.
func WeiBound(f Source) (float64, error) {
	return WeiBoundCtx(context.Background(), f, Hooks{})
}

// WeiBoundCtx is WeiBound bound to a context and run hooks.
func WeiBoundCtx(ctx context.Context, f Source, h Hooks) (float64, error) {
	var sum float64
	s := pipeline.New(f, newRun(ctx, h).sopts(false))
	s.Add(pipeline.Pass{
		Name:     "wei-bound",
		ReadOnly: true, // the running sum is pass-private
		Batch: func(batch []gio.Record) error {
			for i := range batch {
				sum += 1.0 / float64(len(batch[i].Neighbors)+1)
			}
			return nil
		},
	})
	if err := s.Run(); err != nil {
		return 0, fmt.Errorf("core: wei bound: %w", err)
	}
	return sum, nil
}
