package core

import (
	"fmt"

	"repro/internal/gio"
	"repro/internal/graph"
)

// VerifyIndependent checks, with one sequential scan, that no edge of f has
// both endpoints in the set.
func VerifyIndependent(f Source, inSet []bool) error {
	if len(inSet) != f.NumVertices() {
		return fmt.Errorf("core: verify: set has %d entries for %d vertices", len(inSet), f.NumVertices())
	}
	return f.ForEach(func(r gio.Record) error {
		if !inSet[r.ID] {
			return nil
		}
		for _, nb := range r.Neighbors {
			if inSet[nb] {
				return fmt.Errorf("core: set is not independent: edge {%d,%d}", r.ID, nb)
			}
		}
		return nil
	})
}

// VerifyMaximal checks, with one sequential scan, that every vertex outside
// the set has a neighbor inside it (assuming the set is independent).
func VerifyMaximal(f Source, inSet []bool) error {
	if len(inSet) != f.NumVertices() {
		return fmt.Errorf("core: verify: set has %d entries for %d vertices", len(inSet), f.NumVertices())
	}
	return f.ForEach(func(r gio.Record) error {
		if inSet[r.ID] {
			return nil
		}
		for _, nb := range r.Neighbors {
			if inSet[nb] {
				return nil
			}
		}
		return fmt.Errorf("core: set is not maximal: vertex %d has no IS neighbor", r.ID)
	})
}

// VerifyIndependentGraph is the in-memory variant of VerifyIndependent.
func VerifyIndependentGraph(g *graph.Graph, inSet []bool) error {
	for v := 0; v < g.NumVertices(); v++ {
		if !inSet[v] {
			continue
		}
		for _, nb := range g.Neighbors(uint32(v)) {
			if inSet[nb] {
				return fmt.Errorf("core: set is not independent: edge {%d,%d}", v, nb)
			}
		}
	}
	return nil
}

// VerifyMaximalGraph is the in-memory variant of VerifyMaximal.
func VerifyMaximalGraph(g *graph.Graph, inSet []bool) error {
	for v := 0; v < g.NumVertices(); v++ {
		if inSet[v] {
			continue
		}
		covered := false
		for _, nb := range g.Neighbors(uint32(v)) {
			if inSet[nb] {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("core: set is not maximal: vertex %d has no IS neighbor", v)
		}
	}
	return nil
}
