package core

import (
	"context"
	"fmt"

	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/pipeline"
)

// The verify scans are logical passes that read the shared membership array
// and mutate nothing, so the planner fuses any sequence of them into a
// single physical scan (VerifyBoth). To keep fused and unfused error
// behavior identical, a verify pass records only the first violation in scan
// order, opts out of the rest of the stream with ErrStopScan — the scheduler
// cuts the scan short once every pass in the group has opted out, so a lone
// failing verify still aborts at its violation — and surfaces the verdict
// from Done. A fused partner pass keeps receiving batches, and the earlier
// declared pass's verdict always wins, exactly as if the passes had scanned
// one after another.

// verifyIndependentPass checks that no edge has both endpoints in the set.
func verifyIndependentPass(inSet []bool) pipeline.Pass {
	var firstErr error
	return pipeline.Pass{
		Name: "verify-independent",
		Batch: func(batch []gio.Record) error {
			for i := range batch {
				r := &batch[i]
				if !inSet[r.ID] {
					continue
				}
				for _, nb := range r.Neighbors {
					if inSet[nb] {
						firstErr = fmt.Errorf("core: set is not independent: edge {%d,%d}", r.ID, nb)
						return pipeline.ErrStopScan
					}
				}
			}
			return nil
		},
		Done: func() error { return firstErr },
	}
}

// verifyMaximalPass checks that every vertex outside the set has a neighbor
// inside it (assuming the set is independent).
func verifyMaximalPass(inSet []bool) pipeline.Pass {
	var firstErr error
	return pipeline.Pass{
		Name: "verify-maximal",
		Batch: func(batch []gio.Record) error {
		records:
			for i := range batch {
				r := &batch[i]
				if inSet[r.ID] {
					continue
				}
				for _, nb := range r.Neighbors {
					if inSet[nb] {
						continue records
					}
				}
				firstErr = fmt.Errorf("core: set is not maximal: vertex %d has no IS neighbor", r.ID)
				return pipeline.ErrStopScan
			}
			return nil
		},
		Done: func() error { return firstErr },
	}
}

func checkSetSize(f Source, inSet []bool) error {
	if len(inSet) != f.NumVertices() {
		return fmt.Errorf("core: verify: set has %d entries for %d vertices", len(inSet), f.NumVertices())
	}
	return nil
}

// VerifyIndependent checks, with one sequential scan, that no edge of f has
// both endpoints in the set.
func VerifyIndependent(f Source, inSet []bool) error {
	return VerifyIndependentCtx(context.Background(), f, inSet, Hooks{})
}

// VerifyIndependentCtx is VerifyIndependent bound to a context and run
// hooks.
func VerifyIndependentCtx(ctx context.Context, f Source, inSet []bool, h Hooks) error {
	if err := checkSetSize(f, inSet); err != nil {
		return err
	}
	s := pipeline.New(f, newRun(ctx, h).sopts(false))
	s.Add(verifyIndependentPass(inSet))
	return s.Run()
}

// VerifyMaximal checks, with one sequential scan, that every vertex outside
// the set has a neighbor inside it (assuming the set is independent).
func VerifyMaximal(f Source, inSet []bool) error {
	return VerifyMaximalCtx(context.Background(), f, inSet, Hooks{})
}

// VerifyMaximalCtx is VerifyMaximal bound to a context and run hooks.
func VerifyMaximalCtx(ctx context.Context, f Source, inSet []bool, h Hooks) error {
	if err := checkSetSize(f, inSet); err != nil {
		return err
	}
	s := pipeline.New(f, newRun(ctx, h).sopts(false))
	s.Add(verifyMaximalPass(inSet))
	return s.Run()
}

// VerifyBoth checks independence and maximality with a single fused physical
// scan (two logical passes). An independence violation wins over a
// maximality one, exactly as running VerifyIndependent before VerifyMaximal
// would report.
func VerifyBoth(f Source, inSet []bool) error {
	return verifyBothScheduled(f, inSet, pipeline.Options{})
}

// VerifyBothCtx is VerifyBoth bound to a context and run hooks.
func VerifyBothCtx(ctx context.Context, f Source, inSet []bool, h Hooks) error {
	return verifyBothScheduled(f, inSet, newRun(ctx, h).sopts(false))
}

func verifyBothScheduled(f Source, inSet []bool, sopts pipeline.Options) error {
	if err := checkSetSize(f, inSet); err != nil {
		return err
	}
	s := pipeline.New(f, sopts)
	s.Add(verifyIndependentPass(inSet))
	s.Add(verifyMaximalPass(inSet))
	return s.Run()
}

// VerifyIndependentGraph is the in-memory variant of VerifyIndependent.
func VerifyIndependentGraph(g *graph.Graph, inSet []bool) error {
	for v := 0; v < g.NumVertices(); v++ {
		if !inSet[v] {
			continue
		}
		for _, nb := range g.Neighbors(uint32(v)) {
			if inSet[nb] {
				return fmt.Errorf("core: set is not independent: edge {%d,%d}", v, nb)
			}
		}
	}
	return nil
}

// VerifyMaximalGraph is the in-memory variant of VerifyMaximal.
func VerifyMaximalGraph(g *graph.Graph, inSet []bool) error {
	for v := 0; v < g.NumVertices(); v++ {
		if inSet[v] {
			continue
		}
		covered := false
		for _, nb := range g.Neighbors(uint32(v)) {
			if inSet[nb] {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("core: set is not maximal: vertex %d has no IS neighbor", v)
		}
	}
	return nil
}
