package core

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/gio"
	"repro/internal/pipeline"
)

const (
	tinyFixture = "../../testdata/tiny.adj"
	// multiroundFixture is a 6×6 grid (misgen -kind grid -rows 6 -cols 6),
	// chosen because the greedy seed leaves both swap algorithms three
	// rounds of work (gains 2, 2, 0) — enough steady-state rounds to pin
	// the cross-round fusion's one-physical-scan-per-round behavior in a
	// golden, where tiny.adj converges after a single round.
	multiroundFixture = "../../testdata/multiround.adj"
)

func openTiny(t *testing.T) (*gio.File, *gio.Counters) {
	t.Helper()
	return openFixture(t, tinyFixture)
}

func openFixture(t *testing.T, path string) (*gio.File, *gio.Counters) {
	t.Helper()
	stats := &gio.Counters{}
	f, err := gio.Open(path, 0, stats)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, stats
}

// TestScanCountGolden pins the exact logical and physical scan counts of
// every algorithm on the checked-in fixture graph, so a future change cannot
// silently reintroduce an extra physical scan (or silently drop a logical
// pass). The fixture converges in one swap round; with the cross-round
// carry the swap algorithms' pre-swap (and two-k's validating swap) passes
// resolve from the collection that rode the setup scan, so the expected
// counts decompose as:
//
//	greedy            setup(mark+stats fused)                      → 2 logical / 1 physical
//	one-k-swap        setup·carry + (pre carried + post·sweep)     → 4 logical / 2 physical
//	two-k-swap        setup·deg·carry + (pre+swap carried + post·sweep) → 6 logical / 2 physical
//	external-maximal  positions + time-forward (unfusable)         → 2 logical / 2 physical
//	upper-bound       one pass                                     → 1 logical / 1 physical
//	verify-both       independent·maximal fused                    → 2 logical / 1 physical
func TestScanCountGolden(t *testing.T) {
	f, stats := openTiny(t)

	greedy, err := Greedy(f)
	if err != nil {
		t.Fatal(err)
	}
	checkIO(t, "greedy", greedy.IO, 2, 1)

	one, err := OneKSwap(f, greedy.InSet, SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if one.Rounds != 1 {
		t.Fatalf("one-k-swap rounds = %d, want 1 (fixture drifted; regenerate goldens)", one.Rounds)
	}
	checkIO(t, "one-k-swap", one.IO, 4, 2)
	if one.IO.CarriedScans != 1 {
		t.Fatalf("one-k-swap carried scans = %d, want 1", one.IO.CarriedScans)
	}

	two, err := TwoKSwap(f, greedy.InSet, SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if two.Rounds != 1 {
		t.Fatalf("two-k-swap rounds = %d, want 1 (fixture drifted; regenerate goldens)", two.Rounds)
	}
	checkIO(t, "two-k-swap", two.IO, 6, 2)
	if two.IO.CarriedScans != 2 {
		t.Fatalf("two-k-swap carried scans = %d, want 2", two.IO.CarriedScans)
	}

	ext, err := ExternalMaximal(f, ExternalMaximalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkIO(t, "external-maximal", ext.IO, 2, 2)

	before := stats.Snapshot()
	if _, err := UpperBound(f); err != nil {
		t.Fatal(err)
	}
	checkIO(t, "upper-bound", scanDelta(stats.Snapshot(), before), 1, 1)

	before = stats.Snapshot()
	if err := VerifyBoth(f, two.InSet); err != nil {
		t.Fatal(err)
	}
	checkIO(t, "verify-both", scanDelta(stats.Snapshot(), before), 2, 1)
}

func checkIO(t *testing.T, label string, io gio.Stats, wantLogical, wantPhysical int) {
	t.Helper()
	if io.Scans != wantLogical || io.PhysicalScans != wantPhysical {
		t.Fatalf("%s: scans = %d logical / %d physical, want %d / %d",
			label, io.Scans, io.PhysicalScans, wantLogical, wantPhysical)
	}
}

func scanDelta(now, before gio.Stats) gio.Stats {
	return gio.Stats{
		Scans:         now.Scans - before.Scans,
		PhysicalScans: now.PhysicalScans - before.PhysicalScans,
	}
}

// TestScanCountGoldenMultiround pins the cross-round fusion win on the
// multi-round fixture: every steady-state swap round costs exactly one
// physical scan (the round's own post-swap pass; its pre-swap — and, for
// two-k-swap, swap-validation — work rode the previous scan as a carried
// collection), so a whole run costs Rounds+1 physical scans. The per-round
// I/O trace pins the same fact round by round.
func TestScanCountGoldenMultiround(t *testing.T) {
	f, _ := openFixture(t, multiroundFixture)

	greedy, err := Greedy(f)
	if err != nil {
		t.Fatal(err)
	}

	one, err := OneKSwap(f, greedy.InSet, SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if one.Rounds != 3 {
		t.Fatalf("one-k-swap rounds = %d, want 3 (fixture drifted; regenerate goldens)", one.Rounds)
	}
	// setup·carry (1 phys) + 3 × (pre carried + post scan) + sweep fused:
	// 8 logical, 4 physical, 3 carried.
	checkIO(t, "one-k-swap", one.IO, 8, 4)
	if one.IO.CarriedScans != 3 {
		t.Fatalf("one-k-swap carried scans = %d, want 3", one.IO.CarriedScans)
	}

	two, err := TwoKSwap(f, greedy.InSet, SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if two.Rounds != 3 {
		t.Fatalf("two-k-swap rounds = %d, want 3 (fixture drifted; regenerate goldens)", two.Rounds)
	}
	// setup·deg·carry (1 phys) + 3 × (pre+swap carried + post scan) +
	// sweep fused: 12 logical, 4 physical, 6 carried.
	checkIO(t, "two-k-swap", two.IO, 12, 4)
	if two.IO.CarriedScans != 6 {
		t.Fatalf("two-k-swap carried scans = %d, want 6", two.IO.CarriedScans)
	}

	for _, tc := range []struct {
		name          string
		res           *Result
		carriedARound int // carried logical scans per steady-state round
	}{
		{"one-k-swap", one, 1},
		{"two-k-swap", two, 2},
	} {
		if len(tc.res.RoundIO) != tc.res.Rounds {
			t.Fatalf("%s: %d RoundIO entries for %d rounds", tc.name, len(tc.res.RoundIO), tc.res.Rounds)
		}
		for i, io := range tc.res.RoundIO {
			if io.PhysicalScans != 1 {
				t.Errorf("%s round %d: %d physical scans, want exactly 1", tc.name, i+1, io.PhysicalScans)
			}
			if io.CarriedScans != tc.carriedARound {
				t.Errorf("%s round %d: %d carried scans, want %d", tc.name, i+1, io.CarriedScans, tc.carriedARound)
			}
		}
	}
}

// TestStatsInvariants guards the scan accounting against drift under the
// cross-round fusion, for every algorithm on both fixtures: the logical
// count never decreases when fusion is enabled (it stays exactly equal to
// the unfused run's — fusion changes where work happens, never how much),
// PhysicalScans ≤ Scans always, and carried scans never exceed logical
// ones.
func TestStatsInvariants(t *testing.T) {
	type run struct {
		name string
		io   func(f *gio.File, unfused bool) gio.Stats
	}
	runs := []run{
		{"greedy", func(f *gio.File, unfused bool) gio.Stats {
			r, err := GreedyScheduled(f, pipeline.Options{Unfused: unfused})
			if err != nil {
				t.Fatal(err)
			}
			return r.IO
		}},
		{"one-k-swap", func(f *gio.File, unfused bool) gio.Stats {
			seed, err := GreedyScheduled(f, pipeline.Options{Unfused: unfused})
			if err != nil {
				t.Fatal(err)
			}
			r, err := OneKSwap(f, seed.InSet, SwapOptions{Unfused: unfused})
			if err != nil {
				t.Fatal(err)
			}
			return r.IO
		}},
		{"two-k-swap", func(f *gio.File, unfused bool) gio.Stats {
			seed, err := GreedyScheduled(f, pipeline.Options{Unfused: unfused})
			if err != nil {
				t.Fatal(err)
			}
			r, err := TwoKSwap(f, seed.InSet, SwapOptions{Unfused: unfused})
			if err != nil {
				t.Fatal(err)
			}
			return r.IO
		}},
		{"external-maximal", func(f *gio.File, unfused bool) gio.Stats {
			r, err := ExternalMaximal(f, ExternalMaximalOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return r.IO
		}},
	}
	for _, fixture := range []string{tinyFixture, multiroundFixture} {
		for _, r := range runs {
			var io [2]gio.Stats
			for i, unfused := range []bool{false, true} {
				f, _ := openFixture(t, fixture)
				io[i] = r.io(f, unfused)
				label := fmt.Sprintf("%s/%s unfused=%v", filepath.Base(fixture), r.name, unfused)
				if io[i].PhysicalScans > io[i].Scans {
					t.Errorf("%s: PhysicalScans %d > Scans %d", label, io[i].PhysicalScans, io[i].Scans)
				}
				if io[i].CarriedScans > io[i].Scans {
					t.Errorf("%s: CarriedScans %d > Scans %d", label, io[i].CarriedScans, io[i].Scans)
				}
			}
			fused, unfused := io[0], io[1]
			if fused.Scans < unfused.Scans {
				t.Errorf("%s/%s: fusion decreased logical scans: %d fused < %d unfused",
					filepath.Base(fixture), r.name, fused.Scans, unfused.Scans)
			}
			if fused.Scans != unfused.Scans {
				t.Errorf("%s/%s: fused logical scans %d != unfused %d (accounting drifted)",
					filepath.Base(fixture), r.name, fused.Scans, unfused.Scans)
			}
			if unfused.CarriedScans != 0 {
				t.Errorf("%s/%s: unfused run carried %d scans", filepath.Base(fixture), r.name, unfused.CarriedScans)
			}
		}
	}
}

// TestFusedVsUnfusedParity holds the two scheduler modes to identical
// results on the fixture — set membership, sizes, rounds, gains, SC high
// water — while requiring the fused mode to pay strictly fewer physical
// scans per round (and in total) than the unfused baseline, whose physical
// count must equal its logical one. This is the acceptance gate for the
// post-swap + sweep fusion of both swap algorithms.
func TestFusedVsUnfusedParity(t *testing.T) {
	type outcome struct {
		res *Result
		err error
	}
	run := func(alg string, unfused bool) outcome {
		f, _ := openTiny(t)
		greedy, err := GreedyScheduled(f, pipeline.Options{Unfused: unfused})
		if err != nil {
			t.Fatal(err)
		}
		opts := SwapOptions{Unfused: unfused}
		switch alg {
		case "one-k-swap":
			r, err := OneKSwap(f, greedy.InSet, opts)
			return outcome{r, err}
		case "two-k-swap":
			r, err := TwoKSwap(f, greedy.InSet, opts)
			return outcome{r, err}
		}
		t.Fatalf("unknown alg %s", alg)
		return outcome{}
	}

	for _, alg := range []string{"one-k-swap", "two-k-swap"} {
		fused, unfused := run(alg, false), run(alg, true)
		if fused.err != nil || unfused.err != nil {
			t.Fatalf("%s: errors fused=%v unfused=%v", alg, fused.err, unfused.err)
		}
		fr, ur := fused.res, unfused.res
		if !reflect.DeepEqual(fr.InSet, ur.InSet) || fr.Size != ur.Size {
			t.Fatalf("%s: fused and unfused sets differ", alg)
		}
		if fr.Rounds != ur.Rounds || !reflect.DeepEqual(fr.RoundGains, ur.RoundGains) {
			t.Fatalf("%s: round trace differs: %d/%v vs %d/%v",
				alg, fr.Rounds, fr.RoundGains, ur.Rounds, ur.RoundGains)
		}
		if fr.SCHighWater != ur.SCHighWater {
			t.Fatalf("%s: SC high water %d vs %d", alg, fr.SCHighWater, ur.SCHighWater)
		}
		if ur.IO.PhysicalScans != ur.IO.Scans {
			t.Fatalf("%s: unfused baseline fused something: %d physical of %d logical",
				alg, ur.IO.PhysicalScans, ur.IO.Scans)
		}
		if fr.IO.PhysicalScans >= ur.IO.PhysicalScans {
			t.Fatalf("%s: fused pays %d physical scans, not fewer than unfused %d",
				alg, fr.IO.PhysicalScans, ur.IO.PhysicalScans)
		}
		perRoundFused := float64(fr.IO.PhysicalScans) / float64(fr.Rounds)
		perRoundUnfused := float64(ur.IO.PhysicalScans) / float64(ur.Rounds)
		if perRoundFused >= perRoundUnfused {
			t.Fatalf("%s: fused %.2f physical scans/round, not below unfused %.2f",
				alg, perRoundFused, perRoundUnfused)
		}
	}
}
