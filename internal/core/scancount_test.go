package core

import (
	"reflect"
	"testing"

	"repro/internal/gio"
	"repro/internal/pipeline"
)

const tinyFixture = "../../testdata/tiny.adj"

func openTiny(t *testing.T) (*gio.File, *gio.Stats) {
	t.Helper()
	stats := &gio.Stats{}
	f, err := gio.Open(tinyFixture, 0, stats)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, stats
}

// TestScanCountGolden pins the exact logical and physical scan counts of
// every algorithm on the checked-in fixture graph, so a future change cannot
// silently reintroduce an extra physical scan (or silently drop a logical
// pass). The fixture converges in one swap round, so the expected counts
// decompose as:
//
//	greedy            setup(mark+stats fused)                     → 2 logical / 1 physical
//	one-k-swap        setup + (pre + post·sweep fused)            → 4 logical / 3 physical
//	two-k-swap        setup·deg + (pre + swap + post·sweep)       → 6 logical / 4 physical
//	external-maximal  positions + time-forward (unfusable)        → 2 logical / 2 physical
//	upper-bound       one pass                                    → 1 logical / 1 physical
//	verify-both       independent·maximal fused                   → 2 logical / 1 physical
func TestScanCountGolden(t *testing.T) {
	f, stats := openTiny(t)

	greedy, err := Greedy(f)
	if err != nil {
		t.Fatal(err)
	}
	checkIO(t, "greedy", greedy.IO, 2, 1)

	one, err := OneKSwap(f, greedy.InSet, SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if one.Rounds != 1 {
		t.Fatalf("one-k-swap rounds = %d, want 1 (fixture drifted; regenerate goldens)", one.Rounds)
	}
	checkIO(t, "one-k-swap", one.IO, 4, 3)

	two, err := TwoKSwap(f, greedy.InSet, SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if two.Rounds != 1 {
		t.Fatalf("two-k-swap rounds = %d, want 1 (fixture drifted; regenerate goldens)", two.Rounds)
	}
	checkIO(t, "two-k-swap", two.IO, 6, 4)

	ext, err := ExternalMaximal(f, ExternalMaximalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkIO(t, "external-maximal", ext.IO, 2, 2)

	before := *stats
	if _, err := UpperBound(f); err != nil {
		t.Fatal(err)
	}
	checkIO(t, "upper-bound", scanDelta(*stats, before), 1, 1)

	before = *stats
	if err := VerifyBoth(f, two.InSet); err != nil {
		t.Fatal(err)
	}
	checkIO(t, "verify-both", scanDelta(*stats, before), 2, 1)
}

func checkIO(t *testing.T, label string, io gio.Stats, wantLogical, wantPhysical int) {
	t.Helper()
	if io.Scans != wantLogical || io.PhysicalScans != wantPhysical {
		t.Fatalf("%s: scans = %d logical / %d physical, want %d / %d",
			label, io.Scans, io.PhysicalScans, wantLogical, wantPhysical)
	}
}

func scanDelta(now, before gio.Stats) gio.Stats {
	return gio.Stats{
		Scans:         now.Scans - before.Scans,
		PhysicalScans: now.PhysicalScans - before.PhysicalScans,
	}
}

// TestFusedVsUnfusedParity holds the two scheduler modes to identical
// results on the fixture — set membership, sizes, rounds, gains, SC high
// water — while requiring the fused mode to pay strictly fewer physical
// scans per round (and in total) than the unfused baseline, whose physical
// count must equal its logical one. This is the acceptance gate for the
// post-swap + sweep fusion of both swap algorithms.
func TestFusedVsUnfusedParity(t *testing.T) {
	type outcome struct {
		res *Result
		err error
	}
	run := func(alg string, unfused bool) outcome {
		f, _ := openTiny(t)
		greedy, err := GreedyScheduled(f, pipeline.Options{Unfused: unfused})
		if err != nil {
			t.Fatal(err)
		}
		opts := SwapOptions{Unfused: unfused}
		switch alg {
		case "one-k-swap":
			r, err := OneKSwap(f, greedy.InSet, opts)
			return outcome{r, err}
		case "two-k-swap":
			r, err := TwoKSwap(f, greedy.InSet, opts)
			return outcome{r, err}
		}
		t.Fatalf("unknown alg %s", alg)
		return outcome{}
	}

	for _, alg := range []string{"one-k-swap", "two-k-swap"} {
		fused, unfused := run(alg, false), run(alg, true)
		if fused.err != nil || unfused.err != nil {
			t.Fatalf("%s: errors fused=%v unfused=%v", alg, fused.err, unfused.err)
		}
		fr, ur := fused.res, unfused.res
		if !reflect.DeepEqual(fr.InSet, ur.InSet) || fr.Size != ur.Size {
			t.Fatalf("%s: fused and unfused sets differ", alg)
		}
		if fr.Rounds != ur.Rounds || !reflect.DeepEqual(fr.RoundGains, ur.RoundGains) {
			t.Fatalf("%s: round trace differs: %d/%v vs %d/%v",
				alg, fr.Rounds, fr.RoundGains, ur.Rounds, ur.RoundGains)
		}
		if fr.SCHighWater != ur.SCHighWater {
			t.Fatalf("%s: SC high water %d vs %d", alg, fr.SCHighWater, ur.SCHighWater)
		}
		if ur.IO.PhysicalScans != ur.IO.Scans {
			t.Fatalf("%s: unfused baseline fused something: %d physical of %d logical",
				alg, ur.IO.PhysicalScans, ur.IO.Scans)
		}
		if fr.IO.PhysicalScans >= ur.IO.PhysicalScans {
			t.Fatalf("%s: fused pays %d physical scans, not fewer than unfused %d",
				alg, fr.IO.PhysicalScans, ur.IO.PhysicalScans)
		}
		perRoundFused := float64(fr.IO.PhysicalScans) / float64(fr.Rounds)
		perRoundUnfused := float64(ur.IO.PhysicalScans) / float64(ur.Rounds)
		if perRoundFused >= perRoundUnfused {
			t.Fatalf("%s: fused %.2f physical scans/round, not below unfused %.2f",
				alg, perRoundFused, perRoundUnfused)
		}
	}
}
