package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/gio"
	"repro/internal/pipeline"
	"repro/internal/semiext"
)

// RandomizedMaximal computes a maximal independent set with the randomized
// rounds of Abello, Buchsbaum and Westbrook's functional approach (related
// work [2], I/O O(sort(|E|)) with high probability), adapted to the
// semi-external setting: each round draws random priorities for the still
// undecided vertices, one scan admits every vertex that beats all undecided
// neighbors, and a second scan retires the admitted vertices' neighbors.
// With constant probability a constant fraction of vertices is decided per
// round, so O(log |V|) scans decide everything.
func RandomizedMaximal(f Source, seed int64) (*Result, error) {
	return RandomizedMaximalCtx(context.Background(), f, seed, Hooks{})
}

// RandomizedMaximalCtx is RandomizedMaximal bound to a context and run
// hooks: ctx cancels between batches and between rounds, hooks.OnScan
// observes per-batch progress. Deterministic per seed for any Source.
func RandomizedMaximalCtx(ctx context.Context, f Source, seed int64, h Hooks) (*Result, error) {
	n := f.NumVertices()
	rn := newRun(ctx, h)
	snap := snapshot(f.Stats())
	rng := rand.New(rand.NewSource(seed))

	states := semiext.NewStates(n) // Initial = undecided
	prio := make([]uint64, n)
	undecided := n
	rounds := 0

	for undecided > 0 {
		rounds++
		if rounds > 64*(bitsLen(n)+1) {
			return nil, fmt.Errorf("core: randomized maximal: no progress after %d rounds", rounds)
		}
		if err := rn.err(); err != nil {
			return nil, fmt.Errorf("core: randomized maximal: round %d: %w", rounds, err)
		}
		for v := 0; v < n; v++ {
			if states.Get(uint32(v)) == semiext.StateInitial {
				prio[v] = rng.Uint64()
			}
		}
		// Scan 1: local minima of the priority order join the set. Both
		// scans mutate the shared state array mid-scan, so each runs as its
		// own scheduler pass (and therefore its own physical scan).
		s1 := pipeline.New(f, rn.sopts(false))
		s1.Add(pipeline.Pass{
			Name:           "randomized-elect",
			MutatesStates:  true,
			NeedsScanOrder: true,
			Batch: func(batch []gio.Record) error {
				for i := range batch {
					r := &batch[i]
					u := r.ID
					if states.Get(u) != semiext.StateInitial {
						continue
					}
					beaten := false
					for _, nb := range r.Neighbors {
						if states.Get(nb) == semiext.StateInitial && beats(prio[nb], nb, prio[u], u) {
							beaten = true
							break
						}
						if states.Get(nb) == semiext.StateProtected {
							// A neighbor already won this round.
							beaten = true
							break
						}
					}
					if !beaten {
						states.Set(u, semiext.StateProtected)
					}
				}
				return nil
			},
		})
		if err := s1.Run(); err != nil {
			return nil, fmt.Errorf("core: randomized maximal: %w", err)
		}
		// Scan 2: winners become IS; their undecided neighbors retire.
		s2 := pipeline.New(f, rn.sopts(false))
		s2.Add(pipeline.Pass{
			Name:           "randomized-retire",
			MutatesStates:  true,
			NeedsScanOrder: true,
			Batch: func(batch []gio.Record) error {
				for i := range batch {
					r := &batch[i]
					u := r.ID
					if states.Get(u) != semiext.StateProtected {
						continue
					}
					states.Set(u, semiext.StateIS)
					undecided--
					for _, nb := range r.Neighbors {
						if states.Get(nb) == semiext.StateInitial {
							states.Set(nb, semiext.StateNonIS)
							undecided--
						}
					}
				}
				return nil
			},
		})
		if err := s2.Run(); err != nil {
			return nil, fmt.Errorf("core: randomized maximal: %w", err)
		}
	}

	res := newResult(n)
	res.collectIS(states)
	res.Rounds = rounds
	res.MemoryBytes = states.MemoryBytes() + uint64(n)*8
	res.IO = statsDelta(f.Stats(), snap)
	return res, nil
}

// beats reports whether vertex a (priority pa) precedes vertex b (priority
// pb) in the random order, with the vertex ID as the deterministic
// tiebreak.
func beats(pa uint64, a uint32, pb uint64, b uint32) bool {
	if pa != pb {
		return pa < pb
	}
	return a < b
}

func bitsLen(n int) int {
	l := 0
	for n > 0 {
		n >>= 1
		l++
	}
	return l
}
