package core

import (
	"context"

	"repro/internal/gio"
	"repro/internal/pipeline"
)

// ScanProgress reports how far the current physical scan has advanced: the
// records delivered so far against the file's total record count. Emitted
// after every decoded batch of every physical scan an algorithm runs.
type ScanProgress struct {
	Records uint64
	Total   uint64
}

// RoundEvent reports one completed swap round: the round number (1-based),
// the net gain in independent-set size, the set size after the round, and
// the I/O the round performed. With cross-round pass fusion a steady-state
// round shows one physical scan plus carried logical scans.
type RoundEvent struct {
	Round int
	Gain  int
	Size  int
	IO    gio.Stats
}

// Hooks observe a run. Both callbacks are optional and run synchronously on
// the algorithm's goroutine: OnScan after every delivered batch, OnRound
// after every swap round. They must be cheap and must not call back into the
// algorithm.
type Hooks struct {
	OnScan  func(ScanProgress)
	OnRound func(RoundEvent)
}

// progress adapts OnScan to the pipeline scheduler's callback shape.
func (h Hooks) progress() func(records, total uint64) {
	if h.OnScan == nil {
		return nil
	}
	return func(records, total uint64) {
		h.OnScan(ScanProgress{Records: records, Total: total})
	}
}

// round emits a RoundEvent if an observer is attached.
func (h Hooks) round(ev RoundEvent) {
	if h.OnRound != nil {
		h.OnRound(ev)
	}
}

// run bundles one algorithm run's cancellation and observability: the
// context every scheduler run and round boundary checks, and the hooks
// events are delivered through. The zero value (nil ctx, no hooks) is a
// plain uncancellable, unobserved run — what the legacy entry points use.
type run struct {
	ctx   context.Context
	hooks Hooks
}

func newRun(ctx context.Context, h Hooks) run { return run{ctx: ctx, hooks: h} }

// sopts builds the pipeline options for one scheduler run of this run.
func (r run) sopts(unfused bool) pipeline.Options {
	return pipeline.Options{Unfused: unfused, Ctx: r.ctx, Progress: r.hooks.progress()}
}

// err reports the run's cancellation state; checked between scans, between
// rounds, and before carried-collection replays.
func (r run) err() error {
	if r.ctx == nil {
		return nil
	}
	return r.ctx.Err()
}
