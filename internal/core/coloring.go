package core

import (
	"context"
	"fmt"

	"repro/internal/gio"
	"repro/internal/pipeline"
	"repro/internal/semiext"
)

// NoColor marks an uncolored vertex in a Coloring.
const NoColor = ^uint32(0)

// Coloring is a proper vertex coloring: Colors[v] is v's color class and no
// edge joins two vertices of the same class.
type Coloring struct {
	// Colors maps vertex ID to color (0-based).
	Colors []uint32
	// NumColors is the number of classes used.
	NumColors int
	// ClassSizes[c] is the population of color c.
	ClassSizes []int
	// IO is the I/O the construction performed.
	IO gio.Stats
}

// ColorByIS builds a proper coloring by repeatedly extracting a maximal
// independent set from the still-uncolored vertices and assigning it the
// next color — the classic reduction the paper's conclusion points at for
// future work ("other graph problems like minimum vertex covers and graph
// coloring for massive graphs with a single commodity PC").
//
// Each color class costs one sequential scan (the greedy of Algorithm 1
// restricted to uncolored vertices), so the total I/O is O(χ_greedy ·
// scan(|V|+|E|)) with O(|V|) memory. On a degree-sorted file the extraction
// order mirrors the Greedy algorithm, which keeps early classes large and
// the class count close to the greedy chromatic number.
func ColorByIS(f Source, maxColors int) (*Coloring, error) {
	return ColorByISCtx(context.Background(), f, maxColors, Hooks{})
}

// ColorByISCtx is ColorByIS bound to a context and run hooks: ctx cancels
// between batches and between color classes, hooks.OnScan observes
// per-batch progress.
func ColorByISCtx(ctx context.Context, f Source, maxColors int, h Hooks) (*Coloring, error) {
	n := f.NumVertices()
	if maxColors <= 0 {
		maxColors = n + 1
	}
	rn := newRun(ctx, h)
	snap := snapshot(f.Stats())
	colors := make([]uint32, n)
	for v := range colors {
		colors[v] = NoColor
	}
	states := semiext.NewStates(n)
	remaining := n

	c := uint32(0)
	for remaining > 0 {
		if int(c) >= maxColors {
			return nil, fmt.Errorf("core: coloring: exceeded %d colors with %d vertices uncolored",
				maxColors, remaining)
		}
		if err := rn.err(); err != nil {
			return nil, fmt.Errorf("core: coloring: class %d: %w", c, err)
		}
		// One scan: greedy maximal IS over uncolored vertices.
		for v := 0; v < n; v++ {
			if colors[v] == NoColor {
				states.Set(uint32(v), semiext.StateInitial)
			} else {
				states.Set(uint32(v), semiext.StateNonIS)
			}
		}
		s := pipeline.New(f, rn.sopts(false))
		s.Add(pipeline.Pass{
			Name:           "color-class-greedy",
			MutatesStates:  true,
			NeedsScanOrder: true,
			Batch: func(batch []gio.Record) error {
				for i := range batch {
					r := &batch[i]
					u := r.ID
					if states.Get(u) != semiext.StateInitial {
						continue
					}
					states.Set(u, semiext.StateIS)
					for _, nb := range r.Neighbors {
						if states.Get(nb) == semiext.StateInitial {
							states.Set(nb, semiext.StateConflict) // excluded this round only
						}
					}
				}
				return nil
			},
		})
		if err := s.Run(); err != nil {
			return nil, fmt.Errorf("core: coloring: %w", err)
		}
		assigned := 0
		for v := 0; v < n; v++ {
			if states.Get(uint32(v)) == semiext.StateIS {
				colors[v] = c
				assigned++
			}
		}
		if assigned == 0 {
			return nil, fmt.Errorf("core: coloring: empty class %d with %d vertices uncolored", c, remaining)
		}
		remaining -= assigned
		c++
	}

	col := &Coloring{Colors: colors, NumColors: int(c), ClassSizes: make([]int, c)}
	for _, cc := range colors {
		col.ClassSizes[cc]++
	}
	col.IO = statsDelta(f.Stats(), snap)
	return col, nil
}

// VerifyColoring checks with one sequential scan that no edge joins two
// vertices of the same color and that every vertex is colored.
func VerifyColoring(f Source, col *Coloring) error {
	return VerifyColoringCtx(context.Background(), f, col, Hooks{})
}

// VerifyColoringCtx is VerifyColoring bound to a context and run hooks.
// Like the other verify passes it records only the first violation in scan
// order and opts out of the rest of the stream.
func VerifyColoringCtx(ctx context.Context, f Source, col *Coloring, h Hooks) error {
	if len(col.Colors) != f.NumVertices() {
		return fmt.Errorf("core: verify coloring: %d entries for %d vertices",
			len(col.Colors), f.NumVertices())
	}
	for v, c := range col.Colors {
		if c == NoColor {
			return fmt.Errorf("core: vertex %d uncolored", v)
		}
		if int(c) >= col.NumColors {
			return fmt.Errorf("core: vertex %d has out-of-range color %d", v, c)
		}
	}
	var firstErr error
	s := pipeline.New(f, newRun(ctx, h).sopts(false))
	s.Add(pipeline.Pass{
		Name: "verify-coloring",
		Batch: func(batch []gio.Record) error {
			for i := range batch {
				r := &batch[i]
				for _, nb := range r.Neighbors {
					if col.Colors[r.ID] == col.Colors[nb] {
						firstErr = fmt.Errorf("core: edge {%d,%d} monochromatic (color %d)",
							r.ID, nb, col.Colors[r.ID])
						return pipeline.ErrStopScan
					}
				}
			}
			return nil
		},
		Done: func() error { return firstErr },
	})
	return s.Run()
}
