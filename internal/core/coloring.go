package core

import (
	"fmt"

	"repro/internal/gio"
	"repro/internal/semiext"
)

// NoColor marks an uncolored vertex in a Coloring.
const NoColor = ^uint32(0)

// Coloring is a proper vertex coloring: Colors[v] is v's color class and no
// edge joins two vertices of the same class.
type Coloring struct {
	// Colors maps vertex ID to color (0-based).
	Colors []uint32
	// NumColors is the number of classes used.
	NumColors int
	// ClassSizes[c] is the population of color c.
	ClassSizes []int
	// IO is the I/O the construction performed.
	IO gio.Stats
}

// ColorByIS builds a proper coloring by repeatedly extracting a maximal
// independent set from the still-uncolored vertices and assigning it the
// next color — the classic reduction the paper's conclusion points at for
// future work ("other graph problems like minimum vertex covers and graph
// coloring for massive graphs with a single commodity PC").
//
// Each color class costs one sequential scan (the greedy of Algorithm 1
// restricted to uncolored vertices), so the total I/O is O(χ_greedy ·
// scan(|V|+|E|)) with O(|V|) memory. On a degree-sorted file the extraction
// order mirrors the Greedy algorithm, which keeps early classes large and
// the class count close to the greedy chromatic number.
func ColorByIS(f *gio.File, maxColors int) (*Coloring, error) {
	n := f.NumVertices()
	if maxColors <= 0 {
		maxColors = n + 1
	}
	snap := snapshot(f.Stats())
	colors := make([]uint32, n)
	for v := range colors {
		colors[v] = NoColor
	}
	states := semiext.NewStates(n)
	remaining := n

	c := uint32(0)
	for remaining > 0 {
		if int(c) >= maxColors {
			return nil, fmt.Errorf("core: coloring: exceeded %d colors with %d vertices uncolored",
				maxColors, remaining)
		}
		// One scan: greedy maximal IS over uncolored vertices.
		for v := 0; v < n; v++ {
			if colors[v] == NoColor {
				states.Set(uint32(v), semiext.StateInitial)
			} else {
				states.Set(uint32(v), semiext.StateNonIS)
			}
		}
		err := f.ForEach(func(r gio.Record) error {
			u := r.ID
			if states.Get(u) != semiext.StateInitial {
				return nil
			}
			states.Set(u, semiext.StateIS)
			for _, nb := range r.Neighbors {
				if states.Get(nb) == semiext.StateInitial {
					states.Set(nb, semiext.StateConflict) // excluded this round only
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: coloring: %w", err)
		}
		assigned := 0
		for v := 0; v < n; v++ {
			if states.Get(uint32(v)) == semiext.StateIS {
				colors[v] = c
				assigned++
			}
		}
		if assigned == 0 {
			return nil, fmt.Errorf("core: coloring: empty class %d with %d vertices uncolored", c, remaining)
		}
		remaining -= assigned
		c++
	}

	col := &Coloring{Colors: colors, NumColors: int(c), ClassSizes: make([]int, c)}
	for _, cc := range colors {
		col.ClassSizes[cc]++
	}
	col.IO = statsDelta(f.Stats(), snap)
	return col, nil
}

// VerifyColoring checks with one sequential scan that no edge joins two
// vertices of the same color and that every vertex is colored.
func VerifyColoring(f *gio.File, col *Coloring) error {
	if len(col.Colors) != f.NumVertices() {
		return fmt.Errorf("core: verify coloring: %d entries for %d vertices",
			len(col.Colors), f.NumVertices())
	}
	for v, c := range col.Colors {
		if c == NoColor {
			return fmt.Errorf("core: vertex %d uncolored", v)
		}
		if int(c) >= col.NumColors {
			return fmt.Errorf("core: vertex %d has out-of-range color %d", v, c)
		}
	}
	return f.ForEach(func(r gio.Record) error {
		for _, nb := range r.Neighbors {
			if col.Colors[r.ID] == col.Colors[nb] {
				return fmt.Errorf("core: edge {%d,%d} monochromatic (color %d)",
					r.ID, nb, col.Colors[r.ID])
			}
		}
		return nil
	})
}
