package core

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// MaxExactVertices is the largest graph Exact accepts. The solver packs the
// vertex set into one machine word.
const MaxExactVertices = 64

// Exact computes the exact independence number of a small graph (≤ 64
// vertices) with branch-and-bound over bitmask vertex sets. It is the test
// oracle for approximation ratios and for Algorithm 5's upper bound; it is
// deliberately not part of the scalable pipeline.
func Exact(g *graph.Graph) (int, error) {
	n := g.NumVertices()
	if n > MaxExactVertices {
		return 0, fmt.Errorf("core: exact solver supports ≤ %d vertices, got %d", MaxExactVertices, n)
	}
	adj := make([]uint64, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			adj[v] |= 1 << u
		}
	}
	var full uint64
	if n == 64 {
		full = ^uint64(0)
	} else {
		full = (1 << n) - 1
	}
	best := 0
	var rec func(candidates uint64, size int)
	rec = func(candidates uint64, size int) {
		if size+bits.OnesCount64(candidates) <= best {
			return // bound: even taking every candidate cannot beat best
		}
		if candidates == 0 {
			if size > best {
				best = size
			}
			return
		}
		// Branch on the candidate with the most candidate-neighbors:
		// including it removes the most vertices, excluding it prunes hard.
		pick, pickDeg := -1, -1
		rest := candidates
		for rest != 0 {
			v := bits.TrailingZeros64(rest)
			rest &= rest - 1
			d := bits.OnesCount64(adj[v] & candidates)
			if d > pickDeg {
				pick, pickDeg = v, d
			}
		}
		if pickDeg == 0 {
			// Remaining candidates are pairwise non-adjacent: take them all.
			if s := size + bits.OnesCount64(candidates); s > best {
				best = s
			}
			return
		}
		bit := uint64(1) << pick
		rec(candidates&^(adj[pick]|bit), size+1) // include pick
		rec(candidates&^bit, size)               // exclude pick
	}
	rec(full, 0)
	return best, nil
}

// ExactSet returns one maximum independent set of a small graph, as a
// membership slice, alongside its size.
func ExactSet(g *graph.Graph) ([]bool, int, error) {
	n := g.NumVertices()
	if n > MaxExactVertices {
		return nil, 0, fmt.Errorf("core: exact solver supports ≤ %d vertices, got %d", MaxExactVertices, n)
	}
	adj := make([]uint64, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			adj[v] |= 1 << u
		}
	}
	var full uint64
	if n == 64 {
		full = ^uint64(0)
	} else {
		full = (1 << n) - 1
	}
	best, bestSet := 0, uint64(0)
	var rec func(candidates, chosen uint64, size int)
	rec = func(candidates, chosen uint64, size int) {
		if size+bits.OnesCount64(candidates) <= best {
			return
		}
		if candidates == 0 {
			if size > best {
				best, bestSet = size, chosen
			}
			return
		}
		pick, pickDeg := -1, -1
		rest := candidates
		for rest != 0 {
			v := bits.TrailingZeros64(rest)
			rest &= rest - 1
			d := bits.OnesCount64(adj[v] & candidates)
			if d > pickDeg {
				pick, pickDeg = v, d
			}
		}
		if pickDeg == 0 {
			if s := size + bits.OnesCount64(candidates); s > best {
				best, bestSet = s, chosen|candidates
			}
			return
		}
		bit := uint64(1) << pick
		rec(candidates&^(adj[pick]|bit), chosen|bit, size+1)
		rec(candidates&^bit, chosen, size)
	}
	rec(full, 0, 0)
	in := make([]bool, n)
	for v := 0; v < n; v++ {
		in[v] = bestSet&(1<<v) != 0
	}
	return in, best, nil
}
