package core

import (
	"fmt"

	"repro/internal/gio"
)

// DynamicUpdateSemiExternal runs the classical DynamicUpdate greedy with
// the graph left on disk, fetching adjacency lists by random positional
// reads as they are needed. It is a demonstration of the paper's Section
// 4.1 Remark — DynamicUpdate "would incur the frequent random accesses to
// update the degrees of vertices in the semi-external setting" — and the
// ablation-randomaccess experiment quantifies it: the algorithm touches
// every adjacency list at least once via a random read, while the lazy
// Greedy covers the same ground with one sequential scan.
//
// RandomReads in the returned stats is the count the paper's remark is
// about.
func DynamicUpdateSemiExternal(f *gio.File) (*Result, gio.RandomAccessStats, error) {
	n := f.NumVertices()
	ra, err := gio.NewRandomAccessFile(f)
	if err != nil {
		return nil, gio.RandomAccessStats{}, err
	}

	res := newResult(n)
	deg := make([]int32, n)
	removed := make([]bool, n)
	maxDeg := 0
	for v, d := range ra.Degrees() {
		deg[v] = int32(d)
		if int(d) > maxDeg {
			maxDeg = int(d)
		}
	}
	buckets := make([][]uint32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], uint32(v))
	}

	cur := 0
	for {
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxDeg {
			break
		}
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[v] || int(deg[v]) != cur {
			continue
		}
		res.InSet[v] = true
		res.Size++
		removed[v] = true
		vNbrs, err := ra.Fetch(v) // random read #1: v's own list
		if err != nil {
			return nil, ra.Stats(), fmt.Errorf("core: dynamic-update semi-external: %w", err)
		}
		// Copy: Fetch reuses its buffer and the nested loop fetches too.
		neighbors := append([]uint32(nil), vNbrs...)
		for _, u := range neighbors {
			if removed[u] {
				continue
			}
			removed[u] = true
			uNbrs, err := ra.Fetch(u) // random read per removed neighbor
			if err != nil {
				return nil, ra.Stats(), fmt.Errorf("core: dynamic-update semi-external: %w", err)
			}
			for _, w := range uNbrs {
				if removed[w] {
					continue
				}
				deg[w]--
				d := deg[w]
				buckets[d] = append(buckets[d], w)
				if int(d) < cur {
					cur = int(d)
				}
			}
		}
	}
	res.MemoryBytes = uint64(n) * (4 + 1 + 4 + 8 + 4) // deg+flags+buckets+offsets+degrees index
	return res, ra.Stats(), nil
}
