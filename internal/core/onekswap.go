package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/gio"
	"repro/internal/pipeline"
	"repro/internal/semiext"
)

// SwapOptions configure the one-k-swap and two-k-swap algorithms.
type SwapOptions struct {
	// MaxRounds caps the number of swap rounds. The worst case (the
	// cascade-swap graph of Figure 5) needs |V|/3 rounds; real graphs
	// converge in 2–9 (Table 7). ≤ 0 selects 10·|V| (effectively unbounded,
	// terminating via the no-swap condition).
	MaxRounds int
	// EarlyStopRounds stops after this many rounds even if swaps are still
	// firing — the paper's early-stop observation (Table 8: ≥97% of swaps
	// complete within three rounds). 0 disables early stop.
	EarlyStopRounds int
	// StallRounds stops after this many consecutive rounds with no net
	// gain, guarding against size-neutral swap oscillation. ≤ 0 selects 3.
	StallRounds int
	// Unfused disables scan fusion in the pass scheduler: every logical
	// pass runs as its own physical scan. Results are identical either way
	// — the scan-count and parity tests enforce it — so this knob exists
	// for those tests and for I/O-accounting baselines, not for production.
	Unfused bool
	// OnPhase, when non-nil, observes the state machine: it is called after
	// each phase of each round ("setup", "pre-swap", "swap", "post-swap",
	// and the final "sweep") with a read-only view of the state array.
	// Intended for tests and debugging; must not retain or mutate states.
	OnPhase func(round int, phase string, states []semiext.State)
}

// tracePhase invokes the OnPhase hook if configured.
func (o SwapOptions) tracePhase(round int, phase string, states semiext.States) {
	if o.OnPhase != nil {
		o.OnPhase(round, phase, states.Snapshot())
	}
}

// scheduler returns a pass scheduler over f honoring the Unfused knob and
// the run's cancellation and progress hooks.
func (o SwapOptions) scheduler(f Source, rn run) *pipeline.Scheduler {
	return pipeline.New(f, rn.sopts(o.Unfused))
}

// WithDefaults returns a copy of o with every unset field replaced by its
// documented default for an n-vertex graph: MaxRounds ≤ 0 selects 10·n+10
// (effectively unbounded) and StallRounds ≤ 0 selects 3. It is the single
// place swap defaults are decided — OneKSwap and TwoKSwap both apply it, and
// callers that need to display or log effective settings can call it
// themselves.
func (o SwapOptions) WithDefaults(n int) SwapOptions {
	if o.MaxRounds <= 0 {
		o.MaxRounds = 10*n + 10
	}
	if o.StallRounds <= 0 {
		o.StallRounds = 3
	}
	return o
}

// lastByBudget reports whether the round that just executed as index round
// (0-based) is the final one the round budget admits: the next loop
// iteration would be stopped by MaxRounds or the early-stop cap regardless
// of swap progress. Together with the in-round no-swap signal this lets a
// swap algorithm recognize its final post-swap scan while that scan is still
// ahead, which is what allows fusing the maximality sweep into it.
func (o SwapOptions) lastByBudget(round int) bool {
	if round+1 >= o.MaxRounds {
		return true
	}
	return o.EarlyStopRounds > 0 && round+1 >= o.EarlyStopRounds
}

// ErrNotIndependent is returned when the initial set handed to a swap
// algorithm contains an edge.
var ErrNotIndependent = errors.New("core: initial set is not independent")

// oneKProduct names the cross-round state product of one-k-swap's setup and
// post-swap passes: the complete state array, ISN sets and ISN preimage
// counts the next round's pre-swap pass consumes.
const oneKProduct = "one-k-states"

// OneKSwap runs Algorithm 2: starting from the independent set initial
// (indexed by vertex ID), it repeatedly exchanges one IS vertex for k ≥ 2
// non-IS vertices until no 1-k swap applies. Each round performs a pre-swap
// pass (detecting 1-2 swap skeletons and resolving swap conflicts by
// scan-order preemption), an in-memory swap step, and a post-swap scan
// (0↔1 swaps and state recomputation). Every pass is registered with the
// scan scheduler, and the pre-swap pass is carried across rounds: because
// the setup and post-swap scans maintain the ISN sets and preimage counts
// incrementally — complete the moment their scan ends — the pre-swap work
// of round r+1 rides round r's scan as a cross-round collection
// (pipeline.Pass.Consumes) and resolves from memory, so a steady-state
// round pays exactly one physical scan (down from two). On the final round
// the maximality sweep rides the post-swap scan the same way. Overflow of
// the carry buffer, a stall exit, or an Unfused schedule fall back to the
// classic dedicated scans. Only sequential scans touch the file; memory
// stays at a few words per vertex.
func OneKSwap(f Source, initial []bool, opts SwapOptions) (*Result, error) {
	return OneKSwapCtx(context.Background(), f, initial, opts, Hooks{})
}

// OneKSwapCtx is OneKSwap bound to a context and run hooks: ctx cancels
// between batches, between rounds and before carried-collection replays;
// hooks.OnScan observes per-batch progress and hooks.OnRound each completed
// round with its gain and I/O delta.
func OneKSwapCtx(ctx context.Context, f Source, initial []bool, opts SwapOptions, h Hooks) (*Result, error) {
	n := f.NumVertices()
	if len(initial) != n {
		return nil, fmt.Errorf("core: one-k-swap: initial set has %d entries for %d vertices", len(initial), n)
	}
	opts = opts.WithDefaults(n)
	rn := newRun(ctx, h)
	snap := snapshot(f.Stats())

	states := semiext.NewStates(n)
	isn := semiext.NewISN(n, false)
	size := 0
	for v, in := range initial {
		if in {
			states.Set(uint32(v), semiext.StateIS)
			size++
		} else {
			states.Set(uint32(v), semiext.StateNonIS)
		}
	}

	// Setup scan (Algorithm 2 lines 1–3): find A vertices and their ISN,
	// validating independence of the input along the way. Round 1's
	// pre-swap collection rides it — at end of scan the states and ISN
	// counts it consumes are complete.
	var carry *carryCollector
	if !opts.Unfused {
		carry = newCarryCollector(states, false)
	}
	setup := opts.scheduler(f, rn)
	setup.Add(pipeline.Pass{
		Name:           "one-k-setup",
		Produces:       oneKProduct,
		MutatesStates:  true,
		NeedsScanOrder: true,
		Batch: func(batch []gio.Record) error {
			for i := range batch {
				r := &batch[i]
				u := r.ID
				isMember := states.Get(u) == semiext.StateIS
				var (
					isNbrs int
					e      uint32
				)
				for _, nb := range r.Neighbors {
					if states.Get(nb) == semiext.StateIS {
						if isMember {
							return fmt.Errorf("%w: edge {%d,%d}", ErrNotIndependent, u, nb)
						}
						isNbrs++
						e = nb
					}
				}
				if !isMember && isNbrs == 1 {
					states.Set(u, semiext.StateAdjacent)
					isn.Set(u, e)
				}
			}
			return nil
		},
	})
	if carry != nil {
		setup.Add(carry.pass("one-k-pre-swap-carry", oneKProduct))
	}
	if err := setup.Run(); err != nil {
		return nil, err
	}
	opts.tracePhase(0, "setup", states)

	res := newResult(n)
	sw := newSweeper(f, states, rn.sopts(opts.Unfused))
	stall := 0
	for round := 0; round < opts.MaxRounds; round++ {
		if opts.EarlyStopRounds > 0 && round >= opts.EarlyStopRounds {
			break
		}
		if err := rn.err(); err != nil {
			return nil, fmt.Errorf("core: one-k-swap: round %d: %w", round+1, err)
		}
		roundSnap := snapshot(f.Stats())
		canSwap, err := oneKRound(f, states, isn, opts, rn, round+1, opts.lastByBudget(round), sw, carry)
		if err != nil {
			return nil, err
		}
		res.RoundIO = append(res.RoundIO, statsDelta(f.Stats(), roundSnap))
		res.Rounds++
		newSize := states.CountIS()
		res.RoundGains = append(res.RoundGains, newSize-size)
		rn.hooks.round(RoundEvent{
			Round: res.Rounds,
			Gain:  newSize - size,
			Size:  newSize,
			IO:    res.RoundIO[len(res.RoundIO)-1],
		})
		if newSize == size {
			stall++
		} else {
			stall = 0
		}
		size = newSize
		if !canSwap || stall >= opts.StallRounds {
			break
		}
	}

	// The sweep normally rode the final post-swap scan and is applied here,
	// after the last round's gain was counted; only an exit the round loop
	// could not predict (a stall, with swaps still firing) pays the classic
	// standalone sweep scan instead.
	if err := sw.finish(); err != nil {
		return nil, err
	}
	opts.tracePhase(res.Rounds, "sweep", states)

	res.collectIS(states)
	res.MemoryBytes = states.MemoryBytes() + isn.MemoryBytes() + sw.buf.MemoryPeak()
	if carry != nil {
		res.MemoryBytes += carry.memoryBytes()
	}
	res.IO = statsDelta(f.Stats(), snap)
	return res, nil
}

// oneKPreRecord runs the pre-swap logic of Algorithm 2 lines 7–14 for one
// record. It is shared between the classic dedicated pre-swap scan and the
// cross-round replay, which both invoke it for every A vertex in scan
// order — against the same completed post-swap state, so the two paths are
// bit-identical.
func oneKPreRecord(states semiext.States, isn *semiext.ISN, u uint32, neighbors []uint32) {
	if states.Get(u) != semiext.StateAdjacent {
		return
	}
	// (i) Conflict: a neighbor already claimed a swap this round.
	for _, nb := range neighbors {
		if states.Get(nb) == semiext.StateProtected {
			states.Set(u, semiext.StateConflict)
			isn.Clear(u)
			return
		}
	}
	w, _, cnt := isn.Get(u)
	if cnt != 1 {
		// Defensive: an A vertex always has exactly one ISN here.
		states.Set(u, semiext.StateNonIS)
		return
	}
	switch states.Get(w) {
	case semiext.StateIS:
		// (ii) 1-2 swap skeleton (u, v, w): some other still-A vertex v
		// with ISN(v) = w is not adjacent to u. With x = u's neighbors
		// naming w, a witness exists iff |ISN⁻¹(w)| ≥ x + 2 (the count
		// includes u itself).
		x := uint32(0)
		for _, nb := range neighbors {
			if states.Get(nb) == semiext.StateAdjacent && isn.Has(nb, w) {
				if _, _, c := isn.Get(nb); c == 1 {
					x++
				}
			}
		}
		if isn.PreimageCount(w) >= x+2 {
			states.Set(u, semiext.StateProtected)
			isn.Clear(u)
			states.Set(w, semiext.StateRetrograde)
		}
	case semiext.StateRetrograde:
		// (iii) w is already leaving; u joins the swap.
		states.Set(u, semiext.StateProtected)
		isn.Clear(u)
	}
}

// oneKRound executes one round: pre-swap pass, swap step, post-swap scan.
// It reports whether any swap fired (an R vertex left the set). The
// pre-swap pass resolves from the carry collected by the previous scan when
// one is available, paying no physical scan; otherwise (unfused, overflow,
// first round of an Unfused run) it runs as the classic dedicated scan.
// lastByBudget marks a round known — before its post-swap scan starts — to
// be the last (no swap fired, or the round budget is exhausted); the
// maximality sweep is then scheduled as a deferred pass fused into the
// post-swap scan, and no carry is collected. A non-final post-swap scan
// instead carries the next round's pre-swap collection.
func oneKRound(f Source, states semiext.States, isn *semiext.ISN, opts SwapOptions, rn run, round int, lastByBudget bool, sw *sweeper, carry *carryCollector) (bool, error) {
	// Pre-swap (Algorithm 2 lines 7–14): replay the carried collection, or
	// pay the classic dedicated scan. The replay is the carried/cross-round
	// path, so it honors cancellation like a dedicated scan would.
	if carry != nil && carry.ready() {
		if err := rn.err(); err != nil {
			return false, fmt.Errorf("core: one-k-swap: pre-swap (carried): %w", err)
		}
		pipeline.ResolveCarried(f)
		carry.forEach(func(u uint32, neighbors []uint32) {
			oneKPreRecord(states, isn, u, neighbors)
		})
		carry.reset()
	} else {
		pre := opts.scheduler(f, rn)
		pre.Add(pipeline.Pass{
			Name:           "one-k-pre-swap",
			MutatesStates:  true,
			NeedsScanOrder: true,
			Batch: func(batch []gio.Record) error {
				for i := range batch {
					oneKPreRecord(states, isn, batch[i].ID, batch[i].Neighbors)
				}
				return nil
			},
		})
		if err := pre.Run(); err != nil {
			return false, fmt.Errorf("core: one-k-swap: pre-swap: %w", err)
		}
	}
	opts.tracePhase(round, "pre-swap", states)

	// Swap step (lines 15–19). Pure state-array pass: no file access.
	canSwap := false
	for v := 0; v < states.Len(); v++ {
		switch states.Get(uint32(v)) {
		case semiext.StateProtected:
			states.Set(uint32(v), semiext.StateIS)
		case semiext.StateRetrograde:
			states.Set(uint32(v), semiext.StateNonIS)
			canSwap = true
		}
	}
	opts.tracePhase(round, "swap", states)

	// Post-swap scan (lines 20–28), with the maximality sweep fused in when
	// this is knowably the final round — and the next round's pre-swap
	// collection fused in when it is not.
	post := opts.scheduler(f, rn)
	postPass := postSwapPass(states, isn, false)
	post.Add(postPass)
	switch {
	case !canSwap || lastByBudget:
		post.Add(sw.pass(postPass.Name))
	case carry != nil:
		post.Add(carry.pass("one-k-pre-swap-carry", postPass.Produces))
	}
	if err := post.Run(); err != nil {
		return false, fmt.Errorf("core: one-k-swap: post-swap: %w", err)
	}
	opts.tracePhase(round, "post-swap", states)
	return canSwap, nil
}

// postSwapPass builds the post-swap scan (Algorithm 2 lines 20–28; with two
// set, Algorithm 3 lines 15–23) as a logical pass: 0↔1 swaps and
// recomputation of A states and ISN sets for the next round.
//
// One deliberate extension over the paper's pseudocode: the recomputation
// covers N vertices as well as C/A. A vertex that was N because it had two
// IS neighbors can end the round with exactly one (a swap removed the
// other) and must become A, or later swap opportunities are lost — the
// cascade-swap graph of Figure 5 cannot progress past its first group
// otherwise, contradicting the paper's own worst-case analysis.
func postSwapPass(states semiext.States, isn *semiext.ISN, two bool) pipeline.Pass {
	name, product := "one-k-post-swap", oneKProduct
	if two {
		name, product = "two-k-post-swap", twoKProduct
	}
	return pipeline.Pass{
		Name:           name,
		Produces:       product,
		MutatesStates:  true,
		NeedsScanOrder: true,
		Batch: func(batch []gio.Record) error {
		records:
			for i := range batch {
				r := &batch[i]
				u := r.ID
				switch states.Get(u) {
				case semiext.StateNonIS, semiext.StateConflict, semiext.StateAdjacent:
				default:
					continue
				}
				isn.Clear(u)
				var (
					isNbrs int
					e1, e2 uint32
				)
				for _, nb := range r.Neighbors {
					if states.Get(nb) == semiext.StateIS {
						switch isNbrs {
						case 0:
							e1 = nb
						case 1:
							e2 = nb
						}
						isNbrs++
					}
				}
				switch {
				case isNbrs == 1:
					states.Set(u, semiext.StateAdjacent)
					isn.Set(u, e1)
				case isNbrs == 2 && two:
					states.Set(u, semiext.StateAdjacent)
					isn.Set(u, e1, e2)
				case isNbrs == 0:
					// 0↔1 swap: u may join only if every neighbor is C or N. The
					// strict condition (an A neighbor blocks u) is load-bearing: an
					// A neighbor recorded its ISN earlier in this scan and could
					// later swap against it, so u joining here could create an IS
					// edge one round later.
					states.Set(u, semiext.StateNonIS)
					for _, nb := range r.Neighbors {
						if s := states.Get(nb); s != semiext.StateConflict && s != semiext.StateNonIS {
							continue records
						}
					}
					states.Set(u, semiext.StateIS)
				default:
					states.Set(u, semiext.StateNonIS)
				}
			}
			return nil
		},
	}
}
