package core

import (
	"fmt"
	"testing"

	"repro/internal/plrg"
	"repro/internal/semiext"
)

// TestSwapsRespectFigure3 runs both swap algorithms under the Figure 3
// transition checker: every state change observed between phases must be an
// edge of the paper's state-transition diagram (as extended in
// internal/semiext/transitions.go).
func TestSwapsRespectFigure3(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		for _, beta := range []float64{1.8, 2.4} {
			g := plrg.PowerLawN(600, beta, seed)
			f := writeFile(t, g, true)
			greedy, err := Greedy(f)
			if err != nil {
				t.Fatal(err)
			}

			var tc semiext.TransitionChecker
			var violation error
			hook := func(round int, phase string, states []semiext.State) {
				if violation != nil {
					return
				}
				if err := tc.Check(fmt.Sprintf("round %d %s", round, phase), states); err != nil {
					violation = err
				}
			}
			if _, err := OneKSwap(f, greedy.InSet, SwapOptions{OnPhase: hook}); err != nil {
				t.Fatal(err)
			}
			if violation != nil {
				t.Fatalf("one-k seed=%d beta=%.1f: %v", seed, beta, violation)
			}

			tc = semiext.TransitionChecker{}
			violation = nil
			if _, err := TwoKSwap(f, greedy.InSet, SwapOptions{OnPhase: hook}); err != nil {
				t.Fatal(err)
			}
			if violation != nil {
				t.Fatalf("two-k seed=%d beta=%.1f: %v", seed, beta, violation)
			}
		}
	}
}

// TestCascadeRespectsFigure3 exercises the R-heavy cascade path under the
// checker, where every round demotes exactly one IS vertex.
func TestCascadeRespectsFigure3(t *testing.T) {
	g := plrg.Cascade(12)
	f := writeFile(t, g, true)
	init := members(36, plrg.CascadeCenters(12)...)
	var tc semiext.TransitionChecker
	var violation error
	hook := func(round int, phase string, states []semiext.State) {
		if violation != nil {
			return
		}
		if err := tc.Check(fmt.Sprintf("round %d %s", round, phase), states); err != nil {
			violation = err
		}
	}
	if _, err := OneKSwap(f, init, SwapOptions{OnPhase: hook}); err != nil {
		t.Fatal(err)
	}
	if violation != nil {
		t.Fatal(violation)
	}
}
