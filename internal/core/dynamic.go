package core

import (
	"context"
	"fmt"

	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/pipeline"
)

// LoadGraphSource reads the whole graph into memory through one scheduled
// sequential scan of f — the load half of the DynamicUpdate baseline. Unlike
// gio.LoadGraph it runs on the caller's scan engine, so it honors the run's
// context, reports per-batch progress through the hooks, and accounts into
// the run's stat scope like every other pass.
func LoadGraphSource(ctx context.Context, f Source, h Hooks) (*graph.Graph, error) {
	b := graph.NewBuilder(f.NumVertices())
	s := pipeline.New(f, newRun(ctx, h).sopts(false))
	s.Add(pipeline.Pass{
		Name:     "load-graph",
		ReadOnly: true, // writes only the builder no co-scheduled pass reads
		Batch: func(batch []gio.Record) error {
			for i := range batch {
				r := &batch[i]
				for _, nb := range r.Neighbors {
					b.AddEdge(r.ID, nb)
				}
			}
			return nil
		},
	})
	if err := s.Run(); err != nil {
		return nil, fmt.Errorf("core: load graph: %w", err)
	}
	return b.Build(), nil
}

// DynamicUpdate is the classical in-memory greedy of Halldórsson and
// Radhakrishnan (the paper's DYNAMICUPDATE competitor): repeatedly move a
// minimum-degree vertex into the independent set, delete it and its
// neighbors from the graph, and update the degrees of the affected vertices.
// A bucket queue keyed by current degree makes the whole procedure
// O(|V| + |E|), but unlike the semi-external algorithms it needs the entire
// graph in memory — the paper's motivating limitation.
func DynamicUpdate(g *graph.Graph) *Result {
	n := g.NumVertices()
	res := newResult(n)
	if n == 0 {
		return res
	}

	deg := make([]int32, n)
	removed := make([]bool, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		d := g.Degree(uint32(v))
		deg[v] = int32(d)
		if d > maxDeg {
			maxDeg = d
		}
	}

	// Bucket queue: buckets[d] holds vertices whose degree was d when
	// enqueued; stale entries are skipped on pop by re-checking deg.
	buckets := make([][]uint32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], uint32(v))
	}

	cur := 0
	for {
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxDeg {
			break
		}
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[v] || int(deg[v]) != cur {
			continue // deleted or stale entry
		}
		// v joins the IS; remove v and its surviving neighbors.
		res.InSet[v] = true
		res.Size++
		removed[v] = true
		for _, u := range g.Neighbors(v) {
			if removed[u] {
				continue
			}
			removed[u] = true
			// Removing u lowers the degree of u's surviving neighbors.
			for _, w := range g.Neighbors(u) {
				if removed[w] {
					continue
				}
				deg[w]--
				d := deg[w]
				buckets[d] = append(buckets[d], w)
				if int(d) < cur {
					cur = int(d)
				}
			}
		}
	}

	// Memory: the CSR graph itself plus degrees, flags and buckets — the
	// point of the comparison is that this scales with |E|, not |V|.
	res.MemoryBytes = uint64(n)*(4+1+4) + uint64(2*g.NumEdges())*4
	return res
}
