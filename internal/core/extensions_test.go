package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/plrg"
)

func TestRandomizedMaximal(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := plrg.ErdosRenyi(120, 360, seed)
		f := writeFile(t, g, false)
		r, err := RandomizedMaximal(f, seed+100)
		if err != nil {
			t.Fatal(err)
		}
		mustIndependent(t, f, r.InSet)
		mustMaximal(t, f, r.InSet)
		if r.Rounds < 1 {
			t.Fatal("no rounds recorded")
		}
	}
}

func TestRandomizedMaximalDeterministicPerSeed(t *testing.T) {
	g := plrg.PowerLawN(500, 2.0, 3)
	f := writeFile(t, g, true)
	a, err := RandomizedMaximal(f, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomizedMaximal(f, 7)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.InSet {
		if a.InSet[v] != b.InSet[v] {
			t.Fatalf("same seed diverged at vertex %d", v)
		}
	}
	c, err := RandomizedMaximal(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	mustIndependent(t, f, c.InSet)
}

func TestRandomizedMaximalEdgeCases(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.NewBuilder(0).Build(),
		graph.NewBuilder(7).Build(), // isolated vertices: all join
		plrg.Complete(9),            // exactly one joins
	} {
		f := writeFile(t, g, false)
		r, err := RandomizedMaximal(f, 1)
		if err != nil {
			t.Fatal(err)
		}
		mustIndependent(t, f, r.InSet)
		mustMaximal(t, f, r.InSet)
		if g.NumVertices() == 7 && r.Size != 7 {
			t.Fatalf("isolated graph: size %d, want 7", r.Size)
		}
		if g.NumVertices() == 9 && g.NumEdges() > 0 && r.Size != 1 {
			t.Fatalf("complete graph: size %d, want 1", r.Size)
		}
	}
}

func TestColoringKnownGraphs(t *testing.T) {
	cases := []struct {
		name      string
		g         *graph.Graph
		maxWant   int // greedy classes allowed (≥ chromatic number)
		exactWant int // chromatic number, checked as a lower bound
	}{
		// IS extraction is a greedy heuristic: on a path the first class can
		// fragment the remainder, costing one extra class over χ = 2.
		{"path", plrg.Path(10), 3, 2},
		{"evencycle", plrg.Cycle(8), 2, 2},
		{"oddcycle", plrg.Cycle(9), 3, 3},
		{"complete", plrg.Complete(5), 5, 5},
		{"star", plrg.Star(6), 2, 2},
		{"isolated", graph.NewBuilder(4).Build(), 1, 1},
	}
	for _, c := range cases {
		f := writeFile(t, c.g, true)
		col, err := ColorByIS(f, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if err := VerifyColoring(f, col); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if col.NumColors < c.exactWant {
			t.Errorf("%s: %d colors is below the chromatic number %d — coloring must be broken",
				c.name, col.NumColors, c.exactWant)
		}
		if col.NumColors > c.maxWant {
			t.Errorf("%s: %d colors, expected at most %d from IS extraction",
				c.name, col.NumColors, c.maxWant)
		}
		total := 0
		for _, s := range col.ClassSizes {
			if s == 0 {
				t.Errorf("%s: empty color class", c.name)
			}
			total += s
		}
		if total != c.g.NumVertices() {
			t.Errorf("%s: class sizes sum to %d of %d", c.name, total, c.g.NumVertices())
		}
	}
}

func TestColoringRandomProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%60) + 2
		g := plrg.ErdosRenyi(n, int(mRaw), seed)
		// Write to a throwaway dir (testing/quick cannot use t.TempDir
		// inside the property without capturing t; that is fine here).
		file := writeFileQuick(g)
		if file == nil {
			return false
		}
		defer file.Close()
		col, err := ColorByIS(file, 0)
		if err != nil {
			return false
		}
		if VerifyColoring(file, col) != nil {
			return false
		}
		// Greedy-by-IS never needs more than maxdeg+1 colors.
		return col.NumColors <= g.MaxDegree()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestColoringMaxColorsGuard(t *testing.T) {
	f := writeFile(t, plrg.Complete(6), true)
	if _, err := ColorByIS(f, 3); err == nil {
		t.Fatal("K6 cannot be colored with 3 classes")
	}
}

func TestColoringFirstClassIsGreedyIS(t *testing.T) {
	// On a degree-sorted file the first extracted class is exactly the
	// Greedy independent set.
	g := plrg.PowerLawN(400, 2.0, 5)
	f := writeFile(t, g, true)
	col, err := ColorByIS(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Greedy(f)
	if err != nil {
		t.Fatal(err)
	}
	if col.ClassSizes[0] != greedy.Size {
		t.Fatalf("first class %d, greedy %d", col.ClassSizes[0], greedy.Size)
	}
}

// TestSwapInvariantsQuick drives the swap algorithms through testing/quick
// generated graphs and asserts the paper's core guarantees hold under every
// seed: independence, maximality, and monotone growth from the seed set.
func TestSwapInvariantsQuick(t *testing.T) {
	prop := func(seed int64, nRaw uint8, density uint8) bool {
		n := int(nRaw%80) + 4
		m := n * (int(density%5) + 1) / 2
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(n)
		for i := 0; i < m; i++ {
			b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		g := b.Build()
		f := writeFileQuick(g)
		if f == nil {
			return false
		}
		defer f.Close()
		greedy, err := Greedy(f)
		if err != nil {
			return false
		}
		one, err := OneKSwap(f, greedy.InSet, SwapOptions{})
		if err != nil {
			return false
		}
		two, err := TwoKSwap(f, greedy.InSet, SwapOptions{})
		if err != nil {
			return false
		}
		for _, r := range []*Result{greedy, one, two} {
			if VerifyIndependent(f, r.InSet) != nil || VerifyMaximal(f, r.InSet) != nil {
				return false
			}
		}
		return one.Size >= greedy.Size && two.Size >= greedy.Size
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
