package core

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/exec"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/plrg"
)

// The randomized cross-algorithm property harness: rather than trusting the
// two tiny checked-in fixtures, it drives the generator models the paper
// evaluates on — the power-law P(α,β) model and the uniform (Erdős–Rényi)
// model — across a seed sweep and holds every algorithm to the properties
// the paper claims, on every graph:
//
//   - the returned set is independent AND maximal (core.VerifyBoth, itself
//     a fused pair of scan passes);
//   - fused and unfused schedules produce bit-identical results (the
//     cross-round carry, the sweep fusion and the classic dedicated scans
//     are different executions of the same algorithm);
//   - the parallel partitioned executor at workers 2 and 4 reproduces the
//     sequential result exactly;
//   - the scan accounting stays sane (PhysicalScans ≤ Scans, fused logical
//     count equal to unfused).

// propertyGraphs yields the generator sweep: one power-law and one uniform
// graph per seed. Sizes are kept small enough that the whole matrix (seeds ×
// models × algorithms × schedules × workers) stays in test-suite budget
// while still producing multi-round swap runs on many seeds.
func propertyGraphs(seed int64) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"plrg":    plrg.PowerLawN(150, 2.0, seed),
		"uniform": plrg.ErdosRenyi(120, 300, seed),
	}
}

// writeSorted writes g degree-sorted (the paper's preprocessing) and opens
// it with fresh stats.
func writeSorted(t *testing.T, g *graph.Graph) *gio.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prop.adj")
	if err := gio.WriteGraphSorted(path, g, nil); err != nil {
		t.Fatal(err)
	}
	stats := &gio.Counters{}
	f, err := gio.Open(path, 0, stats)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// requireSameResult asserts two runs of the same algorithm produced
// bit-identical sets and round traces.
func requireSameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.InSet, b.InSet) || a.Size != b.Size {
		t.Fatalf("%s: sets differ (%d vs %d vertices)", label, a.Size, b.Size)
	}
	if a.Rounds != b.Rounds || !reflect.DeepEqual(a.RoundGains, b.RoundGains) {
		t.Fatalf("%s: round traces differ: %d/%v vs %d/%v",
			label, a.Rounds, a.RoundGains, b.Rounds, b.RoundGains)
	}
	if a.SCHighWater != b.SCHighWater {
		t.Fatalf("%s: SC high water differs: %d vs %d", label, a.SCHighWater, b.SCHighWater)
	}
}

// TestPropertyAllAlgorithms is the seed sweep over all six algorithms.
func TestPropertyAllAlgorithms(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if testing.Short() {
		seeds = seeds[:3]
	}
	multiround := 0
	for _, seed := range seeds {
		for model, g := range propertyGraphs(seed) {
			t.Run(fmt.Sprintf("%s-seed%d", model, seed), func(t *testing.T) {
				multiround += runPropertyCase(t, g)
			})
		}
	}
	// The sweep must actually exercise the cross-round carry: demand that a
	// reasonable share of the generated graphs took ≥ 2 swap rounds.
	if min := len(seeds) / 3; multiround < min {
		t.Errorf("only %d of %d seed/model cases ran multi-round swaps (want ≥ %d); regenerate the sweep parameters",
			multiround, 2*len(seeds), min)
	}
}

// runPropertyCase checks every property on one graph and reports whether
// the swap algorithms ran more than one round (i.e. the cross-round carry
// was exercised in steady state).
func runPropertyCase(t *testing.T, g *graph.Graph) (multiround int) {
	t.Helper()
	f := writeSorted(t, g)

	// Greedy seeds the swaps and must itself be independent + maximal.
	seed, err := Greedy(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyBoth(f, seed.InSet); err != nil {
		t.Fatalf("greedy: %v", err)
	}

	base, err := Baseline(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyBoth(f, base.InSet); err != nil {
		t.Fatalf("baseline: %v", err)
	}

	ext, err := ExternalMaximal(f, ExternalMaximalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyBoth(f, ext.InSet); err != nil {
		t.Fatalf("external-maximal: %v", err)
	}

	// DynamicUpdate is the in-memory competitor; verify against the graph.
	dyn := DynamicUpdate(g)
	if err := VerifyIndependentGraph(g, dyn.InSet); err != nil {
		t.Fatalf("dynamic-update: %v", err)
	}
	if err := VerifyMaximalGraph(g, dyn.InSet); err != nil {
		t.Fatalf("dynamic-update: %v", err)
	}

	// Swap algorithms: fused vs unfused parity, verification, monotone
	// improvement over the seed, and workers parity.
	type swapAlg struct {
		name string
		run  func(src Source, opts SwapOptions) (*Result, error)
	}
	for _, alg := range []swapAlg{
		{"one-k-swap", func(src Source, opts SwapOptions) (*Result, error) {
			return OneKSwap(src, seed.InSet, opts)
		}},
		{"two-k-swap", func(src Source, opts SwapOptions) (*Result, error) {
			return TwoKSwap(src, seed.InSet, opts)
		}},
	} {
		fused, err := alg.run(f, SwapOptions{})
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		if err := VerifyBoth(f, fused.InSet); err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		if fused.Size < seed.Size {
			t.Fatalf("%s: shrank the seed set: %d < %d", alg.name, fused.Size, seed.Size)
		}
		if fused.Rounds > 1 {
			multiround = 1
		}

		unfused, err := alg.run(f, SwapOptions{Unfused: true})
		if err != nil {
			t.Fatalf("%s unfused: %v", alg.name, err)
		}
		requireSameResult(t, alg.name+" fused-vs-unfused", fused, unfused)
		if unfused.IO.PhysicalScans != unfused.IO.Scans {
			t.Fatalf("%s: unfused run fused something: %d physical of %d logical",
				alg.name, unfused.IO.PhysicalScans, unfused.IO.Scans)
		}
		if fused.IO.Scans != unfused.IO.Scans {
			t.Fatalf("%s: fused logical scans %d != unfused %d",
				alg.name, fused.IO.Scans, unfused.IO.Scans)
		}
		if fused.IO.PhysicalScans > fused.IO.Scans {
			t.Fatalf("%s: physical %d > logical %d", alg.name, fused.IO.PhysicalScans, fused.IO.Scans)
		}

		for _, workers := range []int{2, 4} {
			par, err := alg.run(exec.New(f, workers), SwapOptions{})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", alg.name, workers, err)
			}
			requireSameResult(t, fmt.Sprintf("%s workers=%d", alg.name, workers), fused, par)
		}
	}

	// Workers parity for the scan-only algorithms.
	for _, workers := range []int{2, 4} {
		pg, err := Greedy(exec.New(f, workers))
		if err != nil {
			t.Fatalf("greedy workers=%d: %v", workers, err)
		}
		requireSameResult(t, fmt.Sprintf("greedy workers=%d", workers), seed, pg)
		pe, err := ExternalMaximal(exec.New(f, workers), ExternalMaximalOptions{})
		if err != nil {
			t.Fatalf("external-maximal workers=%d: %v", workers, err)
		}
		requireSameResult(t, fmt.Sprintf("external-maximal workers=%d", workers), ext, pe)
	}
	return multiround
}
