package core

import (
	"testing"

	"repro/internal/plrg"
)

func TestDynamicUpdateSemiExternal(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := plrg.ErdosRenyi(150, 450, seed)
		f := writeFile(t, g, true)
		r, raStats, err := DynamicUpdateSemiExternal(f)
		if err != nil {
			t.Fatal(err)
		}
		mustIndependent(t, f, r.InSet)
		mustMaximal(t, f, r.InSet)
		// The on-disk variant runs the same min-degree policy; only
		// neighbor-iteration order differs (file lists are degree-sorted,
		// the CSR is ID-sorted), so sizes agree up to tie-breaking noise.
		inMem := DynamicUpdate(g)
		diff := r.Size - inMem.Size
		if diff < 0 {
			diff = -diff
		}
		if diff > inMem.Size/20+1 {
			t.Fatalf("seed %d: on-disk %d vs in-memory %d diverge beyond tie-breaking",
				seed, r.Size, inMem.Size)
		}
		// And it pays in random reads: one per IS vertex plus one per
		// removed neighbor — together at least |V| minus the untouched
		// isolated vertices; for these dense graphs, at least |V|/2.
		if raStats.RandomReads < uint64(g.NumVertices())/2 {
			t.Fatalf("seed %d: only %d random reads — remark not demonstrated",
				seed, raStats.RandomReads)
		}
	}
}

func TestDynamicUpdateSemiExternalRejectsCompressed(t *testing.T) {
	g := plrg.Path(10)
	// Build a compressed file by hand.
	f := writeFile(t, g, true)
	// writeFile produces raw files; exercise the rejection through the
	// random-access layer directly on a compressed one instead.
	_ = f
	// Covered in gio tests; here we just ensure the raw path works on tiny
	// graphs.
	r, _, err := DynamicUpdateSemiExternal(f)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != 5 {
		t.Fatalf("path10: size %d, want 5", r.Size)
	}
}
