package core

import (
	"context"
	"fmt"

	"repro/internal/extpq"
	"repro/internal/gio"
	"repro/internal/pipeline"
)

// ExternalMaximalOptions configure ExternalMaximal.
type ExternalMaximalOptions struct {
	// PQMemoryCapacity bounds the external priority queue's in-memory
	// buffer (keys); ≤ 0 selects extpq's default.
	PQMemoryCapacity int
	// TempDir receives priority-queue spill files; empty selects the OS
	// temp directory.
	TempDir string
}

// ExternalMaximal computes a maximal independent set with time-forward
// processing, the deterministic external algorithm of Zeh implemented by
// the paper's STXXL competitor. Vertices are processed in scan order; a
// vertex joins the set unless an earlier IS vertex forwarded it an
// "excluded" message through an external priority queue keyed by scan
// position. Two sequential scans plus O(sort(|E|)) priority-queue I/O; the
// two logical passes cannot share a scan — the main pass reads positions of
// later records the position pass has not assigned yet — so each runs as
// its own scheduler group.
//
// The algorithm guarantees maximality only — not size — which is exactly
// the gap the paper's swap algorithms close.
func ExternalMaximal(f Source, opts ExternalMaximalOptions) (*Result, error) {
	return ExternalMaximalCtx(context.Background(), f, opts, Hooks{})
}

// ExternalMaximalCtx is ExternalMaximal bound to a context and run hooks:
// ctx cancels both passes between batches, hooks.OnScan observes per-batch
// progress.
func ExternalMaximalCtx(ctx context.Context, f Source, opts ExternalMaximalOptions, h Hooks) (*Result, error) {
	n := f.NumVertices()
	rn := newRun(ctx, h)
	snap := snapshot(f.Stats())

	// Scan 1: record each vertex's scan position so messages can be keyed
	// by processing time.
	pos := make([]uint32, n)
	posNext := uint32(0)
	posSched := pipeline.New(f, rn.sopts(false))
	posSched.Add(pipeline.Pass{
		Name:           "external-positions",
		ReadOnly:       true, // writes only the position array no co-scheduled pass reads
		NeedsScanOrder: true,
		Batch: func(batch []gio.Record) error {
			for j := range batch {
				pos[batch[j].ID] = posNext
				posNext++
			}
			return nil
		},
	})
	if err := posSched.Run(); err != nil {
		return nil, fmt.Errorf("core: external maximal: position scan: %w", err)
	}

	pq := extpq.New(extpq.Options{MemoryCapacity: opts.PQMemoryCapacity, Dir: opts.TempDir})
	defer pq.Close()

	res := newResult(n)
	var pqPeak int
	mainSched := pipeline.New(f, rn.sopts(false))
	mainSched.Add(pipeline.Pass{
		Name:           "external-time-forward",
		NeedsScanOrder: true,
		Batch: func(batch []gio.Record) error {
			for i := range batch {
				r := &batch[i]
				me := uint64(pos[r.ID])
				// Drain messages addressed to this position; any message
				// means an earlier IS vertex excluded us.
				excluded := false
				for {
					k, ok, err := pq.Min()
					if err != nil {
						return err
					}
					if !ok || k > me {
						break
					}
					if _, _, err := pq.Pop(); err != nil {
						return err
					}
					if k == me {
						excluded = true
					}
					// k < me cannot happen: messages target strictly later
					// positions and are drained in order. Tolerated silently.
				}
				if !excluded {
					res.InSet[r.ID] = true
					res.Size++
					for _, u := range r.Neighbors {
						if uint64(pos[u]) > me {
							if err := pq.Push(uint64(pos[u])); err != nil {
								return err
							}
						}
					}
				}
				if pq.Len() > pqPeak {
					pqPeak = pq.Len()
				}
			}
			return nil
		},
	})
	if err := mainSched.Run(); err != nil {
		return nil, fmt.Errorf("core: external maximal: %w", err)
	}

	// Memory: position array + the PQ's bounded in-memory buffer.
	memCap := opts.PQMemoryCapacity
	if memCap <= 0 {
		memCap = extpq.DefaultMemoryCapacity
	}
	if pqPeak < memCap {
		memCap = pqPeak
	}
	res.MemoryBytes = uint64(n)*4 + uint64(memCap)*8
	res.IO = statsDelta(f.Stats(), snap)
	return res, nil
}
