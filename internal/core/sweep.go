package core

import (
	"repro/internal/gio"
	"repro/internal/pipeline"
	"repro/internal/semiext"
)

// sweeper is the maximality sweep restructured as a deferred logical pass so
// the pass scheduler may fuse it into the final post-swap scan of a swap
// algorithm — the round pair the paper's scan count pays twice for.
//
// The fusion is sound because of two properties, which together make the
// fused run bit-identical to a dedicated sweep scan executed after the
// post-swap scan:
//
//  1. The sweep batch callback never mutates shared state mid-scan — it only
//     records pending candidates — so the co-scheduled post-swap pass sees
//     exactly the state trajectory it would see scanning alone.
//  2. During a post-swap scan, IS membership only grows (post-swap touches
//     only non-IS vertices of the current record). A vertex skipped because
//     some neighbor is already IS would therefore also be skipped by a sweep
//     running after the scan; every other candidate is deferred together
//     with its in-hand neighbor list and resolved in scan order once the
//     scan — and with it every possible IS addition — has completed.
//
// The deferral needs the pending vertices' neighbor lists in memory — a
// semiext.RecordBuffer, the same bounded deferral store the cross-round
// carry uses. That stays within the semi-external budget for the sweep's
// real population (vertices with no IS neighbor after swapping are rare),
// but it is bounded defensively: past ~|V| stored neighbors the buffer
// overflows and apply falls back to the classic dedicated sweep scan, which
// is equivalent by construction (property 2's "sweep after the scan" is
// exactly that scan). The same collect-then-resolve implementation also
// runs unfused — collection as its own physical scan — where it
// degenerates to the classic sweep over the final post-swap states.
type sweeper struct {
	f      Source
	states semiext.States
	buf    *semiext.RecordBuffer // pending vertices, in scan order

	// sopts carries the owning run's scheduler options (context, progress)
	// into the fallback dedicated sweep scan.
	sopts pipeline.Options

	// collected is set when the sweep pass was scheduled into a post-swap
	// scan; the owning algorithm must then call apply after its round loop
	// (not earlier: the sweep's additions belong to no round's gain count).
	collected bool
}

func newSweeper(f Source, states semiext.States, sopts pipeline.Options) *sweeper {
	return &sweeper{
		f:      f,
		states: states,
		buf:    semiext.NewRecordBuffer(states.Len()+1024, false),
		sopts:  sopts,
	}
}

// pass returns the sweep as a logical pass riding the named post-swap pass,
// which the sweep is constructed to tolerate (FuseAfter). The pass only
// collects; the algorithm applies the collected additions via apply once
// its round loop has finished, so per-round gain accounting and phase
// traces never include sweep additions.
func (sw *sweeper) pass(after string) pipeline.Pass {
	sw.collected = true
	return pipeline.Pass{
		Name:           "maximality-sweep",
		FuseAfter:      after,
		NeedsScanOrder: true,
		// Reads shared states during the scan; every write is deferred past
		// it (DeferredWrites keeps the planner from fusing a later
		// shared-state pass that would observe pre-apply state).
		DeferredWrites: true,
		Batch:          sw.batch,
	}
}

func (sw *sweeper) batch(batch []gio.Record) error {
	for i := range batch {
		r := &batch[i]
		u := r.ID
		if sw.states.Get(u) == semiext.StateIS {
			continue
		}
		covered := false
		for _, nb := range r.Neighbors {
			if sw.states.Get(nb) == semiext.StateIS {
				covered = true
				break
			}
		}
		if !covered {
			sw.buf.Append(u, 0, r.Neighbors)
		}
	}
	return nil
}

// finish makes the state array maximal after the round loop: it applies the
// collection left by a fused final post-swap scan, or — when the loop ended
// on an exit it could not predict (a stall) and no collection exists — runs
// the classic standalone sweep scan.
func (sw *sweeper) finish() error {
	if sw.collected {
		return sw.apply()
	}
	return maximalitySweep(sw.f, sw.states, sw.sopts)
}

// apply resolves the pending candidates in scan order: a vertex joins iff
// none of its recorded neighbors has (by now) entered the set. On overflow
// it runs the classic dedicated sweep scan instead.
func (sw *sweeper) apply() error {
	if sw.buf.Overflowed() {
		return maximalitySweep(sw.f, sw.states, sw.sopts)
	}
	sw.buf.ForEach(func(u uint32, neighbors []uint32) {
		for _, nb := range neighbors {
			if sw.states.Get(nb) == semiext.StateIS {
				return
			}
		}
		sw.states.Set(u, semiext.StateIS)
	})
	sw.buf.Reset()
	return nil
}

// maximalitySweep adds every non-IS vertex with no IS neighbor, in scan
// order, guaranteeing the returned set is maximal even when the strict 0↔1
// condition left isolated candidates behind. A single sequential scan
// suffices: a vertex skipped here has an IS neighbor, and additions only
// give later vertices more IS neighbors. It remains the sweeper's overflow
// fallback; the scheduled path is sweeper.pass. Run through the scheduler so
// it honors the run's context and progress hooks like every other scan.
func maximalitySweep(f Source, states semiext.States, sopts pipeline.Options) error {
	s := pipeline.New(f, sopts)
	s.Add(pipeline.Pass{
		Name:           "maximality-sweep-classic",
		MutatesStates:  true,
		NeedsScanOrder: true,
		Batch: func(batch []gio.Record) error {
		records:
			for i := range batch {
				r := &batch[i]
				u := r.ID
				if states.Get(u) == semiext.StateIS {
					continue
				}
				for _, nb := range r.Neighbors {
					if states.Get(nb) == semiext.StateIS {
						continue records
					}
				}
				states.Set(u, semiext.StateIS)
			}
			return nil
		},
	})
	return s.Run()
}
