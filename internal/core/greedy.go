package core

import (
	"fmt"

	"repro/internal/gio"
	"repro/internal/semiext"
)

// Greedy runs Algorithm 1, the semi-external greedy, over f. The file
// should be in ascending-degree scan order (the paper's preprocessing); run
// on an unsorted file it degenerates into the Baseline competitor. Greedy
// performs exactly one sequential scan and keeps one byte of state per
// vertex; the result is always a maximal independent set.
func Greedy(f Source) (*Result, error) {
	n := f.NumVertices()
	states := semiext.NewStates(n)
	snap := snapshot(f.Stats())

	err := f.ForEachBatch(func(batch []gio.Record) error {
		for _, r := range batch {
			if states[r.ID] != semiext.StateInitial {
				continue
			}
			states[r.ID] = semiext.StateIS
			for _, u := range r.Neighbors {
				if states[u] == semiext.StateInitial {
					states[u] = semiext.StateNonIS
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: greedy: %w", err)
	}

	res := newResult(n)
	for v, s := range states {
		if s == semiext.StateIS {
			res.InSet[v] = true
			res.Size++
		}
	}
	res.MemoryBytes = states.MemoryBytes()
	res.IO = statsDelta(f.Stats(), snap)
	return res, nil
}

// Baseline runs Algorithm 1 without the global degree ordering: the file is
// scanned in whatever order its records are stored (the paper's BASELINE
// competitor). Functionally identical to Greedy; the distinction is the
// input file's order, so this wrapper exists to make call sites
// self-describing and to warn when it is handed a degree-sorted file.
func Baseline(f Source) (*Result, error) {
	return Greedy(f)
}
