package core

import (
	"context"
	"fmt"

	"repro/internal/gio"
	"repro/internal/pipeline"
	"repro/internal/semiext"
)

// Greedy runs Algorithm 1, the semi-external greedy, over f. The file
// should be in ascending-degree scan order (the paper's preprocessing); run
// on an unsorted file it degenerates into the Baseline competitor. Greedy
// registers two logical passes with the scan scheduler — the order-dependent
// marking pass and a read-only degree/stat collection pass — which fuse into
// exactly one physical scan; memory stays at half a byte of state per
// vertex, and the result is always a maximal independent set.
func Greedy(f Source) (*Result, error) {
	return GreedyScheduled(f, pipeline.Options{})
}

// GreedyCtx is Greedy bound to a context and run hooks: ctx cancels the
// marking scan between batches (the error wraps ctx.Err with the scan
// position), and hooks.OnScan observes per-batch progress. A nil ctx and
// zero hooks behave exactly like Greedy.
func GreedyCtx(ctx context.Context, f Source, h Hooks) (*Result, error) {
	return GreedyScheduled(f, newRun(ctx, h).sopts(false))
}

// GreedyScheduled is Greedy with explicit scheduler options; passing an
// Unfused schedule runs each logical pass as its own physical scan, the
// accounting baseline of the scan-count and parity tests.
func GreedyScheduled(f Source, sopts pipeline.Options) (*Result, error) {
	n := f.NumVertices()
	states := semiext.NewStates(n)
	snap := snapshot(f.Stats())

	var deg DegreeStats
	sched := pipeline.New(f, sopts)
	sched.Add(pipeline.Pass{
		Name:           "greedy-mark",
		MutatesStates:  true,
		NeedsScanOrder: true,
		Batch: func(batch []gio.Record) error {
			for i := range batch {
				r := &batch[i]
				if states.Get(r.ID) != semiext.StateInitial {
					continue
				}
				states.Set(r.ID, semiext.StateIS)
				for _, u := range r.Neighbors {
					if states.Get(u) == semiext.StateInitial {
						states.Set(u, semiext.StateNonIS)
					}
				}
			}
			return nil
		},
	})
	sched.Add(degreeStatsPass(&deg))
	if err := sched.Run(); err != nil {
		return nil, fmt.Errorf("core: greedy: %w", err)
	}

	res := newResult(n)
	res.collectIS(states)
	res.Degrees = deg
	res.MemoryBytes = states.MemoryBytes()
	res.IO = statsDelta(f.Stats(), snap)
	return res, nil
}

// degreeStatsPass returns the read-only degree/stat collection pass: it
// consumes only the record stream, so the planner fuses it into whatever
// scan it is declared next to.
func degreeStatsPass(out *DegreeStats) pipeline.Pass {
	return pipeline.Pass{
		Name:     "degree-stats",
		ReadOnly: true,
		Batch: func(batch []gio.Record) error {
			for i := range batch {
				d := uint32(len(batch[i].Neighbors))
				if d > out.Max {
					out.Max = d
				}
				if d == 0 {
					out.Isolated++
				}
				out.Sum += uint64(d)
			}
			return nil
		},
	}
}

// Baseline runs Algorithm 1 without the global degree ordering: the file is
// scanned in whatever order its records are stored (the paper's BASELINE
// competitor). Functionally identical to Greedy; the distinction is the
// input file's order, so this wrapper exists to make call sites
// self-describing and to warn when it is handed a degree-sorted file.
func Baseline(f Source) (*Result, error) {
	return Greedy(f)
}
