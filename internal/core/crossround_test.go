package core

import (
	"reflect"
	"testing"

	"repro/internal/gio"
	"repro/internal/semiext"
)

// TestCarryCollectorOverflow white-boxes the collector's overflow
// discipline: past the budget it discards the deferral buffers and reports
// not-ready (forcing the classic dedicated scans), while the scan-position
// table keeps filling — it is needed by whichever later round's collection
// does fit.
func TestCarryCollectorOverflow(t *testing.T) {
	const n = 8
	states := semiext.NewStates(n)
	for v := uint32(0); v < n; v++ {
		states.Set(v, semiext.StateAdjacent)
	}
	c := newCarryCollector(states, true)
	c.buf = semiext.NewRecordBuffer(5, true)
	_ = c.pass("test-carry", "test-product") // arms the collection

	var batch []gio.Record
	for v := uint32(0); v < n; v++ {
		batch = append(batch, gio.Record{ID: v, Neighbors: []uint32{(v + 1) % n, (v + 2) % n}})
	}
	if err := c.batch(batch); err != nil {
		t.Fatal(err)
	}
	if !c.buf.Overflowed() {
		t.Fatal("collector did not overflow past its budget")
	}
	if c.ready() {
		t.Fatal("overflowed collector claims to be ready")
	}
	if c.buf.Len() != 0 {
		t.Fatalf("overflow did not discard the deferral buffer: %d records kept", c.buf.Len())
	}
	for v := uint32(0); v < n; v++ {
		if c.scanPos[v] != v {
			t.Fatalf("scanPos[%d] = %d, want %d (must keep filling past overflow)", v, c.scanPos[v], v)
		}
	}

	// Re-arming for the next scan starts a fresh, non-overflowed collection.
	_ = c.pass("test-carry", "test-product")
	if c.buf.Overflowed() || c.idx != 0 {
		t.Fatalf("re-armed collector kept stale state: overflow=%v idx=%d", c.buf.Overflowed(), c.idx)
	}
}

// TestCarryOverflowFallbackParity forces the carry buffer to overflow on
// every scan that has anything to buffer and requires both swap algorithms
// to fall back to the classic dedicated scans with bit-identical results.
// A collection that finds no A records cannot overflow a zero budget and
// still carries legitimately (replaying an empty buffer is exactly what a
// dedicated pre-swap scan over an A-free graph does), so the carried count
// is required to drop, not to vanish.
func TestCarryOverflowFallbackParity(t *testing.T) {
	old := carryBudget
	defer func() { carryBudget = old }()

	run := func(alg string) (normal, overflowed *Result) {
		for i, budget := range []func(int) int{old, func(int) int { return 0 }} {
			carryBudget = budget
			f, _ := openFixture(t, multiroundFixture)
			seed, err := Greedy(f)
			if err != nil {
				t.Fatal(err)
			}
			var r *Result
			switch alg {
			case "one-k-swap":
				r, err = OneKSwap(f, seed.InSet, SwapOptions{})
			case "two-k-swap":
				r, err = TwoKSwap(f, seed.InSet, SwapOptions{})
			}
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if i == 0 {
				normal = r
			} else {
				overflowed = r
			}
		}
		return normal, overflowed
	}

	for _, alg := range []string{"one-k-swap", "two-k-swap"} {
		normal, overflowed := run(alg)
		if !reflect.DeepEqual(normal.InSet, overflowed.InSet) || normal.Size != overflowed.Size {
			t.Fatalf("%s: overflow fallback changed the result", alg)
		}
		if normal.Rounds != overflowed.Rounds || !reflect.DeepEqual(normal.RoundGains, overflowed.RoundGains) {
			t.Fatalf("%s: overflow fallback changed the round trace: %v vs %v",
				alg, normal.RoundGains, overflowed.RoundGains)
		}
		if overflowed.IO.CarriedScans >= normal.IO.CarriedScans {
			t.Fatalf("%s: overflow did not suppress carries: %d vs %d normally",
				alg, overflowed.IO.CarriedScans, normal.IO.CarriedScans)
		}
		if normal.IO.CarriedScans == 0 {
			t.Fatalf("%s: normal run carried nothing (fixture no longer exercises the carry)", alg)
		}
		if overflowed.IO.Scans != normal.IO.Scans {
			t.Fatalf("%s: logical scans drifted between carry (%d) and fallback (%d)",
				alg, normal.IO.Scans, overflowed.IO.Scans)
		}
		if overflowed.IO.PhysicalScans <= normal.IO.PhysicalScans {
			t.Fatalf("%s: fallback physical scans %d not above carried %d (overflow never engaged?)",
				alg, overflowed.IO.PhysicalScans, normal.IO.PhysicalScans)
		}
	}
}
