// Package cache provides the daemon's result cache: a bounded LRU keyed by
// opaque strings (the server keys by content digest + algorithm + options)
// with singleflight deduplication — concurrent Do calls for one key share a
// single execution of the compute function, so the millionth identical
// "MIS of graph G" request is a map lookup and a burst of identical
// requests costs one solve.
//
// Execution is detached from any single request: the compute function runs
// on its own goroutine under a context derived from the cache's base
// context, and that context is canceled only when every request interested
// in the key has abandoned it (or the cache is closed). A request with a
// short deadline therefore stops waiting at its deadline without killing
// the computation other requests still want; the last one out turns off the
// lights.
package cache

import (
	"container/list"
	"context"
	"sync"
)

// Outcome reports how a Do call was satisfied.
type Outcome int

const (
	// Miss: this call started the computation.
	Miss Outcome = iota
	// Hit: the value was already cached.
	Hit
	// Shared: the call joined a computation another call had in flight.
	Shared
)

// String returns the lowercase wire name used in API responses.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	default:
		return "miss"
	}
}

// Stats is a snapshot of the cache's effectiveness counters.
type Stats struct {
	Entries   int    // cached values currently held
	Inflight  int    // computations currently executing
	Hits      uint64 // Do calls answered from the cache
	Misses    uint64 // Do calls that started a computation
	Shared    uint64 // Do calls that joined an in-flight computation
	Evictions uint64 // entries dropped by the LRU bound
}

// Cache is a bounded LRU of computed values with singleflight execution.
// The zero value is not usable; construct with New. All methods are safe
// for concurrent use.
type Cache[V any] struct {
	mu       sync.Mutex
	max      int
	base     context.Context
	lru      *list.List // front = most recently used; values are *entry[V]
	index    map[string]*list.Element
	inflight map[string]*flight[V]
	stats    Stats
}

type entry[V any] struct {
	key string
	val V
}

// flight is one in-progress computation. waiters counts every Do call still
// interested in the result, the initiator included; when it reaches zero
// before completion, the execution context is canceled.
type flight[V any] struct {
	done    chan struct{}
	val     V
	err     error
	waiters int
	cancel  context.CancelFunc
}

// New returns a cache holding at most maxEntries computed values (≤ 0
// selects 256), executing compute functions under contexts derived from
// base. Canceling base aborts every in-flight computation and makes further
// ones fail immediately — pass the daemon's root context so shutdown drains
// the cache's work.
func New[V any](base context.Context, maxEntries int) *Cache[V] {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	if base == nil {
		base = context.Background()
	}
	return &Cache[V]{
		max:      maxEntries,
		base:     base,
		lru:      list.New(),
		index:    make(map[string]*list.Element),
		inflight: make(map[string]*flight[V]),
	}
}

// Do returns the value for key, computing it with fn if needed. Exactly one
// execution of fn runs per key at a time; concurrent callers share it. fn
// receives a context detached from ctx (see the package comment) and its
// successful result is cached; errors are returned to every sharing caller
// and not cached, so the next Do retries.
//
// ctx governs only this call's willingness to wait: if it ends first, Do
// returns ctx.Err() while the computation keeps running for any remaining
// callers — unless this was the last one, in which case the computation is
// canceled.
func (c *Cache[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (V, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		v := el.Value.(*entry[V]).val
		c.mu.Unlock()
		return v, Hit, nil
	}
	// Join a live flight; one whose every waiter has abandoned it is already
	// canceled and about to fail, so start fresh instead of inheriting the
	// cancellation (run() deletes only its own map entry, so the stale
	// flight's exit cannot orphan the replacement).
	if fl, ok := c.inflight[key]; ok && fl.waiters > 0 {
		fl.waiters++
		c.stats.Shared++
		c.mu.Unlock()
		return c.wait(ctx, key, fl, Shared)
	}
	cctx, cancel := context.WithCancel(c.base)
	fl := &flight[V]{done: make(chan struct{}), waiters: 1, cancel: cancel}
	c.inflight[key] = fl
	c.stats.Misses++
	c.mu.Unlock()

	go c.run(key, fl, cctx, fn)
	return c.wait(ctx, key, fl, Miss)
}

// run executes fn and completes the flight.
func (c *Cache[V]) run(key string, fl *flight[V], cctx context.Context, fn func(context.Context) (V, error)) {
	val, err := fn(cctx)
	fl.cancel() // release the derived context; the result is in hand
	c.mu.Lock()
	fl.val, fl.err = val, err
	if c.inflight[key] == fl {
		delete(c.inflight, key)
	}
	if err == nil {
		c.insert(key, val)
	}
	c.mu.Unlock()
	close(fl.done)
}

// wait blocks until the flight completes or ctx ends, whichever is first.
func (c *Cache[V]) wait(ctx context.Context, key string, fl *flight[V], how Outcome) (V, Outcome, error) {
	select {
	case <-fl.done:
		return fl.val, how, fl.err
	case <-ctx.Done():
		// Completion may have raced the cancellation; prefer the result.
		select {
		case <-fl.done:
			return fl.val, how, fl.err
		default:
		}
		c.mu.Lock()
		fl.waiters--
		abandon := fl.waiters == 0
		c.mu.Unlock()
		if abandon {
			fl.cancel()
		}
		var zero V
		return zero, how, ctx.Err()
	}
}

// insert caches a computed value, evicting from the LRU tail past the bound.
// Caller holds c.mu.
func (c *Cache[V]) insert(key string, val V) {
	if el, ok := c.index[key]; ok {
		el.Value.(*entry[V]).val = val
		c.lru.MoveToFront(el)
		return
	}
	c.index[key] = c.lru.PushFront(&entry[V]{key: key, val: val})
	for c.lru.Len() > c.max {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.index, tail.Value.(*entry[V]).key)
		c.stats.Evictions++
	}
}

// Get returns the cached value for key without computing, refreshing its
// recency on a hit. The miss is not counted against the stats.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Stats returns a snapshot of the cache counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	s.Inflight = len(c.inflight)
	return s
}
