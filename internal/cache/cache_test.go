package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestHitMiss(t *testing.T) {
	c := New[int](context.Background(), 4)
	calls := 0
	fn := func(context.Context) (int, error) { calls++; return 42, nil }

	v, how, err := c.Do(context.Background(), "k", fn)
	if err != nil || v != 42 || how != Miss {
		t.Fatalf("first Do = %d, %v, %v", v, how, err)
	}
	v, how, err = c.Do(context.Background(), "k", fn)
	if err != nil || v != 42 || how != Hit {
		t.Fatalf("second Do = %d, %v, %v", v, how, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSingleflightDedup(t *testing.T) {
	c := New[int](context.Background(), 4)
	var calls atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func(context.Context) (int, error) {
		calls.Add(1)
		close(started)
		<-release
		return 7, nil
	}

	const n = 8
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, how, err := c.Do(context.Background(), "k", fn)
			if err != nil || v != 7 {
				t.Errorf("Do %d = %d, %v", i, v, err)
			}
			outcomes[i] = how
		}(i)
	}
	<-started
	// Wait until every caller has either started or joined the flight, then
	// let it finish.
	for deadline := time.Now().Add(5 * time.Second); ; {
		st := c.Stats()
		if st.Misses+st.Shared == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("callers never all joined: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times for %d concurrent callers", got, n)
	}
	var misses, shared int
	for _, o := range outcomes {
		switch o {
		case Miss:
			misses++
		case Shared:
			shared++
		}
	}
	if misses != 1 || shared != n-1 {
		t.Fatalf("outcomes: %d misses, %d shared (want 1, %d)", misses, shared, n-1)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New[int](context.Background(), 4)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do(context.Background(), "k", func(context.Context) (int, error) {
		calls++
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, how, err := c.Do(context.Background(), "k", func(context.Context) (int, error) {
		calls++
		return 9, nil
	})
	if err != nil || v != 9 || how != Miss {
		t.Fatalf("retry = %d, %v, %v", v, how, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](context.Background(), 2)
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, _, err := c.Do(context.Background(), k, func(context.Context) (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("k0 survived past the bound")
	}
	for _, k := range []string{"k1", "k2"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted early", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestWaiterDeadlineDetaches pins the deadline contract: a caller whose ctx
// expires stops waiting (returning its own ctx error) while the computation
// keeps running for the remaining caller and lands in the cache.
func TestWaiterDeadlineDetaches(t *testing.T) {
	c := New[int](context.Background(), 4)
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func(cctx context.Context) (int, error) {
		close(started)
		select {
		case <-release:
			return 11, nil
		case <-cctx.Done():
			return 0, cctx.Err()
		}
	}

	patient := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), "k", fn)
		patient <- err
	}()
	<-started

	hurried, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, _, err := c.Do(hurried, "k", fn)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hurried caller err = %v", err)
	}

	close(release)
	if err := <-patient; err != nil {
		t.Fatalf("patient caller err = %v", err)
	}
	if _, ok := c.Get("k"); !ok {
		t.Fatal("result not cached after hurried caller left")
	}
}

// TestLastWaiterCancelsComputation pins the other half: when every caller
// abandons the key, the compute context is canceled so the work stops.
func TestLastWaiterCancelsComputation(t *testing.T) {
	c := New[int](context.Background(), 4)
	started := make(chan struct{})
	canceled := make(chan struct{})
	fn := func(cctx context.Context) (int, error) {
		close(started)
		<-cctx.Done()
		close(canceled)
		return 0, cctx.Err()
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() { <-started; cancel() }()
	_, _, err := c.Do(ctx, "k", fn)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	select {
	case <-canceled:
	case <-time.After(2 * time.Second):
		t.Fatal("computation not canceled after last waiter left")
	}
}

// TestAbandonedFlightNotJoined: a Do arriving after every waiter abandoned a
// still-running flight starts a fresh computation instead of inheriting the
// canceled one.
func TestAbandonedFlightNotJoined(t *testing.T) {
	c := New[int](context.Background(), 4)
	started := make(chan struct{})
	block := make(chan struct{})
	var firstRuns atomic.Int32
	first := func(cctx context.Context) (int, error) {
		firstRuns.Add(1)
		close(started)
		<-cctx.Done()
		<-block // hold the dead flight in the map past the second Do
		return 0, cctx.Err()
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() { <-started; cancel() }()
	if _, _, err := c.Do(ctx, "k", first); !errors.Is(err, context.Canceled) {
		t.Fatalf("first err = %v", err)
	}

	v, how, err := c.Do(context.Background(), "k", func(context.Context) (int, error) { return 5, nil })
	close(block)
	if err != nil || v != 5 || how != Miss {
		t.Fatalf("second Do = %d, %v, %v", v, how, err)
	}
	if _, ok := c.Get("k"); !ok {
		t.Fatal("fresh result not cached")
	}
}

func TestBaseContextCancelAbortsWork(t *testing.T) {
	base, cancel := context.WithCancel(context.Background())
	c := New[int](base, 4)
	cancel()
	_, _, err := c.Do(context.Background(), "k", func(cctx context.Context) (int, error) {
		return 0, cctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}
