package mis_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	mis "repro"
)

// figure1 writes the paper's Figure 1 graph — a hub v1 (ID 0) adjacent to
// v3, v4, v5 (IDs 2, 3, 4) plus an isolated v2 (ID 1) — and returns its
// path. The maximal set {v1, v2} has size 2; the maximum {v2..v5} size 4.
func figure1(dir string, sorted bool) string {
	path := filepath.Join(dir, "figure1.adj")
	b := mis.NewBuilder(5)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(0, 4)
	if err := b.WriteFile(path, sorted); err != nil {
		log.Fatal(err)
	}
	return path
}

func Example() {
	dir, _ := os.MkdirTemp("", "mis-example")
	defer os.RemoveAll(dir)

	f, err := mis.Open(figure1(dir, true))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	greedy, _ := f.Greedy()
	better, _ := f.TwoKSwap(greedy, mis.SwapOptions{})
	bound, _ := f.UpperBound()
	fmt.Printf("greedy=%d two-k=%d bound=%d\n", greedy.Size, better.Size, bound)
	// Output: greedy=4 two-k=4 bound=4
}

func ExampleFile_Greedy() {
	dir, _ := os.MkdirTemp("", "mis-example")
	defer os.RemoveAll(dir)

	// On a degree-sorted file the small-degree vertices are scanned first
	// and greedy recovers the maximum set of Figure 1.
	f, err := mis.Open(figure1(dir, true))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, _ := f.Greedy()
	fmt.Println(r.Size, r.Vertices())
	// Output: 4 [1 2 3 4]
}

func ExampleFile_Solve() {
	dir, _ := os.MkdirTemp("", "mis-example")
	defer os.RemoveAll(dir)

	// The same scan on an unsorted (vertex-ID-ordered) file is the paper's
	// BASELINE: the hub is scanned first and blocks the leaves.
	f, err := mis.Open(figure1(dir, false))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, _ := f.Solve(mis.AlgBaseline, mis.SwapOptions{})
	fmt.Println(r.Size, r.Vertices())
	// Output: 2 [0 1]
}

func ExampleFile_OneKSwap() {
	dir, _ := os.MkdirTemp("", "mis-example")
	defer os.RemoveAll(dir)

	// Starting from the stuck Baseline result {v1, v2}, one-k-swap
	// exchanges the hub for its three leaves: a 1↔3 swap.
	f, err := mis.Open(figure1(dir, false))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	baseline, _ := f.Solve(mis.AlgBaseline, mis.SwapOptions{})
	improved, _ := f.OneKSwap(baseline, mis.SwapOptions{})
	fmt.Printf("%d -> %d\n", baseline.Size, improved.Size)
	// Output: 2 -> 4
}

func ExampleNewSolver() {
	dir, _ := os.MkdirTemp("", "mis-example")
	defer os.RemoveAll(dir)

	f, err := mis.Open(figure1(dir, false))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// The Solver is the context-first entry point: functional options carry
	// the swap tuning and observers, and every call takes a context that
	// cancels mid-scan. Here the per-round event stream watches one-k-swap
	// rescue the stuck BASELINE result of Figure 1.
	solver := mis.NewSolver(f,
		mis.MaxRounds(9),
		mis.OnRound(func(ev mis.RoundEvent) {
			fmt.Printf("round %d: %+d -> %d\n", ev.Round, ev.Gain, ev.Size)
		}),
	)
	ctx := context.Background()
	seed, _ := solver.Solve(ctx, mis.AlgBaseline)
	improved, _ := solver.OneKSwap(ctx, seed)
	fmt.Printf("%d -> %d\n", seed.Size, improved.Size)
	// Output:
	// round 1: +2 -> 4
	// round 2: +0 -> 4
	// 2 -> 4
}

func ExampleSolver_Solve_deadline() {
	dir, _ := os.MkdirTemp("", "mis-example")
	defer os.RemoveAll(dir)

	f, err := mis.Open(figure1(dir, true))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// A deadline bounds the whole run; an expired context stops the scan
	// within one batch and the error unwraps to context.DeadlineExceeded.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err = mis.NewSolver(f).Solve(ctx, mis.AlgTwoKSwap)
	fmt.Println(err == nil, context.Cause(ctx))
	// Output: false context deadline exceeded
}

func ExampleFile_ColorByIS() {
	dir, _ := os.MkdirTemp("", "mis-example")
	defer os.RemoveAll(dir)

	// A 5-cycle needs three colors; iterated IS extraction finds them.
	path := filepath.Join(dir, "c5.adj")
	b := mis.NewBuilder(5)
	for i := uint32(0); i < 5; i++ {
		b.AddEdge(i, (i+1)%5)
	}
	if err := b.WriteFile(path, true); err != nil {
		log.Fatal(err)
	}
	f, err := mis.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	col, _ := f.ColorByIS(0)
	fmt.Println(col.NumColors, col.ClassSizes)
	// Output: 3 [2 2 1]
}

func ExampleResult_VertexCover() {
	dir, _ := os.MkdirTemp("", "mis-example")
	defer os.RemoveAll(dir)

	f, err := mis.Open(figure1(dir, true))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, _ := f.Greedy()
	cover := r.VertexCover()
	// The complement of the maximum set {v2..v5} is the hub alone.
	var members []int
	for v, in := range cover {
		if in {
			members = append(members, v)
		}
	}
	fmt.Println(members, f.VerifyVertexCover(cover) == nil)
	// Output: [0] true
}

func ExampleNewMaintainer() {
	dir, _ := os.MkdirTemp("", "mis-example")
	defer os.RemoveAll(dir)

	f, err := mis.Open(figure1(dir, true))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	seed, _ := f.Greedy() // {1, 2, 3, 4}

	m, err := mis.NewMaintainer(f, seed)
	if err != nil {
		log.Fatal(err)
	}
	// A new edge between two members evicts one of them immediately...
	_ = m.InsertEdge(2, 3)
	fmt.Println("after insert:", m.Size(), "evictions:", m.Evictions())
	// ...and Repair restores maximality lazily with one scan.
	added, _ := m.Repair()
	fmt.Println("repair re-added:", added, "size:", m.Size())
	// Output:
	// after insert: 3 evictions: 1
	// repair re-added: 0 size: 3
}
