package mis

// ScanProgress reports how far the current physical scan has advanced. It is
// delivered through the OnProgress solver option after every decoded batch
// of every sequential pass a run performs — for a multi-minute scan over a
// billion-edge file, that is a steady heartbeat a caller can surface as a
// progress bar or use to decide to cancel.
type ScanProgress struct {
	// Records is the number of vertex records delivered so far in the
	// current physical scan.
	Records uint64
	// Total is the number of records a complete scan delivers (the file's
	// vertex count).
	Total uint64
}

// Percent returns the scan's completion as 0–100.
func (p ScanProgress) Percent() float64 {
	if p.Total == 0 {
		return 100
	}
	return 100 * float64(p.Records) / float64(p.Total)
}

// RoundEvent reports one completed swap round, delivered through the
// OnRound solver option: the 1-based round number, the net change in
// independent-set size, the set size after the round, and the I/O the round
// performed. With cross-round pass fusion a steady-state round shows one
// physical scan plus carried logical scans.
type RoundEvent struct {
	Round int
	Gain  int
	Size  int
	IO    IOStats
}
