package mis

import (
	"repro/internal/extsort"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/plrg"
	"repro/internal/theory"
)

// Builder accumulates an undirected graph in memory and writes it as an
// adjacency file. Self-loops and duplicate edges are dropped. For graphs too
// large to build in memory, write an unsorted file elsewhere and use
// SortFileByDegree, which runs in bounded memory.
type Builder struct {
	b *graph.Builder
	n int
}

// NewBuilder returns a builder for n vertices (IDs 0..n-1).
func NewBuilder(n int) *Builder {
	return &Builder{b: graph.NewBuilder(n), n: n}
}

// AddEdge records the undirected edge {u, v}.
func (b *Builder) AddEdge(u, v uint32) { b.b.AddEdge(u, v) }

// WriteFile writes the graph to path. With degreeSorted true the records
// are in ascending-degree scan order — the preprocessing the Greedy
// algorithm expects; otherwise they are in vertex-ID order (the Baseline
// configuration).
func (b *Builder) WriteFile(path string, degreeSorted bool) error {
	g := b.b.Build()
	if degreeSorted {
		return gio.WriteGraphSorted(path, g, nil)
	}
	return gio.WriteGraph(path, g, nil, 0, nil)
}

// GeneratePowerLawFile generates a power-law random graph P(α, β) with
// approximately n vertices using the matching model of Section 2.2 and
// writes it to path (degree-sorted when degreeSorted is true). The same
// seed always yields the same graph.
func GeneratePowerLawFile(path string, n int, beta float64, seed int64, degreeSorted bool) error {
	g := plrg.PowerLawN(n, beta, seed)
	if degreeSorted {
		return gio.WriteGraphSorted(path, g, nil)
	}
	return gio.WriteGraph(path, g, nil, 0, nil)
}

// PowerLawParams reports the model parameters (α, Δ, expected |V| and |E|)
// the generator uses for a target vertex count and exponent.
func PowerLawParams(n int, beta float64) (alpha float64, maxDegree int, expVertices, expEdges float64) {
	p := theory.ParamsForVertices(n, beta)
	return p.Alpha, p.MaxDegree(), p.NumVertices(), p.NumEdges()
}

// ImportEdgeList reads a whitespace-separated text edge list ("u v" per
// line, '#' comments) from src and writes a degree-sorted adjacency file to
// dst.
func ImportEdgeList(src, dst string) error {
	return gio.ImportEdgeListFile(src, dst, nil)
}

// SortFileByDegree rewrites the adjacency file at src into dst with records
// in ascending-degree order using external merge sort in bounded memory
// (memoryBudget bytes; 0 selects the 64 MiB default). This is the paper's
// preprocessing phase for the Greedy algorithm.
func SortFileByDegree(src, dst string, memoryBudget int) error {
	return extsort.SortByDegree(src, dst, extsort.Options{MemoryBudget: memoryBudget})
}

// CompressFile rewrites the adjacency file at src into dst with
// varint/delta-encoded neighbor lists (the library's analogue of the
// WebGraph compression the paper's datasets use). Record order and all
// header flags are preserved; neighbor lists are re-ordered ascending by ID
// inside each record, which no algorithm depends on. One sequential read,
// one sequential write.
func CompressFile(src, dst string) error {
	in, err := gio.Open(src, 0, nil)
	if err != nil {
		return err
	}
	defer in.Close()
	w, err := gio.NewWriter(dst, in.Header().Flags|gio.FlagCompressed, 0, nil)
	if err != nil {
		return err
	}
	err = in.ForEach(func(r gio.Record) error {
		return w.Append(r.ID, r.Neighbors)
	})
	if err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
