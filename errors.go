package mis

import (
	"errors"
	"fmt"
)

// ErrNilArgument is the sentinel every nil-argument failure wraps:
// errors.Is(err, mis.ErrNilArgument) identifies the whole class. The daemon
// feeds client-supplied inputs straight into the Solver API, so a nil
// *Result or *Coloring must come back as an error, never a panic.
var ErrNilArgument = errors.New("mis: nil argument")

// NilArgumentError reports which argument of which entry point was nil. It
// wraps ErrNilArgument, so both errors.Is(err, ErrNilArgument) and
// errors.As(&NilArgumentError{}) work.
type NilArgumentError struct {
	// Method is the entry point that rejected the call, e.g. "Verify".
	Method string
	// Arg names the nil argument, e.g. "result".
	Arg string
}

func (e *NilArgumentError) Error() string {
	return fmt.Sprintf("mis: %s: nil %s", e.Method, e.Arg)
}

func (e *NilArgumentError) Unwrap() error { return ErrNilArgument }

// nilArg builds the typed error for a nil argument check.
func nilArg(method, arg string) error {
	return &NilArgumentError{Method: method, Arg: arg}
}
