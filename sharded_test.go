package mis_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	mis "repro"
	"repro/internal/shard"
)

// buildShardedGraph generates a power-law graph, splits it into shards, and
// returns the single-file path and the shard directory.
func buildShardedGraph(t *testing.T, n, shards int, sorted bool) (string, string) {
	t.Helper()
	dir := t.TempDir()
	single := filepath.Join(dir, "graph.adj")
	if err := mis.GeneratePowerLawFile(single, n, 2.0, 7, sorted); err != nil {
		t.Fatal(err)
	}
	shardDir := filepath.Join(dir, "sharded")
	if _, err := shard.SplitFile(context.Background(), single, shardDir, shard.SplitOptions{Shards: shards}); err != nil {
		t.Fatal(err)
	}
	return single, shardDir
}

// scrubIO zeroes the byte- and block-level counters, which legitimately
// differ between a single file and a shard set (each shard pays its own
// header, footer, and final partial block). Scan counts and record counts
// must match exactly.
func scrubIO(s mis.IOStats) mis.IOStats {
	s.BytesRead, s.BytesWritten, s.BlocksRead, s.BlocksWritten = 0, 0, 0, 0
	return s
}

// scrubResult returns a copy of r with byte-level I/O zeroed, leaving every
// other field — the set itself, sizes, rounds, gains, degree stats, memory
// and all scan counts — for exact comparison.
func scrubResult(r *mis.Result) *mis.Result {
	cp := *r
	cp.IO = scrubIO(cp.IO)
	cp.RoundIO = append([]mis.IOStats(nil), r.RoundIO...)
	for i := range cp.RoundIO {
		cp.RoundIO[i] = scrubIO(cp.RoundIO[i])
	}
	return &cp
}

// TestShardedParityAllAlgorithms is the tentpole acceptance test: every
// algorithm run through a ≥3-shard manifest returns results byte-identical
// to the merged single file, with equal scan counts (the fused-pass physical
// scan counts included), at every worker count.
func TestShardedParityAllAlgorithms(t *testing.T) {
	single, shardDir := buildShardedGraph(t, 600, 3, true)

	ref, err := mis.Open(single)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := map[mis.Algorithm]*mis.Result{}
	for _, alg := range mis.Algorithms() {
		r, err := mis.NewSolver(ref, mis.BaselineOnSorted()).Solve(context.Background(), alg)
		if err != nil {
			t.Fatalf("%s on single file: %v", alg, err)
		}
		want[alg] = r
	}

	for _, workers := range []int{1, 2, 4, 7} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			f, err := mis.OpenSharded(shardDir, mis.WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if !f.Sharded() || f.NumShards() != 3 {
				t.Fatalf("Sharded=%v NumShards=%d, want true/3", f.Sharded(), f.NumShards())
			}
			for _, alg := range mis.Algorithms() {
				got, err := mis.NewSolver(f, mis.BaselineOnSorted()).Solve(context.Background(), alg)
				if err != nil {
					t.Fatalf("%s sharded: %v", alg, err)
				}
				w := want[alg]
				if got.Size != w.Size || !reflect.DeepEqual(got.InSet, w.InSet) {
					t.Errorf("%s: sharded set (size %d) differs from single-file set (size %d)", alg, got.Size, w.Size)
				}
				if !reflect.DeepEqual(scrubResult(got), scrubResult(w)) {
					t.Errorf("%s: sharded result differs from single file\n got %+v\nwant %+v", alg, scrubResult(got), scrubResult(w))
				}
				if got.IO.PhysicalScans != w.IO.PhysicalScans {
					t.Errorf("%s: sharded run paid %d physical scans, single fused path pays %d", alg, got.IO.PhysicalScans, w.IO.PhysicalScans)
				}
				if err := f.Verify(got); err != nil {
					t.Errorf("%s: sharded result fails verification: %v", alg, err)
				}
			}
		})
	}
}

// TestShardedStatsWorkerInvariance: a sharded run's full I/O statistics —
// bytes and blocks included — are identical at every worker count.
func TestShardedStatsWorkerInvariance(t *testing.T) {
	_, shardDir := buildShardedGraph(t, 500, 3, true)
	var want mis.IOStats
	for i, workers := range []int{1, 2, 4, 7} {
		f, err := mis.OpenSharded(shardDir, mis.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		r, err := f.Greedy()
		if err != nil {
			f.Close()
			t.Fatal(err)
		}
		f.Close()
		if i == 0 {
			want = r.IO
			continue
		}
		if !reflect.DeepEqual(r.IO, want) {
			t.Errorf("workers=%d: stats %+v differ from sequential %+v", workers, r.IO, want)
		}
	}
}

func TestShardedMetadata(t *testing.T) {
	single, shardDir := buildShardedGraph(t, 300, 3, true)
	ref, err := mis.Open(single)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	f, err := mis.OpenSharded(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumVertices() != ref.NumVertices() || f.NumEdges() != ref.NumEdges() {
		t.Errorf("sharded metadata %d/%d, single %d/%d",
			f.NumVertices(), f.NumEdges(), ref.NumVertices(), ref.NumEdges())
	}
	if !f.DegreeSorted() {
		t.Error("degree-sorted flag lost")
	}
	if f.Path() != filepath.Join(shardDir, mis.ShardManifestName) {
		t.Errorf("path = %q", f.Path())
	}
	size, err := f.SizeBytes()
	if err != nil || size <= 0 {
		t.Errorf("size = %d, err = %v", size, err)
	}
	digests, err := f.ShardDigests(context.Background())
	if err != nil || len(digests) != 3 {
		t.Fatalf("shard digests = %v, err = %v", digests, err)
	}
	d1, err := f.ContentDigest(context.Background())
	if err != nil || d1 == "" {
		t.Fatalf("combined digest = %q, err = %v", d1, err)
	}
	// Reopen: the combined digest is a stable identity for the shard set.
	f2, err := mis.OpenSharded(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if d2, err := f2.ContentDigest(context.Background()); err != nil || d2 != d1 {
		t.Errorf("combined digest changed across opens: %q vs %q (err %v)", d1, d2, err)
	}
	// Single files report no shards.
	if ref.Sharded() || ref.NumShards() != 0 {
		t.Error("single file claims to be sharded")
	}
	if ds, err := ref.ShardDigests(context.Background()); err != nil || ds != nil {
		t.Errorf("single-file shard digests = %v, err = %v", ds, err)
	}
}

func TestOpenGraphDispatch(t *testing.T) {
	single, shardDir := buildShardedGraph(t, 100, 3, true)
	for _, path := range []string{shardDir, filepath.Join(shardDir, mis.ShardManifestName)} {
		f, err := mis.OpenGraph(path)
		if err != nil {
			t.Fatalf("OpenGraph(%q): %v", path, err)
		}
		if !f.Sharded() {
			t.Errorf("OpenGraph(%q) did not open sharded", path)
		}
		f.Close()
	}
	f, err := mis.OpenGraph(single)
	if err != nil {
		t.Fatal(err)
	}
	if f.Sharded() {
		t.Error("OpenGraph on .adj opened sharded")
	}
	f.Close()
	if mis.IsShardManifest(single) {
		t.Error("IsShardManifest true for plain .adj")
	}
}

func TestShardedMaintainerRefused(t *testing.T) {
	_, shardDir := buildShardedGraph(t, 100, 3, true)
	f, err := mis.OpenSharded(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := f.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mis.NewMaintainer(f, r); !errors.Is(err, mis.ErrSharded) {
		t.Fatalf("maintainer on sharded graph: err = %v, want ErrSharded", err)
	}
}

func TestShardedExact(t *testing.T) {
	dir := t.TempDir()
	single := filepath.Join(dir, "small.adj")
	b := mis.NewBuilder(12)
	for i := 0; i < 11; i++ {
		b.AddEdge(uint32(i), uint32(i+1))
	}
	if err := b.WriteFile(single, true); err != nil {
		t.Fatal(err)
	}
	shardDir := filepath.Join(dir, "sharded")
	if _, err := shard.SplitFile(context.Background(), single, shardDir, shard.SplitOptions{Shards: 3}); err != nil {
		t.Fatal(err)
	}
	ref, err := mis.Open(single)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	f, err := mis.OpenSharded(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want, err := mis.Exact(ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mis.Exact(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != want.Size {
		t.Errorf("sharded exact size %d, single %d", got.Size, want.Size)
	}
}

func TestShardedMmapParity(t *testing.T) {
	single, shardDir := buildShardedGraph(t, 400, 3, true)
	ref, err := mis.Open(single)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want, err := ref.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	f, err := mis.OpenSharded(shardDir, mis.WithMmap(), mis.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.InSet, want.InSet) {
		t.Error("mmap sharded greedy differs from single file")
	}
}

func TestShardedRegistry(t *testing.T) {
	single, shardDir := buildShardedGraph(t, 200, 3, true)
	// Lay out a data dir: one plain file, one shard directory.
	dir := filepath.Dir(single)
	graphs, err := mis.DiscoverGraphs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if graphs["graph"] != single {
		t.Errorf("discovery missed plain file: %v", graphs)
	}
	if graphs["sharded"] != shardDir {
		t.Fatalf("discovery missed shard directory: %v", graphs)
	}
	reg, err := mis.OpenRegistry(context.Background(), graphs, mis.RegistryWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	e, ok := reg.Get("sharded")
	if !ok {
		t.Fatal("sharded graph not registered")
	}
	f, release := e.Acquire()
	defer release()
	if !f.Sharded() {
		t.Fatal("registry entry is not sharded")
	}
	r, err := f.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(r); err != nil {
		t.Fatal(err)
	}
}
