package mis

import (
	"context"
	"fmt"

	"repro/internal/dynamic"
)

// Maintainer keeps an independent set valid while the graph changes — the
// incremental setting the paper's conclusion names as future work. The base
// graph stays on disk; edge insertions and deletions accumulate in memory.
//
// Invariants: after every update the set is independent in the current
// graph (an insertion inside the set evicts one endpoint immediately);
// maximality is restored lazily by Repair, which costs one sequential scan
// and amortizes over many updates.
type Maintainer struct {
	inner *dynamic.Maintainer
	file  *File
}

// NewMaintainer starts maintaining the independent set initial over f's
// graph. The initial set is typically a Greedy or swap result.
func NewMaintainer(f *File, initial *Result) (*Maintainer, error) {
	if initial == nil {
		return nil, fmt.Errorf("mis: maintainer: nil initial set")
	}
	if f.Sharded() {
		return nil, shardedErr("maintainer")
	}
	inner, err := dynamic.New(f.inner, initial.InSet)
	if err != nil {
		return nil, err
	}
	return &Maintainer{inner: inner, file: f}, nil
}

// InsertEdge adds the undirected edge {u, v}. If both endpoints are in the
// set, one is evicted to preserve independence.
func (m *Maintainer) InsertEdge(u, v uint32) error { return m.inner.InsertEdge(u, v) }

// DeleteEdge removes the undirected edge {u, v} from the graph.
func (m *Maintainer) DeleteEdge(u, v uint32) error { return m.inner.DeleteEdge(u, v) }

// Size returns the current set size.
func (m *Maintainer) Size() int { return m.inner.Size() }

// Contains reports membership of v.
func (m *Maintainer) Contains(v uint32) bool { return m.inner.Contains(v) }

// Dirty reports whether maximality may currently be violated.
func (m *Maintainer) Dirty() bool { return m.inner.Dirty() }

// Evictions returns how many set members insertions have evicted.
func (m *Maintainer) Evictions() int { return m.inner.Evictions() }

// DeltaEdges returns the in-memory delta size (inserted edges plus
// tombstones) — when it grows large, Materialize and re-optimize.
func (m *Maintainer) DeltaEdges() int { return m.inner.DeltaEdges() }

// Repair restores maximality with one sequential scan and returns the
// number of vertices added.
func (m *Maintainer) Repair() (int, error) { return m.inner.Repair() }

// RepairCtx is Repair bound to a context: cancellation stops the scan
// within one batch and surfaces as a *gio.ScanError-wrapped ctx error. The
// set stays independent but remains dirty.
func (m *Maintainer) RepairCtx(ctx context.Context) (int, error) { return m.inner.RepairCtx(ctx) }

// Verify checks the independence invariant against the file and the delta.
// A violation is a typed *dynamic.ViolationError carrying the offending
// edge and scan position; an I/O or cancellation failure carries a
// *gio.ScanError — so daemon callers can tell corruption from invariant
// breakage with errors.As.
func (m *Maintainer) Verify() error { return m.inner.Verify() }

// VerifyCtx is Verify bound to a context (see RepairCtx).
func (m *Maintainer) VerifyCtx(ctx context.Context) error { return m.inner.VerifyCtx(ctx) }

// Result snapshots the current set as a Result.
func (m *Maintainer) Result() *Result {
	in := m.inner.Set()
	size := 0
	for _, b := range in {
		if b {
			size++
		}
	}
	return &Result{InSet: in, Size: size}
}

// Materialize writes the current effective graph (base edges minus
// deletions plus insertions) to path as a degree-sorted adjacency file, so
// the full swap pipeline can re-optimize from scratch. The file appears
// atomically (temp + fsync + rename): an error or crash mid-write never
// leaves a partial file at path.
func (m *Maintainer) Materialize(path string) error { return m.inner.Materialize(path) }

// MaterializeCtx is Materialize bound to a context: cancellation stops the
// scan within one batch, removes the temp file, and leaves the destination
// untouched.
func (m *Maintainer) MaterializeCtx(ctx context.Context, path string) error {
	return m.inner.MaterializeCtx(ctx, path)
}
