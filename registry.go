package mis

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Registry is a named collection of open graphs — the unit a long-running
// daemon serves. Each entry is either a plain adjacency file or a journal
// directory (a durable dynamic graph, see Journal); either way solvers run
// against the entry's current *File via Acquire, which pins a journal
// entry's base generation across concurrent compactions.
//
// Registry methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*RegistryEntry
	names   []string // sorted
	closed  bool
}

// RegistryEntry is one named graph of a Registry.
type RegistryEntry struct {
	name string
	path string
	f    *File    // plain adjacency file; nil for journal entries
	j    *Journal // journal-backed dynamic graph; nil for plain files
}

// RegistryOption customizes OpenRegistry.
type RegistryOption func(*registryConfig)

type registryConfig struct {
	workers int
	mmap    bool
}

// RegistryWorkers sets the default scan parallelism of every opened graph
// (see WithWorkers / JournalWorkers).
func RegistryWorkers(n int) RegistryOption {
	return func(c *registryConfig) { c.workers = n }
}

// RegistryMmap opens plain adjacency files through a memory mapping (see
// WithMmap). Journal entries are unaffected: their base generations are
// reopened by the compaction machinery.
func RegistryMmap() RegistryOption {
	return func(c *registryConfig) { c.mmap = true }
}

// OpenRegistry opens every named graph. A path naming a directory must be a
// journal store (InitJournal layout) and is opened with OpenJournal —
// recovery replays its unfolded segments — while any other path is opened as
// a plain adjacency file. On any failure, everything already opened is
// closed and the error names the offending entry. ctx bounds journal
// recovery scans.
func OpenRegistry(ctx context.Context, graphs map[string]string, opts ...RegistryOption) (*Registry, error) {
	cfg := registryConfig{workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	r := &Registry{entries: make(map[string]*RegistryEntry, len(graphs))}
	for name, path := range graphs {
		if name == "" || strings.ContainsAny(name, "/\\") {
			r.Close()
			return nil, fmt.Errorf("mis: registry: invalid graph name %q", name)
		}
		e, err := openEntry(ctx, name, path, cfg)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("mis: registry graph %q: %w", name, err)
		}
		r.entries[name] = e
		r.names = append(r.names, name)
	}
	sort.Strings(r.names)
	return r, nil
}

func openEntry(ctx context.Context, name, path string, cfg registryConfig) (*RegistryEntry, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	oo := []OpenOption{WithWorkers(cfg.workers)}
	if cfg.mmap {
		oo = append(oo, WithMmap())
	}
	if IsShardManifest(path) {
		f, err := OpenSharded(path, oo...)
		if err != nil {
			return nil, err
		}
		return &RegistryEntry{name: name, path: path, f: f}, nil
	}
	if fi.IsDir() {
		j, err := OpenJournal(ctx, path, JournalWorkers(cfg.workers))
		if err != nil {
			return nil, err
		}
		return &RegistryEntry{name: name, path: path, j: j}, nil
	}
	f, err := Open(path, oo...)
	if err != nil {
		return nil, err
	}
	return &RegistryEntry{name: name, path: path, f: f}, nil
}

// DiscoverGraphs scans dir non-recursively and returns a graphs map for
// OpenRegistry: every *.adj file (named by its base name without the
// extension), every subdirectory holding a journal MANIFEST, and every
// subdirectory holding a shard MANIFEST.shards (both named by the directory
// name).
func DiscoverGraphs(dir string) (map[string]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	graphs := make(map[string]string)
	for _, de := range des {
		p := filepath.Join(dir, de.Name())
		if de.IsDir() {
			if _, err := os.Stat(filepath.Join(p, "MANIFEST")); err == nil {
				graphs[de.Name()] = p
			} else if IsShardManifest(p) {
				graphs[de.Name()] = p
			}
			continue
		}
		if strings.HasSuffix(de.Name(), ".adj") {
			graphs[strings.TrimSuffix(de.Name(), ".adj")] = p
		}
	}
	return graphs, nil
}

// Names returns the registered graph names in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.names...)
}

// Get returns the named entry, or false.
func (r *Registry) Get(name string) (*RegistryEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	return e, ok
}

// Close closes every entry: plain files directly, journals via
// Journal.Close (which commits pending records). The first error is
// returned; closing continues regardless.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	var first error
	for _, e := range r.entries {
		var err error
		if e.j != nil {
			err = e.j.Close()
		} else if e.f != nil {
			err = e.f.Close()
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Name returns the entry's registered name.
func (e *RegistryEntry) Name() string { return e.name }

// Path returns the path the entry was opened from.
func (e *RegistryEntry) Path() string { return e.path }

// Journal returns the entry's journal, or nil for a plain file. Solves on a
// journal entry scan the current base generation — compact first to fold
// pending updates into it.
func (e *RegistryEntry) Journal() *Journal { return e.j }

// Acquire returns the entry's current adjacency file pinned for use, with a
// release that must be called when done (idempotent). For a plain file the
// pin is free and release a no-op; for a journal entry the current base
// generation is refcounted (see Journal.AcquireFile), so it stays readable
// across any number of concurrent compactions until released.
func (e *RegistryEntry) Acquire() (*File, func()) {
	if e.j != nil {
		return e.j.AcquireFile()
	}
	return e.f, func() {}
}
