package mis_test

import (
	"path/filepath"
	"testing"

	mis "repro"
)

func TestExactFacade(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c5.adj")
	b := mis.NewBuilder(5)
	for i := uint32(0); i < 5; i++ {
		b.AddEdge(i, (i+1)%5)
	}
	if err := b.WriteFile(path, true); err != nil {
		t.Fatal(err)
	}
	f, err := mis.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	exact, err := mis.Exact(f)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Size != 2 {
		t.Fatalf("C5 independence number = %d, want 2", exact.Size)
	}
	if err := f.VerifyIndependent(exact); err != nil {
		t.Fatal(err)
	}

	// Greedy can't beat exact, and the bound can't be below it.
	greedy, err := f.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Size > exact.Size {
		t.Fatalf("greedy %d beats exact %d", greedy.Size, exact.Size)
	}
	bound, err := f.UpperBound()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(exact.Size) > bound {
		t.Fatalf("exact %d above bound %d", exact.Size, bound)
	}
}

func TestExactFacadeRejectsLarge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.adj")
	if err := mis.GeneratePowerLawFile(path, 1000, 2.0, 1, true); err != nil {
		t.Fatal(err)
	}
	f, err := mis.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := mis.Exact(f); err == nil {
		t.Fatal("exact accepted a 1000-vertex graph")
	}
}
