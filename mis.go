// Package mis computes large independent sets on massive graphs under the
// semi-external memory model, implementing the algorithms of
//
//	Liu, Lu, Yang, Xiao, Wei. "Towards Maximum Independent Sets on Massive
//	Graphs." PVLDB 8(13), 2015.
//
// The model assumes main memory holds a few bytes per vertex but not the
// edges: graphs live in an on-disk adjacency file that the algorithms read
// only through sequential scans. The package offers:
//
//   - Greedy — Algorithm 1: one scan of a degree-sorted file, a maximal
//     independent set within ~98–99% of the optimum on power-law graphs.
//   - OneKSwap — Algorithm 2: exchanges one IS vertex for k ≥ 2 others,
//     resolving swap conflicts with a six-state machine and scan-order
//     preemption.
//   - TwoKSwap — Algorithms 3–4: additionally exchanges two IS vertices for
//     k ≥ 3 others via the SC swap-candidate store.
//   - Baselines from the paper's evaluation: BaselineGreedy (no degree
//     sort), DynamicUpdate (classical in-memory greedy), ExternalMaximal
//     (time-forward processing with an external priority queue), and the
//     Algorithm 5 upper bound on the independence number.
//
// # Quick start
//
//	// Build a graph file (or mis.GeneratePowerLawFile / mis.ImportEdgeList).
//	b := mis.NewBuilder(5)
//	b.AddEdge(0, 2)
//	b.AddEdge(0, 3)
//	b.AddEdge(0, 4)
//	if err := b.WriteFile("toy.adj", true); err != nil { ... }
//
//	f, err := mis.Open("toy.adj")
//	if err != nil { ... }
//	defer f.Close()
//
//	solver := mis.NewSolver(f)
//	greedy, _ := solver.Greedy(ctx)
//	better, _ := solver.TwoKSwap(ctx, greedy)
//	fmt.Println(better.Size, better.Vertices())
//
// The Solver is the context-first entry point: every call takes a
// context.Context that cancels a multi-minute scan within one decoded
// batch, functional options tune the run (MaxRounds, Workers, …) and attach
// observers (OnProgress, OnRound), and concurrent solvers may share one
// File — each run accounts into its own stat scope that merges into the
// file's totals. The context-free File methods (f.Greedy(),
// f.TwoKSwap(seed, opts), …) remain as thin context.Background wrappers.
package mis

import (
	"context"

	"repro/internal/core"
	"repro/internal/gio"
)

// Algorithm names one of the six algorithms of the paper's evaluation
// (Section 7).
type Algorithm string

// The algorithms of Table 5.
const (
	AlgGreedy          Algorithm = "greedy"
	AlgBaseline        Algorithm = "baseline"
	AlgOneKSwap        Algorithm = "one-k-swap"
	AlgTwoKSwap        Algorithm = "two-k-swap"
	AlgDynamicUpdate   Algorithm = "dynamic-update"
	AlgExternalMaximal Algorithm = "external-maximal" // the paper's "STXXL"
)

// Algorithms lists every supported algorithm name.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgGreedy, AlgBaseline, AlgOneKSwap, AlgTwoKSwap,
		AlgDynamicUpdate, AlgExternalMaximal,
	}
}

// SwapOptions tune the swap algorithms; the zero value selects defaults.
// Defaults are decided in exactly one place, core.SwapOptions.WithDefaults,
// which the swap algorithms apply on entry; the field comments here restate
// them for reference.
type SwapOptions struct {
	// MaxRounds caps swap rounds; 0 means effectively unbounded (the
	// algorithms stop when no swap fires). Real graphs need 2–9 rounds.
	MaxRounds int
	// EarlyStopRounds stops after a fixed number of rounds — the paper
	// observes ≥97% of swap gain lands in the first three. 0 disables.
	EarlyStopRounds int
	// StallRounds stops after this many consecutive zero-gain rounds;
	// 0 selects 3.
	StallRounds int
	// Workers overrides the file's scan parallelism for this call: the
	// number of goroutines decoding file partitions concurrently during the
	// algorithm's scans (see WithWorkers). Results are bit-identical for any
	// value. 0 uses the file's default, 1 forces the sequential engine,
	// ≤ -1 selects GOMAXPROCS.
	Workers int
}

func (o SwapOptions) internal() core.SwapOptions {
	return core.SwapOptions{
		MaxRounds:       o.MaxRounds,
		EarlyStopRounds: o.EarlyStopRounds,
		StallRounds:     o.StallRounds,
	}
}

// Solve runs the named algorithm on f. Swap algorithms are seeded with a
// fresh Greedy result; use the dedicated methods to control the seed.
// AlgBaseline on a degree-sorted file is refused (see ErrBaselineOnSorted);
// construct a Solver with BaselineOnSorted to opt in.
func (f *File) Solve(alg Algorithm, opts SwapOptions) (*Result, error) {
	return f.SolveCtx(context.Background(), alg, opts)
}

// SolveCtx is Solve bound to a context: cancellation or deadline expiry
// stops the run within one decoded batch of the current scan, and the error
// wraps ctx.Err() together with the scan position. Equivalent to
// NewSolver(f, ...).Solve(ctx, alg) with the SwapOptions carried over.
func (f *File) SolveCtx(ctx context.Context, alg Algorithm, opts SwapOptions) (*Result, error) {
	return opts.solver(f).Solve(ctx, alg)
}

// fromCore converts an internal result.
func fromCore(r *core.Result) *Result {
	return &Result{
		InSet:       r.InSet,
		Size:        r.Size,
		Rounds:      r.Rounds,
		RoundGains:  append([]int(nil), r.RoundGains...),
		RoundIO:     roundIO(r.RoundIO),
		MemoryBytes: r.MemoryBytes,
		SCHighWater: r.SCHighWater,
		Degrees:     DegreeStats(r.Degrees),
		IO:          IOStats(r.IO),
	}
}

// roundIO converts the per-round I/O deltas.
func roundIO(rounds []gio.Stats) []IOStats {
	if len(rounds) == 0 {
		return nil
	}
	out := make([]IOStats, len(rounds))
	for i, r := range rounds {
		out[i] = IOStats(r)
	}
	return out
}
