package mis_test

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	mis "repro"
	"repro/internal/gio"
)

// genFile writes a degree-sorted power-law file with n vertices.
func genFile(t testing.TB, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ctx.adj")
	if err := mis.GeneratePowerLawFile(path, n, 2.0, 9, true); err != nil {
		t.Fatal(err)
	}
	return path
}

func openFile(t testing.TB, path string, opts ...mis.OpenOption) *mis.File {
	t.Helper()
	f, err := mis.Open(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestSolverParityWithLegacy pins the acceptance criterion: every algorithm
// run through the context-taking Solver API produces a bit-identical set to
// the legacy context-free methods.
func TestSolverParityWithLegacy(t *testing.T) {
	path := genFile(t, 3000)
	f := openFile(t, path)
	ctx := context.Background()
	solver := mis.NewSolver(f, mis.BaselineOnSorted())

	for _, alg := range mis.Algorithms() {
		var legacy, viaSolver *mis.Result
		var err error
		if alg == mis.AlgBaseline {
			// The legacy path refuses baseline on a sorted file too; compare
			// the opted-in solver against the greedy scan it aliases.
			legacy, err = f.Greedy()
		} else {
			legacy, err = f.Solve(alg, mis.SwapOptions{})
		}
		if err != nil {
			t.Fatalf("%s legacy: %v", alg, err)
		}
		viaSolver, err = solver.Solve(ctx, alg)
		if err != nil {
			t.Fatalf("%s solver: %v", alg, err)
		}
		if legacy.Size != viaSolver.Size {
			t.Fatalf("%s: solver size %d, legacy %d", alg, viaSolver.Size, legacy.Size)
		}
		for v := range legacy.InSet {
			if legacy.InSet[v] != viaSolver.InSet[v] {
				t.Fatalf("%s: membership differs at vertex %d", alg, v)
			}
		}
	}

	// The dedicated seeded entry points as well.
	seed, err := f.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	oneLegacy, err := f.OneKSwap(seed, mis.SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oneCtx, err := f.OneKSwapCtx(ctx, seed, mis.SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if oneLegacy.Size != oneCtx.Size {
		t.Fatalf("one-k-swap: ctx size %d, legacy %d", oneCtx.Size, oneLegacy.Size)
	}
}

// TestCancelMidScan cancels from inside a progress callback and requires the
// scan to stop within one batch, returning the ctx error wrapped with the
// scan position.
func TestCancelMidScan(t *testing.T) {
	path := genFile(t, 60000)
	for _, workers := range []int{1, 4} {
		f := openFile(t, path, mis.WithWorkers(workers))
		ctx, cancel := context.WithCancel(context.Background())
		var afterCancel atomic.Int64
		var canceled atomic.Bool
		solver := mis.NewSolver(f, mis.OnProgress(func(p mis.ScanProgress) {
			if canceled.Load() {
				afterCancel.Add(1)
				return
			}
			if p.Records > 0 && p.Records < p.Total {
				canceled.Store(true)
				cancel()
			}
		}))
		_, err := solver.Solve(ctx, mis.AlgGreedy)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		var se *gio.ScanError
		if !errors.As(err, &se) {
			t.Fatalf("workers=%d: err %v does not carry a scan position", workers, err)
		}
		if se.Records == 0 || se.Records >= se.Total {
			t.Fatalf("workers=%d: scan position %d of %d, want mid-scan", workers, se.Records, se.Total)
		}
		// "Within one batch": after the canceling callback returned, at most
		// one further batch may have been delivered.
		if n := afterCancel.Load(); n > 1 {
			t.Fatalf("workers=%d: %d batches delivered after cancellation", workers, n)
		}
	}
}

// TestDeadlineBeforeScan: an already-expired context fails without reading
// the file.
func TestDeadlineBeforeScan(t *testing.T) {
	f := openFile(t, genFile(t, 200))
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := f.GreedyCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if st := f.Stats(); st.RecordsRead != 0 {
		t.Fatalf("expired context still read %d records", st.RecordsRead)
	}
}

// TestCancelSwapBetweenRounds cancels a swap run from a round callback: the
// run must stop at the next round boundary with the ctx error.
func TestCancelSwapBetweenRounds(t *testing.T) {
	f := openFile(t, genFile(t, 3000))
	seed, err := f.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := 0
	solver := mis.NewSolver(f, mis.OnRound(func(ev mis.RoundEvent) {
		events++
		cancel()
	}))
	_, err = solver.OneKSwap(ctx, seed)
	if err == nil {
		// The run may legitimately finish if it converged in one round —
		// then no cancellation point followed the event. Require the event
		// itself at least.
		if events == 0 {
			t.Fatal("no round events delivered")
		}
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCancelNoGoroutineLeak runs canceled scans — sequential and parallel —
// and requires the goroutine count to settle back: neither the prefetcher
// nor the executor's worker pool may leak.
func TestCancelNoGoroutineLeak(t *testing.T) {
	path := genFile(t, 60000)
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		for _, workers := range []int{1, 4} {
			f := openFile(t, path, mis.WithWorkers(workers))
			ctx, cancel := context.WithCancel(context.Background())
			solver := mis.NewSolver(f, mis.OnProgress(func(p mis.ScanProgress) { cancel() }))
			if _, err := solver.Solve(ctx, mis.AlgGreedy); err == nil {
				t.Fatal("canceled run succeeded")
			}
			cancel()
			f.Close()
		}
	}
	// Allow the drained workers a moment to exit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after canceled runs", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentSolvers runs two solvers against one File from separate
// goroutines (the -race CI job makes this a data-race probe) and requires
// both results to equal their sequential reference runs, with the file's
// lifetime totals equal to the sum of both runs' I/O.
func TestConcurrentSolvers(t *testing.T) {
	path := genFile(t, 3000)
	f := openFile(t, path)
	ctx := context.Background()

	seed, err := f.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	refOne, err := f.OneKSwap(seed, mis.SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refTwo, err := f.TwoKSwap(seed, mis.SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}

	f.ResetStats()
	var wg sync.WaitGroup
	results := make([]*mis.Result, 2)
	errs := make([]error, 2)
	run := func(i int, fn func() (*mis.Result, error)) {
		defer wg.Done()
		results[i], errs[i] = fn()
	}
	wg.Add(2)
	go run(0, func() (*mis.Result, error) {
		return mis.NewSolver(f, mis.Workers(2)).OneKSwap(ctx, seed)
	})
	go run(1, func() (*mis.Result, error) {
		return mis.NewSolver(f).TwoKSwap(ctx, seed)
	})
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent run %d: %v", i, err)
		}
	}
	if results[0].Size != refOne.Size {
		t.Fatalf("concurrent one-k-swap size %d, sequential %d", results[0].Size, refOne.Size)
	}
	if results[1].Size != refTwo.Size {
		t.Fatalf("concurrent two-k-swap size %d, sequential %d", results[1].Size, refTwo.Size)
	}
	for v := range refOne.InSet {
		if results[0].InSet[v] != refOne.InSet[v] {
			t.Fatalf("one-k-swap membership differs at %d", v)
		}
		if results[1].InSet[v] != refTwo.InSet[v] {
			t.Fatalf("two-k-swap membership differs at %d", v)
		}
	}
	// Per-run scopes merge into the file total.
	total := f.Stats()
	wantRecords := results[0].IO.RecordsRead + results[1].IO.RecordsRead
	if total.RecordsRead != wantRecords {
		t.Fatalf("file records = %d, sum of run scopes = %d", total.RecordsRead, wantRecords)
	}
	if total.Scans != results[0].IO.Scans+results[1].IO.Scans {
		t.Fatalf("file scans = %d, sum of run scopes = %d",
			total.Scans, results[0].IO.Scans+results[1].IO.Scans)
	}
}

// TestProgressEvents: the per-scan progress stream is monotone within a scan
// and reaches the file's record count.
func TestProgressEvents(t *testing.T) {
	f := openFile(t, genFile(t, 5000))
	var mu sync.Mutex
	var last, completions uint64
	solver := mis.NewSolver(f, mis.OnProgress(func(p mis.ScanProgress) {
		mu.Lock()
		defer mu.Unlock()
		if p.Total != uint64(f.NumVertices()) {
			t.Errorf("progress total %d, want %d", p.Total, f.NumVertices())
		}
		if p.Records < last && last != p.Total {
			t.Errorf("progress went backwards mid-scan: %d after %d", p.Records, last)
		}
		if p.Records == p.Total {
			completions++
			last = 0
		} else {
			last = p.Records
		}
		if p.Percent() < 0 || p.Percent() > 100 {
			t.Errorf("percent out of range: %f", p.Percent())
		}
	}))
	if _, err := solver.Solve(context.Background(), mis.AlgGreedy); err != nil {
		t.Fatal(err)
	}
	if completions == 0 {
		t.Fatal("no completed-scan progress event")
	}
}

// TestRoundEvents: the OnRound stream matches the result's per-round
// accounting.
func TestRoundEvents(t *testing.T) {
	f := openFile(t, genFile(t, 3000))
	seed, err := f.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	var events []mis.RoundEvent
	solver := mis.NewSolver(f, mis.OnRound(func(ev mis.RoundEvent) { events = append(events, ev) }))
	r, err := solver.OneKSwap(context.Background(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != r.Rounds {
		t.Fatalf("%d round events for %d rounds", len(events), r.Rounds)
	}
	for i, ev := range events {
		if ev.Round != i+1 {
			t.Fatalf("event %d has round %d", i, ev.Round)
		}
		if ev.Gain != r.RoundGains[i] {
			t.Fatalf("round %d: event gain %d, result gain %d", ev.Round, ev.Gain, r.RoundGains[i])
		}
		if ev.IO != r.RoundIO[i] {
			t.Fatalf("round %d: event IO %+v, result IO %+v", ev.Round, ev.IO, r.RoundIO[i])
		}
	}
}

// TestBaselineOnSortedGuard: Solve(AlgBaseline) on a degree-sorted file is a
// descriptive error; the explicit opt-in and unsorted files work.
func TestBaselineOnSortedGuard(t *testing.T) {
	sorted := openFile(t, genFile(t, 500))
	if _, err := sorted.Solve(mis.AlgBaseline, mis.SwapOptions{}); !errors.Is(err, mis.ErrBaselineOnSorted) {
		t.Fatalf("err = %v, want ErrBaselineOnSorted", err)
	}
	if _, err := sorted.SolveCtx(context.Background(), mis.AlgBaseline, mis.SwapOptions{}); !errors.Is(err, mis.ErrBaselineOnSorted) {
		t.Fatalf("ctx err = %v, want ErrBaselineOnSorted", err)
	}
	if _, err := mis.NewSolver(sorted, mis.BaselineOnSorted()).Solve(context.Background(), mis.AlgBaseline); err != nil {
		t.Fatalf("opt-in failed: %v", err)
	}

	unsortedPath := filepath.Join(t.TempDir(), "unsorted.adj")
	if err := mis.GeneratePowerLawFile(unsortedPath, 500, 2.0, 9, false); err != nil {
		t.Fatal(err)
	}
	unsorted := openFile(t, unsortedPath)
	if _, err := unsorted.Solve(mis.AlgBaseline, mis.SwapOptions{}); err != nil {
		t.Fatalf("baseline on unsorted file: %v", err)
	}
}

// TestCancelExtensions: the routed extension entry points honor contexts
// too.
func TestCancelExtensions(t *testing.T) {
	f := openFile(t, genFile(t, 60000))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.RandomizedMaximalCtx(ctx, 7); !errors.Is(err, context.Canceled) {
		t.Fatalf("randomized: err = %v", err)
	}
	if _, err := f.WeiBoundCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("wei bound: err = %v", err)
	}
	if _, err := f.ColorByISCtx(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("coloring: err = %v", err)
	}
	if err := f.VerifyVertexCoverCtx(ctx, make([]bool, f.NumVertices())); !errors.Is(err, context.Canceled) {
		t.Fatalf("verify cover: err = %v", err)
	}
	if _, err := f.DynamicUpdateCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("dynamic update: err = %v", err)
	}
	if _, err := f.ExternalMaximalCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("external maximal: err = %v", err)
	}
	if _, err := f.UpperBoundCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("upper bound: err = %v", err)
	}
}

// TestExtensionsUseWorkers: the extension entry points route through the
// file's scan engine — a parallel file must produce identical results to the
// sequential oracle (this is the satellite fix for extensions bypassing the
// source selector).
func TestExtensionsUseWorkers(t *testing.T) {
	path := genFile(t, 3000)
	seq := openFile(t, path) // workers = 1
	par := openFile(t, path, mis.WithWorkers(4))

	rs, err := seq.RandomizedMaximal(7)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := par.RandomizedMaximal(7)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Size != rp.Size {
		t.Fatalf("randomized: parallel size %d, sequential %d", rp.Size, rs.Size)
	}
	for v := range rs.InSet {
		if rs.InSet[v] != rp.InSet[v] {
			t.Fatalf("randomized: membership differs at %d", v)
		}
	}

	ws, err := seq.WeiBound()
	if err != nil {
		t.Fatal(err)
	}
	wp, err := par.WeiBound()
	if err != nil {
		t.Fatal(err)
	}
	if ws != wp {
		t.Fatalf("wei bound: parallel %f, sequential %f", wp, ws)
	}

	cs, err := seq.ColorByIS(0)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := par.ColorByIS(0)
	if err != nil {
		t.Fatal(err)
	}
	if cs.NumColors != cp.NumColors {
		t.Fatalf("coloring: parallel %d classes, sequential %d", cp.NumColors, cs.NumColors)
	}
	for v := range cs.Colors {
		if cs.Colors[v] != cp.Colors[v] {
			t.Fatalf("coloring: class differs at %d", v)
		}
	}
	if err := par.VerifyColoring(cp); err != nil {
		t.Fatal(err)
	}
	if err := par.VerifyVertexCover(rp.VertexCover()); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicUpdateProgress: the whole-graph load of the in-memory baseline
// is a scheduled scan too — OnProgress observes it.
func TestDynamicUpdateProgress(t *testing.T) {
	f := openFile(t, genFile(t, 5000))
	var events atomic.Int64
	solver := mis.NewSolver(f, mis.OnProgress(func(p mis.ScanProgress) { events.Add(1) }))
	r, err := solver.DynamicUpdate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Size == 0 {
		t.Fatal("empty result")
	}
	if events.Load() == 0 {
		t.Fatal("no progress events during the graph load")
	}
}
