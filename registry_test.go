package mis_test

import (
	"context"
	"path/filepath"
	"testing"

	mis "repro"
)

func writeGraph(t *testing.T, path string, edges [][2]uint32, n int) {
	t.Helper()
	b := mis.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	if err := b.WriteFile(path, true); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRegistryFilesAndJournals(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	a := filepath.Join(dir, "a.adj")
	writeGraph(t, a, [][2]uint32{{0, 1}, {1, 2}}, 4)

	base := filepath.Join(dir, "base.adj")
	writeGraph(t, base, [][2]uint32{{0, 1}}, 4)
	jdir := filepath.Join(dir, "dyn")
	if err := mis.InitJournal(jdir, base); err != nil {
		t.Fatal(err)
	}

	r, err := mis.OpenRegistry(ctx, map[string]string{"a": a, "dyn": jdir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if names := r.Names(); len(names) != 2 || names[0] != "a" || names[1] != "dyn" {
		t.Fatalf("names = %v", names)
	}

	ea, ok := r.Get("a")
	if !ok || ea.Journal() != nil {
		t.Fatalf("entry a: ok=%v journal=%v", ok, ea.Journal())
	}
	f, release := ea.Acquire()
	defer release()
	if f.NumVertices() != 4 {
		t.Fatalf("a has %d vertices", f.NumVertices())
	}

	ed, ok := r.Get("dyn")
	if !ok || ed.Journal() == nil {
		t.Fatal("dyn should be journal-backed")
	}
	jf, jrelease := ed.Acquire()
	defer jrelease()
	if _, err := jf.ContentDigest(ctx); err != nil {
		t.Fatal(err)
	}

	if _, ok := r.Get("missing"); ok {
		t.Fatal("missing graph resolved")
	}
}

func TestOpenRegistryErrorsCloseEverything(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.adj")
	writeGraph(t, a, [][2]uint32{{0, 1}}, 3)

	if _, err := mis.OpenRegistry(context.Background(), map[string]string{
		"a": a, "b": filepath.Join(dir, "nope.adj"),
	}); err == nil {
		t.Fatal("missing path accepted")
	}
	if _, err := mis.OpenRegistry(context.Background(), map[string]string{"bad/name": a}); err == nil {
		t.Fatal("slashed name accepted")
	}
	// A directory that is not a journal store is rejected, not treated as a
	// file.
	if _, err := mis.OpenRegistry(context.Background(), map[string]string{"d": dir}); err == nil {
		t.Fatal("non-journal directory accepted")
	}
}

func TestDiscoverGraphs(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "web.adj")
	writeGraph(t, a, [][2]uint32{{0, 1}}, 3)
	base := filepath.Join(dir, "b.adj")
	writeGraph(t, base, [][2]uint32{{0, 1}}, 3)
	jdir := filepath.Join(dir, "social")
	if err := mis.InitJournal(jdir, base); err != nil {
		t.Fatal(err)
	}

	graphs, err := mis.DiscoverGraphs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if graphs["web"] != a || graphs["social"] != jdir || graphs["b"] != base {
		t.Fatalf("graphs = %v", graphs)
	}
	if len(graphs) != 3 {
		t.Fatalf("discovered %d graphs: %v", len(graphs), graphs)
	}
}
