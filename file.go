package mis

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gio"
)

// File is an open adjacency file: the on-disk graph the semi-external
// algorithms scan. It accumulates I/O statistics across every operation run
// against it. File is not safe for concurrent use.
type File struct {
	inner   *gio.File
	stats   gio.Stats
	workers int
}

// OpenOption customizes Open.
type OpenOption func(*openConfig)

type openConfig struct {
	blockSize int
	workers   int
}

// WithBlockSize sets the buffered I/O block size (the B of the paper's I/O
// cost formulas). The default is 256 KiB.
func WithBlockSize(b int) OpenOption {
	return func(c *openConfig) { c.blockSize = b }
}

// WithWorkers sets the file's default scan parallelism: the number of
// goroutines that decode partitions of the file concurrently during the
// scan-bound passes (Greedy, the swap algorithms' scans, verification,
// bounds). Results are bit-identical to sequential scans — partitions are
// merged back into scan order — so this is purely a throughput knob. 1 (the
// default) keeps every pass on the single-stream engine; ≤ 0 selects
// GOMAXPROCS. See SwapOptions.Workers for a per-call override.
func WithWorkers(n int) OpenOption {
	return func(c *openConfig) { c.workers = n }
}

// Open opens an adjacency file produced by Builder.WriteFile,
// GeneratePowerLawFile, ImportEdgeList or SortFileByDegree.
func Open(path string, opts ...OpenOption) (*File, error) {
	cfg := openConfig{workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	f := &File{workers: cfg.workers}
	inner, err := gio.Open(path, cfg.blockSize, &f.stats)
	if err != nil {
		return nil, err
	}
	f.inner = inner
	return f, nil
}

// SetWorkers changes the file's default scan parallelism (see WithWorkers).
func (f *File) SetWorkers(n int) { f.workers = n }

// Workers returns the file's default scan parallelism.
func (f *File) Workers() int { return f.workers }

// source returns the scan engine for a pass: the sequential file itself, or
// a parallel partitioned executor over it. workers == 0 selects the file's
// default; 1 is sequential; ≤ -1 selects GOMAXPROCS.
func (f *File) source(workers int) core.Source {
	if workers == 0 {
		workers = f.workers
	}
	if workers == 1 {
		return f.inner
	}
	return exec.New(f.inner, workers)
}

// Close closes the file.
func (f *File) Close() error { return f.inner.Close() }

// Path returns the file's path.
func (f *File) Path() string { return f.inner.Path() }

// NumVertices returns the number of vertices.
func (f *File) NumVertices() int { return f.inner.NumVertices() }

// NumEdges returns the number of undirected edges.
func (f *File) NumEdges() uint64 { return f.inner.NumEdges() }

// AvgDegree returns the average degree.
func (f *File) AvgDegree() float64 {
	n := f.NumVertices()
	if n == 0 {
		return 0
	}
	return 2 * float64(f.NumEdges()) / float64(n)
}

// DegreeSorted reports whether the file's records are in ascending-degree
// scan order (the Greedy preprocessing).
func (f *File) DegreeSorted() bool { return f.inner.Header().DegreeSorted() }

// SizeBytes returns the on-disk size.
func (f *File) SizeBytes() (int64, error) { return f.inner.SizeBytes() }

// Stats returns the accumulated I/O statistics for all operations on f.
func (f *File) Stats() IOStats { return IOStats(f.stats) }

// ResetStats zeroes the accumulated I/O statistics.
func (f *File) ResetStats() { f.stats = gio.Stats{} }

// Greedy runs Algorithm 1 (one sequential scan; a maximal independent set).
// On a degree-sorted file this is the paper's GREEDY; on an unsorted file it
// is the BASELINE competitor.
func (f *File) Greedy() (*Result, error) {
	r, err := core.Greedy(f.source(0))
	if err != nil {
		return nil, err
	}
	return fromCore(r), nil
}

// OneKSwap runs Algorithm 2 starting from the given independent set
// (typically a Greedy result).
func (f *File) OneKSwap(initial *Result, opts SwapOptions) (*Result, error) {
	if initial == nil {
		return nil, fmt.Errorf("mis: one-k-swap: nil initial set")
	}
	r, err := core.OneKSwap(f.source(opts.Workers), initial.InSet, opts.internal())
	if err != nil {
		return nil, err
	}
	return fromCore(r), nil
}

// TwoKSwap runs Algorithms 3–4 starting from the given independent set.
func (f *File) TwoKSwap(initial *Result, opts SwapOptions) (*Result, error) {
	if initial == nil {
		return nil, fmt.Errorf("mis: two-k-swap: nil initial set")
	}
	r, err := core.TwoKSwap(f.source(opts.Workers), initial.InSet, opts.internal())
	if err != nil {
		return nil, err
	}
	return fromCore(r), nil
}

// DynamicUpdate runs the classical in-memory greedy. It loads the whole
// graph into memory first — the scalability limitation the paper's
// algorithms remove — so expect it to fail on graphs that do not fit.
func (f *File) DynamicUpdate() (*Result, error) {
	g, err := loadWhole(f)
	if err != nil {
		return nil, err
	}
	return fromCore(core.DynamicUpdate(g)), nil
}

// ExternalMaximal computes a maximal independent set by time-forward
// processing through an external priority queue (the paper's STXXL
// competitor).
func (f *File) ExternalMaximal() (*Result, error) {
	r, err := core.ExternalMaximal(f.source(0), core.ExternalMaximalOptions{})
	if err != nil {
		return nil, err
	}
	return fromCore(r), nil
}

// UpperBound runs Algorithm 5: a one-scan upper bound on the independence
// number, the denominator of the paper's approximation ratios.
func (f *File) UpperBound() (uint64, error) {
	return core.UpperBound(f.source(0))
}

// VerifyIndependent checks that no edge has both endpoints in the result.
func (f *File) VerifyIndependent(r *Result) error {
	return core.VerifyIndependent(f.source(0), r.InSet)
}

// VerifyMaximal checks that every vertex outside the result has a neighbor
// inside it.
func (f *File) VerifyMaximal(r *Result) error {
	return core.VerifyMaximal(f.source(0), r.InSet)
}

// Verify checks independence and maximality together. The two checks are
// logical passes the scan scheduler fuses into a single physical scan —
// half the I/O of calling VerifyIndependent and VerifyMaximal back to back
// — with an independence violation reported first, exactly as the
// sequential calls would.
func (f *File) Verify(r *Result) error {
	return core.VerifyBoth(f.source(0), r.InSet)
}
