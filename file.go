package mis

import (
	"context"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gio"
	"repro/internal/shard"
)

// File is an open adjacency file: the on-disk graph the semi-external
// algorithms scan. It accumulates I/O statistics across every operation run
// against it.
//
// File is safe for concurrent use: every algorithm run scans through its own
// view of the file (reads are positional) and accounts into its own stat
// scope, which merges atomically into the file's lifetime totals. Any number
// of solvers — or the context-free convenience methods below — may run
// against one File from different goroutines.
type File struct {
	inner   *gio.File  // single adjacency file; nil when sharded
	shards  *shard.Set // shard set (see OpenSharded); nil for single files
	stats   gio.Counters
	workers atomic.Int32
}

// OpenOption customizes Open.
type OpenOption func(*openConfig)

type openConfig struct {
	blockSize int
	workers   int
	mmap      bool
}

// WithBlockSize sets the buffered I/O block size (the B of the paper's I/O
// cost formulas). The default is 256 KiB.
func WithBlockSize(b int) OpenOption {
	return func(c *openConfig) { c.blockSize = b }
}

// WithWorkers sets the file's default scan parallelism: the number of
// goroutines that decode partitions of the file concurrently during the
// scan-bound passes (Greedy, the swap algorithms' scans, verification,
// bounds). Results are bit-identical to sequential scans — partitions are
// merged back into scan order — so this is purely a throughput knob. 1 (the
// default) keeps every pass on the single-stream engine; ≤ 0 selects
// GOMAXPROCS. See SwapOptions.Workers and the Workers solver option for
// per-call overrides.
func WithWorkers(n int) OpenOption {
	return func(c *openConfig) { c.workers = n }
}

// WithMmap backs every scan of the file with a read-only memory mapping
// instead of the prefetching block pipeline: the decoder consumes file bytes
// straight out of the OS page cache, and on little-endian hosts raw
// (uncompressed) files decode with zero copies — neighbor lists alias the
// mapping itself. Records, errors, statistics and cancellation behave
// identically to the default engine; mapped scans still count as physical
// scans, since the paper's I/O cost model charges each pass for reading the
// file regardless of which kernel interface delivers the bytes. On platforms
// without mmap (or under the nommap build tag) the option silently falls
// back to the default engine — MmapActive reports which path is live.
func WithMmap() OpenOption {
	return func(c *openConfig) { c.mmap = true }
}

// Open opens an adjacency file produced by Builder.WriteFile,
// GeneratePowerLawFile, ImportEdgeList or SortFileByDegree.
func Open(path string, opts ...OpenOption) (*File, error) {
	cfg := openConfig{workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	f := &File{}
	f.workers.Store(int32(cfg.workers))
	open := gio.Open
	if cfg.mmap {
		open = gio.OpenMmap
	}
	inner, err := open(path, cfg.blockSize, &f.stats)
	if err != nil {
		return nil, err
	}
	f.inner = inner
	return f, nil
}

// MmapActive reports whether scans of this file run off a live memory
// mapping (see WithMmap): false when the file was opened without the option,
// after the mmap fallback, or once the file is closed. A sharded graph
// reports true only when every shard is mapped.
func (f *File) MmapActive() bool {
	if f.shards != nil {
		return f.shards.MmapActive()
	}
	return f.inner.MmapActive()
}

// SetWorkers changes the file's default scan parallelism (see WithWorkers).
func (f *File) SetWorkers(n int) { f.workers.Store(int32(n)) }

// Workers returns the file's default scan parallelism.
func (f *File) Workers() int { return int(f.workers.Load()) }

// runSource returns the scan engine for one algorithm run: a view of the
// file accounting into a fresh per-run stat scope (whose every addition also
// lands in the file's lifetime totals), wrapped in the parallel partitioned
// executor when the effective worker count exceeds 1. Each run owning its
// scope and view is what makes concurrent runs on one File race-free.
// workers == 0 selects the file's default; 1 is sequential; ≤ -1 selects
// GOMAXPROCS.
func (f *File) runSource(workers int) core.Source {
	if workers == 0 {
		workers = f.Workers()
	}
	if f.shards != nil {
		return f.shards.Source(f.stats.Scope(), workers)
	}
	view := f.inner.WithCounters(f.stats.Scope())
	if workers == 1 {
		return view
	}
	return exec.New(view, workers)
}

// Close closes the file.
func (f *File) Close() error {
	if f.shards != nil {
		return f.shards.Close()
	}
	return f.inner.Close()
}

// Path returns the file's path — the manifest file's path for a sharded
// graph.
func (f *File) Path() string {
	if f.shards != nil {
		return f.shards.Path()
	}
	return f.inner.Path()
}

// NumVertices returns the number of vertices.
func (f *File) NumVertices() int {
	if f.shards != nil {
		return f.shards.NumVertices()
	}
	return f.inner.NumVertices()
}

// NumEdges returns the number of undirected edges.
func (f *File) NumEdges() uint64 {
	if f.shards != nil {
		return f.shards.NumEdges()
	}
	return f.inner.NumEdges()
}

// AvgDegree returns the average degree.
func (f *File) AvgDegree() float64 {
	n := f.NumVertices()
	if n == 0 {
		return 0
	}
	return 2 * float64(f.NumEdges()) / float64(n)
}

// DegreeSorted reports whether the file's records are in ascending-degree
// scan order (the Greedy preprocessing).
func (f *File) DegreeSorted() bool {
	if f.shards != nil {
		return f.shards.DegreeSorted()
	}
	return f.inner.Header().DegreeSorted()
}

// SizeBytes returns the on-disk size — for a sharded graph, the summed size
// of the shard files.
func (f *File) SizeBytes() (int64, error) {
	if f.shards != nil {
		return f.shards.TotalBytes(), nil
	}
	return f.inner.SizeBytes()
}

// ContentDigest returns the SHA-256 of the file's on-disk contents as
// lowercase hex — the cache key component that names exactly this graph.
// It is computed lazily on the first call (one positional read pass that
// leaves in-flight scans undisturbed) and cached for the lifetime of the
// open file; reopening the path — or a journal compaction flipping to a new
// base generation, which opens a fresh file — starts from an empty cache,
// so a digest never outlives the bytes it names. ctx cancels the
// computation between blocks; failures are not cached. For a sharded graph
// this is the combined digest over the ordered per-shard content digests —
// the same cache-key role, derived from every shard's exact bytes.
func (f *File) ContentDigest(ctx context.Context) (string, error) {
	if f.shards != nil {
		return f.shards.CombinedDigest(ctx)
	}
	return f.inner.ContentDigest(ctx)
}

// Stats returns the accumulated I/O statistics for all operations on f.
func (f *File) Stats() IOStats { return IOStats(f.stats.Snapshot()) }

// ResetStats zeroes the accumulated I/O statistics.
func (f *File) ResetStats() { f.stats.Reset() }

// Greedy runs Algorithm 1 (one sequential scan; a maximal independent set).
// On a degree-sorted file this is the paper's GREEDY; on an unsorted file it
// is the BASELINE competitor.
func (f *File) Greedy() (*Result, error) {
	return f.GreedyCtx(context.Background())
}

// GreedyCtx is Greedy bound to a context: cancellation or deadline expiry
// stops the scan within one decoded batch and the error wraps ctx.Err()
// together with the scan position.
func (f *File) GreedyCtx(ctx context.Context) (*Result, error) {
	return NewSolver(f).Greedy(ctx)
}

// OneKSwap runs Algorithm 2 starting from the given independent set
// (typically a Greedy result).
func (f *File) OneKSwap(initial *Result, opts SwapOptions) (*Result, error) {
	return f.OneKSwapCtx(context.Background(), initial, opts)
}

// OneKSwapCtx is OneKSwap bound to a context (see GreedyCtx).
func (f *File) OneKSwapCtx(ctx context.Context, initial *Result, opts SwapOptions) (*Result, error) {
	return opts.solver(f).OneKSwap(ctx, initial)
}

// TwoKSwap runs Algorithms 3–4 starting from the given independent set.
func (f *File) TwoKSwap(initial *Result, opts SwapOptions) (*Result, error) {
	return f.TwoKSwapCtx(context.Background(), initial, opts)
}

// TwoKSwapCtx is TwoKSwap bound to a context (see GreedyCtx).
func (f *File) TwoKSwapCtx(ctx context.Context, initial *Result, opts SwapOptions) (*Result, error) {
	return opts.solver(f).TwoKSwap(ctx, initial)
}

// DynamicUpdate runs the classical in-memory greedy. It loads the whole
// graph into memory first — the scalability limitation the paper's
// algorithms remove — so expect it to fail on graphs that do not fit.
func (f *File) DynamicUpdate() (*Result, error) {
	return f.DynamicUpdateCtx(context.Background())
}

// DynamicUpdateCtx is DynamicUpdate bound to a context: the whole-graph load
// is canceled between batches.
func (f *File) DynamicUpdateCtx(ctx context.Context) (*Result, error) {
	return NewSolver(f).DynamicUpdate(ctx)
}

// ExternalMaximal computes a maximal independent set by time-forward
// processing through an external priority queue (the paper's STXXL
// competitor).
func (f *File) ExternalMaximal() (*Result, error) {
	return f.ExternalMaximalCtx(context.Background())
}

// ExternalMaximalCtx is ExternalMaximal bound to a context (see GreedyCtx).
func (f *File) ExternalMaximalCtx(ctx context.Context) (*Result, error) {
	return NewSolver(f).ExternalMaximal(ctx)
}

// UpperBound runs Algorithm 5: a one-scan upper bound on the independence
// number, the denominator of the paper's approximation ratios.
func (f *File) UpperBound() (uint64, error) {
	return f.UpperBoundCtx(context.Background())
}

// UpperBoundCtx is UpperBound bound to a context (see GreedyCtx).
func (f *File) UpperBoundCtx(ctx context.Context) (uint64, error) {
	return NewSolver(f).UpperBound(ctx)
}

// VerifyIndependent checks that no edge has both endpoints in the result.
func (f *File) VerifyIndependent(r *Result) error {
	return f.VerifyIndependentCtx(context.Background(), r)
}

// VerifyIndependentCtx is VerifyIndependent bound to a context.
func (f *File) VerifyIndependentCtx(ctx context.Context, r *Result) error {
	return NewSolver(f).VerifyIndependent(ctx, r)
}

// VerifyMaximal checks that every vertex outside the result has a neighbor
// inside it.
func (f *File) VerifyMaximal(r *Result) error {
	return f.VerifyMaximalCtx(context.Background(), r)
}

// VerifyMaximalCtx is VerifyMaximal bound to a context.
func (f *File) VerifyMaximalCtx(ctx context.Context, r *Result) error {
	return NewSolver(f).VerifyMaximal(ctx, r)
}

// Verify checks independence and maximality together. The two checks are
// logical passes the scan scheduler fuses into a single physical scan —
// half the I/O of calling VerifyIndependent and VerifyMaximal back to back
// — with an independence violation reported first, exactly as the
// sequential calls would.
func (f *File) Verify(r *Result) error {
	return f.VerifyCtx(context.Background(), r)
}

// VerifyCtx is Verify bound to a context.
func (f *File) VerifyCtx(ctx context.Context, r *Result) error {
	return NewSolver(f).Verify(ctx, r)
}

// solver builds the Solver equivalent of a legacy SwapOptions call: the
// swap tuning carries over and the per-call Workers override becomes the
// solver's worker count.
func (o SwapOptions) solver(f *File) *Solver {
	return &Solver{f: f, cfg: solverConfig{swap: o, workers: o.Workers}}
}
